#include "sim/memory.h"

#include <algorithm>
#include <cstring>

namespace bp5::sim {

Memory::Page &
Memory::page(uint64_t addr)
{
    uint64_t pn = addr >> kPageShift;
    auto it = pages_.find(pn);
    if (it == pages_.end())
        it = pages_.emplace(pn, Page(kPageSize, 0)).first;
    return it->second;
}

const Memory::Page *
Memory::pageIfPresent(uint64_t addr) const
{
    auto it = pages_.find(addr >> kPageShift);
    return it == pages_.end() ? nullptr : &it->second;
}

void
Memory::writeBlock(uint64_t addr, const void *src, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(src);
    while (len > 0) {
        uint64_t off = pageOff(addr);
        size_t chunk = std::min<size_t>(len, kPageSize - off);
        std::memcpy(page(addr).data() + off, p, chunk);
        addr += chunk;
        p += chunk;
        len -= chunk;
    }
}

void
Memory::readBlock(uint64_t addr, void *dst, size_t len) const
{
    uint8_t *p = static_cast<uint8_t *>(dst);
    while (len > 0) {
        uint64_t off = pageOff(addr);
        size_t chunk = std::min<size_t>(len, kPageSize - off);
        if (const Page *pg = pageIfPresent(addr))
            std::memcpy(p, pg->data() + off, chunk);
        else
            std::memset(p, 0, chunk);
        addr += chunk;
        p += chunk;
        len -= chunk;
    }
}

} // namespace bp5::sim
