#include "sim/memory.h"

#include <cstring>

namespace bp5::sim {

Memory::Page &
Memory::page(uint64_t addr)
{
    uint64_t pn = addr >> kPageShift;
    auto it = pages_.find(pn);
    if (it == pages_.end())
        it = pages_.emplace(pn, Page(kPageSize, 0)).first;
    return it->second;
}

const Memory::Page *
Memory::pageIfPresent(uint64_t addr) const
{
    auto it = pages_.find(addr >> kPageShift);
    return it == pages_.end() ? nullptr : &it->second;
}

namespace {

constexpr uint64_t
pageOff(uint64_t addr)
{
    return addr & (Memory::kPageSize - 1);
}

} // namespace

void
Memory::writeBlock(uint64_t addr, const void *src, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(src);
    while (len > 0) {
        uint64_t off = pageOff(addr);
        size_t chunk = std::min<size_t>(len, kPageSize - off);
        std::memcpy(page(addr).data() + off, p, chunk);
        addr += chunk;
        p += chunk;
        len -= chunk;
    }
}

void
Memory::readBlock(uint64_t addr, void *dst, size_t len) const
{
    uint8_t *p = static_cast<uint8_t *>(dst);
    while (len > 0) {
        uint64_t off = pageOff(addr);
        size_t chunk = std::min<size_t>(len, kPageSize - off);
        if (const Page *pg = pageIfPresent(addr))
            std::memcpy(p, pg->data() + off, chunk);
        else
            std::memset(p, 0, chunk);
        addr += chunk;
        p += chunk;
        len -= chunk;
    }
}

uint8_t
Memory::readU8(uint64_t addr) const
{
    if (const Page *pg = pageIfPresent(addr))
        return (*pg)[pageOff(addr)];
    return 0;
}

uint16_t
Memory::readU16(uint64_t addr) const
{
    uint16_t v;
    readBlock(addr, &v, 2);
    return v;
}

uint32_t
Memory::readU32(uint64_t addr) const
{
    uint32_t v;
    readBlock(addr, &v, 4);
    return v;
}

uint64_t
Memory::readU64(uint64_t addr) const
{
    uint64_t v;
    readBlock(addr, &v, 8);
    return v;
}

void
Memory::writeU8(uint64_t addr, uint8_t v)
{
    page(addr)[pageOff(addr)] = v;
}

void
Memory::writeU16(uint64_t addr, uint16_t v)
{
    writeBlock(addr, &v, 2);
}

void
Memory::writeU32(uint64_t addr, uint32_t v)
{
    writeBlock(addr, &v, 4);
}

void
Memory::writeU64(uint64_t addr, uint64_t v)
{
    writeBlock(addr, &v, 8);
}

} // namespace bp5::sim
