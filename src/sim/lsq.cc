#include "sim/lsq.h"

#include "support/bitfield.h"
#include "support/logging.h"

namespace bp5::sim {

LoadStoreQueue::LoadStoreQueue(const LsqParams &params, bool classic)
    : params_(params), classic_(classic)
{
    if (!classic_) {
        BP5_ASSERT(params_.loads > 0 && params_.stores > 0,
                   "LSQ depths must be positive");
        BP5_ASSERT(isPow2(params_.mdpEntries),
                   "MDP table size must be a power of 2");
        loadCommit_.assign(params_.loads, 0);
        storeCommit_.assign(params_.stores, 0);
        sq_.assign(params_.stores, SqEntry());
        mdp_.assign(params_.mdpEntries, 0);
    }
}

void
LoadStoreQueue::beginRun()
{
    table_.fill(StoreSlot());
    if (!classic_) {
        loadCommit_.assign(params_.loads, 0);
        storeCommit_.assign(params_.stores, 0);
        sq_.assign(params_.stores, SqEntry());
        loadSeq_ = storeSeq_ = sqSeq_ = 0;
    }
}

void
LoadStoreQueue::reset()
{
    beginRun();
    if (!classic_)
        mdp_.assign(params_.mdpEntries, 0);
}

uint64_t
LoadStoreQueue::reserveLsq(bool isLoad, uint64_t dc, bool *limited)
{
    std::vector<uint64_t> &ring = isLoad ? loadCommit_ : storeCommit_;
    uint64_t seq = isLoad ? loadSeq_ : storeSeq_;
    uint64_t depth = ring.size();
    if (seq >= depth) {
        // The slot this op reuses belongs to the entry `depth` back;
        // dispatch stalls until that entry has committed.
        uint64_t freeAt = ring[seq % depth];
        if (dc <= freeAt) {
            dc = freeAt + 1;
            *limited = true;
        }
    }
    return dc;
}

LoadStoreQueue::Order
LoadStoreQueue::orderLoadLsq(uint64_t pc, uint64_t addr, uint64_t ready)
{
    Order o;
    o.ready = ready;
    uint64_t g = granuleOf(addr);

    // Youngest matching store still in the queue window.
    const SqEntry *match = nullptr;
    uint64_t depth = sq_.size();
    uint64_t n = sqSeq_ < depth ? sqSeq_ : depth;
    for (uint64_t back = 0; back < n; ++back) {
        const SqEntry &e = sq_[(sqSeq_ - 1 - back) % depth];
        if (e.granule == g) {
            match = &e;
            break;
        }
    }
    if (!match)
        return o;

    if (match->complete <= ready) {
        // Store data already available: forward from the queue.
        o.forwarded = true;
        return o;
    }

    bool predictedDependent =
        !params_.speculativeLoads ||
        mdp_[(pc >> 2) & (mdp_.size() - 1)] == pc;
    if (predictedDependent) {
        // Wait for the store's data, then forward.
        o.ready = match->complete;
        o.forwarded = true;
        return o;
    }

    // Speculate past the unresolved store; the collision is discovered
    // when the store completes, squashing the load.  Train the MDP so
    // the next dynamic instance of this load waits instead.
    o.violation = true;
    o.conflictComplete = match->complete;
    mdp_[(pc >> 2) & (mdp_.size() - 1)] = pc;
    return o;
}

unsigned
LoadStoreQueue::occupancy(bool loadQueue, uint64_t cycle) const
{
    if (classic_)
        return 0;
    const std::vector<uint64_t> &ring = loadQueue ? loadCommit_ : storeCommit_;
    uint64_t seq = loadQueue ? loadSeq_ : storeSeq_;
    uint64_t n = seq < ring.size() ? seq : ring.size();
    unsigned occ = 0;
    for (uint64_t i = 0; i < n; ++i) {
        if (ring[i] > cycle)
            ++occ;
    }
    return occ;
}

} // namespace bp5::sim
