#include "sim/cache.h"

#include "support/bitfield.h"
#include "support/logging.h"

namespace bp5::sim {

Cache::Cache(const CacheParams &params, Cache *next, unsigned memLatency)
    : params_(params), next_(next), memLatency_(memLatency)
{
    BP5_ASSERT(isPow2(params_.lineBytes), "line size must be a power of 2");
    BP5_ASSERT(params_.assoc > 0, "associativity must be positive");
    uint64_t lines = params_.sizeBytes / params_.lineBytes;
    BP5_ASSERT(lines % params_.assoc == 0, "size/assoc mismatch");
    numSets_ = static_cast<unsigned>(lines / params_.assoc);
    BP5_ASSERT(isPow2(numSets_), "set count must be a power of 2");
    lines_.resize(lines);
}

uint64_t
Cache::lineIndex(uint64_t addr) const
{
    uint64_t set = (addr / params_.lineBytes) & (numSets_ - 1);
    return set * params_.assoc;
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return addr / params_.lineBytes / numSets_;
}

unsigned
Cache::access(uint64_t addr, bool is_write, bool is_writeback, uint64_t now)
{
    ++stats_.accesses;
    if (is_write)
        ++stats_.writes;
    if (is_writeback)
        ++stats_.writebacksIn;
    uint64_t base = lineIndex(addr);
    uint64_t tag = tagOf(addr);

    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &l = lines_[base + w];
        if (l.valid && l.tag == tag) {
            l.lruStamp = ++stamp_;
            if (is_write)
                l.dirty = true;
            unsigned extra = 0;
            if (l.prefetched) {
                // First demand touch of a prefetched line: pay the
                // remaining in-flight cycles if the fill has not
                // arrived yet (partial hit).
                ++stats_.prefetchHits;
                l.prefetched = false;
                if (l.readyCycle > now)
                    extra = unsigned(l.readyCycle - now);
            }
            return params_.hitLatency + extra;
        }
    }

    // Miss: fetch from below, allocate, evict LRU.
    ++stats_.misses;
    unsigned below = next_ ? next_->access(addr, false) : memLatency_;

    Line &v = allocate(base, tag);
    v.dirty = is_write;
    return params_.hitLatency + below;
}

/** Pick the LRU victim in the set at @p base, write it back if dirty,
 *  and re-tag it.  Returns the (valid, clean, demand-stamped) line;
 *  the caller sets dirty/prefetched as appropriate. */
Cache::Line &
Cache::allocate(uint64_t base, uint64_t tag)
{
    unsigned victim = 0;
    uint64_t oldest = UINT64_MAX;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &l = lines_[base + w];
        if (!l.valid) {
            victim = w;
            break;
        }
        if (l.lruStamp < oldest) {
            oldest = l.lruStamp;
            victim = w;
        }
    }
    Line &v = lines_[base + victim];
    if (v.valid && v.prefetched)
        ++stats_.prefetchUseless; // evicted before any demand touch
    if (v.valid && v.dirty) {
        ++stats_.writebacks;
        // Present the victim to the next level so its write traffic is
        // accounted; write buffers keep this off the critical path, so
        // the returned latency is discarded.
        if (next_) {
            uint64_t set = base / params_.assoc;
            uint64_t victimAddr =
                (v.tag * numSets_ + set) * params_.lineBytes;
            (void)next_->access(victimAddr, true, /*is_writeback=*/true);
        }
    }
    v.valid = true;
    v.dirty = false;
    v.prefetched = false;
    v.readyCycle = 0;
    v.tag = tag;
    v.lruStamp = ++stamp_;
    return v;
}

bool
Cache::prefetchFill(uint64_t addr, uint64_t now)
{
    uint64_t base = lineIndex(addr);
    uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &l = lines_[base + w];
        if (l.valid && l.tag == tag)
            return false; // already resident (or already in flight)
    }
    ++stats_.prefetchIssued;
    // The fill reads the level below as a demand access there (a real
    // prefetch occupies the lower levels the same way).
    unsigned below = next_ ? next_->access(addr, false) : memLatency_;
    Line &v = allocate(base, tag);
    v.prefetched = true;
    v.readyCycle = now + params_.hitLatency + below;
    return true;
}

bool
Cache::probe(uint64_t addr) const
{
    uint64_t base = lineIndex(addr);
    uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Line &l = lines_[base + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &l : lines_)
        l = Line();
    // Reset the LRU clock too: a flushed cache must be bit-for-bit
    // identical to a freshly constructed one (Machine::reset relies on
    // this for run-to-run reproducibility).
    stamp_ = 0;
}

} // namespace bp5::sim
