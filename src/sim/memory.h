/**
 * @file
 * Sparse flat physical memory for the MiniPOWER machine.  Backed by
 * 4 KiB pages allocated on first touch; all accesses are little-endian.
 *
 * Small aligned-width accesses are inlined with a one-entry cached
 * page pointer per direction (the compiled execution engine issues
 * one such access per memory micro-op), falling back to the block
 * routines when the access crosses a page boundary.  Page buffers are
 * heap-allocated vectors, so cached pointers stay valid across page
 * table rehashes; reads of absent pages return zero without
 * allocating (and are never cached, so a later write is observed).
 */

#ifndef BIOPERF5_SIM_MEMORY_H
#define BIOPERF5_SIM_MEMORY_H

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace bp5::sim {

/** Byte-addressed sparse memory. */
class Memory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr uint64_t kPageSize = 1ULL << kPageShift;

    uint8_t
    readU8(uint64_t addr) const
    {
        if (const uint8_t *p = readPtr(addr, 1))
            return *p;
        return 0;
    }
    uint16_t readU16(uint64_t addr) const { return readSmall<uint16_t>(addr); }
    uint32_t readU32(uint64_t addr) const { return readSmall<uint32_t>(addr); }
    uint64_t readU64(uint64_t addr) const { return readSmall<uint64_t>(addr); }

    void writeU8(uint64_t addr, uint8_t v) { *writePtr(addr, 1) = v; }
    void writeU16(uint64_t addr, uint16_t v) { writeSmall(addr, v); }
    void writeU32(uint64_t addr, uint32_t v) { writeSmall(addr, v); }
    void writeU64(uint64_t addr, uint64_t v) { writeSmall(addr, v); }

    /** Bulk copy into memory. */
    void writeBlock(uint64_t addr, const void *src, size_t len);

    /** Bulk copy out of memory. */
    void readBlock(uint64_t addr, void *dst, size_t len) const;

    /** Number of resident pages (for tests / footprint reports). */
    size_t residentPages() const { return pages_.size(); }

    /** Drop all contents. */
    void
    clear()
    {
        pages_.clear();
        readPageNum_ = writePageNum_ = ~0ULL;
        readPage_ = nullptr;
        writePage_ = nullptr;
    }

  private:
    using Page = std::vector<uint8_t>;

    Page &page(uint64_t addr);
    const Page *pageIfPresent(uint64_t addr) const;

    static constexpr uint64_t pageOff(uint64_t a)
    {
        return a & (kPageSize - 1);
    }

    /** Pointer into the page holding [addr, addr+len), or nullptr if
     *  the page is absent or the span crosses a page boundary. */
    const uint8_t *
    readPtr(uint64_t addr, size_t len) const
    {
        uint64_t off = pageOff(addr);
        if (off + len > kPageSize)
            return nullptr;
        uint64_t pn = addr >> kPageShift;
        if (pn != readPageNum_) {
            const Page *pg = pageIfPresent(addr);
            if (!pg)
                return nullptr; // absence is never cached
            readPageNum_ = pn;
            readPage_ = pg->data();
        }
        return readPage_ + off;
    }

    /** Writable pointer for [addr, addr+len), allocating the page;
     *  nullptr only when the span crosses a page boundary. */
    uint8_t *
    writePtr(uint64_t addr, size_t len)
    {
        uint64_t off = pageOff(addr);
        if (off + len > kPageSize)
            return nullptr;
        uint64_t pn = addr >> kPageShift;
        if (pn != writePageNum_) {
            writePageNum_ = pn;
            writePage_ = page(addr).data();
        }
        return writePage_ + off;
    }

    template <typename T>
    T
    readSmall(uint64_t addr) const
    {
        T v;
        if (const uint8_t *p = readPtr(addr, sizeof(T))) {
            std::memcpy(&v, p, sizeof(T));
            return v;
        }
        readBlock(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeSmall(uint64_t addr, T v)
    {
        if (uint8_t *p = writePtr(addr, sizeof(T))) {
            std::memcpy(p, &v, sizeof(T));
            return;
        }
        writeBlock(addr, &v, sizeof(T));
    }

    mutable std::unordered_map<uint64_t, Page> pages_;
    mutable uint64_t readPageNum_ = ~0ULL;
    mutable const uint8_t *readPage_ = nullptr;
    uint64_t writePageNum_ = ~0ULL;
    uint8_t *writePage_ = nullptr;
};

} // namespace bp5::sim

#endif // BIOPERF5_SIM_MEMORY_H
