/**
 * @file
 * Sparse flat physical memory for the MiniPOWER machine.  Backed by
 * 4 KiB pages allocated on first touch; all accesses are little-endian.
 */

#ifndef BIOPERF5_SIM_MEMORY_H
#define BIOPERF5_SIM_MEMORY_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace bp5::sim {

/** Byte-addressed sparse memory. */
class Memory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr uint64_t kPageSize = 1ULL << kPageShift;

    uint8_t readU8(uint64_t addr) const;
    uint16_t readU16(uint64_t addr) const;
    uint32_t readU32(uint64_t addr) const;
    uint64_t readU64(uint64_t addr) const;

    void writeU8(uint64_t addr, uint8_t v);
    void writeU16(uint64_t addr, uint16_t v);
    void writeU32(uint64_t addr, uint32_t v);
    void writeU64(uint64_t addr, uint64_t v);

    /** Bulk copy into memory. */
    void writeBlock(uint64_t addr, const void *src, size_t len);

    /** Bulk copy out of memory. */
    void readBlock(uint64_t addr, void *dst, size_t len) const;

    /** Number of resident pages (for tests / footprint reports). */
    size_t residentPages() const { return pages_.size(); }

    /** Drop all contents. */
    void clear() { pages_.clear(); }

  private:
    using Page = std::vector<uint8_t>;

    Page &page(uint64_t addr);
    const Page *pageIfPresent(uint64_t addr) const;

    mutable std::unordered_map<uint64_t, Page> pages_;
};

} // namespace bp5::sim

#endif // BIOPERF5_SIM_MEMORY_H
