#include "sim/exec.h"

#include <bit>

#include "sim/btac.h"
#include "sim/cache.h"
#include "sim/predictor.h"
#include "support/bitfield.h"
#include "support/logging.h"

namespace bp5::sim {

using isa::Op;

namespace {

/** Evaluate a BO condition (with CTR side effect applied by caller). */
bool
evalBranchCond(unsigned bo, unsigned bi, const CoreState &st, uint64_t ctr)
{
    switch (bo) {
      case isa::BO_ALWAYS:
        return true;
      case isa::BO_COND_TRUE:
        return st.crBit(bi);
      case isa::BO_COND_FALSE:
        return !st.crBit(bi);
      case isa::BO_DNZ:
        return ctr != 0;
      case isa::BO_DZ:
        return ctr == 0;
      default:
        panic("unsupported BO pattern %u", bo);
    }
}

void
setCr0(CoreState &st, uint64_t result)
{
    int64_t s = static_cast<int64_t>(result);
    unsigned f = 0;
    if (s < 0)
        f |= 1u << isa::CR_LT;
    else if (s > 0)
        f |= 1u << isa::CR_GT;
    else
        f |= 1u << isa::CR_EQ;
    st.setCrField(0, f);
}

void
doCompare(CoreState &st, unsigned bf, bool l64, bool sign, uint64_t a,
          uint64_t b)
{
    if (!l64) {
        if (sign) {
            a = static_cast<uint64_t>(sext(a, 32));
            b = static_cast<uint64_t>(sext(b, 32));
        } else {
            a &= mask(32);
            b &= mask(32);
        }
    }
    unsigned f = 0;
    bool lt, gt;
    if (sign) {
        lt = static_cast<int64_t>(a) < static_cast<int64_t>(b);
        gt = static_cast<int64_t>(a) > static_cast<int64_t>(b);
    } else {
        lt = a < b;
        gt = a > b;
    }
    if (lt)
        f |= 1u << isa::CR_LT;
    else if (gt)
        f |= 1u << isa::CR_GT;
    else
        f |= 1u << isa::CR_EQ;
    st.setCrField(bf, f);
}

// ------------------------------------------------------------------
// Micro-op handlers.  Each handler fully retires one instruction:
// architectural update, functional counter bumps, optional warming,
// and the PC advance.  Semantics mirror Executor::stepDecoded() (the
// differential engine test holds the two paths bit-identical).
// ------------------------------------------------------------------

#define OP_HANDLER(name) \
    void name(const MicroOp &mo, FastCtx &x)

// --- D-form arithmetic / logical (immediate pre-extended, pre-shifted)

OP_HANDLER(hAddi)
{
    const isa::Inst &i = mo.inst;
    x.st.gpr[i.rt] = (i.ra ? x.st.gpr[i.ra] : 0) + mo.imm;
    x.pc += 4;
}

OP_HANDLER(hMulli)
{
    const isa::Inst &i = mo.inst;
    x.st.gpr[i.rt] = x.st.gpr[i.ra] * mo.imm;
    x.pc += 4;
}

OP_HANDLER(hOri)
{
    const isa::Inst &i = mo.inst;
    x.st.gpr[i.rt] = x.st.gpr[i.ra] | mo.imm;
    x.pc += 4;
}

OP_HANDLER(hXori)
{
    const isa::Inst &i = mo.inst;
    x.st.gpr[i.rt] = x.st.gpr[i.ra] ^ mo.imm;
    x.pc += 4;
}

OP_HANDLER(hAndiRc)
{
    const isa::Inst &i = mo.inst;
    uint64_t r = x.st.gpr[i.ra] & mo.imm;
    x.st.gpr[i.rt] = r;
    setCr0(x.st, r);
    x.pc += 4;
}

OP_HANDLER(hCmpi)
{
    const isa::Inst &i = mo.inst;
    doCompare(x.st, i.bf, i.l64, true, x.st.gpr[i.ra], mo.imm);
    x.pc += 4;
}

OP_HANDLER(hCmpli)
{
    const isa::Inst &i = mo.inst;
    doCompare(x.st, i.bf, i.l64, false, x.st.gpr[i.ra], mo.imm);
    x.pc += 4;
}

// --- loads / stores (templated over width, extension and addressing)

template <unsigned Size, bool Sign, bool Indexed>
OP_HANDLER(hLoad)
{
    const isa::Inst &i = mo.inst;
    uint64_t base = i.ra ? x.st.gpr[i.ra] : 0;
    uint64_t ea = base + (Indexed ? x.st.gpr[i.rb] : mo.imm);
    ++x.c.loads;
    if (x.l1d)
        x.l1d->access(ea, false);
    uint64_t v;
    if constexpr (Size == 1)
        v = x.mem.readU8(ea);
    else if constexpr (Size == 2)
        v = x.mem.readU16(ea);
    else if constexpr (Size == 4)
        v = x.mem.readU32(ea);
    else
        v = x.mem.readU64(ea);
    if constexpr (Sign && Size < 8)
        v = static_cast<uint64_t>(sext(v, Size * 8));
    x.st.gpr[i.rt] = v;
    x.pc += 4;
}

template <unsigned Size, bool Indexed>
OP_HANDLER(hStore)
{
    const isa::Inst &i = mo.inst;
    uint64_t base = i.ra ? x.st.gpr[i.ra] : 0;
    uint64_t ea = base + (Indexed ? x.st.gpr[i.rb] : mo.imm);
    ++x.c.stores;
    if (x.l1d)
        x.l1d->access(ea, true);
    uint64_t v = x.st.gpr[i.rt];
    if constexpr (Size == 1)
        x.mem.writeU8(ea, static_cast<uint8_t>(v));
    else if constexpr (Size == 2)
        x.mem.writeU16(ea, static_cast<uint16_t>(v));
    else if constexpr (Size == 4)
        x.mem.writeU32(ea, static_cast<uint32_t>(v));
    else
        x.mem.writeU64(ea, v);
    x.pc += 4;
}

// --- X/XO-form ALU (record form folded into the handler)

#define ALU_RC(name, expr)                                            \
    OP_HANDLER(name)                                                  \
    {                                                                 \
        const isa::Inst &i = mo.inst;                                 \
        auto &g = x.st.gpr;                                           \
        uint64_t a = g[i.ra];                                         \
        uint64_t b = g[i.rb];                                         \
        (void)a;                                                      \
        (void)b;                                                      \
        uint64_t r = (expr);                                          \
        g[i.rt] = r;                                                  \
        if (i.rc)                                                     \
            setCr0(x.st, r);                                          \
        x.pc += 4;                                                    \
    }

#define ALU_NORC(name, expr)                                          \
    OP_HANDLER(name)                                                  \
    {                                                                 \
        const isa::Inst &i = mo.inst;                                 \
        auto &g = x.st.gpr;                                           \
        uint64_t a = g[i.ra];                                         \
        uint64_t b = g[i.rb];                                         \
        (void)a;                                                      \
        (void)b;                                                      \
        g[i.rt] = (expr);                                             \
        x.pc += 4;                                                    \
    }

ALU_RC(hAdd, a + b)
ALU_RC(hSubf, b - a) // rt = rb - ra (PowerPC subtract-from)
ALU_RC(hNeg, ~a + 1)
ALU_RC(hMulld, a * b)
ALU_RC(hDivd,
       (static_cast<int64_t>(b) == 0 ||
        (static_cast<int64_t>(a) == INT64_MIN &&
         static_cast<int64_t>(b) == -1))
           ? 0
           : static_cast<uint64_t>(static_cast<int64_t>(a) /
                                   static_cast<int64_t>(b)))
ALU_RC(hDivdu, b ? a / b : 0)
ALU_RC(hAnd, a & b)
ALU_RC(hAndc, a & ~b)
ALU_RC(hOr, a | b)
ALU_RC(hOrc, a | ~b)
ALU_RC(hXor, a ^ b)
ALU_RC(hNor, ~(a | b))
ALU_RC(hNand, ~(a & b))
ALU_RC(hEqv, ~(a ^ b))
ALU_RC(hSld, (b & 0x7f) >= 64 ? 0 : a << (b & 0x7f))
ALU_RC(hSrd, (b & 0x7f) >= 64 ? 0 : a >> (b & 0x7f))
ALU_RC(hSrad,
       static_cast<uint64_t>(
           (b & 0x7f) >= 64
               ? (static_cast<int64_t>(a) < 0 ? -1 : 0)
               : (static_cast<int64_t>(a) >> (b & 0x7f))))
ALU_RC(hExtsb, static_cast<uint64_t>(sext(a, 8)))
ALU_RC(hExtsh, static_cast<uint64_t>(sext(a, 16)))
ALU_RC(hExtsw, static_cast<uint64_t>(sext(a, 32)))
ALU_NORC(hCntlzd, static_cast<uint64_t>(std::countl_zero(a)))
ALU_NORC(hSldi, a << i.rb)
ALU_NORC(hSrdi, a >> i.rb)
ALU_NORC(hSradi,
         static_cast<uint64_t>(static_cast<int64_t>(a) >> i.rb))
ALU_NORC(hMaxd,
         static_cast<uint64_t>(
             static_cast<int64_t>(a) > static_cast<int64_t>(b)
                 ? static_cast<int64_t>(a)
                 : static_cast<int64_t>(b)))
ALU_NORC(hMind,
         static_cast<uint64_t>(
             static_cast<int64_t>(a) < static_cast<int64_t>(b)
                 ? static_cast<int64_t>(a)
                 : static_cast<int64_t>(b)))

#undef ALU_RC
#undef ALU_NORC

OP_HANDLER(hIsel)
{
    const isa::Inst &i = mo.inst;
    auto &g = x.st.gpr;
    g[i.rt] = x.st.crBit(i.bi) ? g[i.ra] : g[i.rb];
    x.pc += 4;
}

OP_HANDLER(hCmp)
{
    const isa::Inst &i = mo.inst;
    doCompare(x.st, i.bf, i.l64, true, x.st.gpr[i.ra], x.st.gpr[i.rb]);
    x.pc += 4;
}

OP_HANDLER(hCmpl)
{
    const isa::Inst &i = mo.inst;
    doCompare(x.st, i.bf, i.l64, false, x.st.gpr[i.ra], x.st.gpr[i.rb]);
    x.pc += 4;
}

// --- branches (direct targets precomputed into mo.imm)

/** BTAC warming with the detailed model's exact update rule. */
inline void
warmBtac(FastCtx &x, uint64_t pc, bool taken, uint64_t target)
{
    Btac::Lookup bl = x.btac->lookup(pc);
    x.btac->update(pc, taken, taken ? target : 0, bl);
}

OP_HANDLER(hB)
{
    ++x.c.branches;
    ++x.c.takenBranches;
    if (x.btac)
        warmBtac(x, x.pc, true, mo.imm);
    if (mo.inst.lk)
        x.st.lr = x.pc + 4;
    x.pc = mo.imm;
}

/** BC with BO_ALWAYS: unconditional, not a condBranch. */
OP_HANDLER(hBcAlways)
{
    ++x.c.branches;
    ++x.c.takenBranches;
    if (x.btac)
        warmBtac(x, x.pc, true, mo.imm);
    if (mo.inst.lk)
        x.st.lr = x.pc + 4;
    x.pc = mo.imm;
}

/** Shared tail of the conditional BC variants. */
inline void
finishBc(const MicroOp &mo, FastCtx &x, bool taken)
{
    ++x.c.branches;
    ++x.c.condBranches;
    if (taken)
        ++x.c.takenBranches;
    if (x.pred)
        x.pred->update(x.pc, taken);
    if (x.btac)
        warmBtac(x, x.pc, taken, mo.imm);
    if (mo.inst.lk)
        x.st.lr = x.pc + 4;
    x.pc = taken ? mo.imm : x.pc + 4;
}

OP_HANDLER(hBcTrue) { finishBc(mo, x, x.st.crBit(mo.inst.bi)); }
OP_HANDLER(hBcFalse) { finishBc(mo, x, !x.st.crBit(mo.inst.bi)); }

OP_HANDLER(hBcDnz)
{
    uint64_t v = --x.st.ctr;
    finishBc(mo, x, v != 0);
}

OP_HANDLER(hBcDz)
{
    uint64_t v = --x.st.ctr;
    finishBc(mo, x, v == 0);
}

/** Indirect branches: target read from LR or CTR at execution. */
template <bool ViaCtr>
OP_HANDLER(hBcReg)
{
    const isa::Inst &i = mo.inst;
    bool cond = i.bo != isa::BO_ALWAYS;
    bool taken = evalBranchCond(i.bo, i.bi, x.st, x.st.ctr);
    uint64_t target = (ViaCtr ? x.st.ctr : x.st.lr) & ~3ULL;
    ++x.c.branches;
    if (taken)
        ++x.c.takenBranches;
    if (cond) {
        ++x.c.condBranches;
        if (x.pred)
            x.pred->update(x.pc, taken);
    }
    if (x.btac)
        warmBtac(x, x.pc, taken, target);
    if (i.lk)
        x.st.lr = x.pc + 4;
    x.pc = taken ? target : x.pc + 4;
}

// --- CR logic, SPR moves, syscall

OP_HANDLER(hCrand)
{
    const isa::Inst &i = mo.inst;
    x.st.setCrBit(i.rt, x.st.crBit(i.ra) && x.st.crBit(i.rb));
    x.pc += 4;
}

OP_HANDLER(hCror)
{
    const isa::Inst &i = mo.inst;
    x.st.setCrBit(i.rt, x.st.crBit(i.ra) || x.st.crBit(i.rb));
    x.pc += 4;
}

OP_HANDLER(hCrxor)
{
    const isa::Inst &i = mo.inst;
    x.st.setCrBit(i.rt, x.st.crBit(i.ra) != x.st.crBit(i.rb));
    x.pc += 4;
}

OP_HANDLER(hCrnor)
{
    const isa::Inst &i = mo.inst;
    x.st.setCrBit(i.rt, !(x.st.crBit(i.ra) || x.st.crBit(i.rb)));
    x.pc += 4;
}

OP_HANDLER(hMtLr)
{
    x.st.lr = x.st.gpr[mo.inst.rt];
    x.pc += 4;
}

OP_HANDLER(hMtCtr)
{
    x.st.ctr = x.st.gpr[mo.inst.rt];
    x.pc += 4;
}

OP_HANDLER(hMfLr)
{
    x.st.gpr[mo.inst.rt] = x.st.lr;
    x.pc += 4;
}

OP_HANDLER(hMfCtr)
{
    x.st.gpr[mo.inst.rt] = x.st.ctr;
    x.pc += 4;
}

OP_HANDLER(hMtsprBad)
{
    (void)x;
    panic("mtspr: unsupported SPR %u", mo.inst.spr);
}

OP_HANDLER(hMfsprBad)
{
    (void)x;
    panic("mfspr: unsupported SPR %u", mo.inst.spr);
}

OP_HANDLER(hMfcr)
{
    (void)mo;
    x.st.gpr[mo.inst.rt] = x.st.cr;
    x.pc += 4;
}

OP_HANDLER(hSc)
{
    (void)mo;
    uint64_t fn = x.st.gpr[0];
    uint64_t arg = x.st.gpr[3];
    switch (fn) {
      case isa::SYS_EXIT:
        x.halted = true;
        x.exitCode = static_cast<int64_t>(arg);
        break;
      case isa::SYS_PUTC:
        x.console += static_cast<char>(arg & 0xff);
        break;
      case isa::SYS_PUTINT:
        x.console += strprintf("%lld",
                               static_cast<long long>(
                                   static_cast<int64_t>(arg)));
        break;
      case isa::SYS_PUTHEX:
        x.console += strprintf("0x%llx",
                               static_cast<unsigned long long>(arg));
        break;
      default:
        panic("unknown syscall %llu",
              static_cast<unsigned long long>(fn));
    }
    x.pc += 4;
}

#undef OP_HANDLER

} // namespace

void
Executor::setImage(uint64_t base, size_t bytes)
{
    imageBase_ = base;
    imageBytes_ = bytes;
    ops_.assign(bytes / 4, MicroOp());
}

void
Executor::invalidateDecodeCache()
{
    for (MicroOp &mo : ops_)
        mo = MicroOp();
}

void
Executor::buildMicroOp(MicroOp &mo, uint64_t pc) const
{
    uint32_t word = mem_.readU32(pc);
    isa::Inst d = isa::decode(word);
    if (!d.valid()) {
        panic("invalid instruction 0x%08x at pc 0x%llx", word,
              static_cast<unsigned long long>(pc));
    }
    mo.inst = d;

    uint64_t simm = static_cast<uint64_t>(static_cast<int64_t>(d.imm));
    uint64_t uimm = static_cast<uint32_t>(d.imm);
    MicroOp::Fn fn = nullptr;
    switch (d.op) {
      case Op::ADDI: fn = hAddi; mo.imm = simm; break;
      case Op::ADDIS: fn = hAddi; mo.imm = simm << 16; break;
      case Op::MULLI: fn = hMulli; mo.imm = simm; break;
      case Op::ORI: fn = hOri; mo.imm = uimm; break;
      case Op::ORIS: fn = hOri; mo.imm = uimm << 16; break;
      case Op::XORI: fn = hXori; mo.imm = uimm; break;
      case Op::ANDI_RC: fn = hAndiRc; mo.imm = uimm; break;
      case Op::CMPI: fn = hCmpi; mo.imm = simm; break;
      case Op::CMPLI: fn = hCmpli; mo.imm = uimm; break;

      case Op::LBZ: fn = hLoad<1, false, false>; mo.imm = simm; break;
      case Op::LHZ: fn = hLoad<2, false, false>; mo.imm = simm; break;
      case Op::LHA: fn = hLoad<2, true, false>; mo.imm = simm; break;
      case Op::LWZ: fn = hLoad<4, false, false>; mo.imm = simm; break;
      case Op::LWA: fn = hLoad<4, true, false>; mo.imm = simm; break;
      case Op::LD: fn = hLoad<8, false, false>; mo.imm = simm; break;
      case Op::STB: fn = hStore<1, false>; mo.imm = simm; break;
      case Op::STH: fn = hStore<2, false>; mo.imm = simm; break;
      case Op::STW: fn = hStore<4, false>; mo.imm = simm; break;
      case Op::STD: fn = hStore<8, false>; mo.imm = simm; break;

      case Op::LBZX: fn = hLoad<1, false, true>; break;
      case Op::LHZX: fn = hLoad<2, false, true>; break;
      case Op::LHAX: fn = hLoad<2, true, true>; break;
      case Op::LWZX: fn = hLoad<4, false, true>; break;
      case Op::LWAX: fn = hLoad<4, true, true>; break;
      case Op::LDX: fn = hLoad<8, false, true>; break;
      case Op::STBX: fn = hStore<1, true>; break;
      case Op::STHX: fn = hStore<2, true>; break;
      case Op::STWX: fn = hStore<4, true>; break;
      case Op::STDX: fn = hStore<8, true>; break;

      case Op::ADD: fn = hAdd; break;
      case Op::SUBF: fn = hSubf; break;
      case Op::NEG: fn = hNeg; break;
      case Op::MULLD: fn = hMulld; break;
      case Op::DIVD: fn = hDivd; break;
      case Op::DIVDU: fn = hDivdu; break;
      case Op::AND: fn = hAnd; break;
      case Op::ANDC: fn = hAndc; break;
      case Op::OR: fn = hOr; break;
      case Op::ORC: fn = hOrc; break;
      case Op::XOR: fn = hXor; break;
      case Op::NOR: fn = hNor; break;
      case Op::NAND: fn = hNand; break;
      case Op::EQV: fn = hEqv; break;
      case Op::SLD: fn = hSld; break;
      case Op::SRD: fn = hSrd; break;
      case Op::SRAD: fn = hSrad; break;
      case Op::SLDI: fn = hSldi; break;
      case Op::SRDI: fn = hSrdi; break;
      case Op::SRADI: fn = hSradi; break;
      case Op::EXTSB: fn = hExtsb; break;
      case Op::EXTSH: fn = hExtsh; break;
      case Op::EXTSW: fn = hExtsw; break;
      case Op::CNTLZD: fn = hCntlzd; break;
      case Op::CMP: fn = hCmp; break;
      case Op::CMPL: fn = hCmpl; break;
      case Op::ISEL: fn = hIsel; break;
      case Op::MAXD: fn = hMaxd; break;
      case Op::MIND: fn = hMind; break;

      case Op::B:
      case Op::BC: {
        mo.imm = d.aa ? static_cast<uint64_t>(d.imm)
                      : pc + static_cast<int64_t>(d.imm);
        if (d.op == Op::B) {
            fn = hB;
        } else {
            switch (d.bo) {
              case isa::BO_ALWAYS: fn = hBcAlways; break;
              case isa::BO_COND_TRUE: fn = hBcTrue; break;
              case isa::BO_COND_FALSE: fn = hBcFalse; break;
              case isa::BO_DNZ: fn = hBcDnz; break;
              case isa::BO_DZ: fn = hBcDz; break;
              default:
                panic("unsupported BO pattern %u", d.bo);
            }
        }
        break;
      }
      case Op::BCLR: fn = hBcReg<false>; break;
      case Op::BCCTR: fn = hBcReg<true>; break;

      case Op::CRAND: fn = hCrand; break;
      case Op::CROR: fn = hCror; break;
      case Op::CRXOR: fn = hCrxor; break;
      case Op::CRNOR: fn = hCrnor; break;

      case Op::MTSPR:
        fn = d.spr == isa::SPR_LR    ? hMtLr
             : d.spr == isa::SPR_CTR ? hMtCtr
                                     : hMtsprBad;
        break;
      case Op::MFSPR:
        fn = d.spr == isa::SPR_LR    ? hMfLr
             : d.spr == isa::SPR_CTR ? hMfCtr
                                     : hMfsprBad;
        break;
      case Op::MFCR: fn = hMfcr; break;
      case Op::SC: fn = hSc; break;

      default:
        panic("unimplemented opcode %u at pc 0x%llx",
              static_cast<unsigned>(d.op),
              static_cast<unsigned long long>(pc));
    }
    mo.fn = fn;
}

Executor::FastResult
Executor::runFast(uint64_t max, Counters &c, const Warming *warm)
{
    FastCtx x{state_, mem_, c, console_};
    x.pc = state_.pc;
    if (warm) {
        x.pred = warm->pred;
        x.btac = warm->btac;
        x.l1d = warm->l1d;
    }

    FastResult res;
    uint64_t n = 0;
    const uint64_t base = imageBase_;
    const uint64_t bytes = imageBytes_;
    const bool fast = predecode_;
    while (n < max) {
        uint64_t off = x.pc - base;
        if (fast && off < bytes && (off & 3) == 0) {
            MicroOp &mo = ops_[off >> 2];
            if (!mo.fn)
                buildMicroOp(mo, x.pc);
            ++c.opCount[size_t(mo.inst.op)];
            mo.fn(mo, x);
            ++n;
            if (x.halted) {
                res.halted = true;
                res.exitCode = x.exitCode;
                break;
            }
            continue;
        }

        // Out-of-image (or predecode disabled): per-step execution
        // with the same functional counter accounting and warming.
        state_.pc = x.pc;
        StepInfo info = step();
        x.pc = state_.pc;
        ++n;
        ++c.opCount[size_t(info.inst.op)];
        if (info.isBranch) {
            ++c.branches;
            if (info.isCondBranch) {
                ++c.condBranches;
                if (x.pred)
                    x.pred->update(info.pc, info.taken);
            }
            if (info.taken)
                ++c.takenBranches;
            if (x.btac)
                warmBtac(x, info.pc, info.taken,
                         info.taken ? info.target : 0);
        }
        if (info.isLoad) {
            ++c.loads;
            if (x.l1d)
                x.l1d->access(info.memAddr, false);
        }
        if (info.isStore) {
            ++c.stores;
            if (x.l1d)
                x.l1d->access(info.memAddr, true);
        }
        if (info.halted) {
            res.halted = true;
            res.exitCode = info.exitCode;
            break;
        }
    }

    c.instructions += n;
    state_.pc = x.pc;
    res.executed = n;
    return res;
}

void
Executor::execSyscall(StepInfo &info)
{
    uint64_t fn = state_.gpr[0];
    uint64_t arg = state_.gpr[3];
    switch (fn) {
      case isa::SYS_EXIT:
        info.halted = true;
        info.exitCode = static_cast<int64_t>(arg);
        break;
      case isa::SYS_PUTC:
        console_ += static_cast<char>(arg & 0xff);
        break;
      case isa::SYS_PUTINT:
        console_ += strprintf("%lld",
                              static_cast<long long>(
                                  static_cast<int64_t>(arg)));
        break;
      case isa::SYS_PUTHEX:
        console_ += strprintf("0x%llx",
                              static_cast<unsigned long long>(arg));
        break;
      default:
        panic("unknown syscall %llu",
              static_cast<unsigned long long>(fn));
    }
}

StepInfo
Executor::step()
{
    uint64_t pc = state_.pc;
    if (predecode_) {
        uint64_t off = pc - imageBase_;
        if (off < imageBytes_ && (off & 3) == 0) {
            MicroOp &mo = ops_[off >> 2];
            if (!mo.fn)
                buildMicroOp(mo, pc);
            return stepDecoded(mo.inst, pc);
        }
    }
    uint32_t word = mem_.readU32(pc);
    isa::Inst d = isa::decode(word);
    if (!d.valid()) {
        panic("invalid instruction 0x%08x at pc 0x%llx", word,
              static_cast<unsigned long long>(pc));
    }
    return stepDecoded(d, pc);
}

StepInfo
Executor::stepDecoded(const isa::Inst &inst, uint64_t pc)
{
    StepInfo info;
    info.pc = pc;
    info.inst = inst;

    auto &g = state_.gpr;
    uint64_t nextPc = pc + 4;

    // Base value for D/X-form address and addi computations.
    auto baseRa = [&]() -> uint64_t {
        return inst.ra == 0 ? 0 : g[inst.ra];
    };
    auto load = [&](unsigned size, bool sign, uint64_t ea) {
        info.isLoad = true;
        info.memAddr = ea;
        info.memSize = size;
        uint64_t v = 0;
        switch (size) {
          case 1: v = mem_.readU8(ea); break;
          case 2: v = mem_.readU16(ea); break;
          case 4: v = mem_.readU32(ea); break;
          case 8: v = mem_.readU64(ea); break;
        }
        if (sign && size < 8)
            v = static_cast<uint64_t>(sext(v, size * 8));
        g[inst.rt] = v;
    };
    auto store = [&](unsigned size, uint64_t ea) {
        info.isStore = true;
        info.memAddr = ea;
        info.memSize = size;
        uint64_t v = g[inst.rt];
        switch (size) {
          case 1: mem_.writeU8(ea, static_cast<uint8_t>(v)); break;
          case 2: mem_.writeU16(ea, static_cast<uint16_t>(v)); break;
          case 4: mem_.writeU32(ea, static_cast<uint32_t>(v)); break;
          case 8: mem_.writeU64(ea, v); break;
        }
    };
    auto branchTo = [&](uint64_t target, bool taken) {
        info.isBranch = true;
        info.taken = taken;
        if (taken) {
            info.target = target;
            nextPc = target;
        }
    };
    auto record = [&](uint64_t result) {
        if (inst.rc)
            setCr0(state_, result);
    };

    int64_t simm = inst.imm;
    uint64_t uimm = static_cast<uint32_t>(inst.imm);

    switch (inst.op) {
      case Op::ADDI:
        g[inst.rt] = baseRa() + static_cast<uint64_t>(simm);
        break;
      case Op::ADDIS:
        g[inst.rt] = baseRa() + (static_cast<uint64_t>(simm) << 16);
        break;
      case Op::MULLI:
        g[inst.rt] = g[inst.ra] * static_cast<uint64_t>(simm);
        break;
      case Op::ORI:
        g[inst.rt] = g[inst.ra] | uimm;
        break;
      case Op::ORIS:
        g[inst.rt] = g[inst.ra] | (uimm << 16);
        break;
      case Op::XORI:
        g[inst.rt] = g[inst.ra] ^ uimm;
        break;
      case Op::ANDI_RC:
        g[inst.rt] = g[inst.ra] & uimm;
        setCr0(state_, g[inst.rt]);
        break;
      case Op::CMPI:
        doCompare(state_, inst.bf, inst.l64, true, g[inst.ra],
                  static_cast<uint64_t>(simm));
        break;
      case Op::CMPLI:
        doCompare(state_, inst.bf, inst.l64, false, g[inst.ra], uimm);
        break;

      case Op::LBZ: load(1, false, baseRa() + simm); break;
      case Op::LHZ: load(2, false, baseRa() + simm); break;
      case Op::LHA: load(2, true, baseRa() + simm); break;
      case Op::LWZ: load(4, false, baseRa() + simm); break;
      case Op::LWA: load(4, true, baseRa() + simm); break;
      case Op::LD:  load(8, false, baseRa() + simm); break;
      case Op::STB: store(1, baseRa() + simm); break;
      case Op::STH: store(2, baseRa() + simm); break;
      case Op::STW: store(4, baseRa() + simm); break;
      case Op::STD: store(8, baseRa() + simm); break;

      case Op::LBZX: load(1, false, baseRa() + g[inst.rb]); break;
      case Op::LHZX: load(2, false, baseRa() + g[inst.rb]); break;
      case Op::LHAX: load(2, true, baseRa() + g[inst.rb]); break;
      case Op::LWZX: load(4, false, baseRa() + g[inst.rb]); break;
      case Op::LWAX: load(4, true, baseRa() + g[inst.rb]); break;
      case Op::LDX:  load(8, false, baseRa() + g[inst.rb]); break;
      case Op::STBX: store(1, baseRa() + g[inst.rb]); break;
      case Op::STHX: store(2, baseRa() + g[inst.rb]); break;
      case Op::STWX: store(4, baseRa() + g[inst.rb]); break;
      case Op::STDX: store(8, baseRa() + g[inst.rb]); break;

      case Op::ADD:
        g[inst.rt] = g[inst.ra] + g[inst.rb];
        record(g[inst.rt]);
        break;
      case Op::SUBF: // rt = rb - ra (PowerPC subtract-from)
        g[inst.rt] = g[inst.rb] - g[inst.ra];
        record(g[inst.rt]);
        break;
      case Op::NEG:
        g[inst.rt] = ~g[inst.ra] + 1;
        record(g[inst.rt]);
        break;
      case Op::MULLD:
        g[inst.rt] = g[inst.ra] * g[inst.rb];
        record(g[inst.rt]);
        break;
      case Op::DIVD: {
        int64_t a = static_cast<int64_t>(g[inst.ra]);
        int64_t b = static_cast<int64_t>(g[inst.rb]);
        // PowerPC leaves the result undefined for /0 and overflow; the
        // model defines it as 0 so runs stay deterministic.
        g[inst.rt] = (b == 0 || (a == INT64_MIN && b == -1))
                         ? 0
                         : static_cast<uint64_t>(a / b);
        record(g[inst.rt]);
        break;
      }
      case Op::DIVDU:
        g[inst.rt] = g[inst.rb] ? g[inst.ra] / g[inst.rb] : 0;
        record(g[inst.rt]);
        break;

      case Op::AND:  g[inst.rt] = g[inst.ra] & g[inst.rb]; record(g[inst.rt]); break;
      case Op::ANDC: g[inst.rt] = g[inst.ra] & ~g[inst.rb]; record(g[inst.rt]); break;
      case Op::OR:   g[inst.rt] = g[inst.ra] | g[inst.rb]; record(g[inst.rt]); break;
      case Op::ORC:  g[inst.rt] = g[inst.ra] | ~g[inst.rb]; record(g[inst.rt]); break;
      case Op::XOR:  g[inst.rt] = g[inst.ra] ^ g[inst.rb]; record(g[inst.rt]); break;
      case Op::NOR:  g[inst.rt] = ~(g[inst.ra] | g[inst.rb]); record(g[inst.rt]); break;
      case Op::NAND: g[inst.rt] = ~(g[inst.ra] & g[inst.rb]); record(g[inst.rt]); break;
      case Op::EQV:  g[inst.rt] = ~(g[inst.ra] ^ g[inst.rb]); record(g[inst.rt]); break;

      case Op::SLD: {
        unsigned sh = g[inst.rb] & 0x7f;
        g[inst.rt] = sh >= 64 ? 0 : g[inst.ra] << sh;
        record(g[inst.rt]);
        break;
      }
      case Op::SRD: {
        unsigned sh = g[inst.rb] & 0x7f;
        g[inst.rt] = sh >= 64 ? 0 : g[inst.ra] >> sh;
        record(g[inst.rt]);
        break;
      }
      case Op::SRAD: {
        unsigned sh = g[inst.rb] & 0x7f;
        int64_t v = static_cast<int64_t>(g[inst.ra]);
        g[inst.rt] = static_cast<uint64_t>(sh >= 64 ? (v < 0 ? -1 : 0)
                                                    : (v >> sh));
        record(g[inst.rt]);
        break;
      }
      case Op::SLDI:
        g[inst.rt] = g[inst.ra] << inst.rb;
        break;
      case Op::SRDI:
        g[inst.rt] = g[inst.ra] >> inst.rb;
        break;
      case Op::SRADI:
        g[inst.rt] = static_cast<uint64_t>(
            static_cast<int64_t>(g[inst.ra]) >> inst.rb);
        break;

      case Op::EXTSB:
        g[inst.rt] = static_cast<uint64_t>(sext(g[inst.ra], 8));
        record(g[inst.rt]);
        break;
      case Op::EXTSH:
        g[inst.rt] = static_cast<uint64_t>(sext(g[inst.ra], 16));
        record(g[inst.rt]);
        break;
      case Op::EXTSW:
        g[inst.rt] = static_cast<uint64_t>(sext(g[inst.ra], 32));
        record(g[inst.rt]);
        break;
      case Op::CNTLZD:
        g[inst.rt] = static_cast<uint64_t>(std::countl_zero(g[inst.ra]));
        break;

      case Op::CMP:
        doCompare(state_, inst.bf, inst.l64, true, g[inst.ra],
                  g[inst.rb]);
        break;
      case Op::CMPL:
        doCompare(state_, inst.bf, inst.l64, false, g[inst.ra],
                  g[inst.rb]);
        break;

      case Op::ISEL:
        g[inst.rt] = state_.crBit(inst.bi) ? g[inst.ra] : g[inst.rb];
        break;
      case Op::MAXD: {
        int64_t a = static_cast<int64_t>(g[inst.ra]);
        int64_t b = static_cast<int64_t>(g[inst.rb]);
        g[inst.rt] = static_cast<uint64_t>(a > b ? a : b);
        break;
      }
      case Op::MIND: {
        int64_t a = static_cast<int64_t>(g[inst.ra]);
        int64_t b = static_cast<int64_t>(g[inst.rb]);
        g[inst.rt] = static_cast<uint64_t>(a < b ? a : b);
        break;
      }

      case Op::B: {
        uint64_t target = inst.aa ? static_cast<uint64_t>(inst.imm)
                                  : pc + static_cast<int64_t>(inst.imm);
        if (inst.lk)
            state_.lr = pc + 4;
        branchTo(target, true);
        break;
      }
      case Op::BC: {
        uint64_t ctr = state_.ctr;
        if (inst.bo == isa::BO_DNZ || inst.bo == isa::BO_DZ)
            state_.ctr = --ctr;
        bool taken = evalBranchCond(inst.bo, inst.bi, state_, state_.ctr);
        if (inst.lk)
            state_.lr = pc + 4;
        uint64_t target = inst.aa ? static_cast<uint64_t>(inst.imm)
                                  : pc + static_cast<int64_t>(inst.imm);
        branchTo(target, taken);
        info.isCondBranch = inst.bo != isa::BO_ALWAYS;
        break;
      }
      case Op::BCLR: {
        bool taken = evalBranchCond(inst.bo, inst.bi, state_, state_.ctr);
        uint64_t target = state_.lr & ~3ULL;
        if (inst.lk)
            state_.lr = pc + 4;
        branchTo(target, taken);
        info.isCondBranch = inst.bo != isa::BO_ALWAYS;
        break;
      }
      case Op::BCCTR: {
        bool taken = evalBranchCond(inst.bo, inst.bi, state_, state_.ctr);
        uint64_t target = state_.ctr & ~3ULL;
        if (inst.lk)
            state_.lr = pc + 4;
        branchTo(target, taken);
        info.isCondBranch = inst.bo != isa::BO_ALWAYS;
        break;
      }

      case Op::CRAND:
        state_.setCrBit(inst.rt,
                        state_.crBit(inst.ra) && state_.crBit(inst.rb));
        break;
      case Op::CROR:
        state_.setCrBit(inst.rt,
                        state_.crBit(inst.ra) || state_.crBit(inst.rb));
        break;
      case Op::CRXOR:
        state_.setCrBit(inst.rt,
                        state_.crBit(inst.ra) != state_.crBit(inst.rb));
        break;
      case Op::CRNOR:
        state_.setCrBit(inst.rt,
                        !(state_.crBit(inst.ra) || state_.crBit(inst.rb)));
        break;

      case Op::MTSPR:
        if (inst.spr == isa::SPR_LR)
            state_.lr = g[inst.rt];
        else if (inst.spr == isa::SPR_CTR)
            state_.ctr = g[inst.rt];
        else
            panic("mtspr: unsupported SPR %u", inst.spr);
        break;
      case Op::MFSPR:
        if (inst.spr == isa::SPR_LR)
            g[inst.rt] = state_.lr;
        else if (inst.spr == isa::SPR_CTR)
            g[inst.rt] = state_.ctr;
        else
            panic("mfspr: unsupported SPR %u", inst.spr);
        break;
      case Op::MFCR:
        g[inst.rt] = state_.cr;
        break;

      case Op::SC:
        execSyscall(info);
        break;

      default:
        panic("unimplemented opcode %u at pc 0x%llx",
              static_cast<unsigned>(inst.op),
              static_cast<unsigned long long>(pc));
    }

    info.nextPc = nextPc;
    state_.pc = nextPc;
    return info;
}

} // namespace bp5::sim
