#include "sim/exec.h"

#include <bit>

#include "support/bitfield.h"
#include "support/logging.h"

namespace bp5::sim {

using isa::Op;

namespace {

/** Evaluate a BO condition (with CTR side effect applied by caller). */
bool
evalBranchCond(unsigned bo, unsigned bi, const CoreState &st, uint64_t ctr)
{
    switch (bo) {
      case isa::BO_ALWAYS:
        return true;
      case isa::BO_COND_TRUE:
        return st.crBit(bi);
      case isa::BO_COND_FALSE:
        return !st.crBit(bi);
      case isa::BO_DNZ:
        return ctr != 0;
      case isa::BO_DZ:
        return ctr == 0;
      default:
        panic("unsupported BO pattern %u", bo);
    }
}

} // namespace

void
Executor::setCr0FromResult(uint64_t result)
{
    int64_t s = static_cast<int64_t>(result);
    unsigned f = 0;
    if (s < 0)
        f |= 1u << isa::CR_LT;
    else if (s > 0)
        f |= 1u << isa::CR_GT;
    else
        f |= 1u << isa::CR_EQ;
    state_.setCrField(0, f);
}

void
Executor::compare(unsigned bf, bool l64, bool sign, uint64_t a, uint64_t b)
{
    if (!l64) {
        if (sign) {
            a = static_cast<uint64_t>(sext(a, 32));
            b = static_cast<uint64_t>(sext(b, 32));
        } else {
            a &= mask(32);
            b &= mask(32);
        }
    }
    unsigned f = 0;
    bool lt, gt;
    if (sign) {
        lt = static_cast<int64_t>(a) < static_cast<int64_t>(b);
        gt = static_cast<int64_t>(a) > static_cast<int64_t>(b);
    } else {
        lt = a < b;
        gt = a > b;
    }
    if (lt)
        f |= 1u << isa::CR_LT;
    else if (gt)
        f |= 1u << isa::CR_GT;
    else
        f |= 1u << isa::CR_EQ;
    state_.setCrField(bf, f);
}

void
Executor::execSyscall(StepInfo &info)
{
    uint64_t fn = state_.gpr[0];
    uint64_t arg = state_.gpr[3];
    switch (fn) {
      case isa::SYS_EXIT:
        info.halted = true;
        info.exitCode = static_cast<int64_t>(arg);
        break;
      case isa::SYS_PUTC:
        console_ += static_cast<char>(arg & 0xff);
        break;
      case isa::SYS_PUTINT:
        console_ += strprintf("%lld",
                              static_cast<long long>(
                                  static_cast<int64_t>(arg)));
        break;
      case isa::SYS_PUTHEX:
        console_ += strprintf("0x%llx",
                              static_cast<unsigned long long>(arg));
        break;
      default:
        panic("unknown syscall %llu",
              static_cast<unsigned long long>(fn));
    }
}

StepInfo
Executor::step()
{
    StepInfo info;
    uint64_t pc = state_.pc;
    info.pc = pc;

    auto it = decodeCache_.find(pc);
    if (it == decodeCache_.end()) {
        isa::Inst d = isa::decode(mem_.readU32(pc));
        if (!d.valid()) {
            panic("invalid instruction 0x%08x at pc 0x%llx",
                  mem_.readU32(pc),
                  static_cast<unsigned long long>(pc));
        }
        it = decodeCache_.emplace(pc, d).first;
    }
    const isa::Inst &inst = it->second;
    info.inst = inst;

    auto &g = state_.gpr;
    uint64_t nextPc = pc + 4;

    // Base value for D/X-form address and addi computations.
    auto baseRa = [&]() -> uint64_t {
        return inst.ra == 0 ? 0 : g[inst.ra];
    };
    auto load = [&](unsigned size, bool sign, uint64_t ea) {
        info.isLoad = true;
        info.memAddr = ea;
        info.memSize = size;
        uint64_t v = 0;
        switch (size) {
          case 1: v = mem_.readU8(ea); break;
          case 2: v = mem_.readU16(ea); break;
          case 4: v = mem_.readU32(ea); break;
          case 8: v = mem_.readU64(ea); break;
        }
        if (sign && size < 8)
            v = static_cast<uint64_t>(sext(v, size * 8));
        g[inst.rt] = v;
    };
    auto store = [&](unsigned size, uint64_t ea) {
        info.isStore = true;
        info.memAddr = ea;
        info.memSize = size;
        uint64_t v = g[inst.rt];
        switch (size) {
          case 1: mem_.writeU8(ea, static_cast<uint8_t>(v)); break;
          case 2: mem_.writeU16(ea, static_cast<uint16_t>(v)); break;
          case 4: mem_.writeU32(ea, static_cast<uint32_t>(v)); break;
          case 8: mem_.writeU64(ea, v); break;
        }
    };
    auto branchTo = [&](uint64_t target, bool taken) {
        info.isBranch = true;
        info.taken = taken;
        if (taken) {
            info.target = target;
            nextPc = target;
        }
    };
    auto record = [&](uint64_t result) {
        if (inst.rc)
            setCr0FromResult(result);
    };

    int64_t simm = inst.imm;
    uint64_t uimm = static_cast<uint32_t>(inst.imm);

    switch (inst.op) {
      case Op::ADDI:
        g[inst.rt] = baseRa() + static_cast<uint64_t>(simm);
        break;
      case Op::ADDIS:
        g[inst.rt] = baseRa() + (static_cast<uint64_t>(simm) << 16);
        break;
      case Op::MULLI:
        g[inst.rt] = g[inst.ra] * static_cast<uint64_t>(simm);
        break;
      case Op::ORI:
        g[inst.rt] = g[inst.ra] | uimm;
        break;
      case Op::ORIS:
        g[inst.rt] = g[inst.ra] | (uimm << 16);
        break;
      case Op::XORI:
        g[inst.rt] = g[inst.ra] ^ uimm;
        break;
      case Op::ANDI_RC:
        g[inst.rt] = g[inst.ra] & uimm;
        setCr0FromResult(g[inst.rt]);
        break;
      case Op::CMPI:
        compare(inst.bf, inst.l64, true, g[inst.ra],
                static_cast<uint64_t>(simm));
        break;
      case Op::CMPLI:
        compare(inst.bf, inst.l64, false, g[inst.ra], uimm);
        break;

      case Op::LBZ: load(1, false, baseRa() + simm); break;
      case Op::LHZ: load(2, false, baseRa() + simm); break;
      case Op::LHA: load(2, true, baseRa() + simm); break;
      case Op::LWZ: load(4, false, baseRa() + simm); break;
      case Op::LWA: load(4, true, baseRa() + simm); break;
      case Op::LD:  load(8, false, baseRa() + simm); break;
      case Op::STB: store(1, baseRa() + simm); break;
      case Op::STH: store(2, baseRa() + simm); break;
      case Op::STW: store(4, baseRa() + simm); break;
      case Op::STD: store(8, baseRa() + simm); break;

      case Op::LBZX: load(1, false, baseRa() + g[inst.rb]); break;
      case Op::LHZX: load(2, false, baseRa() + g[inst.rb]); break;
      case Op::LHAX: load(2, true, baseRa() + g[inst.rb]); break;
      case Op::LWZX: load(4, false, baseRa() + g[inst.rb]); break;
      case Op::LWAX: load(4, true, baseRa() + g[inst.rb]); break;
      case Op::LDX:  load(8, false, baseRa() + g[inst.rb]); break;
      case Op::STBX: store(1, baseRa() + g[inst.rb]); break;
      case Op::STHX: store(2, baseRa() + g[inst.rb]); break;
      case Op::STWX: store(4, baseRa() + g[inst.rb]); break;
      case Op::STDX: store(8, baseRa() + g[inst.rb]); break;

      case Op::ADD:
        g[inst.rt] = g[inst.ra] + g[inst.rb];
        record(g[inst.rt]);
        break;
      case Op::SUBF: // rt = rb - ra (PowerPC subtract-from)
        g[inst.rt] = g[inst.rb] - g[inst.ra];
        record(g[inst.rt]);
        break;
      case Op::NEG:
        g[inst.rt] = ~g[inst.ra] + 1;
        record(g[inst.rt]);
        break;
      case Op::MULLD:
        g[inst.rt] = g[inst.ra] * g[inst.rb];
        record(g[inst.rt]);
        break;
      case Op::DIVD: {
        int64_t a = static_cast<int64_t>(g[inst.ra]);
        int64_t b = static_cast<int64_t>(g[inst.rb]);
        // PowerPC leaves the result undefined for /0 and overflow; the
        // model defines it as 0 so runs stay deterministic.
        g[inst.rt] = (b == 0 || (a == INT64_MIN && b == -1))
                         ? 0
                         : static_cast<uint64_t>(a / b);
        record(g[inst.rt]);
        break;
      }
      case Op::DIVDU:
        g[inst.rt] = g[inst.rb] ? g[inst.ra] / g[inst.rb] : 0;
        record(g[inst.rt]);
        break;

      case Op::AND:  g[inst.rt] = g[inst.ra] & g[inst.rb]; record(g[inst.rt]); break;
      case Op::ANDC: g[inst.rt] = g[inst.ra] & ~g[inst.rb]; record(g[inst.rt]); break;
      case Op::OR:   g[inst.rt] = g[inst.ra] | g[inst.rb]; record(g[inst.rt]); break;
      case Op::ORC:  g[inst.rt] = g[inst.ra] | ~g[inst.rb]; record(g[inst.rt]); break;
      case Op::XOR:  g[inst.rt] = g[inst.ra] ^ g[inst.rb]; record(g[inst.rt]); break;
      case Op::NOR:  g[inst.rt] = ~(g[inst.ra] | g[inst.rb]); record(g[inst.rt]); break;
      case Op::NAND: g[inst.rt] = ~(g[inst.ra] & g[inst.rb]); record(g[inst.rt]); break;
      case Op::EQV:  g[inst.rt] = ~(g[inst.ra] ^ g[inst.rb]); record(g[inst.rt]); break;

      case Op::SLD: {
        unsigned sh = g[inst.rb] & 0x7f;
        g[inst.rt] = sh >= 64 ? 0 : g[inst.ra] << sh;
        record(g[inst.rt]);
        break;
      }
      case Op::SRD: {
        unsigned sh = g[inst.rb] & 0x7f;
        g[inst.rt] = sh >= 64 ? 0 : g[inst.ra] >> sh;
        record(g[inst.rt]);
        break;
      }
      case Op::SRAD: {
        unsigned sh = g[inst.rb] & 0x7f;
        int64_t v = static_cast<int64_t>(g[inst.ra]);
        g[inst.rt] = static_cast<uint64_t>(sh >= 64 ? (v < 0 ? -1 : 0)
                                                    : (v >> sh));
        record(g[inst.rt]);
        break;
      }
      case Op::SLDI:
        g[inst.rt] = g[inst.ra] << inst.rb;
        break;
      case Op::SRDI:
        g[inst.rt] = g[inst.ra] >> inst.rb;
        break;
      case Op::SRADI:
        g[inst.rt] = static_cast<uint64_t>(
            static_cast<int64_t>(g[inst.ra]) >> inst.rb);
        break;

      case Op::EXTSB:
        g[inst.rt] = static_cast<uint64_t>(sext(g[inst.ra], 8));
        record(g[inst.rt]);
        break;
      case Op::EXTSH:
        g[inst.rt] = static_cast<uint64_t>(sext(g[inst.ra], 16));
        record(g[inst.rt]);
        break;
      case Op::EXTSW:
        g[inst.rt] = static_cast<uint64_t>(sext(g[inst.ra], 32));
        record(g[inst.rt]);
        break;
      case Op::CNTLZD:
        g[inst.rt] = static_cast<uint64_t>(std::countl_zero(g[inst.ra]));
        break;

      case Op::CMP:
        compare(inst.bf, inst.l64, true, g[inst.ra], g[inst.rb]);
        break;
      case Op::CMPL:
        compare(inst.bf, inst.l64, false, g[inst.ra], g[inst.rb]);
        break;

      case Op::ISEL:
        g[inst.rt] = state_.crBit(inst.bi) ? g[inst.ra] : g[inst.rb];
        break;
      case Op::MAXD: {
        int64_t a = static_cast<int64_t>(g[inst.ra]);
        int64_t b = static_cast<int64_t>(g[inst.rb]);
        g[inst.rt] = static_cast<uint64_t>(a > b ? a : b);
        break;
      }
      case Op::MIND: {
        int64_t a = static_cast<int64_t>(g[inst.ra]);
        int64_t b = static_cast<int64_t>(g[inst.rb]);
        g[inst.rt] = static_cast<uint64_t>(a < b ? a : b);
        break;
      }

      case Op::B: {
        uint64_t target = inst.aa ? static_cast<uint64_t>(inst.imm)
                                  : pc + static_cast<int64_t>(inst.imm);
        if (inst.lk)
            state_.lr = pc + 4;
        branchTo(target, true);
        break;
      }
      case Op::BC: {
        uint64_t ctr = state_.ctr;
        if (inst.bo == isa::BO_DNZ || inst.bo == isa::BO_DZ)
            state_.ctr = --ctr;
        bool taken = evalBranchCond(inst.bo, inst.bi, state_, state_.ctr);
        if (inst.lk)
            state_.lr = pc + 4;
        uint64_t target = inst.aa ? static_cast<uint64_t>(inst.imm)
                                  : pc + static_cast<int64_t>(inst.imm);
        branchTo(target, taken);
        info.isCondBranch = inst.bo != isa::BO_ALWAYS;
        break;
      }
      case Op::BCLR: {
        bool taken = evalBranchCond(inst.bo, inst.bi, state_, state_.ctr);
        uint64_t target = state_.lr & ~3ULL;
        if (inst.lk)
            state_.lr = pc + 4;
        branchTo(target, taken);
        info.isCondBranch = inst.bo != isa::BO_ALWAYS;
        break;
      }
      case Op::BCCTR: {
        bool taken = evalBranchCond(inst.bo, inst.bi, state_, state_.ctr);
        uint64_t target = state_.ctr & ~3ULL;
        if (inst.lk)
            state_.lr = pc + 4;
        branchTo(target, taken);
        info.isCondBranch = inst.bo != isa::BO_ALWAYS;
        break;
      }

      case Op::CRAND:
        state_.setCrBit(inst.rt,
                        state_.crBit(inst.ra) && state_.crBit(inst.rb));
        break;
      case Op::CROR:
        state_.setCrBit(inst.rt,
                        state_.crBit(inst.ra) || state_.crBit(inst.rb));
        break;
      case Op::CRXOR:
        state_.setCrBit(inst.rt,
                        state_.crBit(inst.ra) != state_.crBit(inst.rb));
        break;
      case Op::CRNOR:
        state_.setCrBit(inst.rt,
                        !(state_.crBit(inst.ra) || state_.crBit(inst.rb)));
        break;

      case Op::MTSPR:
        if (inst.spr == isa::SPR_LR)
            state_.lr = g[inst.rt];
        else if (inst.spr == isa::SPR_CTR)
            state_.ctr = g[inst.rt];
        else
            panic("mtspr: unsupported SPR %u", inst.spr);
        break;
      case Op::MFSPR:
        if (inst.spr == isa::SPR_LR)
            g[inst.rt] = state_.lr;
        else if (inst.spr == isa::SPR_CTR)
            g[inst.rt] = state_.ctr;
        else
            panic("mfspr: unsupported SPR %u", inst.spr);
        break;
      case Op::MFCR:
        g[inst.rt] = state_.cr;
        break;

      case Op::SC:
        execSyscall(info);
        break;

      default:
        panic("unimplemented opcode %u at pc 0x%llx",
              static_cast<unsigned>(inst.op),
              static_cast<unsigned long long>(pc));
    }

    info.nextPc = nextPc;
    state_.pc = nextPc;
    return info;
}

} // namespace bp5::sim
