/**
 * @file
 * Hardware prefetch engines for the tag-only cache model: a next-line
 * stream prefetcher (miss-triggered) and a PC-indexed stride
 * prefetcher with 2-bit confidence, both issuing prefetch fills into
 * an attached Cache level.  Prefetched lines carry an arrival cycle,
 * so a demand access that catches up with an in-flight prefetch pays
 * the remaining latency only (a partial hit); issue/hit/useless
 * outcomes are tracked in CacheStats.
 *
 * The engines observe the demand-access stream only (one observe()
 * call per demand access at the attached level); with kind None the
 * observe hook is never reached and the cache behaves bit-for-bit as
 * it did before prefetching existed.
 */

#ifndef BIOPERF5_SIM_PREFETCH_H
#define BIOPERF5_SIM_PREFETCH_H

#include <cstdint>
#include <vector>

namespace bp5::sim {

class Cache;

/** Configuration of one prefetch engine. */
struct PrefetchParams
{
    enum class Kind : unsigned
    {
        None,     ///< no prefetcher attached
        NextLine, ///< fetch the next sequential line(s) on a miss
        Stride,   ///< PC-indexed stride table with confidence
    };

    Kind kind = Kind::None;
    unsigned degree = 2;       ///< lines issued per trigger
    unsigned distance = 4;     ///< stride: how many strides ahead to land
    unsigned tableEntries = 64; ///< stride: table slots (power of two)

    bool enabled() const { return kind != Kind::None; }

    friend bool operator==(const PrefetchParams &,
                           const PrefetchParams &) = default;
};

/** Stable key for manifests/CSV ("none", "next_line", "stride"). */
const char *prefetchKindKey(PrefetchParams::Kind k);

/**
 * One prefetch engine bound to one cache level.  observe() is called
 * once per demand access at that level and returns the number of
 * fills actually issued (already-resident lines are filtered by the
 * cache and not counted).
 */
class Prefetcher
{
  public:
    Prefetcher(const PrefetchParams &params, Cache *target);

    const PrefetchParams &params() const { return params_; }

    /**
     * Observe one demand access.
     * @param pc the accessing instruction (stride table index)
     * @param addr the demand address
     * @param miss true when the demand access missed at this level
     * @param now issue cycle of the demand access (arrival stamping)
     * @return number of prefetch fills issued into the cache
     */
    unsigned observe(uint64_t pc, uint64_t addr, bool miss, uint64_t now);

    /** Drop all learned state (Machine::reset). */
    void reset();

  private:
    struct StrideEntry
    {
        uint64_t tag = 0;      ///< full pc, 0 = empty
        uint64_t lastAddr = 0;
        int64_t stride = 0;
        unsigned confidence = 0; ///< saturating 0..3; >=2 issues
    };

    unsigned issueLines(uint64_t firstAddr, int64_t step, uint64_t now);

    PrefetchParams params_;
    Cache *target_;
    std::vector<StrideEntry> table_;
};

} // namespace bp5::sim

#endif // BIOPERF5_SIM_PREFETCH_H
