/**
 * @file
 * Functional executor: architecturally executes one MiniPOWER
 * instruction per step() and reports what happened so the timing model
 * can replay the committed stream.
 */

#ifndef BIOPERF5_SIM_EXEC_H
#define BIOPERF5_SIM_EXEC_H

#include <cstdint>
#include <string>
#include <unordered_map>

#include "isa/encode.h"
#include "sim/core_state.h"
#include "sim/memory.h"

namespace bp5::sim {

/** Everything the timing model needs to know about one retired op. */
struct StepInfo
{
    uint64_t pc = 0;
    uint64_t nextPc = 0;
    isa::Inst inst;

    bool isBranch = false;
    bool isCondBranch = false;
    bool taken = false;      ///< branch direction (unconditional: true)
    uint64_t target = 0;     ///< branch target when taken

    bool isLoad = false;
    bool isStore = false;
    uint64_t memAddr = 0;
    unsigned memSize = 0;

    bool halted = false;     ///< SYS_EXIT executed
    int64_t exitCode = 0;
};

/** Functional MiniPOWER core. */
class Executor
{
  public:
    Executor(CoreState &state, Memory &mem) : state_(state), mem_(mem) {}

    /**
     * Fetch, decode and execute the instruction at state.pc, advancing
     * architectural state.  Decode results are cached per address.
     * Panics on invalid encodings (the program image is broken).
     */
    StepInfo step();

    /** Characters printed by SYS_PUTC / SYS_PUTINT / SYS_PUTHEX. */
    const std::string &console() const { return console_; }
    void clearConsole() { console_.clear(); }

    /** Drop the decode cache (after loading a new program image). */
    void invalidateDecodeCache() { decodeCache_.clear(); }

  private:
    void execSyscall(StepInfo &info);
    void setCr0FromResult(uint64_t result);
    void compare(unsigned bf, bool l64, bool sign, uint64_t a, uint64_t b);

    CoreState &state_;
    Memory &mem_;
    std::string console_;
    std::unordered_map<uint64_t, isa::Inst> decodeCache_;
};

} // namespace bp5::sim

#endif // BIOPERF5_SIM_EXEC_H
