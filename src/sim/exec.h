/**
 * @file
 * Functional executor: architecturally executes MiniPOWER instructions
 * and reports what happened so the timing model can replay the
 * committed stream.
 *
 * Two execution paths share one set of semantics:
 *
 *  - step(): one instruction per call, returning a full StepInfo for
 *    the timing model.  Used by detailed (timed) execution.
 *  - runFast(): a compiled-engine loop over a pre-decoded micro-op
 *    image.  setImage() registers the program's text segment; each
 *    4-byte slot is lazily decoded once into a MicroOp whose execute
 *    function pointer is then called directly — no hashing, no
 *    isa::Inst copies — so the hot loop is ops[idx].fn(op, ctx).
 *    Used for functional runs and SMARTS fast-forward, optionally
 *    warming the branch predictor, BTAC and L1D en route.
 *
 * Decode stays lazy (slot built on first execution) so the legacy
 * decode-at-first-use semantics are preserved exactly: data words
 * inside the image never decode, invalid encodings panic only if
 * reached, and stores to not-yet-executed code take effect.
 */

#ifndef BIOPERF5_SIM_EXEC_H
#define BIOPERF5_SIM_EXEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/encode.h"
#include "sim/core_state.h"
#include "sim/counters.h"
#include "sim/memory.h"

namespace bp5::sim {

class Btac;
class Cache;
class DirectionPredictor;

/** Everything the timing model needs to know about one retired op. */
struct StepInfo
{
    uint64_t pc = 0;
    uint64_t nextPc = 0;
    isa::Inst inst;

    bool isBranch = false;
    bool isCondBranch = false;
    bool taken = false;      ///< branch direction (unconditional: true)
    uint64_t target = 0;     ///< branch target when taken

    bool isLoad = false;
    bool isStore = false;
    uint64_t memAddr = 0;
    unsigned memSize = 0;

    bool halted = false;     ///< SYS_EXIT executed
    int64_t exitCode = 0;
};

struct MicroOp;

/** Mutable state threaded through the fast micro-op handlers. */
struct FastCtx
{
    CoreState &st;
    Memory &mem;
    Counters &c;
    std::string &console;
    uint64_t pc = 0;
    bool halted = false;
    int64_t exitCode = 0;
    /// Optional functional-warming hooks (SMARTS fast-forward).
    DirectionPredictor *pred = nullptr;
    Btac *btac = nullptr;
    Cache *l1d = nullptr;
};

/** One pre-decoded slot of the micro-op image. */
struct MicroOp
{
    using Fn = void (*)(const MicroOp &, FastCtx &);
    Fn fn = nullptr;   ///< execute handler; nullptr = not yet decoded
    isa::Inst inst;    ///< decoded form (timing model, slow paths)
    uint64_t imm = 0;  ///< pre-computed immediate: sign/zero-extended
                       ///< (and pre-shifted for ADDIS/ORIS), or the
                       ///< absolute target for direct branches
};

/** Functional MiniPOWER core. */
class Executor
{
  public:
    Executor(CoreState &state, Memory &mem) : state_(state), mem_(mem) {}

    /**
     * Fetch, decode and execute the instruction at state.pc, advancing
     * architectural state.  Inside the registered image the pre-decoded
     * micro-op provides the decode; outside it (or with predecode
     * disabled) the word is decoded fresh from memory each step.
     * Panics on invalid encodings (the program image is broken).
     */
    StepInfo step();

    /** Outcome of a runFast() burst. */
    struct FastResult
    {
        uint64_t executed = 0;
        bool halted = false;
        int64_t exitCode = 0;
    };

    /** Structures to warm functionally during fast-forward. */
    struct Warming
    {
        DirectionPredictor *pred = nullptr;
        Btac *btac = nullptr; ///< pass nullptr when BTAC is disabled
        Cache *l1d = nullptr;
    };

    /**
     * Execute up to @p max instructions through the micro-op image,
     * accumulating architectural counters (instructions, opCount,
     * branch/load/store counts — never cycles) into @p c.  Counter
     * semantics match Machine::runFunctional()'s accounting exactly.
     * With @p warm, conditional-branch outcomes update the direction
     * predictor, all branches update the BTAC and memory ops touch the
     * L1D, mirroring the detailed model's update rules.  Falls back to
     * per-step execution outside the image or with predecode disabled.
     */
    FastResult runFast(uint64_t max, Counters &c,
                       const Warming *warm = nullptr);

    /** Characters printed by SYS_PUTC / SYS_PUTINT / SYS_PUTHEX. */
    const std::string &console() const { return console_; }
    void clearConsole() { console_.clear(); }

    /**
     * Register the program text segment [base, base+bytes): allocates
     * one (undecoded) micro-op slot per word.  Replaces any previous
     * image; memory contents are not touched.
     */
    void setImage(uint64_t base, size_t bytes);

    /**
     * Drop all decoded micro-ops (after loading a new program image or
     * on reset); the image range is kept and slots rebuild lazily from
     * current memory contents, so reset ≡ fresh holds bit-for-bit.
     */
    void invalidateDecodeCache();

    /**
     * Disable the pre-decoded engine: every step decodes fresh from
     * memory and runFast degrades to the per-step loop.  Reference
     * mode for the differential engine tests.
     */
    void setPredecode(bool on) { predecode_ = on; }
    bool predecode() const { return predecode_; }

  private:
    StepInfo stepDecoded(const isa::Inst &inst, uint64_t pc);
    void buildMicroOp(MicroOp &mo, uint64_t pc) const;
    void execSyscall(StepInfo &info);

    CoreState &state_;
    Memory &mem_;
    std::string console_;

    uint64_t imageBase_ = 0;
    uint64_t imageBytes_ = 0;
    std::vector<MicroOp> ops_;
    bool predecode_ = true;
};

} // namespace bp5::sim

#endif // BIOPERF5_SIM_EXEC_H
