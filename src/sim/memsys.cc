#include "sim/memsys.h"

#include "sim/cache.h"

namespace bp5::sim {

const char *
memSysModeKey(MemSysParams::Mode m)
{
    switch (m) {
      case MemSysParams::Mode::Classic:
        return "classic";
      case MemSysParams::Mode::Lsq:
        return "lsq";
    }
    return "?";
}

MemorySystem::MemorySystem(const MemSysParams &params, Cache *l1d, Cache *l2)
    : params_(params), l1d_(l1d), l2_(l2),
      lsq_(params.lsq, params.classic())
{
    if (params_.l1dPrefetch.enabled())
        l1dPf_ = std::make_unique<Prefetcher>(params_.l1dPrefetch, l1d_);
    if (params_.l2Prefetch.enabled())
        l2Pf_ = std::make_unique<Prefetcher>(params_.l2Prefetch, l2_);
}

void
MemorySystem::beginRun()
{
    lsq_.beginRun();
}

void
MemorySystem::reset()
{
    lsq_.reset();
    if (l1dPf_)
        l1dPf_->reset();
    if (l2Pf_)
        l2Pf_->reset();
}

} // namespace bp5::sim
