/**
 * @file
 * PMU-style performance counters of the core model.  These mirror the
 * POWER5 hardware-counter quantities the paper reports: IPC, L1D miss
 * rate, direction- vs target-caused branch mispredictions, completion
 * stalls attributed to FXU, and the branch-mix statistics of Table II.
 */

#ifndef BIOPERF5_SIM_COUNTERS_H
#define BIOPERF5_SIM_COUNTERS_H

#include <array>
#include <cstdint>
#include <map>

#include "isa/opcodes.h"

namespace bp5::sim {

/** Why the commit stage failed to commit on a given cycle. */
enum class StallReason : unsigned
{
    None,     ///< committed at full width
    Frontend, ///< fetch-limited (taken-branch bubbles, I-cache)
    Branch,   ///< redirect after a branch misprediction
    FXU,      ///< waiting on a fixed-point result or free FXU
    LSU,      ///< waiting on a load/store (cache misses)
    Other,
    NUM_REASONS,
};

/**
 * POWER5-style cycle-accounting component.  Every simulated cycle is
 * attributed to exactly one component (the CPI stack); the components
 * sum bit-exactly to `Counters::cycles` per run and per sampler
 * window.  Attribution priority when causes overlap is documented in
 * DESIGN.md section 4.10.
 */
enum class CpiComponent : unsigned
{
    Completing,    ///< a group completed this cycle
    Frontend,      ///< I-side: fetch-limited (taken bubbles, L1I, width)
    BranchFlush,   ///< pipeline refill after a branch misprediction
    DisambigFlush, ///< refill after a load-ordering violation squash
    LsuFwd,        ///< load waiting on store-queue forwarded data
    LsuL1,         ///< data-side: L1-resident load/store dependences
    LsuL2,         ///< L1D miss served from L2
    LsuMem,        ///< L2 miss served from memory
    Fxu,           ///< fixed-point result latency or FXU saturation
    LsqFull,       ///< load/store queue full at dispatch
    RobFull,       ///< completion table (ROB) full at dispatch
    Other,         ///< BRU/CRU serialization and unclassified delay
    NUM_COMPONENTS,
};

constexpr size_t kNumCpiComponents = size_t(CpiComponent::NUM_COMPONENTS);

/** Stable machine-readable key ("completing", "branch_flush", ...). */
constexpr const char *
cpiComponentKey(CpiComponent c)
{
    switch (c) {
    case CpiComponent::Completing: return "completing";
    case CpiComponent::Frontend: return "frontend";
    case CpiComponent::BranchFlush: return "branch_flush";
    case CpiComponent::DisambigFlush: return "disambig_flush";
    case CpiComponent::LsuFwd: return "lsu_fwd";
    case CpiComponent::LsuL1: return "lsu_l1";
    case CpiComponent::LsuL2: return "lsu_l2";
    case CpiComponent::LsuMem: return "lsu_mem";
    case CpiComponent::Fxu: return "fxu";
    case CpiComponent::LsqFull: return "lsq_full";
    case CpiComponent::RobFull: return "rob_full";
    case CpiComponent::Other: return "other";
    case CpiComponent::NUM_COMPONENTS: break;
    }
    return "?";
}

/** Human-readable label for reports ("branch flush", "L2 data", ...). */
constexpr const char *
cpiComponentLabel(CpiComponent c)
{
    switch (c) {
    case CpiComponent::Completing: return "completing";
    case CpiComponent::Frontend: return "frontend empty";
    case CpiComponent::BranchFlush: return "branch flush";
    case CpiComponent::DisambigFlush: return "disambig flush";
    case CpiComponent::LsuFwd: return "forwarded data";
    case CpiComponent::LsuL1: return "L1D data";
    case CpiComponent::LsuL2: return "L2 data";
    case CpiComponent::LsuMem: return "memory data";
    case CpiComponent::Fxu: return "FXU";
    case CpiComponent::LsqFull: return "LSQ full";
    case CpiComponent::RobFull: return "ROB full";
    case CpiComponent::Other: return "other";
    case CpiComponent::NUM_COMPONENTS: break;
    }
    return "?";
}

/** Aggregate counters for one simulation run or interval. */
struct Counters
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;

    // Branch statistics.
    uint64_t branches = 0;          ///< all branch instructions
    uint64_t condBranches = 0;
    uint64_t takenBranches = 0;
    uint64_t mispredDirection = 0;  ///< direction mispredicts
    uint64_t mispredTarget = 0;     ///< target mispredicts (indirect)
    uint64_t takenBubbles = 0;      ///< 2-cycle taken-branch penalties paid

    // BTAC.
    uint64_t btacPredictions = 0;
    uint64_t btacCorrect = 0;
    uint64_t btacMispredicts = 0;

    // Memory.
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t l1dAccesses = 0;
    uint64_t l1dMisses = 0;
    uint64_t l1iAccesses = 0;
    uint64_t l1iMisses = 0;
    uint64_t l2Misses = 0;

    // Memory system (zero in classic MemSysParams mode).
    uint64_t storeForwards = 0;   ///< loads served from the store queue
    uint64_t disambigFlushes = 0; ///< load-ordering violation squashes
    uint64_t lsqFullLoads = 0;    ///< loads delayed by a full load queue
    uint64_t lsqFullStores = 0;   ///< stores delayed by a full store queue
    uint64_t prefetchIssued = 0;  ///< prefetch fills issued (all levels)
    uint64_t prefetchHits = 0;    ///< demand hits on prefetched L1D lines

    // Completion-stall cycles by attributed reason.
    std::array<uint64_t, size_t(StallReason::NUM_REASONS)> stallCycles{};

    // CPI stack: every cycle attributed to exactly one component.
    // Invariant (tested): sum over components == `cycles`, bit-exact,
    // per run and per PmuSampler window, sampled or not.
    std::array<uint64_t, kNumCpiComponents> cpi{};

    // Dynamic instruction mix.
    std::array<uint64_t, size_t(isa::Op::NUM_OPS)> opCount{};

    // ---- derived metrics -------------------------------------------

    double ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }

    double
    branchFraction() const
    {
        return instructions ? double(branches) / double(instructions) : 0.0;
    }

    /** Mispredictions (any cause) per conditional branch. */
    double
    branchMispredictRate() const
    {
        uint64_t m = mispredDirection + mispredTarget;
        return condBranches ? double(m) / double(condBranches) : 0.0;
    }

    /** Share of all mispredictions caused by wrong direction (Table I). */
    double
    mispredictDirectionShare() const
    {
        uint64_t m = mispredDirection + mispredTarget;
        return m ? double(mispredDirection) / double(m) : 0.0;
    }

    double
    takenBranchFraction() const
    {
        return branches ? double(takenBranches) / double(branches) : 0.0;
    }

    double
    l1dMissRate() const
    {
        return l1dAccesses ? double(l1dMisses) / double(l1dAccesses) : 0.0;
    }

    /** Stall share of total cycles for @p r (Table I's FXU column). */
    double
    stallShare(StallReason r) const
    {
        return cycles ? double(stallCycles[size_t(r)]) / double(cycles)
                      : 0.0;
    }

    /** Sum of all CPI-stack components (== cycles by invariant). */
    uint64_t
    cpiSum() const
    {
        uint64_t s = 0;
        for (uint64_t v : cpi)
            s += v;
        return s;
    }

    /** Share of total cycles attributed to CPI component @p c. */
    double
    cpiShare(CpiComponent c) const
    {
        return cycles ? double(cpi[size_t(c)]) / double(cycles) : 0.0;
    }

    /** Data-side stall share (forwarded + L1D + L2 + memory). */
    double
    cpiDataShare() const
    {
        uint64_t d = cpi[size_t(CpiComponent::LsuFwd)] +
                     cpi[size_t(CpiComponent::LsuL1)] +
                     cpi[size_t(CpiComponent::LsuL2)] +
                     cpi[size_t(CpiComponent::LsuMem)];
        return cycles ? double(d) / double(cycles) : 0.0;
    }

    /** Flush share: branch mispredict + ordering-violation refills. */
    double
    cpiFlushShare() const
    {
        uint64_t f = cpi[size_t(CpiComponent::BranchFlush)] +
                     cpi[size_t(CpiComponent::DisambigFlush)];
        return cycles ? double(f) / double(cycles) : 0.0;
    }

    /** Dynamic fraction of instructions with opcode @p op. */
    double
    opFraction(isa::Op op) const
    {
        return instructions
                   ? double(opCount[size_t(op)]) / double(instructions)
                   : 0.0;
    }

    /** Fraction of isel+max instructions (paper section VI-A). */
    double
    predicatedFraction() const
    {
        uint64_t n = opCount[size_t(isa::Op::ISEL)] +
                     opCount[size_t(isa::Op::MAXD)] +
                     opCount[size_t(isa::Op::MIND)];
        return instructions ? double(n) / double(instructions) : 0.0;
    }

    /** Fraction of compare instructions. */
    double
    compareFraction() const
    {
        uint64_t n = opCount[size_t(isa::Op::CMP)] +
                     opCount[size_t(isa::Op::CMPL)] +
                     opCount[size_t(isa::Op::CMPI)] +
                     opCount[size_t(isa::Op::CMPLI)];
        return instructions ? double(n) / double(instructions) : 0.0;
    }

    /** Accumulate @p other into this (for workload-level aggregation). */
    void add(const Counters &other);

    /** Field-wise equality (the tracing-invariance tests rely on it). */
    friend bool operator==(const Counters &, const Counters &) = default;
};

/**
 * Per-branch-site PMU counters (one record per static branch
 * instruction, keyed by pc).  Collected only when branch profiling is
 * enabled on the machine; the analysis layer joins these with its
 * static branch classification.
 */
struct BranchSiteStats
{
    uint64_t executions = 0;
    uint64_t taken = 0;
    uint64_t mispredDirection = 0;
    uint64_t mispredTarget = 0;

    uint64_t mispredicts() const { return mispredDirection + mispredTarget; }

    void
    add(const BranchSiteStats &o)
    {
        executions += o.executions;
        taken += o.taken;
        mispredDirection += o.mispredDirection;
        mispredTarget += o.mispredTarget;
    }
};

/** Ordered pc -> site stats (ordered so reports are deterministic). */
using BranchProfile = std::map<uint64_t, BranchSiteStats>;

/**
 * Per-PC cycle attribution: non-completing cycles charged to the
 * instruction address blamed for them (the flat stall profile).
 * Collected only when stall profiling is enabled on the machine.
 */
struct StallSiteStats
{
    std::array<uint64_t, kNumCpiComponents> cycles{};

    uint64_t
    total() const
    {
        uint64_t s = 0;
        for (uint64_t v : cycles)
            s += v;
        return s;
    }

    void
    add(const StallSiteStats &o)
    {
        for (size_t i = 0; i < cycles.size(); ++i)
            cycles[i] += o.cycles[i];
    }
};

/** Ordered pc -> attributed stall cycles (deterministic reports). */
using StallProfile = std::map<uint64_t, StallSiteStats>;

/** One point of the Fig-2 style timeline. */
struct IntervalSample
{
    uint64_t cycle = 0;    ///< end cycle of the interval
    double ipc = 0.0;
    double branchMispredictRate = 0.0;
    double l1dMissRate = 0.0;
};

} // namespace bp5::sim

#endif // BIOPERF5_SIM_COUNTERS_H
