#include "sim/predictor.h"

#include "support/bitfield.h"
#include "support/logging.h"

namespace bp5::sim {

namespace {

unsigned
checkedMaskBits(unsigned entries)
{
    BP5_ASSERT(isPow2(entries), "predictor table size must be a power of 2");
    return floorLog2(entries);
}

} // namespace

BimodalPredictor::BimodalPredictor(unsigned entries)
    : table_(entries, SatCounter(2, 1)), maskBits_(checkedMaskBits(entries))
{
}

unsigned
BimodalPredictor::index(uint64_t pc) const
{
    return static_cast<unsigned>((pc >> 2) & mask(maskBits_));
}

bool
BimodalPredictor::predict(uint64_t pc) const
{
    return table_[index(pc)].high();
}

void
BimodalPredictor::update(uint64_t pc, bool taken)
{
    table_[index(pc)].update(taken);
}

GsharePredictor::GsharePredictor(unsigned entries, unsigned historyBits)
    : table_(entries, SatCounter(2, 1)),
      maskBits_(checkedMaskBits(entries)), historyBits_(historyBits)
{
    BP5_ASSERT(historyBits_ <= 64, "history wider than the register");
}

unsigned
GsharePredictor::index(uint64_t pc) const
{
    // Histories longer than the index are folded down by XORing
    // maskBits_-wide chunks, the standard gshare construction, so
    // every history bit still participates in the index.
    if (maskBits_ == 0)
        return 0;
    uint64_t h = ghr_ & mask(historyBits_);
    for (unsigned used = maskBits_; used < historyBits_;
         used += maskBits_) {
        h = (h & mask(maskBits_)) ^ (h >> maskBits_);
    }
    return static_cast<unsigned>(((pc >> 2) ^ h) & mask(maskBits_));
}

bool
GsharePredictor::predict(uint64_t pc) const
{
    return table_[index(pc)].high();
}

void
GsharePredictor::update(uint64_t pc, bool taken)
{
    table_[index(pc)].update(taken);
    ghr_ = (ghr_ << 1) | (taken ? 1 : 0);
}

TournamentPredictor::TournamentPredictor(unsigned entries,
                                         unsigned historyBits)
    : bimodal_(entries), gshare_(entries, historyBits),
      selector_(entries, SatCounter(2, 1)),
      maskBits_(checkedMaskBits(entries))
{
}

bool
TournamentPredictor::predict(uint64_t pc) const
{
    unsigned sel = static_cast<unsigned>((pc >> 2) & mask(maskBits_));
    bool use_gshare = selector_[sel].high();
    return use_gshare ? gshare_.predict(pc) : bimodal_.predict(pc);
}

void
TournamentPredictor::update(uint64_t pc, bool taken)
{
    bool b = bimodal_.predict(pc);
    bool g = gshare_.predict(pc);
    unsigned sel = static_cast<unsigned>((pc >> 2) & mask(maskBits_));
    if (b != g)
        selector_[sel].update(g == taken);
    bimodal_.update(pc, taken);
    gshare_.update(pc, taken);
}

std::unique_ptr<DirectionPredictor>
makePredictor(PredictorKind kind, unsigned entries, unsigned historyBits)
{
    switch (kind) {
      case PredictorKind::AlwaysTaken:
        return std::make_unique<AlwaysTakenPredictor>();
      case PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>(entries);
      case PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>(entries, historyBits);
      case PredictorKind::Tournament:
        return std::make_unique<TournamentPredictor>(entries, historyBits);
    }
    panic("unknown predictor kind");
}

} // namespace bp5::sim
