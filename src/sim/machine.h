/**
 * @file
 * The MiniPOWER machine: functional execution plus a POWER5-class
 * out-of-order timing model.
 *
 * The timing model is trace-driven in a single pass: the functional
 * executor retires instructions in program order, and each retired
 * instruction is scheduled through fetch -> decode pipe -> dispatch
 * (ROB) -> issue (per-class units) -> complete -> in-order commit.
 * Wrong-path instructions are not executed; their cost appears as the
 * fetch-redirect penalty of mispredicted branches (see DESIGN.md for
 * the justification).  The model reproduces the structures the paper
 * studies: the 2-cycle taken-branch bubble, the optional eight-entry
 * score-based BTAC, the tournament direction predictor, and a
 * configurable number of fixed-point units.
 */

#ifndef BIOPERF5_SIM_MACHINE_H
#define BIOPERF5_SIM_MACHINE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "masm/assembler.h"
#include "sim/btac.h"
#include "sim/cache.h"
#include "sim/config.h"
#include "sim/counters.h"
#include "sim/core_state.h"
#include "sim/exec.h"
#include "sim/memory.h"
#include "sim/memsys.h"
#include "sim/predictor.h"
#include "sim/trace.h"

namespace bp5::sim {

/**
 * SMARTS-style sampled-timing configuration: alternate a detailed
 * measurement window of @ref detailInstructions with a functional
 * fast-forward of @ref skipInstructions (predictor/BTAC/L1D warmed
 * when @ref functionalWarming).  Architectural counters stay exact;
 * cycle/event counters are extrapolated from the windows.  Both
 * fields nonzero enables sampling; reset() disables it.
 */
struct SamplingParams
{
    uint64_t detailInstructions = 0; ///< instructions per window
    uint64_t skipInstructions = 0;   ///< fast-forward between windows
    bool functionalWarming = true;

    bool enabled() const
    {
        return detailInstructions > 0 && skipInstructions > 0;
    }
};

/** Result of a Machine::run invocation. */
struct RunResult
{
    Counters counters;
    /** Filled only by the deprecated run(max, interval) shim; the
     *  general mechanism is an obs::PmuSampler trace sink. */
    std::vector<IntervalSample> timeline;
    bool halted = false;
    int64_t exitCode = 0;
    std::string console;

    /** Measurement bookkeeping of a sampled run (see SamplingParams). */
    struct SamplingStats
    {
        uint64_t windows = 0;
        uint64_t detailedInstructions = 0;
        uint64_t detailedCycles = 0;
        uint64_t fastForwardedInstructions = 0;
    };
    SamplingStats sampling;
    bool sampled = false; ///< counters contain extrapolated events
};

/** A single-core MiniPOWER machine with the POWER5-class timing model. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config = MachineConfig());
    ~Machine();

    Memory &mem() { return mem_; }
    CoreState &state() { return state_; }
    const MachineConfig &config() const { return config_; }

    /** Copy a program image into memory (does not change the PC). */
    void loadProgram(const masm::Program &prog);

    /**
     * Reset architectural state, caches, predictors, timing state and
     * counters.  Memory contents are preserved (the loaded program
     * stays resident); everything else is bit-for-bit identical to a
     * freshly constructed Machine, so run(); reset(); run() reproduces
     * a fresh machine's counters exactly.
     */
    void reset();

    /**
     * Run with full timing from the current PC until SYS_EXIT or
     * @p max_instructions.  Events stream to the attached trace sink
     * (if any); RunResult::timeline stays empty — attach an
     * obs::PmuSampler for interval series.
     */
    RunResult run(uint64_t max_instructions = UINT64_MAX);

    /**
     * @deprecated Compatibility shim for the pre-obs interval API: a
     * nonzero @p interval_cycles records a run-local Fig-2 timeline
     * into RunResult::timeline with the historical semantics (sampling
     * phase restarts each run, no trailing partial sample).  New code
     * should attach an obs::PmuSampler via setTraceSink() instead.
     */
    RunResult run(uint64_t max_instructions, uint64_t interval_cycles);

    /**
     * Run functionally only (no cycle accounting; counters contain
     * instruction counts but zero cycles).  Executes through the
     * pre-decoded micro-op engine, an order of magnitude faster than
     * detailed timing; used for fast-forward and correctness tests.
     */
    RunResult runFunctional(uint64_t max_instructions = UINT64_MAX);

    /**
     * Configure SMARTS-style sampled timing for subsequent run()
     * calls (see SamplingParams; disabled by default and after
     * reset()).  The deprecated run(max, interval) shim always runs
     * full detail regardless, preserving its historical timeline.
     */
    void setSampling(const SamplingParams &p) { sampling_ = p; }
    const SamplingParams &sampling() const { return sampling_; }

    /**
     * Toggle the pre-decoded execution engine (on by default).  Off,
     * every instruction decodes fresh from memory: the reference mode
     * the differential engine tests compare against.
     */
    void setPredecode(bool on) { exec_.setPredecode(on); }
    bool predecode() const { return exec_.predecode(); }

    const Cache &l1d() const { return l1d_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l2() const { return l2_; }
    const Btac &btac() const { return btac_; }
    const MemorySystem &memsys() const { return memsys_; }

    /**
     * Collect per-branch-site PMU counters during timed runs (off by
     * default; a map update per branch costs a few percent).  The
     * profile accumulates across run() calls and clears on reset().
     */
    void setBranchProfiling(bool on) { branchProfiling_ = on; }
    bool branchProfiling() const { return branchProfiling_; }
    const BranchProfile &branchProfile() const { return branchProfile_; }

    /**
     * Collect the per-PC flat stall profile during timed runs (off by
     * default): every non-completing cycle is charged to the
     * instruction address blamed for it, split by CpiComponent.  The
     * profile accumulates across run() calls and clears on reset().
     */
    void setStallProfiling(bool on) { stallProfiling_ = on; }
    bool stallProfiling() const { return stallProfiling_; }
    const StallProfile &stallProfile() const { return stallProfile_; }

    /**
     * Attach an event observer (non-owning; nullptr detaches, and
     * reset() detaches).  With no sink the timing model pays one
     * null-pointer test per retired instruction and its Counters are
     * bit-identical to a build without tracing at all.
     */
    void setTraceSink(TraceSink *sink) { sink_ = sink; }
    TraceSink *traceSink() const { return sink_; }

  private:
    struct TimingState;

    void scheduleInstruction(const StepInfo &info, TimingState &ts,
                             Counters &c);
    RunResult runSampled(uint64_t max_instructions);

    MachineConfig config_;
    Memory mem_;
    CoreState state_;
    Executor exec_;

    Cache l2_;
    Cache l1i_;
    Cache l1d_;
    MemorySystem memsys_;
    std::unique_ptr<DirectionPredictor> predictor_;
    Btac btac_;

    bool branchProfiling_ = false;
    BranchProfile branchProfile_;
    bool stallProfiling_ = false;
    StallProfile stallProfile_;
    TraceSink *sink_ = nullptr;
    SamplingParams sampling_;

    std::unique_ptr<TimingState> timing_;
};

} // namespace bp5::sim

#endif // BIOPERF5_SIM_MACHINE_H
