#include "sim/trace.h"

namespace bp5::sim {

// Anchor the vtable here rather than emitting it in every TU.
TraceSink::~TraceSink() = default;

} // namespace bp5::sim
