/**
 * @file
 * Timing-only set-associative cache model with true-LRU replacement and
 * write-back/write-allocate policy.  Caches chain to a next level; the
 * bottom of the chain is main memory with a fixed latency.  The model
 * tracks tags only (data lives in sim::Memory), which is exact for the
 * hit/miss behaviour the paper reports (Table I's L1D miss rate).
 */

#ifndef BIOPERF5_SIM_CACHE_H
#define BIOPERF5_SIM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

namespace bp5::sim {

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 128;
    unsigned hitLatency = 1;   ///< cycles added on a hit at this level

    friend bool operator==(const CacheParams &,
                           const CacheParams &) = default;
};

/** Access statistics for one cache level. */
struct CacheStats
{
    uint64_t accesses = 0;   ///< demand accesses + incoming writebacks
    uint64_t misses = 0;
    uint64_t writes = 0;     ///< write accesses (stores + writebacks in)
    uint64_t writebacks = 0; ///< dirty lines evicted from this level
    uint64_t writebacksIn = 0; ///< writebacks received from the level above

    // Prefetch outcomes (zero unless a Prefetcher targets this level).
    uint64_t prefetchIssued = 0;  ///< prefetch fills allocated
    uint64_t prefetchHits = 0;    ///< demand hits on a prefetched line
    uint64_t prefetchUseless = 0; ///< prefetched lines evicted untouched

    double missRate() const
    {
        return accesses ? double(misses) / double(accesses) : 0.0;
    }
};

/** One level of a tag-only cache hierarchy. */
class Cache
{
  public:
    /**
     * @param params geometry/latency
     * @param next next level, or nullptr for "memory is next"
     * @param memLatency latency charged when the last level misses.
     *        No default: the knob lives in MachineConfig::memLatency
     *        (230 on the baseline POWER5) so it is sweepable in one
     *        place.
     */
    Cache(const CacheParams &params, Cache *next, unsigned memLatency);

    /**
     * Access @p addr (read or write).  Returns the total added latency
     * in cycles (this level's hit latency plus any lower-level cost).
     * Dirty evictions are presented to the next level as zero-latency
     * writeback accesses (write buffers keep them off the critical
     * path), so every level's CacheStats see the real write traffic.
     * A demand hit on a line brought in by prefetchFill() that has not
     * yet arrived pays the remaining cycles (@p now vs the line's
     * arrival stamp) on top of the hit latency.
     * @param is_writeback true when this access is a writeback arriving
     *        from the level above (accounted separately, latency unused)
     * @param now issue cycle of the access (partial-hit accounting;
     *        irrelevant when no prefetcher targets this level)
     */
    unsigned access(uint64_t addr, bool is_write, bool is_writeback = false,
                    uint64_t now = 0);

    /**
     * Prefetch the line containing @p addr into this level.  Returns
     * false (and does nothing) if the line is already resident;
     * otherwise allocates it clean with an arrival stamp of @p now
     * plus the fill latency from below, evicting (and writing back)
     * the LRU victim exactly as a demand miss would.  Prefetch fills
     * are counted in CacheStats::prefetchIssued, not accesses/misses.
     */
    bool prefetchFill(uint64_t addr, uint64_t now);

    /** True if the line containing @p addr is currently resident. */
    bool probe(uint64_t addr) const;

    /**
     * Invalidate all lines and the LRU clock (keeps statistics).  A
     * flushed cache makes bit-for-bit the same decisions as a freshly
     * constructed one.
     */
    void flush();

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats(); }
    const CacheParams &params() const { return params_; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false; ///< brought in by prefetchFill, untouched
        uint64_t readyCycle = 0; ///< prefetch arrival cycle
        uint64_t lruStamp = 0;
    };

    uint64_t lineIndex(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;
    Line &allocate(uint64_t base, uint64_t tag);

    CacheParams params_;
    Cache *next_;
    unsigned memLatency_;
    unsigned numSets_;
    std::vector<Line> lines_; // numSets * assoc
    uint64_t stamp_ = 0;
    CacheStats stats_;
};

} // namespace bp5::sim

#endif // BIOPERF5_SIM_CACHE_H
