#include "sim/btac.h"

#include "support/logging.h"

namespace bp5::sim {

Btac::Btac(const BtacParams &params)
    : params_(params), scoreMax_((1u << params.scoreBits) - 1),
      entries_(params.entries)
{
    BP5_ASSERT(params.entries > 0, "BTAC needs at least one entry");
    BP5_ASSERT(params.predictThreshold <= scoreMax_,
               "prediction threshold exceeds score range");
}

int
Btac::findEntry(uint64_t pc) const
{
    for (size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].valid && entries_[i].tag == pc)
            return static_cast<int>(i);
    }
    return -1;
}

Btac::Lookup
Btac::lookup(uint64_t pc)
{
    ++stats_.lookups;
    Lookup res;
    int i = findEntry(pc);
    if (i < 0)
        return res;
    const Entry &e = entries_[static_cast<size_t>(i)];
    res.hit = true;
    ++stats_.hits;
    if (e.score >= params_.predictThreshold) {
        res.predict = true;
        res.nia = e.nia;
        ++stats_.predictions;
    }
    return res;
}

void
Btac::update(uint64_t pc, bool taken, uint64_t target, const Lookup &used)
{
    int i = findEntry(pc);
    bool stored_correct = i >= 0 && taken &&
                          entries_[static_cast<size_t>(i)].nia == target;

    if (used.predict) {
        bool used_correct = taken && used.nia == target;
        if (used_correct)
            ++stats_.correct;
        else
            ++stats_.mispredicts;
    }

    if (i >= 0) {
        Entry &e = entries_[static_cast<size_t>(i)];
        if (stored_correct) {
            if (e.score < scoreMax_)
                ++e.score;
        } else {
            bool used_wrong = used.predict &&
                              !(taken && used.nia == target);
            if (params_.resetOnMispredict && used_wrong)
                e.score = 0;
            else if (e.score > 0)
                --e.score;
            if (e.score == 0 && taken)
                e.nia = target; // retrain the target at zero confidence
        }
        return;
    }

    // Allocate only for taken branches (score-based replacement).
    if (!taken)
        return;
    size_t victim = 0;
    unsigned best = ~0u;
    for (size_t j = 0; j < entries_.size(); ++j) {
        if (!entries_[j].valid) {
            victim = j;
            best = 0;
            break;
        }
        if (entries_[j].score < best) {
            best = entries_[j].score;
            victim = j;
        }
    }
    Entry &e = entries_[victim];
    e.valid = true;
    e.tag = pc;
    e.nia = target;
    e.score = params_.initialScore;
    ++stats_.allocations;
}

} // namespace bp5::sim
