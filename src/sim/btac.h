/**
 * @file
 * Branch Target Address Cache, as proposed in section IV-D of the
 * paper: a tiny fully-associative table of (tag, nia, score) entries.
 * A confident (high-score) hit supplies the next-instruction address at
 * fetch and removes the POWER5 2-cycle taken-branch bubble; the
 * saturating score doubles as the replacement priority so hard-to-
 * predict branches forgo prediction.
 */

#ifndef BIOPERF5_SIM_BTAC_H
#define BIOPERF5_SIM_BTAC_H

#include <cstdint>
#include <vector>

namespace bp5::sim {

/** BTAC configuration. */
struct BtacParams
{
    unsigned entries = 8;       ///< paper default: eight entries
    unsigned scoreBits = 3;     ///< saturating score width
    unsigned predictThreshold = 7; ///< predict when score >= threshold
    unsigned initialScore = 0;  ///< paper: zero in the default config
    /**
     * Zero the score when a used prediction was wrong (instead of a
     * plain decrement).  This implements the paper's intent that
     * "hard-to-predict branches will have low scores; the BTAC will
     * forgo prediction for such branches": only branches with long
     * correct streaks (loop back edges) earn predictions, which keeps
     * the BTAC misprediction rate in the paper's 1.4-2.5% band.
     */
    bool resetOnMispredict = true;

    friend bool operator==(const BtacParams &,
                           const BtacParams &) = default;
};

/** BTAC statistics. */
struct BtacStats
{
    uint64_t lookups = 0;
    uint64_t hits = 0;          ///< tag matches
    uint64_t predictions = 0;   ///< confident hits used for fetch
    uint64_t correct = 0;       ///< used and target+direction correct
    uint64_t mispredicts = 0;   ///< used and wrong (costly redirect)
    uint64_t allocations = 0;

    double mispredictRate() const
    {
        return predictions ? double(mispredicts) / double(predictions)
                           : 0.0;
    }
};

/** The BTAC model. */
class Btac
{
  public:
    explicit Btac(const BtacParams &params = BtacParams());

    /** Result of a fetch-time lookup. */
    struct Lookup
    {
        bool hit = false;      ///< tag matched
        bool predict = false;  ///< confident enough to redirect fetch
        uint64_t nia = 0;      ///< predicted next instruction address
    };

    /** Look up the fetch address @p pc. */
    Lookup lookup(uint64_t pc);

    /**
     * Train after the branch resolves.
     * @param pc branch address
     * @param taken actual direction
     * @param target actual target (valid when taken)
     * @param used the lookup result that guided fetch for this instance
     */
    void update(uint64_t pc, bool taken, uint64_t target,
                const Lookup &used);

    const BtacStats &stats() const { return stats_; }
    void resetStats() { stats_ = BtacStats(); }

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t nia = 0;
        unsigned score = 0;
    };

    int findEntry(uint64_t pc) const;

    BtacParams params_;
    unsigned scoreMax_;
    std::vector<Entry> entries_;
    BtacStats stats_;
};

} // namespace bp5::sim

#endif // BIOPERF5_SIM_BTAC_H
