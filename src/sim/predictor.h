/**
 * @file
 * Conditional-branch direction predictors.  The default POWER5-style
 * predictor is a tournament of a bimodal (per-address) table and a
 * gshare (global-history) table with a per-address selector, mirroring
 * POWER5's three 16K-entry branch history tables.
 */

#ifndef BIOPERF5_SIM_PREDICTOR_H
#define BIOPERF5_SIM_PREDICTOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/saturating_counter.h"

namespace bp5::sim {

/** Direction predictor kinds selectable from the machine config. */
enum class PredictorKind
{
    AlwaysTaken,
    Bimodal,
    Gshare,
    Tournament, ///< POWER5-style bimodal + gshare + selector
};

/** Abstract direction predictor. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict the direction of the conditional branch at @p pc. */
    virtual bool predict(uint64_t pc) const = 0;

    /** Train with the actual outcome and update global history. */
    virtual void update(uint64_t pc, bool taken) = 0;

    virtual std::string name() const = 0;
};

/** Factory. @p entries is the table size (power of two). */
std::unique_ptr<DirectionPredictor>
makePredictor(PredictorKind kind, unsigned entries = 16384,
              unsigned historyBits = 11);

/** Static always-taken baseline (for ablation). */
class AlwaysTakenPredictor : public DirectionPredictor
{
  public:
    bool predict(uint64_t) const override { return true; }
    void update(uint64_t, bool) override {}
    std::string name() const override { return "always-taken"; }
};

/** Per-address two-bit counters. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    explicit BimodalPredictor(unsigned entries);
    bool predict(uint64_t pc) const override;
    void update(uint64_t pc, bool taken) override;
    std::string name() const override { return "bimodal"; }

  private:
    unsigned index(uint64_t pc) const;
    std::vector<SatCounter> table_;
    unsigned maskBits_;
};

/** Global-history-xor-PC indexed two-bit counters. */
class GsharePredictor : public DirectionPredictor
{
  public:
    GsharePredictor(unsigned entries, unsigned historyBits);
    bool predict(uint64_t pc) const override;
    void update(uint64_t pc, bool taken) override;
    std::string name() const override { return "gshare"; }

  private:
    unsigned index(uint64_t pc) const;
    std::vector<SatCounter> table_;
    unsigned maskBits_;
    unsigned historyBits_;
    uint64_t ghr_ = 0;
};

/**
 * Tournament predictor: bimodal and gshare components plus a
 * per-address selector table choosing between them.
 */
class TournamentPredictor : public DirectionPredictor
{
  public:
    TournamentPredictor(unsigned entries, unsigned historyBits);
    bool predict(uint64_t pc) const override;
    void update(uint64_t pc, bool taken) override;
    std::string name() const override { return "tournament"; }

  private:
    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    std::vector<SatCounter> selector_;
    unsigned maskBits_;
};

} // namespace bp5::sim

#endif // BIOPERF5_SIM_PREDICTOR_H
