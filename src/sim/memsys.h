/**
 * @file
 * The composable memory system of the core model (DESIGN.md §4.11):
 * a load/store queue (sim/lsq.h) plus optional stride / next-line
 * prefetch engines (sim/prefetch.h) attached to the L1D and L2 of the
 * Machine's cache hierarchy.  The Machine delegates every step of its
 * memory path here — queue reservation at dispatch, store-to-load
 * ordering, the demand cache access, store completion, commit — and
 * owns all Counters itself; the MemorySystem reports per-operation
 * outcomes.
 *
 * MemSysParams::Mode::Classic reproduces the pre-MemorySystem machine
 * bit-for-bit (unbounded queues, direct-mapped store table, no
 * forwarding, no speculation, no prefetch); this is the default and is
 * differentially tested against captured pre-refactor counters.
 */

#ifndef BIOPERF5_SIM_MEMSYS_H
#define BIOPERF5_SIM_MEMSYS_H

#include <memory>

#include "sim/cache.h"
#include "sim/lsq.h"
#include "sim/prefetch.h"

namespace bp5::sim {

/** Memory-system configuration (part of MachineConfig). */
struct MemSysParams
{
    enum class Mode : unsigned
    {
        Classic, ///< pre-MemorySystem behaviour, bit-for-bit
        Lsq,     ///< finite LSQ + forwarding + speculative disambiguation
    };

    Mode mode = Mode::Classic;
    LsqParams lsq;
    PrefetchParams l1dPrefetch;
    PrefetchParams l2Prefetch;

    bool classic() const { return mode == Mode::Classic; }

    friend bool operator==(const MemSysParams &,
                           const MemSysParams &) = default;
};

/** Stable key for manifests ("classic" / "lsq"). */
const char *memSysModeKey(MemSysParams::Mode m);

/** The memory system; see the file comment. */
class MemorySystem
{
  public:
    /** Outcome of one demand cache access. */
    struct Access
    {
        unsigned latency = 0;      ///< added cycles (hierarchy walk)
        bool l1dMiss = false;
        bool l2Miss = false;
        bool prefetchedHit = false; ///< demand hit on a prefetched line
        unsigned prefetchIssued = 0; ///< fills triggered by this access
    };

    MemorySystem(const MemSysParams &params, Cache *l1d, Cache *l2);

    const MemSysParams &params() const { return params_; }
    bool classic() const { return params_.classic(); }
    const LoadStoreQueue &lsq() const { return lsq_; }

    /** Clear per-run queue state (call where TimingState is rebuilt). */
    void beginRun();

    /** Full reset: queues, dependence predictor, prefetch tables. */
    void reset();

    /** Dispatch-time queue reservation (see LoadStoreQueue::reserve). */
    uint64_t
    reserve(bool isLoad, uint64_t dc, bool *limited)
    {
        return lsq_.reserve(isLoad, dc, limited);
    }

    /** Order a load against older stores (see LoadStoreQueue). */
    LoadStoreQueue::Order
    orderLoad(uint64_t pc, uint64_t addr, uint64_t ready)
    {
        return lsq_.orderLoad(pc, addr, ready);
    }

    /** Demand access from the core: walks the hierarchy, classifies
     *  the miss level, and runs the attached prefetch engines.
     *  Inline: one call per memory op on the timing hot loop. */
    Access
    access(uint64_t pc, uint64_t addr, bool isStore, uint64_t now)
    {
        Access r;
        uint64_t l1dBefore = l1d_->stats().misses;
        uint64_t l2Before = l2_->stats().misses;
        uint64_t phBefore = l1d_->stats().prefetchHits;
        r.latency = l1d_->access(addr, isStore, /*is_writeback=*/false,
                                 now);
        r.l1dMiss = l1d_->stats().misses != l1dBefore;
        r.l2Miss = l2_->stats().misses != l2Before;
        r.prefetchedHit = l1d_->stats().prefetchHits != phBefore;
        if (l1dPf_)
            r.prefetchIssued += l1dPf_->observe(pc, addr, r.l1dMiss, now);
        if (l2Pf_)
            r.prefetchIssued += l2Pf_->observe(pc, addr, r.l2Miss, now);
        return r;
    }

    /** A store's data became available at @p cc. */
    void
    storeComplete(uint64_t addr, uint64_t cc)
    {
        lsq_.storeComplete(addr, cc);
    }

    /** The memory op committed (frees its queue slot). */
    void
    commit(bool isLoad, uint64_t commitCycle)
    {
        lsq_.commit(isLoad, commitCycle);
    }

    /** Queue occupancy at @p cycle (lsq mode; 0 in classic). */
    unsigned
    occupancy(bool loadQueue, uint64_t cycle) const
    {
        return lsq_.occupancy(loadQueue, cycle);
    }

  private:
    MemSysParams params_;
    Cache *l1d_;
    Cache *l2_;
    LoadStoreQueue lsq_;
    std::unique_ptr<Prefetcher> l1dPf_;
    std::unique_ptr<Prefetcher> l2Pf_;
};

} // namespace bp5::sim

#endif // BIOPERF5_SIM_MEMSYS_H
