/**
 * @file
 * Load/store queue model for the one-pass timing engine.
 *
 * Two operating modes, selected at construction:
 *
 *  - **classic**: the pre-MemorySystem behaviour, bit-for-bit.  A
 *    direct-mapped 4096-slot store table keyed on the 8-byte granule
 *    makes a later load to the same granule wait until the store's
 *    completion cycle; queues are unbounded (reserve() is a no-op),
 *    nothing forwards, nothing speculates.
 *
 *  - **lsq**: finite load/store queues whose occupancy back-pressures
 *    dispatch (modelled like the ROB: a ring of commit cycles, an
 *    entry frees when the op `depth` back commits), a store queue that
 *    forwards data to matching younger loads at forwardLatency, and
 *    speculative load disambiguation: a load may issue past an older
 *    in-flight store to the same granule; when the addresses collide
 *    the load is squashed and refetched (an ordering-violation flush),
 *    and a store-set style memory-dependence predictor remembers the
 *    load PC so later dynamic instances wait and forward instead.
 *
 * The queue is deliberately counter-free: it reports what happened per
 * operation (Order/reserve results) and the Machine owns all Counters.
 */

#ifndef BIOPERF5_SIM_LSQ_H
#define BIOPERF5_SIM_LSQ_H

#include <array>
#include <cstdint>
#include <vector>

namespace bp5::sim {

/** Sizing and policy knobs of the load/store queue (lsq mode). */
struct LsqParams
{
    unsigned loads = 16;           ///< load-reorder-queue depth
    unsigned stores = 16;          ///< store-reorder-queue depth
    unsigned forwardLatency = 1;   ///< store-to-load forward cycles
    unsigned disambigPenalty = 16; ///< refetch penalty after a violation
    bool speculativeLoads = true;  ///< issue past unresolved older stores
    unsigned mdpEntries = 1024;    ///< dependence-predictor slots (pow2)

    friend bool operator==(const LsqParams &, const LsqParams &) = default;
};

/** The load/store queue; see the file comment. */
class LoadStoreQueue
{
  public:
    /** How one load was ordered against older stores. */
    struct Order
    {
        uint64_t ready = 0;       ///< operand-ready cycle after ordering
        bool forwarded = false;   ///< data comes from the store queue
        bool violation = false;   ///< speculated past a conflicting store
        uint64_t conflictComplete = 0; ///< conflicting store's completion
    };

    LoadStoreQueue(const LsqParams &params, bool classic);

    bool classic() const { return classic_; }
    const LsqParams &params() const { return params_; }

    /** Clear per-run state (queues, store table); keeps the MDP. */
    void beginRun();

    /** Full reset including the memory-dependence predictor. */
    void reset();

    /**
     * Claim a queue slot at dispatch.  Returns the (possibly delayed)
     * dispatch cycle; sets @p *limited when the queue was full at
     * @p dc and dispatch had to wait for the oldest entry to commit.
     * Classic mode: returns @p dc unchanged.
     */
    uint64_t
    reserve(bool isLoad, uint64_t dc, bool *limited)
    {
        // Inline classic fast path: this runs once per memory op on
        // the timing model's hot loop.
        if (classic_)
            return dc;
        return reserveLsq(isLoad, dc, limited);
    }

    /**
     * Order a load at @p pc / @p addr whose operands are ready at
     * @p ready against the older stores still in the queue.
     */
    Order
    orderLoad(uint64_t pc, uint64_t addr, uint64_t ready)
    {
        if (classic_) {
            Order o;
            o.ready = ready;
            uint64_t g = granuleOf(addr);
            const StoreSlot &slot = table_[g & 4095];
            if (slot.addr == g && slot.complete > ready)
                o.ready = slot.complete;
            return o;
        }
        return orderLoadLsq(pc, addr, ready);
    }

    /** A store's data became available at cycle @p cc. */
    void
    storeComplete(uint64_t addr, uint64_t cc)
    {
        uint64_t g = granuleOf(addr);
        if (classic_) {
            StoreSlot &slot = table_[g & 4095];
            slot.addr = g;
            slot.complete = cc;
            return;
        }
        SqEntry &e = sq_[sqSeq_ % sq_.size()];
        e.granule = g;
        e.complete = cc;
        ++sqSeq_;
    }

    /** The memory op at the queue head committed at @p commitCycle. */
    void
    commit(bool isLoad, uint64_t commitCycle)
    {
        if (classic_)
            return;
        std::vector<uint64_t> &ring = isLoad ? loadCommit_ : storeCommit_;
        uint64_t &seq = isLoad ? loadSeq_ : storeSeq_;
        ring[seq % ring.size()] = commitCycle;
        ++seq;
    }

    /** Entries still in flight (commit > @p cycle); lsq mode only. */
    unsigned occupancy(bool loadQueue, uint64_t cycle) const;

  private:
    /** 8-byte store-to-load matching granule (the table's key). */
    static uint64_t granuleOf(uint64_t addr) { return addr >> 3; }

    uint64_t reserveLsq(bool isLoad, uint64_t dc, bool *limited);
    Order orderLoadLsq(uint64_t pc, uint64_t addr, uint64_t ready);

    LsqParams params_;
    bool classic_;

    // Classic mode: direct-mapped store table (granule -> completion).
    struct StoreSlot
    {
        uint64_t addr = ~0ULL;
        uint64_t complete = 0;
    };
    std::array<StoreSlot, 4096> table_{};

    // Lsq mode: occupancy rings (commit cycle of the entry depth back).
    std::vector<uint64_t> loadCommit_;
    std::vector<uint64_t> storeCommit_;
    uint64_t loadSeq_ = 0;
    uint64_t storeSeq_ = 0;

    // Lsq mode: store queue contents for forwarding/disambiguation.
    struct SqEntry
    {
        uint64_t granule = ~0ULL;
        uint64_t complete = 0;
    };
    std::vector<SqEntry> sq_;
    uint64_t sqSeq_ = 0;

    // Memory-dependence predictor: load PCs that violated once wait
    // and forward from then on (direct-mapped, tag = full pc).
    std::vector<uint64_t> mdp_;
};

} // namespace bp5::sim

#endif // BIOPERF5_SIM_LSQ_H
