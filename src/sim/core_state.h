/**
 * @file
 * Architectural state of a MiniPOWER hardware thread.
 */

#ifndef BIOPERF5_SIM_CORE_STATE_H
#define BIOPERF5_SIM_CORE_STATE_H

#include <array>
#include <cstdint>

#include "isa/isa.h"

namespace bp5::sim {

/** GPRs, CR, LR, CTR, XER and the program counter. */
struct CoreState
{
    std::array<uint64_t, isa::kNumGprs> gpr{};
    uint32_t cr = 0;
    uint64_t lr = 0;
    uint64_t ctr = 0;
    uint64_t xer = 0;
    uint64_t pc = 0;

    /** Read CR bit @p i (0..31). */
    bool
    crBit(unsigned i) const
    {
        return (cr >> i) & 1;
    }

    /** Set CR bit @p i. */
    void
    setCrBit(unsigned i, bool v)
    {
        if (v)
            cr |= (1u << i);
        else
            cr &= ~(1u << i);
    }

    /** Write a whole 4-bit CR field (LT/GT/EQ/SO packed LSB-first). */
    void
    setCrField(unsigned crf, unsigned nibble)
    {
        cr = (cr & ~(0xfu << (crf * 4))) | ((nibble & 0xf) << (crf * 4));
    }

    /** Read a whole 4-bit CR field. */
    unsigned
    crField(unsigned crf) const
    {
        return (cr >> (crf * 4)) & 0xf;
    }

    void
    reset()
    {
        gpr.fill(0);
        cr = 0;
        lr = ctr = xer = pc = 0;
    }
};

} // namespace bp5::sim

#endif // BIOPERF5_SIM_CORE_STATE_H
