#include "sim/machine.h"

#include <algorithm>
#include <cstring>

#include "support/logging.h"

namespace bp5::sim {

void
Counters::add(const Counters &o)
{
    cycles += o.cycles;
    instructions += o.instructions;
    branches += o.branches;
    condBranches += o.condBranches;
    takenBranches += o.takenBranches;
    mispredDirection += o.mispredDirection;
    mispredTarget += o.mispredTarget;
    takenBubbles += o.takenBubbles;
    btacPredictions += o.btacPredictions;
    btacCorrect += o.btacCorrect;
    btacMispredicts += o.btacMispredicts;
    loads += o.loads;
    stores += o.stores;
    l1dAccesses += o.l1dAccesses;
    l1dMisses += o.l1dMisses;
    l1iAccesses += o.l1iAccesses;
    l1iMisses += o.l1iMisses;
    l2Misses += o.l2Misses;
    storeForwards += o.storeForwards;
    disambigFlushes += o.disambigFlushes;
    lsqFullLoads += o.lsqFullLoads;
    lsqFullStores += o.lsqFullStores;
    prefetchIssued += o.prefetchIssued;
    prefetchHits += o.prefetchHits;
    for (size_t i = 0; i < stallCycles.size(); ++i)
        stallCycles[i] += o.stallCycles[i];
    for (size_t i = 0; i < cpi.size(); ++i)
        cpi[i] += o.cpi[i];
    for (size_t i = 0; i < opCount.size(); ++i)
        opCount[i] += o.opCount[i];
}

/** Mutable scheduling state of the one-pass timing model. */
struct Machine::TimingState
{
    explicit TimingState(const MachineConfig &cfg)
        : robCommitCycle(cfg.robSize, 0)
    {
        unitFree[size_t(isa::Unit::FXU)].assign(cfg.numFXU, 0);
        unitFree[size_t(isa::Unit::LSU)].assign(cfg.numLSU, 0);
        unitFree[size_t(isa::Unit::BRU)].assign(cfg.numBRU, 0);
        unitFree[size_t(isa::Unit::CRU)].assign(cfg.numCRU, 0);
    }

    // Fetch.
    uint64_t fetchAvail = 0;       ///< earliest fetch cycle for next inst
    unsigned fetchedThisCycle = 0;
    uint64_t fetchCycleCursor = 0; ///< cycle fetchedThisCycle refers to
    unsigned redirectShadow = 0;   ///< instrs fetched right after a flush

    // Dispatch.
    uint64_t dispatchCycleCursor = 0;
    unsigned dispatchedThisCycle = 0;

    // Register readiness.
    std::array<uint64_t, isa::kNumDepRegs> regReady{};
    std::array<isa::Unit, isa::kNumDepRegs> regProducer{};

    // Execution units: next free cycle per instance, per class.
    std::array<std::vector<uint64_t>, 5> unitFree;

    // ROB occupancy: commit cycle of the instruction robSize back.
    std::vector<uint64_t> robCommitCycle;
    uint64_t seq = 0; ///< dynamic instruction index

    // Commit.
    uint64_t lastCommitCycle = 0;
    unsigned committedThisCycle = 0;

    // Cause of the redirect whose shadow instructions are still being
    // fetched: false = branch misprediction, true = load-ordering
    // violation (disambiguation squash).
    bool redirectDisambig = false;

    // Cycle accounting: cycles 1..lastAccounted are already attributed
    // to a CpiComponent.  Commit cycles are monotonic and cycles ==
    // the last commit cycle, so attributing each gap as it closes
    // keeps sum(cpi) == cycles at every instruction boundary.
    uint64_t lastAccounted = 0;

    // POWER5-style completion groups (for the CPI-stack counters):
    // up to five instructions complete together; cycles without a
    // group completion are attributed to the slowest member.
    unsigned groupSize = 0;
    uint64_t groupMaxCc = 0; ///< slowest member's completion time
    StallReason groupReason = StallReason::Other;
    uint64_t lastGroupCommit = 0;

    // Store-to-load ordering state lives in the MemorySystem (the
    // classic store table, or the LSQ); Machine::run calls
    // memsys_.beginRun() wherever a TimingState is constructed.
};

Machine::Machine(const MachineConfig &config)
    : config_(config), exec_(state_, mem_),
      l2_(config.l2, nullptr, config.memLatency),
      l1i_(config.l1i, &l2_, config.memLatency),
      l1d_(config.l1d, &l2_, config.memLatency),
      memsys_(config.memsys, &l1d_, &l2_),
      predictor_(makePredictor(config.predictor, config.predictorEntries,
                               config.predictorHistoryBits)),
      btac_(config.btac)
{
}

Machine::~Machine() = default;

void
Machine::loadProgram(const masm::Program &prog)
{
    mem_.writeBlock(prog.base, prog.image.data(), prog.image.size());
    exec_.setImage(prog.base, prog.image.size());
}

void
Machine::reset()
{
    state_.reset();
    l1i_.flush();
    l1d_.flush();
    l2_.flush();
    l1i_.resetStats();
    l1d_.resetStats();
    l2_.resetStats();
    memsys_.reset();
    predictor_ = makePredictor(config_.predictor, config_.predictorEntries,
                               config_.predictorHistoryBits);
    btac_ = Btac(config_.btac);
    exec_.clearConsole();
    // The micro-op image is semantically invisible (decode is a pure
    // function of memory, and loadProgram() re-registers it), but drop
    // the decoded slots anyway so a reset machine is indistinguishable
    // from a fresh one even for programs that store to their own code
    // pages; they rebuild lazily from the still-resident memory.
    exec_.invalidateDecodeCache();
    branchProfiling_ = false;
    branchProfile_.clear();
    stallProfiling_ = false;
    stallProfile_.clear();
    sink_ = nullptr;
    sampling_ = SamplingParams();
    timing_.reset();
}

namespace {

/** Classify the producing unit of the critical source operand. */
StallReason
unitToReason(isa::Unit u)
{
    switch (u) {
      case isa::Unit::FXU:
        return StallReason::FXU;
      case isa::Unit::LSU:
        return StallReason::LSU;
      case isa::Unit::BRU:
      case isa::Unit::CRU:
        return StallReason::Other;
      default:
        return StallReason::Other;
    }
}

} // namespace

void
Machine::scheduleInstruction(const StepInfo &info, TimingState &ts,
                             Counters &c)
{
    const isa::Inst &inst = info.inst;
    const isa::OpInfo &opi = inst.info();
    const unsigned frontDepth = config_.frontendDepth;
    const uint64_t seqno = ts.seq; ///< dynamic index of this instruction

    // ------------------------------------------------------------ fetch
    uint64_t fc = ts.fetchAvail;
    if (fc == ts.fetchCycleCursor &&
        ts.fetchedThisCycle >= config_.fetchWidth) {
        ++fc;
    }
    if (fc != ts.fetchCycleCursor) {
        ts.fetchCycleCursor = fc;
        ts.fetchedThisCycle = 0;
    }
    ++ts.fetchedThisCycle;
    ts.fetchAvail = fc;

    // Instruction cache (tag-only; code is touched once per line).
    ++c.l1iAccesses;
    uint64_t before = l1i_.stats().misses;
    unsigned ilat = l1i_.access(info.pc, false);
    bool icache_miss = l1i_.stats().misses != before;
    if (icache_miss) {
        ++c.l1iMisses;
        fc += ilat;
        ts.fetchAvail = fc;
        ts.fetchCycleCursor = fc;
        ts.fetchedThisCycle = 1;
        if (sink_) {
            CacheMissRecord mr;
            mr.level = CacheMissRecord::Level::L1I;
            mr.seq = seqno;
            mr.pc = info.pc;
            mr.addr = info.pc;
            mr.cycle = fc;
            sink_->onCacheMiss(mr);
        }
    }

    bool fetch_after_redirect = ts.redirectShadow > 0;
    bool fetch_after_disambig = fetch_after_redirect && ts.redirectDisambig;
    if (ts.redirectShadow > 0)
        --ts.redirectShadow;

    // --------------------------------------------------------- dispatch
    uint64_t dc = fc + frontDepth;
    if (dc < ts.dispatchCycleCursor)
        dc = ts.dispatchCycleCursor;
    if (dc == ts.dispatchCycleCursor &&
        ts.dispatchedThisCycle >= config_.dispatchWidth) {
        ++dc;
    }
    // ROB space: the entry robSize back must have committed.
    uint64_t rob_free = ts.robCommitCycle[ts.seq % config_.robSize];
    bool rob_limited = false;
    if (ts.seq >= config_.robSize && dc <= rob_free) {
        dc = rob_free + 1;
        rob_limited = true;
    }
    // Load/store queue space (lsq mode; a no-op in classic mode).
    bool lsq_limited = false;
    if (info.isLoad || info.isStore)
        dc = memsys_.reserve(info.isLoad, dc, &lsq_limited);
    if (lsq_limited) {
        if (info.isLoad)
            ++c.lsqFullLoads;
        else
            ++c.lsqFullStores;
    }
    if (dc != ts.dispatchCycleCursor) {
        ts.dispatchCycleCursor = dc;
        ts.dispatchedThisCycle = 0;
    }
    ++ts.dispatchedThisCycle;

    // ---------------------------------------------------------- operands
    unsigned deps[isa::kMaxDeps];
    unsigned ndeps = srcDeps(inst, deps);
    uint64_t rc_cycle = dc;
    isa::Unit critical_producer = isa::Unit::NONE;
    for (unsigned i = 0; i < ndeps; ++i) {
        uint64_t rdy = ts.regReady[deps[i]];
        if (rdy > rc_cycle) {
            rc_cycle = rdy;
            critical_producer = ts.regProducer[deps[i]];
        }
    }

    // Store-to-load ordering through the memory system: the classic
    // store table makes the load wait for the store's completion; the
    // LSQ may instead forward the data or speculate (and violate).
    bool load_after_store = false;
    bool forwarded = false;
    bool disambig_violation = false;
    uint64_t conflict_complete = 0;
    if (info.isLoad) {
        LoadStoreQueue::Order ord =
            memsys_.orderLoad(info.pc, info.memAddr, rc_cycle);
        if (ord.ready > rc_cycle) {
            rc_cycle = ord.ready;
            load_after_store = true;
        }
        forwarded = ord.forwarded;
        disambig_violation = ord.violation;
        conflict_complete = ord.conflictComplete;
    }

    // ------------------------------------------------------------- issue
    auto &frees = ts.unitFree[size_t(opi.unit)];
    size_t best = 0;
    for (size_t i = 1; i < frees.size(); ++i) {
        if (frees[i] < frees[best])
            best = i;
    }
    uint64_t ic = std::max(rc_cycle, frees[best]);
    bool unit_contended = frees[best] > rc_cycle;

    // Unit occupancy: divides block the unit; multiplies for 2 cycles.
    uint64_t occupancy = 1;
    if (inst.op == isa::Op::DIVD || inst.op == isa::Op::DIVDU)
        occupancy = opi.latency;
    else if (inst.op == isa::Op::MULLD || inst.op == isa::Op::MULLI)
        occupancy = 2;
    frees[best] = ic + occupancy;

    // ---------------------------------------------------------- complete
    uint64_t latency = opi.latency;
    bool dcache_miss = false;
    bool l2_miss = false;
    if (forwarded) {
        // Load served from the store queue: no cache access at all,
        // just the forward latency once the data is ready.
        latency = memsys_.params().lsq.forwardLatency;
        ++c.storeForwards;
    } else if (info.isLoad || info.isStore) {
        ++c.l1dAccesses;
        MemorySystem::Access ar =
            memsys_.access(info.pc, info.memAddr, info.isStore, ic);
        if (ar.l1dMiss) {
            ++c.l1dMisses;
            dcache_miss = true;
        }
        if (ar.l2Miss) {
            ++c.l2Misses;
            l2_miss = true;
        }
        if (ar.prefetchedHit)
            ++c.prefetchHits;
        c.prefetchIssued += ar.prefetchIssued;
        if (sink_ && (dcache_miss || l2_miss)) {
            CacheMissRecord mr;
            mr.seq = seqno;
            mr.pc = info.pc;
            mr.addr = info.memAddr;
            mr.cycle = ic;
            mr.isStore = info.isStore;
            if (dcache_miss) {
                mr.level = CacheMissRecord::Level::L1D;
                sink_->onCacheMiss(mr);
            }
            if (l2_miss) {
                mr.level = CacheMissRecord::Level::L2;
                sink_->onCacheMiss(mr);
            }
        }
        if (info.isLoad) {
            latency = 1 + ar.latency; // L1 hit => 1 + hitLatency = 2
        } else {
            latency = 1; // store completes; writeback is buffered
        }
    }
    uint64_t cc = ic + latency;

    if (disambig_violation) {
        // The load speculated past an older store to the same granule
        // and is squashed when the store's data arrives: it re-executes
        // as a forward off the store queue, and everything younger is
        // refetched (charged below as a DisambigFlush).
        uint64_t redo =
            conflict_complete + memsys_.params().lsq.forwardLatency;
        if (redo > cc)
            cc = redo;
        ++c.disambigFlushes;
        ts.fetchAvail = cc + 1 + memsys_.params().lsq.disambigPenalty;
        ts.redirectShadow = config_.commitWidth;
        ts.redirectDisambig = true;
        if (sink_) {
            FlushRecord fr;
            fr.seq = seqno;
            fr.pc = info.pc;
            fr.resolveCycle = cc;
            fr.refetchCycle = ts.fetchAvail;
            fr.cause = FlushRecord::Cause::Disambig;
            sink_->onFlush(fr);
        }
    }

    if (info.isStore)
        memsys_.storeComplete(info.memAddr, cc);

    // Register results become available at completion.
    unsigned dsts[isa::kMaxDeps];
    unsigned ndsts = dstDeps(inst, dsts);
    for (unsigned i = 0; i < ndsts; ++i) {
        ts.regReady[dsts[i]] = cc;
        ts.regProducer[dsts[i]] = opi.unit;
    }

    // ---------------------------------------------------------- branches
    bool redirect = false;
    bool direction_mispredict = false;
    bool target_mispredict = false;
    if (info.isBranch) {
        ++c.branches;
        if (info.taken)
            ++c.takenBranches;

        Btac::Lookup bl;
        if (config_.btacEnabled)
            bl = btac_.lookup(info.pc);

        bool pred = false;
        if (info.isCondBranch) {
            ++c.condBranches;
            pred = predictor_->predict(info.pc);
            predictor_->update(info.pc, info.taken);
            direction_mispredict = pred != info.taken;
        }

        // Indirect branches: bclr is covered by a (modelled-perfect)
        // link stack; bcctr needs the BTAC for its target.
        if (inst.op == isa::Op::BCCTR && info.taken &&
            !(bl.predict && bl.nia == info.target)) {
            target_mispredict = true;
        }

        if (config_.btacEnabled) {
            btac_.update(info.pc, info.taken, info.target, bl);
            if (bl.predict) {
                ++c.btacPredictions;
                bool ok = info.taken && bl.nia == info.target;
                if (ok)
                    ++c.btacCorrect;
                else
                    ++c.btacMispredicts;
            }
        }

        bool btac_wrong = bl.predict &&
                          !(info.taken && bl.nia == info.target);

        if (direction_mispredict || target_mispredict) {
            if (direction_mispredict)
                ++c.mispredDirection;
            else
                ++c.mispredTarget;
            // Flush: refetch after the branch resolves.
            ts.fetchAvail = cc + 1 + config_.mispredictPenalty;
            redirect = true;
        } else if (btac_wrong) {
            // BTAC steered fetch to the wrong place; same redirect cost.
            ts.fetchAvail = cc + 1 + config_.mispredictPenalty;
            redirect = true;
        } else if (info.taken) {
            bool btac_covers = bl.predict && bl.nia == info.target;
            if (btac_covers) {
                // Target known at fetch: only the fetch-group break.
                ts.fetchAvail = fc + 1;
            } else {
                ts.fetchAvail = fc + 1 + config_.effectiveTakenPenalty();
                ++c.takenBubbles;
            }
        }
        if (redirect) {
            ts.redirectShadow = config_.commitWidth;
            ts.redirectDisambig = false;
        }

        if (sink_) {
            BranchRecord br;
            br.seq = seqno;
            br.pc = info.pc;
            br.target = info.target;
            br.resolveCycle = cc;
            br.conditional = info.isCondBranch;
            br.taken = info.taken;
            br.predictedTaken = pred;
            br.directionMispredict = direction_mispredict;
            br.targetMispredict = target_mispredict;
            br.btacPredicted = bl.predict;
            br.btacCorrect = bl.predict && info.taken &&
                             bl.nia == info.target;
            sink_->onBranch(br);
            if (redirect) {
                FlushRecord fr;
                fr.seq = seqno;
                fr.pc = info.pc;
                fr.resolveCycle = cc;
                fr.refetchCycle = ts.fetchAvail;
                fr.cause = direction_mispredict
                               ? FlushRecord::Cause::Direction
                           : target_mispredict
                               ? FlushRecord::Cause::Target
                               : FlushRecord::Cause::BtacSteer;
                sink_->onFlush(fr);
            }
        }

        if (branchProfiling_) {
            BranchSiteStats &site = branchProfile_[info.pc];
            ++site.executions;
            if (info.taken)
                ++site.taken;
            if (direction_mispredict)
                ++site.mispredDirection;
            else if (target_mispredict)
                ++site.mispredTarget;
        }
    }

    // ------------------------------------------------------------ commit
    uint64_t commit = std::max(cc + 1, ts.lastCommitCycle);
    if (commit == ts.lastCommitCycle &&
        ts.committedThisCycle >= config_.commitWidth) {
        ++commit;
    }
    if (commit != ts.lastCommitCycle) {
        ts.lastCommitCycle = commit;
        ts.committedThisCycle = 0;
    }
    ++ts.committedThisCycle;

    // POWER5-style completion-stall attribution: classify this
    // instruction's delay cause (PM_CMPLU_STALL_* analogue).
    StallReason reason;
    {
        bool late_in_backend = rc_cycle > dc || unit_contended ||
                               dcache_miss || load_after_store;
        if (fetch_after_redirect) {
            reason = StallReason::Branch;
        } else if (dcache_miss || disambig_violation) {
            reason = StallReason::LSU;
        } else if (late_in_backend) {
            reason = unitToReason(opi.unit);
            if (reason == StallReason::Other &&
                critical_producer != isa::Unit::NONE) {
                reason = unitToReason(critical_producer);
            }
        } else if (rob_limited) {
            reason = StallReason::Other;
        } else {
            reason = StallReason::Frontend;
        }
    }
    // CPI-stack attribution (DESIGN.md section 4.10): classify this
    // instruction's delay into the component that wins under the
    // documented priority order, then attribute every cycle up to its
    // commit.  Commit cycles are monotonic, so charging each newly
    // closed gap keeps sum(cpi) == cycles bit-exactly at every
    // instruction boundary (and hence per PmuSampler window).
    CpiComponent comp;
    {
        bool late_in_backend = rc_cycle > dc || unit_contended ||
                               dcache_miss || load_after_store;
        if (disambig_violation) {
            comp = CpiComponent::DisambigFlush;
        } else if (fetch_after_redirect) {
            comp = fetch_after_disambig ? CpiComponent::DisambigFlush
                                        : CpiComponent::BranchFlush;
        } else if (dcache_miss) {
            comp = l2_miss ? CpiComponent::LsuMem : CpiComponent::LsuL2;
        } else if (late_in_backend) {
            if (forwarded) {
                comp = CpiComponent::LsuFwd;
            } else {
                isa::Unit u = opi.unit;
                if (u != isa::Unit::FXU && u != isa::Unit::LSU &&
                    critical_producer != isa::Unit::NONE) {
                    u = critical_producer;
                }
                comp = u == isa::Unit::FXU   ? CpiComponent::Fxu
                       : u == isa::Unit::LSU ? CpiComponent::LsuL1
                                             : CpiComponent::Other;
            }
        } else if (lsq_limited) {
            comp = CpiComponent::LsqFull;
        } else if (rob_limited) {
            comp = CpiComponent::RobFull;
        } else {
            comp = CpiComponent::Frontend;
        }
    }
    if (commit > ts.lastAccounted) {
        uint64_t gap = commit - ts.lastAccounted - 1;
        if (gap > 0) {
            c.cpi[size_t(comp)] += gap;
            if (stallProfiling_)
                stallProfile_[info.pc].cycles[size_t(comp)] += gap;
        }
        ++c.cpi[size_t(CpiComponent::Completing)];
        ts.lastAccounted = commit;
    }

    // Group accounting: groups end at width or at a taken branch
    // (POWER5 group formation); the gap between group completions is
    // charged to the slowest member's reason.
    if (ts.groupSize == 0 || cc >= ts.groupMaxCc) {
        ts.groupMaxCc = cc;
        ts.groupReason = reason;
    }
    ++ts.groupSize;
    bool group_ends = ts.groupSize >= config_.commitWidth ||
                      (info.isBranch && info.taken);
    if (group_ends) {
        if (commit > ts.lastGroupCommit + 1 && ts.seq > 0) {
            c.stallCycles[size_t(ts.groupReason)] +=
                commit - ts.lastGroupCommit - 1;
        }
        ts.lastGroupCommit = commit;
        ts.groupSize = 0;
    }

    ts.robCommitCycle[ts.seq % config_.robSize] = commit;
    if (info.isLoad || info.isStore)
        memsys_.commit(info.isLoad, commit);
    ++ts.seq;

    // ---------------------------------------------------------- counters
    ++c.instructions;
    ++c.opCount[size_t(inst.op)];
    if (info.isLoad)
        ++c.loads;
    if (info.isStore)
        ++c.stores;
    c.cycles = commit;

    if (sink_) {
        InstRecord rec;
        rec.seq = seqno;
        rec.pc = info.pc;
        rec.inst = inst;
        rec.fetchCycle = fc;
        rec.dispatchCycle = dc;
        rec.issueCycle = ic;
        rec.writebackCycle = cc;
        rec.commitCycle = commit;
        rec.stall = reason;
        rec.component = comp;
        rec.isBranch = info.isBranch;
        rec.isCondBranch = info.isCondBranch;
        rec.taken = info.isBranch && info.taken;
        rec.mispredicted = direction_mispredict || target_mispredict;
        rec.isLoad = info.isLoad;
        rec.isStore = info.isStore;
        rec.memAddr = info.memAddr;
        rec.l1iMiss = icache_miss;
        rec.l1dMiss = dcache_miss;
        rec.l2Miss = l2_miss;
        rec.forwarded = forwarded;
        rec.disambigFlush = disambig_violation;
        if ((info.isLoad || info.isStore) && !memsys_.classic()) {
            rec.lsqLoadOcc = memsys_.occupancy(true, dc);
            rec.lsqStoreOcc = memsys_.occupancy(false, dc);
        }
        sink_->onInstruction(rec, c);
    }
}

RunResult
Machine::run(uint64_t max_instructions)
{
    if (sampling_.enabled())
        return runSampled(max_instructions);

    RunResult res;
    timing_ = std::make_unique<TimingState>(config_);
    memsys_.beginRun();
    TimingState &ts = *timing_;
    Counters &c = res.counters;
    if (sink_)
        sink_->onRunBegin(config_);

    for (uint64_t n = 0; n < max_instructions; ++n) {
        StepInfo info = exec_.step();
        scheduleInstruction(info, ts, c);
        if (info.halted) {
            res.halted = true;
            res.exitCode = info.exitCode;
            break;
        }
    }
    if (sink_)
        sink_->onRunEnd(c);
    res.console = exec_.console();
    return res;
}

namespace {

/** Round-to-nearest extrapolation of one event counter. */
uint64_t
scaleCounter(uint64_t v, double r)
{
    return static_cast<uint64_t>(static_cast<double>(v) * r + 0.5);
}

} // namespace

/**
 * SMARTS-style sampled timing: detailed measurement windows separated
 * by functional fast-forward phases through the compiled engine.
 *
 * - Architectural counters (instructions, opCount, branch and memory
 *   op counts) are exact: the fast-forward phases execute the same
 *   committed stream and their counts merge in unscaled.
 * - Event counters (cycles, mispredicts, taken bubbles, BTAC stats,
 *   cache misses, stall cycles) are measured inside the windows only
 *   and extrapolated by total/measured instructions.  l1iAccesses and
 *   l1dAccesses are reconstructed exactly (one per instruction and one
 *   per memory op respectively, as in the detailed model).
 * - With functionalWarming the direction predictor, BTAC and L1D stay
 *   warm across fast-forward (the detailed model's own update rules);
 *   the L1I is not warmed — the kernels' code footprint is a few lines
 *   and refills within a window.
 * - The cycle axis stays continuous across windows (fast-forward adds
 *   no cycles) and trace-sink events fire only inside windows, so an
 *   attached PmuSampler sees a compressed but monotonic timeline.
 */
RunResult
Machine::runSampled(uint64_t max_instructions)
{
    RunResult res;
    res.sampled = true;
    timing_ = std::make_unique<TimingState>(config_);
    memsys_.beginRun();
    TimingState &ts = *timing_;
    Counters &c = res.counters;
    Counters ff; ///< architectural counts from fast-forward phases
    if (sink_)
        sink_->onRunBegin(config_);

    Executor::Warming warm;
    warm.pred = predictor_.get();
    warm.btac = config_.btacEnabled ? &btac_ : nullptr;
    warm.l1d = &l1d_;
    const Executor::Warming *warmp =
        sampling_.functionalWarming ? &warm : nullptr;

    uint64_t remaining = max_instructions;
    while (remaining > 0) {
        uint64_t window =
            std::min(sampling_.detailInstructions, remaining);
        bool halted = false;
        for (uint64_t n = 0; n < window; ++n) {
            StepInfo info = exec_.step();
            scheduleInstruction(info, ts, c);
            --remaining;
            if (info.halted) {
                res.halted = true;
                res.exitCode = info.exitCode;
                halted = true;
                break;
            }
        }
        ++res.sampling.windows;
        if (halted || remaining == 0)
            break;

        uint64_t skip = std::min(sampling_.skipInstructions, remaining);
        Executor::FastResult fr = exec_.runFast(skip, ff, warmp);
        remaining -= fr.executed;
        if (fr.halted) {
            res.halted = true;
            res.exitCode = fr.exitCode;
            break;
        }
    }

    res.sampling.detailedInstructions = c.instructions;
    res.sampling.detailedCycles = c.cycles;
    res.sampling.fastForwardedInstructions = ff.instructions;

    // Exact architectural merge.
    c.instructions += ff.instructions;
    c.branches += ff.branches;
    c.condBranches += ff.condBranches;
    c.takenBranches += ff.takenBranches;
    c.loads += ff.loads;
    c.stores += ff.stores;
    for (size_t i = 0; i < c.opCount.size(); ++i)
        c.opCount[i] += ff.opCount[i];

    // Event extrapolation from the measured windows.
    if (res.sampling.detailedInstructions > 0 &&
        ff.instructions > 0) {
        double r = static_cast<double>(c.instructions) /
                   static_cast<double>(res.sampling.detailedInstructions);
        c.cycles = scaleCounter(c.cycles, r);
        c.mispredDirection = scaleCounter(c.mispredDirection, r);
        c.mispredTarget = scaleCounter(c.mispredTarget, r);
        c.takenBubbles = scaleCounter(c.takenBubbles, r);
        c.btacPredictions = scaleCounter(c.btacPredictions, r);
        c.btacCorrect = scaleCounter(c.btacCorrect, r);
        c.btacMispredicts = scaleCounter(c.btacMispredicts, r);
        c.l1dMisses = scaleCounter(c.l1dMisses, r);
        c.l1iMisses = scaleCounter(c.l1iMisses, r);
        c.l2Misses = scaleCounter(c.l2Misses, r);
        c.storeForwards = scaleCounter(c.storeForwards, r);
        c.disambigFlushes = scaleCounter(c.disambigFlushes, r);
        c.lsqFullLoads = scaleCounter(c.lsqFullLoads, r);
        c.lsqFullStores = scaleCounter(c.lsqFullStores, r);
        c.prefetchIssued = scaleCounter(c.prefetchIssued, r);
        c.prefetchHits = scaleCounter(c.prefetchHits, r);
        for (size_t i = 0; i < c.stallCycles.size(); ++i)
            c.stallCycles[i] = scaleCounter(c.stallCycles[i], r);
        for (size_t i = 0; i < c.cpi.size(); ++i)
            c.cpi[i] = scaleCounter(c.cpi[i], r);
        // Per-component rounding breaks the bit-exact sum-to-cycles
        // invariant by at most a handful of cycles; repair the residue
        // deterministically against the largest components.
        uint64_t sum = c.cpiSum();
        if (sum != c.cycles) {
            std::array<size_t, kNumCpiComponents> idx{};
            for (size_t i = 0; i < idx.size(); ++i)
                idx[i] = i;
            std::stable_sort(idx.begin(), idx.end(),
                             [&c](size_t a, size_t b) {
                                 return c.cpi[a] > c.cpi[b];
                             });
            if (c.cycles > sum) {
                c.cpi[idx[0]] += c.cycles - sum;
            } else {
                uint64_t over = sum - c.cycles;
                for (size_t i : idx) {
                    uint64_t cut = std::min(over, c.cpi[i]);
                    c.cpi[i] -= cut;
                    over -= cut;
                    if (over == 0)
                        break;
                }
            }
        }
    }
    c.l1iAccesses = c.instructions;
    // Every memory op accesses the L1D except store-queue forwards
    // (exact in classic mode where storeForwards is zero; the
    // extrapolated forward count keeps the reconstruction consistent
    // with the detailed model's rate in lsq mode).
    uint64_t memOps = c.loads + c.stores;
    c.l1dAccesses =
        memOps > c.storeForwards ? memOps - c.storeForwards : 0;

    if (sink_)
        sink_->onRunEnd(c);
    res.console = exec_.console();
    return res;
}

namespace {

/**
 * Deprecated-shim sampler: reproduces the pre-obs run(max, interval)
 * timeline bit-for-bit — run-local cycles, sampling phase starting at
 * one interval, no trailing partial sample — on top of the generic
 * event hook, chaining to any sink the caller had attached.
 */
class LegacyTimelineSink final : public TraceSink
{
  public:
    LegacyTimelineSink(uint64_t interval, TraceSink *chain)
        : interval_(interval), next_(interval), chain_(chain)
    {
    }

    TraceSink *chain() const { return chain_; }

    void
    onRunBegin(const MachineConfig &mc) override
    {
        if (chain_)
            chain_->onRunBegin(mc);
    }
    void
    onRunEnd(const Counters &final) override
    {
        if (chain_)
            chain_->onRunEnd(final);
    }
    void
    onBranch(const BranchRecord &r) override
    {
        if (chain_)
            chain_->onBranch(r);
    }
    void
    onFlush(const FlushRecord &r) override
    {
        if (chain_)
            chain_->onFlush(r);
    }
    void
    onCacheMiss(const CacheMissRecord &r) override
    {
        if (chain_)
            chain_->onCacheMiss(r);
    }

    void
    onInstruction(const InstRecord &r, const Counters &c) override
    {
        if (chain_)
            chain_->onInstruction(r, c);
        if (c.cycles < next_)
            return;
        const Counters &prev = prev_;
        IntervalSample s;
        s.cycle = c.cycles;
        uint64_t dc = c.cycles - prev.cycles;
        uint64_t di = c.instructions - prev.instructions;
        uint64_t db = c.condBranches - prev.condBranches;
        uint64_t dm = (c.mispredDirection + c.mispredTarget) -
                      (prev.mispredDirection + prev.mispredTarget);
        uint64_t da = c.l1dAccesses - prev.l1dAccesses;
        uint64_t dmiss = c.l1dMisses - prev.l1dMisses;
        s.ipc = dc ? double(di) / double(dc) : 0.0;
        s.branchMispredictRate = db ? double(dm) / double(db) : 0.0;
        s.l1dMissRate = da ? double(dmiss) / double(da) : 0.0;
        samples.push_back(s);
        prev_ = c;
        while (next_ <= c.cycles)
            next_ += interval_;
    }

    std::vector<IntervalSample> samples;

  private:
    uint64_t interval_;
    uint64_t next_;
    Counters prev_;
    TraceSink *chain_;
};

} // namespace

RunResult
Machine::run(uint64_t max_instructions, uint64_t interval_cycles)
{
    if (interval_cycles == 0)
        return run(max_instructions);
    // The shim predates sampled timing: its callers expect the
    // historical full-detail timeline bit-for-bit, so sampling is
    // suspended for the duration of the shim run.
    SamplingParams saved = sampling_;
    sampling_ = SamplingParams();
    LegacyTimelineSink legacy(interval_cycles, sink_);
    sink_ = &legacy;
    RunResult res = run(max_instructions);
    sink_ = legacy.chain();
    sampling_ = saved;
    res.timeline = std::move(legacy.samples);
    return res;
}

RunResult
Machine::runFunctional(uint64_t max_instructions)
{
    RunResult res;
    Executor::FastResult fr =
        exec_.runFast(max_instructions, res.counters);
    res.halted = fr.halted;
    res.exitCode = fr.exitCode;
    res.console = exec_.console();
    return res;
}

} // namespace bp5::sim
