#include "sim/prefetch.h"

#include "sim/cache.h"
#include "support/bitfield.h"
#include "support/logging.h"

namespace bp5::sim {

const char *
prefetchKindKey(PrefetchParams::Kind k)
{
    switch (k) {
      case PrefetchParams::Kind::None:
        return "none";
      case PrefetchParams::Kind::NextLine:
        return "next_line";
      case PrefetchParams::Kind::Stride:
        return "stride";
    }
    return "?";
}

Prefetcher::Prefetcher(const PrefetchParams &params, Cache *target)
    : params_(params), target_(target)
{
    if (params_.kind == PrefetchParams::Kind::Stride) {
        BP5_ASSERT(isPow2(params_.tableEntries),
                   "stride table size must be a power of 2");
        table_.resize(params_.tableEntries);
    }
}

unsigned
Prefetcher::issueLines(uint64_t firstAddr, int64_t step, uint64_t now)
{
    unsigned issued = 0;
    uint64_t addr = firstAddr;
    for (unsigned i = 0; i < params_.degree; ++i) {
        if (target_->prefetchFill(addr, now))
            ++issued;
        addr = uint64_t(int64_t(addr) + step);
    }
    return issued;
}

unsigned
Prefetcher::observe(uint64_t pc, uint64_t addr, bool miss, uint64_t now)
{
    switch (params_.kind) {
      case PrefetchParams::Kind::None:
        return 0;

      case PrefetchParams::Kind::NextLine: {
        if (!miss)
            return 0;
        unsigned line = target_->params().lineBytes;
        return issueLines(addr + line, int64_t(line), now);
      }

      case PrefetchParams::Kind::Stride: {
        StrideEntry &e = table_[(pc >> 2) & (table_.size() - 1)];
        if (e.tag != pc) {
            e = StrideEntry();
            e.tag = pc;
            e.lastAddr = addr;
            return 0;
        }
        int64_t delta = int64_t(addr) - int64_t(e.lastAddr);
        e.lastAddr = addr;
        unsigned issued = 0;
        if (delta != 0 && delta == e.stride) {
            if (e.confidence < 3)
                ++e.confidence;
            if (e.confidence >= 2) {
                uint64_t target = uint64_t(
                    int64_t(addr) + e.stride * int64_t(params_.distance));
                issued = issueLines(target, e.stride, now);
            }
        } else if (e.confidence > 0) {
            --e.confidence;
        } else {
            e.stride = delta;
        }
        return issued;
      }
    }
    return 0;
}

void
Prefetcher::reset()
{
    for (auto &e : table_)
        e = StrideEntry();
}

} // namespace bp5::sim
