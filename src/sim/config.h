/**
 * @file
 * Machine configuration for the POWER5-class core model.  Defaults
 * approximate the 1.65 GHz POWER5 studied by the paper (one core, SMT
 * off); the fields the paper sweeps — FXU count, BTAC, taken-branch
 * penalty — are first-class knobs.
 */

#ifndef BIOPERF5_SIM_CONFIG_H
#define BIOPERF5_SIM_CONFIG_H

#include "sim/btac.h"
#include "sim/cache.h"
#include "sim/memsys.h"
#include "sim/predictor.h"

namespace bp5::sim {

/** Full machine configuration. */
struct MachineConfig
{
    // Front end.
    unsigned fetchWidth = 8;       ///< POWER5 fetches up to 8 per cycle
    unsigned frontendDepth = 7;    ///< fetch-to-dispatch stages
    unsigned mispredictPenalty = 16; ///< extra redirect cycles on flush
    unsigned takenBranchPenalty = 2; ///< POWER5 taken-branch bubble
    bool smt = false;              ///< SMT raises the bubble to 3 cycles

    // Dispatch / completion.
    unsigned dispatchWidth = 5;    ///< POWER5 group dispatch
    unsigned commitWidth = 5;      ///< commit throughput cap (paper: 5)
    unsigned robSize = 100;        ///< in-flight instruction window

    // Execution resources (paper Fig 5 sweeps numFXU in 2..4).
    unsigned numFXU = 2;
    unsigned numLSU = 2;
    unsigned numBRU = 1;
    unsigned numCRU = 1;

    // Branch prediction.
    PredictorKind predictor = PredictorKind::Tournament;
    unsigned predictorEntries = 16384;
    unsigned predictorHistoryBits = 11;

    // BTAC (paper section IV-D; disabled on the baseline POWER5).
    bool btacEnabled = false;
    BtacParams btac;

    // Memory hierarchy (POWER5-like).
    CacheParams l1i{"L1I", 64 * 1024, 2, 128, 0};
    CacheParams l1d{"L1D", 32 * 1024, 4, 128, 1};
    // POWER5's L2 is 1.875 MiB 10-way; the model rounds to the nearest
    // power-of-two geometry.
    CacheParams l2{"L2", 2048 * 1024, 16, 128, 12};
    /** Latency charged when the last cache level misses.  The Cache
     *  constructor takes this explicitly (no hard-coded default), so
     *  this field is the single sweepable memory-latency knob. */
    unsigned memLatency = 230;

    // Memory system: classic (pre-LSQ, bit-exact legacy) by default;
    // MemSysParams::Mode::Lsq enables the load/store queue, store
    // forwarding, speculative disambiguation and prefetchers.
    MemSysParams memsys;

    /** The taken-branch bubble in effect (2, or 3 with SMT). */
    unsigned effectiveTakenPenalty() const
    {
        return smt ? takenBranchPenalty + 1 : takenBranchPenalty;
    }

    /** Field-wise equality (the experiment driver keys machine reuse
     *  on it). */
    friend bool operator==(const MachineConfig &,
                           const MachineConfig &) = default;

    /** Baseline POWER5 as measured in the paper's section III. */
    static MachineConfig power5Baseline() { return MachineConfig(); }

    /** Baseline plus the paper's eight-entry BTAC (section VI-B). */
    static MachineConfig
    power5WithBtac()
    {
        MachineConfig c;
        c.btacEnabled = true;
        return c;
    }

    /** Baseline with @p n fixed-point units (section VI-C). */
    static MachineConfig
    power5WithFxu(unsigned n)
    {
        MachineConfig c;
        c.numFXU = n;
        return c;
    }

    /** All three enhancements combined (section VI-D). */
    static MachineConfig
    power5Enhanced(unsigned fxu = 4)
    {
        MachineConfig c;
        c.btacEnabled = true;
        c.numFXU = fxu;
        return c;
    }

    /**
     * Baseline with the load/store queue memory system: finite
     * queues, store-to-load forwarding, speculative disambiguation,
     * and (optionally) an L1D prefetcher.
     */
    static MachineConfig
    power5WithLsq(unsigned loads = 16, unsigned stores = 16,
                  PrefetchParams::Kind pf = PrefetchParams::Kind::None)
    {
        MachineConfig c;
        c.memsys.mode = MemSysParams::Mode::Lsq;
        c.memsys.lsq.loads = loads;
        c.memsys.lsq.stores = stores;
        c.memsys.l1dPrefetch.kind = pf;
        return c;
    }
};

} // namespace bp5::sim

#endif // BIOPERF5_SIM_CONFIG_H
