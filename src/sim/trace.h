/**
 * @file
 * Event-hook interface of the timing model: a TraceSink attached to a
 * Machine observes every retired instruction's pipeline lifecycle
 * (fetch / dispatch / issue / writeback / commit cycles), plus branch
 * resolutions, pipeline flushes and cache misses, and sees the running
 * Counters at each commit.
 *
 * The interface lives in sim/ so the Machine can emit events without
 * depending on any concrete sink; the sinks themselves (Perfetto and
 * Konata trace writers, the interval PMU sampler, the multiplexer)
 * live in src/obs.  With no sink attached the cost is a single
 * predictable null-pointer test per retired instruction — the timing
 * model never computes anything on behalf of an absent observer, and a
 * no-op sink is guaranteed not to perturb Counters (tested: null-sink
 * runs are bit-identical to no-sink runs).
 *
 * Because the timing model is one-pass (DESIGN.md §4.2), the per-stage
 * events of one instruction are delivered together, as one InstRecord
 * carrying all stage cycles, at the point the instruction is scheduled;
 * records arrive in program (= commit) order.
 */

#ifndef BIOPERF5_SIM_TRACE_H
#define BIOPERF5_SIM_TRACE_H

#include <cstdint>

#include "isa/inst.h"
#include "sim/counters.h"

namespace bp5::sim {

struct MachineConfig;

/** Pipeline lifecycle of one retired instruction (cycle numbers are
 *  run-local; sinks that span run() calls rebase them, see
 *  obs::RebasingSink). */
struct InstRecord
{
    uint64_t seq = 0;  ///< dynamic instruction index within the run
    uint64_t pc = 0;
    isa::Inst inst;

    // Stage cycles: fetch -> dispatch (decode pipe) -> issue ->
    // writeback (completion) -> commit.
    uint64_t fetchCycle = 0;
    uint64_t dispatchCycle = 0;
    uint64_t issueCycle = 0;
    uint64_t writebackCycle = 0;
    uint64_t commitCycle = 0;

    StallReason stall = StallReason::None; ///< attributed delay cause
    /** CPI-stack component this instruction's commit gap is charged
     *  to (the cycle-accounting view of `stall`). */
    CpiComponent component = CpiComponent::Completing;

    bool isBranch = false;
    bool isCondBranch = false;
    bool taken = false;
    bool mispredicted = false; ///< direction- or target-mispredicted

    bool isLoad = false;
    bool isStore = false;
    uint64_t memAddr = 0;

    bool l1iMiss = false;
    bool l1dMiss = false;
    bool l2Miss = false;

    // Memory-system outcomes (all zero in classic MemSysParams mode).
    bool forwarded = false;     ///< load data forwarded from store queue
    bool disambigFlush = false; ///< this load squashed on an ordering
                                ///< violation (a Disambig FlushRecord
                                ///< precedes this record)
    /** Load/store queue occupancy at this op's dispatch (lsq mode,
     *  memory ops only; feeds the Perfetto occupancy counter track). */
    unsigned lsqLoadOcc = 0;
    unsigned lsqStoreOcc = 0;
};

/** One branch resolution (emitted for every branch instruction). */
struct BranchRecord
{
    uint64_t seq = 0;
    uint64_t pc = 0;
    uint64_t target = 0;       ///< architectural target when taken
    uint64_t resolveCycle = 0; ///< writeback cycle of the branch
    bool conditional = false;
    bool taken = false;
    bool predictedTaken = false;      ///< direction predictor's call
    bool directionMispredict = false;
    bool targetMispredict = false;
    bool btacPredicted = false; ///< BTAC steered fetch at this branch
    bool btacCorrect = false;
};

/** A front-end flush: fetch redirected after a branch resolved. */
struct FlushRecord
{
    enum class Cause
    {
        Direction, ///< direction misprediction
        Target,    ///< indirect-target misprediction
        BtacSteer, ///< BTAC steered fetch to the wrong place
        Disambig,  ///< load-ordering violation (speculative load squash)
    };

    uint64_t seq = 0;
    uint64_t pc = 0;           ///< the mispredicted branch (or the load)
    uint64_t resolveCycle = 0; ///< cycle the branch resolved
    uint64_t refetchCycle = 0; ///< cycle fetch resumes
    Cause cause = Cause::Direction;
};

/** One cache miss (instruction- or data-side). */
struct CacheMissRecord
{
    enum class Level
    {
        L1I,
        L1D,
        L2,
    };

    Level level = Level::L1D;
    uint64_t seq = 0;
    uint64_t pc = 0;
    uint64_t addr = 0;  ///< missing address (pc for L1I)
    uint64_t cycle = 0; ///< fetch cycle (L1I) or issue cycle (L1D/L2)
    bool isStore = false;
};

/**
 * Observer of one Machine's timed runs.  The default implementation
 * of every hook is a no-op, so a plain TraceSink instance is the null
 * sink.  Hooks fire only during timed runs (runFunctional() performs
 * no cycle accounting and emits no events).  Event order per
 * instruction: cache misses, then branch resolve, then flush, then the
 * InstRecord; onRunBegin/onRunEnd bracket each run() call.
 */
class TraceSink
{
  public:
    virtual ~TraceSink();

    virtual void onRunBegin(const MachineConfig &) {}
    /** End of one run; the argument is the run's complete counters. */
    virtual void onRunEnd(const Counters &) {}

    /** The Counters argument is the running total *including* this
     *  instruction. */
    virtual void onInstruction(const InstRecord &, const Counters &) {}
    virtual void onBranch(const BranchRecord &) {}
    virtual void onFlush(const FlushRecord &) {}
    virtual void onCacheMiss(const CacheMissRecord &) {}
};

} // namespace bp5::sim

#endif // BIOPERF5_SIM_TRACE_H
