#include "analysis/cfg.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>

#include "isa/encode.h"
#include "support/logging.h"

namespace bp5::analysis {

using isa::Inst;
using isa::Op;

CodeImage
CodeImage::fromProgram(const masm::Program &prog, uint64_t entry_addr)
{
    CodeImage img;
    img.base = prog.base;
    img.entry = entry_addr ? entry_addr : prog.base;
    img.bytes = prog.image;
    img.symbols = prog.symbols;
    return img;
}

uint32_t
CodeImage::word(uint64_t pc) const
{
    BP5_ASSERT(contains(pc), "word() outside image: 0x%llx",
               (unsigned long long)pc);
    size_t off = pc - base;
    return static_cast<uint32_t>(bytes[off]) |
           static_cast<uint32_t>(bytes[off + 1]) << 8 |
           static_cast<uint32_t>(bytes[off + 2]) << 16 |
           static_cast<uint32_t>(bytes[off + 3]) << 24;
}

std::string
CodeImage::labelAt(uint64_t addr) const
{
    for (const auto &[name, a] : symbols)
        if (a == addr)
            return name;
    return "";
}

isa::SymbolResolver
CodeImage::resolver() const
{
    // Invert once; the resolver is called per rendered operand.
    auto by_addr = std::make_shared<std::map<uint64_t, std::string>>();
    for (const auto &[name, a] : symbols) {
        auto it = by_addr->find(a);
        // Deterministic pick when several labels share an address.
        if (it == by_addr->end() || name < it->second)
            (*by_addr)[a] = name;
    }
    return [by_addr](uint64_t addr) -> std::string {
        auto it = by_addr->find(addr);
        return it == by_addr->end() ? std::string() : it->second;
    };
}

namespace {

/** Branch target of a decoded B/BC at @p pc. */
uint64_t
branchTarget(const Inst &inst, uint64_t pc)
{
    return inst.aa ? static_cast<uint64_t>(inst.imm)
                   : pc + static_cast<int64_t>(inst.imm);
}

/** True when control can fall through to pc + 4. */
bool
fallsThrough(const Inst &inst, const CodeImage &image, uint64_t pc)
{
    const isa::OpInfo &info = inst.info();
    if (!info.isBranch)
        return inst.op != Op::SC || classifySyscall(image, pc) != 0;
    if (inst.lk)
        return true; // calls return to pc + 4
    if (inst.op == Op::B)
        return false; // I-form has no BO field
    return inst.bo != isa::BO_ALWAYS;
}

} // namespace

int
classifySyscall(const CodeImage &image, uint64_t sc_pc)
{
    // The compiler and the assembly idiom both select the service with
    // a `li r0, K` shortly before the `sc`.  Scan a few instructions
    // backwards; give up at anything that redefines r0, at control
    // flow, or at a spot another branch can jump to (that path may
    // carry a different selector).
    std::set<uint64_t> targets;
    for (uint64_t pc = image.base; pc + 4 <= image.end(); pc += 4) {
        Inst inst = isa::decode(image.word(pc));
        if (inst.valid() && inst.info().isBranch && inst.op != Op::BCLR &&
            inst.op != Op::BCCTR)
            targets.insert(inst.aa ? static_cast<uint64_t>(inst.imm)
                                   : pc + static_cast<int64_t>(inst.imm));
    }

    uint64_t pc = sc_pc;
    for (int steps = 0; steps < 8 && pc >= image.base + 4; ++steps) {
        pc -= 4;
        Inst prev = isa::decode(image.word(pc));
        if (!prev.valid() || prev.info().isBranch || prev.op == Op::SC)
            break;
        if (prev.op == Op::ADDI && prev.rt == 0 && prev.ra == 0)
            return prev.imm == isa::SYS_EXIT ? 0 : 1;
        unsigned deps[isa::kMaxDeps];
        unsigned n = isa::dstDeps(prev, deps);
        bool writes_r0 = false;
        for (unsigned i = 0; i < n; ++i)
            writes_r0 |= deps[i] == 0;
        if (writes_r0 || targets.count(pc))
            break;
    }
    return -1;
}

const BasicBlock *
Cfg::blockAt(uint64_t pc) const
{
    for (const BasicBlock &b : blocks)
        if (pc >= b.start && pc < b.endPc())
            return &b;
    return nullptr;
}

std::vector<uint64_t>
Cfg::reachablePcs() const
{
    std::vector<uint64_t> pcs;
    for (const BasicBlock &b : blocks)
        for (const CfgInst &ci : b.insts)
            pcs.push_back(ci.pc);
    std::sort(pcs.begin(), pcs.end());
    return pcs;
}

std::vector<std::pair<uint64_t, unsigned>>
Cfg::unreachableRuns() const
{
    std::set<uint64_t> reachable;
    for (const BasicBlock &b : blocks)
        for (const CfgInst &ci : b.insts)
            reachable.insert(ci.pc);

    std::vector<std::pair<uint64_t, unsigned>> runs;
    uint64_t run_start = 0;
    unsigned run_len = 0;
    for (uint64_t pc = image.base; pc + 4 <= image.end(); pc += 4) {
        bool dead = !reachable.count(pc) && isa::decode(image.word(pc)).valid();
        if (dead) {
            if (run_len == 0)
                run_start = pc;
            ++run_len;
        } else if (run_len) {
            runs.emplace_back(run_start, run_len);
            run_len = 0;
        }
    }
    if (run_len)
        runs.emplace_back(run_start, run_len);
    return runs;
}

size_t
Cfg::numInsts() const
{
    size_t n = 0;
    for (const BasicBlock &b : blocks)
        n += b.insts.size();
    return n;
}

std::string
Cfg::dump() const
{
    std::string out;
    isa::SymbolResolver sym = image.resolver();
    for (const BasicBlock &b : blocks) {
        out += strprintf("block %d @ 0x%llx", b.id,
                         (unsigned long long)b.start);
        std::string label = image.labelAt(b.start);
        if (!label.empty())
            out += " <" + label + ">";
        out += "  preds:";
        for (int p : b.preds)
            out += strprintf(" %d", p);
        out += "  succs:";
        for (int s : b.succs)
            out += strprintf(" %d", s);
        if (b.indirectSucc)
            out += " indirect";
        if (b.isReturn)
            out += " return";
        if (b.isExit)
            out += " exit";
        out += "\n";
        for (const CfgInst &ci : b.insts)
            out += strprintf("  0x%llx: %s\n", (unsigned long long)ci.pc,
                             isa::disassemble(ci.inst, ci.pc, sym).c_str());
    }
    return out;
}

Cfg
buildCfg(const CodeImage &image)
{
    Cfg cfg;
    cfg.image = image;

    // ----------------------------------------------------------------
    // Pass 1: discover reachable instructions and block leaders.
    // ----------------------------------------------------------------
    std::map<uint64_t, Inst> insts; // reachable pc -> decoded
    std::set<uint64_t> leaders;
    std::set<uint64_t> invalid_reported;
    std::deque<std::pair<uint64_t, uint64_t>> work; // (pc, discovered-from)

    auto enqueue = [&](uint64_t pc, uint64_t from, bool leader) {
        if (leader)
            leaders.insert(pc);
        if (!insts.count(pc))
            work.emplace_back(pc, from);
    };

    if (!image.contains(image.entry) || image.entry % 4 != 0) {
        cfg.issues.push_back({CfgIssue::BranchTargetOutside, image.entry,
                              image.entry, image.entry});
        return cfg;
    }
    enqueue(image.entry, image.entry, true);

    while (!work.empty()) {
        auto [pc, from] = work.front();
        work.pop_front();
        if (insts.count(pc))
            continue;
        Inst inst = isa::decode(image.word(pc));
        if (!inst.valid()) {
            if (invalid_reported.insert(pc).second)
                cfg.issues.push_back(
                    {CfgIssue::InvalidInstruction, pc, pc, from});
            leaders.insert(pc); // terminate the preceding block here
            continue;
        }
        insts[pc] = inst;

        const isa::OpInfo &info = inst.info();
        if (info.isBranch && inst.op != Op::BCLR && inst.op != Op::BCCTR) {
            uint64_t target = branchTarget(inst, pc);
            if (target % 4 != 0)
                cfg.issues.push_back(
                    {CfgIssue::BranchTargetUnaligned, pc, target, pc});
            else if (!image.contains(target))
                cfg.issues.push_back(
                    {CfgIssue::BranchTargetOutside, pc, target, pc});
            else
                enqueue(target, pc, true);
        }
        if (fallsThrough(inst, image, pc)) {
            if (image.contains(pc + 4)) {
                // Fall-through is a leader only after a branch/sc.
                bool ends_block = info.isBranch || inst.op == Op::SC;
                enqueue(pc + 4, pc, ends_block);
            } else {
                cfg.issues.push_back(
                    {inst.op == Op::SC && classifySyscall(image, pc) == -1
                         ? CfgIssue::MaybeFallOffEnd
                         : CfgIssue::FallOffEnd,
                     pc, pc + 4, pc});
            }
        } else if (inst.op == Op::SC && classifySyscall(image, pc) == -1 &&
                   image.contains(pc + 4)) {
            // Unprovable selector: conservatively explore both outcomes.
            enqueue(pc + 4, pc, true);
        }
    }

    if (insts.empty())
        return cfg;

    // ----------------------------------------------------------------
    // Pass 2: carve blocks.  A block ends at a branch, an sc, a gap in
    // the reachable set, or just before the next leader.
    // ----------------------------------------------------------------
    std::map<uint64_t, int> block_of_leader;
    BasicBlock cur;
    auto flush = [&] {
        if (cur.insts.empty())
            return;
        cur.id = static_cast<int>(cfg.blocks.size());
        block_of_leader[cur.start] = cur.id;
        cfg.blocks.push_back(std::move(cur));
        cur = BasicBlock{};
    };

    uint64_t prev_pc = 0;
    bool prev_ended = true;
    for (const auto &[pc, inst] : insts) {
        bool gap = !cur.insts.empty() && pc != prev_pc + 4;
        if (prev_ended || gap || leaders.count(pc))
            flush();
        if (cur.insts.empty())
            cur.start = pc;
        cur.insts.push_back({pc, inst});
        prev_pc = pc;

        const isa::OpInfo &info = inst.info();
        prev_ended = info.isBranch || inst.op == Op::SC;
    }
    flush();

    // ----------------------------------------------------------------
    // Pass 3: edges.
    // ----------------------------------------------------------------
    auto link = [&](int from, uint64_t to_pc) {
        auto it = block_of_leader.find(to_pc);
        if (it == block_of_leader.end())
            return; // target was invalid / truncated
        cfg.blocks[from].succs.push_back(it->second);
        cfg.blocks[it->second].preds.push_back(from);
    };

    for (BasicBlock &b : cfg.blocks) {
        const CfgInst &tail = b.last();
        const Inst &inst = tail.inst;
        const isa::OpInfo &info = inst.info();

        if (inst.op == Op::BCLR) {
            b.isReturn = true;
            if (inst.bo != isa::BO_ALWAYS)
                link(b.id, tail.pc + 4);
            continue;
        }
        if (inst.op == Op::BCCTR) {
            b.indirectSucc = true;
            if (inst.bo != isa::BO_ALWAYS)
                link(b.id, tail.pc + 4);
            continue;
        }
        if (info.isBranch) {
            uint64_t target = branchTarget(inst, tail.pc);
            if (target % 4 == 0 && image.contains(target))
                link(b.id, target);
            if (fallsThrough(inst, image, tail.pc))
                link(b.id, tail.pc + 4);
            continue;
        }
        if (inst.op == Op::SC) {
            int cls = classifySyscall(image, tail.pc);
            if (cls == 0) {
                b.isExit = true;
                continue;
            }
            if (image.contains(tail.pc + 4))
                link(b.id, tail.pc + 4);
            if (cls == -1)
                b.isExit = true; // may also halt
            continue;
        }
        // Straight-line block split by a leader or truncated by a gap.
        if (image.contains(tail.pc + 4))
            link(b.id, tail.pc + 4);
    }

    auto entry_it = block_of_leader.find(image.entry);
    cfg.entryBlock =
        entry_it == block_of_leader.end() ? -1 : entry_it->second;
    return cfg;
}

} // namespace bp5::analysis
