/**
 * @file
 * Binary-level abstract interpretation over the reconstructed CFG
 * (DESIGN.md §4.9).  For every reachable program point the analysis
 * tracks, per GPR, an abstract value = (provenance, interval):
 *
 *   provenance  Bottom < Const < Num < Ptr
 *
 *     Const — derived exclusively from instruction immediates; the
 *             interval is exact up to widening.
 *     Num   — a computed non-pointer quantity (sub-8-byte load,
 *             arithmetic on unknowns, masked/scaled values).
 *     Ptr   — possibly derived from an entry-ABI pointer register or
 *             an 8-byte load; assumed to address valid memory.
 *
 * Every reachable load/store is then classified (MemClass).  The
 * asymmetry is deliberate: *errors* are only reported for addresses of
 * Const provenance, where the analysis has modelled every contributing
 * instruction exactly, while Ptr addresses are trusted and Num
 * addresses degrade to a pedantic "unprovable" warning.  This is what
 * lets the lint layer promise that an out-of-bounds or misalignment
 * error is a definite bug, never a heuristic guess.
 */

#ifndef BIOPERF5_ANALYSIS_ABSINT_H
#define BIOPERF5_ANALYSIS_ABSINT_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/interval.h"

namespace bp5::analysis {

/** Provenance lattice; join is max. */
enum class Prov : uint8_t
{
    Bottom, ///< no value on any path (undefined register)
    Const,  ///< built from immediates only; interval is trustworthy
    Num,    ///< computed non-pointer data
    Ptr,    ///< may be an ABI pointer / loaded 64-bit address
};

const char *provName(Prov p);

/** One abstract register value. */
struct AbsVal
{
    Prov prov = Prov::Bottom;
    Interval range = Interval::bottom();

    static AbsVal bottom() { return {}; }
    static AbsVal constant(int64_t v)
    {
        return {Prov::Const, Interval::point(v)};
    }
    static AbsVal num(Interval r) { return {Prov::Num, r}; }
    static AbsVal numTop() { return {Prov::Num, Interval::top()}; }
    static AbsVal ptrTop() { return {Prov::Ptr, Interval::top()}; }

    bool operator==(const AbsVal &o) const
    {
        return prov == o.prov && range == o.range;
    }

    AbsVal joined(const AbsVal &o) const
    {
        if (prov == Prov::Bottom)
            return o;
        if (o.prov == Prov::Bottom)
            return *this;
        return {std::max(prov, o.prov), range.join(o.range)};
    }

    /** Widen bounds that moved since @p prev (same-shaped join input). */
    AbsVal widenedFrom(const AbsVal &prev) const
    {
        if (prev.prov == Prov::Bottom || prov == Prov::Bottom)
            return *this;
        return {prov, range.widenedFrom(prev.range)};
    }

    std::string str() const;
};

/** A declared valid data region (for memory classification). */
struct MemRegion
{
    uint64_t base = 0;
    uint64_t size = 0;
    std::string name;

    bool
    containsRange(uint64_t lo, uint64_t hi) const ///< [lo, hi] inclusive
    {
        return lo >= base && hi >= lo && hi < base + size;
    }
};

/** What the analysis can say about one memory access. */
enum class MemClass
{
    InBounds,    ///< provably inside a declared region
    OutOfBounds, ///< provably invalid (null page, no region covers it)
    RegionRel,   ///< relative to a trusted pointer; assumed valid
    Unknown,     ///< computed address nothing vouches for
};

const char *memClassName(MemClass c);

/** One classified load/store. */
struct MemAccess
{
    uint64_t pc = 0;
    bool isStore = false;
    unsigned size = 0;   ///< access width in bytes
    AbsVal ea;           ///< abstract effective address
    MemClass cls = MemClass::Unknown;
    bool misaligned = false; ///< ea is a singleton and ea % size != 0
};

/** Analysis result: per-block-entry register state + access table. */
struct ValueAnalysis
{
    /** Abstract GPR state at block entry, indexed [BasicBlock::id]. */
    std::vector<std::array<AbsVal, 32>> in;

    /** Every reachable load/store, in address order. */
    std::vector<MemAccess> accesses;
};

/**
 * Run the interval/provenance analysis to fixpoint and classify every
 * memory access.  Entry registers in @p entry_defined start at Ptr-top
 * (r0, which the ABI only defines as a scratch/nop operand, starts as
 * Num); everything else starts at Bottom.
 */
ValueAnalysis analyzeValues(const Cfg &cfg,
                            RegSet entry_defined,
                            const std::vector<MemRegion> &regions = {});

/** Access width in bytes of a load/store opcode (0 for others). */
unsigned memAccessSize(isa::Op op);

} // namespace bp5::analysis

#endif // BIOPERF5_ANALYSIS_ABSINT_H
