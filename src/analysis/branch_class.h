/**
 * @file
 * Static branch taxonomy for MiniPOWER programs, and the join against
 * the simulator's per-site PMU counters.
 *
 * The paper's central branch observation (sections IV-A/VI) is that
 * the DP kernels' mispredictions concentrate in *data-dependent*
 * branches — the cmp+branch hammocks compiled from max() expressions,
 * whose direction depends on the sequence data and is near-random —
 * while loop back-edges and guards predict well.  This pass recovers
 * that taxonomy statically from the binary:
 *
 *   LoopBack  - conditional branch backwards, or any CTR-decrementing
 *               branch (bdnz/bdz): closes a loop.
 *   DataDep   - forward conditional branch forming a hammock (if-then
 *               or if-then-else shape whose arms rejoin): the max()
 *               pattern.
 *   Guard     - any other forward conditional branch (early exits,
 *               x-drop cutoffs, bounds checks).
 *
 * Unconditional control transfers are classified for completeness
 * (Goto / Call / Return / Indirect) but carry no prediction question.
 *
 * joinProfile() merges this static table with a sim::BranchProfile
 * collected from the same program, giving the static-class vs
 * dynamic-misprediction breakdown the --analyze driver mode prints.
 */

#ifndef BIOPERF5_ANALYSIS_BRANCH_CLASS_H
#define BIOPERF5_ANALYSIS_BRANCH_CLASS_H

#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "sim/counters.h"
#include "support/result.h"

namespace bp5::analysis {

enum class BranchClass
{
    LoopBack,
    DataDep,
    Guard,
    Goto,    ///< unconditional b
    Call,    ///< bl (lk set)
    Return,  ///< blr
    Indirect,///< bctr
};

const char *branchClassName(BranchClass c);

/** One classified branch site. */
struct BranchSite
{
    uint64_t pc = 0;
    BranchClass klass = BranchClass::Goto;
    bool conditional = false;
    std::string disasm;
    std::string detail; ///< e.g. the compare feeding the branch
};

struct ClassifyOptions
{
    /**
     * Largest hammock side, in instructions, still considered a
     * data-dependent diamond.  Generous relative to the if-converter's
     * limit because branchy codegen keeps value traffic in memory.
     */
    unsigned maxHammockInsts = 24;
};

/** Classify every branch in the CFG (ascending pc). */
std::vector<BranchSite> classifyBranches(const Cfg &cfg,
                                         const ClassifyOptions &opts = {});

/** Per-class aggregate of the PMU join. */
struct ClassProfile
{
    BranchClass klass;
    unsigned sites = 0;          ///< static sites of this class
    unsigned sitesExecuted = 0;  ///< ... that executed at least once
    sim::BranchSiteStats dynamic;///< summed PMU counters
};

/**
 * Join classified sites with per-site PMU counters from a simulation
 * of the same program.  Profile entries at addresses the classifier
 * did not see are ignored (they cannot occur when both views come
 * from the same image).
 */
std::vector<ClassProfile> joinProfile(const std::vector<BranchSite> &sites,
                                      const sim::BranchProfile &profile);

/** Rows for the static-vs-dynamic table (one per class, plus total). */
std::vector<support::ResultRow>
classProfileRows(const std::vector<ClassProfile> &classes);

/** Rows for the per-site table, hottest mispredictors first. */
std::vector<support::ResultRow>
siteProfileRows(const std::vector<BranchSite> &sites,
                const sim::BranchProfile &profile, unsigned top_n = 10);

} // namespace bp5::analysis

#endif // BIOPERF5_ANALYSIS_BRANCH_CLASS_H
