/**
 * @file
 * Dataflow analyses over the reconstructed CFG.  All passes operate on
 * the isa dependency-register space (GPRs 0-31, CR fields 32-39, LR,
 * CTR — see isa::DepReg), so one 64-bit word holds a full register set
 * and the transfer functions are plain bit operations.
 *
 * Three classic analyses are provided:
 *
 *  - possibly-defined registers (forward, union): a read of a register
 *    outside this set is a definite use-before-def on *every* path,
 *    which is what the lint layer reports as an error;
 *  - live registers (backward, union): feeds dead-definition warnings;
 *  - reaching definitions (forward, union, per-definition-site): gives
 *    use-def chains, which the branch classifier walks to find the
 *    compare feeding each conditional branch.
 */

#ifndef BIOPERF5_ANALYSIS_DATAFLOW_H
#define BIOPERF5_ANALYSIS_DATAFLOW_H

#include <cstdint>
#include <vector>

#include "analysis/cfg.h"
#include "isa/isa.h"

namespace bp5::analysis {

/** Bitset over the isa::DepReg name space (42 names < 64 bits). */
using RegSet = uint64_t;

constexpr RegSet
regBit(unsigned dep)
{
    return RegSet{1} << dep;
}

/** Registers defined at program entry under the kernel ABI:
 *  r0 (nop reads it), r1 (stack pointer), r3-r10 (arguments), LR. */
RegSet abiEntryDefined();

/** Render a dependency name ("r5", "cr2", "lr", "ctr"). */
std::string depRegName(unsigned dep);

/** Render a register set as a comma-separated list. */
std::string regSetNames(RegSet set);

/** Uses and defs of one instruction in the DepReg space.  Beyond
 *  isa::srcDeps, syscalls read r0 (selector) and r3 (payload). */
struct DefUse
{
    RegSet uses = 0;
    RegSet defs = 0;
};

DefUse defUse(const isa::Inst &inst);

/** Per-block IN/OUT sets of a bitset dataflow problem, indexed by
 *  BasicBlock::id. */
struct BlockSets
{
    std::vector<RegSet> in;
    std::vector<RegSet> out;
};

/**
 * Forward may-analysis: possiblyDefined.in[b] is the set of registers
 * written on at least one path from the entry to the top of @p b.
 * The complement is "provably never written yet".
 */
BlockSets possiblyDefined(const Cfg &cfg, RegSet entry_defined);

/**
 * Backward may-analysis: liveness.out[b] is the set of registers whose
 * current value may still be read after the end of @p b.  Return and
 * exit blocks are given {r3} (result / exit payload) as boundary
 * liveness.
 */
BlockSets liveness(const Cfg &cfg);

/** One static definition site. */
struct DefSite
{
    int block = -1;     ///< BasicBlock::id
    unsigned idx = 0;   ///< instruction index within the block
    uint64_t pc = 0;
    unsigned reg = 0;   ///< DepReg name being defined
};

/**
 * Reaching definitions with use-def chain queries.  Definition sites
 * are numbered globally; block IN/OUT sets are bitvectors over them.
 * A pseudo-definition at the entry represents each ABI-defined
 * register (DefSite with block == -1).
 */
class ReachingDefs
{
  public:
    ReachingDefs(const Cfg &cfg, RegSet entry_defined);

    /** All definitions of @p reg that reach the *input* of the
     *  instruction at @p block / @p idx.  Entry pseudo-defs appear as
     *  DefSite{block: -1}. */
    std::vector<DefSite> reaching(int block, unsigned idx,
                                  unsigned reg) const;

    /** Definitions reaching the given use, located by pc. */
    std::vector<DefSite> reachingAt(uint64_t pc, unsigned reg) const;

    const std::vector<DefSite> &sites() const { return sites_; }

  private:
    using BitVec = std::vector<uint64_t>;

    void replayTo(int block, unsigned idx, BitVec &vec) const;

    const Cfg &cfg_;
    std::vector<DefSite> sites_;         ///< real sites, then pseudo
    size_t numRealSites_ = 0;
    std::vector<std::vector<unsigned>> sitesOfReg_; ///< per DepReg
    std::vector<BitVec> in_;             ///< per block
    size_t words_ = 0;
};

} // namespace bp5::analysis

#endif // BIOPERF5_ANALYSIS_DATAFLOW_H
