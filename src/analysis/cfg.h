/**
 * @file
 * Binary-level control-flow-graph reconstruction for MiniPOWER
 * programs.  The analyzer consumes the same artifact the simulator
 * loads — an assembled Program image — decodes it with the isa layer,
 * and rebuilds basic blocks and edges by recursive traversal from the
 * entry point.  Everything downstream (dataflow, lint, branch
 * classification) runs on this CFG, so the analysis sees exactly the
 * instruction stream the machine will execute, not the compiler's IR.
 */

#ifndef BIOPERF5_ANALYSIS_CFG_H
#define BIOPERF5_ANALYSIS_CFG_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/disasm.h"
#include "isa/inst.h"
#include "masm/assembler.h"

namespace bp5::analysis {

/** A loadable program image viewed as instruction words. */
struct CodeImage
{
    uint64_t base = 0;
    uint64_t entry = 0;
    std::vector<uint8_t> bytes;
    std::unordered_map<std::string, uint64_t> symbols;

    /** Wrap an assembled program; @p entry_addr 0 means the base. */
    static CodeImage fromProgram(const masm::Program &prog,
                                 uint64_t entry_addr = 0);

    uint64_t end() const { return base + bytes.size(); }
    bool contains(uint64_t pc) const { return pc >= base && pc + 4 <= end(); }

    /** Little-endian instruction word at @p pc (must be contained). */
    uint32_t word(uint64_t pc) const;

    /** Label defined at @p addr, or "" if none. */
    std::string labelAt(uint64_t addr) const;

    /** Symbol resolver for the disassembler. */
    isa::SymbolResolver resolver() const;
};

/** One decoded instruction with its address. */
struct CfgInst
{
    uint64_t pc = 0;
    isa::Inst inst;
};

/** A basic block of the reconstructed CFG. */
struct BasicBlock
{
    int id = -1;
    uint64_t start = 0;
    std::vector<CfgInst> insts;
    std::vector<int> succs;
    std::vector<int> preds;

    bool indirectSucc = false; ///< ends in bcctr (statically unknown)
    bool isReturn = false;     ///< ends in blr
    bool isExit = false;       ///< ends in a proven exit syscall

    uint64_t endPc() const { return start + 4 * insts.size(); }
    const CfgInst &last() const { return insts.back(); }
};

/** Anomalies found while reconstructing the CFG (lint turns these
 *  into diagnostics with context). */
struct CfgIssue
{
    enum Kind
    {
        InvalidInstruction,  ///< reachable word does not decode
        BranchTargetOutside, ///< branch target not in the image
        BranchTargetUnaligned,
        FallOffEnd,          ///< fall-through past the last image byte
        MaybeFallOffEnd,     ///< sc with unprovable selector at the end
    };

    Kind kind;
    uint64_t pc = 0;     ///< offending instruction
    uint64_t target = 0; ///< branch target / fall-through address
    uint64_t from = 0;   ///< discovering predecessor (InvalidInstruction)
};

/** The reconstructed control-flow graph. */
struct Cfg
{
    CodeImage image;
    std::vector<BasicBlock> blocks; ///< sorted by start address
    int entryBlock = -1;            ///< -1 when the entry is undecodable
    std::vector<CfgIssue> issues;

    /** Block whose range contains @p pc, or nullptr. */
    const BasicBlock *blockAt(uint64_t pc) const;

    /** Addresses of reachable instructions, ascending. */
    std::vector<uint64_t> reachablePcs() const;

    /**
     * Maximal runs of addresses that decode to valid instructions but
     * are unreachable from the entry, as (start, instruction count)
     * pairs.  Data regions that happen to decode are indistinguishable
     * from dead code, so lint reports these as warnings.
     */
    std::vector<std::pair<uint64_t, unsigned>> unreachableRuns() const;

    /** Number of instructions across all (reachable) blocks. */
    size_t numInsts() const;

    /** Human-readable listing with block boundaries and edges. */
    std::string dump() const;
};

/**
 * Reconstruct the CFG of @p image by traversal from its entry point.
 * Never fails: decode and flow anomalies are recorded as issues and
 * the affected paths are truncated.
 */
Cfg buildCfg(const CodeImage &image);

/**
 * The exit-syscall heuristic used by the traversal, exposed for the
 * lint layer: an `sc` halts when a dominating `li r0, 0` a few
 * instructions back selects SYS_EXIT.  @return 0 = proven exit,
 * 1 = proven service call (falls through), -1 = unknown selector.
 */
int classifySyscall(const CodeImage &image, uint64_t sc_pc);

} // namespace bp5::analysis

#endif // BIOPERF5_ANALYSIS_CFG_H
