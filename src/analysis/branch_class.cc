#include "analysis/branch_class.h"

#include <algorithm>
#include <numeric>

#include "support/logging.h"

namespace bp5::analysis {

using isa::Inst;
using isa::Op;

const char *
branchClassName(BranchClass c)
{
    switch (c) {
    case BranchClass::LoopBack: return "loop-back";
    case BranchClass::DataDep: return "data-dep";
    case BranchClass::Guard: return "guard";
    case BranchClass::Goto: return "goto";
    case BranchClass::Call: return "call";
    case BranchClass::Return: return "return";
    case BranchClass::Indirect: return "indirect";
    }
    return "?";
}

namespace {

bool
hasSucc(const BasicBlock &b, int id)
{
    return std::find(b.succs.begin(), b.succs.end(), id) != b.succs.end();
}

/**
 * Hammock test for a forward conditional branch ending block @p b with
 * taken-successor @p t and fall-through @p f:
 *
 *  - if-then: the fall-through side runs straight into the taken
 *    target (succs(f) == {t}), or symmetrically the taken side runs
 *    into the fall-through's successor;
 *  - if-then-else: both sides are straight-line and rejoin at a common
 *    block.
 *
 * Side blocks must be small (opts.maxHammockInsts) and single-exit.
 */
bool
isHammock(const Cfg &cfg, int t, int f, const ClassifyOptions &opts)
{
    auto side_ok = [&](int id) {
        const BasicBlock &s = cfg.blocks[id];
        return s.succs.size() == 1 &&
               s.insts.size() <= opts.maxHammockInsts;
    };

    // if-then: branch skips the fall-through side.
    if (side_ok(f) && hasSucc(cfg.blocks[f], t))
        return true;
    // inverted if-then: branch takes the side, which rejoins below.
    if (side_ok(t) && hasSucc(cfg.blocks[t], f))
        return true;
    // if-then-else: both sides rejoin at one block.
    if (side_ok(t) && side_ok(f) &&
        cfg.blocks[t].succs[0] == cfg.blocks[f].succs[0])
        return true;
    return false;
}

/** Describe the instruction that defines CR field used by @p branch. */
std::string
compareDetail(const Cfg &cfg, const ReachingDefs &rd, const CfgInst &branch,
              const isa::SymbolResolver &sym)
{
    unsigned crf = branch.inst.bi / 4;
    auto defs = rd.reachingAt(branch.pc, isa::depCrField(crf));
    if (defs.size() != 1 || defs[0].block < 0)
        return "";
    const CfgInst &def = cfg.blocks[defs[0].block].insts[defs[0].idx];
    std::string text = strprintf("cr set at 0x%llx: %s",
                                 (unsigned long long)def.pc,
                                 isa::disassemble(def.inst, def.pc, sym).c_str());
    // Note when a compare operand comes straight from memory — the
    // signature of a data-dependent DP-cell comparison.
    const isa::OpInfo &info = def.inst.info();
    {
        std::vector<unsigned> operands;
        if (info.readsRA)
            operands.push_back(def.inst.ra);
        if (info.readsRB)
            operands.push_back(def.inst.rb);
        for (unsigned reg : operands) {
            auto operand_defs = rd.reachingAt(def.pc, reg);
            bool from_load =
                !operand_defs.empty() &&
                std::all_of(operand_defs.begin(), operand_defs.end(),
                            [&](const DefSite &s) {
                                return s.block >= 0 &&
                                       cfg.blocks[s.block]
                                           .insts[s.idx]
                                           .inst.info()
                                           .isLoad;
                            });
            if (from_load) {
                text += strprintf(" (%s loaded from memory)",
                                  depRegName(reg).c_str());
                break;
            }
        }
    }
    return text;
}

} // namespace

std::vector<BranchSite>
classifyBranches(const Cfg &cfg, const ClassifyOptions &opts)
{
    std::vector<BranchSite> sites;
    isa::SymbolResolver sym = cfg.image.resolver();
    ReachingDefs rd(cfg, abiEntryDefined());

    for (const BasicBlock &b : cfg.blocks) {
        for (const CfgInst &ci : b.insts) {
            const isa::OpInfo &info = ci.inst.info();
            if (!info.isBranch)
                continue;

            BranchSite site;
            site.pc = ci.pc;
            site.disasm = isa::disassemble(ci.inst, ci.pc, sym);

            if (ci.inst.op == Op::BCLR) {
                site.klass = BranchClass::Return;
                site.conditional = ci.inst.bo != isa::BO_ALWAYS;
            } else if (ci.inst.op == Op::BCCTR) {
                site.klass = BranchClass::Indirect;
                site.conditional = ci.inst.bo != isa::BO_ALWAYS;
            } else if (ci.inst.op == Op::B || ci.inst.lk ||
                       ci.inst.bo == isa::BO_ALWAYS) {
                site.klass =
                    ci.inst.lk ? BranchClass::Call : BranchClass::Goto;
            } else {
                site.conditional = true;
                uint64_t target = ci.inst.aa
                                      ? static_cast<uint64_t>(ci.inst.imm)
                                      : ci.pc + static_cast<int64_t>(ci.inst.imm);
                bool ctr_loop = ci.inst.bo == isa::BO_DNZ ||
                                ci.inst.bo == isa::BO_DZ;
                if (ctr_loop || target <= ci.pc) {
                    site.klass = BranchClass::LoopBack;
                } else {
                    // Forward conditional: hammock => data-dependent.
                    site.klass = BranchClass::Guard;
                    if (&ci == &b.last() && b.succs.size() == 2) {
                        const BasicBlock *tb = cfg.blockAt(target);
                        const BasicBlock *fb = cfg.blockAt(ci.pc + 4);
                        if (tb && fb && tb != fb &&
                            isHammock(cfg, tb->id, fb->id, opts))
                            site.klass = BranchClass::DataDep;
                    }
                    site.detail = compareDetail(cfg, rd, ci, sym);
                }
            }
            sites.push_back(std::move(site));
        }
    }
    std::sort(sites.begin(), sites.end(),
              [](const BranchSite &a, const BranchSite &b) {
                  return a.pc < b.pc;
              });
    return sites;
}

std::vector<ClassProfile>
joinProfile(const std::vector<BranchSite> &sites,
            const sim::BranchProfile &profile)
{
    constexpr BranchClass kOrder[] = {
        BranchClass::LoopBack, BranchClass::DataDep,  BranchClass::Guard,
        BranchClass::Goto,     BranchClass::Call,     BranchClass::Return,
        BranchClass::Indirect,
    };
    std::vector<ClassProfile> classes;
    for (BranchClass c : kOrder) {
        ClassProfile cp;
        cp.klass = c;
        for (const BranchSite &s : sites) {
            if (s.klass != c)
                continue;
            ++cp.sites;
            auto it = profile.find(s.pc);
            if (it != profile.end() && it->second.executions) {
                ++cp.sitesExecuted;
                cp.dynamic.add(it->second);
            }
        }
        if (cp.sites)
            classes.push_back(cp);
    }
    return classes;
}

std::vector<support::ResultRow>
classProfileRows(const std::vector<ClassProfile> &classes)
{
    uint64_t total_exec = 0, total_mp = 0;
    for (const ClassProfile &c : classes) {
        total_exec += c.dynamic.executions;
        total_mp += c.dynamic.mispredicts();
    }

    std::vector<support::ResultRow> rows;
    for (const ClassProfile &c : classes) {
        support::ResultRow row;
        row.set("class", branchClassName(c.klass));
        row.set("sites", c.sites);
        row.set("executed_sites", c.sitesExecuted);
        row.set("executions", c.dynamic.executions);
        row.set("taken", c.dynamic.taken);
        row.set("mispredicts", c.dynamic.mispredicts());
        row.setPct("mispredict_rate",
                   c.dynamic.executions
                       ? double(c.dynamic.mispredicts()) /
                             double(c.dynamic.executions)
                       : 0.0);
        row.setPct("share_of_mispredicts",
                   total_mp ? double(c.dynamic.mispredicts()) /
                                  double(total_mp)
                            : 0.0);
        rows.push_back(std::move(row));
    }

    support::ResultRow total;
    total.set("class", "total");
    total.set("sites",
              std::accumulate(classes.begin(), classes.end(), 0u,
                              [](unsigned a, const ClassProfile &c) {
                                  return a + c.sites;
                              }));
    total.set("executed_sites",
              std::accumulate(classes.begin(), classes.end(), 0u,
                              [](unsigned a, const ClassProfile &c) {
                                  return a + c.sitesExecuted;
                              }));
    total.set("executions", total_exec);
    total.set("taken",
              std::accumulate(classes.begin(), classes.end(), uint64_t{0},
                              [](uint64_t a, const ClassProfile &c) {
                                  return a + c.dynamic.taken;
                              }));
    total.set("mispredicts", total_mp);
    total.setPct("mispredict_rate",
                 total_exec ? double(total_mp) / double(total_exec) : 0.0);
    total.setPct("share_of_mispredicts", total_mp ? 1.0 : 0.0);
    rows.push_back(std::move(total));
    return rows;
}

std::vector<support::ResultRow>
siteProfileRows(const std::vector<BranchSite> &sites,
                const sim::BranchProfile &profile, unsigned top_n)
{
    struct Joined
    {
        const BranchSite *site;
        sim::BranchSiteStats stats;
    };
    std::vector<Joined> joined;
    for (const BranchSite &s : sites) {
        auto it = profile.find(s.pc);
        if (it != profile.end() && it->second.executions)
            joined.push_back({&s, it->second});
    }
    std::stable_sort(joined.begin(), joined.end(),
                     [](const Joined &a, const Joined &b) {
                         return a.stats.mispredicts() > b.stats.mispredicts();
                     });
    if (joined.size() > top_n)
        joined.resize(top_n);

    std::vector<support::ResultRow> rows;
    for (const Joined &j : joined) {
        support::ResultRow row;
        row.set("pc", strprintf("0x%llx", (unsigned long long)j.site->pc));
        row.set("class", branchClassName(j.site->klass));
        row.set("disasm", j.site->disasm);
        row.set("executions", j.stats.executions);
        row.setPct("taken_rate", j.stats.executions
                                     ? double(j.stats.taken) /
                                           double(j.stats.executions)
                                     : 0.0);
        row.set("mispredicts", j.stats.mispredicts());
        row.setPct("mispredict_rate",
                   j.stats.executions
                       ? double(j.stats.mispredicts()) /
                             double(j.stats.executions)
                       : 0.0);
        if (!j.site->detail.empty())
            row.set("detail", j.site->detail);
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace bp5::analysis
