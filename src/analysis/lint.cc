#include "analysis/lint.h"

#include <algorithm>

#include "analysis/loops.h"
#include "isa/encode.h"
#include "support/logging.h"

namespace bp5::analysis {

using isa::Inst;
using isa::Op;

const char *
lintCodeName(LintCode code)
{
    switch (code) {
    case LintCode::InvalidInstruction: return "invalid-instruction";
    case LintCode::BranchToNonCode: return "branch-to-non-code";
    case LintCode::BranchTargetUnaligned: return "branch-target-unaligned";
    case LintCode::FallOffEnd: return "fall-off-end";
    case LintCode::MaybeFallOffEnd: return "maybe-fall-off-end";
    case LintCode::UndefinedRegisterRead: return "undefined-register-read";
    case LintCode::UninitializedStoreBase: return "uninitialized-store-base";
    case LintCode::UnreachableCode: return "unreachable-code";
    case LintCode::DeadDefinition: return "dead-definition";
    case LintCode::OutOfBoundsAccess: return "out-of-bounds-access";
    case LintCode::MisalignedAccess: return "misaligned-access";
    case LintCode::UnprovenAccess: return "unproven-access";
    case LintCode::InfiniteLoop: return "infinite-loop";
    }
    return "?";
}

unsigned
LintReport::errors() const
{
    return static_cast<unsigned>(
        std::count_if(diags.begin(), diags.end(), [](const Diagnostic &d) {
            return d.severity == Severity::Error;
        }));
}

unsigned
LintReport::warnings() const
{
    return static_cast<unsigned>(diags.size()) - errors();
}

std::string
LintReport::toText(const std::string &name) const
{
    std::string out;
    for (const Diagnostic &d : diags) {
        if (!name.empty())
            out += name + ": ";
        out += strprintf("%s: 0x%llx: [%s] %s",
                         d.severity == Severity::Error ? "error" : "warning",
                         (unsigned long long)d.pc, lintCodeName(d.code),
                         d.message.c_str());
        if (!d.disasm.empty())
            out += strprintf("\n    > %s", d.disasm.c_str());
        out += "\n";
    }
    return out;
}

std::vector<support::ResultRow>
LintReport::toRows(const std::string &name) const
{
    std::vector<support::ResultRow> rows;
    for (const Diagnostic &d : diags) {
        support::ResultRow row;
        if (!name.empty())
            row.set("program", name);
        row.set("severity",
                d.severity == Severity::Error ? "error" : "warning");
        row.set("code", lintCodeName(d.code));
        row.set("pc", strprintf("0x%llx", (unsigned long long)d.pc));
        row.set("disasm", d.disasm);
        row.set("message", d.message);
        rows.push_back(std::move(row));
    }
    return rows;
}

namespace {

/** Disassembly of the instruction at @p pc, or "" when undecodable. */
std::string
disasmAt(const Cfg &cfg, uint64_t pc, const isa::SymbolResolver &sym)
{
    if (!cfg.image.contains(pc))
        return "";
    Inst inst = isa::decode(cfg.image.word(pc));
    if (!inst.valid())
        return strprintf(".word 0x%08x", cfg.image.word(pc));
    return isa::disassemble(inst, pc, sym);
}

void
lintCfgIssues(const Cfg &cfg, const isa::SymbolResolver &sym,
              LintReport &report)
{
    for (const CfgIssue &issue : cfg.issues) {
        Diagnostic d;
        d.pc = issue.pc;
        d.aux = issue.target;
        d.disasm = disasmAt(cfg, issue.pc, sym);
        switch (issue.kind) {
        case CfgIssue::InvalidInstruction:
            d.code = LintCode::InvalidInstruction;
            d.severity = Severity::Error;
            d.message = strprintf(
                "reachable address does not decode (word 0x%08x, reached "
                "from 0x%llx)",
                cfg.image.contains(issue.pc) ? cfg.image.word(issue.pc) : 0u,
                (unsigned long long)issue.from);
            break;
        case CfgIssue::BranchTargetOutside:
            d.code = LintCode::BranchToNonCode;
            d.severity = Severity::Error;
            d.message = strprintf(
                "branch target 0x%llx is outside the code image "
                "[0x%llx, 0x%llx)",
                (unsigned long long)issue.target,
                (unsigned long long)cfg.image.base,
                (unsigned long long)cfg.image.end());
            break;
        case CfgIssue::BranchTargetUnaligned:
            d.code = LintCode::BranchTargetUnaligned;
            d.severity = Severity::Error;
            d.message =
                strprintf("branch target 0x%llx is not 4-byte aligned",
                          (unsigned long long)issue.target);
            break;
        case CfgIssue::FallOffEnd:
            d.code = LintCode::FallOffEnd;
            d.severity = Severity::Error;
            d.message = "control flow falls off the end of the code image";
            break;
        case CfgIssue::MaybeFallOffEnd:
            d.code = LintCode::MaybeFallOffEnd;
            d.severity = Severity::Warning;
            d.message = "last sc has an unprovable selector; control may "
                        "fall off the end of the code image";
            break;
        }
        report.diags.push_back(std::move(d));
    }
}

void
lintUndefinedReads(const Cfg &cfg, const LintOptions &opts,
                   const isa::SymbolResolver &sym, LintReport &report)
{
    BlockSets defined = possiblyDefined(cfg, opts.entryDefined);
    for (const BasicBlock &b : cfg.blocks) {
        RegSet cur = defined.in[b.id];
        for (const CfgInst &ci : b.insts) {
            DefUse du = defUse(ci.inst);
            RegSet undef = du.uses & ~cur;
            // A store whose *base* is undefined gets the more specific
            // diagnostic; other undefined operands still report below.
            const isa::OpInfo &info = ci.inst.info();
            if (info.isStore && (undef & regBit(ci.inst.ra)) &&
                info.readsRA && !(isa::raIsBase(ci.inst.op) && ci.inst.ra == 0)) {
                Diagnostic d;
                d.code = LintCode::UninitializedStoreBase;
                d.severity = Severity::Error;
                d.pc = ci.pc;
                d.disasm = isa::disassemble(ci.inst, ci.pc, sym);
                d.message = strprintf(
                    "store addresses through %s, which no path defines",
                    depRegName(ci.inst.ra).c_str());
                report.diags.push_back(std::move(d));
                undef &= ~regBit(ci.inst.ra);
            }
            if (undef) {
                Diagnostic d;
                d.code = LintCode::UndefinedRegisterRead;
                d.severity = Severity::Error;
                d.pc = ci.pc;
                d.disasm = isa::disassemble(ci.inst, ci.pc, sym);
                d.message = strprintf("reads %s, which no path defines",
                                      regSetNames(undef).c_str());
                report.diags.push_back(std::move(d));
            }
            cur |= du.defs;
        }
    }
}

void
lintUnreachable(const Cfg &cfg, LintReport &report)
{
    for (auto [start, len] : cfg.unreachableRuns()) {
        Diagnostic d;
        d.code = LintCode::UnreachableCode;
        d.severity = Severity::Warning;
        d.pc = start;
        d.aux = len;
        d.message = strprintf(
            "%u decodable instruction%s unreachable from the entry "
            "(dead code or data)",
            len, len == 1 ? "" : "s");
        report.diags.push_back(std::move(d));
    }
}

void
lintDeadDefs(const Cfg &cfg, const isa::SymbolResolver &sym,
             LintReport &report)
{
    BlockSets live = liveness(cfg);
    for (const BasicBlock &b : cfg.blocks) {
        // Walk backwards tracking per-instruction liveness.
        std::vector<RegSet> live_after(b.insts.size(), 0);
        RegSet cur = live.out[b.id];
        for (size_t i = b.insts.size(); i-- > 0;) {
            live_after[i] = cur;
            DefUse du = defUse(b.insts[i].inst);
            cur = (cur & ~du.defs) | du.uses;
        }
        for (size_t i = 0; i < b.insts.size(); ++i) {
            const CfgInst &ci = b.insts[i];
            DefUse du = defUse(ci.inst);
            // Only plain GPR results; CR/LR/CTR and r0 scratch are
            // routinely written without a consumer.
            RegSet gprs = du.defs & ((RegSet{1} << isa::kNumGprs) - 1) &
                          ~regBit(0);
            RegSet dead = gprs & ~live_after[i];
            if (!dead || ci.inst.info().isLoad)
                continue;
            Diagnostic d;
            d.code = LintCode::DeadDefinition;
            d.severity = Severity::Warning;
            d.pc = ci.pc;
            d.disasm = isa::disassemble(ci.inst, ci.pc, sym);
            d.message =
                strprintf("defines %s but the value is never read",
                          regSetNames(dead).c_str());
            report.diags.push_back(std::move(d));
        }
    }
}

void
lintMemoryAccesses(const Cfg &cfg, const LintOptions &opts,
                   const isa::SymbolResolver &sym, LintReport &report)
{
    ValueAnalysis va = analyzeValues(cfg, opts.entryDefined, opts.regions);
    for (const MemAccess &a : va.accesses) {
        if (a.ea.prov == Prov::Bottom)
            continue; // already an undefined-register-read error
        const char *what = a.isStore ? "store" : "load";
        if (a.cls == MemClass::OutOfBounds) {
            Diagnostic d;
            d.code = LintCode::OutOfBoundsAccess;
            d.severity = Severity::Error;
            d.pc = a.pc;
            d.disasm = disasmAt(cfg, a.pc, sym);
            d.message = strprintf(
                "%s of %u bytes at constant address %s hits unmapped "
                "memory (null page)",
                what, a.size, a.ea.range.str().c_str());
            report.diags.push_back(std::move(d));
        }
        if (a.misaligned) {
            Diagnostic d;
            d.code = LintCode::MisalignedAccess;
            d.severity = Severity::Error;
            d.pc = a.pc;
            d.disasm = disasmAt(cfg, a.pc, sym);
            d.message = strprintf(
                "%u-byte %s at proven address 0x%llx breaks natural "
                "alignment",
                a.size, what,
                (unsigned long long)static_cast<uint64_t>(a.ea.range.lo));
            report.diags.push_back(std::move(d));
        }
        if (opts.pedantic && a.cls == MemClass::Unknown && !a.misaligned) {
            Diagnostic d;
            d.code = LintCode::UnprovenAccess;
            d.severity = Severity::Warning;
            d.pc = a.pc;
            d.disasm = disasmAt(cfg, a.pc, sym);
            d.message = strprintf(
                "cannot prove the %s address (%s) maps to valid memory",
                what, a.ea.str().c_str());
            report.diags.push_back(std::move(d));
        }
    }
}

void
lintInfiniteLoops(const Cfg &cfg, const isa::SymbolResolver &sym,
                  LintReport &report)
{
    BinLoopForest forest = findCfgLoops(cfg);
    for (const BinLoop &l : forest.loops) {
        if (!l.infinite())
            continue;
        const BasicBlock &h = cfg.blocks[static_cast<size_t>(l.header)];
        Diagnostic d;
        d.code = LintCode::InfiniteLoop;
        d.severity = Severity::Warning;
        d.pc = h.start;
        d.disasm = disasmAt(cfg, h.start, sym);
        d.aux = l.blocks.size();
        d.message = strprintf(
            "loop over %zu block%s has no exit edge: statically infinite",
            l.blocks.size(), l.blocks.size() == 1 ? "" : "s");
        report.diags.push_back(std::move(d));
    }
}

} // namespace

LintReport
lint(const Cfg &cfg, const LintOptions &opts)
{
    LintReport report;
    isa::SymbolResolver sym = cfg.image.resolver();

    lintCfgIssues(cfg, sym, report);
    lintUndefinedReads(cfg, opts, sym, report);
    lintUnreachable(cfg, report);
    lintMemoryAccesses(cfg, opts, sym, report);
    if (opts.pedantic) {
        lintDeadDefs(cfg, sym, report);
        lintInfiniteLoops(cfg, sym, report);
    }

    // Deterministic order: by address, errors before warnings.
    std::stable_sort(report.diags.begin(), report.diags.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.pc != b.pc)
                             return a.pc < b.pc;
                         return a.severity < b.severity;
                     });
    return report;
}

LintReport
lintProgram(const masm::Program &prog, const LintOptions &opts)
{
    Cfg cfg = buildCfg(CodeImage::fromProgram(prog));
    return lint(cfg, opts);
}

} // namespace bp5::analysis
