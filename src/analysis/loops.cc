#include "analysis/loops.h"

#include <algorithm>
#include <set>

#include "analysis/dataflow.h"
#include "support/logging.h"

namespace bp5::analysis {

using isa::Inst;
using isa::Op;

bool
BinLoop::contains(int blk) const
{
    return std::binary_search(blocks.begin(), blocks.end(), blk);
}

namespace {

std::vector<int>
reversePostorder(const Cfg &cfg)
{
    std::vector<int> order;
    if (cfg.entryBlock < 0)
        return order;
    std::vector<uint8_t> state(cfg.blocks.size(), 0); // 0 new 1 open 2 done
    std::vector<std::pair<int, size_t>> stack{{cfg.entryBlock, 0}};
    state[static_cast<size_t>(cfg.entryBlock)] = 1;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        const auto &succs = cfg.blocks[static_cast<size_t>(b)].succs;
        if (next < succs.size()) {
            int s = succs[next++];
            if (!state[static_cast<size_t>(s)]) {
                state[static_cast<size_t>(s)] = 1;
                stack.push_back({s, 0});
            }
        } else {
            state[static_cast<size_t>(b)] = 2;
            order.push_back(b);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

bool
dominates(const std::vector<int> &idom, int a, int b)
{
    while (b != -1) {
        if (b == a)
            return true;
        if (idom[static_cast<size_t>(b)] == b)
            return a == b;
        b = idom[static_cast<size_t>(b)];
    }
    return false;
}

/** Walk backwards from instruction @p from in @p blk for a `li rk,
 *  imm` defining @p reg with no intervening redefinition.
 *  @return true and sets @p value on success. */
bool
constDefBefore(const BasicBlock &blk, size_t from, unsigned reg,
               int64_t &value)
{
    for (size_t i = from; i-- > 0;) {
        const Inst &inst = blk.insts[i].inst;
        unsigned dsts[isa::kMaxDeps];
        unsigned n = isa::dstDeps(inst, dsts);
        bool defines = false;
        for (unsigned k = 0; k < n; ++k)
            defines = defines || dsts[k] == reg;
        if (!defines)
            continue;
        if (inst.op == Op::ADDI && inst.ra == 0 && inst.rt == reg) {
            value = inst.imm;
            return true;
        }
        return false;
    }
    return false;
}

uint64_t
takenTarget(const Inst &bc, uint64_t pc)
{
    return bc.aa ? static_cast<uint64_t>(bc.imm)
                 : pc + static_cast<int64_t>(bc.imm);
}

int64_t
floorDiv(int64_t num, int64_t den)
{
    int64_t q = num / den;
    if ((num % den != 0) && ((num < 0) != (den < 0)))
        --q;
    return q;
}

/** The latch's continue predicate, normalized to `iv REL bound` where
 *  REL in {LT, LE, GT, GE}. */
enum class Rel { LT, LE, GT, GE, None };

Rel
negated(Rel r)
{
    switch (r) {
    case Rel::LT: return Rel::GE;
    case Rel::LE: return Rel::GT;
    case Rel::GT: return Rel::LE;
    case Rel::GE: return Rel::LT;
    case Rel::None: return Rel::None;
    }
    return Rel::None;
}

/**
 * Recover (ivReg, step, bound, init, tripCount) for a GPR-IV counted
 * loop whose latch ends in `cmpi; bc`.
 */
void
analyzeGprCounted(const Cfg &cfg, const ReachingDefs &rd, BinLoop &loop)
{
    const BasicBlock &latch = cfg.blocks[static_cast<size_t>(loop.latches[0])];
    const Inst &bc = latch.last().inst;
    if (bc.op != Op::BC ||
        (bc.bo != isa::BO_COND_TRUE && bc.bo != isa::BO_COND_FALSE))
        return;

    // Which way does control continue?
    uint64_t taken = takenTarget(bc, latch.last().pc);
    const BasicBlock *header = &cfg.blocks[static_cast<size_t>(loop.header)];
    bool takenContinues = taken == header->start;

    unsigned crf = bc.bi / 4;
    unsigned bit = bc.bi % 4;
    Rel rel;
    if (bit == isa::CR_LT)
        rel = Rel::LT;
    else if (bit == isa::CR_GT)
        rel = Rel::GT;
    else
        return; // EQ-controlled loops are not counted shapes
    if (bc.bo == isa::BO_COND_FALSE)
        rel = negated(rel);
    if (!takenContinues)
        rel = negated(rel);

    // The compare writing that CR field must be the last such write in
    // the latch, and must be a cmpi against an immediate.
    int cmpIdx = -1;
    for (size_t i = latch.insts.size() - 1; i-- > 0;) {
        const Inst &inst = latch.insts[i].inst;
        unsigned dsts[isa::kMaxDeps];
        unsigned n = isa::dstDeps(inst, dsts);
        bool writesCrf = false;
        for (unsigned k = 0; k < n; ++k)
            writesCrf = writesCrf || dsts[k] == isa::depCrField(crf);
        if (writesCrf) {
            cmpIdx = static_cast<int>(i);
            break;
        }
    }
    if (cmpIdx < 0 || latch.insts[static_cast<size_t>(cmpIdx)].inst.op !=
                          Op::CMPI)
        return;
    const Inst &cmp = latch.insts[static_cast<size_t>(cmpIdx)].inst;
    if (!cmp.l64)
        return;
    unsigned iv = cmp.ra;
    int64_t bound = cmp.imm;

    // Exactly one definition of the IV inside the loop: addi iv,iv,step.
    const CfgInst *step_inst = nullptr;
    for (int b : loop.blocks) {
        for (const CfgInst &ci : cfg.blocks[static_cast<size_t>(b)].insts) {
            unsigned dsts[isa::kMaxDeps];
            unsigned n = isa::dstDeps(ci.inst, dsts);
            for (unsigned k = 0; k < n; ++k) {
                if (dsts[k] != iv)
                    continue;
                if (step_inst)
                    return; // several defs: not a simple IV
                step_inst = &ci;
            }
        }
    }
    if (!step_inst || step_inst->inst.op != Op::ADDI ||
        step_inst->inst.ra != iv || step_inst->inst.imm == 0)
        return;
    int64_t step = step_inst->inst.imm;

    // Direction must agree with the continue predicate or the bound
    // check never terminates the loop (that is findCfgLoops' infinite
    // check's job, not a counted shape).
    if (step > 0 && rel != Rel::LT && rel != Rel::LE)
        return;
    if (step < 0 && rel != Rel::GT && rel != Rel::GE)
        return;

    loop.counted = true;
    loop.ivReg = iv;
    loop.step = step;
    loop.bound = bound;

    // Exact trip count needs the bottom-tested shape: the increment
    // lives in the latch before the compare, and the latch is the only
    // exit (so the body runs at least once and exactly once per test).
    bool stepInLatch = false;
    for (size_t i = 0; i < static_cast<size_t>(cmpIdx); ++i)
        stepInLatch = stepInLatch || &latch.insts[i] == step_inst;
    bool latchOnlyExit = true;
    for (auto [from, to] : loop.exits)
        latchOnlyExit = latchOnlyExit && from == loop.latches[0];
    if (!stepInLatch || !latchOnlyExit || loop.exits.empty())
        return;

    // Initial value: every def of iv reaching the header from outside
    // the loop must be the same li.
    bool haveInit = false;
    int64_t init = 0;
    for (const DefSite &site : rd.reaching(loop.header, 0, iv)) {
        if (site.block == -1)
            return; // may enter as an ABI argument: unknown
        if (loop.contains(site.block))
            continue; // the increment itself
        const BasicBlock &db = cfg.blocks[static_cast<size_t>(site.block)];
        const Inst &def = db.insts[site.idx].inst;
        if (def.op != Op::ADDI || def.ra != 0)
            return;
        if (haveInit && init != def.imm)
            return;
        haveInit = true;
        init = def.imm;
    }
    if (!haveInit)
        return;
    loop.init = init;

    int64_t num, span;
    if (step > 0) {
        span = bound - init;
        num = rel == Rel::LE ? span : span - 1;
    } else {
        span = init - bound;
        num = rel == Rel::GE ? span : span - 1;
        step = -step;
    }
    loop.tripCount = num < 0 ? 1 : floorDiv(num, step) + 1;
}

/** Recover the trip count of a `mtctr; ...; bdnz` loop. */
void
analyzeCtrCounted(const Cfg &cfg, const ReachingDefs &rd, BinLoop &loop)
{
    const BasicBlock &latch = cfg.blocks[static_cast<size_t>(loop.latches[0])];
    const Inst &bc = latch.last().inst;
    uint64_t taken = takenTarget(bc, latch.last().pc);
    if (bc.op != Op::BC || bc.bo != isa::BO_DNZ ||
        taken != cfg.blocks[static_cast<size_t>(loop.header)].start)
        return;

    // Only the latch may touch CTR inside the loop.
    for (int b : loop.blocks) {
        const BasicBlock &blk = cfg.blocks[static_cast<size_t>(b)];
        for (const CfgInst &ci : blk.insts) {
            if (&ci == &latch.last())
                continue;
            unsigned dsts[isa::kMaxDeps];
            unsigned n = isa::dstDeps(ci.inst, dsts);
            for (unsigned k = 0; k < n; ++k) {
                if (dsts[k] == isa::DEP_CTR)
                    return;
            }
        }
    }

    loop.counted = true;
    loop.viaCtr = true;

    // Every CTR def reaching the header from outside must be the same
    // `li rk, n; mtctr rk` with n > 0.
    bool haveInit = false;
    int64_t init = 0;
    for (const DefSite &site : rd.reaching(loop.header, 0, isa::DEP_CTR)) {
        if (site.block == -1)
            return;
        if (loop.contains(site.block))
            continue; // the bdnz decrement
        const BasicBlock &db = cfg.blocks[static_cast<size_t>(site.block)];
        const Inst &def = db.insts[site.idx].inst;
        if (def.op != Op::MTSPR || def.spr != isa::SPR_CTR)
            return;
        int64_t v;
        if (!constDefBefore(db, site.idx, def.rt, v))
            return;
        if (haveInit && init != v)
            return;
        haveInit = true;
        init = v;
    }
    if (!haveInit || init <= 0)
        return; // mtctr 0 wraps to 2^64 iterations; leave unknown
    loop.init = init;
    loop.tripCount = init;
}

} // namespace

std::vector<int>
cfgDominators(const Cfg &cfg)
{
    std::vector<int> idom(cfg.blocks.size(), -1);
    std::vector<int> rpo = reversePostorder(cfg);
    if (rpo.empty())
        return idom;
    std::vector<int> rpoIndex(cfg.blocks.size(), -1);
    for (size_t i = 0; i < rpo.size(); ++i)
        rpoIndex[static_cast<size_t>(rpo[i])] = static_cast<int>(i);

    idom[static_cast<size_t>(cfg.entryBlock)] = cfg.entryBlock;
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : rpo) {
            if (b == cfg.entryBlock)
                continue;
            int newIdom = -1;
            for (int p : cfg.blocks[static_cast<size_t>(b)].preds) {
                if (idom[static_cast<size_t>(p)] == -1)
                    continue;
                if (newIdom == -1) {
                    newIdom = p;
                    continue;
                }
                // Intersect along idom chains by RPO index.
                int f1 = p, f2 = newIdom;
                while (f1 != f2) {
                    while (rpoIndex[static_cast<size_t>(f1)] >
                           rpoIndex[static_cast<size_t>(f2)])
                        f1 = idom[static_cast<size_t>(f1)];
                    while (rpoIndex[static_cast<size_t>(f2)] >
                           rpoIndex[static_cast<size_t>(f1)])
                        f2 = idom[static_cast<size_t>(f2)];
                }
                newIdom = f1;
            }
            if (newIdom != -1 && idom[static_cast<size_t>(b)] != newIdom) {
                idom[static_cast<size_t>(b)] = newIdom;
                changed = true;
            }
        }
    }
    return idom;
}

BinLoopForest
findCfgLoops(const Cfg &cfg)
{
    BinLoopForest forest;
    if (cfg.entryBlock < 0)
        return forest;
    std::vector<int> idom = cfgDominators(cfg);

    // Back edges b -> h where h dominates b; group latches per header.
    std::vector<std::vector<int>> latchesOf(cfg.blocks.size());
    for (const BasicBlock &b : cfg.blocks) {
        for (int s : b.succs) {
            if (idom[static_cast<size_t>(b.id)] != -1 &&
                dominates(idom, s, b.id))
                latchesOf[static_cast<size_t>(s)].push_back(b.id);
        }
    }

    for (const BasicBlock &h : cfg.blocks) {
        const auto &latches = latchesOf[static_cast<size_t>(h.id)];
        if (latches.empty())
            continue;
        BinLoop loop;
        loop.header = h.id;
        loop.latches = latches;

        // Natural-loop body: everything reaching a latch without
        // passing through the header.
        std::set<int> body{h.id};
        std::vector<int> work;
        for (int l : latches) {
            if (body.insert(l).second)
                work.push_back(l);
        }
        while (!work.empty()) {
            int b = work.back();
            work.pop_back();
            for (int p : cfg.blocks[static_cast<size_t>(b)].preds) {
                if (body.insert(p).second)
                    work.push_back(p);
            }
        }
        loop.blocks.assign(body.begin(), body.end());

        for (int b : loop.blocks) {
            for (int s : cfg.blocks[static_cast<size_t>(b)].succs) {
                if (!body.count(s))
                    loop.exits.push_back({b, s});
            }
        }
        std::sort(loop.exits.begin(), loop.exits.end());
        forest.loops.push_back(std::move(loop));
    }

    std::sort(forest.loops.begin(), forest.loops.end(),
              [](const BinLoop &a, const BinLoop &b) {
                  if (a.blocks.size() != b.blocks.size())
                      return a.blocks.size() > b.blocks.size();
                  return a.header < b.header;
              });

    if (!forest.loops.empty()) {
        ReachingDefs rd(cfg, abiEntryDefined());
        for (BinLoop &loop : forest.loops) {
            if (loop.latches.size() != 1)
                continue;
            analyzeCtrCounted(cfg, rd, loop);
            if (!loop.counted)
                analyzeGprCounted(cfg, rd, loop);
        }
    }
    return forest;
}

std::string
BinLoopForest::dump(const Cfg &cfg) const
{
    std::string out;
    for (const BinLoop &l : loops) {
        const BasicBlock &h = cfg.blocks[static_cast<size_t>(l.header)];
        out += strprintf("loop header=0x%llx blocks=%zu exits=%zu",
                         (unsigned long long)h.start, l.blocks.size(),
                         l.exits.size());
        if (l.infinite())
            out += " infinite";
        if (l.counted) {
            if (l.viaCtr)
                out += " ctr-counted";
            else
                out += strprintf(" iv=r%u step=%lld bound=%lld", l.ivReg,
                                 (long long)l.step, (long long)l.bound);
            if (l.tripCount >= 0)
                out += strprintf(" trips=%lld", (long long)l.tripCount);
        }
        out += "\n";
    }
    return out;
}

} // namespace bp5::analysis
