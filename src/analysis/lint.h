/**
 * @file
 * Binary-level lint over a MiniPOWER program: CFG reconstruction plus
 * dataflow feed a set of checks that report *definite* bugs — reads of
 * registers no path ever defines, branches to non-instruction
 * addresses, control flow falling off the end of the image, stores
 * through never-initialized base registers — and structural warnings
 * (unreachable code).  Diagnostics carry the offending address and the
 * disassembly of the instruction so reports stand on their own.
 */

#ifndef BIOPERF5_ANALYSIS_LINT_H
#define BIOPERF5_ANALYSIS_LINT_H

#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "support/result.h"

namespace bp5::analysis {

/** Lint check identifiers (stable strings for JSON output). */
enum class LintCode
{
    InvalidInstruction,     ///< reachable word does not decode
    BranchToNonCode,        ///< branch target outside the image
    BranchTargetUnaligned,  ///< branch target not 4-byte aligned
    FallOffEnd,             ///< control flow runs past the image
    MaybeFallOffEnd,        ///< last sc has an unprovable selector
    UndefinedRegisterRead,  ///< no path defines the register
    UninitializedStoreBase, ///< store addresses through such a register
    UnreachableCode,        ///< decodable but unreachable instructions
    DeadDefinition,         ///< GPR written but never read (pedantic)
    OutOfBoundsAccess,      ///< proven access to unmapped memory
    MisalignedAccess,       ///< proven natural-alignment violation
    UnprovenAccess,         ///< address nothing vouches for (pedantic)
    InfiniteLoop,           ///< loop with no exit edge (pedantic)
};

const char *lintCodeName(LintCode code);

enum class Severity { Error, Warning };

/** One finding. */
struct Diagnostic
{
    LintCode code;
    Severity severity;
    uint64_t pc = 0;      ///< offending instruction address
    std::string disasm;   ///< its disassembly ("" for entry issues)
    std::string message;  ///< human-readable detail
    uint64_t aux = 0;     ///< target address / run length, per code
};

struct LintOptions
{
    /** Registers assumed defined at entry (kernel ABI by default). */
    RegSet entryDefined = abiEntryDefined();

    /** Also report dead GPR definitions, unprovable memory accesses
     *  and statically-infinite loops (noisy on optimized code). */
    bool pedantic = false;

    /** Data regions the program may legitimately access; an address
     *  proven inside one is in-bounds, silencing UnprovenAccess. */
    std::vector<MemRegion> regions;
};

/** Result of linting one program. */
struct LintReport
{
    std::vector<Diagnostic> diags;

    unsigned errors() const;
    unsigned warnings() const;
    bool clean() const { return diags.empty(); }

    /** Multi-line human-readable report ("" when clean). */
    std::string toText(const std::string &name = "") const;

    /** One ResultRow per diagnostic (drives JSON Lines output). */
    std::vector<support::ResultRow>
    toRows(const std::string &name = "") const;
};

/** Run every check over an already-built CFG. */
LintReport lint(const Cfg &cfg, const LintOptions &opts = {});

/** Convenience: build the CFG and lint a program image. */
LintReport lintProgram(const masm::Program &prog,
                       const LintOptions &opts = {});

} // namespace bp5::analysis

#endif // BIOPERF5_ANALYSIS_LINT_H
