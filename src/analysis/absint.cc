#include "analysis/absint.h"

#include <algorithm>
#include <deque>

#include "support/logging.h"

namespace bp5::analysis {

using isa::Inst;
using isa::Op;

const char *
provName(Prov p)
{
    switch (p) {
    case Prov::Bottom: return "bottom";
    case Prov::Const: return "const";
    case Prov::Num: return "num";
    case Prov::Ptr: return "ptr";
    }
    return "?";
}

std::string
AbsVal::str() const
{
    return std::string(provName(prov)) + " " + range.str();
}

const char *
memClassName(MemClass c)
{
    switch (c) {
    case MemClass::InBounds: return "in-bounds";
    case MemClass::OutOfBounds: return "out-of-bounds";
    case MemClass::RegionRel: return "region-rel";
    case MemClass::Unknown: return "unknown";
    }
    return "?";
}

unsigned
memAccessSize(Op op)
{
    switch (op) {
    case Op::LBZ: case Op::LBZX: case Op::STB: case Op::STBX:
        return 1;
    case Op::LHZ: case Op::LHA: case Op::LHZX: case Op::LHAX:
    case Op::STH: case Op::STHX:
        return 2;
    case Op::LWZ: case Op::LWA: case Op::LWZX: case Op::LWAX:
    case Op::STW: case Op::STWX:
        return 4;
    case Op::LD: case Op::LDX: case Op::STD: case Op::STDX:
        return 8;
    default:
        return 0;
    }
}

namespace {

using State = std::array<AbsVal, 32>;

/** Value of GPR @p r, honoring the RA==0-means-zero convention when
 *  @p ra_base is set. */
AbsVal
gprVal(const State &st, unsigned r, bool ra_base)
{
    if (ra_base && r == 0)
        return AbsVal::constant(0);
    return st[r];
}

/** Provenance of a computed (non-copy) combination of inputs.  A
 *  pointer that is multiplied / divided / masked stops being a usable
 *  address, so Ptr demotes to Num through those ops. */
Prov
combineProv(Prov a, Prov b, bool keeps_ptr)
{
    Prov p = std::max(a, b);
    if (!keeps_ptr && p == Prov::Ptr)
        p = Prov::Num;
    return p;
}

/** Abstract transfer of one instruction over @p st. */
void
transfer(const Inst &i, State &st)
{
    const isa::OpInfo &info = i.info();
    auto A = [&] { return gprVal(st, i.ra, isa::raIsBase(i.op)); };
    auto B = [&] { return st[i.rb]; };
    auto set = [&](AbsVal v) { st[i.rt] = v; };

    switch (i.op) {
    case Op::ADDI:
        set({A().prov == Prov::Bottom ? Prov::Bottom : A().prov,
             A().range.addConst(i.imm)});
        break;
    case Op::ADDIS:
        set({A().prov, A().range.addConst(int64_t{i.imm} << 16)});
        break;
    case Op::ORI:
        if (i.imm == 0) {
            set(st[i.ra]); // mr
            break;
        }
        [[fallthrough]];
    case Op::ORIS:
    case Op::XORI: {
        AbsVal a = st[i.ra];
        Prov p = a.prov == Prov::Ptr ? Prov::Num : a.prov;
        if (a.range.isPoint()) {
            uint64_t v = static_cast<uint64_t>(a.range.lo);
            uint64_t u = static_cast<uint64_t>(
                static_cast<uint32_t>(i.imm) & 0xffffu);
            if (i.op == Op::ORIS)
                v |= u << 16;
            else if (i.op == Op::XORI)
                v ^= u;
            else
                v |= u;
            set({p, Interval::point(static_cast<int64_t>(v))});
        } else {
            set({p, Interval::top()});
        }
        break;
    }
    case Op::ANDI_RC: {
        AbsVal a = st[i.ra];
        int64_t mask = static_cast<uint16_t>(i.imm);
        Prov p = a.prov == Prov::Bottom ? Prov::Bottom
                 : a.prov == Prov::Const && a.range.isPoint() ? Prov::Const
                                                              : Prov::Num;
        if (a.range.isPoint())
            set({p, Interval::point(a.range.lo & mask)});
        else
            set({p, Interval::range(0, mask)});
        break;
    }
    case Op::MULLI:
        set({combineProv(st[i.ra].prov, Prov::Const, false),
             st[i.ra].range.mul(Interval::point(i.imm))});
        break;
    case Op::ADD:
        set({combineProv(A().prov, B().prov, true), A().range.add(B().range)});
        break;
    case Op::SUBF: // rt = rb - ra
        set({combineProv(A().prov, B().prov, true), B().range.sub(A().range)});
        break;
    case Op::NEG:
        set({combineProv(st[i.ra].prov, Prov::Const, false),
             st[i.ra].range.neg()});
        break;
    case Op::MULLD:
        set({combineProv(A().prov, B().prov, false),
             A().range.mul(B().range)});
        break;
    case Op::DIVD:
    case Op::DIVDU:
        set({combineProv(A().prov, B().prov, false), Interval::top()});
        break;
    case Op::AND:
    case Op::ANDC:
    case Op::OR:
    case Op::ORC:
    case Op::XOR:
    case Op::NOR:
    case Op::NAND:
    case Op::EQV:
        if (i.op == Op::OR && i.ra == i.rb) {
            set(st[i.ra]); // canonical register move
            break;
        }
        set({combineProv(st[i.ra].prov, st[i.rb].prov, false),
             Interval::top()});
        break;
    case Op::SLDI:
        set({combineProv(st[i.ra].prov, Prov::Const, false),
             st[i.ra].range.shlConst(i.rb)});
        break;
    case Op::SRDI:
    case Op::SRADI:
    case Op::SLD:
    case Op::SRD:
    case Op::SRAD:
        set({combineProv(st[i.ra].prov,
                         info.readsRB ? st[i.rb].prov : Prov::Const, false),
             Interval::top()});
        break;
    case Op::EXTSB:
        set({Prov::Num, Interval::range(-128, 127)});
        break;
    case Op::EXTSH:
        set({Prov::Num, Interval::range(-32768, 32767)});
        break;
    case Op::EXTSW:
        set({Prov::Num, Interval::range(INT32_MIN, INT32_MAX)});
        break;
    case Op::CNTLZD:
        set({Prov::Num, Interval::range(0, 64)});
        break;
    case Op::ISEL:
        set(gprVal(st, i.ra, true).joined(st[i.rb]));
        break;
    case Op::MAXD:
        set({combineProv(st[i.ra].prov, st[i.rb].prov, true),
             st[i.ra].range.maxWith(st[i.rb].range)});
        break;
    case Op::MIND:
        set({combineProv(st[i.ra].prov, st[i.rb].prov, true),
             st[i.ra].range.minWith(st[i.rb].range)});
        break;
    case Op::LBZ: case Op::LBZX:
        set(AbsVal::num(Interval::range(0, 255)));
        break;
    case Op::LHZ: case Op::LHZX:
        set(AbsVal::num(Interval::range(0, 65535)));
        break;
    case Op::LHA: case Op::LHAX:
        set(AbsVal::num(Interval::range(-32768, 32767)));
        break;
    case Op::LWZ: case Op::LWZX:
        set(AbsVal::num(Interval::range(0, 0xffffffffLL)));
        break;
    case Op::LWA: case Op::LWAX:
        set(AbsVal::num(Interval::range(INT32_MIN, INT32_MAX)));
        break;
    case Op::LD: case Op::LDX:
        set(AbsVal::ptrTop()); // a 64-bit slot can hold a pointer
        break;
    case Op::MFSPR:
        set(AbsVal::ptrTop()); // LR holds a return address
        break;
    case Op::MFCR:
        set(AbsVal::num(Interval::range(0, 0xffffffffLL)));
        break;
    case Op::SC:
        // Simulator services may return through r3 (e.g. allocation).
        st[3] = AbsVal::ptrTop();
        break;
    default:
        if (info.writesRT)
            set(AbsVal::ptrTop()); // unmodelled op: suppress diagnostics
        break;
    }
}

/** Abstract effective address of a load/store in @p st. */
AbsVal
effectiveAddress(const Inst &i, const State &st)
{
    AbsVal base = gprVal(st, i.ra, isa::raIsBase(i.op));
    if (i.info().readsRB) { // X-form indexed
        return {base.prov == Prov::Bottom || st[i.rb].prov == Prov::Bottom
                    ? Prov::Bottom
                    : std::max(base.prov, st[i.rb].prov),
                base.range.add(st[i.rb].range)};
    }
    AbsVal r = base;
    r.range = r.range.addConst(i.imm);
    return r;
}

constexpr uint64_t kNullPage = 0x1000;

MemClass
classify(const AbsVal &ea, unsigned size,
         const std::vector<MemRegion> &regions)
{
    if (ea.prov == Prov::Bottom)
        return MemClass::Unknown; // covered by undefined-read errors
    if (!ea.range.isBottom() && ea.range.lo >= 0) {
        uint64_t lo = static_cast<uint64_t>(ea.range.lo);
        uint64_t hi_incl = static_cast<uint64_t>(
            Interval::sat(static_cast<__int128>(ea.range.hi) + size - 1));
        for (const MemRegion &r : regions) {
            if (r.containsRange(lo, hi_incl))
                return MemClass::InBounds;
        }
        // The whole range inside the never-mapped null page is a
        // definite bug — but only when the address was built purely
        // from immediates, so the interval is exact.
        if (ea.prov == Prov::Const && hi_incl < kNullPage &&
            ea.range.hi >= ea.range.lo)
            return MemClass::OutOfBounds;
    }
    if (ea.prov == Prov::Ptr)
        return MemClass::RegionRel;
    return MemClass::Unknown;
}

} // namespace

ValueAnalysis
analyzeValues(const Cfg &cfg, RegSet entry_defined,
              const std::vector<MemRegion> &regions)
{
    ValueAnalysis va;
    va.in.assign(cfg.blocks.size(), State{});
    if (cfg.entryBlock < 0)
        return va;

    // Entry state: ABI-defined registers may be pointers (r1 stack,
    // r3-r10 arguments, anything the caller set up); r0 is only a
    // scratch/zero operand, so it enters as numeric data.
    State entry{};
    for (unsigned r = 0; r < 32; ++r) {
        if (entry_defined & regBit(r))
            entry[r] = r == 0 ? AbsVal::numTop() : AbsVal::ptrTop();
    }
    va.in[static_cast<size_t>(cfg.entryBlock)] = entry;

    constexpr unsigned kWidenAfter = 4;
    std::vector<unsigned> visits(cfg.blocks.size(), 0);
    std::vector<bool> reached(cfg.blocks.size(), false);
    reached[static_cast<size_t>(cfg.entryBlock)] = true;

    std::deque<int> work{cfg.entryBlock};
    std::vector<bool> queued(cfg.blocks.size(), false);
    queued[static_cast<size_t>(cfg.entryBlock)] = true;
    while (!work.empty()) {
        int b = work.front();
        work.pop_front();
        queued[static_cast<size_t>(b)] = false;
        ++visits[static_cast<size_t>(b)];

        State st = va.in[static_cast<size_t>(b)];
        for (const CfgInst &ci : cfg.blocks[static_cast<size_t>(b)].insts)
            transfer(ci.inst, st);

        for (int s : cfg.blocks[static_cast<size_t>(b)].succs) {
            State &dst = va.in[static_cast<size_t>(s)];
            bool changed = false;
            for (unsigned r = 0; r < 32; ++r) {
                AbsVal j = reached[static_cast<size_t>(s)]
                               ? dst[r].joined(st[r])
                               : st[r];
                if (visits[static_cast<size_t>(s)] >= kWidenAfter)
                    j = j.widenedFrom(dst[r]);
                if (!(j == dst[r])) {
                    dst[r] = j;
                    changed = true;
                }
            }
            if (!reached[static_cast<size_t>(s)]) {
                reached[static_cast<size_t>(s)] = true;
                changed = true;
            }
            if (changed && !queued[static_cast<size_t>(s)]) {
                queued[static_cast<size_t>(s)] = true;
                work.push_back(s);
            }
        }
    }

    // Classification pass: replay each block from its fixpoint entry
    // state and record every load/store.
    for (const BasicBlock &blk : cfg.blocks) {
        State st = va.in[static_cast<size_t>(blk.id)];
        for (const CfgInst &ci : blk.insts) {
            unsigned size = memAccessSize(ci.inst.op);
            if (size) {
                MemAccess a;
                a.pc = ci.pc;
                a.isStore = ci.inst.info().isStore;
                a.size = size;
                a.ea = effectiveAddress(ci.inst, st);
                a.cls = classify(a.ea, size, regions);
                a.misaligned = a.ea.prov == Prov::Const &&
                               a.ea.range.isPoint() &&
                               (static_cast<uint64_t>(a.ea.range.lo) %
                                size) != 0;
                va.accesses.push_back(std::move(a));
            }
            transfer(ci.inst, st);
        }
    }
    std::sort(va.accesses.begin(), va.accesses.end(),
              [](const MemAccess &a, const MemAccess &b) {
                  return a.pc < b.pc;
              });
    return va;
}

} // namespace bp5::analysis
