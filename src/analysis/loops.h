/**
 * @file
 * Natural-loop detection over the reconstructed binary CFG (DESIGN.md
 * §4.9): dominators, loop bodies, exit edges, and — for the two
 * counted-loop idioms MiniPOWER code actually uses — induction
 * variable and trip-count recovery:
 *
 *  - CTR loops: `mtctr rk` outside, `bdnz header` as the latch.  When
 *    the mtctr operand is a known constant the trip count is exact.
 *  - GPR loops: a single `addi iv, iv, step` in the body and a latch
 *    `cmpi; bc` testing iv against an immediate bound.  When every
 *    definition of iv reaching the header from outside is the same
 *    `li`, the trip count follows from (init, step, bound, cond).
 *
 * A loop with no exit edge at all is statically infinite; the lint
 * layer reports it (pedantically — deliberate spin loops exist).
 */

#ifndef BIOPERF5_ANALYSIS_LOOPS_H
#define BIOPERF5_ANALYSIS_LOOPS_H

#include <string>
#include <utility>
#include <vector>

#include "analysis/cfg.h"

namespace bp5::analysis {

/** One natural loop of the binary CFG. */
struct BinLoop
{
    int header = -1;              ///< BasicBlock::id
    std::vector<int> latches;     ///< blocks with a back edge to header
    std::vector<int> blocks;      ///< body including header, sorted
    std::vector<std::pair<int, int>> exits; ///< (from, to) edges

    /** No path leaves the loop: statically infinite. */
    bool infinite() const { return exits.empty(); }

    // Counted-loop shape (valid when counted is true).
    bool counted = false;
    bool viaCtr = false;   ///< bdnz idiom rather than a GPR IV
    unsigned ivReg = 0;    ///< GPR induction variable (GPR loops)
    int64_t step = 0;      ///< per-iteration increment (GPR loops)
    int64_t init = 0;      ///< IV value entering the loop, if known
    int64_t bound = 0;     ///< immediate compared against (GPR loops)
    int64_t tripCount = -1; ///< exact iterations, -1 when unknown

    bool contains(int blk) const;
};

/** All natural loops of one CFG. */
struct BinLoopForest
{
    std::vector<BinLoop> loops; ///< sorted outermost-first

    std::string dump(const Cfg &cfg) const;
};

/**
 * Immediate dominators, indexed by BasicBlock::id; idom[entry] ==
 * entry, -1 for unreachable blocks.
 */
std::vector<int> cfgDominators(const Cfg &cfg);

/** Find every natural loop and analyze the counted shapes. */
BinLoopForest findCfgLoops(const Cfg &cfg);

} // namespace bp5::analysis

#endif // BIOPERF5_ANALYSIS_LOOPS_H
