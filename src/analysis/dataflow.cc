#include "analysis/dataflow.h"

#include <algorithm>

#include "isa/inst.h"
#include "support/logging.h"

namespace bp5::analysis {

using isa::Inst;
using isa::Op;

RegSet
abiEntryDefined()
{
    RegSet set = regBit(0) | regBit(1) | regBit(isa::DEP_LR);
    for (unsigned r = 3; r <= 10; ++r)
        set |= regBit(r);
    return set;
}

std::string
depRegName(unsigned dep)
{
    if (dep < isa::kNumGprs)
        return strprintf("r%u", dep);
    if (dep >= isa::DEP_CRF0 && dep < isa::DEP_CRF0 + isa::kNumCrFields)
        return strprintf("cr%u", dep - isa::DEP_CRF0);
    if (dep == isa::DEP_LR)
        return "lr";
    if (dep == isa::DEP_CTR)
        return "ctr";
    return strprintf("dep%u", dep);
}

std::string
regSetNames(RegSet set)
{
    std::string out;
    for (unsigned dep = 0; dep < isa::kNumDepRegs; ++dep) {
        if (!(set & regBit(dep)))
            continue;
        if (!out.empty())
            out += ", ";
        out += depRegName(dep);
    }
    return out;
}

DefUse
defUse(const isa::Inst &inst)
{
    DefUse du;
    unsigned deps[isa::kMaxDeps];
    unsigned n = isa::srcDeps(inst, deps);
    for (unsigned i = 0; i < n; ++i)
        du.uses |= regBit(deps[i]);
    n = isa::dstDeps(inst, deps);
    for (unsigned i = 0; i < n; ++i)
        du.defs |= regBit(deps[i]);
    // The timing model has no register dependencies on sc, but the
    // service semantically reads the selector and the payload.
    if (inst.op == Op::SC)
        du.uses |= regBit(0) | regBit(3);
    return du;
}

namespace {

/** Block-level GEN (defs) and upward-exposed USE sets. */
struct BlockDefUse
{
    RegSet gen = 0;  ///< registers defined in the block
    RegSet use = 0;  ///< registers read before any def in the block
};

std::vector<BlockDefUse>
blockDefUse(const Cfg &cfg)
{
    std::vector<BlockDefUse> sets(cfg.blocks.size());
    for (const BasicBlock &b : cfg.blocks) {
        BlockDefUse &s = sets[b.id];
        for (const CfgInst &ci : b.insts) {
            DefUse du = defUse(ci.inst);
            s.use |= du.uses & ~s.gen;
            s.gen |= du.defs;
        }
    }
    return sets;
}

} // namespace

BlockSets
possiblyDefined(const Cfg &cfg, RegSet entry_defined)
{
    size_t n = cfg.blocks.size();
    BlockSets bs{std::vector<RegSet>(n, 0), std::vector<RegSet>(n, 0)};
    std::vector<BlockDefUse> du = blockDefUse(cfg);

    bool changed = true;
    while (changed) {
        changed = false;
        for (const BasicBlock &b : cfg.blocks) {
            RegSet in = b.id == cfg.entryBlock ? entry_defined : 0;
            for (int p : b.preds)
                in |= bs.out[p];
            RegSet out = in | du[b.id].gen;
            if (in != bs.in[b.id] || out != bs.out[b.id]) {
                bs.in[b.id] = in;
                bs.out[b.id] = out;
                changed = true;
            }
        }
    }
    return bs;
}

BlockSets
liveness(const Cfg &cfg)
{
    size_t n = cfg.blocks.size();
    BlockSets bs{std::vector<RegSet>(n, 0), std::vector<RegSet>(n, 0)};
    std::vector<BlockDefUse> du = blockDefUse(cfg);

    RegSet boundary = regBit(3); // result register / exit payload
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto it = cfg.blocks.rbegin(); it != cfg.blocks.rend(); ++it) {
            const BasicBlock &b = *it;
            RegSet out = 0;
            if (b.succs.empty() || b.isReturn || b.isExit || b.indirectSucc)
                out = boundary;
            for (int s : b.succs)
                out |= bs.in[s];
            RegSet in = du[b.id].use | (out & ~du[b.id].gen);
            if (in != bs.in[b.id] || out != bs.out[b.id]) {
                bs.in[b.id] = in;
                bs.out[b.id] = out;
                changed = true;
            }
        }
    }
    return bs;
}

// --------------------------------------------------------------------
// Reaching definitions.
// --------------------------------------------------------------------

ReachingDefs::ReachingDefs(const Cfg &cfg, RegSet entry_defined) : cfg_(cfg)
{
    sitesOfReg_.resize(isa::kNumDepRegs);

    // Number real definition sites in block/instruction order.
    for (const BasicBlock &b : cfg.blocks) {
        for (unsigned i = 0; i < b.insts.size(); ++i) {
            DefUse du = defUse(b.insts[i].inst);
            for (unsigned dep = 0; dep < isa::kNumDepRegs; ++dep) {
                if (!(du.defs & regBit(dep)))
                    continue;
                unsigned id = static_cast<unsigned>(sites_.size());
                sites_.push_back({b.id, i, b.insts[i].pc, dep});
                sitesOfReg_[dep].push_back(id);
            }
        }
    }
    numRealSites_ = sites_.size();

    // Pseudo-definitions for ABI entry state.
    for (unsigned dep = 0; dep < isa::kNumDepRegs; ++dep) {
        if (!(entry_defined & regBit(dep)))
            continue;
        unsigned id = static_cast<unsigned>(sites_.size());
        sites_.push_back({-1, 0, 0, dep});
        sitesOfReg_[dep].push_back(id);
    }

    words_ = (sites_.size() + 63) / 64;
    auto set_bit = [&](BitVec &v, unsigned id) { v[id / 64] |= 1ull << (id % 64); };

    // Per-block GEN/KILL by forward scan: the last def of a register in
    // a block generates; every def kills all other sites of that reg.
    size_t n = cfg.blocks.size();
    std::vector<BitVec> gen(n, BitVec(words_, 0));
    std::vector<RegSet> killed_regs(n, 0);
    std::vector<std::vector<unsigned>> last_def(
        n, std::vector<unsigned>(isa::kNumDepRegs, UINT32_MAX));
    {
        unsigned id = 0;
        for (const BasicBlock &b : cfg.blocks)
            for (unsigned i = 0; i < b.insts.size(); ++i) {
                DefUse du = defUse(b.insts[i].inst);
                for (unsigned dep = 0; dep < isa::kNumDepRegs; ++dep)
                    if (du.defs & regBit(dep)) {
                        last_def[b.id][dep] = id;
                        killed_regs[b.id] |= regBit(dep);
                        ++id;
                    }
            }
        for (size_t bi = 0; bi < n; ++bi)
            for (unsigned dep = 0; dep < isa::kNumDepRegs; ++dep)
                if (last_def[bi][dep] != UINT32_MAX)
                    set_bit(gen[bi], last_def[bi][dep]);
    }

    in_.assign(n, BitVec(words_, 0));
    std::vector<BitVec> out(n, BitVec(words_, 0));

    // Entry pseudo-defs flow into the entry block.
    BitVec entry_vec(words_, 0);
    for (unsigned id = numRealSites_; id < sites_.size(); ++id)
        set_bit(entry_vec, id);

    bool changed = true;
    while (changed) {
        changed = false;
        for (const BasicBlock &b : cfg.blocks) {
            BitVec in(words_, 0);
            if (b.id == cfg.entryBlock)
                in = entry_vec;
            for (int p : b.preds)
                for (size_t w = 0; w < words_; ++w)
                    in[w] |= out[p][w];
            // OUT = GEN | (IN - KILL)
            BitVec o = in;
            for (unsigned dep = 0; dep < isa::kNumDepRegs; ++dep)
                if (killed_regs[b.id] & regBit(dep))
                    for (unsigned sid : sitesOfReg_[dep])
                        o[sid / 64] &= ~(1ull << (sid % 64));
            for (size_t w = 0; w < words_; ++w)
                o[w] |= gen[b.id][w];
            if (in != in_[b.id] || o != out[b.id]) {
                in_[b.id] = std::move(in);
                out[b.id] = std::move(o);
                changed = true;
            }
        }
    }
}

void
ReachingDefs::replayTo(int block, unsigned idx, BitVec &vec) const
{
    vec = in_[block];
    const BasicBlock &b = cfg_.blocks[block];
    // Site ids are allocated in scan order, so we can re-walk and apply
    // each def's kill/gen until just before instruction idx.
    for (unsigned i = 0; i < idx && i < b.insts.size(); ++i) {
        DefUse du = defUse(b.insts[i].inst);
        for (unsigned dep = 0; dep < isa::kNumDepRegs; ++dep) {
            if (!(du.defs & regBit(dep)))
                continue;
            for (unsigned sid : sitesOfReg_[dep])
                vec[sid / 64] &= ~(1ull << (sid % 64));
            for (unsigned sid : sitesOfReg_[dep])
                if (sites_[sid].block == block && sites_[sid].idx == i) {
                    vec[sid / 64] |= 1ull << (sid % 64);
                    break;
                }
        }
    }
}

std::vector<DefSite>
ReachingDefs::reaching(int block, unsigned idx, unsigned reg) const
{
    std::vector<DefSite> defs;
    if (block < 0 || static_cast<size_t>(block) >= cfg_.blocks.size())
        return defs;
    BitVec vec;
    replayTo(block, idx, vec);
    for (unsigned sid : sitesOfReg_[reg])
        if (vec[sid / 64] & (1ull << (sid % 64)))
            defs.push_back(sites_[sid]);
    return defs;
}

std::vector<DefSite>
ReachingDefs::reachingAt(uint64_t pc, unsigned reg) const
{
    for (const BasicBlock &b : cfg_.blocks)
        for (unsigned i = 0; i < b.insts.size(); ++i)
            if (b.insts[i].pc == pc)
                return reaching(b.id, i, reg);
    return {};
}

} // namespace bp5::analysis
