/**
 * @file
 * The interval abstract domain shared by the IR-level and binary-level
 * abstract interpreters (DESIGN.md §4.9).  An Interval is a pair of
 * inclusive signed 64-bit bounds where INT64_MIN / INT64_MAX act as
 * -inf / +inf; the empty interval (bottom) is canonically {1, 0}.
 * All transfer arithmetic saturates through __int128 so wrap-around in
 * the analyzed program can only widen the result, never invent a
 * too-tight bound.
 *
 * Header-only so both bp5_analysis and bp5_mpc can use it without a
 * library cycle.
 */

#ifndef BIOPERF5_ANALYSIS_INTERVAL_H
#define BIOPERF5_ANALYSIS_INTERVAL_H

#include <algorithm>
#include <cstdint>
#include <string>

namespace bp5::analysis {

struct Interval
{
    static constexpr int64_t kNegInf = INT64_MIN;
    static constexpr int64_t kPosInf = INT64_MAX;

    int64_t lo = kNegInf;
    int64_t hi = kPosInf;

    static Interval top() { return {kNegInf, kPosInf}; }
    static Interval bottom() { return {1, 0}; }
    static Interval point(int64_t v) { return {v, v}; }
    static Interval range(int64_t lo, int64_t hi) { return {lo, hi}; }

    bool isBottom() const { return lo > hi; }
    bool isTop() const { return lo == kNegInf && hi == kPosInf; }
    bool isPoint() const { return lo == hi; }
    bool contains(int64_t v) const { return lo <= v && v <= hi; }

    bool operator==(const Interval &o) const
    {
        return (isBottom() && o.isBottom()) || (lo == o.lo && hi == o.hi);
    }
    bool operator!=(const Interval &o) const { return !(*this == o); }

    /** Least upper bound (interval hull). */
    Interval
    join(const Interval &o) const
    {
        if (isBottom())
            return o;
        if (o.isBottom())
            return *this;
        return {std::min(lo, o.lo), std::max(hi, o.hi)};
    }

    Interval
    meet(const Interval &o) const
    {
        if (isBottom() || o.isBottom())
            return bottom();
        Interval r{std::max(lo, o.lo), std::min(hi, o.hi)};
        return r.isBottom() ? bottom() : r;
    }

    /**
     * Widening: any bound that moved since @p prev jumps straight to
     * infinity, guaranteeing fixpoint termination.
     */
    Interval
    widenedFrom(const Interval &prev) const
    {
        if (prev.isBottom())
            return *this;
        if (isBottom())
            return prev;
        return {lo < prev.lo ? kNegInf : prev.lo,
                hi > prev.hi ? kPosInf : prev.hi};
    }

    /** Saturate a 128-bit value into a representable bound. */
    static int64_t
    sat(__int128 v)
    {
        if (v <= static_cast<__int128>(kNegInf))
            return kNegInf;
        if (v >= static_cast<__int128>(kPosInf))
            return kPosInf;
        return static_cast<int64_t>(v);
    }

    /** Bound arithmetic that keeps infinities absorbing. */
    static int64_t
    addBound(int64_t a, int64_t b)
    {
        if (a == kNegInf || b == kNegInf)
            return kNegInf;
        if (a == kPosInf || b == kPosInf)
            return kPosInf;
        return sat(static_cast<__int128>(a) + b);
    }

    Interval
    add(const Interval &o) const
    {
        if (isBottom() || o.isBottom())
            return bottom();
        return {addBound(lo, o.lo), addBound(hi, o.hi)};
    }

    Interval
    addConst(int64_t c) const
    {
        if (isBottom())
            return bottom();
        auto shift = [&](int64_t b) {
            if (b == kNegInf || b == kPosInf)
                return b;
            return sat(static_cast<__int128>(b) + c);
        };
        return {shift(lo), shift(hi)};
    }

    Interval
    neg() const
    {
        if (isBottom())
            return bottom();
        auto flip = [](int64_t b) {
            if (b == kNegInf)
                return kPosInf;
            if (b == kPosInf)
                return kNegInf;
            return sat(-static_cast<__int128>(b));
        };
        return {flip(hi), flip(lo)};
    }

    Interval sub(const Interval &o) const { return add(o.neg()); }

    Interval
    mul(const Interval &o) const
    {
        if (isBottom() || o.isBottom())
            return bottom();
        // Any infinite bound makes the sign analysis too fiddly to be
        // worth it for this IR; give up to top.
        if (lo == kNegInf || hi == kPosInf || o.lo == kNegInf ||
            o.hi == kPosInf)
            return top();
        __int128 c[4] = {
            static_cast<__int128>(lo) * o.lo,
            static_cast<__int128>(lo) * o.hi,
            static_cast<__int128>(hi) * o.lo,
            static_cast<__int128>(hi) * o.hi,
        };
        __int128 mn = c[0], mx = c[0];
        for (__int128 v : c) {
            mn = std::min(mn, v);
            mx = std::max(mx, v);
        }
        return {sat(mn), sat(mx)};
    }

    Interval
    maxWith(const Interval &o) const
    {
        if (isBottom() || o.isBottom())
            return bottom();
        return {std::max(lo, o.lo), std::max(hi, o.hi)};
    }

    Interval
    minWith(const Interval &o) const
    {
        if (isBottom() || o.isBottom())
            return bottom();
        return {std::min(lo, o.lo), std::min(hi, o.hi)};
    }

    /** Left shift by a constant amount in [0, 63]. */
    Interval
    shlConst(int64_t s) const
    {
        if (isBottom())
            return bottom();
        if (s < 0 || s > 63)
            return top();
        return mul(point(int64_t{1} << std::min<int64_t>(s, 62))
                       .mul(point(s == 63 ? 2 : 1)));
    }

    std::string
    str() const
    {
        if (isBottom())
            return "[]";
        std::string l = lo == kNegInf ? "-inf" : std::to_string(lo);
        std::string h = hi == kPosInf ? "+inf" : std::to_string(hi);
        return "[" + l + ", " + h + "]";
    }
};

} // namespace bp5::analysis

#endif // BIOPERF5_ANALYSIS_INTERVAL_H
