#include "support/thread_pool.h"

namespace bp5::support {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([this, t] { workerMain(t); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::parallelFor(size_t items,
                        const std::function<void(unsigned, size_t)> &fn)
{
    if (items == 0)
        return;
    std::lock_guard<std::mutex> caller(callerMu_);
    std::unique_lock<std::mutex> lock(mu_);
    fn_ = &fn;
    items_ = items;
    next_.store(0, std::memory_order_relaxed);
    busy_ = unsigned(workers_.size());
    ++generation_;
    wake_.notify_all();
    done_.wait(lock, [this] { return busy_ == 0; });
    fn_ = nullptr;
}

void
ThreadPool::workerMain(unsigned id)
{
    uint64_t seen = 0;
    for (;;) {
        const std::function<void(unsigned, size_t)> *fn = nullptr;
        size_t items = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock,
                       [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
            fn = fn_;
            items = items_;
        }
        for (;;) {
            size_t i = next_.fetch_add(1, std::memory_order_relaxed);
            if (i >= items)
                break;
            (*fn)(id, i);
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--busy_ == 0)
                done_.notify_all();
        }
    }
}

} // namespace bp5::support
