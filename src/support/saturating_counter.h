/**
 * @file
 * N-bit saturating counter, the basic building block of the direction
 * predictors and the BTAC score field.
 */

#ifndef BIOPERF5_SUPPORT_SATURATING_COUNTER_H
#define BIOPERF5_SUPPORT_SATURATING_COUNTER_H

#include <cstdint>

namespace bp5 {

/** Saturating up/down counter with a compile-time-free bit width. */
class SatCounter
{
  public:
    SatCounter() = default;

    /**
     * @param bits counter width in bits (1..16)
     * @param initial initial count
     */
    explicit SatCounter(unsigned bits, unsigned initial = 0)
        : max_(static_cast<uint16_t>((1u << bits) - 1)),
          count_(static_cast<uint16_t>(initial > max_ ? max_ : initial))
    {}

    void increment() { if (count_ < max_) ++count_; }
    void decrement() { if (count_ > 0) --count_; }

    /** Move toward taken (true) / not-taken (false). */
    void update(bool taken) { taken ? increment() : decrement(); }

    unsigned value() const { return count_; }
    unsigned maxValue() const { return max_; }

    /** MSB set: predict taken / high confidence. */
    bool high() const { return count_ > max_ / 2; }

    void reset(unsigned v = 0)
    {
        count_ = static_cast<uint16_t>(v > max_ ? max_ : v);
    }

  private:
    uint16_t max_ = 3;
    uint16_t count_ = 0;
};

} // namespace bp5

#endif // BIOPERF5_SUPPORT_SATURATING_COUNTER_H
