/**
 * @file
 * Plain-ASCII table formatter used by the benchmark harness to print
 * the reproduced paper tables and figure series.
 */

#ifndef BIOPERF5_SUPPORT_TABLE_H
#define BIOPERF5_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace bp5 {

/** Column-aligned text table with an optional title and header rule. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row (enables the separator rule). */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal rule between data rows. */
    void rule();

    /** Render with 2-space column gaps; numeric-looking cells align right. */
    std::string toString() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format helper: fixed-point double. */
    static std::string num(double v, int precision = 2);

    /** Format helper: percentage with a trailing '%'. */
    static std::string pct(double fraction, int precision = 1);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_; // empty vector == rule
};

} // namespace bp5

#endif // BIOPERF5_SUPPORT_TABLE_H
