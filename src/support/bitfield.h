/**
 * @file
 * Bit-manipulation helpers used by the ISA encoder/decoder and the
 * cache/predictor index functions.
 */

#ifndef BIOPERF5_SUPPORT_BITFIELD_H
#define BIOPERF5_SUPPORT_BITFIELD_H

#include <cstdint>

namespace bp5 {

/** Mask with the low @p n bits set (n in [0, 64]). */
constexpr uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/**
 * Extract bits [lo, lo+width) of @p val (lo is the least-significant
 * bit of the field).
 */
constexpr uint64_t
bits(uint64_t val, unsigned lo, unsigned width)
{
    return (val >> lo) & mask(width);
}

/** Extract a single bit. */
constexpr uint64_t
bit(uint64_t val, unsigned pos)
{
    return (val >> pos) & 1;
}

/** Insert @p field into bits [lo, lo+width) of @p val. */
constexpr uint64_t
insertBits(uint64_t val, unsigned lo, unsigned width, uint64_t field)
{
    uint64_t m = mask(width) << lo;
    return (val & ~m) | ((field << lo) & m);
}

/** Sign-extend the low @p width bits of @p val to 64 bits. */
constexpr int64_t
sext(uint64_t val, unsigned width)
{
    if (width == 0 || width >= 64)
        return static_cast<int64_t>(val);
    uint64_t sign = 1ULL << (width - 1);
    uint64_t low = val & mask(width);
    return static_cast<int64_t>((low ^ sign) - sign);
}

/** True if @p v is a power of two (and nonzero). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be nonzero. */
constexpr unsigned
floorLog2(uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** Round @p v up to the next multiple of @p align (a power of two). */
constexpr uint64_t
roundUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace bp5

#endif // BIOPERF5_SUPPORT_BITFIELD_H
