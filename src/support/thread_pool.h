/**
 * @file
 * Fixed-size worker pool with self-scheduling parallel-for, extracted
 * from the ExperimentDriver so the batch-serving daemon can share the
 * same substrate.  Workers are started once and reused across
 * parallelFor() calls; each call hands every worker a stable worker id
 * so callers can keep per-worker state (the driver keeps one
 * simulation context per worker, the server one shard per worker).
 *
 * parallelFor() is a barrier: it returns only after fn(worker, index)
 * has run for every index in [0, items).  Indices are claimed through
 * a shared atomic cursor (self-scheduling), so work distribution
 * adapts to item cost; result placement by index keeps callers
 * deterministic regardless of which worker claims which item.
 */

#ifndef BIOPERF5_SUPPORT_THREAD_POOL_H
#define BIOPERF5_SUPPORT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bp5::support {

/** Reusable fixed-size pool of worker threads. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 picks the hardware concurrency */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins the workers (any running parallelFor completes first). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threads() const { return unsigned(workers_.size()); }

    /**
     * Run fn(worker, index) for every index in [0, items) on the pool
     * and block until all calls return.  @p worker is the stable id of
     * the executing pool thread in [0, threads()).  One parallelFor()
     * may be in flight at a time (calls from multiple threads are
     * serialized internally); fn must not call back into the same
     * pool.
     */
    void parallelFor(size_t items,
                     const std::function<void(unsigned, size_t)> &fn);

  private:
    void workerMain(unsigned id);

    std::mutex mu_;
    std::condition_variable wake_;    ///< workers wait for a new job
    std::condition_variable done_;    ///< parallelFor waits for drain
    std::mutex callerMu_;             ///< serializes parallelFor calls

    // Current job (valid while busy_ > 0 or generation_ just bumped).
    const std::function<void(unsigned, size_t)> *fn_ = nullptr;
    size_t items_ = 0;
    std::atomic<size_t> next_{0};
    unsigned busy_ = 0;       ///< workers still inside the current job
    uint64_t generation_ = 0; ///< bumped once per parallelFor
    bool stop_ = false;

    std::vector<std::thread> workers_;
};

} // namespace bp5::support

#endif // BIOPERF5_SUPPORT_THREAD_POOL_H
