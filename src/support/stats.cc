#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/logging.h"

namespace bp5 {

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stdev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    BP5_ASSERT(hi > lo && buckets > 0, "bad histogram shape");
}

void
Histogram::add(double x, uint64_t weight)
{
    total_ += weight;
    if (x < lo_) {
        underflow_ += weight;
    } else if (x >= hi_) {
        overflow_ += weight;
    } else {
        double frac = (x - lo_) / (hi_ - lo_);
        size_t i = static_cast<size_t>(frac * counts_.size());
        if (i >= counts_.size())
            i = counts_.size() - 1;
        counts_[i] += weight;
    }
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total_));
    uint64_t acc = underflow_;
    if (acc > target)
        return lo_;
    double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (size_t i = 0; i < counts_.size(); ++i) {
        acc += counts_[i];
        if (acc > target)
            return lo_ + (static_cast<double>(i) + 0.5) * width;
    }
    return hi_;
}

std::string
Histogram::toString(const std::string &name) const
{
    std::ostringstream os;
    os << name << ": n=" << total_ << " under=" << underflow_
       << " over=" << overflow_;
    return os.str();
}

double
IntervalSeries::mean() const
{
    return meanOf(values);
}

double
meanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
geomeanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v) {
        BP5_ASSERT(x > 0.0, "geomean of non-positive value");
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(v.size()));
}

} // namespace bp5
