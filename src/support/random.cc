#include "support/random.h"

#include "support/logging.h"

namespace bp5 {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    BP5_ASSERT(bound > 0, "Rng::below(0)");
    // Rejection sampling over the largest multiple of bound.
    uint64_t limit = ~0ULL - (~0ULL % bound);
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    BP5_ASSERT(lo <= hi, "Rng::range lo > hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(span == 0 ? next() : below(span));
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::gaussian()
{
    // Irwin-Hall sum of 12 uniforms minus 6: mean 0, variance 1.
    double acc = 0.0;
    for (int i = 0; i < 12; ++i)
        acc += uniform();
    return acc - 6.0;
}

size_t
Rng::weighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        BP5_ASSERT(w >= 0.0, "negative weight");
        total += w;
    }
    BP5_ASSERT(total > 0.0, "weights sum to zero");
    double r = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

} // namespace bp5
