/**
 * @file
 * Lightweight statistics containers used by the simulator's counter
 * groups and the experiment harness: running scalars, distributions,
 * and interval series for the Fig-2-style timelines.
 */

#ifndef BIOPERF5_SUPPORT_STATS_H
#define BIOPERF5_SUPPORT_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace bp5 {

/** Running mean / variance / min / max accumulator (Welford). */
class RunningStat
{
  public:
    void add(double x);
    void reset();

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stdev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Fixed-bucket histogram over [lo, hi) with under/overflow buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t buckets);

    void add(double x, uint64_t weight = 1);
    void reset();

    uint64_t total() const { return total_; }
    uint64_t bucketCount(size_t i) const { return counts_.at(i); }
    size_t buckets() const { return counts_.size(); }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }

    /** Approximate quantile (0 <= q <= 1) from bucket midpoints. */
    double quantile(double q) const;

    std::string toString(const std::string &name) const;

  private:
    double lo_, hi_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

/**
 * A time series of per-interval samples (e.g. IPC per 100k cycles),
 * used for the Fig-2 style timeline plots.
 */
struct IntervalSeries
{
    std::string name;
    std::vector<double> values;

    void add(double v) { values.push_back(v); }
    double mean() const;
};

/** Arithmetic mean of a vector; 0 for empty input. */
double meanOf(const std::vector<double> &v);

/** Geometric mean of strictly positive values; 0 for empty input. */
double geomeanOf(const std::vector<double> &v);

} // namespace bp5

#endif // BIOPERF5_SUPPORT_STATS_H
