/**
 * @file
 * Log2-bucketed histogram of non-negative integer samples (latencies,
 * gap lengths, queue depths).  Bucket i covers [2^(i-1), 2^i) except
 * bucket 0, which holds exactly the value 0; a 64-bucket table covers
 * the full uint64_t range.  Counting is O(1) per sample and the
 * rendered form is byte-deterministic, matching the repo's diffable-
 * output contract.
 */

#ifndef BIOPERF5_SUPPORT_HISTOGRAM_H
#define BIOPERF5_SUPPORT_HISTOGRAM_H

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>

namespace bp5::support {

/** Fixed-size log2 histogram; header-only, trivially copyable. */
class Log2Histogram
{
  public:
    static constexpr unsigned kBuckets = 65; ///< 0 plus one per bit

    /** Bucket index of @p v: 0 for 0, otherwise 1 + floor(log2 v). */
    static constexpr unsigned
    bucketOf(uint64_t v)
    {
        unsigned b = 0;
        while (v != 0) {
            ++b;
            v >>= 1;
        }
        return b;
    }

    /** Smallest value falling into bucket @p i. */
    static constexpr uint64_t
    bucketLo(unsigned i)
    {
        return i == 0 ? 0 : uint64_t(1) << (i - 1);
    }

    /** Largest value falling into bucket @p i (inclusive). */
    static constexpr uint64_t
    bucketHi(unsigned i)
    {
        return i == 0 ? 0
               : i >= 64 ? ~uint64_t(0)
                         : (uint64_t(1) << i) - 1;
    }

    void
    add(uint64_t v, uint64_t weight = 1)
    {
        counts_[bucketOf(v)] += weight;
        total_ += weight;
        sum_ += v * weight;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    uint64_t count(unsigned bucket) const { return counts_[bucket]; }
    uint64_t total() const { return total_; }
    uint64_t min() const { return total_ ? min_ : 0; }
    uint64_t max() const { return total_ ? max_ : 0; }
    double mean() const { return total_ ? double(sum_) / double(total_) : 0.0; }

    void
    merge(const Log2Histogram &o)
    {
        for (unsigned i = 0; i < kBuckets; ++i)
            counts_[i] += o.counts_[i];
        total_ += o.total_;
        sum_ += o.sum_;
        if (o.total_) {
            if (o.min_ < min_)
                min_ = o.min_;
            if (o.max_ > max_)
                max_ = o.max_;
        }
    }

    /**
     * Upper bound of the bucket holding the p-th percentile sample
     * (@p p in [0, 100]); 0 on an empty histogram.  Bucket-granular by
     * construction — exact within a factor of two.
     */
    uint64_t
    percentile(double p) const
    {
        if (total_ == 0)
            return 0;
        double rank = p / 100.0 * double(total_);
        uint64_t seen = 0;
        for (unsigned i = 0; i < kBuckets; ++i) {
            seen += counts_[i];
            if (double(seen) >= rank && counts_[i] != 0)
                return bucketHi(i);
        }
        return bucketHi(kBuckets - 1);
    }

    /**
     * Aligned text rendering: one `[lo, hi] count |bar|` line per
     * populated bucket, bars scaled to @p barWidth characters.
     */
    std::string
    toText(unsigned barWidth = 40) const
    {
        std::string out;
        uint64_t peak = 0;
        for (uint64_t c : counts_)
            if (c > peak)
                peak = c;
        for (unsigned i = 0; i < kBuckets; ++i) {
            if (counts_[i] == 0)
                continue;
            char line[96];
            std::snprintf(line, sizeof line, "  [%10llu, %10llu] %10llu  ",
                          (unsigned long long)bucketLo(i),
                          (unsigned long long)bucketHi(i),
                          (unsigned long long)counts_[i]);
            out += line;
            unsigned bar = peak ? unsigned((counts_[i] * barWidth + peak - 1) /
                                           peak)
                                : 0;
            out.append(bar, '#');
            out += '\n';
        }
        return out;
    }

  private:
    std::array<uint64_t, kBuckets> counts_{};
    uint64_t total_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = ~uint64_t(0);
    uint64_t max_ = 0;
};

} // namespace bp5::support

#endif // BIOPERF5_SUPPORT_HISTOGRAM_H
