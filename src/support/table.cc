#include "support/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "support/logging.h"

namespace bp5 {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    BP5_ASSERT(!cells.empty(), "empty table row");
    rows_.push_back(std::move(cells));
}

void
TextTable::rule()
{
    rows_.emplace_back(); // sentinel
}

namespace {

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
              c == '-' || c == '+' || c == '%' || c == 'x' || c == 'e'))
            return false;
    }
    return true;
}

} // namespace

std::string
TextTable::toString() const
{
    std::vector<size_t> widths;
    auto widen = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    if (!header_.empty())
        widen(header_);
    for (const auto &r : rows_)
        if (!r.empty())
            widen(r);

    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    if (total >= 2)
        total -= 2;

    std::ostringstream os;
    if (!title_.empty())
        os << title_ << "\n";

    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            const std::string &c = cells[i];
            size_t pad = widths[i] - c.size();
            if (i > 0)
                os << "  ";
            if (looksNumeric(c) && i > 0) {
                os << std::string(pad, ' ') << c;
            } else {
                os << c;
                if (i + 1 < cells.size())
                    os << std::string(pad, ' ');
            }
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emitRow(header_);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_) {
        if (r.empty())
            os << std::string(total, '-') << "\n";
        else
            emitRow(r);
    }
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(toString().c_str(), stdout);
    std::fflush(stdout);
}

std::string
TextTable::num(double v, int precision)
{
    return strprintf("%.*f", precision, v);
}

std::string
TextTable::pct(double fraction, int precision)
{
    return strprintf("%.*f%%", precision, fraction * 100.0);
}

} // namespace bp5
