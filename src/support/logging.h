/**
 * @file
 * Error-reporting and status-message helpers, modelled on gem5's
 * base/logging.hh conventions: panic() for internal invariant violations,
 * fatal() for user errors, warn()/inform() for status.
 */

#ifndef BIOPERF5_SUPPORT_LOGGING_H
#define BIOPERF5_SUPPORT_LOGGING_H

#include <cstdarg>
#include <string>

namespace bp5 {

/**
 * Print a formatted message tagged "panic:" to stderr and abort().
 * Call when an internal invariant is violated (a simulator bug),
 * regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Print a formatted message tagged "fatal:" to stderr and exit(1).
 * Call when the simulation cannot continue due to a user-caused
 * condition (bad configuration, malformed input file, ...).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a non-fatal "warn:" message to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list args);

} // namespace bp5

/**
 * Assert that always fires (also in release builds); reports the failing
 * expression and location through panic().
 */
#define BP5_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::bp5::panic("assertion '%s' failed at %s:%d %s", #cond,       \
                         __FILE__, __LINE__,                               \
                         ::bp5::strprintf("" __VA_ARGS__).c_str());        \
        }                                                                  \
    } while (0)

#endif // BIOPERF5_SUPPORT_LOGGING_H
