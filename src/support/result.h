/**
 * @file
 * Shared results layer for the experiment drivers and analysis tools:
 * a ResultRow is an ordered list of (key, value) cells with
 * deterministic formatting, and a row set can be emitted either as an
 * aligned-text table (the paper-style console output) or as JSON (for
 * downstream tooling).  Every formatting path is locale-independent
 * and byte-deterministic, so sweeps are diffable run-to-run and
 * thread-count-independent.
 *
 * Lives in support (not driver) so that lower layers — notably the
 * bp5_analysis lint — can emit the same JSON Lines records without
 * depending on the experiment driver.
 */

#ifndef BIOPERF5_SUPPORT_RESULT_H
#define BIOPERF5_SUPPORT_RESULT_H

#include <cstdint>
#include <string>
#include <vector>

namespace bp5::support {

/** One experiment-output row: ordered named cells. */
class ResultRow
{
  public:
    /** One cell; text is the display form, json the JSON literal. */
    struct Cell
    {
        std::string key;
        std::string text;
        std::string json;
    };

    /** String cell. */
    ResultRow &set(const std::string &key, const std::string &value);
    ResultRow &set(const std::string &key, const char *value);

    /** Fixed-point double cell (display and JSON use @p precision). */
    ResultRow &set(const std::string &key, double value,
                   int precision = 2);

    /** Integer cells. */
    ResultRow &set(const std::string &key, uint64_t value);
    ResultRow &set(const std::string &key, int64_t value);
    ResultRow &set(const std::string &key, int value);
    ResultRow &set(const std::string &key, unsigned value);

    /** Percentage cell: displays "12.3%", JSON carries the fraction. */
    ResultRow &setPct(const std::string &key, double fraction,
                      int precision = 1);

    /**
     * Signed-percentage cell for gains: displays "+12.3%" / "-4.2%",
     * JSON carries the fraction.
     */
    ResultRow &setGainPct(const std::string &key, double fraction,
                          int precision = 1);

    const std::vector<Cell> &cells() const { return cells_; }

    /** Display text of cell @p key, or "-" when absent. */
    const std::string &text(const std::string &key) const;

  private:
    ResultRow &add(const std::string &key, std::string text,
                   std::string json);

    std::vector<Cell> cells_;
};

/**
 * Render @p rows as an aligned-text table.  Columns are the union of
 * all row keys in first-appearance order; missing cells print as "-".
 */
std::string emitText(const std::vector<ResultRow> &rows,
                     const std::string &title = "");

/** Render @p rows as a JSON array of objects (keys in row order). */
std::string emitJson(const std::vector<ResultRow> &rows);

/**
 * Render one table as a single JSON Lines record:
 * `{"title": "...", "rows": [{...}, ...]}\n` with no interior
 * newlines, so a multi-table bench emits one parseable JSON document
 * per line of stdout.
 */
std::string emitJsonLine(const std::vector<ResultRow> &rows,
                         const std::string &title);

} // namespace bp5::support

#endif // BIOPERF5_SUPPORT_RESULT_H
