#include "support/result.h"

#include <cstdio>

#include "support/table.h"

namespace bp5::support {

namespace {

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace

ResultRow &
ResultRow::add(const std::string &key, std::string text, std::string json)
{
    for (Cell &c : cells_) {
        if (c.key == key) {
            c.text = std::move(text);
            c.json = std::move(json);
            return *this;
        }
    }
    cells_.push_back({key, std::move(text), std::move(json)});
    return *this;
}

ResultRow &
ResultRow::set(const std::string &key, const std::string &value)
{
    return add(key, value, jsonEscape(value));
}

ResultRow &
ResultRow::set(const std::string &key, const char *value)
{
    return set(key, std::string(value));
}

ResultRow &
ResultRow::set(const std::string &key, double value, int precision)
{
    std::string t = fmtDouble(value, precision);
    return add(key, t, t);
}

ResultRow &
ResultRow::set(const std::string &key, uint64_t value)
{
    std::string t = std::to_string(value);
    return add(key, t, t);
}

ResultRow &
ResultRow::set(const std::string &key, int64_t value)
{
    std::string t = std::to_string(value);
    return add(key, t, t);
}

ResultRow &
ResultRow::set(const std::string &key, int value)
{
    return set(key, static_cast<int64_t>(value));
}

ResultRow &
ResultRow::set(const std::string &key, unsigned value)
{
    return set(key, static_cast<uint64_t>(value));
}

ResultRow &
ResultRow::setPct(const std::string &key, double fraction, int precision)
{
    return add(key, fmtDouble(fraction * 100.0, precision) + "%",
               fmtDouble(fraction, precision + 4));
}

ResultRow &
ResultRow::setGainPct(const std::string &key, double fraction,
                      int precision)
{
    std::string t = fmtDouble(fraction * 100.0, precision) + "%";
    if (fraction >= 0)
        t = "+" + t;
    return add(key, t, fmtDouble(fraction, precision + 4));
}

const std::string &
ResultRow::text(const std::string &key) const
{
    static const std::string kMissing = "-";
    for (const Cell &c : cells_) {
        if (c.key == key)
            return c.text;
    }
    return kMissing;
}

std::string
emitText(const std::vector<ResultRow> &rows, const std::string &title)
{
    // Column set: union of keys in first-appearance order.
    std::vector<std::string> keys;
    for (const ResultRow &r : rows) {
        for (const ResultRow::Cell &c : r.cells()) {
            bool seen = false;
            for (const std::string &k : keys)
                seen = seen || k == c.key;
            if (!seen)
                keys.push_back(c.key);
        }
    }
    TextTable t(title);
    t.header(keys);
    for (const ResultRow &r : rows) {
        std::vector<std::string> cells;
        cells.reserve(keys.size());
        for (const std::string &k : keys)
            cells.push_back(r.text(k));
        t.row(cells);
    }
    return t.toString();
}

std::string
emitJson(const std::vector<ResultRow> &rows)
{
    std::string out = "[\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        out += "  {";
        const auto &cells = rows[i].cells();
        for (size_t j = 0; j < cells.size(); ++j) {
            out += jsonEscape(cells[j].key) + ": " + cells[j].json;
            if (j + 1 < cells.size())
                out += ", ";
        }
        out += i + 1 < rows.size() ? "},\n" : "}\n";
    }
    out += "]\n";
    return out;
}

std::string
emitJsonLine(const std::vector<ResultRow> &rows, const std::string &title)
{
    std::string out = "{\"title\": " + jsonEscape(title) + ", \"rows\": [";
    for (size_t i = 0; i < rows.size(); ++i) {
        out += '{';
        const auto &cells = rows[i].cells();
        for (size_t j = 0; j < cells.size(); ++j) {
            out += jsonEscape(cells[j].key) + ": " + cells[j].json;
            if (j + 1 < cells.size())
                out += ", ";
        }
        out += '}';
        if (i + 1 < rows.size())
            out += ", ";
    }
    out += "]}\n";
    return out;
}

} // namespace bp5::support
