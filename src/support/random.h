/**
 * @file
 * Deterministic pseudo-random number generation for workload input
 * synthesis.  All experiments must be reproducible bit-for-bit, so the
 * library never uses std::random_device or global state.
 */

#ifndef BIOPERF5_SUPPORT_RANDOM_H
#define BIOPERF5_SUPPORT_RANDOM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bp5 {

/**
 * xoshiro256** generator seeded through SplitMix64.  Fast, good quality,
 * and fully deterministic from the 64-bit seed.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via SplitMix64. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) with rejection to avoid bias. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /** Approximately normal draw (sum of uniforms), mean 0, stdev 1. */
    double gaussian();

    /**
     * Draw an index according to non-negative weights.
     * @param weights per-index weights; sum must be positive.
     */
    size_t weighted(const std::vector<double> &weights);

  private:
    uint64_t s_[4];
};

} // namespace bp5

#endif // BIOPERF5_SUPPORT_RANDOM_H
