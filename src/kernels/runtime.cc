/**
 * @file
 * KernelMachine: loads a compiled kernel into a simulated machine,
 * marshals problems into simulated memory, runs with timing, and
 * validates every result against the native reference.
 */

#include "kernels/kernels.h"

#include "analysis/lint.h"
#include "support/logging.h"

namespace bp5::kernels {

namespace {

/** Bump allocator over simulated memory. */
class DataWriter
{
  public:
    explicit DataWriter(sim::Memory &mem) : mem_(mem) {}

    uint64_t
    bytes(const void *src, size_t len)
    {
        uint64_t addr = cursor_;
        mem_.writeBlock(addr, src, len);
        cursor_ = (cursor_ + len + 7) & ~7ULL;
        return addr;
    }

    uint64_t
    codesOf(const bio::Sequence &s, size_t from = 0)
    {
        return bytes(s.codes().data() + from, s.size() - from);
    }

    /** Substitution matrix as int32 row-major 20x20 (or 4x4). */
    uint64_t
    matrix(const bio::SubstitutionMatrix &m)
    {
        std::vector<int32_t> t;
        unsigned n = bio::SubstitutionMatrix::kMaxResidues;
        t.reserve(n * n);
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned j = 0; j < n; ++j) {
                bool in = i < m.size() && j < m.size();
                t.push_back(in ? m.score(i, j) : 0);
            }
        }
        return bytes(t.data(), t.size() * 4);
    }

    uint64_t
    i64Array(const std::vector<int64_t> &v)
    {
        return bytes(v.data(), v.size() * 8);
    }

    /** Reserve zeroed space. */
    uint64_t
    space(size_t len)
    {
        std::vector<uint8_t> z(len, 0);
        return bytes(z.data(), len);
    }

  private:
    sim::Memory &mem_;
    uint64_t cursor_ = kDataBase;
};

} // namespace

KernelMachine::KernelMachine(KernelKind kind, mpc::Variant variant,
                             const sim::MachineConfig &config,
                             unsigned unrollFactor)
    : kind_(kind), variant_(variant),
      compiled_(compileKernel(kind, variant, unrollFactor)),
      machine_(config)
{
    masm::Program prog = compiled_.program(kCodeBase);
    // Load-time verification: a compiled kernel with a definite binary
    // bug (undefined register read, branch out of the image, ...) must
    // never reach the simulator — running it would corrupt experiment
    // numbers far less visibly than this panic.
    analysis::LintReport report = analysis::lintProgram(prog);
    if (report.errors())
        panic("compiled %s/%s kernel failed binary lint:\n%s",
              kernelName(kind), mpc::variantName(variant),
              report.toText().c_str());
    machine_.loadProgram(prog);
}

void
KernelMachine::reset()
{
    machine_.reset(); // also detaches the machine-side trace sink
    totals_ = sim::Counters();
    sampler_.reset();
    external_ = nullptr;
    mux_.clear();
    functionalOnly_ = false;
}

void
KernelMachine::setSampleInterval(uint64_t cycles, bool site_series)
{
    sampler_ = cycles ? std::make_unique<obs::PmuSampler>(cycles,
                                                          site_series)
                      : nullptr;
    rewire();
}

void
KernelMachine::setTraceSink(sim::TraceSink *sink)
{
    external_ = sink;
    rewire();
}

void
KernelMachine::rewire()
{
    mux_.clear();
    mux_.add(sampler_.get());
    mux_.add(external_);
    // Skip the mux indirection when a single sink is attached.
    machine_.setTraceSink(mux_.empty()
                              ? nullptr
                              : (mux_.size() == 1 ? mux_.front() : &mux_));
}

int64_t
KernelMachine::invoke(const std::vector<uint64_t> &args, int64_t expected)
{
    BP5_ASSERT(args.size() <= 8, "too many kernel arguments");
    sim::CoreState &st = machine_.state();
    st.pc = kCodeBase;
    st.gpr[1] = kStackTop;
    for (size_t i = 0; i < args.size(); ++i)
        st.gpr[3 + i] = args[i];

    sim::RunResult r = functionalOnly_
                           ? machine_.runFunctional(500'000'000)
                           : machine_.run(500'000'000);
    if (!r.halted) {
        panic("kernel %s (%s) did not halt", kernelName(kind_),
              mpc::variantName(variant_));
    }
    if (r.exitCode != expected) {
        panic("kernel %s (%s) returned %lld, reference says %lld",
              kernelName(kind_), mpc::variantName(variant_),
              static_cast<long long>(r.exitCode),
              static_cast<long long>(expected));
    }
    totals_.add(r.counters);
    return r.exitCode;
}

int64_t
KernelMachine::run(const AlignProblem &p)
{
    BP5_ASSERT(kind_ == KernelKind::ForwardPass ||
               kind_ == KernelKind::Dropgsw,
               "align problem on non-align kernel");
    DataWriter w(machine_.mem());
    uint64_t aPtr = w.codesOf(*p.a);
    uint64_t bPtr = w.codesOf(*p.b);
    uint64_t mPtr = w.matrix(*p.matrix);
    uint64_t vPtr = w.space((p.b->size() + 1) * 8);
    uint64_t fPtr = w.space((p.b->size() + 1) * 8);
    std::vector<int64_t> gp = {p.gap.open, p.gap.extend};
    uint64_t gpPtr = w.i64Array(gp);

    int64_t expected = kind_ == KernelKind::ForwardPass
                           ? refForwardPass(p)
                           : refDropgsw(p);
    return invoke({aPtr, p.a->size(), bPtr, p.b->size(), mPtr, vPtr,
                   fPtr, gpPtr},
                  expected);
}

int64_t
KernelMachine::run(const ViterbiProblem &p)
{
    BP5_ASSERT(kind_ == KernelKind::P7Viterbi,
               "viterbi problem on non-viterbi kernel");
    const bio::Plan7Model &m = *p.model;
    unsigned M = m.length();
    unsigned K = bio::alphabetSize(m.alphabet());
    DataWriter w(machine_.mem());

    auto widen = [&](auto getter) {
        std::vector<int64_t> v(M + 1);
        for (unsigned j = 0; j <= M; ++j)
            v[j] = getter(j);
        return v;
    };
    std::vector<int64_t> msc((M + 1) * K, 0);
    for (unsigned j = 1; j <= M; ++j) {
        for (unsigned x = 0; x < K; ++x)
            msc[j * K + x] = m.matchScore(j, x);
    }
    uint64_t mscP = w.i64Array(msc);
    uint64_t tmmP = w.i64Array(widen([&](unsigned j) { return m.tMM(j); }));
    uint64_t tmiP = w.i64Array(widen([&](unsigned j) { return m.tMI(j); }));
    uint64_t tmdP = w.i64Array(widen([&](unsigned j) { return m.tMD(j); }));
    uint64_t timP = w.i64Array(widen([&](unsigned j) { return m.tIM(j); }));
    uint64_t tiiP = w.i64Array(widen([&](unsigned j) { return m.tII(j); }));
    uint64_t tdmP = w.i64Array(widen([&](unsigned j) { return m.tDM(j); }));
    uint64_t tddP = w.i64Array(widen([&](unsigned j) { return m.tDD(j); }));
    uint64_t tbmP = w.i64Array(widen([&](unsigned j) { return m.tBM(j); }));
    uint64_t tmeP = w.i64Array(widen([&](unsigned j) { return m.tME(j); }));

    std::vector<int64_t> desc = {
        static_cast<int64_t>(M),
        static_cast<int64_t>(mscP), static_cast<int64_t>(tmmP),
        static_cast<int64_t>(tmiP), static_cast<int64_t>(tmdP),
        static_cast<int64_t>(timP), static_cast<int64_t>(tiiP),
        static_cast<int64_t>(tdmP), static_cast<int64_t>(tddP),
        static_cast<int64_t>(tbmP), static_cast<int64_t>(tmeP),
        m.insertScore(0, 0), static_cast<int64_t>(K),
    };
    // Re-order to the kernel's descriptor layout: M, msc, tmm, tmi,
    // tmd, tim, tii, tdm, tdd, tbm, tme, isc, K.
    uint64_t descP = w.i64Array(desc);
    uint64_t seqP = w.codesOf(*p.seq);
    uint64_t wsP = w.space(6 * (M + 1) * 8);

    int64_t expected = refViterbi(p);
    return invoke({descP, seqP, p.seq->size(), wsP}, expected);
}

int64_t
KernelMachine::run(const ExtendProblem &p)
{
    BP5_ASSERT(kind_ == KernelKind::SemiGAlign,
               "extend problem on non-extension kernel");
    DataWriter w(machine_.mem());
    uint64_t aPtr = w.codesOf(*p.a, p.aFrom);
    uint64_t bPtr = w.codesOf(*p.b, p.bFrom);
    uint64_t mPtr = w.matrix(*p.matrix);
    size_t alen = p.a->size() - p.aFrom;
    size_t blen = p.b->size() - p.bFrom;
    uint64_t vPtr = w.space((blen + 1) * 8);
    uint64_t fPtr = w.space((blen + 1) * 8);
    std::vector<int64_t> gp = {p.gap.open, p.gap.extend, p.xdrop};
    uint64_t gpPtr = w.i64Array(gp);

    int64_t expected = refSemiGAlign(p);
    return invoke({aPtr, alen, bPtr, blen, mPtr, vPtr, fPtr, gpPtr},
                  expected);
}

int64_t
KernelMachine::run(const SankoffProblem &p)
{
    BP5_ASSERT(kind_ == KernelKind::Sankoff,
               "sankoff problem on non-sankoff kernel");
    const bio::GuideTree &tree = *p.tree;
    unsigned K = p.cost->size();
    size_t numNodes = tree.nodes.size();
    BP5_ASSERT(tree.root == static_cast<int>(numNodes) - 1,
               "sankoff kernel expects the root to be the last node");

    DataWriter w(machine_.mem());
    std::vector<int64_t> recs;
    recs.reserve(numNodes * 3);
    for (const auto &nd : tree.nodes) {
        recs.push_back(nd.leaf >= 0 ? -1 : nd.left);
        recs.push_back(nd.leaf >= 0 ? -1 : nd.right);
        recs.push_back(nd.leaf >= 0
                           ? (*p.states)[static_cast<size_t>(nd.leaf)]
                           : 0);
    }
    uint64_t nodesP = w.i64Array(recs);
    std::vector<int64_t> costs(size_t(K) * K);
    for (unsigned a = 0; a < K; ++a) {
        for (unsigned b = 0; b < K; ++b)
            costs[size_t(a) * K + b] = p.cost->cost(a, b);
    }
    uint64_t costP = w.i64Array(costs);
    uint64_t workP = w.space(numNodes * K * 8);

    int64_t expected = refSankoff(p);
    return invoke({nodesP, numNodes, costP, workP, K}, expected);
}

} // namespace bp5::kernels
