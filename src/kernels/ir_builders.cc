/**
 * @file
 * IR builders for the four dynamic-programming kernels.  See
 * kernels.h for the modelling of branchy vs hand-annotated builds.
 *
 * Loops are built in rotated (do-while) form, as optimizing compilers
 * emit them: one backward conditional branch per iteration, taken on
 * every iteration but the last.  All kernels require non-empty inputs
 * (lengths >= 1); the runtime asserts this.
 */

#include "kernels/kernels.h"

#include "support/logging.h"

namespace bp5::kernels {

using mpc::Cond;
using mpc::Function;
using mpc::IrBuilder;
using mpc::VReg;

namespace {

/** "Minus infinity" used by the Viterbi and x-drop kernels. */
constexpr int64_t kNeg = -100000000;

/**
 * Emit `acc = max(acc, val)`.
 * Hand-annotated: a single max at the site the human identified.
 * Branchy: the C idiom `if (acc < val) acc = val` as a hammock.
 */
void
runningMax(IrBuilder &b, bool predicated, VReg acc, VReg val,
           const std::string &tag)
{
    if (predicated) {
        b.maxInto(acc, val);
        return;
    }
    int then = b.newBlock(tag + "_then");
    int join = b.newBlock(tag + "_join");
    b.br(Cond::LT, acc, val, then, join);
    b.setBlock(then);
    b.copyTo(acc, val);
    b.jump(join);
    b.setBlock(join);
}

/** Emit `acc = min(acc, val)` (predicated or as a branch hammock). */
void
runningMin(IrBuilder &b, bool predicated, VReg acc, VReg val,
           const std::string &tag)
{
    if (predicated) {
        b.minInto(acc, val);
        return;
    }
    int then = b.newBlock(tag + "_then");
    int join = b.newBlock(tag + "_join");
    b.br(Cond::GT, acc, val, then, join);
    b.setBlock(then);
    b.copyTo(acc, val);
    b.jump(join);
    b.setBlock(join);
}

/**
 * Close a rotated loop: increment the induction register and branch
 * back to @p body while `iv <= limit`.
 * @return the block id after the loop (the new current block).
 */
int
loopEnd(IrBuilder &b, VReg iv, VReg limit, int body,
        const std::string &tag)
{
    b.copyTo(iv, b.addi(iv, 1));
    int exit = b.newBlock(tag + "_exit");
    b.br(Cond::LE, iv, limit, body, exit);
    b.setBlock(exit);
    return exit;
}

/** Shared shape knobs for the two pairwise-alignment kernels. */
struct AlignKernelShape
{
    bool local;
    bool ePred, fPred, vPred, bestPred;
    bool fInMemory;
};

/**
 * Pairwise alignment kernel.
 * Args: 0 aPtr, 1 aLen, 2 bPtr, 3 bLen, 4 matPtr (int32 KxK),
 *       5 vPtr, 6 fPtr (int64 rows of bLen+1), 7 gpPtr {0:wg, 8:ws}.
 */
Function
buildAlignKernel(const char *name, const AlignKernelShape &s)
{
    Function fn;
    fn.name = name;
    IrBuilder b(fn);
    b.declareArgs(8);
    const VReg aPtr = 0, aLen = 1, bPtr = 2, bLen = 3, matPtr = 4,
               vPtr = 5, fPtr = 6, gpPtr = 7;

    int entry = b.newBlock("entry");
    b.setBlock(entry);
    VReg wg = b.load(gpPtr, 0);
    VReg ws = b.load(gpPtr, 8);
    VReg zero = b.iconst(0);
    VReg negWg = b.sub(zero, wg);
    b.store(zero, vPtr, 0); // V[0] = 0
    VReg j = b.iconst(1);

    // Row initialization (bLen >= 1).
    int init_body = b.newBlock("init_body");
    b.jump(init_body);
    b.setBlock(init_body);
    VReg joff0 = b.shli(j, 3);
    if (s.local) {
        b.storex(zero, vPtr, joff0);
        b.storex(negWg, fPtr, joff0);
    } else {
        VReg t = b.mul(j, ws);
        VReg t2 = b.add(t, wg);
        VReg edge = b.sub(zero, t2);
        b.storex(edge, vPtr, joff0);
        b.storex(edge, fPtr, joff0);
    }
    loopEnd(b, j, bLen, init_body, "init");

    VReg i = b.iconst(1);
    VReg best = b.iconst(0); // used by the local kernel only
    int outer_body = b.newBlock("outer_body");
    b.jump(outer_body);

    b.setBlock(outer_body);
    VReg im1 = b.addi(i, -1);
    VReg ai = b.loadx(aPtr, im1, 1, false);
    VReg arow = b.muli(ai, 80); // K=20 int32 entries per row
    VReg arowp = b.add(matPtr, arow);
    VReg vdiag = b.load(vPtr, 0);
    VReg e = b.fn().newReg();
    if (s.local) {
        b.copyTo(e, negWg);
    } else {
        VReg t = b.mul(i, ws);
        VReg t2 = b.add(t, wg);
        VReg rowEdge = b.sub(zero, t2);
        b.store(rowEdge, vPtr, 0);
        b.copyTo(e, rowEdge);
    }
    // The current row's V(i, j-1) is carried in a register, and the
    // byte offset of column j is strength-reduced (gcc -O2 shapes).
    VReg vprev = b.fn().newReg();
    if (s.local)
        b.copyTo(vprev, zero);
    else
        b.copyTo(vprev, e); // e holds the row edge value here
    VReg jj = b.iconst(1);
    VReg joff = b.iconst(8);
    VReg bidx = b.iconst(0);
    int inner_body = b.newBlock("inner_body");
    b.jump(inner_body);

    b.setBlock(inner_body);
    VReg bj = b.loadx(bPtr, bidx, 1, false);
    VReg boff = b.shli(bj, 2);
    VReg wsum = b.add(arowp, boff);
    VReg w = b.load(wsum, 0, 4, true); // int32 matrix entry

    // E(i,j) = max(E(i,j-1), V(i,j-1) - Wg) - Ws
    VReg t1 = b.sub(vprev, wg);
    runningMax(b, s.ePred, e, t1, "e");
    b.subInto(e, ws);

    // F(i,j) = max(F(i-1,j), V(i-1,j) - Wg) - Ws
    VReg vj = b.loadx(vPtr, joff);
    VReg t2f = b.sub(vj, wg);
    VReg f = b.fn().newReg();
    if (s.fInMemory) {
        // Clustalw-style through-memory update: both sides store to
        // F[j], so if-conversion must reject this diamond.
        VReg fold = b.loadx(fPtr, joff);
        int fthen = b.newBlock("f_then");
        int felse = b.newBlock("f_else");
        int fjoin = b.newBlock("f_join");
        b.br(Cond::LT, fold, t2f, fthen, felse);
        b.setBlock(fthen);
        b.storex(b.sub(t2f, ws), fPtr, joff);
        b.jump(fjoin);
        b.setBlock(felse);
        b.storex(b.sub(fold, ws), fPtr, joff);
        b.jump(fjoin);
        b.setBlock(fjoin);
        b.copyTo(f, b.loadx(fPtr, joff));
    } else {
        VReg fold = b.loadx(fPtr, joff);
        VReg facc = b.fn().newReg();
        b.copyTo(facc, fold);
        runningMax(b, s.fPred, facc, t2f, "f");
        b.copyTo(f, b.sub(facc, ws));
        b.storex(f, fPtr, joff);
    }

    // G and the consecutive max statements the paper highlights.
    VReg g = b.add(vdiag, w);
    b.copyTo(vdiag, vj);
    VReg v = b.fn().newReg();
    b.copyTo(v, e);
    runningMax(b, s.vPred, v, f, "vf");
    runningMax(b, s.vPred, v, g, "vg");
    if (s.local)
        runningMax(b, s.vPred, v, zero, "v0");
    b.storex(v, vPtr, joff);
    b.copyTo(vprev, v);
    if (s.local)
        runningMax(b, s.bestPred, best, v, "best");
    b.addiInto(joff, 8);
    b.addiInto(bidx, 1);
    loopEnd(b, jj, bLen, inner_body, "inner");
    loopEnd(b, i, aLen, outer_body, "outer");

    if (s.local) {
        b.ret(best);
    } else {
        VReg off = b.shli(bLen, 3);
        VReg res = b.loadx(vPtr, off);
        b.ret(res);
    }
    return fn;
}

/**
 * P7Viterbi.
 * Args: 0 descPtr, 1 seqPtr, 2 seqLen, 3 wsPtr.
 * Descriptor (int64 fields):
 *   [0]=M [8]=msc [16]=tmm [24]=tmi [32]=tmd [40]=tim [48]=tii
 *   [56]=tdm [64]=tdd [72]=tbm [80]=tme [88]=isc [96]=K
 * Workspace: 6 rows of (M+1) int64: pm pi pd cm ci cd.
 */
Function
buildViterbiKernel(bool hand)
{
    Function fn;
    fn.name = hand ? "P7Viterbi_hand" : "P7Viterbi";
    IrBuilder b(fn);
    b.declareArgs(4);
    const VReg desc = 0, seqPtr = 1, seqLen = 2, wsPtr = 3;

    int entry = b.newBlock("entry");
    b.setBlock(entry);
    VReg M = b.load(desc, 0);
    VReg msc = b.load(desc, 8);
    VReg tmm = b.load(desc, 16);
    VReg tmi = b.load(desc, 24);
    VReg tmd = b.load(desc, 32);
    VReg tim = b.load(desc, 40);
    VReg tii = b.load(desc, 48);
    VReg tdm = b.load(desc, 56);
    VReg tdd = b.load(desc, 64);
    VReg tbm = b.load(desc, 72);
    VReg tme = b.load(desc, 80);
    VReg isc = b.load(desc, 88);
    VReg K = b.load(desc, 96);

    VReg m1 = b.addi(M, 1);
    VReg rowBytes = b.shli(m1, 3);
    VReg rpm = b.fn().newReg(), rpi = b.fn().newReg(),
         rpd = b.fn().newReg();
    VReg rcm = b.fn().newReg(), rci = b.fn().newReg(),
         rcd = b.fn().newReg();
    b.copyTo(rpm, wsPtr);
    b.copyTo(rpi, b.add(rpm, rowBytes));
    b.copyTo(rpd, b.add(rpi, rowBytes));
    b.copyTo(rcm, b.add(rpd, rowBytes));
    b.copyTo(rci, b.add(rcm, rowBytes));
    b.copyTo(rcd, b.add(rci, rowBytes));

    VReg neg = b.iconst(kNeg);
    VReg best = b.fn().newReg();
    b.copyTo(best, neg);

    // Initialize the previous rows to -inf (M >= 1 so trip >= 2).
    VReg k0 = b.iconst(0);
    int ib = b.newBlock("vinit_body");
    b.jump(ib);
    b.setBlock(ib);
    VReg k0off = b.shli(k0, 3);
    b.storex(neg, rpm, k0off);
    b.storex(neg, rpi, k0off);
    b.storex(neg, rpd, k0off);
    loopEnd(b, k0, M, ib, "vinit");

    VReg i = b.iconst(0);
    VReg lm1 = b.addi(seqLen, -1);
    int obody = b.newBlock("vouter_body");
    b.jump(obody);

    b.setBlock(obody);
    VReg x = b.loadx(seqPtr, i, 1, false);
    b.store(neg, rcm, 0);
    b.store(neg, rci, 0);
    b.store(neg, rcd, 0);
    VReg k = b.iconst(1);
    VReg koff = b.iconst(8);
    // Match-emission pointer walks row-major: msc + x*8 + k*(K*8).
    VReg kb = b.shli(K, 3);
    VReg maddr = b.add(b.add(msc, b.shli(x, 3)), kb);
    int kbody = b.newBlock("vk_body");
    b.jump(kbody);

    b.setBlock(kbody);
    VReg km1off = b.addi(koff, -8);

    // Match state: the P7Viterbi four-way max.
    VReg mm = b.add(b.loadx(rpm, km1off), b.loadx(tmm, km1off));
    VReg ti = b.add(b.loadx(rpi, km1off), b.loadx(tim, km1off));
    runningMax(b, hand, mm, ti, "vm_i");
    VReg td = b.add(b.loadx(rpd, km1off), b.loadx(tdm, km1off));
    runningMax(b, hand, mm, td, "vm_d");
    VReg tb = b.loadx(tbm, koff);
    runningMax(b, hand, mm, tb, "vm_b");
    VReg mev = b.load(maddr, 0);
    b.addInto(mm, mev);
    b.storex(mm, rcm, koff);

    // Insert state.  HMMER2 updates imx[i][k] through memory; the
    // branchy build keeps that store-in-hammock diamond (which gcc
    // cannot if-convert), the hand build uses a register max.
    VReg i1v = b.add(b.loadx(rpm, koff), b.loadx(tmi, koff));
    VReg i2v = b.add(b.loadx(rpi, koff), b.loadx(tii, koff));
    if (hand) {
        VReg iv = b.max(i1v, i2v);
        b.storex(b.add(iv, isc), rci, koff);
    } else {
        int ithen = b.newBlock("vi_then");
        int ielse = b.newBlock("vi_else");
        int ijoin = b.newBlock("vi_join");
        b.br(Cond::GT, i2v, i1v, ithen, ielse);
        b.setBlock(ithen);
        b.storex(b.add(i2v, isc), rci, koff);
        b.jump(ijoin);
        b.setBlock(ielse);
        b.storex(b.add(i1v, isc), rci, koff);
        b.jump(ijoin);
        b.setBlock(ijoin);
    }

    // Delete state (current-row dependence on k-1).
    VReg dv = b.add(b.loadx(rcm, km1off), b.loadx(tmd, km1off));
    VReg d2 = b.add(b.loadx(rcd, km1off), b.loadx(tdd, km1off));
    runningMax(b, hand, dv, d2, "vd");
    b.storex(dv, rcd, koff);

    // End state / running best.
    VReg ev = b.add(mm, b.loadx(tme, koff));
    runningMax(b, hand, best, ev, "vbest");
    b.addiInto(koff, 8);
    b.addInto(maddr, kb);
    loopEnd(b, k, M, kbody, "vk");

    // Swap row pointers.
    VReg t = b.fn().newReg();
    b.copyTo(t, rpm);
    b.copyTo(rpm, rcm);
    b.copyTo(rcm, t);
    VReg t2 = b.fn().newReg();
    b.copyTo(t2, rpi);
    b.copyTo(rpi, rci);
    b.copyTo(rci, t2);
    VReg t3 = b.fn().newReg();
    b.copyTo(t3, rpd);
    b.copyTo(rpd, rcd);
    b.copyTo(rcd, t3);
    loopEnd(b, i, lm1, obody, "vouter");

    b.ret(best);
    return fn;
}

/**
 * SemiGAlign: forward x-drop gapped extension with the live-window
 * pruning of NCBI BLAST's gapped aligner.
 * Args: 0 aPtr, 1 aLen, 2 bPtr, 3 bLen, 4 matPtr, 5 vPtr, 6 fPtr,
 *       7 gpPtr {0:wg, 8:ws, 16:xd}.
 *
 * Per row, only columns [jLo, min(jHi+1, bLen)] are computed; cells
 * below best - xd are killed, and the row's surviving span becomes the
 * next window.  The window bookkeeping is the irregular control flow
 * that limits predication gains on Blast (paper VI-A): its nested
 * branches are not hammocks, so neither the hand rewrite nor the
 * compiler can remove them.  The hand build predicates the alignment
 * maxes except the F-row update (buried in a macro in the original
 * source); the compiler converts that one and the x-drop clamps too.
 */
Function
buildSemiGKernel(bool hand)
{
    Function fn;
    fn.name = hand ? "SEMI_G_ALIGN_hand" : "SEMI_G_ALIGN";
    IrBuilder b(fn);
    b.declareArgs(8);
    const VReg aPtr = 0, aLen = 1, bPtr = 2, bLen = 3, matPtr = 4,
               vPtr = 5, fPtr = 6, gpPtr = 7;

    int entry = b.newBlock("entry");
    b.setBlock(entry);
    VReg wg = b.load(gpPtr, 0);
    VReg ws = b.load(gpPtr, 8);
    VReg xd = b.load(gpPtr, 16);
    VReg zero = b.iconst(0);
    VReg one = b.iconst(1);
    VReg minus1 = b.iconst(-1);
    VReg neg = b.iconst(kNeg);
    VReg best = b.fn().newReg();
    b.copyTo(best, zero);
    VReg negXd = b.sub(zero, xd);
    b.store(zero, vPtr, 0);

    // Init row 0: V[j] = -wg - j*ws clamped by the x-drop, F[j] = neg.
    // jHi tracks the last surviving column.
    VReg jHi = b.fn().newReg();
    b.copyTo(jHi, zero);
    VReg j = b.iconst(1);
    int ib = b.newBlock("ginit_body");
    b.jump(ib);
    b.setBlock(ib);
    VReg t = b.mul(j, ws);
    VReg edge = b.sub(b.sub(zero, wg), t);
    {
        int cthen = b.newBlock("gic_then");
        int celse = b.newBlock("gic_else");
        int cjoin = b.newBlock("gic_join");
        b.br(Cond::LT, edge, negXd, cthen, celse);
        b.setBlock(cthen);
        b.copyTo(edge, neg);
        b.jump(cjoin);
        b.setBlock(celse);
        b.copyTo(jHi, j); // still alive: extend the initial window
        b.jump(cjoin);
        b.setBlock(cjoin);
    }
    VReg joff0 = b.shli(j, 3);
    b.storex(edge, vPtr, joff0);
    b.storex(neg, fPtr, joff0);
    loopEnd(b, j, bLen, ib, "ginit");

    VReg jLo = b.fn().newReg();
    b.copyTo(jLo, one);
    VReg i = b.iconst(1);
    int ohead = b.newBlock("gouter_head");
    b.jump(ohead);

    b.setBlock(ohead);
    // rowTop = min(jHi + 1, bLen); window vanished => done.
    VReg rowTop = b.addi(jHi, 1);
    {
        int mthen = b.newBlock("gmin_then");
        int mjoin = b.newBlock("gmin_join");
        b.br(Cond::GT, rowTop, bLen, mthen, mjoin);
        b.setBlock(mthen);
        b.copyTo(rowTop, bLen);
        b.jump(mjoin);
        b.setBlock(mjoin);
    }
    int obody = b.newBlock("gouter_body");
    int done = b.newBlock("gdone");
    b.br(Cond::LE, jLo, rowTop, obody, done);

    b.setBlock(obody);
    VReg im1 = b.addi(i, -1);
    VReg ai = b.loadx(aPtr, im1, 1, false);
    VReg arowp = b.add(matPtr, b.muli(ai, 80));
    VReg e = b.fn().newReg();
    b.copyTo(e, neg);
    VReg newLo = b.fn().newReg();
    b.copyTo(newLo, minus1);
    VReg newHi = b.fn().newReg();
    b.copyTo(newHi, minus1);

    // vdiag = V[jLo - 1] (read before cell 0 is overwritten).
    VReg jLom1 = b.addi(jLo, -1);
    VReg vdiag = b.loadx(vPtr, b.shli(jLom1, 3));

    // Cell (i, 0): leading gap in b, clamped like every other cell.
    VReg v0 = b.sub(b.sub(zero, wg), b.mul(i, ws));
    VReg lim0 = b.sub(best, xd);
    {
        int cthen = b.newBlock("g0_then");
        int cjoin = b.newBlock("g0_join");
        b.br(Cond::LT, v0, lim0, cthen, cjoin);
        b.setBlock(cthen);
        b.copyTo(v0, neg);
        b.jump(cjoin);
        b.setBlock(cjoin);
    }
    b.store(v0, vPtr, 0);
    {
        // Window bookkeeping for column 0 (jLo == 1 only).
        int chk = b.newBlock("g0_chk");
        int set = b.newBlock("g0_set");
        int skip = b.newBlock("g0_skip");
        b.br(Cond::EQ, jLo, one, chk, skip);
        b.setBlock(chk);
        b.br(Cond::GT, v0, neg, set, skip);
        b.setBlock(set);
        b.copyTo(newLo, zero);
        b.copyTo(newHi, zero);
        b.jump(skip);
        b.setBlock(skip);
    }

    VReg vprev = b.fn().newReg();
    b.copyTo(vprev, b.loadx(vPtr, b.shli(jLom1, 3)));
    VReg jj = b.fn().newReg();
    b.copyTo(jj, jLo);
    VReg joff = b.shli(jLo, 3);
    VReg bidx = b.fn().newReg();
    b.copyTo(bidx, jLom1);
    int kbody = b.newBlock("gk_body");
    b.jump(kbody);

    b.setBlock(kbody);
    VReg bj = b.loadx(bPtr, bidx, 1, false);
    VReg w = b.load(b.add(arowp, b.shli(bj, 2)), 0, 4, true);

    // e = max(e - ws, V[j-1] - wg - ws)
    b.subInto(e, ws);
    VReg t1 = b.sub(b.sub(vprev, wg), ws);
    runningMax(b, hand, e, t1, "ge");

    // f = max(F[j] - ws, V[j] - wg - ws); the human missed this one.
    VReg vj = b.loadx(vPtr, joff);
    VReg fold = b.loadx(fPtr, joff);
    VReg f = b.fn().newReg();
    b.copyTo(f, b.sub(fold, ws));
    VReg t2 = b.sub(b.sub(vj, wg), ws);
    runningMax(b, false, f, t2, "gf");
    b.storex(f, fPtr, joff);

    VReg g = b.add(vdiag, w);
    b.copyTo(vdiag, vj);
    VReg v = b.fn().newReg();
    b.copyTo(v, e);
    runningMax(b, hand, v, f, "gvf");
    runningMax(b, hand, v, g, "gvg");

    // x-drop clamp: if (v < best - xd) v = neg.
    VReg lim = b.sub(best, xd);
    {
        int cthen = b.newBlock("gc_then");
        int cjoin = b.newBlock("gc_join");
        b.br(Cond::LT, v, lim, cthen, cjoin);
        b.setBlock(cthen);
        b.copyTo(v, neg);
        b.jump(cjoin);
        b.setBlock(cjoin);
    }
    b.storex(v, vPtr, joff);
    b.copyTo(vprev, v);

    // Live-window bookkeeping: nested control flow, not a hammock.
    {
        int alive = b.newBlock("ga_alive");
        int setlo = b.newBlock("ga_setlo");
        int hibest = b.newBlock("ga_hibest");
        int cont = b.newBlock("ga_cont");
        b.br(Cond::GT, v, neg, alive, cont);
        b.setBlock(alive);
        b.br(Cond::LT, newLo, zero, setlo, hibest);
        b.setBlock(setlo);
        b.copyTo(newLo, jj);
        b.jump(hibest);
        b.setBlock(hibest);
        b.copyTo(newHi, jj);
        runningMax(b, false, best, v, "gbest");
        b.jump(cont);
        b.setBlock(cont);
    }
    b.addiInto(joff, 8);
    b.addiInto(bidx, 1);
    loopEnd(b, jj, rowTop, kbody, "gk");

    // Dead row ends the extension; otherwise shrink/advance the window.
    int live = b.newBlock("grow_live");
    b.br(Cond::LT, newLo, zero, done, live);
    b.setBlock(live);
    b.copyTo(jLo, newLo);
    runningMax(b, false, jLo, one, "gjlo"); // jLo = max(newLo, 1)
    b.copyTo(jHi, newHi);
    b.copyTo(i, b.addi(i, 1));
    int oend = b.newBlock("gouter_end");
    b.br(Cond::LE, i, aLen, ohead, oend);
    b.setBlock(oend);
    b.jump(done);

    b.setBlock(done);
    b.ret(best);
    return fn;
}

/**
 * Sankoff small parsimony, one site (the Phylip extension of the
 * paper's section VIII).
 * Args: 0 nodesPtr (3 int64 per node in post-order: left child index,
 *       right child index, leaf state; children are -1 for leaves),
 *       1 numNodes, 2 costPtr (K*K int64 row-major), 3 workPtr
 *       (numNodes*K int64), 4 K.
 * Returns min over root states; the root is the last node.
 */
Function
buildSankoffKernel(bool hand)
{
    Function fn;
    fn.name = hand ? "sankoff_hand" : "sankoff";
    IrBuilder b(fn);
    b.declareArgs(5);
    const VReg nodes = 0, numNodes = 1, costPtr = 2, workPtr = 3,
               K = 4;

    int entry = b.newBlock("entry");
    b.setBlock(entry);
    VReg big = b.iconst(1LL << 40);
    VReg zero = b.iconst(0);
    VReg rowBytes = b.shli(K, 3);
    VReg n = b.iconst(0);
    VReg nm1 = b.addi(numNodes, -1);

    int nbody = b.newBlock("s_node");
    b.jump(nbody);
    b.setBlock(nbody);
    VReg rec = b.add(nodes, b.muli(n, 24));
    VReg left = b.load(rec, 0);
    VReg right = b.load(rec, 8);
    VReg leafState = b.load(rec, 16);
    VReg dpn = b.add(workPtr, b.mul(n, rowBytes));

    int isLeaf = b.newBlock("s_leaf");
    int isInner = b.newBlock("s_inner");
    int nodeDone = b.newBlock("s_node_done");
    b.br(Cond::LT, left, zero, isLeaf, isInner);

    // Leaf: dp[n][s] = BIG except 0 at the observed state.
    b.setBlock(isLeaf);
    {
        VReg s0 = b.iconst(0);
        VReg off = b.iconst(0);
        int lbody = b.newBlock("s_leaf_fill");
        b.jump(lbody);
        b.setBlock(lbody);
        b.storex(big, dpn, off);
        b.addiInto(off, 8);
        b.copyTo(s0, b.addi(s0, 1));
        int lexit = b.newBlock("s_leaf_exit");
        b.br(Cond::LT, s0, K, lbody, lexit);
        b.setBlock(lexit);
        b.storex(zero, dpn, b.shli(leafState, 3));
        b.jump(nodeDone);
    }

    // Internal node: dp[n][s] = min_t(dpL[t]+w[s][t])
    //                          + min_t(dpR[t]+w[s][t]).
    b.setBlock(isInner);
    {
        VReg dl = b.add(workPtr, b.mul(left, rowBytes));
        VReg dr = b.add(workPtr, b.mul(right, rowBytes));
        VReg s0 = b.iconst(0);
        VReg soff = b.iconst(0);
        VReg crow = b.fn().newReg();
        b.copyTo(crow, costPtr);
        int sbody = b.newBlock("s_state");
        b.jump(sbody);
        b.setBlock(sbody);
        VReg bl = b.fn().newReg();
        b.copyTo(bl, big);
        VReg br2 = b.fn().newReg();
        b.copyTo(br2, big);
        VReg toff = b.iconst(0);
        VReg t0 = b.iconst(0);
        int tbody = b.newBlock("s_trans");
        b.jump(tbody);
        b.setBlock(tbody);
        VReg w = b.loadx(crow, toff);
        VReg cl = b.add(b.loadx(dl, toff), w);
        runningMin(b, hand, bl, cl, "s_minl");
        VReg cr = b.add(b.loadx(dr, toff), w);
        runningMin(b, hand, br2, cr, "s_minr");
        b.addiInto(toff, 8);
        b.copyTo(t0, b.addi(t0, 1));
        int texit = b.newBlock("s_trans_exit");
        b.br(Cond::LT, t0, K, tbody, texit);
        b.setBlock(texit);
        b.storex(b.add(bl, br2), dpn, soff);
        b.copyTo(crow, b.add(crow, rowBytes));
        b.addiInto(soff, 8);
        b.copyTo(s0, b.addi(s0, 1));
        int sexit = b.newBlock("s_state_exit");
        b.br(Cond::LT, s0, K, sbody, sexit);
        b.setBlock(sexit);
        b.jump(nodeDone);
    }

    b.setBlock(nodeDone);
    b.copyTo(n, b.addi(n, 1));
    int rootBlk = b.newBlock("s_root");
    b.br(Cond::LE, n, nm1, nbody, rootBlk);

    // Root: minimum over the last node's states.
    b.setBlock(rootBlk);
    VReg droot = b.add(workPtr, b.mul(nm1, rowBytes));
    VReg best = b.fn().newReg();
    b.copyTo(best, big);
    VReg roff = b.iconst(0);
    VReg r0 = b.iconst(0);
    int rbody = b.newBlock("s_root_scan");
    b.jump(rbody);
    b.setBlock(rbody);
    VReg v = b.loadx(droot, roff);
    runningMin(b, hand, best, v, "s_root_min");
    b.addiInto(roff, 8);
    b.copyTo(r0, b.addi(r0, 1));
    int rexit = b.newBlock("s_root_exit");
    b.br(Cond::LT, r0, K, rbody, rexit);
    b.setBlock(rexit);
    b.ret(best);
    return fn;
}

} // namespace

const char *
kernelName(KernelKind k)
{
    switch (k) {
      case KernelKind::ForwardPass: return "forward_pass";
      case KernelKind::Dropgsw: return "dropgsw";
      case KernelKind::P7Viterbi: return "P7Viterbi";
      case KernelKind::SemiGAlign: return "SEMI_G_ALIGN";
      case KernelKind::Sankoff: return "sankoff";
      default: return "?";
    }
}

const char *
kernelApp(KernelKind k)
{
    switch (k) {
      case KernelKind::ForwardPass: return "Clustalw";
      case KernelKind::Dropgsw: return "Fasta";
      case KernelKind::P7Viterbi: return "Hmmer";
      case KernelKind::SemiGAlign: return "Blast";
      case KernelKind::Sankoff: return "Phylip";
      default: return "?";
    }
}

mpc::Function
buildKernelIr(KernelKind k, bool hand)
{
    switch (k) {
      case KernelKind::ForwardPass: {
        // Clustalw: hand predicates everything; the branchy build
        // keeps the F row through memory (rejected by gcc).
        AlignKernelShape s;
        s.local = false;
        s.ePred = s.fPred = s.vPred = s.bestPred = hand;
        s.fInMemory = !hand;
        return buildAlignKernel(
            hand ? "forward_pass_hand" : "forward_pass", s);
      }
      case KernelKind::Dropgsw: {
        // Fasta: all hammocks are register-style (the compiler can
        // convert every one); the hand build misses the E/F updates.
        AlignKernelShape s;
        s.local = true;
        s.ePred = hand;
        s.fPred = false; // the update the human missed inside a macro
        s.vPred = hand;
        s.bestPred = hand;
        s.fInMemory = false;
        return buildAlignKernel(hand ? "dropgsw_hand" : "dropgsw", s);
      }
      case KernelKind::P7Viterbi:
        return buildViterbiKernel(hand);
      case KernelKind::SemiGAlign:
        return buildSemiGKernel(hand);
      case KernelKind::Sankoff:
        return buildSankoffKernel(hand);
      default:
        panic("bad kernel kind");
    }
}

mpc::Compiled
compileKernel(KernelKind k, mpc::Variant v, unsigned unrollFactor)
{
    mpc::Function fn = buildKernelIr(k, mpc::variantUsesHandIr(v));
    mpc::CompileOptions opts = mpc::optionsFor(v);
    opts.unrollFactor = unrollFactor;
    return mpc::compile(std::move(fn), opts);
}

} // namespace bp5::kernels
