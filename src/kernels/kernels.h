/**
 * @file
 * The hot dynamic-programming kernels of the paper (Fig 1) — plus
 * the Sankoff parsimony kernel of the section-VIII extension — as
 * mpc IR, plus the runtime bridge that executes them on the simulated
 * POWER5-class machine and validates results against the native bio
 * library.
 *
 * Each kernel has two IR builders:
 *
 *  - the *branchy* builder mirrors the applications' C code naively:
 *    max() statements are cmp+branch hammocks, and some updates go
 *    through memory exactly as the original sources do (Clustalw's F
 *    row, HMMER2's imx row).  Hammocks with stores or unprovable loads
 *    inside are what gcc's if-converter must reject (paper IV-B).
 *
 *  - the *hand* builder is the human rewrite: values held in
 *    registers, max() sites expressed directly as Max/Select IR at
 *    the sites a programmer identifies by inspection.  For Fasta and
 *    Blast the hand version deliberately leaves the less obvious
 *    hammocks (gap-row updates, x-drop bookkeeping) branchy, which is
 *    why the compiler beats the hand insertion there (paper VI-A).
 *
 * Kernel <-> application mapping (paper Fig 1):
 *   ForwardPass  - Clustalw forward_pass   (global NW, affine gaps)
 *   Dropgsw      - Fasta ssearch/dropgsw   (local SW, affine gaps)
 *   P7Viterbi    - Hmmer hmmpfam           (Plan7 Viterbi)
 *   SemiGAlign   - Blast blastp            (x-drop gapped extension)
 */

#ifndef BIOPERF5_KERNELS_KERNELS_H
#define BIOPERF5_KERNELS_KERNELS_H

#include <cstdint>
#include <memory>

#include "bio/align.h"
#include "bio/hmm.h"
#include "bio/parsimony.h"
#include "mpc/compiler.h"
#include "obs/pmu_sampler.h"
#include "obs/trace_mux.h"
#include "sim/machine.h"

namespace bp5::kernels {

/** The paper's four kernels. */
enum class KernelKind
{
    ForwardPass,
    Dropgsw,
    P7Viterbi,
    SemiGAlign,
    Sankoff, ///< extension: Phylip-class parsimony (paper section VIII)
    NUM_KERNELS,
};

/** Kernel function name as the applications name it. */
const char *kernelName(KernelKind k);

/** Application that owns the kernel (paper's workload names). */
const char *kernelApp(KernelKind k);

/**
 * Build the kernel's IR.
 * @param hand true for the hand-annotated builder
 */
mpc::Function buildKernelIr(KernelKind k, bool hand);

/** Compile kernel @p k in variant @p v (selects the right builder).
 *  @param unrollFactor counted-loop unroll factor (0/1 = off) */
mpc::Compiled compileKernel(KernelKind k, mpc::Variant v,
                            unsigned unrollFactor = 0);

// --------------------------------------------------------------------
// Problems: native-side descriptions of one kernel invocation.
// --------------------------------------------------------------------

/** Pairwise-alignment invocation (ForwardPass / Dropgsw). */
struct AlignProblem
{
    const bio::Sequence *a = nullptr;
    const bio::Sequence *b = nullptr;
    const bio::SubstitutionMatrix *matrix = nullptr;
    bio::GapPenalty gap{10, 1};
};

/** P7Viterbi invocation. */
struct ViterbiProblem
{
    const bio::Plan7Model *model = nullptr;
    const bio::Sequence *seq = nullptr;
};

/** Semi-gapped x-drop extension invocation (one direction, forward). */
struct ExtendProblem
{
    const bio::Sequence *a = nullptr; ///< query suffix from aFrom
    size_t aFrom = 0;
    const bio::Sequence *b = nullptr;
    size_t bFrom = 0;
    const bio::SubstitutionMatrix *matrix = nullptr;
    bio::GapPenalty gap{10, 1};
    int xdrop = 30;
};

/**
 * Sankoff small-parsimony invocation: one site of the Phylip-class
 * phylogeny workload (the paper's stated extension target).
 */
struct SankoffProblem
{
    const bio::GuideTree *tree = nullptr;
    const std::vector<uint8_t> *states = nullptr; ///< leaf states
    const bio::ParsimonyCost *cost = nullptr;
};

// --------------------------------------------------------------------
// Native references that the simulated kernels must match exactly.
// --------------------------------------------------------------------

/** Reference for ForwardPass: identical to bio::nwScore. */
int64_t refForwardPass(const AlignProblem &p);

/** Reference for Dropgsw: identical to bio::swScore. */
int64_t refDropgsw(const AlignProblem &p);

/** Reference for P7Viterbi (plain 64-bit adds, no saturation). */
int64_t refViterbi(const ViterbiProblem &p);

/**
 * Reference for SemiGAlign: full-row affine DP with per-cell x-drop
 * clamping and dead-row termination (the kernel's exact semantics;
 * see DESIGN.md for the relation to bio::semiGappedExtend).
 */
int64_t refSemiGAlign(const ExtendProblem &p);

/** Reference for Sankoff: bio::sankoffSite. */
int64_t refSankoff(const SankoffProblem &p);

// --------------------------------------------------------------------
// Simulated execution.
// --------------------------------------------------------------------

/**
 * A machine loaded with one compiled kernel.  Successive run() calls
 * keep branch predictors, BTAC and caches warm (like repeated calls
 * inside the real application); counters accumulate across calls.
 */
class KernelMachine
{
  public:
    KernelMachine(KernelKind kind, mpc::Variant variant,
                  const sim::MachineConfig &config,
                  unsigned unrollFactor = 0);

    KernelKind kind() const { return kind_; }
    mpc::Variant variant() const { return variant_; }
    const mpc::Compiled &compiled() const { return compiled_; }

    /**
     * Run one invocation with full timing; checks the result against
     * the native reference (panics on mismatch — the compiled kernel
     * would be silently wrong otherwise).
     * @return the kernel's score
     */
    int64_t run(const AlignProblem &p);
    int64_t run(const ViterbiProblem &p);
    int64_t run(const ExtendProblem &p);
    int64_t run(const SankoffProblem &p);

    /**
     * Return the machine to its just-constructed state: cold caches,
     * predictors and BTAC, zeroed counters and timeline, sampling off.
     * The compiled kernel stays loaded.  Lets a driver reuse one
     * KernelMachine across experiment points with results identical to
     * constructing a fresh one each time.
     */
    void reset();

    /** Counters accumulated over all run() calls. */
    const sim::Counters &totals() const { return totals_; }

    /** The underlying machine (cache/BTAC stats inspection). */
    const sim::Machine &machine() const { return machine_; }

    /**
     * Sample PMU counters every @p cycles cycles (0 = off) through an
     * internal obs::PmuSampler; the cycle axis is continuous across
     * run() calls.  @p site_series additionally records per-branch-site
     * deltas per window.  Replaces any previous sampler.
     */
    void setSampleInterval(uint64_t cycles, bool site_series = false);

    /** The internal sampler (nullptr when sampling is off). */
    const obs::PmuSampler *sampler() const { return sampler_.get(); }

    /**
     * Attach an external trace sink (Perfetto/Konata writer, ...) fed
     * alongside the internal sampler.  Non-owning; nullptr detaches.
     */
    void setTraceSink(sim::TraceSink *sink);

    /** Fig-2 style timeline from the sampler (empty when off). */
    std::vector<sim::IntervalSample> timeline() const
    {
        return sampler_ ? sampler_->timeline()
                        : std::vector<sim::IntervalSample>();
    }

    /** Run functionally only (fast, no cycle counts). */
    void setFunctionalOnly(bool f) { functionalOnly_ = f; }

    /**
     * SMARTS-style sampled timing for subsequent run() calls (see
     * sim::SamplingParams): detailed measurement windows separated by
     * warmed functional fast-forward.  Architectural counts in
     * totals() stay exact; cycle/event counters are window
     * extrapolations.  Cleared by reset().
     */
    void setSampling(const sim::SamplingParams &p)
    {
        machine_.setSampling(p);
    }

    /**
     * Toggle the pre-decoded execution engine (see
     * sim::Machine::setPredecode); reference mode for differential
     * tests.
     */
    void setPredecode(bool on) { machine_.setPredecode(on); }

    /**
     * Collect per-branch-site PMU counters (see sim::BranchProfile).
     * Accumulates across run() calls; cleared by reset().
     */
    void setBranchProfiling(bool on) { machine_.setBranchProfiling(on); }
    const sim::BranchProfile &branchProfile() const
    {
        return machine_.branchProfile();
    }

    /**
     * Collect the per-PC flat stall profile (see sim::StallProfile):
     * non-completing cycles charged to the blamed instruction address
     * by CpiComponent.  Accumulates across run() calls; cleared by
     * reset().
     */
    void setStallProfiling(bool on) { machine_.setStallProfiling(on); }
    const sim::StallProfile &stallProfile() const
    {
        return machine_.stallProfile();
    }

  private:
    int64_t invoke(const std::vector<uint64_t> &args, int64_t expected);
    void rewire();

    KernelKind kind_;
    mpc::Variant variant_;
    mpc::Compiled compiled_;
    sim::Machine machine_;
    sim::Counters totals_;
    std::unique_ptr<obs::PmuSampler> sampler_;
    sim::TraceSink *external_ = nullptr;
    obs::TraceMux mux_;
    bool functionalOnly_ = false;
};

/** Simulated-memory layout constants. */
constexpr uint64_t kCodeBase = 0x10000;
constexpr uint64_t kDataBase = 0x200000;
constexpr uint64_t kStackTop = 0x7f0000;

} // namespace bp5::kernels

#endif // BIOPERF5_KERNELS_KERNELS_H
