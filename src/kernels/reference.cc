/**
 * @file
 * Native reference implementations the simulated kernels must match
 * bit-for-bit.  ForwardPass and Dropgsw delegate to the bio library;
 * P7Viterbi and SemiGAlign re-state the kernels' exact arithmetic
 * (plain 64-bit adds, kNeg = -1e8 as minus infinity).
 */

#include "kernels/kernels.h"

#include <algorithm>
#include <vector>

#include "support/logging.h"

namespace bp5::kernels {

namespace {

constexpr int64_t kNeg = -100000000;

} // namespace

int64_t
refForwardPass(const AlignProblem &p)
{
    return bio::nwScore(*p.a, *p.b, *p.matrix, p.gap);
}

int64_t
refDropgsw(const AlignProblem &p)
{
    return bio::swScore(*p.a, *p.b, *p.matrix, p.gap);
}

int64_t
refViterbi(const ViterbiProblem &p)
{
    const bio::Plan7Model &m = *p.model;
    const bio::Sequence &seq = *p.seq;
    unsigned M = m.length();
    unsigned K = bio::alphabetSize(m.alphabet());

    std::vector<int64_t> pm(M + 1, kNeg), pi(M + 1, kNeg),
        pd(M + 1, kNeg);
    std::vector<int64_t> cm(M + 1), ci(M + 1), cd(M + 1);
    int64_t best = kNeg;

    for (size_t i = 0; i < seq.size(); ++i) {
        unsigned x = seq[i];
        cm[0] = ci[0] = cd[0] = kNeg;
        for (unsigned k = 1; k <= M; ++k) {
            int64_t mm = pm[k - 1] + m.tMM(k - 1);
            mm = std::max(mm, pi[k - 1] + m.tIM(k - 1));
            mm = std::max(mm, pd[k - 1] + m.tDM(k - 1));
            mm = std::max<int64_t>(mm, m.tBM(k));
            mm += m.matchScore(k, x);
            cm[k] = mm;

            ci[k] = std::max(pm[k] + m.tMI(k), pi[k] + m.tII(k)) +
                    m.insertScore(k, x);

            cd[k] = std::max(cm[k - 1] + m.tMD(k - 1),
                             cd[k - 1] + m.tDD(k - 1));

            best = std::max(best, mm + m.tME(k));
        }
        std::swap(pm, cm);
        std::swap(pi, ci);
        std::swap(pd, cd);
    }
    (void)K;
    return best;
}

int64_t
refSemiGAlign(const ExtendProblem &p)
{
    const bio::Sequence &a = *p.a;
    const bio::Sequence &b = *p.b;
    BP5_ASSERT(p.aFrom <= a.size() && p.bFrom <= b.size(),
               "seed out of range");
    int64_t alen = static_cast<int64_t>(a.size() - p.aFrom);
    int64_t blen = static_cast<int64_t>(b.size() - p.bFrom);
    int64_t wg = p.gap.open, ws = p.gap.extend, xd = p.xdrop;

    std::vector<int64_t> V(static_cast<size_t>(blen) + 1);
    std::vector<int64_t> F(static_cast<size_t>(blen) + 1, kNeg);
    int64_t best = 0;
    V[0] = 0;
    int64_t jHi = 0;
    for (int64_t j = 1; j <= blen; ++j) {
        int64_t edge = -wg - j * ws;
        if (edge < -xd)
            edge = kNeg;
        else
            jHi = j;
        V[static_cast<size_t>(j)] = edge;
    }

    int64_t jLo = 1;
    for (int64_t i = 1; i <= alen; ++i) {
        int64_t rowTop = std::min(jHi + 1, blen);
        if (jLo > rowTop)
            break;
        unsigned ai = a[p.aFrom + static_cast<size_t>(i) - 1];
        int64_t e = kNeg;
        int64_t newLo = -1, newHi = -1;
        int64_t vdiag = V[static_cast<size_t>(jLo - 1)];

        // Cell (i, 0).
        int64_t v0 = -wg - i * ws;
        if (v0 < best - xd)
            v0 = kNeg;
        V[0] = v0;
        if (jLo == 1 && v0 > kNeg) {
            newLo = 0;
            newHi = 0;
        }

        int64_t vprev = V[static_cast<size_t>(jLo - 1)];
        for (int64_t j = jLo; j <= rowTop; ++j) {
            size_t ju = static_cast<size_t>(j);
            unsigned bj = b[p.bFrom + ju - 1];
            int64_t w = p.matrix->score(ai, bj);
            e = std::max(e - ws, vprev - wg - ws);
            int64_t f = std::max(F[ju] - ws, V[ju] - wg - ws);
            F[ju] = f;
            int64_t g = vdiag + w;
            vdiag = V[ju];
            int64_t v = std::max(std::max(e, f), g);
            if (v < best - xd)
                v = kNeg;
            V[ju] = v;
            vprev = v;
            if (v > kNeg) {
                if (newLo < 0)
                    newLo = j;
                newHi = j;
                if (v > best)
                    best = v;
            }
        }
        if (newLo < 0)
            break;
        jLo = std::max<int64_t>(newLo, 1);
        jHi = newHi;
    }
    return best;
}

int64_t
refSankoff(const SankoffProblem &p)
{
    return bio::sankoffSite(*p.tree, *p.states, *p.cost);
}

} // namespace bp5::kernels
