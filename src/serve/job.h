/**
 * @file
 * The bp5-serve job model and wire protocol.
 *
 * A job names one kernel invocation: which kernel (or owning
 * application), which code variant, which machine configuration, and
 * a deterministic synthetic input (seed + problem scale, the same
 * substitution-for-BioPerf-inputs scheme the workloads use).  Jobs
 * travel as line-delimited JSON; one request line yields exactly one
 * response line:
 *
 *   {"id": 7, "kernel": "dropgsw", "variant": "comp. max",
 *    "machine": "baseline", "memsys": "lsq", "seed": 3, "n": 16}
 *   {"id": 7, "ok": true, "score": 64, "instructions": 9455,
 *    "cycles": 15210, "ipc": 0.62, "lat_us": 812.4, "shard": 2}
 *
 * Every field but "kernel" (or its alias "app") is optional; errors
 * come back as {"id": N, "ok": false, "error": "..."}.  Input
 * synthesis is pure in (kernel, seed, n), so a job's result is
 * bit-identical wherever it runs — the server pins that against
 * standalone KernelMachine runs in tests.
 */

#ifndef BIOPERF5_SERVE_JOB_H
#define BIOPERF5_SERVE_JOB_H

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "kernels/kernels.h"
#include "sim/config.h"
#include "sim/counters.h"

namespace bp5::serve {

/** One parsed job request. */
struct JobSpec
{
    uint64_t id = 0;
    kernels::KernelKind kind = kernels::KernelKind::Dropgsw;
    mpc::Variant variant = mpc::Variant::Baseline;
    sim::MachineConfig machine;
    uint64_t seed = 1;  ///< input-synthesis seed
    unsigned n = 16;    ///< problem scale (sequence length / sites)
};

/** One job outcome (also the wire response). */
struct JobResult
{
    uint64_t id = 0;
    bool ok = false;
    std::string error;       ///< set when !ok
    int64_t score = 0;       ///< kernel score (reference-checked)
    sim::Counters counters;  ///< exact per-invocation counters
    unsigned shard = 0;      ///< shard that served the job
    double latencyUs = 0.0;  ///< admission -> completion
    double serviceUs = 0.0;  ///< kernel execution only
};

/**
 * Parse one request line.  @return false with a one-line message in
 * @p err on malformed JSON, unknown names, or out-of-range values
 * (the daemon echoes the message back as the job's error response).
 */
bool parseJobLine(const std::string &line, JobSpec &out, std::string &err);

/** The response line for @p r, newline-terminated. */
std::string resultLine(const JobResult &r);

/** Convenience error response. */
JobResult errorResult(uint64_t id, std::string message);

/** Kernel-name / app-name lookup ("dropgsw", "fasta", ...). */
bool kernelFromName(const std::string &name, kernels::KernelKind &out);

/** Variant lookup with the paper's display names ("comp. max"). */
bool variantFromName(const std::string &name, mpc::Variant &out);

/** Machine-preset lookup (baseline|btac|fxu3|fxu4|enhanced). */
bool machineFromName(const std::string &name, sim::MachineConfig &out);

/** Memory-system overlay (classic|lsq|lsq+nextline|lsq+stride). */
bool memsysFromName(const std::string &name, sim::MachineConfig &mc);

/**
 * Deterministic synthetic inputs for job execution, cached by
 * (kernel, seed, n) — input generation (UPGMA trees, Plan7 model
 * fits) dwarfs small-kernel runtime, and serving streams repeat the
 * same input families, so each shard keeps one of these.  Not
 * thread-safe; use one per shard.
 */
class JobInputs
{
  public:
    JobInputs();
    ~JobInputs();

    /**
     * Run exactly one invocation of @p spec on @p km (which must be
     * built for spec.kind) and return the kernel score.  The machine
     * is used as-is: reset it first when per-job results must match a
     * fresh machine.
     */
    int64_t run(kernels::KernelMachine &km, const JobSpec &spec);

    /** Cached distinct (kernel, seed, n) input sets. */
    size_t cachedSets() const;

  private:
    struct InputSet;
    std::map<std::tuple<int, uint64_t, unsigned>,
             std::unique_ptr<InputSet>>
        cache_;
};

} // namespace bp5::serve

#endif // BIOPERF5_SERVE_JOB_H
