#include "serve/socket.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace bp5::serve {

namespace {

/** Fill a sockaddr_un for @p path; false when the path is too long. */
bool
makeAddr(const std::string &path, sockaddr_un &addr)
{
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        return false;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

UnixListener::~UnixListener()
{
    close();
}

bool
UnixListener::listen(const std::string &path, std::string &err)
{
    sockaddr_un addr;
    if (!makeAddr(path, addr)) {
        err = "bad socket path '" + path + "' (empty or too long)";
        return false;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    ::unlink(path.c_str()); // stale socket from a previous run
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        err = "bind " + path + ": " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    if (::listen(fd, 64) < 0) {
        err = "listen " + path + ": " + std::strerror(errno);
        ::close(fd);
        ::unlink(path.c_str());
        return false;
    }
    fd_ = fd;
    path_ = path;
    return true;
}

int
UnixListener::accept()
{
    if (fd_ < 0)
        return -1;
    for (;;) {
        int c = ::accept(fd_, nullptr, nullptr);
        if (c >= 0)
            return c;
        if (errno == EINTR)
            continue;
        return -1; // shut down or fatal
    }
}

void
UnixListener::close()
{
    if (fd_ < 0)
        return;
    ::shutdown(fd_, SHUT_RDWR); // unblocks accept()
    ::close(fd_);
    fd_ = -1;
    if (!path_.empty())
        ::unlink(path_.c_str());
}

int
unixConnect(const std::string &path, std::string &err)
{
    sockaddr_un addr;
    if (!makeAddr(path, addr)) {
        err = "bad socket path '" + path + "' (empty or too long)";
        return -1;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        err = "connect " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
LineReader::readLine(std::string &out)
{
    for (;;) {
        size_t nl = buf_.find('\n', pos_);
        if (nl != std::string::npos) {
            out.assign(buf_, pos_, nl - pos_);
            pos_ = nl + 1;
            if (pos_ == buf_.size()) {
                buf_.clear();
                pos_ = 0;
            }
            return true;
        }
        if (eof_) {
            if (pos_ < buf_.size()) { // unterminated trailer
                out.assign(buf_, pos_, buf_.size() - pos_);
                buf_.clear();
                pos_ = 0;
                return true;
            }
            return false;
        }
        char chunk[4096];
        ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            eof_ = true;
            continue;
        }
        if (n == 0) {
            eof_ = true;
            continue;
        }
        if (pos_ > 0) {
            buf_.erase(0, pos_);
            pos_ = 0;
        }
        buf_.append(chunk, size_t(n));
    }
}

bool
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += size_t(n);
    }
    return true;
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

} // namespace bp5::serve
