/**
 * @file
 * Bounded multi-producer/multi-consumer job queue with admission
 * control: producers either try-push (fail fast when the queue is at
 * capacity — the serving daemon turns that into a reject-with-error
 * response) or block until space frees (the offline file mode, where
 * backpressure is the right answer).  close() starts the drain phase:
 * new pushes fail immediately, consumers keep popping until the queue
 * is empty and then see end-of-stream, so in-flight work always
 * completes.
 */

#ifndef BIOPERF5_SERVE_QUEUE_H
#define BIOPERF5_SERVE_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

namespace bp5::serve {

/** Bounded MPMC FIFO; all operations are thread-safe. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

    size_t capacity() const { return capacity_; }

    /** Admission control: @return false (without blocking) when the
     *  queue is full or closed. */
    bool
    tryPush(T v)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || q_.size() >= capacity_)
                return false;
            q_.push_back(std::move(v));
        }
        notEmpty_.notify_one();
        return true;
    }

    /** Blocking push: waits for space; @return false once closed. */
    bool
    push(T v)
    {
        {
            std::unique_lock<std::mutex> lock(mu_);
            notFull_.wait(lock, [this] {
                return closed_ || q_.size() < capacity_;
            });
            if (closed_)
                return false;
            q_.push_back(std::move(v));
        }
        notEmpty_.notify_one();
        return true;
    }

    /** Blocking pop; @return false when closed and fully drained. */
    bool
    pop(T &out)
    {
        {
            std::unique_lock<std::mutex> lock(mu_);
            notEmpty_.wait(lock,
                           [this] { return closed_ || !q_.empty(); });
            if (q_.empty())
                return false; // closed and drained
            out = std::move(q_.front());
            q_.pop_front();
        }
        notFull_.notify_one();
        return true;
    }

    /**
     * Pop up to @p max items in one critical section (a service batch).
     * Blocks until at least one item is available; @return the number
     * popped, 0 when closed and fully drained.
     */
    size_t
    popBatch(std::vector<T> &out, size_t max)
    {
        size_t n = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            notEmpty_.wait(lock,
                           [this] { return closed_ || !q_.empty(); });
            while (n < max && !q_.empty()) {
                out.push_back(std::move(q_.front()));
                q_.pop_front();
                ++n;
            }
        }
        if (n)
            notFull_.notify_all();
        return n;
    }

    /** Start draining: pushes fail from now on, pops run the queue
     *  empty and then report end-of-stream. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return q_.size();
    }

  private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> q_;
    bool closed_ = false;
};

} // namespace bp5::serve

#endif // BIOPERF5_SERVE_QUEUE_H
