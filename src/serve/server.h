/**
 * @file
 * The bp5-serve scheduling core: a bounded job queue in front of a
 * sharded pool of reusable simulated machines.
 *
 * One shard per worker thread.  Each shard owns its KernelMachines —
 * one per (kernel, variant, machine config), recycled across jobs via
 * KernelMachine::reset(), whose reset-equivalence guarantee (tested
 * since PR 1) makes every job's counters bit-identical to a run on a
 * freshly constructed machine — plus a JobInputs synthesis cache.
 * Shards pull jobs in batches and stable-sort each batch by machine
 * key, so a stream mixing configurations amortizes the expensive part
 * (compiling a kernel for a config the shard has not seen) and keeps
 * same-config jobs consecutive.
 *
 * Admission control is reject-with-error: submit() fails fast when
 * the bounded queue is full (the daemon answers
 * {"ok": false, "error": "queue full ..."}), or can optionally block
 * for backpressure (offline file mode).  drain() closes the queue —
 * in-flight and already-admitted jobs complete, new work is rejected
 * — and then joins the shards; per-job latency (admission to
 * completion) and service-time histograms survive for reporting.
 */

#ifndef BIOPERF5_SERVE_SERVER_H
#define BIOPERF5_SERVE_SERVER_H

#include <chrono>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/job.h"
#include "serve/queue.h"
#include "support/histogram.h"
#include "support/result.h"
#include "support/thread_pool.h"

namespace bp5::serve {

struct ShardState; ///< shard-local machines + input caches (server.cc)

/** Server construction knobs. */
struct ServerConfig
{
    unsigned shards = 0;     ///< worker count; 0 = hardware concurrency
    size_t queueDepth = 1024; ///< bounded-queue capacity (admission)
    unsigned batchMax = 32;  ///< max jobs one shard pulls at once
    /** JSON-Lines manifest ("" = off): one record per service batch
     *  (a row per job, with counters, cpi_* cells and lat_us) plus a
     *  summary record at drain. */
    std::string manifestPath;
};

/** Aggregate server statistics (consistent snapshot via stats()). */
struct ServerStats
{
    uint64_t accepted = 0;  ///< admitted to the queue
    uint64_t rejected = 0;  ///< refused at admission (queue full/closed)
    uint64_t completed = 0; ///< jobs served (ok responses)
    uint64_t failed = 0;    ///< jobs that errored during service
    uint64_t batches = 0;   ///< service batches pulled by shards
    uint64_t configSwitches = 0; ///< machine-key changes within batches
};

/** Sharded batch server over reusable simulated machines. */
class Server
{
  public:
    /** Called on the serving shard's thread when a job finishes. */
    using ResultFn = std::function<void(const JobResult &)>;

    /** One queued unit: the job plus its completion plumbing. */
    struct Item
    {
        JobSpec spec;
        ResultFn done;
        std::chrono::steady_clock::time_point admitted;
    };

    explicit Server(const ServerConfig &config);

    /** Drains (if not already drained) and joins the shards. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    unsigned shards() const { return shards_; }
    const ServerConfig &config() const { return config_; }

    /**
     * Admit @p spec.  @return false when the queue is at capacity (or
     * the server is draining) — the job is *not* queued and @p done
     * will never be called; with @p block the call instead waits for
     * space (backpressure) and only fails once draining.
     */
    bool submit(const JobSpec &spec, ResultFn done, bool block = false);

    /**
     * Graceful shutdown: stop admitting, let every queued and
     * in-flight job complete, join the shards, then append the
     * summary manifest record.  Idempotent.
     */
    void drain();

    /** Consistent snapshot of the counters. */
    ServerStats stats() const;

    /** Admission-to-completion latency of served jobs (microseconds). */
    support::Log2Histogram latencyHistogram() const;

    /** Kernel-execution time of served jobs (microseconds). */
    support::Log2Histogram serviceHistogram() const;

    /**
     * The summary ResultRow drain() appends to the manifest
     * (throughput, latency percentiles); empty cells before drain().
     */
    support::ResultRow summaryRow() const;

  private:
    void shardMain(unsigned shard);
    void serveBatch(unsigned shard, ShardState &state,
                    std::vector<Item> &batch);

    ServerConfig config_;
    unsigned shards_;
    BoundedQueue<Item> queue_;
    support::ThreadPool pool_;
    std::thread runner_; ///< hosts the blocking shard parallelFor
    std::chrono::steady_clock::time_point started_;

    std::mutex drainMu_;    ///< serializes drain() callers
    mutable std::mutex mu_; ///< stats, histograms, manifest appends
    ServerStats stats_;
    support::Log2Histogram latencyUs_;
    support::Log2Histogram serviceUs_;
    support::ResultRow summary_;
    double drainWallSeconds_ = 0.0;
    bool drained_ = false;
};

} // namespace bp5::serve

#endif // BIOPERF5_SERVE_SERVER_H
