/**
 * @file
 * Minimal AF_UNIX stream-socket plumbing for the bp5-serve line
 * protocol: a listener (daemon side), a connector (clients: the load
 * generator, tests, shell one-liners via socat/nc), a buffered
 * line reader, and a write-everything helper.  Deliberately tiny —
 * no event loop, one thread per connection — because the expensive
 * resource here is simulated machines, not file descriptors.
 */

#ifndef BIOPERF5_SERVE_SOCKET_H
#define BIOPERF5_SERVE_SOCKET_H

#include <string>

namespace bp5::serve {

/** Listening Unix-domain stream socket (daemon side). */
class UnixListener
{
  public:
    UnixListener() = default;
    ~UnixListener();

    UnixListener(const UnixListener &) = delete;
    UnixListener &operator=(const UnixListener &) = delete;

    /**
     * Bind to @p path (an existing stale socket file is unlinked) and
     * listen.  @return false with a message in @p err on failure.
     */
    bool listen(const std::string &path, std::string &err);

    /**
     * Accept one connection (blocking).  @return the connection fd,
     * or -1 once the listener was shut down or on a fatal error.
     */
    int accept();

    /**
     * Unblock any accept() in progress and close the socket; safe to
     * call from another thread or a signal handler (only calls
     * async-signal-safe shutdown/close).  The socket file is
     * unlinked.  Idempotent.
     */
    void close();

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    std::string path_;
};

/**
 * Connect to the daemon at @p path.  @return the connected fd, or -1
 * with a message in @p err.
 */
int unixConnect(const std::string &path, std::string &err);

/** Buffered newline-delimited reader over a connected fd. */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    /**
     * Read the next '\n'-terminated line (terminator stripped).
     * @return false on EOF or error; a non-empty final line without a
     * terminator is returned before EOF is reported.
     */
    bool readLine(std::string &out);

  private:
    int fd_;
    std::string buf_;
    size_t pos_ = 0;
    bool eof_ = false;
};

/** Write all of @p data; @return false on error (EPIPE included). */
bool writeAll(int fd, const std::string &data);

/** Close @p fd (wrapper so callers stay header-clean). */
void closeFd(int fd);

} // namespace bp5::serve

#endif // BIOPERF5_SERVE_SOCKET_H
