#include "serve/server.h"

#include <algorithm>
#include <cinttypes>
#include <memory>

#include "obs/manifest.h"
#include "support/logging.h"

namespace bp5::serve {

/** Shard-local serving state: machines + input caches, untouched by
 *  any other thread. */
struct ShardState
{
    /**
     * One machine per (kernel, variant, machine config), recycled via
     * reset() — reset-equivalence makes reuse indistinguishable from
     * a fresh machine, which is what keeps per-job counters
     * bit-identical to standalone runs.
     */
    kernels::KernelMachine &
    machineFor(kernels::KernelKind kind, mpc::Variant variant,
               const sim::MachineConfig &mc)
    {
        for (Entry &e : machines) {
            if (e.kind == kind && e.variant == variant && e.config == mc) {
                e.km->reset();
                return *e.km;
            }
        }
        machines.push_back(
            {kind, variant, mc,
             std::make_unique<kernels::KernelMachine>(kind, variant, mc)});
        return *machines.back().km;
    }

    struct Entry
    {
        kernels::KernelKind kind;
        mpc::Variant variant;
        sim::MachineConfig config;
        std::unique_ptr<kernels::KernelMachine> km;
    };

    std::vector<Entry> machines;
    JobInputs inputs;
};

namespace {

/** Jobs with equal machine keys run consecutively on one machine. */
bool
sameMachineKey(const JobSpec &a, const JobSpec &b)
{
    return a.kind == b.kind && a.variant == b.variant &&
           a.machine == b.machine;
}

/**
 * Stable grouping by machine key (MachineConfig has no ordering, only
 * equality): first-appearance order of keys, original order within a
 * key.  Batches are small (batchMax), so the quadratic scan is noise
 * next to even one simulated invocation.
 */
void
groupByMachine(std::vector<size_t> &order,
               const std::vector<Server::Item> &batch)
{
    order.clear();
    std::vector<bool> placed(batch.size(), false);
    for (size_t i = 0; i < batch.size(); ++i) {
        if (placed[i])
            continue;
        for (size_t j = i; j < batch.size(); ++j) {
            if (!placed[j] &&
                sameMachineKey(batch[i].spec, batch[j].spec)) {
                order.push_back(j);
                placed[j] = true;
            }
        }
    }
}

} // namespace

Server::Server(const ServerConfig &config)
    : config_(config),
      shards_(config.shards
                  ? config.shards
                  : std::max(1u, std::thread::hardware_concurrency())),
      queue_(config.queueDepth ? config.queueDepth : 1),
      pool_(shards_),
      started_(std::chrono::steady_clock::now())
{
    runner_ = std::thread([this] {
        pool_.parallelFor(shards_, [this](unsigned, size_t shard) {
            shardMain(unsigned(shard));
        });
    });
}

Server::~Server()
{
    drain();
}

bool
Server::submit(const JobSpec &spec, ResultFn done, bool block)
{
    Item item{spec, std::move(done),
              std::chrono::steady_clock::now()};
    bool admitted = block ? queue_.push(std::move(item))
                          : queue_.tryPush(std::move(item));
    std::lock_guard<std::mutex> lock(mu_);
    if (admitted)
        ++stats_.accepted;
    else
        ++stats_.rejected;
    return admitted;
}

void
Server::shardMain(unsigned shard)
{
    ShardState state;
    std::vector<Item> batch;
    for (;;) {
        batch.clear();
        if (queue_.popBatch(batch, config_.batchMax) == 0)
            break; // drained
        serveBatch(shard, state, batch);
    }
}

void
Server::serveBatch(unsigned shard, ShardState &state,
                   std::vector<Item> &batch)
{
    std::vector<size_t> order;
    groupByMachine(order, batch);

    std::vector<JobResult> results(batch.size());
    std::vector<support::ResultRow> rows;
    uint64_t switches = 0;
    const JobSpec *prev = nullptr;

    for (size_t idx : order) {
        Item &item = batch[idx];
        const JobSpec &spec = item.spec;
        if (prev != nullptr && !sameMachineKey(*prev, spec))
            ++switches;
        prev = &spec;

        kernels::KernelMachine &km =
            state.machineFor(spec.kind, spec.variant, spec.machine);
        auto t0 = std::chrono::steady_clock::now();
        JobResult &r = results[idx];
        r.id = spec.id;
        r.shard = shard;
        r.score = state.inputs.run(km, spec);
        r.counters = km.totals();
        r.ok = true;
        auto t1 = std::chrono::steady_clock::now();
        r.serviceUs =
            std::chrono::duration<double, std::micro>(t1 - t0).count();
        r.latencyUs = std::chrono::duration<double, std::micro>(
                          t1 - item.admitted)
                          .count();

        if (!config_.manifestPath.empty()) {
            obs::RunInfo info;
            info.tool = "bp5-serve";
            info.workload = kernels::kernelName(spec.kind);
            info.variant = mpc::variantName(spec.variant);
            info.input = strprintf("n=%u seed=%" PRIu64, spec.n,
                                   spec.seed);
            info.invocations = 1;
            info.wallSeconds = r.serviceUs / 1e6;
            info.machine = spec.machine;
            info.counters = r.counters;
            support::ResultRow row = obs::manifestRow(info);
            row.set("kind", "job")
                .set("job_id", spec.id)
                .set("shard", shard)
                .set("lat_us", r.latencyUs, 1);
            rows.push_back(std::move(row));
        }
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.batches;
        stats_.configSwitches += switches;
        for (const JobResult &r : results) {
            if (r.ok)
                ++stats_.completed;
            else
                ++stats_.failed;
            latencyUs_.add(uint64_t(r.latencyUs));
            serviceUs_.add(uint64_t(r.serviceUs));
        }
        if (!rows.empty())
            obs::appendManifest(config_.manifestPath, rows,
                                "serve-manifest");
    }

    // Callbacks run outside the stats lock, in admission order within
    // the batch (not service order), so responses for one client read
    // naturally even when batching reorders execution.
    for (size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].done)
            batch[i].done(results[i]);
    }
}

void
Server::drain()
{
    std::lock_guard<std::mutex> drainLock(drainMu_);
    queue_.close();
    if (runner_.joinable())
        runner_.join();

    std::lock_guard<std::mutex> lock(mu_);
    if (drained_)
        return;
    drained_ = true;
    drainWallSeconds_ = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started_)
                            .count();

    summary_.set("tool", "bp5-serve")
        .set("kind", "summary")
        .set("shards", shards_)
        .set("queue_depth", uint64_t(config_.queueDepth))
        .set("batch_max", config_.batchMax)
        .set("accepted", stats_.accepted)
        .set("rejected", stats_.rejected)
        .set("completed", stats_.completed)
        .set("failed", stats_.failed)
        .set("batches", stats_.batches)
        .set("config_switches", stats_.configSwitches)
        .set("wall_s", drainWallSeconds_, 3)
        .set("jobs_per_s",
             drainWallSeconds_ > 0.0
                 ? double(stats_.completed) / drainWallSeconds_
                 : 0.0,
             1)
        .set("lat_p50_us", latencyUs_.percentile(50))
        .set("lat_p95_us", latencyUs_.percentile(95))
        .set("lat_p99_us", latencyUs_.percentile(99))
        .set("service_p50_us", serviceUs_.percentile(50))
        .set("service_p95_us", serviceUs_.percentile(95))
        .set("service_p99_us", serviceUs_.percentile(99));
    if (!config_.manifestPath.empty())
        obs::appendManifest(config_.manifestPath, {summary_},
                            "serve-summary");
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

support::Log2Histogram
Server::latencyHistogram() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return latencyUs_;
}

support::Log2Histogram
Server::serviceHistogram() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return serviceUs_;
}

support::ResultRow
Server::summaryRow() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return summary_;
}

} // namespace bp5::serve
