#include "serve/job.h"

#include <cctype>
#include <cinttypes>

#include "bio/clustal.h"
#include "bio/generator.h"
#include "bio/parsimony.h"
#include "obs/json.h"
#include "support/logging.h"

namespace bp5::serve {

namespace {

/** Case/punctuation-insensitive name form ("comp. isel" -> "compisel"). */
std::string
normalized(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += char(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

/** Minimal JSON string escape for protocol error messages. */
std::string
jsonEscape(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
    return out;
}

} // namespace

bool
kernelFromName(const std::string &name, kernels::KernelKind &out)
{
    std::string want = normalized(name);
    for (int k = 0; k < int(kernels::KernelKind::NUM_KERNELS); ++k) {
        auto kind = kernels::KernelKind(k);
        if (normalized(kernels::kernelName(kind)) == want ||
            normalized(kernels::kernelApp(kind)) == want) {
            out = kind;
            return true;
        }
    }
    return false;
}

bool
variantFromName(const std::string &name, mpc::Variant &out)
{
    std::string want = normalized(name);
    if (want == "baseline") {
        out = mpc::Variant::Baseline;
        return true;
    }
    for (int v = 0; v < int(mpc::Variant::NUM_VARIANTS); ++v) {
        if (normalized(mpc::variantName(mpc::Variant(v))) == want) {
            out = mpc::Variant(v);
            return true;
        }
    }
    return false;
}

bool
machineFromName(const std::string &name, sim::MachineConfig &out)
{
    std::string want = normalized(name);
    if (want == "baseline")
        out = sim::MachineConfig::power5Baseline();
    else if (want == "btac")
        out = sim::MachineConfig::power5WithBtac();
    else if (want == "fxu3")
        out = sim::MachineConfig::power5WithFxu(3);
    else if (want == "fxu4")
        out = sim::MachineConfig::power5WithFxu(4);
    else if (want == "enhanced")
        out = sim::MachineConfig::power5Enhanced();
    else
        return false;
    return true;
}

bool
memsysFromName(const std::string &name, sim::MachineConfig &mc)
{
    std::string want = normalized(name);
    if (want == "classic") {
        mc.memsys = sim::MemSysParams();
        return true;
    }
    if (want != "lsq" && want != "lsqnextline" && want != "lsqstride")
        return false;
    mc.memsys.mode = sim::MemSysParams::Mode::Lsq;
    if (want == "lsqnextline")
        mc.memsys.l1dPrefetch.kind = sim::PrefetchParams::Kind::NextLine;
    else if (want == "lsqstride")
        mc.memsys.l1dPrefetch.kind = sim::PrefetchParams::Kind::Stride;
    return true;
}

bool
parseJobLine(const std::string &line, JobSpec &out, std::string &err)
{
    obs::JsonValue doc;
    if (!obs::parseJson(line, doc, err))
        return false;
    if (!doc.isObject()) {
        err = "job is not a JSON object";
        return false;
    }

    out = JobSpec();
    bool haveKernel = false;
    for (const auto &[key, v] : doc.fields) {
        if (key == "id") {
            if (!v.isNumber() || v.number < 0) {
                err = "'id' must be a non-negative number";
                return false;
            }
            out.id = uint64_t(v.number);
        } else if (key == "kernel" || key == "app") {
            if (!v.isString() || !kernelFromName(v.str, out.kind)) {
                err = "unknown kernel/app '" +
                      (v.isString() ? v.str : std::string("?")) + "'";
                return false;
            }
            haveKernel = true;
        } else if (key == "variant") {
            if (!v.isString() || !variantFromName(v.str, out.variant)) {
                err = "unknown variant '" +
                      (v.isString() ? v.str : std::string("?")) + "'";
                return false;
            }
        } else if (key == "machine") {
            if (!v.isString() || !machineFromName(v.str, out.machine)) {
                err = "unknown machine '" +
                      (v.isString() ? v.str : std::string("?")) + "'";
                return false;
            }
        } else if (key == "memsys") {
            if (!v.isString() || !memsysFromName(v.str, out.machine)) {
                err = "unknown memsys '" +
                      (v.isString() ? v.str : std::string("?")) + "'";
                return false;
            }
        } else if (key == "seed") {
            if (!v.isNumber() || v.number < 0) {
                err = "'seed' must be a non-negative number";
                return false;
            }
            out.seed = uint64_t(v.number);
        } else if (key == "n") {
            if (!v.isNumber() || v.number < 2 || v.number > 4096) {
                err = "'n' must be a number in [2, 4096]";
                return false;
            }
            out.n = unsigned(v.number);
        } else {
            err = "unknown job field '" + key + "'";
            return false;
        }
    }
    if (!haveKernel) {
        err = "job is missing 'kernel' (or 'app')";
        return false;
    }
    return true;
}

JobResult
errorResult(uint64_t id, std::string message)
{
    JobResult r;
    r.id = id;
    r.ok = false;
    r.error = std::move(message);
    return r;
}

std::string
resultLine(const JobResult &r)
{
    if (!r.ok) {
        return strprintf("{\"id\": %" PRIu64 ", \"ok\": false, "
                         "\"error\": %s}\n",
                         r.id, jsonEscape(r.error).c_str());
    }
    return strprintf(
        "{\"id\": %" PRIu64 ", \"ok\": true, \"score\": %" PRId64
        ", \"instructions\": %" PRIu64 ", \"cycles\": %" PRIu64
        ", \"ipc\": %.2f, \"lat_us\": %.1f, \"service_us\": %.1f, "
        "\"shard\": %u}\n",
        r.id, r.score, r.counters.instructions, r.counters.cycles,
        r.counters.ipc(), r.latencyUs, r.serviceUs, r.shard);
}

// --------------------------------------------------------------------
// Input synthesis.
// --------------------------------------------------------------------

/** Everything one (kernel, seed, n) invocation points into. */
struct JobInputs::InputSet
{
    // Alignment kernels (ForwardPass / Dropgsw / SemiGAlign).
    bio::Sequence a;
    bio::Sequence b;
    // P7Viterbi.
    std::vector<bio::Sequence> fam;
    bio::Plan7Model model;
    // Sankoff.
    bio::GuideTree tree;
    std::vector<uint8_t> states;
    bio::ParsimonyCost cost = bio::ParsimonyCost::transitionTransversion();
};

JobInputs::JobInputs() = default;
JobInputs::~JobInputs() = default;

size_t
JobInputs::cachedSets() const
{
    return cache_.size();
}

int64_t
JobInputs::run(kernels::KernelMachine &km, const JobSpec &spec)
{
    BP5_ASSERT(km.kind() == spec.kind,
               "machine built for kernel %d, job wants %d",
               int(km.kind()), int(spec.kind));

    auto key = std::make_tuple(int(spec.kind), spec.seed, spec.n);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
        auto set = std::make_unique<InputSet>();
        switch (spec.kind) {
        case kernels::KernelKind::ForwardPass:
        case kernels::KernelKind::Dropgsw: {
            bio::SequenceGenerator g(spec.seed);
            set->a = g.random(spec.n, "a");
            set->b = g.mutate(set->a, bio::MutationModel{0.3, 0.05, 0.05},
                              "b");
            break;
        }
        case kernels::KernelKind::SemiGAlign: {
            bio::SequenceGenerator g(spec.seed);
            set->a = g.random(spec.n, "query");
            set->b = g.mutate(set->a,
                              bio::MutationModel{0.25, 0.04, 0.04},
                              "subject");
            break;
        }
        case kernels::KernelKind::P7Viterbi: {
            bio::SequenceGenerator g(spec.seed);
            set->fam =
                g.family(5, spec.n, bio::MutationModel{0.15, 0.02, 0.02});
            set->model = bio::Plan7Model::fromFamily(set->fam);
            break;
        }
        case kernels::KernelKind::Sankoff: {
            const size_t leaves = 8;
            bio::SequenceGenerator g(spec.seed, bio::Alphabet::Dna);
            set->fam = g.family(leaves, spec.n,
                                bio::MutationModel{0.2, 0.0, 0.0});
            auto dist = bio::pairwiseDistances(
                set->fam, bio::SubstitutionMatrix::dna(),
                bio::GapPenalty{10, 1});
            set->tree = bio::upgmaTree(dist);
            set->states.resize(leaves);
            size_t col = size_t(spec.seed) % spec.n;
            for (size_t i = 0; i < leaves; ++i)
                set->states[i] = set->fam[i][col];
            break;
        }
        default:
            panic("bad kernel kind %d", int(spec.kind));
        }
        it = cache_.emplace(key, std::move(set)).first;
    }

    InputSet &in = *it->second;
    switch (spec.kind) {
    case kernels::KernelKind::ForwardPass:
    case kernels::KernelKind::Dropgsw: {
        kernels::AlignProblem p{&in.a, &in.b,
                                &bio::SubstitutionMatrix::blosum62(),
                                bio::GapPenalty{10, 1}};
        return km.run(p);
    }
    case kernels::KernelKind::SemiGAlign: {
        kernels::ExtendProblem p{&in.a, 0, &in.b, 0,
                                 &bio::SubstitutionMatrix::blosum62(),
                                 bio::GapPenalty{10, 1}, 30};
        return km.run(p);
    }
    case kernels::KernelKind::P7Viterbi: {
        kernels::ViterbiProblem p{&in.model,
                                  &in.fam[spec.seed % in.fam.size()]};
        return km.run(p);
    }
    case kernels::KernelKind::Sankoff: {
        kernels::SankoffProblem p{&in.tree, &in.states, &in.cost};
        return km.run(p);
    }
    default:
        panic("bad kernel kind %d", int(spec.kind));
    }
}

} // namespace bp5::serve
