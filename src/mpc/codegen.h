/**
 * @file
 * mpc back end: IR lowering to MiniPOWER, naive linear-scan register
 * allocation with spilling, branch finalization.
 *
 * ABI: arguments arrive in r3..r10, the result is returned in r3, r1
 * is the stack pointer (spill slots grow downward), r11/r12/r0 are
 * reserved as spill scratch, and the compiled unit is a standalone
 * program that terminates with the SYS_EXIT system call carrying the
 * returned value.
 */

#ifndef BIOPERF5_MPC_CODEGEN_H
#define BIOPERF5_MPC_CODEGEN_H

#include <vector>

#include "isa/inst.h"
#include "mpc/ir.h"

namespace bp5::mpc {

/** Code-generation options (paper Fig 3 variants). */
struct CodegenOptions
{
    bool emitMax = false;  ///< lower max/min idioms to maxd/mind
    bool emitIsel = false; ///< lower selects to cmp+isel
};

/** Back-end statistics. */
struct CodegenStats
{
    unsigned numInsts = 0;
    unsigned spilledRegs = 0;
    unsigned maxEmitted = 0;   ///< maxd/mind instructions emitted
    unsigned iselEmitted = 0;
    unsigned branchesEmitted = 0; ///< conditional branches
};

/** Result of lowering a function. */
struct LoweredFunction
{
    std::vector<isa::Inst> insts;
    CodegenStats stats;
};

/**
 * Lower @p fn to a standalone MiniPOWER instruction sequence.
 * The function must verify().
 */
LoweredFunction lower(const Function &fn, const CodegenOptions &opts);

} // namespace bp5::mpc

#endif // BIOPERF5_MPC_CODEGEN_H
