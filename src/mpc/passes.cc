#include "mpc/passes.h"

#include <algorithm>
#include <map>
#include <set>

#include "support/logging.h"

namespace bp5::mpc {

IrOp
classifySelect(const IrInst &sel)
{
    if (sel.op != IrOp::Select)
        return IrOp::Select;
    bool fwd = sel.x == sel.a && sel.y == sel.b; // cond ? a : b
    bool rev = sel.x == sel.b && sel.y == sel.a; // cond ? b : a
    if (!fwd && !rev)
        return IrOp::Select;
    switch (sel.cond) {
      case Cond::LT:
      case Cond::LE:
        return fwd ? IrOp::Min : IrOp::Max;
      case Cond::GT:
      case Cond::GE:
        return fwd ? IrOp::Max : IrOp::Min;
      default:
        return IrOp::Select;
    }
}

namespace {

/** True if @p i may be executed speculatively (hoisted past a branch). */
bool
speculatable(const IrInst &i)
{
    switch (i.op) {
      case IrOp::Store: // side effect
      case IrOp::Div:   // may trap on a path that never executed it
      case IrOp::Br:
      case IrOp::Jump:
      case IrOp::Ret:
        return false;
      case IrOp::Load:
        return i.safe;
      default:
        return true;
    }
}

/**
 * A side block of a candidate hammock: single-predecessor, ends with
 * an unconditional jump, every instruction speculatable.
 */
struct Side
{
    int blk = -1;
    int join = -1;
    bool shapeOk = false;  ///< single-pred block ending in a jump
    bool unsafe = false;   ///< contains code that cannot speculate
    bool viable = false;   ///< shapeOk && !unsafe
    unsigned stores = 0;   ///< store instructions in the side
    int storeIdx = -1;     ///< index of the store when stores == 1
    bool mergeViable = false; ///< shapeOk, one store, rest speculatable
};

Side
analyzeSide(const Function &fn, int blk, int pred, unsigned maxInsts)
{
    Side s;
    s.blk = blk;
    const Block &b = fn.block(blk);
    if (!b.terminated() || b.terminator().op != IrOp::Jump)
        return s;
    s.join = b.terminator().tblk;
    auto preds = fn.predecessors(blk);
    if (preds.size() != 1 || preds[0] != pred)
        return s;
    if (b.insts.size() - 1 > maxInsts)
        return s;
    s.shapeOk = true;
    bool hardUnsafe = false;
    for (size_t k = 0; k + 1 < b.insts.size(); ++k) {
        const IrInst &i = b.insts[k];
        if (i.op == IrOp::Store) {
            ++s.stores;
            s.storeIdx = s.stores == 1 ? static_cast<int>(k) : -1;
        } else if (!speculatable(i)) {
            hardUnsafe = true;
        }
    }
    s.unsafe = hardUnsafe || s.stores > 0;
    s.viable = s.shapeOk && !s.unsafe;
    // Merging moves the store to the end of the fused arms, so it must
    // already be the arm's last real instruction (nothing in its own
    // arm observes memory after it).
    s.mergeViable = s.shapeOk && !hardUnsafe && s.stores == 1 &&
                    s.storeIdx == static_cast<int>(b.insts.size()) - 2;
    return s;
}

/** True when any instruction of @p b (excluding the terminator)
 *  writes @p r. */
bool
sideDefines(const Block &b, VReg r)
{
    if (r == kNoReg)
        return false;
    for (size_t k = 0; k + 1 < b.insts.size(); ++k) {
        const IrInst &i = b.insts[k];
        if (i.op != IrOp::Store && i.dst == r)
            return true;
    }
    return false;
}

/**
 * True when the two arms' stores hit provably the same address: same
 * base/index registers and displacement/size, with neither address
 * register redefined inside either arm (so both arms compute the
 * address from the values live at the branch).
 */
bool
storesMatch(const Function &fn, const Side &t, const Side &f)
{
    const Block &tb = fn.block(t.blk);
    const Block &fb = fn.block(f.blk);
    const IrInst &st = tb.insts[static_cast<size_t>(t.storeIdx)];
    const IrInst &sf = fb.insts[static_cast<size_t>(f.storeIdx)];
    if (st.a != sf.a || st.b != sf.b || st.imm != sf.imm ||
        st.size != sf.size)
        return false;
    for (VReg r : {st.a, st.b}) {
        if (sideDefines(tb, r) || sideDefines(fb, r))
            return false;
    }
    return true;
}

/**
 * Copy @p side's instructions into @p out with destination renaming.
 * Returns the final renamed value of every register the side defines
 * (in definition order) and records pure copies so selects can
 * reference the original source directly.  Stores are renamed but
 * collected separately — the caller either rejected the hammock or is
 * merging them into one unconditional store.
 */
struct RenamedSide
{
    std::vector<IrInst> code;
    std::vector<IrInst> stores; ///< renamed stores, excluded from code
    std::vector<std::pair<VReg, VReg>> finals; ///< (original, final value)
};

RenamedSide
renameSide(Function &fn, const Block &side)
{
    RenamedSide out;
    std::map<VReg, VReg> cur;      ///< original -> current renamed reg
    std::map<VReg, VReg> copyOf;   ///< renamed reg -> copied-from reg
    auto use = [&](VReg r) {
        auto it = cur.find(r);
        return it == cur.end() ? r : it->second;
    };
    for (size_t k = 0; k + 1 < side.insts.size(); ++k) {
        IrInst i = side.insts[k];
        i.a = i.a == kNoReg ? i.a : use(i.a);
        i.b = i.b == kNoReg ? i.b : use(i.b);
        i.x = i.x == kNoReg ? i.x : use(i.x);
        i.y = i.y == kNoReg ? i.y : use(i.y);
        if (i.op == IrOp::Store) {
            out.stores.push_back(i);
            continue;
        }
        VReg orig = i.dst;
        BP5_ASSERT(orig != kNoReg, "side inst without destination");
        VReg fresh = fn.newReg();
        i.dst = fresh;
        // Track pure copies (OrI/AddI with imm 0) for canonical selects.
        if ((i.op == IrOp::OrI || i.op == IrOp::AddI) && i.imm == 0)
            copyOf[fresh] = i.a;
        cur[orig] = fresh;
        out.code.push_back(i);
    }
    // Definition order of final values.
    std::vector<VReg> order;
    for (size_t k = 0; k + 1 < side.insts.size(); ++k) {
        if (side.insts[k].op == IrOp::Store)
            continue;
        VReg orig = side.insts[k].dst;
        if (std::find(order.begin(), order.end(), orig) == order.end())
            order.push_back(orig);
    }
    for (VReg orig : order) {
        VReg fin = cur[orig];
        // See through copy chains so max/min patterns stay visible.
        auto it = copyOf.find(fin);
        while (it != copyOf.end()) {
            fin = it->second;
            it = copyOf.find(fin);
        }
        out.finals.emplace_back(orig, fin);
    }
    return out;
}

} // namespace

IfConvertStats
ifConvert(Function &fn, const IfConvertOptions &opts)
{
    IfConvertStats stats;
    bool changed = true;
    bool counting = false; // rejections tallied in one final pass
    while (changed || !counting) {
        if (!changed)
            counting = true;
        changed = false;
        for (Block &a : fn.blocks) {
            if (!a.terminated() || a.terminator().op != IrOp::Br)
                continue;
            IrInst br = a.terminator();
            if (br.tblk == br.fblk)
                continue;

            Side t = analyzeSide(fn, br.tblk, a.id, opts.maxHammockInsts);
            Side f = analyzeSide(fn, br.fblk, a.id, opts.maxHammockInsts);

            bool triangle_t = t.viable && t.join == br.fblk;
            bool triangle_f = f.viable && f.join == br.tblk;
            bool diamond = t.viable && f.viable && t.join == f.join;
            // Store-merging: both arms end in one store to the same
            // proven address — some store always executes, so one
            // unconditional store of the selected value is sound.
            bool storeDiamond = opts.mergeStores && !opts.onlyMaxPatterns &&
                                !diamond && t.mergeViable &&
                                f.mergeViable && t.join == f.join &&
                                storesMatch(fn, t, f);

            if (!(triangle_t || triangle_f || diamond || storeDiamond)) {
                if (!counting)
                    continue;
                // Distinguish "the shape was a hammock but the code
                // inside may not speculate" from plain non-hammocks.
                bool tri_t_shape = t.shapeOk && t.join == br.fblk;
                bool tri_f_shape = f.shapeOk && f.join == br.tblk;
                bool dia_shape = t.shapeOk && f.shapeOk &&
                                 t.join == f.join;
                if ((tri_t_shape && t.unsafe) ||
                    (tri_f_shape && f.unsafe) ||
                    (dia_shape && (t.unsafe || f.unsafe))) {
                    ++stats.rejectedUnsafe;
                } else {
                    ++stats.rejectedShape;
                }
                continue;
            }
            // Build the replacement: renamed side code plus selects.
            std::vector<IrInst> newCode;
            std::vector<IrInst> selects;
            std::vector<IrInst> tailCode; ///< merged stores, after selects
            int join;
            Cond cond = br.cond;

            auto makeSelect = [&](VReg orig, VReg xval, VReg yval) {
                IrInst s;
                s.op = IrOp::Select;
                s.dst = orig;
                s.cond = cond;
                s.a = br.a;
                s.b = br.b;
                s.x = xval;
                s.y = yval;
                selects.push_back(s);
            };

            if (diamond || storeDiamond) {
                RenamedSide rt = renameSide(fn, fn.block(t.blk));
                RenamedSide rf = renameSide(fn, fn.block(f.blk));
                join = t.join;
                newCode = rt.code;
                newCode.insert(newCode.end(), rf.code.begin(),
                               rf.code.end());
                std::set<VReg> all;
                for (auto &[o, v] : rt.finals)
                    all.insert(o);
                for (auto &[o, v] : rf.finals)
                    all.insert(o);
                auto finalOf = [](const RenamedSide &r, VReg o,
                                  VReg dflt) {
                    for (auto &[orig, v] : r.finals)
                        if (orig == o)
                            return v;
                    return dflt;
                };
                for (VReg o : all)
                    makeSelect(o, finalOf(rt, o, o), finalOf(rf, o, o));
                if (storeDiamond) {
                    // select the stored value, store it once.
                    IrInst stT = rt.stores[0];
                    IrInst stF = rf.stores[0];
                    IrInst sel;
                    sel.op = IrOp::Select;
                    sel.dst = fn.newReg();
                    sel.cond = cond;
                    sel.a = br.a;
                    sel.b = br.b;
                    sel.x = stT.x;
                    sel.y = stF.x;
                    IrInst merged = stT; // address regs proven equal
                    merged.x = sel.dst;
                    tailCode.push_back(sel);
                    tailCode.push_back(merged);
                }
            } else if (triangle_t) {
                RenamedSide rt = renameSide(fn, fn.block(t.blk));
                join = br.fblk;
                newCode = rt.code;
                for (auto &[o, v] : rt.finals)
                    makeSelect(o, v, o);
            } else { // triangle_f: code runs when the condition is false
                RenamedSide rf = renameSide(fn, fn.block(f.blk));
                join = br.tblk;
                newCode = rf.code;
                for (auto &[o, v] : rf.finals)
                    makeSelect(o, o, v);
            }

            if (opts.onlyMaxPatterns) {
                // Model gcc's pattern matcher: every select must reduce
                // to a max/min and the side code must be pure copies
                // feeding those selects.
                bool ok = !selects.empty();
                for (const IrInst &s : selects) {
                    if (classifySelect(s) == IrOp::Select)
                        ok = false;
                }
                for (const IrInst &i : newCode) {
                    bool is_copy = (i.op == IrOp::OrI ||
                                    i.op == IrOp::AddI) && i.imm == 0;
                    if (!is_copy)
                        ok = false;
                }
                if (!ok) {
                    if (counting)
                        ++stats.rejectedPattern;
                    continue;
                }
            }
            if (counting)
                continue; // converged: rejections only

            // Splice: side code + selects (+ merged store) replace the
            // branch; fall through to the join block.
            a.insts.pop_back(); // the Br
            for (IrInst &i : newCode)
                a.insts.push_back(i);
            for (IrInst &s : selects)
                a.insts.push_back(s);
            for (IrInst &i : tailCode)
                a.insts.push_back(i);
            IrInst j;
            j.op = IrOp::Jump;
            j.tblk = join;
            a.insts.push_back(j);

            ++stats.converted;
            if (storeDiamond)
                ++stats.mergedStores;
            changed = true;
        }
    }
    return stats;
}

void
removeUnreachableBlocks(Function &fn)
{
    std::vector<bool> reach(fn.blocks.size(), false);
    std::vector<int> work{0};
    reach[0] = true;
    while (!work.empty()) {
        int b = work.back();
        work.pop_back();
        for (int s : fn.successors(b)) {
            if (!reach[static_cast<size_t>(s)]) {
                reach[static_cast<size_t>(s)] = true;
                work.push_back(s);
            }
        }
    }
    // Compact while preserving ids via a remap table.
    std::vector<int> remap(fn.blocks.size(), -1);
    std::vector<Block> kept;
    for (size_t i = 0; i < fn.blocks.size(); ++i) {
        if (reach[i]) {
            remap[i] = static_cast<int>(kept.size());
            kept.push_back(std::move(fn.blocks[i]));
        }
    }
    for (Block &b : kept) {
        b.id = remap[static_cast<size_t>(b.id)];
        if (!b.insts.empty()) {
            IrInst &t = b.insts.back();
            if (t.op == IrOp::Br) {
                t.tblk = remap[static_cast<size_t>(t.tblk)];
                t.fblk = remap[static_cast<size_t>(t.fblk)];
            } else if (t.op == IrOp::Jump) {
                t.tblk = remap[static_cast<size_t>(t.tblk)];
            }
        }
    }
    fn.blocks = std::move(kept);
}

unsigned
deadCodeElim(Function &fn)
{
    unsigned removed = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        std::set<VReg> used;
        for (const Block &b : fn.blocks) {
            for (const IrInst &i : b.insts) {
                for (VReg r : {i.a, i.b, i.x, i.y}) {
                    if (r != kNoReg)
                        used.insert(r);
                }
                // Select with dst==y implicitly reads dst.
                if (i.op == IrOp::Select && i.y == i.dst)
                    used.insert(i.dst);
            }
        }
        for (Block &b : fn.blocks) {
            auto keep = [&](const IrInst &i) {
                if (i.isTerminator() || i.hasSideEffect())
                    return true;
                if (i.dst == kNoReg)
                    return true;
                return used.count(i.dst) > 0;
            };
            size_t before = b.insts.size();
            b.insts.erase(
                std::remove_if(b.insts.begin(), b.insts.end(),
                               [&](const IrInst &i) { return !keep(i); }),
                b.insts.end());
            if (b.insts.size() != before) {
                removed += static_cast<unsigned>(before - b.insts.size());
                changed = true;
            }
        }
    }
    return removed;
}

} // namespace bp5::mpc
