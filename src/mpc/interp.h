/**
 * @file
 * Reference interpreter for mpc IR.  Executes a Function directly on
 * 64-bit virtual registers and a sim::Memory, independent of the
 * compiler back end — the oracle for differential testing of the
 * whole pipeline (passes + register allocation + codegen + the
 * functional simulator).
 */

#ifndef BIOPERF5_MPC_INTERP_H
#define BIOPERF5_MPC_INTERP_H

#include <cstdint>
#include <vector>

#include "mpc/ir.h"
#include "sim/memory.h"

namespace bp5::mpc {

/** Outcome of interpreting a function. */
struct InterpResult
{
    int64_t value = 0;      ///< Ret operand (0 for bare ret)
    uint64_t steps = 0;     ///< IR instructions executed
    bool finished = false;  ///< false if the step limit was hit
};

/**
 * Interpret @p fn with @p args (bound to virtual registers 0..n-1),
 * reading and writing @p mem for Load/Store.
 * @param max_steps abort knob for runaway loops
 */
InterpResult interpret(const Function &fn,
                       const std::vector<int64_t> &args,
                       sim::Memory &mem,
                       uint64_t max_steps = 100'000'000);

} // namespace bp5::mpc

#endif // BIOPERF5_MPC_INTERP_H
