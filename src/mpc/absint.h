/**
 * @file
 * IR-level abstract interpretation for the mpc pipeline (DESIGN.md
 * §4.9).  Two analyses live here:
 *
 *  - value ranges: a flow-sensitive interval per virtual register at
 *    every block entry, with widening and branch-edge refinement.
 *    Consumers: trip-count analysis (loops.h) and the unroll pass's
 *    overflow legality check.
 *
 *  - must-accessed addresses: a forward intersection dataflow whose
 *    facts are canonical address expressions (base vreg + index vreg +
 *    displacement, size) that were loaded or stored on *every* path to
 *    a program point, with facts killed when a named register is
 *    redefined.  If an address was dereferenced on every path already,
 *    dereferencing it again cannot fault — this is the dominating-
 *    access argument compilers use to speculate loads.
 *
 * proveSafeLoads() applies the second analysis to set the `safe` bit
 * on every load it can prove, replacing the hand-written annotations
 * the if-converter previously had to trust.
 */

#ifndef BIOPERF5_MPC_ABSINT_H
#define BIOPERF5_MPC_ABSINT_H

#include <vector>

#include "analysis/interval.h"
#include "mpc/ir.h"

namespace bp5::mpc {

using analysis::Interval;

// --------------------------------------------------------------------
// Value ranges.
// --------------------------------------------------------------------

/** Per-block-entry register intervals (indexed [block][vreg]). */
struct ValueRanges
{
    std::vector<std::vector<Interval>> in;

    /** Interval of @p r at the entry of @p blk. */
    const Interval &
    at(int blk, VReg r) const
    {
        return in[static_cast<size_t>(blk)][static_cast<size_t>(r)];
    }
};

/**
 * Run the interval analysis to fixpoint.  Argument registers start at
 * top, every other register at bottom; bounds that keep moving widen
 * to infinity after a few visits.
 */
ValueRanges valueRanges(const Function &fn);

// --------------------------------------------------------------------
// Must-accessed addresses.
// --------------------------------------------------------------------

/** A canonical address expression: base + index + disp, @p size bytes
 *  proven dereferenceable.  Register order is normalized so (a, b) and
 *  (b, a) compare equal. */
struct AddrFact
{
    VReg base = kNoReg;
    VReg index = kNoReg; ///< kNoReg when absent
    int64_t disp = 0;
    unsigned size = 0;

    bool operator<(const AddrFact &o) const
    {
        if (base != o.base)
            return base < o.base;
        if (index != o.index)
            return index < o.index;
        return disp < o.disp;
    }
    bool operator==(const AddrFact &o) const
    {
        return base == o.base && index == o.index && disp == o.disp &&
               size == o.size;
    }
    bool
    sameAddress(const AddrFact &o) const
    {
        return base == o.base && index == o.index && disp == o.disp;
    }
};

/** Canonical fact for a Load/Store instruction. */
AddrFact addrFactOf(const IrInst &i);

/** Sorted fact set per block entry; a block that intersects nothing
 *  yet (unvisited in the must-dataflow) is conceptually "all facts". */
struct MustAccess
{
    std::vector<std::vector<AddrFact>> in;

    /**
     * True when accessing @p size bytes at @p f is covered by the
     * facts in @p set: some fact with the same base+index spans
     * [f.disp, f.disp + size).
     */
    static bool covered(const std::vector<AddrFact> &set,
                        const AddrFact &f, unsigned size);
};

MustAccess mustAccessedAddresses(const Function &fn);

/** Outcome of the safety pre-pass. */
struct ProveStats
{
    unsigned candidates = 0;   ///< loads examined
    unsigned alreadySafe = 0;  ///< annotated safe before the pass
    unsigned proved = 0;       ///< safe bits newly set by the proof
};

/**
 * Set `safe` on every load whose address is must-accessed at its own
 * program point.  Sound by the dominating-access argument; never
 * clears an existing annotation.
 */
ProveStats proveSafeLoads(Function &fn);

} // namespace bp5::mpc

#endif // BIOPERF5_MPC_ABSINT_H
