/**
 * @file
 * Natural-loop detection over mpc IR with induction-variable and
 * trip-count analysis (DESIGN.md §4.9).  The kernels' loops are all
 * rotated do-while loops (`bdy: ...; iv += step; br cond iv, limit,
 * bdy, exit`), which is the shape the unroll pass (passes.h) consumes;
 * this analysis also recognizes the general dominator-based definition
 * so irreducible or multi-latch regions are reported rather than
 * silently skipped.
 */

#ifndef BIOPERF5_MPC_LOOPS_H
#define BIOPERF5_MPC_LOOPS_H

#include <cstdint>
#include <string>
#include <vector>

#include "mpc/ir.h"

namespace bp5::mpc {

/** One natural loop. */
struct IrLoop
{
    int header = -1;
    std::vector<int> latches; ///< blocks with a back edge to header
    std::vector<int> blocks;  ///< loop body incl. header, sorted
    std::vector<int> exits;   ///< in-loop blocks with an edge out

    /** Rotated-counted-loop facts (valid when hasCountedShape). */
    bool hasCountedShape = false;
    VReg iv = kNoReg;      ///< the stepped register
    int64_t step = 0;      ///< per-iteration increment (> 0)
    VReg limit = kNoReg;   ///< loop-invariant bound register
    Cond cond = Cond::LE;  ///< continue while `iv cond limit`

    /** Body executions when init and limit are compile-time constants;
     *  -1 when unknown. */
    int64_t tripCount = -1;

    bool
    contains(int blk) const
    {
        for (int b : blocks)
            if (b == blk)
                return true;
        return false;
    }
};

/** Loop forest of a function. */
struct IrLoopForest
{
    std::vector<IrLoop> loops; ///< outermost-first per nest

    /** True if @p inner's blocks are a strict subset of @p outer's. */
    static bool nestedIn(const IrLoop &inner, const IrLoop &outer);

    std::string dump(const Function &fn) const;
};

/** Immediate-dominator tree (idom[0] == 0; unreachable blocks -1). */
std::vector<int> dominators(const Function &fn);

/** Find all natural loops of @p fn. */
IrLoopForest findLoops(const Function &fn);

} // namespace bp5::mpc

#endif // BIOPERF5_MPC_LOOPS_H
