/**
 * @file
 * Intermediate representation of the mini-POWER compiler (mpc).
 *
 * The IR is a conventional CFG of basic blocks over mutable virtual
 * registers (not SSA).  Branches are fused compare-and-branch ops, and
 * the predication primitives the paper studies are first-class:
 * Select (lowered to cmp+isel), and Max/Min (lowered to the
 * hypothetical single-cycle max/min instructions when enabled).
 *
 * Loads carry a `safe` bit meaning "may be executed speculatively":
 * the if-conversion pass may only hoist a load past a branch when the
 * bit is set.  Kernel builders set it where a compiler could prove
 * safety (see paper section IV-B for the cases gcc cannot prove).
 */

#ifndef BIOPERF5_MPC_IR_H
#define BIOPERF5_MPC_IR_H

#include <cstdint>
#include <string>
#include <vector>

namespace bp5::mpc {

/** Virtual register id. */
using VReg = int32_t;
constexpr VReg kNoReg = -1;

/** Comparison conditions (signed). */
enum class Cond : uint8_t { LT, LE, GT, GE, EQ, NE };

/** Negate a condition. */
Cond negate(Cond c);

/** IR operations. */
enum class IrOp : uint8_t
{
    Const,  ///< dst = imm
    Add, Sub, Mul, Div,        ///< dst = a op b
    And, Or, Xor,
    Shl, Shr, Sar,             ///< shifts by register amount
    AddI, MulI, AndI, OrI,     ///< dst = a op imm
    ShlI, ShrI, SraI,          ///< shifts by constant amount
    Load,   ///< dst = mem[base (+ index) + disp]
    Store,  ///< mem[base (+ index) + disp] = a
    Select, ///< dst = (a cond b) ? x : y
    Max,    ///< dst = max(a, b) (signed)
    Min,    ///< dst = min(a, b) (signed)
    Br,     ///< if (a cond b) goto tblk else fblk
    Jump,   ///< goto tblk
    Ret,    ///< return a (or nothing)
};

/** One IR instruction. */
struct IrInst
{
    IrOp op;
    VReg dst = kNoReg;
    VReg a = kNoReg;
    VReg b = kNoReg;
    VReg x = kNoReg;       ///< Select: value if condition true
    VReg y = kNoReg;       ///< Select: value if condition false
    int64_t imm = 0;       ///< Const / *I ops / Load/Store displacement
    Cond cond = Cond::LT;  ///< Br / Select
    uint8_t size = 8;      ///< Load/Store access size (1/2/4/8)
    bool isSigned = true;  ///< Load sign extension
    bool safe = false;     ///< Load may be speculated (if-conversion)
    int tblk = -1;         ///< Br/Jump: target block id
    int fblk = -1;         ///< Br: fall-through block id

    bool isTerminator() const
    {
        return op == IrOp::Br || op == IrOp::Jump || op == IrOp::Ret;
    }
    bool hasSideEffect() const { return op == IrOp::Store; }
};

/** A basic block: straight-line instructions + one terminator. */
struct Block
{
    int id = -1;
    std::string name;
    std::vector<IrInst> insts;

    const IrInst &terminator() const { return insts.back(); }
    bool
    terminated() const
    {
        return !insts.empty() && insts.back().isTerminator();
    }
};

/** A function: argument registers, blocks, virtual-register counter. */
struct Function
{
    std::string name;
    unsigned numArgs = 0; ///< args arrive in virtual regs 0..numArgs-1
    std::vector<Block> blocks;
    VReg nextReg = 0;

    VReg newReg() { return nextReg++; }

    Block &
    block(int id)
    {
        return blocks[static_cast<size_t>(id)];
    }
    const Block &
    block(int id) const
    {
        return blocks[static_cast<size_t>(id)];
    }

    /** Append a new empty block; returns its id. */
    int addBlock(const std::string &name);

    /** Successor block ids of @p blk. */
    std::vector<int> successors(int blk) const;

    /** Predecessor block ids of @p blk (computed on demand). */
    std::vector<int> predecessors(int blk) const;

    /** Human-readable dump for debugging and golden tests. */
    std::string dump() const;

    /**
     * Structural validation: blocks terminated, operands in range,
     * targets valid.  Panics with a description on failure.
     */
    void verify() const;
};

/**
 * Convenience builder that appends instructions to a current block.
 * Mirrors classic IRBuilder APIs.
 */
class IrBuilder
{
  public:
    explicit IrBuilder(Function &fn) : fn_(fn) {}

    /** Create args: virtual registers 0..n-1. */
    void declareArgs(unsigned n);

    int newBlock(const std::string &name) { return fn_.addBlock(name); }
    void setBlock(int id) { cur_ = id; }
    int currentBlock() const { return cur_; }

    VReg iconst(int64_t v);
    VReg add(VReg a, VReg b) { return bin(IrOp::Add, a, b); }
    VReg sub(VReg a, VReg b) { return bin(IrOp::Sub, a, b); }
    VReg mul(VReg a, VReg b) { return bin(IrOp::Mul, a, b); }
    VReg div(VReg a, VReg b) { return bin(IrOp::Div, a, b); }
    VReg and_(VReg a, VReg b) { return bin(IrOp::And, a, b); }
    VReg or_(VReg a, VReg b) { return bin(IrOp::Or, a, b); }
    VReg xor_(VReg a, VReg b) { return bin(IrOp::Xor, a, b); }
    VReg addi(VReg a, int64_t imm) { return immOp(IrOp::AddI, a, imm); }
    VReg muli(VReg a, int64_t imm) { return immOp(IrOp::MulI, a, imm); }
    VReg shli(VReg a, int64_t imm) { return immOp(IrOp::ShlI, a, imm); }
    VReg srai(VReg a, int64_t imm) { return immOp(IrOp::SraI, a, imm); }

    /** dst <- a (emitted as OrI a, 0 into an existing register). */
    void copyTo(VReg dst, VReg src);

    VReg load(VReg base, int64_t disp, unsigned size = 8,
              bool isSigned = true, bool safe = false);
    VReg loadx(VReg base, VReg index, unsigned size = 8,
               bool isSigned = true, bool safe = false);
    void store(VReg val, VReg base, int64_t disp, unsigned size = 8);
    void storex(VReg val, VReg base, VReg index, unsigned size = 8);

    VReg select(Cond c, VReg a, VReg b, VReg x, VReg y);
    /** In-place select: dst = (a cond b) ? x : dst-current-value. */
    void selectInto(VReg dst, Cond c, VReg a, VReg b, VReg x);
    VReg max(VReg a, VReg b);
    VReg min(VReg a, VReg b);
    /** acc = max(acc, b) in place (single instruction, no copy). */
    void maxInto(VReg acc, VReg b);
    void minInto(VReg acc, VReg b);
    /** In-place binary ops (dst = dst op b), one instruction each. */
    void addInto(VReg acc, VReg b);
    void subInto(VReg acc, VReg b);
    /** In-place immediate add: acc += imm. */
    void addiInto(VReg acc, int64_t imm);

    void br(Cond c, VReg a, VReg b, int tblk, int fblk);
    void jump(int blk);
    void ret(VReg v = kNoReg);

    Function &fn() { return fn_; }

  private:
    VReg bin(IrOp op, VReg a, VReg b);
    VReg immOp(IrOp op, VReg a, int64_t imm);
    void append(IrInst inst);

    Function &fn_;
    int cur_ = -1;
};

} // namespace bp5::mpc

#endif // BIOPERF5_MPC_IR_H
