#include "mpc/interp.h"

#include "support/bitfield.h"
#include "support/logging.h"

namespace bp5::mpc {

namespace {

bool
evalCond(Cond c, int64_t a, int64_t b)
{
    switch (c) {
      case Cond::LT: return a < b;
      case Cond::LE: return a <= b;
      case Cond::GT: return a > b;
      case Cond::GE: return a >= b;
      case Cond::EQ: return a == b;
      case Cond::NE: return a != b;
    }
    panic("bad cond");
}

} // namespace

InterpResult
interpret(const Function &fn, const std::vector<int64_t> &args,
          sim::Memory &mem, uint64_t max_steps)
{
    fn.verify();
    BP5_ASSERT(args.size() == fn.numArgs, "argument count mismatch");

    std::vector<int64_t> reg(static_cast<size_t>(fn.nextReg) + 1, 0);
    for (size_t i = 0; i < args.size(); ++i)
        reg[i] = args[i];

    InterpResult res;
    int blk = 0;
    size_t ip = 0;

    auto addr = [&](const IrInst &i) {
        uint64_t a = static_cast<uint64_t>(reg[size_t(i.a)]);
        if (i.b != kNoReg)
            a += static_cast<uint64_t>(reg[size_t(i.b)]);
        return a + static_cast<uint64_t>(i.imm);
    };

    while (res.steps < max_steps) {
        const Block &b = fn.block(blk);
        const IrInst &i = b.insts[ip];
        ++res.steps;
        ++ip;

        auto &d = reg[size_t(i.dst >= 0 ? i.dst : 0)];
        int64_t av = i.a >= 0 ? reg[size_t(i.a)] : 0;
        int64_t bv = i.b >= 0 ? reg[size_t(i.b)] : 0;

        switch (i.op) {
          case IrOp::Const: d = i.imm; break;
          case IrOp::Add:
            d = static_cast<int64_t>(static_cast<uint64_t>(av) +
                                     static_cast<uint64_t>(bv));
            break;
          case IrOp::Sub:
            d = static_cast<int64_t>(static_cast<uint64_t>(av) -
                                     static_cast<uint64_t>(bv));
            break;
          case IrOp::Mul:
            d = static_cast<int64_t>(static_cast<uint64_t>(av) *
                                     static_cast<uint64_t>(bv));
            break;
          case IrOp::Div:
            // Matches the simulator's defined-zero semantics.
            d = (bv == 0 || (av == INT64_MIN && bv == -1)) ? 0 : av / bv;
            break;
          case IrOp::And: d = av & bv; break;
          case IrOp::Or: d = av | bv; break;
          case IrOp::Xor: d = av ^ bv; break;
          case IrOp::Shl: {
            unsigned sh = static_cast<unsigned>(bv) & 127;
            d = sh >= 64 ? 0
                         : static_cast<int64_t>(
                               static_cast<uint64_t>(av) << sh);
            break;
          }
          case IrOp::Shr: {
            unsigned sh = static_cast<unsigned>(bv) & 127;
            d = sh >= 64 ? 0
                         : static_cast<int64_t>(
                               static_cast<uint64_t>(av) >> sh);
            break;
          }
          case IrOp::Sar: {
            unsigned sh = static_cast<unsigned>(bv) & 127;
            d = sh >= 64 ? (av < 0 ? -1 : 0) : (av >> sh);
            break;
          }
          case IrOp::AddI:
            d = static_cast<int64_t>(static_cast<uint64_t>(av) +
                                     static_cast<uint64_t>(i.imm));
            break;
          case IrOp::MulI:
            d = static_cast<int64_t>(static_cast<uint64_t>(av) *
                                     static_cast<uint64_t>(i.imm));
            break;
          case IrOp::AndI: d = av & i.imm; break;
          case IrOp::OrI: d = av | i.imm; break;
          case IrOp::ShlI:
            d = static_cast<int64_t>(static_cast<uint64_t>(av)
                                     << (i.imm & 63));
            break;
          case IrOp::ShrI:
            d = static_cast<int64_t>(static_cast<uint64_t>(av) >>
                                     (i.imm & 63));
            break;
          case IrOp::SraI: d = av >> (i.imm & 63); break;
          case IrOp::Load: {
            uint64_t a = addr(i);
            uint64_t v = 0;
            switch (i.size) {
              case 1: v = mem.readU8(a); break;
              case 2: v = mem.readU16(a); break;
              case 4: v = mem.readU32(a); break;
              case 8: v = mem.readU64(a); break;
            }
            d = i.isSigned && i.size < 8
                    ? sext(v, unsigned(i.size) * 8)
                    : static_cast<int64_t>(v);
            break;
          }
          case IrOp::Store: {
            uint64_t a = addr(i);
            uint64_t v = static_cast<uint64_t>(reg[size_t(i.x)]);
            switch (i.size) {
              case 1: mem.writeU8(a, uint8_t(v)); break;
              case 2: mem.writeU16(a, uint16_t(v)); break;
              case 4: mem.writeU32(a, uint32_t(v)); break;
              case 8: mem.writeU64(a, v); break;
            }
            break;
          }
          case IrOp::Select:
            d = evalCond(i.cond, av, bv) ? reg[size_t(i.x)]
                                         : reg[size_t(i.y)];
            break;
          case IrOp::Max: d = av > bv ? av : bv; break;
          case IrOp::Min: d = av < bv ? av : bv; break;
          case IrOp::Br:
            blk = evalCond(i.cond, av, bv) ? i.tblk : i.fblk;
            ip = 0;
            break;
          case IrOp::Jump:
            blk = i.tblk;
            ip = 0;
            break;
          case IrOp::Ret:
            res.value = i.a >= 0 ? av : 0;
            res.finished = true;
            return res;
        }
    }
    return res; // step limit hit: finished == false
}

} // namespace bp5::mpc
