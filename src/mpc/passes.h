/**
 * @file
 * mpc optimization passes.  The centerpiece is the if-conversion pass
 * of paper section IV-B: it rewrites control-flow hammocks (if-then and
 * if-then-else regions) into straight-line Select/Max IR, subject to a
 * safety analysis — loads may only be hoisted past the branch when
 * their `safe` bit is set, stores and divides never are.  This
 * reproduces gcc's behaviour on the BioPerf kernels: register-only
 * hammocks convert, array-reference hammocks are rejected.
 */

#ifndef BIOPERF5_MPC_PASSES_H
#define BIOPERF5_MPC_PASSES_H

#include "mpc/ir.h"

namespace bp5::mpc {

/** Outcome statistics of the if-conversion pass. */
struct IfConvertStats
{
    unsigned converted = 0;       ///< hammocks rewritten to selects
    unsigned mergedStores = 0;    ///< diamonds converted by store merging
    unsigned rejectedUnsafe = 0;  ///< blocked by unprovable loads/stores
    unsigned rejectedShape = 0;   ///< region not a hammock / too large
    unsigned rejectedPattern = 0; ///< not max/min-shaped (max-only mode)
};

/** If-conversion knobs. */
struct IfConvertOptions
{
    /**
     * When true, convert only hammocks that reduce to pure max/min
     * assignments (models the compiler's max pattern matcher); when
     * false, any safe hammock becomes isel-able selects.
     */
    bool onlyMaxPatterns = false;

    /**
     * Convert diamonds whose two arms both end in one store to the
     * *same* proven address (same base/index registers, neither
     * redefined inside the arms, same displacement and size): compute
     * both values, select, store once unconditionally.  Sound because
     * some store to that address executes on every path through the
     * diamond — this is what the "comp. spec" variant adds over
     * "comp. isel" on the Clustalw F-row and Hmmer insert-row
     * hammocks.
     */
    bool mergeStores = false;
    unsigned maxHammockInsts = 8; ///< side-block size limit
};

/**
 * Run if-conversion over @p fn.  Converted branch blocks become
 * unreachable; run removeUnreachableBlocks() afterwards.
 */
IfConvertStats ifConvert(Function &fn, const IfConvertOptions &opts);

/** Delete blocks not reachable from block 0. */
void removeUnreachableBlocks(Function &fn);

/**
 * Remove instructions without side effects whose destination register
 * is never used anywhere in the function (iterates to a fixpoint).
 * @return number of instructions removed.
 */
unsigned deadCodeElim(Function &fn);

/**
 * Classify a Select as a max/min idiom.
 * @return IrOp::Max, IrOp::Min, or IrOp::Select if neither.
 */
IrOp classifySelect(const IrInst &sel);

/** Loop-unrolling knobs. */
struct UnrollOptions
{
    unsigned factor = 0;       ///< copies of the body (>= 2 to enable)
    unsigned maxBodyInsts = 96; ///< skip loops bigger than this
};

/** Outcome statistics of the unroll pass. */
struct UnrollStats
{
    unsigned unrolled = 0; ///< loops transformed
    unsigned rejected = 0; ///< counted loops skipped (size/shape)
};

/**
 * Unroll rotated counted do-while loops (see loops.h for the shape
 * requirements) by UnrollOptions::factor using a guarded main body
 * plus the original loop as the remainder: entry and the unrolled
 * back edge test `iv cond limit - step*(factor-1)`, which proves the
 * removed intermediate latch checks true; a tail test on the original
 * bound routes leftover iterations through the untouched original
 * loop.  Architectural results are bit-identical to the rolled form
 * (differential-tested); legality assumes `limit - step*(factor-1)`
 * does not wrap, which holds for any bound derived from an in-memory
 * object size.
 */
UnrollStats unrollLoops(Function &fn, const UnrollOptions &opts);

} // namespace bp5::mpc

#endif // BIOPERF5_MPC_PASSES_H
