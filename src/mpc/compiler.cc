#include "mpc/compiler.h"

#include "support/logging.h"

namespace bp5::mpc {

masm::Program
Compiled::program(uint64_t base) const
{
    return masm::assemble(insts, base);
}

Compiled
compile(Function fn, const CompileOptions &opts)
{
    fn.verify();
    Compiled out;
    if (opts.proveSafe)
        out.prove = proveSafeLoads(fn);
    if (opts.ifConvert) {
        out.ifc = ifConvert(fn, opts.ifcOpts);
        removeUnreachableBlocks(fn);
    }
    if (opts.unrollFactor >= 2) {
        UnrollOptions uo;
        uo.factor = opts.unrollFactor;
        out.unroll = unrollLoops(fn, uo);
    }
    if (opts.runDce)
        out.dceRemoved = deadCodeElim(fn);
    fn.verify();
    LoweredFunction lf = lower(fn, opts.cg);
    out.insts = std::move(lf.insts);
    out.cg = lf.stats;
    return out;
}

const char *
variantName(Variant v)
{
    switch (v) {
      case Variant::Baseline: return "Original";
      case Variant::HandIsel: return "hand isel";
      case Variant::HandMax: return "hand max";
      case Variant::CompIsel: return "comp. isel";
      case Variant::CompMax: return "comp. max";
      case Variant::Combination: return "Combination";
      case Variant::CompSpec: return "comp. spec";
      default: return "?";
    }
}

bool
variantUsesHandIr(Variant v)
{
    return v == Variant::HandIsel || v == Variant::HandMax ||
           v == Variant::Combination;
}

CompileOptions
optionsFor(Variant v)
{
    CompileOptions o;
    switch (v) {
      case Variant::Baseline:
        break;
      case Variant::HandIsel:
        o.cg.emitIsel = true;
        break;
      case Variant::HandMax:
        o.cg.emitMax = true;
        o.cg.emitIsel = true; // non-max selects still need isel
        break;
      case Variant::CompIsel:
        o.ifConvert = true;
        o.cg.emitIsel = true;
        break;
      case Variant::CompMax:
        o.ifConvert = true;
        o.ifcOpts.onlyMaxPatterns = true;
        o.cg.emitMax = true;
        break;
      case Variant::Combination:
        o.ifConvert = true;
        o.cg.emitMax = true;
        o.cg.emitIsel = true;
        break;
      case Variant::CompSpec:
        o.ifConvert = true;
        o.proveSafe = true;
        o.ifcOpts.mergeStores = true;
        o.cg.emitIsel = true;
        break;
      default:
        panic("bad variant");
    }
    return o;
}

} // namespace bp5::mpc
