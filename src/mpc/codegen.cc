#include "mpc/codegen.h"

#include "mpc/passes.h"

#include <algorithm>
#include <map>

#include "support/logging.h"

namespace bp5::mpc {

using isa::Inst;
using isa::Op;

namespace {

/** Lowered instruction with (possibly) virtual register operands. */
struct LInst
{
    Inst base;
    VReg vd = kNoReg; ///< fills base.rt
    VReg va = kNoReg; ///< fills base.ra
    VReg vb = kNoReg; ///< fills base.rb
    int targetBlk = -1; ///< branch target block
};

/** Allocatable register pool (r14..r31). r11/r12/r0 are spill scratch. */
constexpr unsigned kFirstAlloc = 14;
constexpr unsigned kNumAlloc = 18;
constexpr unsigned kScratchA = 11;
constexpr unsigned kScratchB = 12;
constexpr unsigned kScratchC = 0;
constexpr unsigned kStackReg = 1;
constexpr unsigned kMaxArgs = 8;

struct CondLowering
{
    unsigned bo;     ///< BC form
    unsigned crbit;  ///< CR0 bit
    bool swapSel;    ///< swap x/y when lowering a select
};

CondLowering
lowerCond(Cond c)
{
    using namespace isa;
    switch (c) {
      case Cond::LT: return {BO_COND_TRUE, crBitIndex(0, CR_LT), false};
      case Cond::GE: return {BO_COND_FALSE, crBitIndex(0, CR_LT), true};
      case Cond::GT: return {BO_COND_TRUE, crBitIndex(0, CR_GT), false};
      case Cond::LE: return {BO_COND_FALSE, crBitIndex(0, CR_GT), true};
      case Cond::EQ: return {BO_COND_TRUE, crBitIndex(0, CR_EQ), false};
      case Cond::NE: return {BO_COND_FALSE, crBitIndex(0, CR_EQ), true};
    }
    panic("bad cond");
}

bool
fitsInt16(int64_t v)
{
    return v >= -32768 && v <= 32767;
}

bool
fitsUint16(int64_t v)
{
    return v >= 0 && v <= 0xffff;
}

class Lowerer
{
  public:
    Lowerer(const Function &fn, const CodegenOptions &opts)
        : fn_(fn), opts_(opts), nextTmp_(fn.nextReg)
    {
    }

    LoweredFunction run();

  private:
    VReg newTmp() { return nextTmp_++; }

    void emit(Inst base, VReg vd = kNoReg, VReg va = kNoReg,
              VReg vb = kNoReg, int target = -1)
    {
        LInst li;
        li.base = base;
        li.vd = vd;
        li.va = va;
        li.vb = vb;
        li.targetBlk = target;
        code_.push_back(li);
    }

    void emitConst(VReg dst, int64_t v);
    VReg materialize(int64_t v);
    void emitCmp(VReg a, VReg b);
    void emitSelect(const IrInst &i);
    void emitMaxMin(VReg dst, VReg a, VReg b, bool isMax);
    void emitSelectArith(VReg dst, Cond c, VReg a, VReg b, VReg x, VReg y);
    void emitLoad(const IrInst &i);
    void emitStore(const IrInst &i);
    void lowerInst(const IrInst &i, int blkIdx);

    // Register allocation and final emission.
    void allocate();
    std::vector<Inst> rewrite();

    const Function &fn_;
    CodegenOptions opts_;
    VReg nextTmp_;
    std::vector<LInst> code_;
    std::vector<size_t> blockStartL_; ///< LIR index where block begins
    CodegenStats stats_;

    // Allocation results.
    std::map<VReg, unsigned> physOf_;
    std::map<VReg, unsigned> slotOf_;
};

void
Lowerer::emitConst(VReg dst, int64_t v)
{
    if (fitsInt16(v)) {
        emit(isa::mkD(Op::ADDI, 0, 0, static_cast<int32_t>(v)), dst);
        return;
    }
    // Chunked build: li 0; (ori top)(sldi 16; ori)*
    uint64_t u = static_cast<uint64_t>(v);
    int top = 3;
    while (top > 0 && ((u >> (16 * top)) & 0xffff) == 0)
        --top;
    emit(isa::mkD(Op::ADDI, 0, 0, 0), dst);
    emit(isa::mkD(Op::ORI, 0, 0,
                  static_cast<int32_t>((u >> (16 * top)) & 0xffff)),
         dst, dst);
    for (int i = top - 1; i >= 0; --i) {
        emit(isa::mkShImm(Op::SLDI, 0, 0, 16), dst, dst);
        emit(isa::mkD(Op::ORI, 0, 0,
                      static_cast<int32_t>((u >> (16 * i)) & 0xffff)),
             dst, dst);
    }
}

VReg
Lowerer::materialize(int64_t v)
{
    VReg t = newTmp();
    emitConst(t, v);
    return t;
}

void
Lowerer::emitCmp(VReg a, VReg b)
{
    emit(isa::mkCmp(Op::CMP, 0, 0, 0, true), kNoReg, a, b);
}

void
Lowerer::emitMaxMin(VReg dst, VReg a, VReg b, bool isMax)
{
    if (opts_.emitMax) {
        emit(isa::mkX(isMax ? Op::MAXD : Op::MIND, 0, 0, 0), dst, a, b);
        ++stats_.maxEmitted;
        return;
    }
    if (opts_.emitIsel) {
        emitCmp(a, b);
        // max: (a > b) ? a : b ; min: (a < b) ? a : b
        unsigned bit = isa::crBitIndex(0, isMax ? isa::CR_GT
                                                : isa::CR_LT);
        emit(isa::mkIsel(0, 0, 0, bit), dst, a, b);
        ++stats_.iselEmitted;
        return;
    }
    emitSelectArith(dst, isMax ? Cond::GT : Cond::LT, a, b, a, b);
}

void
Lowerer::emitSelectArith(VReg dst, Cond c, VReg a, VReg b, VReg x, VReg y)
{
    // Branch-free fallback without isel/max:
    //   mask = -(cond) ; dst = y ^ ((x ^ y) & mask)
    CondLowering cl = lowerCond(c);
    if (cl.swapSel)
        std::swap(x, y);
    emitCmp(a, b);
    VReg t = newTmp();
    emit(isa::mkMfcr(0), t);
    if (cl.crbit > 0)
        emit(isa::mkShImm(Op::SRDI, 0, 0, cl.crbit), t, t);
    emit(isa::mkD(Op::ANDI_RC, 0, 0, 1), t, t);
    VReg mask = newTmp();
    emit(isa::mkUnary(Op::NEG, 0, 0), mask, t);
    VReg d = newTmp();
    emit(isa::mkX(Op::XOR, 0, 0, 0), d, x, y);
    emit(isa::mkX(Op::AND, 0, 0, 0), d, d, mask);
    emit(isa::mkX(Op::XOR, 0, 0, 0), dst, d, y);
}

void
Lowerer::emitSelect(const IrInst &i)
{
    // Prefer the single-cycle max/min when the idiom matches.
    if (opts_.emitMax) {
        IrOp k = classifySelect(i);
        if (k == IrOp::Max || k == IrOp::Min) {
            emitMaxMin(i.dst, i.a, i.b, k == IrOp::Max);
            return;
        }
    }
    if (opts_.emitIsel) {
        CondLowering cl = lowerCond(i.cond);
        VReg x = i.x, y = i.y;
        if (cl.swapSel)
            std::swap(x, y);
        emitCmp(i.a, i.b);
        emit(isa::mkIsel(0, 0, 0, cl.crbit), i.dst, x, y);
        ++stats_.iselEmitted;
        return;
    }
    emitSelectArith(i.dst, i.cond, i.a, i.b, i.x, i.y);
}

void
Lowerer::emitLoad(const IrInst &i)
{
    VReg base = i.a;
    VReg index = i.b;
    int64_t disp = i.imm;
    if (index != kNoReg && disp != 0) {
        VReg sum = newTmp();
        if (fitsInt16(disp)) {
            emit(isa::mkD(Op::ADDI, 0, 0, static_cast<int32_t>(disp)),
                 sum, index);
        } else {
            VReg c = materialize(disp);
            emit(isa::mkX(Op::ADD, 0, 0, 0), sum, index, c);
        }
        index = sum;
        disp = 0;
    }
    if (index == kNoReg && !fitsInt16(disp)) {
        index = materialize(disp);
        disp = 0;
    }

    bool indexed = index != kNoReg;
    Op op;
    bool needExtsb = false;
    switch (i.size) {
      case 1:
        op = indexed ? Op::LBZX : Op::LBZ;
        needExtsb = i.isSigned;
        break;
      case 2:
        op = indexed ? (i.isSigned ? Op::LHAX : Op::LHZX)
                     : (i.isSigned ? Op::LHA : Op::LHZ);
        break;
      case 4:
        op = indexed ? (i.isSigned ? Op::LWAX : Op::LWZX)
                     : (i.isSigned ? Op::LWA : Op::LWZ);
        break;
      case 8:
        op = indexed ? Op::LDX : Op::LD;
        break;
      default:
        panic("bad load size %u", i.size);
    }
    if (indexed)
        emit(isa::mkX(op, 0, 0, 0), i.dst, base, index);
    else
        emit(isa::mkD(op, 0, 0, static_cast<int32_t>(disp)), i.dst, base);
    if (needExtsb)
        emit(isa::mkUnary(Op::EXTSB, 0, 0), i.dst, i.dst);
}

void
Lowerer::emitStore(const IrInst &i)
{
    VReg base = i.a;
    VReg index = i.b;
    int64_t disp = i.imm;
    if (index != kNoReg && disp != 0) {
        VReg sum = newTmp();
        if (fitsInt16(disp)) {
            emit(isa::mkD(Op::ADDI, 0, 0, static_cast<int32_t>(disp)),
                 sum, index);
        } else {
            VReg c = materialize(disp);
            emit(isa::mkX(Op::ADD, 0, 0, 0), sum, index, c);
        }
        index = sum;
        disp = 0;
    }
    if (index == kNoReg && !fitsInt16(disp)) {
        index = materialize(disp);
        disp = 0;
    }
    bool indexed = index != kNoReg;
    Op op;
    switch (i.size) {
      case 1: op = indexed ? Op::STBX : Op::STB; break;
      case 2: op = indexed ? Op::STHX : Op::STH; break;
      case 4: op = indexed ? Op::STWX : Op::STW; break;
      case 8: op = indexed ? Op::STDX : Op::STD; break;
      default: panic("bad store size %u", i.size);
    }
    // Stores carry the value in the RT field (a source).
    if (indexed)
        emit(isa::mkX(op, 0, 0, 0), i.x, base, index);
    else
        emit(isa::mkD(op, 0, 0, static_cast<int32_t>(disp)), i.x, base);
}

void
Lowerer::lowerInst(const IrInst &i, int blkIdx)
{
    switch (i.op) {
      case IrOp::Const:
        emitConst(i.dst, i.imm);
        break;
      case IrOp::Add:
        emit(isa::mkX(Op::ADD, 0, 0, 0), i.dst, i.a, i.b);
        break;
      case IrOp::Sub: // dst = a - b  ==  subf dst, b, a
        emit(isa::mkX(Op::SUBF, 0, 0, 0), i.dst, i.b, i.a);
        break;
      case IrOp::Mul:
        emit(isa::mkX(Op::MULLD, 0, 0, 0), i.dst, i.a, i.b);
        break;
      case IrOp::Div:
        emit(isa::mkX(Op::DIVD, 0, 0, 0), i.dst, i.a, i.b);
        break;
      case IrOp::And:
        emit(isa::mkX(Op::AND, 0, 0, 0), i.dst, i.a, i.b);
        break;
      case IrOp::Or:
        emit(isa::mkX(Op::OR, 0, 0, 0), i.dst, i.a, i.b);
        break;
      case IrOp::Xor:
        emit(isa::mkX(Op::XOR, 0, 0, 0), i.dst, i.a, i.b);
        break;
      case IrOp::Shl:
        emit(isa::mkX(Op::SLD, 0, 0, 0), i.dst, i.a, i.b);
        break;
      case IrOp::Shr:
        emit(isa::mkX(Op::SRD, 0, 0, 0), i.dst, i.a, i.b);
        break;
      case IrOp::Sar:
        emit(isa::mkX(Op::SRAD, 0, 0, 0), i.dst, i.a, i.b);
        break;
      case IrOp::AddI:
        if (fitsInt16(i.imm)) {
            emit(isa::mkD(Op::ADDI, 0, 0, static_cast<int32_t>(i.imm)),
                 i.dst, i.a);
        } else {
            VReg c = materialize(i.imm);
            emit(isa::mkX(Op::ADD, 0, 0, 0), i.dst, i.a, c);
        }
        break;
      case IrOp::MulI:
        if (fitsInt16(i.imm)) {
            emit(isa::mkD(Op::MULLI, 0, 0, static_cast<int32_t>(i.imm)),
                 i.dst, i.a);
        } else {
            VReg c = materialize(i.imm);
            emit(isa::mkX(Op::MULLD, 0, 0, 0), i.dst, i.a, c);
        }
        break;
      case IrOp::AndI:
        if (fitsUint16(i.imm)) {
            emit(isa::mkD(Op::ANDI_RC, 0, 0,
                          static_cast<int32_t>(i.imm)), i.dst, i.a);
        } else {
            VReg c = materialize(i.imm);
            emit(isa::mkX(Op::AND, 0, 0, 0), i.dst, i.a, c);
        }
        break;
      case IrOp::OrI:
        if (fitsUint16(i.imm)) {
            emit(isa::mkD(Op::ORI, 0, 0, static_cast<int32_t>(i.imm)),
                 i.dst, i.a);
        } else {
            VReg c = materialize(i.imm);
            emit(isa::mkX(Op::OR, 0, 0, 0), i.dst, i.a, c);
        }
        break;
      case IrOp::ShlI:
        emit(isa::mkShImm(Op::SLDI, 0, 0,
                          static_cast<unsigned>(i.imm)), i.dst, i.a);
        break;
      case IrOp::ShrI:
        emit(isa::mkShImm(Op::SRDI, 0, 0,
                          static_cast<unsigned>(i.imm)), i.dst, i.a);
        break;
      case IrOp::SraI:
        emit(isa::mkShImm(Op::SRADI, 0, 0,
                          static_cast<unsigned>(i.imm)), i.dst, i.a);
        break;
      case IrOp::Load:
        emitLoad(i);
        break;
      case IrOp::Store:
        emitStore(i);
        break;
      case IrOp::Select:
        emitSelect(i);
        break;
      case IrOp::Max:
        emitMaxMin(i.dst, i.a, i.b, true);
        break;
      case IrOp::Min:
        emitMaxMin(i.dst, i.a, i.b, false);
        break;
      case IrOp::Br: {
        emitCmp(i.a, i.b);
        if (i.tblk == blkIdx + 1) {
            // True side is the fall-through: branch on the negated
            // condition to the false side (gcc-style layout).
            CondLowering cl = lowerCond(negate(i.cond));
            emit(isa::mkBc(cl.bo, cl.crbit, 0), kNoReg, kNoReg, kNoReg,
                 i.fblk);
            ++stats_.branchesEmitted;
        } else {
            CondLowering cl = lowerCond(i.cond);
            emit(isa::mkBc(cl.bo, cl.crbit, 0), kNoReg, kNoReg, kNoReg,
                 i.tblk);
            ++stats_.branchesEmitted;
            if (i.fblk != blkIdx + 1)
                emit(isa::mkB(0), kNoReg, kNoReg, kNoReg, i.fblk);
        }
        break;
      }
      case IrOp::Jump:
        if (i.tblk != blkIdx + 1)
            emit(isa::mkB(0), kNoReg, kNoReg, kNoReg, i.tblk);
        break;
      case IrOp::Ret:
        if (i.a != kNoReg) {
            // mr r3, val
            Inst mr = isa::mkX(Op::OR, 3, 0, 0);
            emit(mr, kNoReg, i.a, i.a);
        }
        emit(isa::mkD(Op::ADDI, 0, 0, 0)); // li r0, 0
        emit(isa::mkSc());
        break;
    }
}

void
Lowerer::allocate()
{
    // Occurrence-span intervals.
    struct Interval
    {
        VReg v;
        size_t start, end;
    };
    std::map<VReg, Interval> ivals;
    std::map<VReg, bool> firstIsUse; // read before any write (upward
                                     // exposed: a loop-carried value)
    auto touch = [&](VReg v, size_t pos, bool is_def) {
        if (v == kNoReg)
            return;
        auto it = ivals.find(v);
        if (it == ivals.end()) {
            ivals[v] = {v, pos, pos};
            firstIsUse[v] = !is_def;
        } else {
            it->second.end = pos;
        }
    };
    for (size_t p = 0; p < code_.size(); ++p) {
        const LInst &li = code_[p];
        const isa::OpInfo &info = isa::opInfo(li.base.op);
        // Sources are read before the destination is written.
        touch(li.va, p, false);
        touch(li.vb, p, false);
        if (li.vd != kNoReg)
            touch(li.vd, p, !info.readsRT);
    }

    // Loop extension.  A value is live across a backward branch
    // [lo, hi] when it is defined before the loop and used inside, or
    // when its first occurrence in the loop is a read (loop-carried),
    // or when it is defined inside and used after the loop (the loop
    // may exit before the redefinition).  Purely loop-local temporaries
    // (def before use within one iteration) keep their tight spans.
    std::vector<std::pair<size_t, size_t>> backEdges; // (target, branch)
    for (size_t p = 0; p < code_.size(); ++p) {
        int tb = code_[p].targetBlk;
        if (tb >= 0) {
            size_t tstart = blockStartL_[static_cast<size_t>(tb)];
            if (tstart <= p)
                backEdges.emplace_back(tstart, p);
        }
    }
    bool extended = true;
    while (extended) {
        extended = false;
        for (auto &[lo, hi] : backEdges) {
            for (auto &[v, iv] : ivals) {
                if (iv.start > hi || iv.end < lo)
                    continue; // no overlap with the loop
                bool carried = iv.start < lo || firstIsUse[v];
                bool live_out = iv.end > hi && iv.start >= lo;
                if (carried && iv.end < hi) {
                    iv.end = hi;
                    extended = true;
                }
                if ((carried && firstIsUse[v] && iv.start > lo) ||
                    (live_out && iv.start > lo)) {
                    iv.start = lo;
                    extended = true;
                }
            }
        }
    }

    std::vector<Interval> order;
    for (auto &[v, iv] : ivals)
        order.push_back(iv);
    std::sort(order.begin(), order.end(),
              [](const Interval &a, const Interval &b) {
                  return a.start < b.start ||
                         (a.start == b.start && a.v < b.v);
              });

    std::vector<Interval> active;
    std::vector<unsigned> freeRegs;
    for (unsigned r = 0; r < kNumAlloc; ++r)
        freeRegs.push_back(kFirstAlloc + kNumAlloc - 1 - r);
    unsigned nextSlot = 0;

    for (const Interval &iv : order) {
        // Expire.
        for (size_t k = 0; k < active.size();) {
            if (active[k].end < iv.start) {
                freeRegs.push_back(physOf_[active[k].v]);
                active.erase(active.begin() + static_cast<long>(k));
            } else {
                ++k;
            }
        }
        if (!freeRegs.empty()) {
            physOf_[iv.v] = freeRegs.back();
            freeRegs.pop_back();
            active.push_back(iv);
            continue;
        }
        // Spill the interval that ends last.
        size_t victim = active.size();
        size_t far = iv.end;
        for (size_t k = 0; k < active.size(); ++k) {
            if (active[k].end > far) {
                far = active[k].end;
                victim = k;
            }
        }
        if (victim == active.size()) {
            slotOf_[iv.v] = nextSlot++;
        } else {
            VReg vv = active[victim].v;
            physOf_[iv.v] = physOf_[vv];
            physOf_.erase(vv);
            slotOf_[vv] = nextSlot++;
            active.erase(active.begin() + static_cast<long>(victim));
            active.push_back(iv);
        }
    }
    stats_.spilledRegs = nextSlot;
}

std::vector<Inst>
Lowerer::rewrite()
{
    std::vector<Inst> out;
    std::vector<size_t> blockStartM(blockStartL_.size(), 0);
    std::vector<std::pair<size_t, int>> fixups; // (machine idx, block)

    size_t nextBlock = 0;
    for (size_t p = 0; p < code_.size(); ++p) {
        while (nextBlock < blockStartL_.size() &&
               blockStartL_[nextBlock] == p) {
            blockStartM[nextBlock] = out.size();
            ++nextBlock;
        }
        LInst li = code_[p];
        const isa::OpInfo &info = isa::opInfo(li.base.op);

        auto slotDisp = [&](VReg v) {
            return -8 * (static_cast<int32_t>(slotOf_[v]) + 1);
        };

        // Assign scratch registers and reload spilled sources.
        bool scratchTaken[3] = {false, false, false};
        const unsigned scratchPool[3] = {kScratchA, kScratchB, kScratchC};
        auto scratchFor = [&](bool canBeR0) -> unsigned {
            for (unsigned k = 0; k < 3; ++k) {
                if (scratchTaken[k])
                    continue;
                if (scratchPool[k] == kScratchC && !canBeR0)
                    continue;
                scratchTaken[k] = true;
                return scratchPool[k];
            }
            panic("out of spill scratch registers");
        };

        auto resolve = [&](VReg v, bool isBase) -> unsigned {
            auto it = physOf_.find(v);
            if (it != physOf_.end())
                return it->second;
            unsigned s = scratchFor(!isBase);
            out.push_back(isa::mkD(Op::LD, s, kStackReg, slotDisp(v)));
            return s;
        };

        bool defSpilled = false;
        VReg defReg = kNoReg;
        if (li.va != kNoReg)
            li.base.ra = static_cast<uint8_t>(resolve(li.va, true));
        if (li.vb != kNoReg)
            li.base.rb = static_cast<uint8_t>(resolve(li.vb, false));
        if (li.vd != kNoReg) {
            bool rt_is_source = info.readsRT;
            if (rt_is_source) {
                li.base.rt =
                    static_cast<uint8_t>(resolve(li.vd, false));
            } else {
                auto it = physOf_.find(li.vd);
                if (it != physOf_.end()) {
                    li.base.rt = static_cast<uint8_t>(it->second);
                } else {
                    unsigned s = scratchFor(true);
                    li.base.rt = static_cast<uint8_t>(s);
                    defSpilled = true;
                    defReg = li.vd;
                }
            }
        }

        if (li.targetBlk >= 0)
            fixups.emplace_back(out.size(), li.targetBlk);
        out.push_back(li.base);
        if (defSpilled) {
            out.push_back(isa::mkD(Op::STD, li.base.rt, kStackReg,
                                   slotDisp(defReg)));
        }
    }
    while (nextBlock < blockStartL_.size()) {
        blockStartM[nextBlock] = out.size();
        ++nextBlock;
    }

    for (auto &[mi, blk] : fixups) {
        int64_t delta =
            (static_cast<int64_t>(blockStartM[static_cast<size_t>(blk)]) -
             static_cast<int64_t>(mi)) * 4;
        out[mi].imm = static_cast<int32_t>(delta);
    }
    return out;
}

LoweredFunction
Lowerer::run()
{
    fn_.verify();
    BP5_ASSERT(fn_.numArgs <= kMaxArgs, "too many arguments");

    // Prologue: copy incoming argument registers into their vregs.
    for (unsigned a = 0; a < fn_.numArgs; ++a) {
        Inst mr = isa::mkX(Op::OR, 0, 3 + a, 3 + a);
        emit(mr, static_cast<VReg>(a));
    }

    blockStartL_.assign(fn_.blocks.size(), 0);
    for (size_t bi = 0; bi < fn_.blocks.size(); ++bi) {
        // The entry block includes the prologue in its range; no
        // builder emits branches back to the entry block.
        blockStartL_[bi] = bi == 0 ? 0 : code_.size();
        const Block &b = fn_.blocks[bi];
        for (const IrInst &inst : b.insts)
            lowerInst(inst, static_cast<int>(bi));
    }

    allocate();
    LoweredFunction lf;
    lf.insts = rewrite();
    stats_.numInsts = static_cast<unsigned>(lf.insts.size());
    lf.stats = stats_;
    return lf;
}

} // namespace

LoweredFunction
lower(const Function &fn, const CodegenOptions &opts)
{
    Lowerer l(fn, opts);
    return l.run();
}

} // namespace bp5::mpc
