#include "mpc/loops.h"

#include <algorithm>
#include <sstream>

#include "support/logging.h"

namespace bp5::mpc {

namespace {

/** Reverse postorder over reachable blocks from the entry. */
std::vector<int>
reversePostorder(const Function &fn)
{
    std::vector<int> order;
    std::vector<uint8_t> state(fn.blocks.size(), 0); // 0 new 1 open 2 done
    // Iterative DFS with an explicit stack of (block, next-succ).
    std::vector<std::pair<int, size_t>> stack{{0, 0}};
    state[0] = 1;
    while (!stack.empty()) {
        auto &[b, k] = stack.back();
        std::vector<int> succs = fn.successors(b);
        if (k < succs.size()) {
            int s = succs[k++];
            if (state[static_cast<size_t>(s)] == 0) {
                state[static_cast<size_t>(s)] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            state[static_cast<size_t>(b)] = 2;
            order.push_back(b);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

} // namespace

std::vector<int>
dominators(const Function &fn)
{
    std::vector<int> rpo = reversePostorder(fn);
    std::vector<int> rpoIndex(fn.blocks.size(), -1);
    for (size_t i = 0; i < rpo.size(); ++i)
        rpoIndex[static_cast<size_t>(rpo[i])] = static_cast<int>(i);

    std::vector<int> idom(fn.blocks.size(), -1);
    idom[0] = 0;
    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpoIndex[static_cast<size_t>(a)] >
                   rpoIndex[static_cast<size_t>(b)])
                a = idom[static_cast<size_t>(a)];
            while (rpoIndex[static_cast<size_t>(b)] >
                   rpoIndex[static_cast<size_t>(a)])
                b = idom[static_cast<size_t>(b)];
        }
        return a;
    };

    // Predecessor lists once up front (Function computes on demand).
    std::vector<std::vector<int>> preds(fn.blocks.size());
    for (const Block &b : fn.blocks) {
        for (int s : fn.successors(b.id))
            preds[static_cast<size_t>(s)].push_back(b.id);
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : rpo) {
            if (b == 0)
                continue;
            int newIdom = -1;
            for (int p : preds[static_cast<size_t>(b)]) {
                if (idom[static_cast<size_t>(p)] == -1)
                    continue; // unreachable or not yet processed
                newIdom = newIdom == -1 ? p : intersect(p, newIdom);
            }
            if (newIdom != -1 && idom[static_cast<size_t>(b)] != newIdom) {
                idom[static_cast<size_t>(b)] = newIdom;
                changed = true;
            }
        }
    }
    return idom;
}

namespace {

bool
dominates(const std::vector<int> &idom, int a, int b)
{
    // Walk b's dominator chain up to the entry.
    while (true) {
        if (b == a)
            return true;
        if (b == 0 || idom[static_cast<size_t>(b)] == -1)
            return false;
        int up = idom[static_cast<size_t>(b)];
        if (up == b)
            return false;
        b = up;
    }
}

/** Floor division for step > 0 over wide intermediates. */
int64_t
floorDiv(__int128 num, int64_t den)
{
    __int128 q = num / den;
    if (num % den != 0 && num < 0)
        --q;
    if (q < INT64_MIN)
        return INT64_MIN;
    if (q > INT64_MAX)
        return INT64_MAX;
    return static_cast<int64_t>(q);
}

/** All non-terminator defs of @p r inside the loop body. */
std::vector<const IrInst *>
loopDefsOf(const Function &fn, const IrLoop &loop, VReg r)
{
    std::vector<const IrInst *> defs;
    for (int id : loop.blocks) {
        for (const IrInst &i : fn.block(id).insts) {
            if (!i.isTerminator() && i.op != IrOp::Store && i.dst == r)
                defs.push_back(&i);
        }
    }
    return defs;
}

/** The unique Const defining @p r anywhere in @p fn, or nullptr. */
const IrInst *
uniqueConstDef(const Function &fn, VReg r,
               const IrLoop *excludeLoop = nullptr)
{
    const IrInst *found = nullptr;
    for (const Block &b : fn.blocks) {
        if (excludeLoop && excludeLoop->contains(b.id))
            continue;
        for (const IrInst &i : b.insts) {
            if (i.isTerminator() || i.op == IrOp::Store || i.dst != r)
                continue;
            if (found)
                return nullptr; // multiply defined
            found = &i;
        }
    }
    return found && found->op == IrOp::Const ? found : nullptr;
}

/**
 * Recognize the rotated counted-loop shape and fill the IV fields:
 * single latch ending `br {lt,le} iv, limit, header, exit`, the only
 * in-loop defs of iv forming one `iv += step` chain in the latch, and
 * limit loop-invariant.
 */
void
analyzeCountedShape(const Function &fn, IrLoop &loop)
{
    if (loop.latches.size() != 1)
        return;
    int latchId = loop.latches[0];
    const Block &latch = fn.block(latchId);
    const IrInst &t = latch.terminator();
    if (t.op != IrOp::Br)
        return;
    Cond cond = t.cond;
    if (t.tblk == loop.header && !loop.contains(t.fblk)) {
        // continue on true
    } else if (t.fblk == loop.header && !loop.contains(t.tblk)) {
        cond = negate(cond);
    } else {
        return;
    }
    if (cond != Cond::LT && cond != Cond::LE)
        return;
    VReg iv = t.a;
    VReg limit = t.b;
    if (!loopDefsOf(fn, loop, limit).empty())
        return; // bound not loop-invariant

    // iv's only in-loop def must be `iv += step` — either a direct
    // AddI or the builder's copyTo(iv, addi(iv, step)) two-step.
    std::vector<const IrInst *> ivDefs = loopDefsOf(fn, loop, iv);
    if (ivDefs.size() != 1)
        return;
    const IrInst &d = *ivDefs[0];
    const IrInst *stepInst = &d;
    int64_t step = 0;
    if (d.op == IrOp::AddI && d.a == iv) {
        step = d.imm;
    } else if (d.op == IrOp::OrI && d.imm == 0) {
        std::vector<const IrInst *> tmpDefs = loopDefsOf(fn, loop, d.a);
        if (tmpDefs.size() != 1 || tmpDefs[0]->op != IrOp::AddI ||
            tmpDefs[0]->a != iv)
            return;
        stepInst = tmpDefs[0];
        step = stepInst->imm;
    } else {
        return;
    }
    if (step <= 0)
        return;
    // The whole increment chain must sit in the latch so it runs
    // exactly once per iteration, unconditionally before the branch.
    bool copyInLatch = false, stepInLatch = false;
    for (const IrInst &i : latch.insts) {
        copyInLatch = copyInLatch || &i == &d;
        stepInLatch = stepInLatch || &i == stepInst;
    }
    if (!copyInLatch || !stepInLatch)
        return;

    loop.hasCountedShape = true;
    loop.iv = iv;
    loop.step = step;
    loop.limit = limit;
    loop.cond = cond;

    // Trip count when both the bound and the entry value are unique
    // compile-time constants.
    const IrInst *limDef = uniqueConstDef(fn, limit);
    const IrInst *initDef = uniqueConstDef(fn, iv, &loop);
    if (!limDef || !initDef)
        return;
    __int128 k = limDef->imm;
    __int128 v0 = initDef->imm;
    // Body executes with entry values v0, v0+step, ...; after a body
    // run the latch continues while `iv cond limit` holds for the
    // post-increment value.
    __int128 num = cond == Cond::LE ? k - v0 : k - v0 - 1;
    int64_t extra = num < 0 ? 0 : floorDiv(num, step);
    loop.tripCount = extra == INT64_MAX ? -1 : extra + 1;
}

} // namespace

bool
IrLoopForest::nestedIn(const IrLoop &inner, const IrLoop &outer)
{
    if (inner.blocks.size() >= outer.blocks.size())
        return false;
    return std::includes(outer.blocks.begin(), outer.blocks.end(),
                         inner.blocks.begin(), inner.blocks.end());
}

std::string
IrLoopForest::dump(const Function &fn) const
{
    std::ostringstream os;
    for (const IrLoop &l : loops) {
        os << "loop header=b" << l.header << " blocks={";
        for (size_t i = 0; i < l.blocks.size(); ++i)
            os << (i ? "," : "") << "b" << l.blocks[i];
        os << "} exits=" << l.exits.size();
        if (l.hasCountedShape) {
            os << " iv=v" << l.iv << " step=" << l.step << " limit=v"
               << l.limit
               << (l.cond == Cond::LE ? " while<=" : " while<");
            if (l.tripCount >= 0)
                os << " trip=" << l.tripCount;
        }
        os << " (" << fn.block(l.header).name << ")\n";
    }
    return os.str();
}

IrLoopForest
findLoops(const Function &fn)
{
    std::vector<int> idom = dominators(fn);
    std::vector<std::vector<int>> preds(fn.blocks.size());
    for (const Block &b : fn.blocks) {
        for (int s : fn.successors(b.id))
            preds[static_cast<size_t>(s)].push_back(b.id);
    }

    // Collect back edges grouped by header.
    std::vector<std::vector<int>> latchesOf(fn.blocks.size());
    for (const Block &b : fn.blocks) {
        if (b.id != 0 && idom[static_cast<size_t>(b.id)] == -1)
            continue; // unreachable
        for (int s : fn.successors(b.id)) {
            if (dominates(idom, s, b.id))
                latchesOf[static_cast<size_t>(s)].push_back(b.id);
        }
    }

    IrLoopForest forest;
    for (size_t h = 0; h < latchesOf.size(); ++h) {
        if (latchesOf[h].empty())
            continue;
        IrLoop loop;
        loop.header = static_cast<int>(h);
        loop.latches = latchesOf[h];
        // Natural-loop body: reverse reachability from the latches
        // without passing through the header.
        std::vector<bool> in(fn.blocks.size(), false);
        in[h] = true;
        std::vector<int> work = loop.latches;
        for (int l : loop.latches)
            in[static_cast<size_t>(l)] = true;
        while (!work.empty()) {
            int b = work.back();
            work.pop_back();
            if (b == loop.header)
                continue;
            for (int p : preds[static_cast<size_t>(b)]) {
                if (!in[static_cast<size_t>(p)]) {
                    in[static_cast<size_t>(p)] = true;
                    work.push_back(p);
                }
            }
        }
        for (size_t b = 0; b < in.size(); ++b) {
            if (in[b])
                loop.blocks.push_back(static_cast<int>(b));
        }
        for (int b : loop.blocks) {
            for (int s : fn.successors(b)) {
                if (!in[static_cast<size_t>(s)]) {
                    loop.exits.push_back(b);
                    break;
                }
            }
        }
        analyzeCountedShape(fn, loop);
        forest.loops.push_back(std::move(loop));
    }
    // Outer loops (more blocks) first so consumers can walk nests.
    std::stable_sort(forest.loops.begin(), forest.loops.end(),
                     [](const IrLoop &a, const IrLoop &b) {
                         return a.blocks.size() > b.blocks.size();
                     });
    return forest;
}

} // namespace bp5::mpc
