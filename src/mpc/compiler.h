/**
 * @file
 * mpc compilation pipeline and the paper's code-generation variants.
 *
 * Fig 3 / Table II of the paper compare five builds of each kernel:
 *
 *   Original   — conditional statements compiled to cmp + branch.
 *   hand isel  — Selects placed by a human at the known max() sites,
 *                lowered to cmp+isel.
 *   hand max   — the same sites lowered to the new max instruction.
 *   comp. isel — the branchy build run through if-conversion; every
 *                provably-safe hammock becomes cmp+isel.
 *   comp. max  — if-conversion restricted to gcc's max/min pattern
 *                matcher.
 *   Combination— hand max sites plus compiler isel for the rest.
 *
 * A kernel supplies two IR builders (branchy and hand-annotated); the
 * variant selects the builder and the pass/codegen options.
 */

#ifndef BIOPERF5_MPC_COMPILER_H
#define BIOPERF5_MPC_COMPILER_H

#include <string>
#include <vector>

#include "isa/inst.h"
#include "masm/assembler.h"
#include "mpc/absint.h"
#include "mpc/codegen.h"
#include "mpc/ir.h"
#include "mpc/passes.h"

namespace bp5::mpc {

/** Pipeline options. */
struct CompileOptions
{
    bool ifConvert = false;

    /**
     * Run the abstract-interpretation safety pre-pass (absint.h)
     * before if-conversion: loads whose address is must-accessed at
     * their own program point get their `safe` bit proven rather than
     * trusted from the builder's annotation.
     */
    bool proveSafe = false;
    IfConvertOptions ifcOpts;

    /** Unroll counted loops by this factor (0/1 = off; see passes.h). */
    unsigned unrollFactor = 0;
    CodegenOptions cg;
    bool runDce = true;
};

/** Everything produced by a compilation. */
struct Compiled
{
    std::vector<isa::Inst> insts;
    IfConvertStats ifc;
    ProveStats prove;
    UnrollStats unroll;
    CodegenStats cg;
    unsigned dceRemoved = 0;

    /** Assemble at @p base into a loadable program image. */
    masm::Program program(uint64_t base = 0x10000) const;
};

/** Run passes and lower @p fn (taken by value; passes mutate it). */
Compiled compile(Function fn, const CompileOptions &opts);

/** The paper's code variants (Fig 3, Table II) plus "comp. spec",
 *  this repo's analysis-driven extension of "comp. isel". */
enum class Variant
{
    Baseline,  ///< "Original"
    HandIsel,
    HandMax,
    CompIsel,
    CompMax,
    Combination,
    CompSpec,  ///< "comp. spec": proven-safe speculation + store merge
    NUM_VARIANTS,
};

/** Short display name matching the paper's figure labels. */
const char *variantName(Variant v);

/** True if the variant compiles the hand-annotated IR builder. */
bool variantUsesHandIr(Variant v);

/** Pipeline options implementing @p v. */
CompileOptions optionsFor(Variant v);

} // namespace bp5::mpc

#endif // BIOPERF5_MPC_COMPILER_H
