#include "mpc/absint.h"

#include <algorithm>
#include <deque>

#include "support/logging.h"

namespace bp5::mpc {

namespace {

// --------------------------------------------------------------------
// Value ranges.
// --------------------------------------------------------------------

/** Interval transfer for one non-terminator instruction. */
void
transfer(const IrInst &i, std::vector<Interval> &st)
{
    auto val = [&](VReg r) {
        return r == kNoReg ? Interval::top()
                           : st[static_cast<size_t>(r)];
    };
    auto set = [&](VReg r, const Interval &v) {
        if (r != kNoReg)
            st[static_cast<size_t>(r)] = v;
    };
    switch (i.op) {
      case IrOp::Const:
        set(i.dst, Interval::point(i.imm));
        break;
      case IrOp::Add:
        set(i.dst, val(i.a).add(val(i.b)));
        break;
      case IrOp::Sub:
        set(i.dst, val(i.a).sub(val(i.b)));
        break;
      case IrOp::Mul:
        set(i.dst, val(i.a).mul(val(i.b)));
        break;
      case IrOp::AddI:
        set(i.dst, val(i.a).addConst(i.imm));
        break;
      case IrOp::MulI:
        set(i.dst, val(i.a).mul(Interval::point(i.imm)));
        break;
      case IrOp::OrI:
        // OrI a, 0 is the IR's register copy.
        set(i.dst, i.imm == 0 ? val(i.a) : Interval::top());
        break;
      case IrOp::AndI:
        // Masking with a non-negative constant bounds the result.
        set(i.dst, i.imm >= 0 ? Interval::range(0, i.imm)
                              : Interval::top());
        break;
      case IrOp::ShlI:
        set(i.dst, val(i.a).shlConst(i.imm));
        break;
      case IrOp::Load:
        // Sub-8-byte loads have a size-given range.
        switch (i.size) {
          case 1:
            set(i.dst, i.isSigned ? Interval::range(-128, 127)
                                  : Interval::range(0, 255));
            break;
          case 2:
            set(i.dst, i.isSigned ? Interval::range(-32768, 32767)
                                  : Interval::range(0, 65535));
            break;
          case 4:
            set(i.dst, i.isSigned
                           ? Interval::range(INT32_MIN, INT32_MAX)
                           : Interval::range(0, UINT32_MAX));
            break;
          default:
            set(i.dst, Interval::top());
            break;
        }
        break;
      case IrOp::Max:
        set(i.dst, val(i.a).maxWith(val(i.b)));
        break;
      case IrOp::Min:
        set(i.dst, val(i.a).minWith(val(i.b)));
        break;
      case IrOp::Select:
        set(i.dst, val(i.x).join(val(i.y)));
        break;
      case IrOp::Store:
      case IrOp::Br:
      case IrOp::Jump:
      case IrOp::Ret:
        break;
      default:
        // Div, logic and variable shifts: no useful bound.
        set(i.dst, Interval::top());
        break;
    }
}

/** Narrow @p a and @p b under "a cond b is @p taken". */
void
refine(Cond cond, bool taken, Interval &a, Interval &b)
{
    if (!taken)
        cond = negate(cond);
    Interval na = a, nb = b;
    switch (cond) {
      case Cond::LT:
        if (b.hi != Interval::kPosInf)
            na = a.meet(Interval::range(Interval::kNegInf, b.hi - 1));
        if (a.lo != Interval::kNegInf)
            nb = b.meet(Interval::range(a.lo + 1, Interval::kPosInf));
        break;
      case Cond::LE:
        na = a.meet(Interval::range(Interval::kNegInf, b.hi));
        nb = b.meet(Interval::range(a.lo, Interval::kPosInf));
        break;
      case Cond::GT:
        if (b.lo != Interval::kNegInf)
            na = a.meet(Interval::range(b.lo + 1, Interval::kPosInf));
        if (a.hi != Interval::kPosInf)
            nb = b.meet(Interval::range(Interval::kNegInf, a.hi - 1));
        break;
      case Cond::GE:
        na = a.meet(Interval::range(b.lo, Interval::kPosInf));
        nb = b.meet(Interval::range(Interval::kNegInf, a.hi));
        break;
      case Cond::EQ:
        na = a.meet(b);
        nb = b.meet(a);
        break;
      case Cond::NE:
        break;
    }
    a = na;
    b = nb;
}

} // namespace

ValueRanges
valueRanges(const Function &fn)
{
    const size_t nb = fn.blocks.size();
    const size_t nr = static_cast<size_t>(fn.nextReg);
    ValueRanges vr;
    vr.in.assign(nb, std::vector<Interval>(nr, Interval::bottom()));
    // Arguments arrive in vregs 0..numArgs-1 with unknown values.
    for (unsigned a = 0; a < fn.numArgs && a < nr; ++a)
        vr.in[0][a] = Interval::top();

    std::vector<unsigned> visits(nb, 0);
    std::vector<bool> reached(nb, false);
    reached[0] = true;
    std::deque<int> work{0};
    std::vector<bool> queued(nb, false);
    queued[0] = true;
    constexpr unsigned kWidenAfter = 4;

    while (!work.empty()) {
        int id = work.front();
        work.pop_front();
        queued[static_cast<size_t>(id)] = false;
        std::vector<Interval> st = vr.in[static_cast<size_t>(id)];
        const Block &b = fn.block(id);
        for (const IrInst &i : b.insts) {
            if (!i.isTerminator())
                transfer(i, st);
        }
        auto propagate = [&](int succ, const std::vector<Interval> &out) {
            size_t s = static_cast<size_t>(succ);
            std::vector<Interval> merged(nr);
            bool changed = false;
            for (size_t r = 0; r < nr; ++r) {
                Interval j = reached[s] ? vr.in[s][r].join(out[r])
                                        : out[r];
                if (visits[s] >= kWidenAfter)
                    j = j.widenedFrom(vr.in[s][r]);
                merged[r] = j;
                changed = changed || j != vr.in[s][r];
            }
            if (!reached[s] || changed) {
                vr.in[s] = std::move(merged);
                reached[s] = true;
                ++visits[s];
                if (!queued[s]) {
                    queued[s] = true;
                    work.push_back(succ);
                }
            }
        };
        if (b.insts.empty())
            continue;
        const IrInst &t = b.terminator();
        if (t.op == IrOp::Br) {
            std::vector<Interval> tst = st, fst = st;
            refine(t.cond, true, tst[static_cast<size_t>(t.a)],
                   tst[static_cast<size_t>(t.b)]);
            refine(t.cond, false, fst[static_cast<size_t>(t.a)],
                   fst[static_cast<size_t>(t.b)]);
            propagate(t.tblk, tst);
            propagate(t.fblk, fst);
        } else if (t.op == IrOp::Jump) {
            propagate(t.tblk, st);
        }
    }
    return vr;
}

// --------------------------------------------------------------------
// Must-accessed addresses.
// --------------------------------------------------------------------

AddrFact
addrFactOf(const IrInst &i)
{
    BP5_ASSERT(i.op == IrOp::Load || i.op == IrOp::Store,
               "addrFactOf on non-memory instruction");
    AddrFact f;
    f.base = i.a;
    f.index = i.b;
    f.disp = i.imm;
    f.size = i.size;
    if (f.index != kNoReg && f.index < f.base)
        std::swap(f.base, f.index);
    return f;
}

namespace {

/** Remove facts naming @p r, then insert the widest form of @p gen. */
void
killReg(std::vector<AddrFact> &set, VReg r)
{
    set.erase(std::remove_if(set.begin(), set.end(),
                             [&](const AddrFact &f) {
                                 return f.base == r || f.index == r;
                             }),
              set.end());
}

void
genFact(std::vector<AddrFact> &set, const AddrFact &f)
{
    for (AddrFact &e : set) {
        if (e.sameAddress(f)) {
            e.size = std::max(e.size, f.size);
            return;
        }
    }
    set.insert(std::lower_bound(set.begin(), set.end(), f), f);
}

/** Transfer one instruction over a fact set. */
void
transferFacts(const IrInst &i, std::vector<AddrFact> &set)
{
    // The access itself proves its address dereferenceable — generate
    // before killing the destination (a load may overwrite its own
    // base register).
    if (i.op == IrOp::Load || i.op == IrOp::Store)
        genFact(set, addrFactOf(i));
    if (!i.isTerminator() && i.op != IrOp::Store && i.dst != kNoReg)
        killReg(set, i.dst);
}

std::vector<AddrFact>
intersectFacts(const std::vector<AddrFact> &a,
               const std::vector<AddrFact> &b)
{
    std::vector<AddrFact> out;
    for (const AddrFact &fa : a) {
        for (const AddrFact &fb : b) {
            if (fa.sameAddress(fb)) {
                AddrFact f = fa;
                f.size = std::min(fa.size, fb.size);
                out.push_back(f);
                break;
            }
        }
    }
    return out;
}

} // namespace

bool
MustAccess::covered(const std::vector<AddrFact> &set, const AddrFact &f,
                    unsigned size)
{
    for (const AddrFact &e : set) {
        if (e.base != f.base || e.index != f.index)
            continue;
        if (e.disp <= f.disp &&
            f.disp + static_cast<int64_t>(size) <=
                e.disp + static_cast<int64_t>(e.size))
            return true;
    }
    return false;
}

MustAccess
mustAccessedAddresses(const Function &fn)
{
    const size_t nb = fn.blocks.size();
    MustAccess ma;
    ma.in.assign(nb, {});
    std::vector<bool> visited(nb, false);
    visited[0] = true; // entry starts with no facts

    bool changed = true;
    while (changed) {
        changed = false;
        for (const Block &b : fn.blocks) {
            size_t id = static_cast<size_t>(b.id);
            if (!visited[id])
                continue;
            std::vector<AddrFact> st = ma.in[id];
            for (const IrInst &i : b.insts)
                transferFacts(i, st);
            for (int succ : fn.successors(b.id)) {
                size_t s = static_cast<size_t>(succ);
                std::vector<AddrFact> merged =
                    visited[s] ? intersectFacts(ma.in[s], st) : st;
                if (!visited[s] || merged != ma.in[s]) {
                    ma.in[s] = std::move(merged);
                    visited[s] = true;
                    changed = true;
                }
            }
        }
    }
    return ma;
}

ProveStats
proveSafeLoads(Function &fn)
{
    MustAccess ma = mustAccessedAddresses(fn);
    ProveStats stats;
    for (Block &b : fn.blocks) {
        std::vector<AddrFact> st = ma.in[static_cast<size_t>(b.id)];
        for (IrInst &i : b.insts) {
            if (i.op == IrOp::Load) {
                ++stats.candidates;
                if (i.safe) {
                    ++stats.alreadySafe;
                } else if (MustAccess::covered(st, addrFactOf(i),
                                               i.size)) {
                    i.safe = true;
                    ++stats.proved;
                }
            }
            transferFacts(i, st);
        }
    }
    return stats;
}

} // namespace bp5::mpc
