#include "mpc/ir.h"

#include <sstream>

#include "support/logging.h"

namespace bp5::mpc {

Cond
negate(Cond c)
{
    switch (c) {
      case Cond::LT: return Cond::GE;
      case Cond::LE: return Cond::GT;
      case Cond::GT: return Cond::LE;
      case Cond::GE: return Cond::LT;
      case Cond::EQ: return Cond::NE;
      case Cond::NE: return Cond::EQ;
    }
    panic("bad cond");
}

namespace {

const char *
condName(Cond c)
{
    switch (c) {
      case Cond::LT: return "lt";
      case Cond::LE: return "le";
      case Cond::GT: return "gt";
      case Cond::GE: return "ge";
      case Cond::EQ: return "eq";
      case Cond::NE: return "ne";
    }
    return "?";
}

const char *
opName(IrOp op)
{
    switch (op) {
      case IrOp::Const: return "const";
      case IrOp::Add: return "add";
      case IrOp::Sub: return "sub";
      case IrOp::Mul: return "mul";
      case IrOp::Div: return "div";
      case IrOp::And: return "and";
      case IrOp::Or: return "or";
      case IrOp::Xor: return "xor";
      case IrOp::Shl: return "shl";
      case IrOp::Shr: return "shr";
      case IrOp::Sar: return "sar";
      case IrOp::AddI: return "addi";
      case IrOp::MulI: return "muli";
      case IrOp::AndI: return "andi";
      case IrOp::OrI: return "ori";
      case IrOp::ShlI: return "shli";
      case IrOp::ShrI: return "shri";
      case IrOp::SraI: return "srai";
      case IrOp::Load: return "load";
      case IrOp::Store: return "store";
      case IrOp::Select: return "select";
      case IrOp::Max: return "max";
      case IrOp::Min: return "min";
      case IrOp::Br: return "br";
      case IrOp::Jump: return "jump";
      case IrOp::Ret: return "ret";
    }
    return "?";
}

} // namespace

int
Function::addBlock(const std::string &bname)
{
    Block b;
    b.id = static_cast<int>(blocks.size());
    b.name = bname;
    blocks.push_back(std::move(b));
    return blocks.back().id;
}

std::vector<int>
Function::successors(int blk) const
{
    const Block &b = block(blk);
    if (b.insts.empty())
        return {};
    const IrInst &t = b.insts.back();
    switch (t.op) {
      case IrOp::Br:
        return {t.tblk, t.fblk};
      case IrOp::Jump:
        return {t.tblk};
      default:
        return {};
    }
}

std::vector<int>
Function::predecessors(int blk) const
{
    std::vector<int> preds;
    for (const Block &b : blocks) {
        for (int s : successors(b.id)) {
            if (s == blk) {
                preds.push_back(b.id);
                break;
            }
        }
    }
    return preds;
}

std::string
Function::dump() const
{
    std::ostringstream os;
    os << "function " << name << " (args=" << numArgs << ")\n";
    for (const Block &b : blocks) {
        os << "  " << b.name << " (b" << b.id << "):\n";
        for (const IrInst &i : b.insts) {
            os << "    " << opName(i.op);
            switch (i.op) {
              case IrOp::Const:
                os << " v" << i.dst << ", " << i.imm;
                break;
              case IrOp::AddI: case IrOp::MulI: case IrOp::AndI:
              case IrOp::OrI: case IrOp::ShlI: case IrOp::ShrI:
              case IrOp::SraI:
                os << " v" << i.dst << ", v" << i.a << ", " << i.imm;
                break;
              case IrOp::Load:
                os << " v" << i.dst << ", [v" << i.a;
                if (i.b != kNoReg)
                    os << " + v" << i.b;
                os << " + " << i.imm << "] size=" << unsigned(i.size)
                   << (i.safe ? " safe" : "");
                break;
              case IrOp::Store:
                os << " [v" << i.a;
                if (i.b != kNoReg)
                    os << " + v" << i.b;
                os << " + " << i.imm << "], v" << i.x
                   << " size=" << unsigned(i.size);
                break;
              case IrOp::Select:
                os << " v" << i.dst << ", (v" << i.a << " "
                   << condName(i.cond) << " v" << i.b << ") ? v" << i.x
                   << " : v" << i.y;
                break;
              case IrOp::Br:
                os << " (v" << i.a << " " << condName(i.cond) << " v"
                   << i.b << ") b" << i.tblk << " else b" << i.fblk;
                break;
              case IrOp::Jump:
                os << " b" << i.tblk;
                break;
              case IrOp::Ret:
                if (i.a != kNoReg)
                    os << " v" << i.a;
                break;
              default:
                os << " v" << i.dst << ", v" << i.a << ", v" << i.b;
                break;
            }
            os << "\n";
        }
    }
    return os.str();
}

void
Function::verify() const
{
    BP5_ASSERT(!blocks.empty(), "%s: no blocks", name.c_str());
    auto checkReg = [&](VReg r, const char *what) {
        BP5_ASSERT(r >= 0 && r < nextReg, "%s: bad %s register v%d",
                   name.c_str(), what, r);
    };
    auto checkBlk = [&](int b) {
        BP5_ASSERT(b >= 0 && b < static_cast<int>(blocks.size()),
                   "%s: bad block id %d", name.c_str(), b);
    };
    for (const Block &b : blocks) {
        BP5_ASSERT(b.terminated(), "%s: block %s not terminated",
                   name.c_str(), b.name.c_str());
        for (size_t k = 0; k < b.insts.size(); ++k) {
            const IrInst &i = b.insts[k];
            BP5_ASSERT(i.isTerminator() == (k + 1 == b.insts.size()),
                       "%s: terminator in the middle of block %s",
                       name.c_str(), b.name.c_str());
            switch (i.op) {
              case IrOp::Const:
                checkReg(i.dst, "dst");
                break;
              case IrOp::AddI: case IrOp::MulI: case IrOp::AndI:
              case IrOp::OrI: case IrOp::ShlI: case IrOp::ShrI:
              case IrOp::SraI:
                checkReg(i.dst, "dst");
                checkReg(i.a, "src");
                break;
              case IrOp::Load:
                checkReg(i.dst, "dst");
                checkReg(i.a, "base");
                if (i.b != kNoReg)
                    checkReg(i.b, "index");
                BP5_ASSERT(i.size == 1 || i.size == 2 || i.size == 4 ||
                           i.size == 8, "bad load size");
                break;
              case IrOp::Store:
                checkReg(i.a, "base");
                checkReg(i.x, "value");
                if (i.b != kNoReg)
                    checkReg(i.b, "index");
                break;
              case IrOp::Select:
                checkReg(i.dst, "dst");
                checkReg(i.a, "a");
                checkReg(i.b, "b");
                checkReg(i.x, "x");
                checkReg(i.y, "y");
                break;
              case IrOp::Br:
                checkReg(i.a, "a");
                checkReg(i.b, "b");
                checkBlk(i.tblk);
                checkBlk(i.fblk);
                break;
              case IrOp::Jump:
                checkBlk(i.tblk);
                break;
              case IrOp::Ret:
                if (i.a != kNoReg)
                    checkReg(i.a, "ret");
                break;
              default:
                checkReg(i.dst, "dst");
                checkReg(i.a, "a");
                checkReg(i.b, "b");
                break;
            }
        }
    }
}

void
IrBuilder::declareArgs(unsigned n)
{
    BP5_ASSERT(fn_.nextReg == 0, "declareArgs after registers created");
    fn_.numArgs = n;
    fn_.nextReg = static_cast<VReg>(n);
}

void
IrBuilder::append(IrInst inst)
{
    BP5_ASSERT(cur_ >= 0, "no current block");
    Block &b = fn_.block(cur_);
    BP5_ASSERT(!b.terminated(), "appending to terminated block %s",
               b.name.c_str());
    b.insts.push_back(inst);
}

VReg
IrBuilder::iconst(int64_t v)
{
    IrInst i;
    i.op = IrOp::Const;
    i.dst = fn_.newReg();
    i.imm = v;
    append(i);
    return i.dst;
}

VReg
IrBuilder::bin(IrOp op, VReg a, VReg b)
{
    IrInst i;
    i.op = op;
    i.dst = fn_.newReg();
    i.a = a;
    i.b = b;
    append(i);
    return i.dst;
}

VReg
IrBuilder::immOp(IrOp op, VReg a, int64_t imm)
{
    IrInst i;
    i.op = op;
    i.dst = fn_.newReg();
    i.a = a;
    i.imm = imm;
    append(i);
    return i.dst;
}

void
IrBuilder::copyTo(VReg dst, VReg src)
{
    IrInst i;
    i.op = IrOp::OrI;
    i.dst = dst;
    i.a = src;
    i.imm = 0;
    append(i);
}

VReg
IrBuilder::load(VReg base, int64_t disp, unsigned size, bool isSigned,
                bool safe)
{
    IrInst i;
    i.op = IrOp::Load;
    i.dst = fn_.newReg();
    i.a = base;
    i.imm = disp;
    i.size = static_cast<uint8_t>(size);
    i.isSigned = isSigned;
    i.safe = safe;
    append(i);
    return i.dst;
}

VReg
IrBuilder::loadx(VReg base, VReg index, unsigned size, bool isSigned,
                 bool safe)
{
    IrInst i;
    i.op = IrOp::Load;
    i.dst = fn_.newReg();
    i.a = base;
    i.b = index;
    i.size = static_cast<uint8_t>(size);
    i.isSigned = isSigned;
    i.safe = safe;
    append(i);
    return i.dst;
}

void
IrBuilder::store(VReg val, VReg base, int64_t disp, unsigned size)
{
    IrInst i;
    i.op = IrOp::Store;
    i.a = base;
    i.x = val;
    i.imm = disp;
    i.size = static_cast<uint8_t>(size);
    append(i);
}

void
IrBuilder::storex(VReg val, VReg base, VReg index, unsigned size)
{
    IrInst i;
    i.op = IrOp::Store;
    i.a = base;
    i.b = index;
    i.x = val;
    i.size = static_cast<uint8_t>(size);
    append(i);
}

VReg
IrBuilder::select(Cond c, VReg a, VReg b, VReg x, VReg y)
{
    IrInst i;
    i.op = IrOp::Select;
    i.dst = fn_.newReg();
    i.cond = c;
    i.a = a;
    i.b = b;
    i.x = x;
    i.y = y;
    append(i);
    return i.dst;
}

void
IrBuilder::selectInto(VReg dst, Cond c, VReg a, VReg b, VReg x)
{
    IrInst i;
    i.op = IrOp::Select;
    i.dst = dst;
    i.cond = c;
    i.a = a;
    i.b = b;
    i.x = x;
    i.y = dst;
    append(i);
}

VReg
IrBuilder::max(VReg a, VReg b)
{
    return bin(IrOp::Max, a, b);
}

VReg
IrBuilder::min(VReg a, VReg b)
{
    return bin(IrOp::Min, a, b);
}

void
IrBuilder::maxInto(VReg acc, VReg b)
{
    IrInst i;
    i.op = IrOp::Max;
    i.dst = acc;
    i.a = acc;
    i.b = b;
    append(i);
}

void
IrBuilder::minInto(VReg acc, VReg b)
{
    IrInst i;
    i.op = IrOp::Min;
    i.dst = acc;
    i.a = acc;
    i.b = b;
    append(i);
}

void
IrBuilder::addInto(VReg acc, VReg b)
{
    IrInst i;
    i.op = IrOp::Add;
    i.dst = acc;
    i.a = acc;
    i.b = b;
    append(i);
}

void
IrBuilder::subInto(VReg acc, VReg b)
{
    IrInst i;
    i.op = IrOp::Sub;
    i.dst = acc;
    i.a = acc;
    i.b = b;
    append(i);
}

void
IrBuilder::addiInto(VReg acc, int64_t imm)
{
    IrInst i;
    i.op = IrOp::AddI;
    i.dst = acc;
    i.a = acc;
    i.imm = imm;
    append(i);
}

void
IrBuilder::br(Cond c, VReg a, VReg b, int tblk, int fblk)
{
    IrInst i;
    i.op = IrOp::Br;
    i.cond = c;
    i.a = a;
    i.b = b;
    i.tblk = tblk;
    i.fblk = fblk;
    append(i);
}

void
IrBuilder::jump(int blk)
{
    IrInst i;
    i.op = IrOp::Jump;
    i.tblk = blk;
    append(i);
}

void
IrBuilder::ret(VReg v)
{
    IrInst i;
    i.op = IrOp::Ret;
    i.a = v;
    append(i);
}

} // namespace bp5::mpc
