/**
 * @file
 * Loop unrolling over mpc IR (DESIGN.md §4.9).  Consumes the counted
 * rotated-loop shape recognized by loops.h and rewrites
 *
 *     pre:  ...                          pre:  ...
 *           jump H                             jump G
 *     H:    body                        G:    limU = limit - (U-1)*step
 *           iv += step                        br cond iv, limU, C0, H
 *           br cond iv, limit, H, E     C0:   body; iv += step; jump C1
 *                                       ...
 *                                       CU-1: body; iv += step
 *                                             br cond iv, limU, C0, T
 *                                       T:    br cond iv, limit, H, E
 *                                       H:    (original loop = remainder)
 *
 * The guard `iv cond limit - (U-1)*step` holding at the top of the
 * unrolled body proves every removed intermediate latch check true, so
 * the clones chain unconditionally; leftover iterations drain through
 * the untouched original loop.  Register state needs no renaming: each
 * clone re-executes the same instructions on the same virtual
 * registers the rolled iteration would have.
 */

#include <map>
#include <set>

#include "mpc/loops.h"
#include "mpc/passes.h"
#include "support/logging.h"

namespace bp5::mpc {

namespace {

size_t
bodyInstCount(const Function &fn, const IrLoop &loop)
{
    size_t n = 0;
    for (int b : loop.blocks)
        n += fn.block(b).insts.size();
    return n;
}

/** True when another loop in @p forest nests strictly inside @p l. */
bool
hasInnerLoop(const IrLoopForest &forest, const IrLoop &l)
{
    for (const IrLoop &o : forest.loops) {
        if (&o != &l && IrLoopForest::nestedIn(o, l))
            return true;
    }
    return false;
}

bool
unrollOne(Function &fn, const IrLoop &loop, unsigned factor)
{
    const int header = loop.header;
    const int latch = loop.latches[0];
    const IrInst br = fn.block(latch).terminator();
    const int exitBlk = br.tblk == header ? br.fblk : br.tblk;
    const Cond cond = loop.cond; // continue while `iv cond limit`

    __int128 delta = static_cast<__int128>(loop.step) * (factor - 1);
    if (delta > INT64_MAX)
        return false;

    std::set<int> inLoop(loop.blocks.begin(), loop.blocks.end());
    // Predecessors entering the loop from outside, captured before any
    // new blocks exist; these are the edges the guard intercepts.
    std::vector<int> outsidePreds;
    for (int p : fn.predecessors(header)) {
        if (!inLoop.count(p))
            outsidePreds.push_back(p);
    }
    if (outsidePreds.empty())
        return false; // entry block is the header; nothing to guard

    const std::string base = fn.block(header).name;

    // Allocate all new blocks first (ids are stable thereafter).
    std::vector<std::map<int, int>> cloneOf(factor);
    for (unsigned u = 0; u < factor; ++u) {
        for (int b : loop.blocks) {
            cloneOf[u][b] = fn.addBlock(
                base + ".u" + std::to_string(u) + "." +
                fn.block(b).name);
        }
    }
    int guardId = fn.addBlock(base + ".unroll.guard");
    int tailId = fn.addBlock(base + ".unroll.tail");

    // Guard: limU = limit - (U-1)*step; enter the unrolled body only
    // when `iv cond limU` proves the next `factor` latch checks.
    VReg limU = fn.newReg();
    {
        Block &g = fn.block(guardId);
        IrInst sub;
        sub.op = IrOp::AddI;
        sub.dst = limU;
        sub.a = loop.limit;
        sub.imm = -static_cast<int64_t>(delta);
        g.insts.push_back(sub);
        IrInst t;
        t.op = IrOp::Br;
        t.cond = cond;
        t.a = loop.iv;
        t.b = limU;
        t.tblk = cloneOf[0][header];
        t.fblk = header;
        g.insts.push_back(t);
    }
    // Tail: the original latch test routes leftover iterations through
    // the untouched loop.
    {
        Block &t = fn.block(tailId);
        IrInst i;
        i.op = IrOp::Br;
        i.cond = cond;
        i.a = loop.iv;
        i.b = loop.limit;
        i.tblk = header;
        i.fblk = exitBlk;
        t.insts.push_back(i);
    }

    // Fill the clones: same instructions, intra-loop edges remapped,
    // the latch check of clone u chaining to clone u+1 (proven taken
    // under the guard) and clone factor-1 re-testing the guard.
    for (unsigned u = 0; u < factor; ++u) {
        for (int b : loop.blocks) {
            Block &dst = fn.block(cloneOf[u][b]);
            dst.insts = fn.block(b).insts;
            IrInst &t = dst.insts.back();
            if (b == latch) {
                if (u + 1 < factor) {
                    IrInst j;
                    j.op = IrOp::Jump;
                    j.tblk = cloneOf[u + 1][header];
                    t = j;
                } else {
                    IrInst nt;
                    nt.op = IrOp::Br;
                    nt.cond = cond;
                    nt.a = loop.iv;
                    nt.b = limU;
                    nt.tblk = cloneOf[0][header];
                    nt.fblk = tailId;
                    t = nt;
                }
            } else if (t.op == IrOp::Br) {
                if (inLoop.count(t.tblk))
                    t.tblk = cloneOf[u][t.tblk];
                if (inLoop.count(t.fblk))
                    t.fblk = cloneOf[u][t.fblk];
            } else if (t.op == IrOp::Jump) {
                if (inLoop.count(t.tblk))
                    t.tblk = cloneOf[u][t.tblk];
            }
        }
    }

    // Intercept outside entries: header -> guard.
    for (int p : outsidePreds) {
        IrInst &t = fn.block(p).insts.back();
        if (t.op == IrOp::Br) {
            if (t.tblk == header)
                t.tblk = guardId;
            if (t.fblk == header)
                t.fblk = guardId;
        } else if (t.op == IrOp::Jump && t.tblk == header) {
            t.tblk = guardId;
        }
    }
    return true;
}

} // namespace

UnrollStats
unrollLoops(Function &fn, const UnrollOptions &opts)
{
    UnrollStats stats;
    if (opts.factor < 2)
        return stats;
    // One analysis pass: innermost counted loops are independent, and
    // unrolling only appends blocks and retargets edges into the
    // processed loop's header, so earlier candidates stay valid.
    IrLoopForest forest = findLoops(fn);
    for (const IrLoop &l : forest.loops) {
        if (!l.hasCountedShape || l.header == 0 || hasInnerLoop(forest, l))
            continue;
        if (bodyInstCount(fn, l) > opts.maxBodyInsts) {
            ++stats.rejected;
            continue;
        }
        if (unrollOne(fn, l, opts.factor))
            ++stats.unrolled;
        else
            ++stats.rejected;
    }
    return stats;
}

} // namespace bp5::mpc
