/**
 * @file
 * Application-level workload models of the four BioPerf applications
 * the paper studies.  Each workload
 *
 *  1. synthesizes deterministic class-scaled inputs (the BioPerf
 *     class-A/B/C analogue; see DESIGN.md for the substitution),
 *  2. can run the full native C++ pipeline under a profiler to
 *     produce the Fig-1 function breakout, and
 *  3. schedules a sampled set of hot-kernel invocations on the
 *     simulated POWER5-class machine (the SMARTS-sampling analogue)
 *     to produce the hardware-counter numbers of the evaluation.
 */

#ifndef BIOPERF5_WORKLOADS_WORKLOAD_H
#define BIOPERF5_WORKLOADS_WORKLOAD_H

#include <memory>
#include <vector>

#include "bio/blast.h"
#include "bio/clustal.h"
#include "bio/hmm.h"
#include "kernels/kernels.h"
#include "workloads/profile.h"

namespace bp5::workloads {

/** The four applications (paper Table I order). */
enum class App
{
    Blast,
    Clustalw,
    Fasta,
    Hmmer,
    NUM_APPS,
};

const char *appName(App app);

/** The hot kernel each application spends its time in (Fig 1). */
kernels::KernelKind appKernel(App app);

/** Input scale, mirroring BioPerf's input classes. */
enum class InputClass { A, B, C };

/** Parse "A"/"B"/"C" (used by bench CLIs); fatal on other input. */
InputClass inputClassFromString(const std::string &s);

/** Workload construction parameters. */
struct WorkloadConfig
{
    App app = App::Clustalw;
    InputClass klass = InputClass::B;
    uint64_t seed = 42;

    /**
     * Instruction budget for one simulate() call: kernel invocations
     * are scheduled until the budget is consumed (uniform sampling of
     * the app's dynamic kernel work).
     */
    uint64_t simInstructionBudget = 4'000'000;
};

/** Result of a simulated run. */
struct SimResult
{
    sim::Counters counters;
    std::vector<sim::IntervalSample> timeline;
    unsigned invocations = 0;
    mpc::Compiled compiled; ///< code statistics of the kernel build
    sim::BranchProfile branchProfile; ///< per-site PMU (when enabled)
};

/** One of the four applications with generated inputs. */
class Workload
{
  public:
    explicit Workload(const WorkloadConfig &config);
    ~Workload();

    const WorkloadConfig &config() const { return config_; }
    App app() const { return config_.app; }

    /**
     * Run the complete native pipeline under the profiler and return
     * the Fig-1 style function breakdown (descending share).
     */
    std::vector<FunctionTime> profileNative() const;

    /**
     * Simulate the workload's hot-kernel invocations.
     * @param variant code variant (paper Fig 3)
     * @param mc machine configuration
     * @param interval_cycles nonzero to collect a Fig-2 timeline
     * @param branch_profile collect per-branch-site PMU counters
     */
    SimResult simulate(mpc::Variant variant, const sim::MachineConfig &mc,
                       uint64_t interval_cycles = 0,
                       bool branch_profile = false) const;

    /**
     * Simulate on a caller-supplied machine (must be built for this
     * app's kernel).  The machine's accumulated counters feed the
     * instruction budget, so reset() it first when reusing one across
     * runs — the experiment driver does exactly that to keep one
     * machine per worker thread.
     */
    SimResult simulate(kernels::KernelMachine &km) const;

  private:
    struct Data;

    void profileOnce(Profiler &prof, const Data &d) const;

    WorkloadConfig config_;
    std::unique_ptr<Data> data_;
};

} // namespace bp5::workloads

#endif // BIOPERF5_WORKLOADS_WORKLOAD_H
