/**
 * @file
 * Scoped wall-clock function profiler for the native application
 * pipelines — the gprof analogue behind the paper's Fig 1
 * function-wise breakout.
 */

#ifndef BIOPERF5_WORKLOADS_PROFILE_H
#define BIOPERF5_WORKLOADS_PROFILE_H

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace bp5::workloads {

/** Time spent in one profiled function. */
struct FunctionTime
{
    std::string name;
    double seconds = 0.0;
    double share = 0.0; ///< fraction of total profiled time
};

/** Accumulates per-function wall time through RAII scopes. */
class Profiler
{
  public:
    /** RAII scope: charges its lifetime to @p name. */
    class Scope
    {
      public:
        Scope(Profiler &p, const std::string &name)
            : profiler_(p), name_(name),
              start_(std::chrono::steady_clock::now())
        {
        }

        ~Scope()
        {
            auto end = std::chrono::steady_clock::now();
            profiler_.add(name_,
                          std::chrono::duration<double>(end - start_)
                              .count());
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Profiler &profiler_;
        std::string name_;
        std::chrono::steady_clock::time_point start_;
    };

    void
    add(const std::string &name, double seconds)
    {
        totals_[name] += seconds;
    }

    /** Breakdown sorted by descending share. */
    std::vector<FunctionTime> breakdown() const;

    void reset() { totals_.clear(); }

  private:
    std::map<std::string, double> totals_;
};

} // namespace bp5::workloads

#endif // BIOPERF5_WORKLOADS_PROFILE_H
