/**
 * @file
 * Scoped CPU-time function profiler for the native application
 * pipelines — the gprof analogue behind the paper's Fig 1
 * function-wise breakout.
 */

#ifndef BIOPERF5_WORKLOADS_PROFILE_H
#define BIOPERF5_WORKLOADS_PROFILE_H

#include <chrono>
#include <ctime>
#include <map>
#include <string>
#include <vector>

namespace bp5::workloads {

/** Time spent in one profiled function. */
struct FunctionTime
{
    std::string name;
    double seconds = 0.0;
    double share = 0.0; ///< fraction of total profiled time
};

/** Accumulates per-function CPU time through RAII scopes. */
class Profiler
{
  public:
    /**
     * The profiled quantity is per-thread CPU time, not wall time:
     * a preempted thread stops accumulating, so the measured shares
     * reflect the work the functions do rather than host scheduling
     * noise (wall-clock scopes made the Fig-1 ordering flaky on
     * loaded CI machines).
     */
    static double
    now()
    {
#if defined(CLOCK_THREAD_CPUTIME_ID)
        timespec ts;
        if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
            return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
#endif
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    /** RAII scope: charges its lifetime to @p name. */
    class Scope
    {
      public:
        Scope(Profiler &p, const std::string &name)
            : profiler_(p), name_(name), start_(now())
        {
        }

        ~Scope() { profiler_.add(name_, now() - start_); }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Profiler &profiler_;
        std::string name_;
        double start_;
    };

    void
    add(const std::string &name, double seconds)
    {
        totals_[name] += seconds;
    }

    /** Breakdown sorted by descending share. */
    std::vector<FunctionTime> breakdown() const;

    void reset() { totals_.clear(); }

  private:
    std::map<std::string, double> totals_;
};

} // namespace bp5::workloads

#endif // BIOPERF5_WORKLOADS_PROFILE_H
