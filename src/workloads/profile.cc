#include "workloads/profile.h"

#include <algorithm>

namespace bp5::workloads {

std::vector<FunctionTime>
Profiler::breakdown() const
{
    double total = 0.0;
    for (const auto &[name, t] : totals_)
        total += t;
    std::vector<FunctionTime> out;
    for (const auto &[name, t] : totals_) {
        FunctionTime ft;
        ft.name = name;
        ft.seconds = t;
        ft.share = total > 0.0 ? t / total : 0.0;
        out.push_back(ft);
    }
    std::sort(out.begin(), out.end(),
              [](const FunctionTime &a, const FunctionTime &b) {
                  return a.seconds > b.seconds ||
                         (a.seconds == b.seconds && a.name < b.name);
              });
    return out;
}

} // namespace bp5::workloads
