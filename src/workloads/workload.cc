#include "workloads/workload.h"

#include <algorithm>

#include "bio/fasta.h"
#include "bio/generator.h"
#include "support/logging.h"

namespace bp5::workloads {

const char *
appName(App app)
{
    switch (app) {
      case App::Blast: return "Blast";
      case App::Clustalw: return "Clustalw";
      case App::Fasta: return "Fasta";
      case App::Hmmer: return "Hmmer";
      default: return "?";
    }
}

kernels::KernelKind
appKernel(App app)
{
    switch (app) {
      case App::Blast: return kernels::KernelKind::SemiGAlign;
      case App::Clustalw: return kernels::KernelKind::ForwardPass;
      case App::Fasta: return kernels::KernelKind::Dropgsw;
      case App::Hmmer: return kernels::KernelKind::P7Viterbi;
      default: panic("bad app");
    }
}

InputClass
inputClassFromString(const std::string &s)
{
    if (s == "A" || s == "a")
        return InputClass::A;
    if (s == "B" || s == "b")
        return InputClass::B;
    if (s == "C" || s == "c")
        return InputClass::C;
    fatal("unknown input class '%s' (expected A, B or C)", s.c_str());
}

namespace {

/** Per-class scale factors. */
struct Scale
{
    size_t clustalN, clustalLen;
    size_t fastaQuery, fastaDb;
    size_t hmmFamLen, hmmDb;
    size_t blastQuery, blastDb;
};

Scale
scaleFor(InputClass k)
{
    switch (k) {
      case InputClass::A:
        return {6, 50, 80, 6, 40, 8, 80, 8};
      // Clustalw needs enough sequences that the O(N^2) pairwise
      // stage dominates the N-1 profile merges as in the paper's
      // Fig 1 (68.9% forward_pass); below ~20 sequences the two
      // stages tie and the profile ordering becomes input noise.
      case InputClass::B:
        return {28, 100, 150, 16, 80, 16, 160, 20};
      case InputClass::C:
      default:
        return {40, 160, 300, 32, 140, 32, 300, 40};
    }
}

/**
 * Find a shared-word seed between query and subject (the position a
 * two-hit would fire at): the first exact 3-mer match away from the
 * sequence edges.  Returns false if none exists.
 */
bool
findSeed(const bio::Sequence &q, const bio::Sequence &s, size_t &qFrom,
         size_t &sFrom)
{
    constexpr unsigned w = 3;
    if (q.size() < w + 2 || s.size() < w + 2)
        return false;
    for (size_t sp = 1; sp + w + 1 < s.size(); ++sp) {
        for (size_t qp = 1; qp + w + 1 < q.size(); ++qp) {
            bool match = true;
            for (unsigned k = 0; k < w; ++k) {
                if (q[qp + k] != s[sp + k]) {
                    match = false;
                    break;
                }
            }
            if (match) {
                qFrom = qp;
                sFrom = sp;
                return true;
            }
        }
    }
    return false;
}

} // namespace

/** Generated inputs and derived models for one workload. */
struct Workload::Data
{
    bio::GapPenalty gap{10, 1};
    const bio::SubstitutionMatrix &matrix =
        bio::SubstitutionMatrix::blosum62();

    // Clustalw: a divergent protein family.
    std::vector<bio::Sequence> family;

    // Fasta / Blast: a query against a database with planted homologs.
    bio::Sequence query{"query", bio::Alphabet::Protein,
                        std::vector<uint8_t>{0}};
    std::vector<bio::Sequence> db;

    // Hmmer: a Plan7 model and a mixed search database.
    bio::Plan7Model model;
    std::vector<bio::Sequence> hmmDb;

    // Blast: extension seeds harvested from shared words.
    struct Seed
    {
        size_t qFrom, dbIdx, sFrom;
    };
    std::vector<Seed> seeds;
};

Workload::Workload(const WorkloadConfig &config)
    : config_(config), data_(std::make_unique<Data>())
{
    Scale sc = scaleFor(config.klass);
    bio::SequenceGenerator gen(config.seed * 1000003 +
                               static_cast<uint64_t>(config.app));
    Data &d = *data_;

    switch (config.app) {
      case App::Clustalw: {
        d.family = gen.family(sc.clustalN, sc.clustalLen,
                              bio::MutationModel{0.25, 0.03, 0.03},
                              "clu");
        break;
      }
      case App::Fasta: {
        d.query = gen.random(sc.fastaQuery, "query");
        d.db = gen.database(d.query, sc.fastaDb, sc.fastaQuery / 2,
                            sc.fastaQuery * 3 / 2, sc.fastaDb / 4,
                            bio::MutationModel{0.2, 0.03, 0.03});
        break;
      }
      case App::Hmmer: {
        d.family = gen.family(6, sc.hmmFamLen,
                              bio::MutationModel{0.15, 0.02, 0.02},
                              "hmm");
        d.model = bio::Plan7Model::fromFamily(d.family);
        for (size_t i = 0; i < sc.hmmDb; ++i) {
            if (i % 2 == 0) {
                d.hmmDb.push_back(gen.mutate(
                    d.family[i % d.family.size()],
                    bio::MutationModel{0.2, 0.03, 0.03},
                    "dbh" + std::to_string(i)));
            } else {
                d.hmmDb.push_back(
                    gen.random(sc.hmmFamLen, "dbr" + std::to_string(i)));
            }
        }
        break;
      }
      case App::Blast: {
        d.query = gen.random(sc.blastQuery, "query");
        d.db = gen.database(d.query, sc.blastDb, sc.blastQuery / 2,
                            sc.blastQuery * 3 / 2, sc.blastDb / 3,
                            bio::MutationModel{0.15, 0.02, 0.02});
        for (size_t k = 0; k < d.db.size(); ++k) {
            size_t qf = 0, sf = 0;
            if (findSeed(d.query, d.db[k], qf, sf))
                d.seeds.push_back({qf, k, sf});
        }
        BP5_ASSERT(!d.seeds.empty(), "no Blast seeds found");
        break;
      }
      default:
        panic("bad app");
    }
}

Workload::~Workload() = default;

std::vector<FunctionTime>
Workload::profileNative() const
{
    Profiler prof;
    const Data &d = *data_;

    // Repeat the pipeline until enough wall time accumulates that the
    // breakdown is stable (gprof-style sampling needs samples).
    double accumulated = 0.0;
    for (int rep = 0; rep < 64 && accumulated < 0.08; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        profileOnce(prof, d);
        accumulated += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    }
    return prof.breakdown();
}

void
Workload::profileOnce(Profiler &prof, const Data &d) const
{
    switch (config_.app) {
      case App::Clustalw: {
        bio::DistanceMatrix dist(0);
        {
            Profiler::Scope s(prof, "forward_pass (pairalign)");
            dist = bio::pairwiseDistances(d.family, d.matrix, d.gap);
        }
        bio::GuideTree tree;
        {
            Profiler::Scope s(prof, "guide tree (upgma)");
            tree = bio::upgmaTree(dist);
        }
        {
            Profiler::Scope s(prof, "progressive (palign)");
            auto build = [&](auto &&self, int node) -> bio::Profile {
                const auto &nd = tree.nodes[size_t(node)];
                if (nd.leaf >= 0)
                    return bio::Profile(d.family[size_t(nd.leaf)],
                                        size_t(nd.leaf));
                bio::Profile l = self(self, nd.left);
                bio::Profile r = self(self, nd.right);
                return bio::Profile::align(l, r, d.matrix, d.gap);
            };
            (void)build(build, tree.root);
        }
        {
            Profiler::Scope s(prof, "input/output");
            std::string txt = bio::formatFasta(d.family);
            (void)bio::parseFasta(txt, bio::Alphabet::Protein);
        }
        break;
      }
      case App::Fasta: {
        std::vector<bio::Alignment> results;
        {
            Profiler::Scope s(prof, "dropgsw (ssearch)");
            for (const bio::Sequence &subj : d.db)
                results.push_back(
                    bio::swAlign(d.query, subj, d.matrix, d.gap));
        }
        {
            Profiler::Scope s(prof, "display/sort");
            std::sort(results.begin(), results.end(),
                      [](const bio::Alignment &a,
                         const bio::Alignment &b) {
                          return a.score > b.score;
                      });
            std::string out;
            for (const auto &r : results)
                out += r.alignedA + "\n" + r.alignedB + "\n";
        }
        {
            Profiler::Scope s(prof, "input/output");
            std::string txt = bio::formatFasta(d.db);
            (void)bio::parseFasta(txt, bio::Alphabet::Protein);
        }
        break;
      }
      case App::Hmmer: {
        // hmmpfam only: model construction is a separate program
        // (hmmbuild) and is not part of the paper's profiled run.
        std::vector<bio::HmmHit> hits;
        {
            Profiler::Scope s(prof, "P7Viterbi (hmmpfam)");
            hits = bio::hmmSearch(d.model, d.hmmDb,
                                  bio::Plan7Model::kNegInf + 1);
        }
        {
            Profiler::Scope s(prof, "PostprocessSignificantHits");
            std::string report;
            for (const auto &h : hits) {
                report += d.hmmDb[h.seqIndex].name() + " " +
                          std::to_string(h.score) + "\n";
            }
        }
        {
            Profiler::Scope s(prof, "input/output");
            std::string txt = bio::formatFasta(d.hmmDb);
            (void)bio::parseFasta(txt, bio::Alphabet::Protein);
        }
        break;
      }
      case App::Blast: {
        bio::BlastParams params;
        params.gap = d.gap;
        std::unique_ptr<bio::BlastSearch> search;
        {
            Profiler::Scope s(prof, "BlastWordIndex (setup)");
            search = std::make_unique<bio::BlastSearch>(d.query,
                                                        d.matrix, params);
        }
        {
            // Scan + two-hit + ungapped extension, with the gapped
            // stage disabled so its cost can be charged separately.
            bio::BlastParams scanOnly = params;
            scanOnly.ungappedTrigger = 1 << 20;
            bio::BlastSearch scanner(d.query, d.matrix, scanOnly);
            Profiler::Scope s(prof, "BlastScan (two-hit + ungapped)");
            size_t residues = 0;
            for (const auto &subj : d.db)
                residues += subj.size();
            for (size_t k = 0; k < d.db.size(); ++k)
                (void)scanner.searchSubject(d.db[k], k, residues);
        }
        {
            Profiler::Scope s(prof, "SEMI_G_ALIGN (gapped extension)");
            for (const auto &seed : d.seeds) {
                (void)bio::semiGappedExtend(d.query, seed.qFrom,
                                            d.db[seed.dbIdx], seed.sFrom,
                                            true, d.matrix, params);
                (void)bio::semiGappedExtend(d.query, seed.qFrom,
                                            d.db[seed.dbIdx], seed.sFrom,
                                            false, d.matrix, params);
            }
        }
        {
            Profiler::Scope s(prof, "input/output");
            std::string txt = bio::formatFasta(d.db);
            (void)bio::parseFasta(txt, bio::Alphabet::Protein);
        }
        break;
      }
      default:
        panic("bad app");
    }
}

SimResult
Workload::simulate(mpc::Variant variant, const sim::MachineConfig &mc,
                   uint64_t interval_cycles, bool branch_profile) const
{
    kernels::KernelMachine km(appKernel(config_.app), variant, mc);
    if (interval_cycles)
        km.setSampleInterval(interval_cycles);
    if (branch_profile)
        km.setBranchProfiling(true);
    return simulate(km);
}

SimResult
Workload::simulate(kernels::KernelMachine &km) const
{
    BP5_ASSERT(km.kind() == appKernel(config_.app),
               "machine built for the wrong kernel");
    const Data &d = *data_;

    SimResult res;
    res.compiled = km.compiled();
    uint64_t budget = config_.simInstructionBudget;

    auto exhausted = [&]() { return km.totals().instructions >= budget; };

    switch (config_.app) {
      case App::Clustalw: {
        // Step 1 of Clustalw: all-against-all pairwise alignments.
        bool done = false;
        while (!done) {
            for (size_t i = 0; i < d.family.size() && !done; ++i) {
                for (size_t j = i + 1; j < d.family.size() && !done;
                     ++j) {
                    kernels::AlignProblem p{&d.family[i], &d.family[j],
                                            &d.matrix, d.gap};
                    km.run(p);
                    ++res.invocations;
                    done = exhausted();
                }
            }
        }
        break;
      }
      case App::Fasta: {
        bool done = false;
        while (!done) {
            for (size_t k = 0; k < d.db.size() && !done; ++k) {
                kernels::AlignProblem p{&d.query, &d.db[k], &d.matrix,
                                        d.gap};
                km.run(p);
                ++res.invocations;
                done = exhausted();
            }
        }
        break;
      }
      case App::Hmmer: {
        bool done = false;
        while (!done) {
            for (size_t k = 0; k < d.hmmDb.size() && !done; ++k) {
                kernels::ViterbiProblem p{&d.model, &d.hmmDb[k]};
                km.run(p);
                ++res.invocations;
                done = exhausted();
            }
        }
        break;
      }
      case App::Blast: {
        bool done = false;
        while (!done) {
            for (size_t k = 0; k < d.seeds.size() && !done; ++k) {
                const auto &seed = d.seeds[k];
                kernels::ExtendProblem p{&d.query,        seed.qFrom,
                                         &d.db[seed.dbIdx], seed.sFrom,
                                         &d.matrix,       d.gap,
                                         30};
                km.run(p);
                ++res.invocations;
                done = exhausted();
            }
        }
        break;
      }
      default:
        panic("bad app");
    }

    res.counters = km.totals();
    res.timeline = km.timeline();
    res.branchProfile = km.branchProfile();
    return res;
}

} // namespace bp5::workloads
