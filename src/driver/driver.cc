#include "driver/driver.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <tuple>

#include "obs/manifest.h"
#include "support/logging.h"
#include "support/thread_pool.h"

namespace bp5::driver {

namespace {

/** Worker-local simulation state, reused across grid points. */
class WorkerState
{
  public:
    workloads::Workload &
    workloadFor(const workloads::WorkloadConfig &wc)
    {
        auto key = std::make_tuple(int(wc.app), int(wc.klass), wc.seed,
                                   wc.simInstructionBudget);
        auto it = workloads_.find(key);
        if (it == workloads_.end()) {
            it = workloads_
                     .emplace(key,
                              std::make_unique<workloads::Workload>(wc))
                     .first;
        }
        return *it->second;
    }

    /**
     * One machine per (kernel, variant, config), recycled via reset().
     * Reset-equivalence (tested) makes reuse indistinguishable from
     * constructing a fresh machine.
     */
    kernels::KernelMachine &
    machineFor(kernels::KernelKind kind, mpc::Variant variant,
               const sim::MachineConfig &mc)
    {
        for (MachineEntry &e : machines_) {
            if (e.kind == kind && e.variant == variant && e.config == mc) {
                e.km->reset();
                return *e.km;
            }
        }
        machines_.push_back(
            {kind, variant, mc,
             std::make_unique<kernels::KernelMachine>(kind, variant, mc)});
        return *machines_.back().km;
    }

  private:
    struct MachineEntry
    {
        kernels::KernelKind kind;
        mpc::Variant variant;
        sim::MachineConfig config;
        std::unique_ptr<kernels::KernelMachine> km;
    };

    std::map<std::tuple<int, int, uint64_t, uint64_t>,
             std::unique_ptr<workloads::Workload>>
        workloads_;
    std::vector<MachineEntry> machines_;
};

void
runPoint(WorkerState &state, const GridPoint &p, PointResult &out)
{
    auto t0 = std::chrono::steady_clock::now();
    workloads::Workload &w = state.workloadFor(p.workload);
    kernels::KernelMachine &km = state.machineFor(
        workloads::appKernel(p.workload.app), p.variant, p.machine);
    if (p.intervalCycles)
        km.setSampleInterval(p.intervalCycles);
    out.label = p.label;
    out.sim = w.simulate(km);
    out.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
}

const char *
inputClassName(workloads::InputClass k)
{
    switch (k) {
    case workloads::InputClass::A: return "class A";
    case workloads::InputClass::B: return "class B";
    default: return "class C";
    }
}

} // namespace

ExperimentDriver::ExperimentDriver(unsigned threads) : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
    if (const char *env = std::getenv("BP5_MANIFEST"))
        manifestPath_ = env;
}

void
ExperimentDriver::writeManifest(const std::vector<GridPoint> &grid,
                                const std::vector<PointResult> &results,
                                double wallSeconds) const
{
    lastManifest_.clear();

    uint64_t instructions = 0;
    for (const PointResult &r : results)
        instructions += r.sim.counters.instructions;
    support::ResultRow sweep;
    sweep.set("tool", "driver")
        .set("kind", "sweep")
        .set("points", uint64_t(grid.size()))
        .set("threads", threads_)
        .set("instructions", instructions)
        .set("wall_s", wallSeconds, 3)
        .set("sim_mips",
             wallSeconds > 0.0 ? double(instructions) / wallSeconds / 1e6
                               : 0.0,
             2);
    lastManifest_.push_back(std::move(sweep));

    for (size_t i = 0; i < grid.size(); ++i) {
        const GridPoint &p = grid[i];
        obs::RunInfo info;
        info.tool = "driver";
        info.workload = workloads::appName(p.workload.app);
        info.variant = mpc::variantName(p.variant);
        info.input = inputClassName(p.workload.klass);
        info.invocations = results[i].sim.invocations;
        info.wallSeconds = results[i].wallSeconds;
        info.machine = p.machine;
        info.counters = results[i].sim.counters;
        support::ResultRow row = obs::manifestRow(info);
        row.set("label", p.label.empty() ? "-" : p.label)
            .set("kind", "point");
        lastManifest_.push_back(std::move(row));
    }

    obs::appendManifest(manifestPath_, lastManifest_, "run-manifest");
}

std::vector<PointResult>
ExperimentDriver::run(const std::vector<GridPoint> &grid) const
{
    auto t0 = std::chrono::steady_clock::now();
    std::vector<PointResult> results(grid.size());
    if (grid.empty())
        return results;

    unsigned workers = threads_;
    if (workers > grid.size())
        workers = static_cast<unsigned>(grid.size());

    if (workers <= 1) {
        WorkerState state;
        for (size_t i = 0; i < grid.size(); ++i)
            runPoint(state, grid[i], results[i]);
    } else {
        // Self-scheduling via the shared pool: workers pull the next
        // unclaimed index.  Result placement is by index, so
        // completion order never matters.  Each worker keeps its own
        // simulation state across the points it claims.
        support::ThreadPool pool(workers);
        std::vector<WorkerState> states(pool.threads());
        pool.parallelFor(grid.size(), [&](unsigned worker, size_t i) {
            runPoint(states[worker], grid[i], results[i]);
        });
    }

    writeManifest(grid, results,
                  std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
    return results;
}

} // namespace bp5::driver
