/**
 * @file
 * ExperimentDriver: runs a grid of (workload, code variant, machine
 * configuration) simulation points over a fixed-size thread pool and
 * returns the results in grid order, independent of completion order.
 *
 * Parallelism is deterministic by construction: every grid point is a
 * pure function of its GridPoint (workload generation is seeded, the
 * simulator has no global state), workers never share mutable state,
 * and results land in a pre-sized vector slot owned by their index.
 * Running with one thread or sixteen therefore produces byte-identical
 * output.
 *
 * Each worker owns its simulation state and reuses it across points:
 * Workloads are cached by their full configuration (input generation
 * is the expensive part), and one KernelMachine per (kernel, variant,
 * machine config) is recycled via KernelMachine::reset() — which is
 * guaranteed to restore a just-constructed machine, see the
 * reset-equivalence tests.
 */

#ifndef BIOPERF5_DRIVER_DRIVER_H
#define BIOPERF5_DRIVER_DRIVER_H

#include <string>
#include <vector>

#include "support/result.h"
#include "workloads/workload.h"

namespace bp5::driver {

/** One point of an experiment sweep. */
struct GridPoint
{
    std::string label; ///< free-form tag, echoed back for bookkeeping
    workloads::WorkloadConfig workload;
    mpc::Variant variant = mpc::Variant::Baseline;
    sim::MachineConfig machine;
    uint64_t intervalCycles = 0; ///< nonzero: collect a Fig-2 timeline
};

/** Result of one grid point (same index as the input grid). */
struct PointResult
{
    std::string label;
    workloads::SimResult sim;
    double wallSeconds = 0.0; ///< host wall time of this point
};

/** Fixed-size thread-pool sweep runner. */
class ExperimentDriver
{
  public:
    /** @param threads worker count; 0 picks the hardware concurrency */
    explicit ExperimentDriver(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /**
     * Where to append the JSON-Lines run manifest ("-" = stdout, "" =
     * off).  Defaults to $BP5_MANIFEST when that is set.  One record
     * per run() call: a sweep summary row plus one row per grid point
     * (machine config, workload, counters, wall time, simulated MIPS).
     */
    void setManifestPath(std::string path) { manifestPath_ = std::move(path); }
    const std::string &manifestPath() const { return manifestPath_; }

    /** The manifest rows of the most recent run() call. */
    const std::vector<support::ResultRow> &manifest() const
    {
        return lastManifest_;
    }

    /**
     * Run every point of @p grid and return results in grid order.
     * Panics propagate (a kernel/reference mismatch aborts the
     * process, exactly as in a serial run).
     */
    std::vector<PointResult> run(const std::vector<GridPoint> &grid) const;

  private:
    void writeManifest(const std::vector<GridPoint> &grid,
                       const std::vector<PointResult> &results,
                       double wallSeconds) const;

    unsigned threads_;
    std::string manifestPath_;
    /** Bookkeeping of the last run; does not affect results. */
    mutable std::vector<support::ResultRow> lastManifest_;
};

} // namespace bp5::driver

#endif // BIOPERF5_DRIVER_DRIVER_H
