/**
 * @file
 * Compatibility aliases: the results layer moved to support/result.h
 * so analysis tooling can reuse it without a driver dependency.  The
 * driver-facing names are preserved here.
 */

#ifndef BIOPERF5_DRIVER_RESULT_H
#define BIOPERF5_DRIVER_RESULT_H

#include "support/result.h"

namespace bp5::driver {

using ResultRow = support::ResultRow;
using support::emitJson;
using support::emitJsonLine;
using support::emitText;

} // namespace bp5::driver

#endif // BIOPERF5_DRIVER_RESULT_H
