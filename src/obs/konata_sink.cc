#include "obs/konata_sink.h"

#include <algorithm>
#include <cstdio>

#include "isa/disasm.h"
#include "support/logging.h"

namespace bp5::obs {

KonataSink::KonataSink(uint64_t max_insts) : maxInsts_(max_insts) {}

void
KonataSink::onFlush(const sim::FlushRecord &)
{
    // Event order per instruction is misses, branch, flush, InstRecord,
    // so the flag applies to the instruction about to be recorded.
    pendingFlush_ = true;
}

void
KonataSink::onInstruction(const sim::InstRecord &r, const sim::Counters &)
{
    bool flushed = pendingFlush_;
    pendingFlush_ = false;
    if (rows_.size() >= maxInsts_) {
        ++dropped_;
        return;
    }
    Row row;
    row.id = nextId_++;
    row.seq = r.seq;
    row.fetch = global(r.fetchCycle);
    row.dispatch = global(r.dispatchCycle);
    row.issue = global(r.issueCycle);
    row.writeback = global(r.writebackCycle);
    row.commit = global(r.commitCycle);
    row.flushedAfter = flushed;
    row.text = isa::disassemble(r.inst, r.pc);
    rows_.push_back(std::move(row));
}

std::string
KonataSink::finish() const
{
    // Flatten every row into (cycle, command) pairs, then emit the
    // stream cycle-sorted with C-advance commands in between.
    struct Cmd
    {
        uint64_t cycle;
        std::string text;
    };
    std::vector<Cmd> cmds;
    cmds.reserve(rows_.size() * 6);
    for (const Row &r : rows_) {
        unsigned long long id = r.id;
        cmds.push_back({r.fetch,
                        strprintf("I\t%llu\t%llu\t0\n", id,
                                  (unsigned long long)r.seq) +
                            strprintf("L\t%llu\t0\t%s\n", id,
                                      r.text.c_str()) +
                            strprintf("S\t%llu\t0\tF\n", id)});
        cmds.push_back({r.dispatch, strprintf("S\t%llu\t0\tD\n", id)});
        cmds.push_back({r.issue, strprintf("S\t%llu\t0\tX\n", id)});
        cmds.push_back({r.writeback, strprintf("S\t%llu\t0\tW\n", id)});
        std::string retire = strprintf("R\t%llu\t%llu\t0\n", id, id);
        if (r.flushedAfter)
            retire = strprintf("L\t%llu\t1\tredirects fetch\n", id) + retire;
        cmds.push_back({r.commit, retire});
    }
    std::stable_sort(cmds.begin(), cmds.end(),
                     [](const Cmd &a, const Cmd &b) {
                         return a.cycle < b.cycle;
                     });

    std::string out = "Kanata\t0004\n";
    uint64_t cur = cmds.empty() ? 0 : cmds.front().cycle;
    out += strprintf("C=\t%llu\n", (unsigned long long)cur);
    for (const Cmd &c : cmds) {
        if (c.cycle > cur) {
            out += strprintf("C\t%llu\n", (unsigned long long)(c.cycle - cur));
            cur = c.cycle;
        }
        out += c.text;
    }
    return out;
}

bool
KonataSink::writeTo(const std::string &path) const
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open %s for writing", path.c_str());
        return false;
    }
    std::string doc = finish();
    size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (n != doc.size()) {
        warn("short write to %s", path.c_str());
        return false;
    }
    return true;
}

} // namespace bp5::obs
