/**
 * @file
 * Interval PMU sampler: the generalized Fig-2 instrument.  Attached to
 * a Machine as a trace sink, it slices the run into fixed-cycle
 * windows and records the *complete* Counters delta of each window —
 * CPI stack, IPC, branch and cache rates, instruction mix — plus,
 * optionally, per-branch-site deltas keyed by pc, joinable with the
 * static branch classes of src/analysis (analysis::joinProfile).
 *
 * The cycle axis is continuous across run() calls (KernelMachine
 * invokes its kernel many times per experiment), and the trailing
 * partial window is retained, so the raw counter columns of the
 * emitted series sum exactly to the end-of-run Counters — tested.
 *
 * This subsumes the old Machine::run(max, interval_cycles) special
 * case, which survives only as a deprecated shim.
 */

#ifndef BIOPERF5_OBS_PMU_SAMPLER_H
#define BIOPERF5_OBS_PMU_SAMPLER_H

#include <map>
#include <string>
#include <vector>

#include "sim/counters.h"
#include "sim/trace.h"
#include "support/result.h"

namespace bp5::obs {

/** One sampling window of the PMU time series. */
struct PmuInterval
{
    uint64_t startCycle = 0; ///< global cycle the window opened at
    uint64_t endCycle = 0;   ///< global cycle of the closing sample
    sim::Counters delta;     ///< counter increments within the window
    /** Per-branch-site increments (only when site series enabled). */
    std::map<uint64_t, sim::BranchSiteStats> sites;
    bool partial = false;    ///< trailing window, shorter than interval
};

/** The interval sampler; see the file comment. */
class PmuSampler final : public sim::TraceSink
{
  public:
    /**
     * @param interval_cycles window length (must be nonzero)
     * @param site_series also record per-branch-site deltas per window
     */
    explicit PmuSampler(uint64_t interval_cycles, bool site_series = false);

    uint64_t intervalCycles() const { return interval_; }
    bool siteSeries() const { return siteSeries_; }

    // TraceSink
    void onRunEnd(const sim::Counters &final) override;
    void onInstruction(const sim::InstRecord &r,
                       const sim::Counters &c) override;
    void onBranch(const sim::BranchRecord &r) override;

    /**
     * The recorded windows.  @p include_trailing appends the partial
     * window between the last interval boundary and the end of the
     * run, so the deltas sum to the machine's end-of-run Counters.
     */
    std::vector<PmuInterval> intervals(bool include_trailing = true) const;

    /** Fig-2 compatible view (IPC, mispredict rate, L1D miss rate). */
    std::vector<sim::IntervalSample>
    timeline(bool include_trailing = false) const;

    /** Comma-joined column names, no newline (the CSV schema). */
    static std::string csvColumns();

    /**
     * Deterministic CSV: a `# schema:` comment naming every column,
     * the column header row, then one row per window.
     */
    static std::string csvHeader();
    std::string toCsv(bool include_trailing = true) const;

    /** The same series as result rows (for --json emission). */
    std::vector<support::ResultRow>
    toRows(bool include_trailing = true) const;

    /** Drop all state (windows, cycle base, site accumulators). */
    void reset();

  private:
    void closeWindow(const sim::Counters &global, bool partial);

    uint64_t interval_;
    bool siteSeries_;
    uint64_t next_;              ///< next window boundary (global cycle)
    sim::Counters base_;         ///< totals through all finished runs
    sim::Counters prev_;         ///< global counters at last close
    uint64_t prevCycle_ = 0;     ///< global cycle at last close
    std::vector<PmuInterval> done_;
    std::map<uint64_t, sim::BranchSiteStats> sites_; ///< open window
};

} // namespace bp5::obs

#endif // BIOPERF5_OBS_PMU_SAMPLER_H
