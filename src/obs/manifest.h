/**
 * @file
 * Machine-readable run manifests.  Every experiment entry point (the
 * ExperimentDriver, bp5-trace, the benches) can describe a run — what
 * machine, what workload, how long it took on the host, how fast the
 * simulator ran — as ResultRow records and append them to a manifest
 * file as JSON Lines, one self-contained record per run, so downstream
 * tooling can track the perf trajectory of both the model and the
 * simulator itself.
 *
 * The layer deliberately speaks strings for workload/variant names (no
 * dependency on src/workloads), keeping obs below kernels and driver
 * in the link order.
 */

#ifndef BIOPERF5_OBS_MANIFEST_H
#define BIOPERF5_OBS_MANIFEST_H

#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/counters.h"
#include "support/result.h"

namespace bp5::obs {

/** Everything a manifest row says about one run. */
struct RunInfo
{
    std::string tool;     ///< emitting binary ("bp5-trace", "driver", ...)
    std::string workload; ///< app or kernel name
    std::string variant;  ///< code variant ("Original", "hand isel", ...)
    std::string input;    ///< input description ("class B", "n=400", ...)
    uint64_t invocations = 0; ///< kernel invocations folded into counters
    double wallSeconds = 0.0; ///< host wall time of the simulation
    sim::MachineConfig machine;
    sim::Counters counters;
};

/** Append the interesting MachineConfig knobs as cells of @p row. */
void addMachineCells(support::ResultRow &row, const sim::MachineConfig &mc);

/** Append the headline counter summary as cells of @p row. */
void addCounterCells(support::ResultRow &row, const sim::Counters &c);

/** The full manifest row for @p info (identity, machine, counters,
 *  wall time and simulated MIPS). */
support::ResultRow manifestRow(const RunInfo &info);

/**
 * Append @p rows to @p path as one JSON Lines record titled @p title
 * ("-" writes to stdout).  @return false (with a warning) on I/O
 * failure; an empty @p path is a silent no-op returning true.
 */
bool appendManifest(const std::string &path,
                    const std::vector<support::ResultRow> &rows,
                    const std::string &title = "run-manifest");

} // namespace bp5::obs

#endif // BIOPERF5_OBS_MANIFEST_H
