#include "obs/perfetto_sink.h"

#include <cstdio>

#include "isa/disasm.h"
#include "sim/config.h"
#include "support/logging.h"

namespace bp5::obs {

namespace {

const char *
stallReasonName(sim::StallReason r)
{
    switch (r) {
    case sim::StallReason::None: return "none";
    case sim::StallReason::Frontend: return "frontend";
    case sim::StallReason::Branch: return "branch";
    case sim::StallReason::FXU: return "fxu";
    case sim::StallReason::LSU: return "lsu";
    default: return "other";
    }
}

const char *
flushCauseName(sim::FlushRecord::Cause c)
{
    switch (c) {
    case sim::FlushRecord::Cause::Direction: return "direction";
    case sim::FlushRecord::Cause::Target: return "target";
    case sim::FlushRecord::Cause::Disambig: return "disambig";
    default: return "btac-steer";
    }
}

const char *
missLevelName(sim::CacheMissRecord::Level l)
{
    switch (l) {
    case sim::CacheMissRecord::Level::L1I: return "L1I miss";
    case sim::CacheMissRecord::Level::L1D: return "L1D miss";
    default: return "L2 miss";
    }
}

/** Escape for a JSON string literal (mnemonics/disasm are ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        if (ch == '"' || ch == '\\') {
            out += '\\';
            out += ch;
        } else if (static_cast<unsigned char>(ch) < 0x20) {
            out += strprintf("\\u%04x", unsigned(ch));
        } else {
            out += ch;
        }
    }
    return out;
}

constexpr unsigned kFlushLaneOffset = 0;  ///< lanes_ + 0
constexpr unsigned kMissLaneOffset = 1;   ///< lanes_ + 1
constexpr unsigned kCounterLaneOffset = 2;

} // namespace

PerfettoSink::PerfettoSink(unsigned lanes, uint64_t max_events)
    : lanes_(lanes ? lanes : 1), maxEvents_(max_events)
{
}

bool
PerfettoSink::admit()
{
    if (events_ >= maxEvents_) {
        ++dropped_;
        return false;
    }
    return true;
}

void
PerfettoSink::append(std::string event)
{
    if (!body_.empty())
        body_ += ",\n";
    body_ += event;
    ++events_;
}

void
PerfettoSink::onRunBegin(const sim::MachineConfig &mc)
{
    if (headerDone_)
        return;
    headerDone_ = true;
    append(strprintf("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
                     "\"args\":{\"name\":\"bp5-sim (fxu=%u btac=%s)\"}}",
                     mc.numFXU, mc.btacEnabled ? "on" : "off"));
    for (unsigned l = 0; l < lanes_; ++l)
        append(strprintf("{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                         "\"name\":\"thread_name\","
                         "\"args\":{\"name\":\"pipe-%u\"}}",
                         l, l));
    append(strprintf("{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                     "\"name\":\"thread_name\","
                     "\"args\":{\"name\":\"flushes\"}}",
                     lanes_ + kFlushLaneOffset));
    append(strprintf("{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                     "\"name\":\"thread_name\","
                     "\"args\":{\"name\":\"cache-misses\"}}",
                     lanes_ + kMissLaneOffset));
}

void
PerfettoSink::onRunEnd(const sim::Counters &final)
{
    // Counter tracks get one point per run boundary: cheap, and a
    // KernelMachine experiment produces one point per invocation.
    if (admit())
        append(strprintf(
            "{\"ph\":\"C\",\"pid\":1,\"tid\":%u,\"ts\":%llu,"
            "\"name\":\"run counters\",\"args\":{\"ipc\":%.4f,"
            "\"mispredict_rate\":%.4f,\"l1d_miss_rate\":%.4f}}",
            lanes_ + kCounterLaneOffset,
            (unsigned long long)global(final.cycles), final.ipc(),
            final.branchMispredictRate(), final.l1dMissRate()));
    // CPI-stack counter track: one stacked point per run boundary,
    // each component as cycles-per-instruction so runs of different
    // lengths chart comparably.
    if (admit()) {
        std::string args;
        for (size_t i = 0; i < final.cpi.size(); ++i) {
            if (!args.empty())
                args += ',';
            double cpi = final.instructions
                             ? double(final.cpi[i]) /
                                   double(final.instructions)
                             : 0.0;
            args += strprintf("\"%s\":%.4f",
                              sim::cpiComponentKey(sim::CpiComponent(i)),
                              cpi);
        }
        append(strprintf("{\"ph\":\"C\",\"pid\":1,\"tid\":%u,\"ts\":%llu,"
                         "\"name\":\"cpi stack\",\"args\":{%s}}",
                         lanes_ + kCounterLaneOffset,
                         (unsigned long long)global(final.cycles),
                         args.c_str()));
    }
    RebasingSink::onRunEnd(final);
}

void
PerfettoSink::onInstruction(const sim::InstRecord &r, const sim::Counters &)
{
    // LSQ-occupancy counter track: one point per memory op, emitted
    // only when the machine models finite queues (classic-mode records
    // carry zero occupancy and produce no track).
    if ((r.isLoad || r.isStore) && (r.lsqLoadOcc || r.lsqStoreOcc) &&
        admit()) {
        append(strprintf(
            "{\"ph\":\"C\",\"pid\":1,\"tid\":%u,\"ts\":%llu,"
            "\"name\":\"lsq occupancy\",\"args\":{\"loads\":%u,"
            "\"stores\":%u}}",
            lanes_ + kCounterLaneOffset,
            (unsigned long long)global(r.dispatchCycle), r.lsqLoadOcc,
            r.lsqStoreOcc));
    }
    if (!admit())
        return;
    uint64_t ts = global(r.fetchCycle);
    uint64_t end = global(r.commitCycle);
    uint64_t dur = end > ts ? end - ts : 1;
    std::string name = jsonEscape(isa::disassemble(r.inst, r.pc));
    append(strprintf(
        "{\"ph\":\"X\",\"pid\":1,\"tid\":%llu,\"ts\":%llu,\"dur\":%llu,"
        "\"cat\":\"inst\",\"name\":\"%s\",\"args\":{\"pc\":\"0x%llx\","
        "\"seq\":%llu,\"dispatch\":%llu,\"issue\":%llu,"
        "\"writeback\":%llu,\"stall\":\"%s\"%s%s%s%s%s}}",
        (unsigned long long)(r.seq % lanes_), (unsigned long long)ts,
        (unsigned long long)dur, name.c_str(), (unsigned long long)r.pc,
        (unsigned long long)r.seq,
        (unsigned long long)global(r.dispatchCycle),
        (unsigned long long)global(r.issueCycle),
        (unsigned long long)global(r.writebackCycle),
        stallReasonName(r.stall),
        r.mispredicted ? ",\"mispredicted\":true" : "",
        r.l1dMiss ? ",\"l1d_miss\":true" : "",
        r.l2Miss ? ",\"l2_miss\":true" : "",
        r.forwarded ? ",\"forwarded\":true" : "",
        r.disambigFlush ? ",\"disambig_flush\":true" : ""));
}

void
PerfettoSink::onFlush(const sim::FlushRecord &r)
{
    if (!admit())
        return;
    append(strprintf(
        "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"ts\":%llu,\"s\":\"t\","
        "\"cat\":\"flush\",\"name\":\"flush (%s)\","
        "\"args\":{\"pc\":\"0x%llx\",\"refetch\":%llu}}",
        lanes_ + kFlushLaneOffset,
        (unsigned long long)global(r.resolveCycle), flushCauseName(r.cause),
        (unsigned long long)r.pc, (unsigned long long)global(r.refetchCycle)));
}

void
PerfettoSink::onCacheMiss(const sim::CacheMissRecord &r)
{
    if (!admit())
        return;
    append(strprintf(
        "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"ts\":%llu,\"s\":\"t\","
        "\"cat\":\"mem\",\"name\":\"%s\","
        "\"args\":{\"pc\":\"0x%llx\",\"addr\":\"0x%llx\"}}",
        lanes_ + kMissLaneOffset, (unsigned long long)global(r.cycle),
        missLevelName(r.level), (unsigned long long)r.pc,
        (unsigned long long)r.addr));
}

std::string
PerfettoSink::finish() const
{
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    out += body_;
    // No silent truncation: if the event cap dropped anything, the
    // document's last event says how much is missing.
    if (dropped_ > 0) {
        out += strprintf(",\n{\"ph\":\"M\",\"pid\":1,"
                         "\"name\":\"dropped_events\","
                         "\"args\":{\"count\":%llu,\"cap\":%llu}}",
                         (unsigned long long)dropped_,
                         (unsigned long long)maxEvents_);
    }
    out += "\n]}\n";
    return out;
}

bool
PerfettoSink::writeTo(const std::string &path) const
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open %s for writing", path.c_str());
        return false;
    }
    if (dropped_ > 0)
        warn("perfetto trace %s truncated: %llu event(s) dropped past "
             "the %llu-event cap",
             path.c_str(), (unsigned long long)dropped_,
             (unsigned long long)maxEvents_);
    std::string doc = finish();
    size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (n != doc.size()) {
        warn("short write to %s", path.c_str());
        return false;
    }
    return true;
}

} // namespace bp5::obs
