/**
 * @file
 * POWER5-style CPI stacks over the simulator's cycle-accounting
 * counters.  The machine attributes every cycle to exactly one
 * sim::CpiComponent (sum bit-exact to total cycles — the invariant
 * the paper's PMU cycle-accounting facility provides in hardware);
 * this module is the presentation side: a small stack value type, the
 * manifest cells `bp5-report` diffs, an aligned text-bar renderer,
 * and a trace sink that also collects log2 latency histograms.
 */

#ifndef BIOPERF5_OBS_CPI_STACK_H
#define BIOPERF5_OBS_CPI_STACK_H

#include <array>
#include <string>

#include "sim/counters.h"
#include "sim/trace.h"
#include "support/histogram.h"
#include "support/result.h"

namespace bp5::obs {

/** One CPI stack: cycles per component plus the total they sum to. */
struct CpiStack
{
    std::array<uint64_t, sim::kNumCpiComponents> cycles{};
    uint64_t totalCycles = 0;
    uint64_t instructions = 0;

    static CpiStack fromCounters(const sim::Counters &c);

    /** Does the stack satisfy the sum-to-total invariant bit-exactly? */
    bool consistent() const;

    uint64_t sum() const;

    /** Share of total cycles in component @p c (0 on empty stack). */
    double share(sim::CpiComponent c) const;

    /** Cycles-per-instruction contribution of component @p c. */
    double cpiOf(sim::CpiComponent c) const;

    /** All non-completing cycles (the stall portion of the stack). */
    uint64_t stallCycles() const;

    void add(const CpiStack &o);
};

/**
 * Append the exact per-component cycle counts (`cpi_<key>` cells,
 * integers, byte-diffable) plus the headline `cpi` value to a
 * manifest row.  bp5-report reads these cells back out of manifests.
 */
void addCpiCells(support::ResultRow &row, const sim::Counters &c);

/**
 * Render the stack as aligned text bars, one line per component:
 * label, cycles, share and a bar scaled to @p barWidth characters.
 */
std::string renderCpiStack(const CpiStack &s, unsigned barWidth = 40);

/**
 * Trace sink accumulating CPI stacks across runs plus two log2
 * histograms: fetch-to-commit latency per instruction and the commit
 * gap (cycles since the previous commit) — the distribution view of
 * the same stalls the stack aggregates.
 */
class CpiStackSink final : public sim::TraceSink
{
  public:
    void onRunEnd(const sim::Counters &final) override;
    void onInstruction(const sim::InstRecord &r,
                       const sim::Counters &c) override;

    const CpiStack &stack() const { return stack_; }
    const support::Log2Histogram &latency() const { return latency_; }
    const support::Log2Histogram &commitGap() const { return gap_; }

  private:
    CpiStack stack_;
    support::Log2Histogram latency_;
    support::Log2Histogram gap_;
    uint64_t lastCommit_ = 0;
};

} // namespace bp5::obs

#endif // BIOPERF5_OBS_CPI_STACK_H
