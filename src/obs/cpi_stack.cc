#include "obs/cpi_stack.h"

#include "support/logging.h"

namespace bp5::obs {

CpiStack
CpiStack::fromCounters(const sim::Counters &c)
{
    CpiStack s;
    s.cycles = c.cpi;
    s.totalCycles = c.cycles;
    s.instructions = c.instructions;
    return s;
}

bool
CpiStack::consistent() const
{
    return sum() == totalCycles;
}

uint64_t
CpiStack::sum() const
{
    uint64_t s = 0;
    for (uint64_t v : cycles)
        s += v;
    return s;
}

double
CpiStack::share(sim::CpiComponent c) const
{
    return totalCycles ? double(cycles[size_t(c)]) / double(totalCycles)
                       : 0.0;
}

double
CpiStack::cpiOf(sim::CpiComponent c) const
{
    return instructions ? double(cycles[size_t(c)]) / double(instructions)
                        : 0.0;
}

uint64_t
CpiStack::stallCycles() const
{
    return sum() - cycles[size_t(sim::CpiComponent::Completing)];
}

void
CpiStack::add(const CpiStack &o)
{
    for (size_t i = 0; i < cycles.size(); ++i)
        cycles[i] += o.cycles[i];
    totalCycles += o.totalCycles;
    instructions += o.instructions;
}

void
addCpiCells(support::ResultRow &row, const sim::Counters &c)
{
    // Exact integers, not shares: bp5-report diffs these cells
    // component-by-component and shares would hide one-cycle drifts.
    double cpi = c.instructions ? double(c.cycles) / double(c.instructions)
                                : 0.0;
    row.set("cpi", cpi, 4);
    for (size_t i = 0; i < c.cpi.size(); ++i) {
        row.set(std::string("cpi_") +
                    sim::cpiComponentKey(sim::CpiComponent(i)),
                c.cpi[i]);
    }
}

std::string
renderCpiStack(const CpiStack &s, unsigned barWidth)
{
    std::string out;
    uint64_t peak = 0;
    for (uint64_t v : s.cycles)
        if (v > peak)
            peak = v;
    for (size_t i = 0; i < s.cycles.size(); ++i) {
        auto comp = sim::CpiComponent(i);
        out += strprintf("  %-14s %12llu  %5.1f%%  ",
                         sim::cpiComponentLabel(comp),
                         (unsigned long long)s.cycles[i],
                         100.0 * s.share(comp));
        unsigned bar =
            peak ? unsigned((s.cycles[i] * barWidth + peak - 1) / peak) : 0;
        out.append(bar, '#');
        out += '\n';
    }
    out += strprintf("  %-14s %12llu  (ipc %.3f, cpi %.3f)%s\n", "total",
                     (unsigned long long)s.totalCycles,
                     s.totalCycles ? double(s.instructions) /
                                         double(s.totalCycles)
                                   : 0.0,
                     s.instructions ? double(s.totalCycles) /
                                          double(s.instructions)
                                    : 0.0,
                     s.consistent() ? "" : "  [INCONSISTENT]");
    return out;
}

void
CpiStackSink::onRunEnd(const sim::Counters &final)
{
    stack_.add(CpiStack::fromCounters(final));
    lastCommit_ = 0; // commit cycles are run-local
}

void
CpiStackSink::onInstruction(const sim::InstRecord &r, const sim::Counters &)
{
    latency_.add(r.commitCycle - r.fetchCycle);
    if (lastCommit_ != 0 && r.commitCycle > lastCommit_)
        gap_.add(r.commitCycle - lastCommit_);
    lastCommit_ = r.commitCycle;
}

} // namespace bp5::obs
