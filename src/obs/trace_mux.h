/**
 * @file
 * Sink plumbing for the observability layer: a multiplexer that fans
 * one Machine's event stream out to several sinks, and a base class
 * for sinks that want a cycle axis that is continuous across run()
 * calls (the Machine numbers cycles from zero in every run).
 */

#ifndef BIOPERF5_OBS_TRACE_MUX_H
#define BIOPERF5_OBS_TRACE_MUX_H

#include <cstddef>
#include <vector>

#include "sim/trace.h"

namespace bp5::obs {

/** Fans every event out to each registered sink, in registration
 *  order.  Non-owning. */
class TraceMux final : public sim::TraceSink
{
  public:
    void clear() { sinks_.clear(); }
    void
    add(sim::TraceSink *sink)
    {
        if (sink)
            sinks_.push_back(sink);
    }
    bool empty() const { return sinks_.empty(); }
    size_t size() const { return sinks_.size(); }
    sim::TraceSink *front() const { return sinks_.front(); }

    void
    onRunBegin(const sim::MachineConfig &mc) override
    {
        for (sim::TraceSink *s : sinks_)
            s->onRunBegin(mc);
    }
    void
    onRunEnd(const sim::Counters &final) override
    {
        for (sim::TraceSink *s : sinks_)
            s->onRunEnd(final);
    }
    void
    onInstruction(const sim::InstRecord &r,
                  const sim::Counters &c) override
    {
        for (sim::TraceSink *s : sinks_)
            s->onInstruction(r, c);
    }
    void
    onBranch(const sim::BranchRecord &r) override
    {
        for (sim::TraceSink *s : sinks_)
            s->onBranch(r);
    }
    void
    onFlush(const sim::FlushRecord &r) override
    {
        for (sim::TraceSink *s : sinks_)
            s->onFlush(r);
    }
    void
    onCacheMiss(const sim::CacheMissRecord &r) override
    {
        for (sim::TraceSink *s : sinks_)
            s->onCacheMiss(r);
    }

  private:
    std::vector<sim::TraceSink *> sinks_;
};

/**
 * Base for sinks that view one machine's successive run() calls as a
 * single continuous timeline (the KernelMachine invokes its kernel
 * many times per experiment).  Derived sinks map run-local cycles
 * through global(); overrides of onRunEnd must call the base.
 */
class RebasingSink : public sim::TraceSink
{
  public:
    void
    onRunEnd(const sim::Counters &final) override
    {
        cycleBase_ += final.cycles;
        ++runs_;
    }

  protected:
    uint64_t global(uint64_t runCycle) const { return cycleBase_ + runCycle; }
    uint64_t cycleBase() const { return cycleBase_; }
    unsigned runs() const { return runs_; }

  private:
    uint64_t cycleBase_ = 0;
    unsigned runs_ = 0;
};

} // namespace bp5::obs

#endif // BIOPERF5_OBS_TRACE_MUX_H
