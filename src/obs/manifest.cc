#include "obs/manifest.h"

#include <cstdio>

#include "obs/cpi_stack.h"
#include "support/logging.h"

namespace bp5::obs {

void
addMachineCells(support::ResultRow &row, const sim::MachineConfig &mc)
{
    row.set("fetch_width", mc.fetchWidth)
        .set("dispatch_width", mc.dispatchWidth)
        .set("rob", mc.robSize)
        .set("fxu", mc.numFXU)
        .set("lsu", mc.numLSU)
        .set("predictor_entries", mc.predictorEntries)
        .set("btac", mc.btacEnabled ? "on" : "off")
        .set("taken_penalty", mc.effectiveTakenPenalty())
        .set("mispredict_penalty", mc.mispredictPenalty)
        .set("mem_latency", mc.memLatency)
        .set("memsys", sim::memSysModeKey(mc.memsys.mode));
    if (!mc.memsys.classic()) {
        row.set("lsq_loads", mc.memsys.lsq.loads)
            .set("lsq_stores", mc.memsys.lsq.stores);
    }
    if (mc.memsys.l1dPrefetch.enabled())
        row.set("l1d_prefetch",
                sim::prefetchKindKey(mc.memsys.l1dPrefetch.kind));
    if (mc.memsys.l2Prefetch.enabled())
        row.set("l2_prefetch",
                sim::prefetchKindKey(mc.memsys.l2Prefetch.kind));
}

void
addCounterCells(support::ResultRow &row, const sim::Counters &c)
{
    row.set("instructions", c.instructions)
        .set("cycles", c.cycles)
        .set("ipc", c.ipc())
        .setPct("branch_fraction", c.branchFraction())
        .setPct("mispredict_rate", c.branchMispredictRate())
        .setPct("l1d_miss_rate", c.l1dMissRate())
        .setPct("stall_fxu", c.stallShare(sim::StallReason::FXU))
        .setPct("stall_lsu", c.stallShare(sim::StallReason::LSU))
        .setPct("stall_frontend", c.stallShare(sim::StallReason::Frontend))
        .set("store_forwards", c.storeForwards)
        .set("disambig_flushes", c.disambigFlushes)
        .set("lsq_full_loads", c.lsqFullLoads)
        .set("lsq_full_stores", c.lsqFullStores)
        .set("prefetch_issued", c.prefetchIssued)
        .set("prefetch_hits", c.prefetchHits);
    addCpiCells(row, c);
}

support::ResultRow
manifestRow(const RunInfo &info)
{
    support::ResultRow row;
    row.set("tool", info.tool)
        .set("workload", info.workload)
        .set("variant", info.variant.empty() ? "-" : info.variant)
        .set("input", info.input.empty() ? "-" : info.input);
    if (info.invocations)
        row.set("invocations", info.invocations);
    addMachineCells(row, info.machine);
    addCounterCells(row, info.counters);
    row.set("wall_s", info.wallSeconds, 3);
    double mips = info.wallSeconds > 0.0
                      ? double(info.counters.instructions) /
                            info.wallSeconds / 1e6
                      : 0.0;
    row.set("sim_mips", mips, 2);
    return row;
}

bool
appendManifest(const std::string &path,
               const std::vector<support::ResultRow> &rows,
               const std::string &title)
{
    if (path.empty())
        return true;
    std::string line = support::emitJsonLine(rows, title);
    if (path == "-") {
        std::fputs(line.c_str(), stdout);
        return true;
    }
    FILE *f = std::fopen(path.c_str(), "a");
    if (!f) {
        warn("cannot open manifest %s for append", path.c_str());
        return false;
    }
    size_t n = std::fwrite(line.data(), 1, line.size(), f);
    std::fclose(f);
    if (n != line.size()) {
        warn("short write to manifest %s", path.c_str());
        return false;
    }
    return true;
}

} // namespace bp5::obs
