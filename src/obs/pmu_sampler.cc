#include "obs/pmu_sampler.h"

#include "support/logging.h"

namespace bp5::obs {

namespace {

/** Field-wise a - b (a must dominate b; counters only ever grow). */
sim::Counters
sub(const sim::Counters &a, const sim::Counters &b)
{
    sim::Counters d;
    d.cycles = a.cycles - b.cycles;
    d.instructions = a.instructions - b.instructions;
    d.branches = a.branches - b.branches;
    d.condBranches = a.condBranches - b.condBranches;
    d.takenBranches = a.takenBranches - b.takenBranches;
    d.mispredDirection = a.mispredDirection - b.mispredDirection;
    d.mispredTarget = a.mispredTarget - b.mispredTarget;
    d.takenBubbles = a.takenBubbles - b.takenBubbles;
    d.btacPredictions = a.btacPredictions - b.btacPredictions;
    d.btacCorrect = a.btacCorrect - b.btacCorrect;
    d.btacMispredicts = a.btacMispredicts - b.btacMispredicts;
    d.loads = a.loads - b.loads;
    d.stores = a.stores - b.stores;
    d.l1dAccesses = a.l1dAccesses - b.l1dAccesses;
    d.l1dMisses = a.l1dMisses - b.l1dMisses;
    d.l1iAccesses = a.l1iAccesses - b.l1iAccesses;
    d.l1iMisses = a.l1iMisses - b.l1iMisses;
    d.l2Misses = a.l2Misses - b.l2Misses;
    d.storeForwards = a.storeForwards - b.storeForwards;
    d.disambigFlushes = a.disambigFlushes - b.disambigFlushes;
    d.lsqFullLoads = a.lsqFullLoads - b.lsqFullLoads;
    d.lsqFullStores = a.lsqFullStores - b.lsqFullStores;
    d.prefetchIssued = a.prefetchIssued - b.prefetchIssued;
    d.prefetchHits = a.prefetchHits - b.prefetchHits;
    for (size_t i = 0; i < d.stallCycles.size(); ++i)
        d.stallCycles[i] = a.stallCycles[i] - b.stallCycles[i];
    for (size_t i = 0; i < d.cpi.size(); ++i)
        d.cpi[i] = a.cpi[i] - b.cpi[i];
    for (size_t i = 0; i < d.opCount.size(); ++i)
        d.opCount[i] = a.opCount[i] - b.opCount[i];
    return d;
}

} // namespace

PmuSampler::PmuSampler(uint64_t interval_cycles, bool site_series)
    : interval_(interval_cycles), siteSeries_(site_series),
      next_(interval_cycles)
{
    BP5_ASSERT(interval_cycles > 0, "PMU sampling interval must be nonzero");
}

void
PmuSampler::closeWindow(const sim::Counters &global, bool partial)
{
    PmuInterval w;
    w.startCycle = prevCycle_;
    w.endCycle = global.cycles;
    w.delta = sub(global, prev_);
    w.sites = std::move(sites_);
    w.partial = partial;
    done_.push_back(std::move(w));
    sites_.clear();
    prev_ = global;
    prevCycle_ = global.cycles;
}

void
PmuSampler::onRunEnd(const sim::Counters &final)
{
    base_.add(final);
}

void
PmuSampler::onInstruction(const sim::InstRecord &, const sim::Counters &c)
{
    uint64_t gcycle = base_.cycles + c.cycles;
    if (gcycle < next_)
        return;
    sim::Counters global = base_;
    global.add(c);
    closeWindow(global, false);
    while (next_ <= gcycle)
        next_ += interval_;
}

void
PmuSampler::onBranch(const sim::BranchRecord &r)
{
    if (!siteSeries_)
        return;
    sim::BranchSiteStats &site = sites_[r.pc];
    ++site.executions;
    if (r.taken)
        ++site.taken;
    if (r.directionMispredict)
        ++site.mispredDirection;
    else if (r.targetMispredict)
        ++site.mispredTarget;
}

std::vector<PmuInterval>
PmuSampler::intervals(bool include_trailing) const
{
    std::vector<PmuInterval> out = done_;
    if (include_trailing && !(base_ == prev_)) {
        PmuInterval w;
        w.startCycle = prevCycle_;
        w.endCycle = base_.cycles;
        w.delta = sub(base_, prev_);
        w.sites = sites_;
        w.partial = true;
        out.push_back(std::move(w));
    }
    return out;
}

std::vector<sim::IntervalSample>
PmuSampler::timeline(bool include_trailing) const
{
    std::vector<sim::IntervalSample> out;
    for (const PmuInterval &w : intervals(include_trailing)) {
        sim::IntervalSample s;
        s.cycle = w.endCycle;
        s.ipc = w.delta.ipc();
        s.branchMispredictRate = w.delta.branchMispredictRate();
        s.l1dMissRate = w.delta.l1dMissRate();
        out.push_back(s);
    }
    return out;
}

std::string
PmuSampler::csvColumns()
{
    std::string cols =
        "start_cycle,end_cycle,cycles,instructions,ipc,"
        "branches,cond_branches,taken_branches,mispred_direction,"
        "mispred_target,mispredict_rate,taken_bubbles,"
        "loads,stores,l1d_accesses,l1d_misses,l1d_miss_rate,"
        "l1i_accesses,l1i_misses,l2_misses,"
        "store_forwards,disambig_flushes,lsq_full_loads,"
        "lsq_full_stores,prefetch_issued,prefetch_hits,"
        "stall_frontend,stall_branch,stall_fxu,stall_lsu,stall_other";
    for (size_t i = 0; i < sim::kNumCpiComponents; ++i) {
        cols += ",cpi_";
        cols += sim::cpiComponentKey(sim::CpiComponent(i));
    }
    cols += ",partial";
    return cols;
}

std::string
PmuSampler::csvHeader()
{
    // The schema comment and the column row are generated from the
    // same list so they cannot drift apart; parsers may key on either.
    std::string cols = csvColumns();
    return "# schema: " + cols + "\n" + cols + "\n";
}

std::string
PmuSampler::toCsv(bool include_trailing) const
{
    std::string out = csvHeader();
    for (const PmuInterval &w : intervals(include_trailing)) {
        const sim::Counters &d = w.delta;
        out += strprintf(
            "%llu,%llu,%llu,%llu,%.6f,"
            "%llu,%llu,%llu,%llu,%llu,%.6f,%llu,"
            "%llu,%llu,%llu,%llu,%.6f,%llu,%llu,%llu,"
            "%llu,%llu,%llu,%llu,%llu,%llu,"
            "%llu,%llu,%llu,%llu,%llu",
            (unsigned long long)w.startCycle,
            (unsigned long long)w.endCycle,
            (unsigned long long)d.cycles,
            (unsigned long long)d.instructions, d.ipc(),
            (unsigned long long)d.branches,
            (unsigned long long)d.condBranches,
            (unsigned long long)d.takenBranches,
            (unsigned long long)d.mispredDirection,
            (unsigned long long)d.mispredTarget, d.branchMispredictRate(),
            (unsigned long long)d.takenBubbles,
            (unsigned long long)d.loads, (unsigned long long)d.stores,
            (unsigned long long)d.l1dAccesses,
            (unsigned long long)d.l1dMisses, d.l1dMissRate(),
            (unsigned long long)d.l1iAccesses,
            (unsigned long long)d.l1iMisses,
            (unsigned long long)d.l2Misses,
            (unsigned long long)d.storeForwards,
            (unsigned long long)d.disambigFlushes,
            (unsigned long long)d.lsqFullLoads,
            (unsigned long long)d.lsqFullStores,
            (unsigned long long)d.prefetchIssued,
            (unsigned long long)d.prefetchHits,
            (unsigned long long)d.stallCycles[size_t(
                sim::StallReason::Frontend)],
            (unsigned long long)d.stallCycles[size_t(
                sim::StallReason::Branch)],
            (unsigned long long)d.stallCycles[size_t(sim::StallReason::FXU)],
            (unsigned long long)d.stallCycles[size_t(sim::StallReason::LSU)],
            (unsigned long long)d.stallCycles[size_t(
                sim::StallReason::Other)]);
        for (size_t i = 0; i < d.cpi.size(); ++i)
            out += strprintf(",%llu", (unsigned long long)d.cpi[i]);
        out += strprintf(",%d\n", int(w.partial));
    }
    return out;
}

std::vector<support::ResultRow>
PmuSampler::toRows(bool include_trailing) const
{
    std::vector<support::ResultRow> rows;
    for (const PmuInterval &w : intervals(include_trailing)) {
        const sim::Counters &d = w.delta;
        support::ResultRow row;
        row.set("start_cycle", w.startCycle)
            .set("end_cycle", w.endCycle)
            .set("cycles", d.cycles)
            .set("instructions", d.instructions)
            .set("ipc", d.ipc())
            .setPct("mispredict", d.branchMispredictRate())
            .setPct("l1d_miss", d.l1dMissRate())
            .setPct("stall_fxu", d.stallShare(sim::StallReason::FXU))
            .setPct("flush/cyc",
                    d.cpiShare(sim::CpiComponent::BranchFlush))
            .set("partial", w.partial ? "yes" : "no");
        rows.push_back(std::move(row));
    }
    return rows;
}

void
PmuSampler::reset()
{
    next_ = interval_;
    base_ = sim::Counters();
    prev_ = sim::Counters();
    prevCycle_ = 0;
    done_.clear();
    sites_.clear();
}

} // namespace bp5::obs
