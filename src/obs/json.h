/**
 * @file
 * Minimal recursive-descent JSON parser, just enough to validate and
 * inspect the documents this repo emits (Chrome trace-event files,
 * ResultRow JSON, manifest JSON Lines).  Objects preserve key order;
 * numbers are kept as doubles.  Not a general-purpose parser — no
 * \uXXXX surrogate pairs, no extreme nesting (depth-limited).
 */

#ifndef BIOPERF5_OBS_JSON_H
#define BIOPERF5_OBS_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bp5::obs {

/** One parsed JSON value (tree). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items; ///< array elements
    std::vector<std::pair<std::string, JsonValue>> fields; ///< object

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage is an error).  On failure returns false and sets
 * @p error to a position-tagged message.
 */
bool parseJson(const std::string &text, JsonValue &out, std::string &error);

} // namespace bp5::obs

#endif // BIOPERF5_OBS_JSON_H
