/**
 * @file
 * Konata pipeline-log writer (Kanata 0004 format, as consumed by the
 * Konata viewer, github.com/shioyadan/Konata).  Each retired
 * instruction becomes one row with stage occupancy F (fetch), D
 * (dispatch/decode), X (issue/execute), W (writeback-to-commit), so
 * the classic pipeline diagram of the model's in-order-commit POWER5
 * approximation can be scrolled through instruction by instruction.
 *
 * The timing model delivers each instruction's whole lifecycle at once
 * (one-pass model), so the sink buffers rows and emits the cycle-sorted
 * command stream in finish().
 */

#ifndef BIOPERF5_OBS_KONATA_SINK_H
#define BIOPERF5_OBS_KONATA_SINK_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace_mux.h"

namespace bp5::obs {

/** Buffering Kanata-0004 writer; see the file comment. */
class KonataSink final : public RebasingSink
{
  public:
    /** @param max_insts stop recording beyond this many instructions */
    explicit KonataSink(uint64_t max_insts = 200'000);

    // TraceSink
    void onInstruction(const sim::InstRecord &r,
                       const sim::Counters &c) override;
    void onFlush(const sim::FlushRecord &r) override;

    uint64_t instCount() const { return rows_.size(); }
    uint64_t droppedInsts() const { return dropped_; }

    /** The complete Kanata log text. */
    std::string finish() const;

    /** Write finish() to @p path; false (with log) on I/O failure. */
    bool writeTo(const std::string &path) const;

  private:
    struct Row
    {
        uint64_t id;      ///< file-scope instruction id (unique)
        uint64_t seq;     ///< run-local dynamic index
        uint64_t fetch, dispatch, issue, writeback, commit; // global cycles
        bool flushedAfter; ///< a flush resolved at this instruction
        std::string text;  ///< disassembly label
    };

    uint64_t maxInsts_;
    uint64_t dropped_ = 0;
    uint64_t nextId_ = 0;
    bool pendingFlush_ = false;
    std::vector<Row> rows_;
};

} // namespace bp5::obs

#endif // BIOPERF5_OBS_KONATA_SINK_H
