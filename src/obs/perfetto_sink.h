/**
 * @file
 * Chrome trace-event JSON writer.  Produces a trace loadable by
 * Perfetto (ui.perfetto.dev) or chrome://tracing: one duration slice
 * per retired instruction (fetch-to-commit, striped across a fixed
 * number of lanes so overlapping instructions stay visible), instant
 * events for pipeline flushes and cache misses, and counter tracks
 * (IPC, mispredict rate, L1D miss rate) updated at every run boundary.
 *
 * Cycles are written as microsecond timestamps 1:1 — the viewer's
 * "us" readout is simply the cycle number.
 */

#ifndef BIOPERF5_OBS_PERFETTO_SINK_H
#define BIOPERF5_OBS_PERFETTO_SINK_H

#include <cstdint>
#include <string>

#include "obs/trace_mux.h"

namespace bp5::obs {

/** Streaming Chrome trace-event writer; see the file comment. */
class PerfettoSink final : public RebasingSink
{
  public:
    /**
     * @param lanes instruction slices are striped over this many
     *        threads of the trace (seq % lanes)
     * @param max_events stop recording (and count drops) beyond this
     *        many events, bounding memory on long runs
     */
    explicit PerfettoSink(unsigned lanes = 8,
                          uint64_t max_events = 2'000'000);

    // TraceSink
    void onRunBegin(const sim::MachineConfig &mc) override;
    void onRunEnd(const sim::Counters &final) override;
    void onInstruction(const sim::InstRecord &r,
                       const sim::Counters &c) override;
    void onFlush(const sim::FlushRecord &r) override;
    void onCacheMiss(const sim::CacheMissRecord &r) override;

    uint64_t eventCount() const { return events_; }
    uint64_t droppedEvents() const { return dropped_; }

    /** The complete JSON document (object form, traceEvents array). */
    std::string finish() const;

    /** Write finish() to @p path; false (with log) on I/O failure. */
    bool writeTo(const std::string &path) const;

  private:
    bool admit();
    void append(std::string event);

    unsigned lanes_;
    uint64_t maxEvents_;
    uint64_t events_ = 0;
    uint64_t dropped_ = 0;
    bool headerDone_ = false;
    std::string body_; ///< comma-joined event objects
};

} // namespace bp5::obs

#endif // BIOPERF5_OBS_PERFETTO_SINK_H
