#include "obs/json.h"

#include <cctype>
#include <cstdlib>

#include "support/logging.h"

namespace bp5::obs {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : fields)
        if (k == key)
            return &v;
    return nullptr;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : s_(text), error_(error)
    {
    }

    bool
    parse(JsonValue &out)
    {
        if (!value(out, 0))
            return false;
        skipWs();
        if (pos_ != s_.size())
            return fail("trailing garbage");
        return true;
    }

  private:
    bool
    fail(const char *msg)
    {
        error_ = strprintf("JSON error at offset %zu: %s", pos_, msg);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        size_t n = 0;
        while (word[n])
            ++n;
        if (s_.compare(pos_, n, word) != 0)
            return fail("bad literal");
        pos_ += n;
        return true;
    }

    bool
    string(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < s_.size()) {
            char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    break;
                char e = s_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > s_.size())
                        return fail("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = s_[pos_++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= unsigned(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    // ASCII only; wider code points are replaced.
                    out += cp < 0x80 ? char(cp) : '?';
                    break;
                }
                default:
                    return fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    digits()
    {
        if (pos_ >= s_.size() ||
            !std::isdigit(static_cast<unsigned char>(s_[pos_])))
            return false;
        while (pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
        return true;
    }

    bool
    number(JsonValue &out)
    {
        // Strict RFC 8259 grammar: -?int frac? exp?.  The previous
        // scan-then-strtod approach accepted "+1", ".5", "5." and
        // "01", and mis-ate sign characters inside the token; CPI
        // fractions like "1e-3" and "-0.0" exercise every branch.
        size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        if (pos_ < s_.size() && s_[pos_] == '0') {
            ++pos_; // a leading zero must stand alone ("0", "0.5")
            if (pos_ < s_.size() &&
                std::isdigit(static_cast<unsigned char>(s_[pos_])))
                return fail("bad number");
        } else if (!digits()) {
            return fail("bad number");
        }
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            if (!digits())
                return fail("bad number");
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            if (!digits())
                return fail("bad number");
        }
        std::string tok = s_.substr(start, pos_ - start);
        char *end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            return fail("bad number");
        // strtod preserves the sign of zero, so "-0" round-trips as
        // IEEE negative zero; keep it (it still compares == 0.0).
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        return true;
    }

    bool
    value(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        char c = s_[pos_];
        switch (c) {
        case '{': {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                if (pos_ >= s_.size() || s_[pos_] != '"')
                    return fail("expected object key");
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (pos_ >= s_.size() || s_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                JsonValue member;
                if (!value(member, depth + 1))
                    return false;
                out.fields.emplace_back(std::move(key), std::move(member));
                skipWs();
                if (pos_ < s_.size() && s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < s_.size() && s_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        case '[': {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                JsonValue elem;
                if (!value(elem, depth + 1))
                    return false;
                out.items.push_back(std::move(elem));
                skipWs();
                if (pos_ < s_.size() && s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < s_.size() && s_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.str);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        default:
            return number(out);
        }
    }

    const std::string &s_;
    std::string &error_;
    size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    out = JsonValue();
    error.clear();
    return Parser(text, error).parse(out);
}

} // namespace bp5::obs
