#include "isa/opcodes.h"

#include <array>
#include <unordered_map>

#include "support/logging.h"

namespace bp5::isa {

namespace {

// Shorthand for table construction.
constexpr bool T = true;
constexpr bool F = false;

// Latencies (execute cycles); L1-hit extra latency for loads lives in
// the cache model, not here.
constexpr uint8_t kLatSimple = 1;
constexpr uint8_t kLatMul = 7;
constexpr uint8_t kLatDiv = 24;
constexpr uint8_t kLatLoad = 2;
constexpr uint8_t kLatSpr = 3;

constexpr std::array<OpInfo, size_t(Op::NUM_OPS)> kOpTable = {{
    //  op            mnem       format          pri  xo   unit       lat        ld st  br cbr wRT rRA rRB rRT
    { Op::ADDI,    "addi",    Format::DArith,   14,   0, Unit::FXU, kLatSimple, F, F, F, F, T, T, F, F },
    { Op::ADDIS,   "addis",   Format::DArith,   15,   0, Unit::FXU, kLatSimple, F, F, F, F, T, T, F, F },
    { Op::MULLI,   "mulli",   Format::DArith,    7,   0, Unit::FXU, kLatMul,    F, F, F, F, T, T, F, F },
    { Op::ORI,     "ori",     Format::DArith,   24,   0, Unit::FXU, kLatSimple, F, F, F, F, T, T, F, F },
    { Op::ORIS,    "oris",    Format::DArith,   25,   0, Unit::FXU, kLatSimple, F, F, F, F, T, T, F, F },
    { Op::XORI,    "xori",    Format::DArith,   26,   0, Unit::FXU, kLatSimple, F, F, F, F, T, T, F, F },
    { Op::ANDI_RC, "andi.",   Format::DArith,   28,   0, Unit::FXU, kLatSimple, F, F, F, F, T, T, F, F },
    { Op::CMPI,    "cmpi",    Format::DCmp,     11,   0, Unit::FXU, kLatSimple, F, F, F, F, F, T, F, F },
    { Op::CMPLI,   "cmpli",   Format::DCmp,     10,   0, Unit::FXU, kLatSimple, F, F, F, F, F, T, F, F },
    { Op::LBZ,     "lbz",     Format::DArith,   34,   0, Unit::LSU, kLatLoad,   T, F, F, F, T, T, F, F },
    { Op::LHZ,     "lhz",     Format::DArith,   40,   0, Unit::LSU, kLatLoad,   T, F, F, F, T, T, F, F },
    { Op::LHA,     "lha",     Format::DArith,   42,   0, Unit::LSU, kLatLoad,   T, F, F, F, T, T, F, F },
    { Op::LWZ,     "lwz",     Format::DArith,   32,   0, Unit::LSU, kLatLoad,   T, F, F, F, T, T, F, F },
    { Op::LWA,     "lwa",     Format::DArith,   56,   0, Unit::LSU, kLatLoad,   T, F, F, F, T, T, F, F },
    { Op::LD,      "ld",      Format::DArith,   58,   0, Unit::LSU, kLatLoad,   T, F, F, F, T, T, F, F },
    { Op::STB,     "stb",     Format::DArith,   38,   0, Unit::LSU, kLatSimple, F, T, F, F, F, T, F, T },
    { Op::STH,     "sth",     Format::DArith,   44,   0, Unit::LSU, kLatSimple, F, T, F, F, F, T, F, T },
    { Op::STW,     "stw",     Format::DArith,   36,   0, Unit::LSU, kLatSimple, F, T, F, F, F, T, F, T },
    { Op::STD,     "std",     Format::DArith,   62,   0, Unit::LSU, kLatSimple, F, T, F, F, F, T, F, T },
    { Op::LBZX,    "lbzx",    Format::X,        31,  87, Unit::LSU, kLatLoad,   T, F, F, F, T, T, T, F },
    { Op::LHZX,    "lhzx",    Format::X,        31, 279, Unit::LSU, kLatLoad,   T, F, F, F, T, T, T, F },
    { Op::LHAX,    "lhax",    Format::X,        31, 343, Unit::LSU, kLatLoad,   T, F, F, F, T, T, T, F },
    { Op::LWZX,    "lwzx",    Format::X,        31,  23, Unit::LSU, kLatLoad,   T, F, F, F, T, T, T, F },
    { Op::LWAX,    "lwax",    Format::X,        31, 341, Unit::LSU, kLatLoad,   T, F, F, F, T, T, T, F },
    { Op::LDX,     "ldx",     Format::X,        31,  21, Unit::LSU, kLatLoad,   T, F, F, F, T, T, T, F },
    { Op::STBX,    "stbx",    Format::X,        31, 215, Unit::LSU, kLatSimple, F, T, F, F, F, T, T, T },
    { Op::STHX,    "sthx",    Format::X,        31, 407, Unit::LSU, kLatSimple, F, T, F, F, F, T, T, T },
    { Op::STWX,    "stwx",    Format::X,        31, 151, Unit::LSU, kLatSimple, F, T, F, F, F, T, T, T },
    { Op::STDX,    "stdx",    Format::X,        31, 149, Unit::LSU, kLatSimple, F, T, F, F, F, T, T, T },
    { Op::ADD,     "add",     Format::XO,       31, 266, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::SUBF,    "subf",    Format::XO,       31,  40, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::NEG,     "neg",     Format::XO,       31, 104, Unit::FXU, kLatSimple, F, F, F, F, T, T, F, F },
    { Op::MULLD,   "mulld",   Format::XO,       31, 233, Unit::FXU, kLatMul,    F, F, F, F, T, T, T, F },
    { Op::DIVD,    "divd",    Format::XO,       31, 489, Unit::FXU, kLatDiv,    F, F, F, F, T, T, T, F },
    { Op::DIVDU,   "divdu",   Format::XO,       31, 457, Unit::FXU, kLatDiv,    F, F, F, F, T, T, T, F },
    { Op::AND,     "and",     Format::X,        31,  28, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::ANDC,    "andc",    Format::X,        31,  60, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::OR,      "or",      Format::X,        31, 444, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::ORC,     "orc",     Format::X,        31, 412, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::XOR,     "xor",     Format::X,        31, 316, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::NOR,     "nor",     Format::X,        31, 124, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::NAND,    "nand",    Format::X,        31, 476, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::EQV,     "eqv",     Format::X,        31, 284, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::SLD,     "sld",     Format::X,        31,  27, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::SRD,     "srd",     Format::X,        31, 539, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::SRAD,    "srad",    Format::X,        31, 794, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::SLDI,    "sldi",    Format::XShImm,   31, 1001, Unit::FXU, kLatSimple, F, F, F, F, T, T, F, F },
    { Op::SRDI,    "srdi",    Format::XShImm,   31, 1002, Unit::FXU, kLatSimple, F, F, F, F, T, T, F, F },
    { Op::SRADI,   "sradi",   Format::XShImm,   31, 1003, Unit::FXU, kLatSimple, F, F, F, F, T, T, F, F },
    { Op::EXTSB,   "extsb",   Format::X,        31, 954, Unit::FXU, kLatSimple, F, F, F, F, T, T, F, F },
    { Op::EXTSH,   "extsh",   Format::X,        31, 922, Unit::FXU, kLatSimple, F, F, F, F, T, T, F, F },
    { Op::EXTSW,   "extsw",   Format::X,        31, 986, Unit::FXU, kLatSimple, F, F, F, F, T, T, F, F },
    { Op::CNTLZD,  "cntlzd",  Format::X,        31,  58, Unit::FXU, kLatSimple, F, F, F, F, T, T, F, F },
    { Op::CMP,     "cmp",     Format::XCmp,     31,   0, Unit::FXU, kLatSimple, F, F, F, F, F, T, T, F },
    { Op::CMPL,    "cmpl",    Format::XCmp,     31,  32, Unit::FXU, kLatSimple, F, F, F, F, F, T, T, F },
    { Op::ISEL,    "isel",    Format::AIsel,    31,  15, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::MAXD,    "maxd",    Format::X,        31, 780, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::MIND,    "mind",    Format::X,        31, 782, Unit::FXU, kLatSimple, F, F, F, F, T, T, T, F },
    { Op::B,       "b",       Format::I,        18,   0, Unit::BRU, kLatSimple, F, F, T, F, F, F, F, F },
    { Op::BC,      "bc",      Format::BForm,    16,   0, Unit::BRU, kLatSimple, F, F, T, T, F, F, F, F },
    { Op::BCLR,    "bclr",    Format::XLBranch, 19,  16, Unit::BRU, kLatSimple, F, F, T, T, F, F, F, F },
    { Op::BCCTR,   "bcctr",   Format::XLBranch, 19, 528, Unit::BRU, kLatSimple, F, F, T, T, F, F, F, F },
    { Op::CRAND,   "crand",   Format::XLCr,     19, 257, Unit::CRU, kLatSimple, F, F, F, F, F, F, F, F },
    { Op::CROR,    "cror",    Format::XLCr,     19, 449, Unit::CRU, kLatSimple, F, F, F, F, F, F, F, F },
    { Op::CRXOR,   "crxor",   Format::XLCr,     19, 193, Unit::CRU, kLatSimple, F, F, F, F, F, F, F, F },
    { Op::CRNOR,   "crnor",   Format::XLCr,     19,  33, Unit::CRU, kLatSimple, F, F, F, F, F, F, F, F },
    { Op::MTSPR,   "mtspr",   Format::XFX,      31, 467, Unit::FXU, kLatSpr,    F, F, F, F, F, F, F, T },
    { Op::MFSPR,   "mfspr",   Format::XFX,      31, 339, Unit::FXU, kLatSpr,    F, F, F, F, T, F, F, F },
    { Op::MFCR,    "mfcr",    Format::XMfcr,    31,  19, Unit::FXU, kLatSpr,    F, F, F, F, T, F, F, F },
    { Op::SC,      "sc",      Format::SCForm,   17,   0, Unit::BRU, kLatSimple, F, F, F, F, F, F, F, F },
}};

struct TableCheck
{
    TableCheck()
    {
        for (size_t i = 0; i < kOpTable.size(); ++i) {
            if (kOpTable[i].op != static_cast<Op>(i))
                panic("opcode table out of order at index %zu", i);
        }
    }
};

const TableCheck kCheck;

const std::unordered_map<std::string_view, Op> &
mnemonicMap()
{
    static const auto *map = [] {
        auto *m = new std::unordered_map<std::string_view, Op>();
        for (const auto &info : kOpTable)
            (*m)[info.mnemonic] = info.op;
        return m;
    }();
    return *map;
}

} // namespace

const OpInfo &
opInfo(Op op)
{
    BP5_ASSERT(op < Op::NUM_OPS, "opInfo(INVALID)");
    return kOpTable[static_cast<size_t>(op)];
}

std::string_view
mnemonic(Op op)
{
    if (op >= Op::NUM_OPS)
        return "<invalid>";
    return kOpTable[static_cast<size_t>(op)].mnemonic;
}

Op
opFromMnemonic(std::string_view name)
{
    auto it = mnemonicMap().find(name);
    return it == mnemonicMap().end() ? Op::INVALID : it->second;
}

} // namespace bp5::isa
