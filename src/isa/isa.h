/**
 * @file
 * Architectural constants of the MiniPOWER ISA: a PowerPC-flavoured
 * 32-bit-encoded, 64-bit-register subset sufficient to express the
 * bioinformatics dynamic-programming kernels studied in the paper.
 *
 * Encodings follow PowerPC field layouts (primary opcode in the top six
 * bits, X/XO extended opcodes, B-form branches with BO/BI) but are not
 * binary compatible with any real PowerPC implementation.  The two ISA
 * extensions evaluated by the paper are included: the embedded-PowerPC
 * `isel` instruction and a hypothetical single-cycle `max`/`min` pair
 * occupying unused extended opcodes (paper section IV-A).
 */

#ifndef BIOPERF5_ISA_ISA_H
#define BIOPERF5_ISA_ISA_H

#include <cstdint>

namespace bp5::isa {

/** Number of general-purpose registers. */
constexpr unsigned kNumGprs = 32;

/** Bits in the condition register. */
constexpr unsigned kNumCrBits = 32;

/** Number of four-bit condition-register fields. */
constexpr unsigned kNumCrFields = 8;

/** Bit offsets within a CR field (MiniPOWER uses LSB-first layout). */
enum CrBit : unsigned
{
    CR_LT = 0, ///< negative / less-than
    CR_GT = 1, ///< positive / greater-than
    CR_EQ = 2, ///< zero / equal
    CR_SO = 3, ///< summary overflow (always 0 in MiniPOWER)
};

/** Bit index within the 32-bit CR for field @p crf, bit @p b. */
constexpr unsigned
crBitIndex(unsigned crf, CrBit b)
{
    return crf * 4 + b;
}

/** Special-purpose register identifiers for mtspr/mfspr. */
enum Spr : unsigned
{
    SPR_LR = 8,
    SPR_CTR = 9,
};

/**
 * BO field patterns supported by conditional branches.  These are the
 * PowerPC encodings for the forms the compiler and assembler emit.
 */
enum BranchBo : unsigned
{
    BO_ALWAYS = 20,      ///< branch unconditionally
    BO_COND_TRUE = 12,   ///< branch if CR[BI] == 1
    BO_COND_FALSE = 4,   ///< branch if CR[BI] == 0
    BO_DNZ = 16,         ///< decrement CTR, branch if CTR != 0
    BO_DZ = 18,          ///< decrement CTR, branch if CTR == 0
};

/**
 * Syscall function selectors: the value of r0 when `sc` executes.
 * MiniPOWER programs run bare (no OS); these are simulator services.
 */
enum Syscall : uint64_t
{
    SYS_EXIT = 0,    ///< halt; r3 = exit code
    SYS_PUTC = 1,    ///< print the character in r3
    SYS_PUTINT = 2,  ///< print the signed integer in r3
    SYS_PUTHEX = 3,  ///< print the value in r3 as hex
};

/**
 * Dependency-tracking register-name space used by the timing model.
 * GPRs occupy [0, 32); CR fields, LR and CTR are mapped above them so a
 * single "last writer" table covers every architected name.
 */
enum DepReg : unsigned
{
    DEP_GPR0 = 0,
    DEP_CRF0 = 32,          ///< CR fields 0..7 -> 32..39
    DEP_LR = 40,
    DEP_CTR = 41,
    kNumDepRegs = 42,
};

/** Dependency name of CR field @p crf. */
constexpr unsigned
depCrField(unsigned crf)
{
    return DEP_CRF0 + crf;
}

} // namespace bp5::isa

#endif // BIOPERF5_ISA_ISA_H
