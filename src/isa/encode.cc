#include "isa/encode.h"

#include <unordered_map>

#include "support/bitfield.h"
#include "support/logging.h"

namespace bp5::isa {

namespace {

constexpr unsigned kIselXo5 = 15;

void
checkReg(unsigned r)
{
    BP5_ASSERT(r < kNumGprs, "register out of range: %u", r);
}

void
checkSignedImm(int64_t v, unsigned bits_)
{
    int64_t lo = -(1LL << (bits_ - 1));
    int64_t hi = (1LL << (bits_ - 1)) - 1;
    BP5_ASSERT(v >= lo && v <= hi, "immediate %lld out of %u-bit range",
               static_cast<long long>(v), bits_);
}

void
checkUnsignedImm(int64_t v, unsigned bits_)
{
    BP5_ASSERT(v >= 0 && v <= static_cast<int64_t>(mask(bits_)),
               "immediate %lld out of unsigned %u-bit range",
               static_cast<long long>(v), bits_);
}

// Decode dispatch tables, built once from the opcode metadata.
struct DecodeTables
{
    std::unordered_map<unsigned, Op> primary;
    std::unordered_map<unsigned, Op> ext31; // keyed by 10-bit xo (XO
                                            // ops keyed by 9-bit xo)
    std::unordered_map<unsigned, Op> ext19;

    DecodeTables()
    {
        for (unsigned i = 0; i < unsigned(Op::NUM_OPS); ++i) {
            Op op = static_cast<Op>(i);
            const OpInfo &info = opInfo(op);
            switch (info.format) {
              case Format::DArith:
              case Format::DCmp:
              case Format::I:
              case Format::BForm:
              case Format::SCForm:
                BP5_ASSERT(!primary.count(info.primary),
                           "duplicate primary opcode %u", info.primary);
                primary[info.primary] = op;
                break;
              case Format::AIsel:
                break; // matched by 5-bit xo
              case Format::XLBranch:
              case Format::XLCr:
                BP5_ASSERT(!ext19.count(info.xo), "dup xo19 %u", info.xo);
                ext19[info.xo] = op;
                break;
              default:
                BP5_ASSERT(!ext31.count(info.xo), "dup xo31 %u", info.xo);
                BP5_ASSERT(info.xo % 32 != kIselXo5,
                           "xo %u shadows isel", info.xo);
                ext31[info.xo] = op;
                break;
            }
        }
    }
};

const DecodeTables &
tables()
{
    static const DecodeTables t;
    return t;
}

} // namespace

uint32_t
encode(const Inst &inst)
{
    const OpInfo &info = inst.info();
    uint32_t w = static_cast<uint32_t>(info.primary) << 26;

    switch (info.format) {
      case Format::DArith:
        checkReg(inst.rt);
        checkReg(inst.ra);
        if (immIsUnsigned(inst.op))
            checkUnsignedImm(inst.imm, 16);
        else
            checkSignedImm(inst.imm, 16);
        w |= static_cast<uint32_t>(inst.rt) << 21;
        w |= static_cast<uint32_t>(inst.ra) << 16;
        w |= static_cast<uint32_t>(inst.imm) & 0xffff;
        break;

      case Format::DCmp:
        checkReg(inst.ra);
        BP5_ASSERT(inst.bf < kNumCrFields, "bad CR field");
        if (immIsUnsigned(inst.op))
            checkUnsignedImm(inst.imm, 16);
        else
            checkSignedImm(inst.imm, 16);
        w |= static_cast<uint32_t>(inst.bf) << 23;
        w |= static_cast<uint32_t>(inst.l64 ? 1 : 0) << 21;
        w |= static_cast<uint32_t>(inst.ra) << 16;
        w |= static_cast<uint32_t>(inst.imm) & 0xffff;
        break;

      case Format::X:
      case Format::XO:
        checkReg(inst.rt);
        checkReg(inst.ra);
        checkReg(inst.rb);
        w |= static_cast<uint32_t>(inst.rt) << 21;
        w |= static_cast<uint32_t>(inst.ra) << 16;
        w |= static_cast<uint32_t>(inst.rb) << 11;
        w |= static_cast<uint32_t>(info.xo) << 1;
        w |= inst.rc ? 1u : 0u;
        break;

      case Format::XShImm:
        // sh is six bits: sh[0..4] in the RB field, sh[5] in bit 0
        // (the Rc position, unused for immediate shifts) — the same
        // trick real PowerPC uses for sradi.
        checkReg(inst.rt);
        checkReg(inst.ra);
        BP5_ASSERT(inst.rb < 64, "shift amount out of range");
        w |= static_cast<uint32_t>(inst.rt) << 21;
        w |= static_cast<uint32_t>(inst.ra) << 16;
        w |= static_cast<uint32_t>(inst.rb & 0x1f) << 11;
        w |= static_cast<uint32_t>(info.xo) << 1;
        w |= (inst.rb >> 5) & 1;
        break;

      case Format::XCmp:
        checkReg(inst.ra);
        checkReg(inst.rb);
        BP5_ASSERT(inst.bf < kNumCrFields, "bad CR field");
        w |= static_cast<uint32_t>(inst.bf) << 23;
        w |= static_cast<uint32_t>(inst.l64 ? 1 : 0) << 21;
        w |= static_cast<uint32_t>(inst.ra) << 16;
        w |= static_cast<uint32_t>(inst.rb) << 11;
        w |= static_cast<uint32_t>(info.xo) << 1;
        break;

      case Format::AIsel:
        checkReg(inst.rt);
        checkReg(inst.ra);
        checkReg(inst.rb);
        BP5_ASSERT(inst.bi < kNumCrBits, "bad CR bit");
        w |= static_cast<uint32_t>(inst.rt) << 21;
        w |= static_cast<uint32_t>(inst.ra) << 16;
        w |= static_cast<uint32_t>(inst.rb) << 11;
        w |= static_cast<uint32_t>(inst.bi) << 6;
        w |= kIselXo5 << 1;
        break;

      case Format::I:
        BP5_ASSERT((inst.imm & 3) == 0, "unaligned branch offset");
        checkSignedImm(inst.imm >> 2, 24);
        w |= (static_cast<uint32_t>(inst.imm >> 2) & 0xffffff) << 2;
        w |= inst.aa ? 2u : 0u;
        w |= inst.lk ? 1u : 0u;
        break;

      case Format::BForm:
        BP5_ASSERT((inst.imm & 3) == 0, "unaligned branch offset");
        checkSignedImm(inst.imm >> 2, 14);
        BP5_ASSERT(inst.bi < kNumCrBits, "bad CR bit");
        w |= static_cast<uint32_t>(inst.bo) << 21;
        w |= static_cast<uint32_t>(inst.bi) << 16;
        w |= (static_cast<uint32_t>(inst.imm >> 2) & 0x3fff) << 2;
        w |= inst.aa ? 2u : 0u;
        w |= inst.lk ? 1u : 0u;
        break;

      case Format::XLBranch:
        w |= static_cast<uint32_t>(inst.bo) << 21;
        w |= static_cast<uint32_t>(inst.bi) << 16;
        w |= static_cast<uint32_t>(info.xo) << 1;
        w |= inst.lk ? 1u : 0u;
        break;

      case Format::XLCr:
        BP5_ASSERT(inst.rt < kNumCrBits && inst.ra < kNumCrBits &&
                   inst.rb < kNumCrBits, "bad CR bit");
        w |= static_cast<uint32_t>(inst.rt) << 21;
        w |= static_cast<uint32_t>(inst.ra) << 16;
        w |= static_cast<uint32_t>(inst.rb) << 11;
        w |= static_cast<uint32_t>(info.xo) << 1;
        break;

      case Format::XFX:
        checkReg(inst.rt);
        BP5_ASSERT(inst.spr < 1024, "bad SPR id");
        w |= static_cast<uint32_t>(inst.rt) << 21;
        w |= static_cast<uint32_t>(inst.spr) << 11;
        w |= static_cast<uint32_t>(info.xo) << 1;
        break;

      case Format::XMfcr:
        checkReg(inst.rt);
        w |= static_cast<uint32_t>(inst.rt) << 21;
        w |= static_cast<uint32_t>(info.xo) << 1;
        break;

      case Format::SCForm:
        w |= 2u; // PowerPC sets bit 1 in sc encodings
        break;
    }
    return w;
}

Inst
decode(uint32_t word)
{
    const DecodeTables &t = tables();
    unsigned primary = bits(word, 26, 6);
    Op op = Op::INVALID;

    if (primary == 31) {
        if (bits(word, 1, 5) == kIselXo5) {
            op = Op::ISEL;
        } else {
            auto it = t.ext31.find(static_cast<unsigned>(bits(word, 1, 10)));
            if (it == t.ext31.end()) {
                // Retry as a 9-bit XO-form opcode (OE in bit 10).
                it = t.ext31.find(static_cast<unsigned>(bits(word, 1, 9)));
            }
            if (it != t.ext31.end())
                op = it->second;
        }
    } else if (primary == 19) {
        auto it = t.ext19.find(static_cast<unsigned>(bits(word, 1, 10)));
        if (it != t.ext19.end())
            op = it->second;
    } else {
        auto it = t.primary.find(primary);
        if (it != t.primary.end())
            op = it->second;
    }

    Inst inst;
    if (op == Op::INVALID)
        return inst;
    inst.op = op;
    const OpInfo &info = opInfo(op);

    switch (info.format) {
      case Format::DArith:
        inst.rt = static_cast<uint8_t>(bits(word, 21, 5));
        inst.ra = static_cast<uint8_t>(bits(word, 16, 5));
        inst.imm = immIsUnsigned(op)
                       ? static_cast<int32_t>(bits(word, 0, 16))
                       : static_cast<int32_t>(sext(word, 16));
        if (op == Op::ANDI_RC)
            inst.rc = true;
        break;
      case Format::DCmp:
        inst.bf = static_cast<uint8_t>(bits(word, 23, 3));
        inst.l64 = bit(word, 21) != 0;
        inst.ra = static_cast<uint8_t>(bits(word, 16, 5));
        inst.imm = immIsUnsigned(op)
                       ? static_cast<int32_t>(bits(word, 0, 16))
                       : static_cast<int32_t>(sext(word, 16));
        break;
      case Format::X:
      case Format::XO:
        inst.rt = static_cast<uint8_t>(bits(word, 21, 5));
        inst.ra = static_cast<uint8_t>(bits(word, 16, 5));
        inst.rb = static_cast<uint8_t>(bits(word, 11, 5));
        inst.rc = bit(word, 0) != 0;
        break;
      case Format::XShImm:
        inst.rt = static_cast<uint8_t>(bits(word, 21, 5));
        inst.ra = static_cast<uint8_t>(bits(word, 16, 5));
        inst.rb = static_cast<uint8_t>(bits(word, 11, 5) |
                                       (bit(word, 0) << 5));
        break;
      case Format::XCmp:
        inst.bf = static_cast<uint8_t>(bits(word, 23, 3));
        inst.l64 = bit(word, 21) != 0;
        inst.ra = static_cast<uint8_t>(bits(word, 16, 5));
        inst.rb = static_cast<uint8_t>(bits(word, 11, 5));
        break;
      case Format::AIsel:
        inst.rt = static_cast<uint8_t>(bits(word, 21, 5));
        inst.ra = static_cast<uint8_t>(bits(word, 16, 5));
        inst.rb = static_cast<uint8_t>(bits(word, 11, 5));
        inst.bi = static_cast<uint8_t>(bits(word, 6, 5));
        break;
      case Format::I:
        inst.imm = static_cast<int32_t>(sext(bits(word, 2, 24), 24)) << 2;
        inst.aa = bit(word, 1) != 0;
        inst.lk = bit(word, 0) != 0;
        break;
      case Format::BForm:
        inst.bo = static_cast<uint8_t>(bits(word, 21, 5));
        inst.bi = static_cast<uint8_t>(bits(word, 16, 5));
        inst.imm = static_cast<int32_t>(sext(bits(word, 2, 14), 14)) << 2;
        inst.aa = bit(word, 1) != 0;
        inst.lk = bit(word, 0) != 0;
        break;
      case Format::XLBranch:
        inst.bo = static_cast<uint8_t>(bits(word, 21, 5));
        inst.bi = static_cast<uint8_t>(bits(word, 16, 5));
        inst.lk = bit(word, 0) != 0;
        break;
      case Format::XLCr:
        inst.rt = static_cast<uint8_t>(bits(word, 21, 5));
        inst.ra = static_cast<uint8_t>(bits(word, 16, 5));
        inst.rb = static_cast<uint8_t>(bits(word, 11, 5));
        break;
      case Format::XFX:
        inst.rt = static_cast<uint8_t>(bits(word, 21, 5));
        inst.spr = static_cast<uint16_t>(bits(word, 11, 10));
        break;
      case Format::XMfcr:
        inst.rt = static_cast<uint8_t>(bits(word, 21, 5));
        break;
      case Format::SCForm:
        break;
    }
    return inst;
}

} // namespace bp5::isa
