/**
 * @file
 * Decoded-instruction representation shared by the assembler, compiler,
 * functional executor and timing model, plus factory helpers and
 * register-dependency extraction.
 *
 * MiniPOWER regularization: unlike real PowerPC (where logical and shift
 * ops write RA from RS), *all* MiniPOWER X/XO-form computational ops
 * write RT from RA/RB.  This keeps the dependency rules uniform and is
 * invisible to the paper's experiments.
 */

#ifndef BIOPERF5_ISA_INST_H
#define BIOPERF5_ISA_INST_H

#include <cstdint>

#include "isa/isa.h"
#include "isa/opcodes.h"

namespace bp5::isa {

/** A decoded MiniPOWER instruction. */
struct Inst
{
    Op op = Op::INVALID;
    uint8_t rt = 0;   ///< target GPR (or BT for CR-logic, source for st)
    uint8_t ra = 0;   ///< source GPR A (or BA)
    uint8_t rb = 0;   ///< source GPR B (or BB / SH for imm shifts)
    int32_t imm = 0;  ///< SI/UI/displacement/branch byte-offset
    uint8_t bf = 0;   ///< CR field for compares
    bool l64 = true;  ///< compare width: true = 64-bit
    uint8_t bo = 0;   ///< branch BO pattern
    uint8_t bi = 0;   ///< branch/isel CR bit index (0..31)
    uint16_t spr = 0; ///< SPR id for mtspr/mfspr
    bool rc = false;  ///< record form (set CR0)
    bool lk = false;  ///< link form (set LR)
    bool aa = false;  ///< absolute branch address

    bool valid() const { return op != Op::INVALID; }
    const OpInfo &info() const { return opInfo(op); }
};

/**
 * True when RA == 0 means the literal value zero rather than GPR 0
 * (D-form address/immediate computations, matching PowerPC).
 */
bool raIsBase(Op op);

/** True when the 16-bit immediate is zero-extended (logical ops, cmpli). */
bool immIsUnsigned(Op op);

/** Maximum dependency names an instruction can read or write. */
constexpr unsigned kMaxDeps = 4;

/**
 * Collect the dependency-register names (see isa::DepReg) read by @p
 * inst into @p out. @return the number of entries written (<= kMaxDeps).
 */
unsigned srcDeps(const Inst &inst, unsigned out[kMaxDeps]);

/** Collect the dependency-register names written by @p inst. */
unsigned dstDeps(const Inst &inst, unsigned out[kMaxDeps]);

// ---------------------------------------------------------------------
// Factory helpers.  These build decoded instructions directly; encode()
// in isa/encode.h turns them into 32-bit words.
// ---------------------------------------------------------------------

/** D-form op with a target, base/source register and 16-bit immediate. */
inline Inst
mkD(Op op, unsigned rt, unsigned ra, int32_t imm)
{
    Inst i;
    i.op = op;
    i.rt = static_cast<uint8_t>(rt);
    i.ra = static_cast<uint8_t>(ra);
    i.imm = imm;
    return i;
}

/** X/XO-form computational op: RT = RA op RB. */
inline Inst
mkX(Op op, unsigned rt, unsigned ra, unsigned rb, bool rc = false)
{
    Inst i;
    i.op = op;
    i.rt = static_cast<uint8_t>(rt);
    i.ra = static_cast<uint8_t>(ra);
    i.rb = static_cast<uint8_t>(rb);
    i.rc = rc;
    return i;
}

/** Unary X-form op (neg, exts*, cntlzd): RT = op(RA). */
inline Inst
mkUnary(Op op, unsigned rt, unsigned ra, bool rc = false)
{
    return mkX(op, rt, ra, 0, rc);
}

/** Immediate shift: RT = RA shift sh (sh in 0..63). */
inline Inst
mkShImm(Op op, unsigned rt, unsigned ra, unsigned sh)
{
    Inst i;
    i.op = op;
    i.rt = static_cast<uint8_t>(rt);
    i.ra = static_cast<uint8_t>(ra);
    i.rb = static_cast<uint8_t>(sh);
    return i;
}

/** Register compare into CR field @p bf. */
inline Inst
mkCmp(Op op, unsigned bf, unsigned ra, unsigned rb, bool l64 = true)
{
    Inst i;
    i.op = op;
    i.bf = static_cast<uint8_t>(bf);
    i.ra = static_cast<uint8_t>(ra);
    i.rb = static_cast<uint8_t>(rb);
    i.l64 = l64;
    return i;
}

/** Immediate compare into CR field @p bf. */
inline Inst
mkCmpi(Op op, unsigned bf, unsigned ra, int32_t imm, bool l64 = true)
{
    Inst i;
    i.op = op;
    i.bf = static_cast<uint8_t>(bf);
    i.ra = static_cast<uint8_t>(ra);
    i.imm = imm;
    i.l64 = l64;
    return i;
}

/** isel: RT = CR[crbit] ? RA : RB. */
inline Inst
mkIsel(unsigned rt, unsigned ra, unsigned rb, unsigned crbit)
{
    Inst i;
    i.op = Op::ISEL;
    i.rt = static_cast<uint8_t>(rt);
    i.ra = static_cast<uint8_t>(ra);
    i.rb = static_cast<uint8_t>(rb);
    i.bi = static_cast<uint8_t>(crbit);
    return i;
}

/** Unconditional relative branch by @p byte_offset. */
inline Inst
mkB(int32_t byte_offset, bool lk = false)
{
    Inst i;
    i.op = Op::B;
    i.imm = byte_offset;
    i.lk = lk;
    return i;
}

/** Conditional relative branch (BO pattern, CR bit, byte offset). */
inline Inst
mkBc(unsigned bo, unsigned bi, int32_t byte_offset, bool lk = false)
{
    Inst i;
    i.op = Op::BC;
    i.bo = static_cast<uint8_t>(bo);
    i.bi = static_cast<uint8_t>(bi);
    i.imm = byte_offset;
    i.lk = lk;
    return i;
}

/** Branch to LR (blr when BO_ALWAYS). */
inline Inst
mkBclr(unsigned bo = BO_ALWAYS, unsigned bi = 0)
{
    Inst i;
    i.op = Op::BCLR;
    i.bo = static_cast<uint8_t>(bo);
    i.bi = static_cast<uint8_t>(bi);
    return i;
}

/** Branch to CTR (bctr when BO_ALWAYS). */
inline Inst
mkBcctr(unsigned bo = BO_ALWAYS, unsigned bi = 0)
{
    Inst i;
    i.op = Op::BCCTR;
    i.bo = static_cast<uint8_t>(bo);
    i.bi = static_cast<uint8_t>(bi);
    return i;
}

/** CR logical op: CR[bt] = CR[ba] op CR[bb]. */
inline Inst
mkCrOp(Op op, unsigned bt, unsigned ba, unsigned bb)
{
    Inst i;
    i.op = op;
    i.rt = static_cast<uint8_t>(bt);
    i.ra = static_cast<uint8_t>(ba);
    i.rb = static_cast<uint8_t>(bb);
    return i;
}

/** Move GPR @p rs to a special register. */
inline Inst
mkMtspr(unsigned spr, unsigned rs)
{
    Inst i;
    i.op = Op::MTSPR;
    i.rt = static_cast<uint8_t>(rs);
    i.spr = static_cast<uint16_t>(spr);
    return i;
}

/** Move a special register to GPR @p rt. */
inline Inst
mkMfspr(unsigned rt, unsigned spr)
{
    Inst i;
    i.op = Op::MFSPR;
    i.rt = static_cast<uint8_t>(rt);
    i.spr = static_cast<uint16_t>(spr);
    return i;
}

/** Read the whole CR into GPR @p rt. */
inline Inst
mkMfcr(unsigned rt)
{
    Inst i;
    i.op = Op::MFCR;
    i.rt = static_cast<uint8_t>(rt);
    return i;
}

/** System call (simulator service selected by r0). */
inline Inst
mkSc()
{
    Inst i;
    i.op = Op::SC;
    return i;
}

/** li rt, imm  ==  addi rt, 0, imm. */
inline Inst
mkLi(unsigned rt, int32_t imm)
{
    return mkD(Op::ADDI, rt, 0, imm);
}

/** mr rt, ra  ==  or rt, ra, ra. */
inline Inst
mkMr(unsigned rt, unsigned ra)
{
    return mkX(Op::OR, rt, ra, ra);
}

/** nop  ==  ori r0, r0, 0. */
inline Inst
mkNop()
{
    return mkD(Op::ORI, 0, 0, 0);
}

} // namespace bp5::isa

#endif // BIOPERF5_ISA_INST_H
