/**
 * @file
 * Binary encoder/decoder between decoded instructions and 32-bit
 * MiniPOWER instruction words.
 */

#ifndef BIOPERF5_ISA_ENCODE_H
#define BIOPERF5_ISA_ENCODE_H

#include <cstdint>

#include "isa/inst.h"

namespace bp5::isa {

/**
 * Encode @p inst into a 32-bit instruction word.  Panics on
 * out-of-range fields (branch displacement, immediates, registers).
 */
uint32_t encode(const Inst &inst);

/**
 * Decode a 32-bit instruction word.  Returns an Inst with
 * op == Op::INVALID for unrecognized encodings.
 */
Inst decode(uint32_t word);

} // namespace bp5::isa

#endif // BIOPERF5_ISA_ENCODE_H
