#include "isa/inst.h"

namespace bp5::isa {

bool
raIsBase(Op op)
{
    switch (op) {
      case Op::ADDI:
      case Op::ADDIS:
      case Op::LBZ: case Op::LHZ: case Op::LHA: case Op::LWZ:
      case Op::LWA: case Op::LD:
      case Op::STB: case Op::STH: case Op::STW: case Op::STD:
      case Op::LBZX: case Op::LHZX: case Op::LHAX: case Op::LWZX:
      case Op::LWAX: case Op::LDX:
      case Op::STBX: case Op::STHX: case Op::STWX: case Op::STDX:
        return true;
      default:
        return false;
    }
}

bool
immIsUnsigned(Op op)
{
    switch (op) {
      case Op::ORI: case Op::ORIS: case Op::XORI: case Op::ANDI_RC:
      case Op::CMPLI:
        return true;
      default:
        return false;
    }
}

namespace {

bool
boReadsCr(unsigned bo)
{
    return bo == BO_COND_TRUE || bo == BO_COND_FALSE;
}

bool
boUsesCtr(unsigned bo)
{
    return bo == BO_DNZ || bo == BO_DZ;
}

} // namespace

unsigned
srcDeps(const Inst &inst, unsigned out[kMaxDeps])
{
    const OpInfo &info = inst.info();
    unsigned n = 0;
    if (info.readsRA && !(raIsBase(inst.op) && inst.ra == 0))
        out[n++] = inst.ra;
    if (info.readsRB)
        out[n++] = inst.rb;
    if (info.readsRT)
        out[n++] = inst.rt;

    switch (inst.op) {
      case Op::BC:
        if (boReadsCr(inst.bo))
            out[n++] = depCrField(inst.bi / 4);
        if (boUsesCtr(inst.bo))
            out[n++] = DEP_CTR;
        break;
      case Op::BCLR:
        out[n++] = DEP_LR;
        if (boReadsCr(inst.bo))
            out[n++] = depCrField(inst.bi / 4);
        break;
      case Op::BCCTR:
        out[n++] = DEP_CTR;
        if (boReadsCr(inst.bo))
            out[n++] = depCrField(inst.bi / 4);
        break;
      case Op::ISEL:
        out[n++] = depCrField(inst.bi / 4);
        break;
      case Op::CRAND: case Op::CROR: case Op::CRXOR: case Op::CRNOR:
        out[n++] = depCrField(inst.ra / 4);
        if (n < kMaxDeps)
            out[n++] = depCrField(inst.rb / 4);
        break;
      case Op::MFSPR:
        out[n++] = inst.spr == SPR_LR ? DEP_LR : DEP_CTR;
        break;
      case Op::MFCR:
        // Approximation: depend on CR field 0 only; a full-CR read is
        // rare and the timing impact is negligible.
        out[n++] = depCrField(0);
        break;
      default:
        break;
    }
    return n;
}

unsigned
dstDeps(const Inst &inst, unsigned out[kMaxDeps])
{
    const OpInfo &info = inst.info();
    unsigned n = 0;
    if (info.writesRT)
        out[n++] = inst.rt;
    if (inst.rc)
        out[n++] = depCrField(0);

    switch (inst.op) {
      case Op::CMPI: case Op::CMPLI: case Op::CMP: case Op::CMPL:
        out[n++] = depCrField(inst.bf);
        break;
      case Op::ANDI_RC:
        out[n++] = depCrField(0);
        break;
      case Op::CRAND: case Op::CROR: case Op::CRXOR: case Op::CRNOR:
        out[n++] = depCrField(inst.rt / 4);
        break;
      case Op::MTSPR:
        out[n++] = inst.spr == SPR_LR ? DEP_LR : DEP_CTR;
        break;
      case Op::B:
        if (inst.lk)
            out[n++] = DEP_LR;
        break;
      case Op::BC:
        if (inst.lk)
            out[n++] = DEP_LR;
        if (boUsesCtr(inst.bo))
            out[n++] = DEP_CTR;
        break;
      case Op::BCLR: case Op::BCCTR:
        if (inst.lk)
            out[n++] = DEP_LR;
        break;
      default:
        break;
    }
    return n;
}

} // namespace bp5::isa
