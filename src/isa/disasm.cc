#include "isa/disasm.h"

#include "isa/encode.h"
#include "support/logging.h"

namespace bp5::isa {

namespace {

/**
 * Render the resolved branch target: label when the resolver knows
 * the address, absolute hex otherwise.  Negative resolved addresses
 * (possible only when disassembling with a fictitious pc) print in
 * signed decimal so the assembler reads back the same displacement.
 */
std::string
branchTarget(const Inst &inst, uint64_t pc, const SymbolResolver &sym)
{
    uint64_t target = inst.aa ? static_cast<uint64_t>(inst.imm)
                              : pc + static_cast<int64_t>(inst.imm);
    if (sym) {
        std::string label = sym(target);
        if (!label.empty())
            return label;
    }
    if (static_cast<int64_t>(target) < 0) {
        return strprintf("%lld", static_cast<long long>(target));
    }
    return strprintf("0x%llx", static_cast<unsigned long long>(target));
}

} // namespace

std::string
disassemble(const Inst &inst, uint64_t pc, const SymbolResolver &sym)
{
    if (!inst.valid())
        return "<invalid>";
    const OpInfo &info = inst.info();
    std::string m(info.mnemonic);
    if (inst.rc && inst.op != Op::ANDI_RC)
        m += ".";

    switch (info.format) {
      case Format::DArith:
        if (info.isLoad || info.isStore) {
            return strprintf("%s r%u, %d(r%u)", m.c_str(), inst.rt,
                             inst.imm, inst.ra);
        }
        return strprintf("%s r%u, r%u, %d", m.c_str(), inst.rt, inst.ra,
                         inst.imm);
      case Format::DCmp:
        return strprintf("%s cr%u, %u, r%u, %d", m.c_str(), inst.bf,
                         inst.l64 ? 1 : 0, inst.ra, inst.imm);
      case Format::X:
      case Format::XO:
        if (!info.readsRB) {
            return strprintf("%s r%u, r%u", m.c_str(), inst.rt, inst.ra);
        }
        return strprintf("%s r%u, r%u, r%u", m.c_str(), inst.rt, inst.ra,
                         inst.rb);
      case Format::XShImm:
        return strprintf("%s r%u, r%u, %u", m.c_str(), inst.rt, inst.ra,
                         inst.rb);
      case Format::XCmp:
        return strprintf("%s cr%u, %u, r%u, r%u", m.c_str(), inst.bf,
                         inst.l64 ? 1 : 0, inst.ra, inst.rb);
      case Format::AIsel:
        return strprintf("%s r%u, r%u, r%u, %u", m.c_str(), inst.rt,
                         inst.ra, inst.rb, inst.bi);
      case Format::I:
        return strprintf("%s%s %s", "b", inst.lk ? "l" : "",
                         branchTarget(inst, pc, sym).c_str());
      case Format::BForm:
        return strprintf("bc%s %u, %u, %s", inst.lk ? "l" : "", inst.bo,
                         inst.bi, branchTarget(inst, pc, sym).c_str());
      case Format::XLBranch:
        if (inst.bo == BO_ALWAYS)
            return inst.op == Op::BCLR ? "blr" : "bctr";
        return strprintf("%s%s %u, %u", m.c_str(), inst.lk ? "l" : "",
                         inst.bo, inst.bi);
      case Format::XLCr:
        return strprintf("%s %u, %u, %u", m.c_str(), inst.rt, inst.ra,
                         inst.rb);
      case Format::XFX:
        if (inst.spr == SPR_LR) {
            return inst.op == Op::MTSPR
                       ? strprintf("mtlr r%u", inst.rt)
                       : strprintf("mflr r%u", inst.rt);
        }
        if (inst.spr == SPR_CTR) {
            return inst.op == Op::MTSPR
                       ? strprintf("mtctr r%u", inst.rt)
                       : strprintf("mfctr r%u", inst.rt);
        }
        return strprintf("%s %u, r%u", m.c_str(), inst.spr, inst.rt);
      case Format::XMfcr:
        return strprintf("mfcr r%u", inst.rt);
      case Format::SCForm:
        return "sc";
    }
    return "<invalid>";
}

std::string
disassemble(uint32_t word, uint64_t pc, const SymbolResolver &sym)
{
    return disassemble(decode(word), pc, sym);
}

} // namespace bp5::isa
