/**
 * @file
 * MiniPOWER opcode enumeration and static per-opcode metadata: encoding
 * format, primary/extended opcode values, execution unit, latency and
 * behavioural flags.  The table in opcodes.cc is the single source of
 * truth consumed by the encoder, decoder, disassembler, assembler,
 * functional executor and timing model.
 */

#ifndef BIOPERF5_ISA_OPCODES_H
#define BIOPERF5_ISA_OPCODES_H

#include <cstdint>
#include <string_view>

namespace bp5::isa {

/** All MiniPOWER instructions. */
enum class Op : uint16_t
{
    // D-form immediate arithmetic / logical
    ADDI, ADDIS, MULLI, ORI, ORIS, XORI, ANDI_RC,
    // D-form compares (BF, L, RA, SI/UI)
    CMPI, CMPLI,
    // D-form loads
    LBZ, LHZ, LHA, LWZ, LWA, LD,
    // D-form stores
    STB, STH, STW, STD,
    // X-form indexed loads
    LBZX, LHZX, LHAX, LWZX, LWAX, LDX,
    // X-form indexed stores
    STBX, STHX, STWX, STDX,
    // XO-form arithmetic
    ADD, SUBF, NEG, MULLD, DIVD, DIVDU,
    // X-form logical
    AND, ANDC, OR, ORC, XOR, NOR, NAND, EQV,
    // X-form shifts (register and immediate-sh variants)
    SLD, SRD, SRAD, SLDI, SRDI, SRADI,
    // X-form extension / count
    EXTSB, EXTSH, EXTSW, CNTLZD,
    // X-form compares
    CMP, CMPL,
    // ISA extensions studied by the paper
    ISEL, MAXD, MIND,
    // Branches
    B, BC, BCLR, BCCTR,
    // CR logical
    CRAND, CROR, CRXOR, CRNOR,
    // Move to/from special registers, read CR
    MTSPR, MFSPR, MFCR,
    // System call (simulator services)
    SC,

    NUM_OPS,
    INVALID = NUM_OPS,
};

/** Encoding format of an instruction word. */
enum class Format : uint8_t
{
    DArith,   ///< opcd | RT | RA | SI16        (addi, ori, loads...)
    DCmp,     ///< opcd | BF//L | RA | SI16     (cmpi, cmpli)
    X,        ///< 31 | RT | RA | RB | XO10 | Rc
    XCmp,     ///< 31 | BF//L | RA | RB | XO10
    XShImm,   ///< 31 | RS | RA | SH5 | XO10 | Rc (sldi/srdi/sradi)
    XO,       ///< 31 | RT | RA | RB | 0 | XO9 | Rc
    AIsel,    ///< 31 | RT | RA | RB | BC5 | 15 | 0
    I,        ///< opcd | LI24 | AA | LK        (b)
    BForm,    ///< opcd | BO | BI | BD14 | AA | LK (bc)
    XLBranch, ///< 19 | BO | BI | 0 | XO10 | LK (bclr, bcctr)
    XLCr,     ///< 19 | BT | BA | BB | XO10 | 0 (crand...)
    XFX,      ///< 31 | RT | SPR10 | XO10 | 0   (mtspr, mfspr)
    XMfcr,    ///< 31 | RT | 0 | 0 | XO10 | 0
    SCForm,   ///< 17 | ... | 1 << 1
};

/** Functional unit that executes an instruction class. */
enum class Unit : uint8_t
{
    FXU, ///< fixed-point unit (arith, logic, cmp, isel, max)
    LSU, ///< load/store unit
    BRU, ///< branch unit
    CRU, ///< condition-register logical unit
    NONE,
};

/** Static description of one opcode. */
struct OpInfo
{
    Op op;
    std::string_view mnemonic;
    Format format;
    uint8_t primary;   ///< primary opcode (bits 26..31)
    uint16_t xo;       ///< extended opcode where the format has one
    Unit unit;
    uint8_t latency;   ///< execution latency in cycles (cache adds more)
    bool isLoad : 1;
    bool isStore : 1;
    bool isBranch : 1;
    bool isCondBranch : 1;
    bool writesRT : 1; ///< defines GPR[RT]
    bool readsRA : 1;
    bool readsRB : 1;
    bool readsRT : 1;  ///< RT is a source (stores)
};

/** Metadata for @p op; panics on INVALID. */
const OpInfo &opInfo(Op op);

/** Mnemonic for @p op ("<invalid>" for INVALID). */
std::string_view mnemonic(Op op);

/** Look up an opcode by exact mnemonic; INVALID if unknown. */
Op opFromMnemonic(std::string_view name);

} // namespace bp5::isa

#endif // BIOPERF5_ISA_OPCODES_H
