/**
 * @file
 * MiniPOWER disassembler: decoded instructions back to assembly text
 * accepted by the masm assembler.
 */

#ifndef BIOPERF5_ISA_DISASM_H
#define BIOPERF5_ISA_DISASM_H

#include <cstdint>
#include <functional>
#include <string>

#include "isa/inst.h"

namespace bp5::isa {

/**
 * Optional address-to-label lookup used to render branch targets as
 * the label they resolve to.  Return "" for addresses with no label.
 */
using SymbolResolver = std::function<std::string(uint64_t)>;

/**
 * Disassemble @p inst.  @p pc (byte address of the instruction) is
 * used to resolve relative branch displacements; branch targets are
 * always rendered as the absolute address they resolve to (which the
 * assembler round-trips), or as a label when @p sym names the target.
 */
std::string disassemble(const Inst &inst, uint64_t pc = 0,
                        const SymbolResolver &sym = {});

/** Decode and disassemble an instruction word. */
std::string disassemble(uint32_t word, uint64_t pc = 0,
                        const SymbolResolver &sym = {});

} // namespace bp5::isa

#endif // BIOPERF5_ISA_DISASM_H
