/**
 * @file
 * MiniPOWER disassembler: decoded instructions back to assembly text
 * accepted by the masm assembler.
 */

#ifndef BIOPERF5_ISA_DISASM_H
#define BIOPERF5_ISA_DISASM_H

#include <cstdint>
#include <string>

#include "isa/inst.h"

namespace bp5::isa {

/**
 * Disassemble @p inst.  @p pc (byte address of the instruction) is used
 * to render relative branch targets as absolute addresses; pass 0 to
 * render raw offsets.
 */
std::string disassemble(const Inst &inst, uint64_t pc = 0);

/** Decode and disassemble an instruction word. */
std::string disassemble(uint32_t word, uint64_t pc = 0);

} // namespace bp5::isa

#endif // BIOPERF5_ISA_DISASM_H
