/**
 * @file
 * Deterministic synthetic sequence generation.  BioPerf's class-A/B/C
 * inputs (and the Swiss-Prot slices they are drawn from) are not
 * redistributable, so workloads are generated: random sequences with
 * realistic residue composition, mutated homolog families, and
 * database mixtures with planted homologs (so searches find real
 * alignments and the DP kernels see realistic score distributions).
 */

#ifndef BIOPERF5_BIO_GENERATOR_H
#define BIOPERF5_BIO_GENERATOR_H

#include <vector>

#include "bio/sequence.h"
#include "support/random.h"

namespace bp5::bio {

/** Mutation rates used when deriving homologs from an ancestor. */
struct MutationModel
{
    double substitution = 0.15; ///< per-residue substitution probability
    double insertion = 0.02;    ///< per-position insertion probability
    double deletion = 0.02;     ///< per-position deletion probability
};

/** Synthetic sequence factory (fully deterministic from its Rng). */
class SequenceGenerator
{
  public:
    explicit SequenceGenerator(uint64_t seed,
                               Alphabet alphabet = Alphabet::Protein);

    /** One random sequence of @p length with natural composition. */
    Sequence random(size_t length, const std::string &name);

    /** Mutate @p src according to @p model. */
    Sequence mutate(const Sequence &src, const MutationModel &model,
                    const std::string &name);

    /**
     * A homologous family: an unnamed random ancestor of @p length and
     * @p count descendants mutated from it.
     */
    std::vector<Sequence> family(size_t count, size_t length,
                                 const MutationModel &model,
                                 const std::string &prefix = "seq");

    /**
     * A search database of @p count sequences with lengths uniform in
     * [minLen, maxLen].  @p homologs of them are mutated copies of
     * @p query (planted hits).
     */
    std::vector<Sequence> database(const Sequence &query, size_t count,
                                   size_t minLen, size_t maxLen,
                                   size_t homologs,
                                   const MutationModel &model);

    Rng &rng() { return rng_; }

  private:
    uint8_t randomResidue();

    Rng rng_;
    Alphabet alphabet_;
    std::vector<double> composition_;
};

} // namespace bp5::bio

#endif // BIOPERF5_BIO_GENERATOR_H
