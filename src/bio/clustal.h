/**
 * @file
 * Clustalw-style progressive multiple sequence alignment, with the
 * three stages of the real application (paper section II):
 *
 *   1. all-against-all pairwise alignment producing a distance matrix
 *      (the forward_pass / pairalign stage that dominates runtime),
 *   2. guide-tree construction (UPGMA or neighbor-joining), and
 *   3. progressive profile-profile alignment following the tree.
 */

#ifndef BIOPERF5_BIO_CLUSTAL_H
#define BIOPERF5_BIO_CLUSTAL_H

#include <string>
#include <vector>

#include "bio/align.h"
#include "bio/scoring.h"
#include "bio/sequence.h"

namespace bp5::bio {

/** Symmetric pairwise distance matrix (1 - fractional identity). */
class DistanceMatrix
{
  public:
    explicit DistanceMatrix(size_t n) : n_(n), d_(n * n, 0.0) {}

    size_t size() const { return n_; }
    double at(size_t i, size_t j) const { return d_[i * n_ + j]; }
    void set(size_t i, size_t j, double v);

  private:
    size_t n_;
    std::vector<double> d_;
};

/**
 * Stage 1: pairwise distances from global alignments.
 * Performs n(n-1)/2 Needleman-Wunsch alignments.
 */
DistanceMatrix pairwiseDistances(const std::vector<Sequence> &seqs,
                                 const SubstitutionMatrix &m,
                                 const GapPenalty &gap);

/** A rooted binary guide tree stored as an array of nodes. */
struct GuideTree
{
    struct Node
    {
        int left = -1;   ///< child node index (-1 for leaves)
        int right = -1;
        int leaf = -1;   ///< sequence index for leaves
        double height = 0.0;
    };

    std::vector<Node> nodes;
    int root = -1;

    bool isLeaf(int n) const { return nodes[size_t(n)].leaf >= 0; }

    /** Newick rendering (names from @p names, heights as lengths). */
    std::string newick(const std::vector<std::string> &names) const;
};

/** Stage 2a: UPGMA clustering of @p d. */
GuideTree upgmaTree(const DistanceMatrix &d);

/** Stage 2b: neighbor-joining (rooted at the final join). */
GuideTree njTree(const DistanceMatrix &d);

/** An alignment profile: per-member gapped rows over a common length. */
class Profile
{
  public:
    /** Profile of a single ungapped sequence. */
    Profile(const Sequence &seq, size_t member_index);

    size_t columns() const { return rows_.empty() ? 0 : rows_[0].size(); }
    size_t members() const { return rows_.size(); }
    const std::vector<std::string> &rows() const { return rows_; }
    const std::vector<size_t> &memberIndex() const { return members_; }

    /**
     * Column score between two profiles: expected substitution score
     * over residue frequency distributions, gaps scoring zero.
     */
    static double columnScore(const Profile &a, size_t ca,
                              const Profile &b, size_t cb,
                              const SubstitutionMatrix &m);

    /** Align and merge two profiles (progressive step). */
    static Profile align(const Profile &a, const Profile &b,
                         const SubstitutionMatrix &m,
                         const GapPenalty &gap);

  private:
    Profile() = default;

    Alphabet alphabet_ = Alphabet::Protein;
    std::vector<std::string> rows_;   ///< letters + '-' per member
    std::vector<size_t> members_;     ///< original sequence indices
};

/** Result of the full pipeline. */
struct Msa
{
    std::vector<std::string> rows; ///< aligned letters, input order
    std::vector<std::string> names;
    GuideTree tree;
    DistanceMatrix distances{0};

    /** Sum-of-pairs score of the final alignment. */
    int64_t sumOfPairsScore(const SubstitutionMatrix &m,
                            const GapPenalty &gap) const;
};

/** Guide-tree construction method. */
enum class TreeMethod { Upgma, NeighborJoining };

/** Stage 1+2+3: the whole Clustalw-style pipeline. */
Msa progressiveAlign(const std::vector<Sequence> &seqs,
                     const SubstitutionMatrix &m, const GapPenalty &gap,
                     TreeMethod method = TreeMethod::Upgma);

} // namespace bp5::bio

#endif // BIOPERF5_BIO_CLUSTAL_H
