#include "bio/blast.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace bp5::bio {

uint32_t
WordIndex::encodeWord(const Sequence &s, size_t pos, unsigned wordLen,
                      unsigned alphabet)
{
    uint32_t code = 0;
    for (unsigned k = 0; k < wordLen; ++k)
        code = code * alphabet + s[pos + k];
    return code;
}

WordIndex::WordIndex(const Sequence &query, const SubstitutionMatrix &m,
                     const BlastParams &params)
{
    unsigned K = alphabetSize(query.alphabet());
    unsigned w = params.wordLen;
    size_t tableSize = 1;
    for (unsigned k = 0; k < w; ++k)
        tableSize *= K;
    table_.resize(tableSize);
    if (query.size() < w)
        return;

    // For each query word, enumerate neighbourhood words scoring at
    // least T (including the word itself).  Enumeration is a w-deep
    // product with score-based pruning using per-position maxima.
    std::vector<int> colMax(w);
    for (size_t q = 0; q + w <= query.size(); ++q) {
        for (unsigned k = 0; k < w; ++k) {
            int best = m.score(query[q + k], 0);
            for (unsigned x = 1; x < K; ++x)
                best = std::max(best, m.score(query[q + k], x));
            colMax[k] = best;
        }
        // Suffix maxima for pruning.
        std::vector<int> suffix(w + 1, 0);
        for (int k = static_cast<int>(w) - 1; k >= 0; --k)
            suffix[static_cast<size_t>(k)] =
                suffix[static_cast<size_t>(k) + 1] +
                colMax[static_cast<size_t>(k)];

        // Score-pruned enumeration over residue choices.
        auto enumerate = [&](auto &&self, unsigned depth, int score,
                             uint32_t code) -> void {
            if (depth == w) {
                if (score >= params.neighborThreshold) {
                    table_[code].push_back(static_cast<uint32_t>(q));
                    ++entries_;
                }
                return;
            }
            for (unsigned x = 0; x < K; ++x) {
                int s = m.score(query[q + depth], x);
                if (score + s + suffix[depth + 1] <
                    params.neighborThreshold)
                    continue;
                self(self, depth + 1, score + s, code * K + x);
            }
        };
        enumerate(enumerate, 0, 0, 0);
    }
}

const std::vector<uint32_t> &
WordIndex::lookup(uint32_t wordCode) const
{
    return table_[wordCode];
}

int
semiGappedExtend(const Sequence &a, size_t aFrom, const Sequence &b,
                 size_t bFrom, bool forward, const SubstitutionMatrix &m,
                 const BlastParams &p, size_t *aBest, size_t *bBest)
{
    // Work in extension coordinates: cell (i, j) means i residues of a
    // and j residues of b consumed beyond the seed.
    int64_t alen, blen;
    if (forward) {
        alen = static_cast<int64_t>(a.size() - aFrom);
        blen = static_cast<int64_t>(b.size() - bFrom);
    } else {
        alen = static_cast<int64_t>(aFrom);
        blen = static_cast<int64_t>(bFrom);
    }
    auto resA = [&](int64_t i) {
        return forward ? a[aFrom + static_cast<size_t>(i) - 1]
                       : a[aFrom - static_cast<size_t>(i)];
    };
    auto resB = [&](int64_t j) {
        return forward ? b[bFrom + static_cast<size_t>(j) - 1]
                       : b[bFrom - static_cast<size_t>(j)];
    };

    const int64_t NEG = INT32_MIN / 4;
    int wg = p.gap.open, ws = p.gap.extend;
    int xd = p.xDropGapped;

    // Row-at-a-time DP over j with live-window pruning.
    std::vector<int64_t> V(static_cast<size_t>(blen) + 1, NEG);
    std::vector<int64_t> F(static_cast<size_t>(blen) + 1, NEG);
    int64_t best = 0;
    int64_t bestI = 0, bestJ = 0;

    V[0] = 0;
    int64_t jLo = 1, jHi = blen; // live window for the next row
    for (int64_t j = 1; j <= blen; ++j) {
        V[static_cast<size_t>(j)] = -wg - j * ws;
        if (V[static_cast<size_t>(j)] < -xd) {
            jHi = j;
            break;
        }
    }

    for (int64_t i = 1; i <= alen && jLo <= jHi; ++i) {
        int64_t e = NEG;
        int64_t vdiag = V[static_cast<size_t>(jLo - 1)];
        int64_t rowBest = NEG;
        int64_t newLo = -1, newHi = jLo - 1;
        // Cell (i, 0): gap in b.
        if (jLo == 1) {
            int64_t v0 = -wg - i * ws;
            if (v0 >= best - xd) {
                vdiag = V[0];
                V[0] = v0;
                rowBest = v0;
                newLo = 0;
                newHi = 0;
            } else {
                V[0] = NEG;
            }
        }
        for (int64_t j = jLo; j <= std::min<int64_t>(jHi + 1, blen);
             ++j) {
            size_t ju = static_cast<size_t>(j);
            e = std::max(e - ws, V[ju - 1] - wg - ws);
            F[ju] = std::max(F[ju] - ws, V[ju] - wg - ws);
            int64_t g = vdiag + m.score(resA(i), resB(j));
            vdiag = V[ju];
            int64_t v = std::max(std::max(e, F[ju]), g);
            if (v < best - xd) {
                V[ju] = NEG;
                F[ju] = NEG;
            } else {
                V[ju] = v;
                if (newLo < 0)
                    newLo = j;
                newHi = j;
                if (v > rowBest)
                    rowBest = v;
                if (v > best) {
                    best = v;
                    bestI = i;
                    bestJ = j;
                }
            }
        }
        if (newLo < 0)
            break; // row died: extension ends
        jLo = std::max<int64_t>(newLo, 1);
        jHi = newHi;
    }

    if (aBest)
        *aBest = static_cast<size_t>(bestI);
    if (bBest)
        *bBest = static_cast<size_t>(bestJ);
    return static_cast<int>(best);
}

BlastSearch::BlastSearch(const Sequence &query,
                         const SubstitutionMatrix &m,
                         const BlastParams &params)
    : query_(query), m_(m), params_(params), index_(query, m, params)
{
    BP5_ASSERT(query.alphabet() == m.alphabet(),
               "query/matrix alphabet mismatch");
}

std::vector<Hsp>
BlastSearch::searchSubject(const Sequence &subject, size_t seqIndex,
                           size_t dbResidues) const
{
    std::vector<Hsp> out;
    unsigned w = params_.wordLen;
    if (subject.size() < w || query_.size() < w)
        return out;
    unsigned K = alphabetSize(query_.alphabet());

    // Diagonal bookkeeping: diag = s - q + qLen.
    size_t ndiag = query_.size() + subject.size() + 1;
    std::vector<int64_t> lastHit(ndiag, -1);
    std::vector<int64_t> extended(ndiag, -1); // subject pos covered

    for (size_t s = 0; s + w <= subject.size(); ++s) {
        uint32_t code = WordIndex::encodeWord(subject, s, w, K);
        for (uint32_t q : index_.lookup(code)) {
            size_t diag = s - q + query_.size();
            if (extended[diag] >= static_cast<int64_t>(s)) {
                continue; // already inside an extension
            }
            int64_t prev = lastHit[diag];
            if (prev >= 0 && static_cast<int64_t>(s) - prev <
                                 static_cast<int64_t>(w)) {
                continue; // overlaps the previous hit: ignore it
            }
            lastHit[diag] = static_cast<int64_t>(s);
            if (prev < 0 ||
                static_cast<int64_t>(s) - prev >
                    static_cast<int64_t>(params_.twoHitWindow)) {
                continue; // need a recent second hit on this diagonal
            }

            // Ungapped x-drop extension around the word.
            ++ungappedExtensions;
            int64_t qi = q, si = static_cast<int64_t>(s);
            int score = 0;
            for (unsigned k = 0; k < w; ++k)
                score += m_.score(query_[q + k], subject[s + k]);
            int bestScore = score;
            int64_t lo = 0;
            {
                int run = score;
                int64_t i = 1;
                while (qi - i >= 0 && si - i >= 0) {
                    run += m_.score(query_[static_cast<size_t>(qi - i)],
                                    subject[static_cast<size_t>(si - i)]);
                    if (run > bestScore) {
                        bestScore = run;
                        lo = i;
                    }
                    if (run < bestScore - params_.xDropUngapped)
                        break;
                    ++i;
                }
            }
            int64_t hi = w - 1;
            {
                int run = bestScore;
                int64_t i = static_cast<int64_t>(w);
                while (q + static_cast<size_t>(i) < query_.size() &&
                       s + static_cast<size_t>(i) < subject.size()) {
                    run += m_.score(query_[q + static_cast<size_t>(i)],
                                    subject[s + static_cast<size_t>(i)]);
                    if (run > bestScore) {
                        bestScore = run;
                        hi = i;
                    }
                    if (run < bestScore - params_.xDropUngapped)
                        break;
                    ++i;
                }
            }
            if (bestScore < params_.ungappedTrigger)
                continue;

            // Gapped extension in both directions (SEMI_G_ALIGN).
            ++gappedExtensions;
            size_t qSeedL = q - static_cast<size_t>(lo);
            size_t sSeedL = s - static_cast<size_t>(lo);
            size_t qSeedR = q + static_cast<size_t>(hi) + 1;
            size_t sSeedR = s + static_cast<size_t>(hi) + 1;
            int segScore = 0;
            for (size_t k = qSeedL, k2 = sSeedL; k < qSeedR; ++k, ++k2)
                segScore += m_.score(query_[k], subject[k2]);

            size_t la = 0, lb = 0, ra = 0, rb = 0;
            int left = semiGappedExtend(query_, qSeedL, subject, sSeedL,
                                        false, m_, params_, &la, &lb);
            int right = semiGappedExtend(query_, qSeedR, subject,
                                         sSeedR, true, m_, params_, &ra,
                                         &rb);
            int total = segScore + left + right;
            if (total < params_.minReportScore)
                continue;

            Hsp h;
            h.seqIndex = seqIndex;
            h.qStart = qSeedL - la;
            h.sStart = sSeedL - lb;
            h.qEnd = qSeedR + ra;
            h.sEnd = sSeedR + rb;
            h.score = total;
            h.evalue = params_.kParam * double(query_.size()) *
                       double(dbResidues) *
                       std::exp(-params_.lambda * total);
            out.push_back(h);
            extended[diag] = static_cast<int64_t>(h.sEnd);
        }
    }

    // Keep the best HSP per overlapping region (simple dominance).
    std::sort(out.begin(), out.end(), [](const Hsp &a, const Hsp &b) {
        return a.score > b.score;
    });
    std::vector<Hsp> kept;
    for (const Hsp &h : out) {
        bool dominated = false;
        for (const Hsp &k : kept) {
            bool overlapQ = h.qStart < k.qEnd && k.qStart < h.qEnd;
            bool overlapS = h.sStart < k.sEnd && k.sStart < h.sEnd;
            if (overlapQ && overlapS) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            kept.push_back(h);
    }
    return kept;
}

std::vector<Hsp>
BlastSearch::search(const std::vector<Sequence> &db) const
{
    size_t residues = 0;
    for (const Sequence &s : db)
        residues += s.size();
    std::vector<Hsp> all;
    for (size_t i = 0; i < db.size(); ++i) {
        std::vector<Hsp> hs = searchSubject(db[i], i, residues);
        all.insert(all.end(), hs.begin(), hs.end());
    }
    std::sort(all.begin(), all.end(), [](const Hsp &a, const Hsp &b) {
        return a.evalue < b.evalue ||
               (a.evalue == b.evalue && a.seqIndex < b.seqIndex);
    });
    return all;
}

} // namespace bp5::bio
