#include "bio/generator.h"

#include "support/logging.h"

namespace bp5::bio {

namespace {

// Approximate natural amino-acid frequencies (Swiss-Prot composition),
// in the matrix residue order A R N D C Q E G H I L K M F P S T W Y V.
constexpr double kProteinComposition[20] = {
    8.3, 5.5, 4.0, 5.5, 1.4, 3.9, 6.7, 7.1, 2.3, 5.9,
    9.7, 5.8, 2.4, 3.9, 4.7, 6.6, 5.4, 1.1, 2.9, 6.9,
};

} // namespace

SequenceGenerator::SequenceGenerator(uint64_t seed, Alphabet alphabet)
    : rng_(seed), alphabet_(alphabet)
{
    if (alphabet_ == Alphabet::Protein) {
        composition_.assign(kProteinComposition,
                            kProteinComposition + 20);
    } else {
        composition_.assign(4, 1.0);
    }
}

uint8_t
SequenceGenerator::randomResidue()
{
    return static_cast<uint8_t>(rng_.weighted(composition_));
}

Sequence
SequenceGenerator::random(size_t length, const std::string &name)
{
    std::vector<uint8_t> codes;
    codes.reserve(length);
    for (size_t i = 0; i < length; ++i)
        codes.push_back(randomResidue());
    return Sequence(name, alphabet_, std::move(codes));
}

Sequence
SequenceGenerator::mutate(const Sequence &src, const MutationModel &model,
                          const std::string &name)
{
    std::vector<uint8_t> codes;
    codes.reserve(src.size() + 8);
    for (size_t i = 0; i < src.size(); ++i) {
        if (rng_.chance(model.deletion))
            continue;
        if (rng_.chance(model.insertion))
            codes.push_back(randomResidue());
        if (rng_.chance(model.substitution))
            codes.push_back(randomResidue());
        else
            codes.push_back(src[i]);
    }
    if (codes.empty())
        codes.push_back(randomResidue());
    return Sequence(name, alphabet_, std::move(codes));
}

std::vector<Sequence>
SequenceGenerator::family(size_t count, size_t length,
                          const MutationModel &model,
                          const std::string &prefix)
{
    BP5_ASSERT(count > 0 && length > 0, "empty family requested");
    Sequence ancestor = random(length, prefix + "_ancestor");
    std::vector<Sequence> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        out.push_back(
            mutate(ancestor, model, prefix + std::to_string(i)));
    }
    return out;
}

std::vector<Sequence>
SequenceGenerator::database(const Sequence &query, size_t count,
                            size_t minLen, size_t maxLen, size_t homologs,
                            const MutationModel &model)
{
    BP5_ASSERT(minLen > 0 && minLen <= maxLen, "bad length range");
    BP5_ASSERT(homologs <= count, "more homologs than sequences");
    std::vector<Sequence> db;
    db.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        std::string name = "db" + std::to_string(i);
        if (i < homologs) {
            db.push_back(mutate(query, model, name + "_hom"));
        } else {
            size_t len = static_cast<size_t>(
                rng_.range(static_cast<int64_t>(minLen),
                           static_cast<int64_t>(maxLen)));
            db.push_back(random(len, name));
        }
    }
    // Shuffle so homologs are not all at the front.
    for (size_t i = db.size(); i > 1; --i) {
        size_t j = rng_.below(i);
        std::swap(db[i - 1], db[j]);
    }
    return db;
}

} // namespace bp5::bio
