#include "bio/hmm.h"

#include <algorithm>
#include <cmath>

#include "bio/clustal.h"
#include "support/logging.h"

namespace bp5::bio {

namespace {

/** Scaled log2-odds of probability @p p against background @p bg. */
int32_t
logOdds(double p, double bg)
{
    if (p <= 0.0)
        return Plan7Model::kNegInf;
    return static_cast<int32_t>(
        std::lround(Plan7Model::kScale * std::log2(p / bg)));
}

/** Scaled log2 of a probability. */
int32_t
logProb(double p)
{
    if (p <= 0.0)
        return Plan7Model::kNegInf;
    return static_cast<int32_t>(
        std::lround(Plan7Model::kScale * std::log2(p)));
}

int32_t
vmax(int32_t a, int32_t b)
{
    return a > b ? a : b;
}

/** Saturating add that keeps -inf absorbing. */
int32_t
sadd(int32_t a, int32_t b)
{
    if (a <= Plan7Model::kNegInf || b <= Plan7Model::kNegInf)
        return Plan7Model::kNegInf;
    return a + b;
}

} // namespace

Plan7Model
Plan7Model::fromAlignment(const std::vector<std::string> &rows,
                          Alphabet alphabet)
{
    BP5_ASSERT(!rows.empty(), "empty alignment");
    size_t ncols = rows[0].size();
    for (const std::string &r : rows) {
        BP5_ASSERT(r.size() == ncols, "ragged alignment rows");
    }
    size_t nseq = rows.size();
    unsigned K = alphabetSize(alphabet);

    // 1. Match-column assignment (>= 50% residue occupancy).
    std::vector<bool> isMatch(ncols, false);
    unsigned M = 0;
    for (size_t c = 0; c < ncols; ++c) {
        size_t occ = 0;
        for (const std::string &r : rows)
            occ += r[c] != '-';
        if (occ * 2 >= nseq) {
            isMatch[c] = true;
            ++M;
        }
    }
    BP5_ASSERT(M > 0, "alignment has no match columns");

    Plan7Model model;
    model.alphabet_ = alphabet;
    model.m_ = M;

    // 2. Emission counts with Laplace pseudocounts.
    std::vector<double> emit((M + 1) * K, 1.0);
    {
        unsigned j = 0;
        for (size_t c = 0; c < ncols; ++c) {
            if (!isMatch[c])
                continue;
            ++j;
            for (const std::string &r : rows) {
                if (r[c] == '-')
                    continue;
                int code = encodeResidue(alphabet, r[c]);
                if (code >= 0)
                    emit[j * K + static_cast<unsigned>(code)] += 1.0;
            }
        }
    }

    // 3. Transition counts from per-row state paths.
    enum S { SM, SI, SD };
    // counts[j][from][to] with from/to in {M,I,D}; j = source node.
    std::vector<std::array<std::array<double, 3>, 3>> counts(
        M + 1, {{{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}}});
    for (const std::string &r : rows) {
        int prevState = -1;
        unsigned prevNode = 0;
        unsigned j = 0;
        for (size_t c = 0; c < ncols; ++c) {
            int state;
            unsigned node;
            if (isMatch[c]) {
                ++j;
                state = r[c] == '-' ? SD : SM;
                node = j;
            } else {
                if (r[c] == '-')
                    continue; // gap in insert column: no state
                state = SI;
                node = j;
            }
            if (prevState >= 0) {
                counts[prevNode][static_cast<size_t>(prevState)]
                      [static_cast<size_t>(state)] += 1.0;
            }
            prevState = state;
            prevNode = node;
        }
    }

    // 4. Normalize to scaled log probabilities.
    double bg = 1.0 / K;
    model.msc_.assign((M + 1) * K, kNegInf);
    for (unsigned j = 1; j <= M; ++j) {
        double tot = 0.0;
        for (unsigned x = 0; x < K; ++x)
            tot += emit[j * K + x];
        for (unsigned x = 0; x < K; ++x) {
            model.msc_[j * K + x] =
                logOdds(emit[j * K + x] / tot, bg);
        }
    }
    model.isc_ = 0; // insert emissions at background

    auto normRow = [&](unsigned j, int from, std::vector<int32_t> &tm,
                       std::vector<int32_t> &ti,
                       std::vector<int32_t> &td) {
        double tot = counts[j][static_cast<size_t>(from)][0] +
                     counts[j][static_cast<size_t>(from)][1] +
                     counts[j][static_cast<size_t>(from)][2];
        tm[j] = logProb(counts[j][static_cast<size_t>(from)][0] / tot);
        ti[j] = logProb(counts[j][static_cast<size_t>(from)][1] / tot);
        td[j] = logProb(counts[j][static_cast<size_t>(from)][2] / tot);
    };
    model.tmm_.assign(M + 1, kNegInf);
    model.tmi_.assign(M + 1, kNegInf);
    model.tmd_.assign(M + 1, kNegInf);
    model.tim_.assign(M + 1, kNegInf);
    model.tii_.assign(M + 1, kNegInf);
    model.tdm_.assign(M + 1, kNegInf);
    model.tdd_.assign(M + 1, kNegInf);
    std::vector<int32_t> dummy(M + 1);
    for (unsigned j = 0; j <= M; ++j) {
        normRow(j, SM, model.tmm_, model.tmi_, model.tmd_);
        normRow(j, SI, model.tim_, model.tii_, dummy);
        normRow(j, SD, model.tdm_, dummy, model.tdd_);
    }

    // 5. Local entry/exit (uniform entry, light exit).
    model.tbm_.assign(M + 1, kNegInf);
    model.tme_.assign(M + 1, kNegInf);
    for (unsigned j = 1; j <= M; ++j) {
        model.tbm_[j] = logProb(0.5 / M);
        model.tme_[j] = j == M ? 0 : logProb(0.02);
    }
    return model;
}

Plan7Model
Plan7Model::fromFamily(const std::vector<Sequence> &family)
{
    BP5_ASSERT(!family.empty(), "empty family");
    Msa msa = progressiveAlign(family, SubstitutionMatrix::blosum62(),
                               GapPenalty{10, 1});
    return fromAlignment(msa.rows, family[0].alphabet());
}

int32_t
Plan7Model::viterbi(const Sequence &seq) const
{
    BP5_ASSERT(seq.alphabet() == alphabet_, "alphabet mismatch");
    size_t L = seq.size();
    unsigned M = m_;
    unsigned K = alphabetSize(alphabet_);

    std::vector<int32_t> mmx(M + 1, kNegInf), imx(M + 1, kNegInf),
        dmx(M + 1, kNegInf);
    std::vector<int32_t> pm(M + 1), pi(M + 1), pd(M + 1);
    int32_t best = kNegInf;

    for (size_t i = 1; i <= L; ++i) {
        pm = mmx;
        pi = imx;
        pd = dmx;
        unsigned x = seq[i - 1];
        mmx[0] = imx[0] = dmx[0] = kNegInf;
        for (unsigned j = 1; j <= M; ++j) {
            // Match: the P7Viterbi four-way max.
            int32_t sc = sadd(pm[j - 1], tmm_[j - 1]);
            sc = vmax(sc, sadd(pi[j - 1], tim_[j - 1]));
            sc = vmax(sc, sadd(pd[j - 1], tdm_[j - 1]));
            sc = vmax(sc, tbm_[j]); // B state is free at every i
            mmx[j] = sadd(sc, msc_[j * K + x]);

            // Insert.
            int32_t is = vmax(sadd(pm[j], tmi_[j]),
                              sadd(pi[j], tii_[j]));
            imx[j] = sadd(is, isc_);

            // Delete.
            dmx[j] = vmax(sadd(mmx[j - 1], tmd_[j - 1]),
                          sadd(dmx[j - 1], tdd_[j - 1]));

            // End (free suffix skip).
            best = vmax(best, sadd(mmx[j], tme_[j]));
        }
    }
    return best;
}

double
Plan7Model::forward(const Sequence &seq) const
{
    BP5_ASSERT(seq.alphabet() == alphabet_, "alphabet mismatch");
    size_t L = seq.size();
    unsigned M = m_;
    unsigned K = alphabetSize(alphabet_);
    const double NEG = -1e30;

    auto toLog = [](int32_t s) {
        return s <= kNegInf ? -1e30 : double(s) / kScale;
    };
    auto lse = [&](double a, double b) {
        if (a < b)
            std::swap(a, b);
        if (b <= NEG / 2)
            return a;
        return a + std::log2(1.0 + std::exp2(b - a));
    };

    std::vector<double> fm(M + 1, NEG), fi(M + 1, NEG), fd(M + 1, NEG);
    std::vector<double> pm(M + 1), pi(M + 1), pd(M + 1);
    double best = NEG;

    for (size_t i = 1; i <= L; ++i) {
        pm = fm;
        pi = fi;
        pd = fd;
        unsigned x = seq[i - 1];
        fm[0] = fi[0] = fd[0] = NEG;
        for (unsigned j = 1; j <= M; ++j) {
            double sc = pm[j - 1] + toLog(tmm_[j - 1]);
            sc = lse(sc, pi[j - 1] + toLog(tim_[j - 1]));
            sc = lse(sc, pd[j - 1] + toLog(tdm_[j - 1]));
            sc = lse(sc, toLog(tbm_[j]));
            fm[j] = sc + toLog(msc_[j * K + x]);

            fi[j] = lse(pm[j] + toLog(tmi_[j]),
                        pi[j] + toLog(tii_[j])) + toLog(isc_);
            fd[j] = lse(fm[j - 1] + toLog(tmd_[j - 1]),
                        fd[j - 1] + toLog(tdd_[j - 1]));
            best = lse(best, fm[j] + toLog(tme_[j]));
        }
    }
    return best * kScale;
}

std::vector<HmmHit>
hmmSearch(const Plan7Model &model, const std::vector<Sequence> &db,
          int32_t threshold)
{
    std::vector<HmmHit> hits;
    for (size_t i = 0; i < db.size(); ++i) {
        int32_t s = model.viterbi(db[i]);
        if (s >= threshold)
            hits.push_back({i, s});
    }
    std::sort(hits.begin(), hits.end(),
              [](const HmmHit &a, const HmmHit &b) {
                  return a.score > b.score ||
                         (a.score == b.score && a.seqIndex < b.seqIndex);
              });
    return hits;
}

} // namespace bp5::bio
