/**
 * @file
 * BLAST-style protein database search (the blastp pipeline of paper
 * section II): neighbourhood word index, two-hit diagonal seeding,
 * x-drop ungapped extension, and gapped extension by banded-by-x-drop
 * dynamic programming in both directions from the seed — the
 * SEMI_G_ALIGN kernel the paper profiles.
 */

#ifndef BIOPERF5_BIO_BLAST_H
#define BIOPERF5_BIO_BLAST_H

#include <cstdint>
#include <vector>

#include "bio/scoring.h"
#include "bio/sequence.h"

namespace bp5::bio {

/** Search parameters (BLOSUM62/blastp-like defaults). */
struct BlastParams
{
    unsigned wordLen = 3;        ///< protein word size
    int neighborThreshold = 11;  ///< word-pair score threshold T
    unsigned twoHitWindow = 40;  ///< diagonal window A
    int xDropUngapped = 16;      ///< ungapped extension x-drop
    int ungappedTrigger = 20;    ///< score gating gapped extension
    int xDropGapped = 30;        ///< gapped extension x-drop
    GapPenalty gap{10, 1};
    int minReportScore = 35;     ///< HSP reporting cutoff
    double lambda = 0.267;       ///< Karlin-Altschul (gapped BLOSUM62)
    double kParam = 0.041;
};

/** A high-scoring segment pair. */
struct Hsp
{
    size_t seqIndex = 0; ///< database sequence
    size_t qStart = 0, qEnd = 0; ///< query range [start, end)
    size_t sStart = 0, sEnd = 0; ///< subject range
    int score = 0;
    double evalue = 0.0;
};

/** Word index over the query's w-mer neighbourhood. */
class WordIndex
{
  public:
    WordIndex(const Sequence &query, const SubstitutionMatrix &m,
              const BlastParams &params);

    /** Query positions whose neighbourhood contains @p wordCode. */
    const std::vector<uint32_t> &lookup(uint32_t wordCode) const;

    /** Encode the w-mer starting at @p pos of @p s. */
    static uint32_t encodeWord(const Sequence &s, size_t pos,
                               unsigned wordLen, unsigned alphabet);

    size_t totalEntries() const { return entries_; }

  private:
    std::vector<std::vector<uint32_t>> table_;
    size_t entries_ = 0;
};

/**
 * Gapped extension from a seed cell, one direction (the SEMI_G_ALIGN
 * analogue): affine DP where rows are pruned by the x-drop rule.
 * @param a,b sequences; extension proceeds from (aFrom, bFrom)
 *        forward when @p forward, else backward
 * @return the best extension score (>= 0).
 */
int semiGappedExtend(const Sequence &a, size_t aFrom, const Sequence &b,
                     size_t bFrom, bool forward,
                     const SubstitutionMatrix &m, const BlastParams &p,
                     size_t *aBest = nullptr, size_t *bBest = nullptr);

/** The full blastp-style search of @p query against @p db. */
class BlastSearch
{
  public:
    BlastSearch(const Sequence &query, const SubstitutionMatrix &m,
                const BlastParams &params = BlastParams());

    /** Search one subject; HSPs above the reporting cutoff. */
    std::vector<Hsp> searchSubject(const Sequence &subject,
                                   size_t seqIndex,
                                   size_t dbResidues) const;

    /** Search a database; all HSPs sorted by increasing e-value. */
    std::vector<Hsp> search(const std::vector<Sequence> &db) const;

    /** Number of gapped extensions triggered so far (statistics). */
    mutable uint64_t gappedExtensions = 0;
    mutable uint64_t ungappedExtensions = 0;

  private:
    const Sequence &query_;
    const SubstitutionMatrix &m_;
    BlastParams params_;
    WordIndex index_;
};

} // namespace bp5::bio

#endif // BIOPERF5_BIO_BLAST_H
