/**
 * @file
 * Sankoff small parsimony — the dynamic program at the heart of
 * Phylip-class phylogeny packages, which the paper's conclusion names
 * as a target its results extend to.  Given a rooted binary tree with
 * sequences at the leaves and a per-substitution cost matrix, compute
 * the minimum total substitution cost over all assignments of
 * ancestral states.  The per-node recurrence is a nest of min()
 * statements — the same value-dependent-branch structure as the
 * alignment kernels.
 */

#ifndef BIOPERF5_BIO_PARSIMONY_H
#define BIOPERF5_BIO_PARSIMONY_H

#include <cstdint>
#include <vector>

#include "bio/clustal.h"
#include "bio/sequence.h"

namespace bp5::bio {

/** Substitution cost matrix for parsimony (non-negative). */
class ParsimonyCost
{
  public:
    explicit ParsimonyCost(Alphabet alphabet, int64_t mismatch = 1);

    /** Unit cost: 0 on the diagonal, 1 elsewhere (Fitch-equivalent). */
    static ParsimonyCost unit(Alphabet alphabet);

    /** Transitions cheaper than transversions (DNA only). */
    static ParsimonyCost transitionTransversion(int64_t ts = 1,
                                                int64_t tv = 2);

    int64_t cost(unsigned a, unsigned b) const
    {
        return table_[a * k_ + b];
    }
    void set(unsigned a, unsigned b, int64_t v);
    unsigned size() const { return k_; }
    Alphabet alphabet() const { return alphabet_; }

  private:
    Alphabet alphabet_;
    unsigned k_;
    std::vector<int64_t> table_;
};

/**
 * Minimum parsimony cost of one character (site): @p states gives the
 * leaf state per sequence, @p tree maps leaves to sequence indices.
 */
int64_t sankoffSite(const GuideTree &tree,
                    const std::vector<uint8_t> &states,
                    const ParsimonyCost &cost);

/**
 * Total parsimony score of equal-length ungapped sequences over all
 * sites.  Fatal if lengths differ.
 */
int64_t sankoffScore(const GuideTree &tree,
                     const std::vector<Sequence> &seqs,
                     const ParsimonyCost &cost);

} // namespace bp5::bio

#endif // BIOPERF5_BIO_PARSIMONY_H
