/**
 * @file
 * Substitution matrices and gap penalties for sequence alignment.
 * Ships the standard BLOSUM62 and PAM250 protein matrices plus a
 * parametric DNA match/mismatch matrix.
 */

#ifndef BIOPERF5_BIO_SCORING_H
#define BIOPERF5_BIO_SCORING_H

#include <array>
#include <cstdint>
#include <string>

#include "bio/sequence.h"

namespace bp5::bio {

/** A residue-pair substitution score table. */
class SubstitutionMatrix
{
  public:
    static constexpr unsigned kMaxResidues = 20;

    SubstitutionMatrix() = default;
    SubstitutionMatrix(std::string name, Alphabet alphabet);

    /** The standard BLOSUM62 protein matrix. */
    static const SubstitutionMatrix &blosum62();

    /** The standard PAM250 (Dayhoff) protein matrix. */
    static const SubstitutionMatrix &pam250();

    /** DNA matrix: +match for equal bases, -mismatch otherwise. */
    static SubstitutionMatrix dna(int match = 5, int mismatch = -4);

    int
    score(unsigned a, unsigned b) const
    {
        return table_[a][b];
    }

    void set(unsigned a, unsigned b, int v);

    const std::string &name() const { return name_; }
    Alphabet alphabet() const { return alphabet_; }
    unsigned size() const { return alphabetSize(alphabet_); }

    /** Highest score in the table (used by BLAST word thresholds). */
    int maxScore() const;

  private:
    std::string name_;
    Alphabet alphabet_ = Alphabet::Protein;
    std::array<std::array<int16_t, kMaxResidues>, kMaxResidues> table_{};
};

/**
 * Affine gap penalties, expressed as positive costs: a gap of length L
 * costs open + L * extend (the "gap initiation penalty Wg and gap
 * extension penalty Ws" of the paper's Algorithm 1).
 */
struct GapPenalty
{
    int open = 10;
    int extend = 1;

    int cost(int length) const { return open + length * extend; }
};

} // namespace bp5::bio

#endif // BIOPERF5_BIO_SCORING_H
