/**
 * @file
 * Plan7 profile hidden Markov models in the style of HMMER2: integer
 * log-odds scores and the P7Viterbi dynamic-programming recurrence the
 * paper identifies as Hmmer's dominant kernel.  A simplified Plan7
 * topology is used: match/insert/delete states per node plus
 * begin/end; the J/C/N loop states of full Plan7 are omitted (they do
 * not participate in the hot loop).
 */

#ifndef BIOPERF5_BIO_HMM_H
#define BIOPERF5_BIO_HMM_H

#include <cstdint>
#include <string>
#include <vector>

#include "bio/sequence.h"

namespace bp5::bio {

/** Integer log-odds Plan7 model (scores scaled by kScale). */
class Plan7Model
{
  public:
    /** Score scale: HMMER2 uses 1000 * log2; we use 100 * log2. */
    static constexpr int kScale = 100;
    /** "Minus infinity" for impossible transitions. */
    static constexpr int32_t kNegInf = -1000000;

    Plan7Model() = default;

    /**
     * Build a model from a gapped alignment (rows of equal length,
     * '-' for gaps).  Columns with at least half occupancy become
     * match states; Laplace pseudocounts smooth all distributions.
     */
    static Plan7Model fromAlignment(const std::vector<std::string> &rows,
                                    Alphabet alphabet);

    /** Build from a family of unaligned sequences (aligns them first). */
    static Plan7Model fromFamily(const std::vector<Sequence> &family);

    unsigned length() const { return m_; }
    Alphabet alphabet() const { return alphabet_; }

    // Scores (node j in 1..M, residue code x).
    int32_t matchScore(unsigned j, unsigned x) const
    {
        return msc_[j * alphabetSize(alphabet_) + x];
    }
    int32_t insertScore(unsigned, unsigned) const { return isc_; }

    // Transitions (indexed by source node).
    int32_t tMM(unsigned j) const { return tmm_[j]; }
    int32_t tMI(unsigned j) const { return tmi_[j]; }
    int32_t tMD(unsigned j) const { return tmd_[j]; }
    int32_t tIM(unsigned j) const { return tim_[j]; }
    int32_t tII(unsigned j) const { return tii_[j]; }
    int32_t tDM(unsigned j) const { return tdm_[j]; }
    int32_t tDD(unsigned j) const { return tdd_[j]; }
    int32_t tBM(unsigned j) const { return tbm_[j]; } ///< begin->match
    int32_t tME(unsigned j) const { return tme_[j]; } ///< match->end

    /** Raw arrays for the simulated-kernel bridge. */
    const std::vector<int32_t> &matchTable() const { return msc_; }

    /**
     * P7Viterbi: best log-odds score (scaled) of aligning @p seq to
     * the model.  This is the reference for the simulated kernel.
     */
    int32_t viterbi(const Sequence &seq) const;

    /** Forward algorithm (log-odds, scaled); >= viterbi score. */
    double forward(const Sequence &seq) const;

  private:
    Alphabet alphabet_ = Alphabet::Protein;
    unsigned m_ = 0;
    std::vector<int32_t> msc_;  ///< (m_+1) x alphabet match emissions
    int32_t isc_ = 0;           ///< flat insert emission score
    std::vector<int32_t> tmm_, tmi_, tmd_, tim_, tii_, tdm_, tdd_;
    std::vector<int32_t> tbm_, tme_;
};

/** One database hit from hmmpfam-style search. */
struct HmmHit
{
    size_t seqIndex;
    int32_t score;
};

/**
 * Score every sequence against the model (hmmpfam/hmmsearch style);
 * hits above @p threshold, sorted by descending score.
 */
std::vector<HmmHit> hmmSearch(const Plan7Model &model,
                              const std::vector<Sequence> &db,
                              int32_t threshold);

} // namespace bp5::bio

#endif // BIOPERF5_BIO_HMM_H
