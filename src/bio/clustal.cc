#include "bio/clustal.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/logging.h"

namespace bp5::bio {

void
DistanceMatrix::set(size_t i, size_t j, double v)
{
    BP5_ASSERT(i < n_ && j < n_, "distance index out of range");
    d_[i * n_ + j] = v;
    d_[j * n_ + i] = v;
}

DistanceMatrix
pairwiseDistances(const std::vector<Sequence> &seqs,
                  const SubstitutionMatrix &m, const GapPenalty &gap)
{
    size_t n = seqs.size();
    DistanceMatrix d(n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            Alignment al = nwAlign(seqs[i], seqs[j], m, gap);
            double id = al.identity();
            d.set(i, j, 1.0 - id);
        }
    }
    return d;
}

std::string
GuideTree::newick(const std::vector<std::string> &names) const
{
    BP5_ASSERT(root >= 0, "empty tree");
    std::ostringstream os;
    auto rec = [&](auto &&self, int n) -> void {
        const Node &nd = nodes[size_t(n)];
        if (nd.leaf >= 0) {
            os << names[size_t(nd.leaf)];
            return;
        }
        os << "(";
        self(self, nd.left);
        os << ",";
        self(self, nd.right);
        os << ")";
    };
    rec(rec, root);
    os << ";";
    return os.str();
}

GuideTree
upgmaTree(const DistanceMatrix &d)
{
    size_t n = d.size();
    BP5_ASSERT(n >= 1, "empty distance matrix");
    GuideTree t;

    // Active cluster list: node index + member count.
    struct Cluster
    {
        int node;
        size_t count;
    };
    std::vector<Cluster> act;
    std::vector<std::vector<double>> dist(n, std::vector<double>(n));
    for (size_t i = 0; i < n; ++i) {
        GuideTree::Node leaf;
        leaf.leaf = static_cast<int>(i);
        t.nodes.push_back(leaf);
        act.push_back({static_cast<int>(i), 1});
        for (size_t j = 0; j < n; ++j)
            dist[i][j] = d.at(i, j);
    }
    if (n == 1) {
        t.root = 0;
        return t;
    }

    // dist is indexed by position in `act`.
    while (act.size() > 1) {
        size_t bi = 0, bj = 1;
        double best = dist[0][1];
        for (size_t i = 0; i < act.size(); ++i) {
            for (size_t j = i + 1; j < act.size(); ++j) {
                if (dist[i][j] < best) {
                    best = dist[i][j];
                    bi = i;
                    bj = j;
                }
            }
        }
        GuideTree::Node join;
        join.left = act[bi].node;
        join.right = act[bj].node;
        join.height = best / 2.0;
        int nn = static_cast<int>(t.nodes.size());
        t.nodes.push_back(join);

        size_t ci = act[bi].count, cj = act[bj].count;
        // New row: weighted average of the two merged rows.
        std::vector<double> row(act.size());
        for (size_t k = 0; k < act.size(); ++k) {
            row[k] = (dist[bi][k] * double(ci) + dist[bj][k] * double(cj)) /
                     double(ci + cj);
        }
        // Replace bi with the merged cluster; remove bj.
        act[bi] = {nn, ci + cj};
        for (size_t k = 0; k < act.size(); ++k) {
            dist[bi][k] = row[k];
            dist[k][bi] = row[k];
        }
        dist[bi][bi] = 0.0;
        act.erase(act.begin() + static_cast<long>(bj));
        for (auto &r : dist)
            r.erase(r.begin() + static_cast<long>(bj));
        dist.erase(dist.begin() + static_cast<long>(bj));
    }
    t.root = act[0].node;
    return t;
}

GuideTree
njTree(const DistanceMatrix &d)
{
    size_t n = d.size();
    BP5_ASSERT(n >= 1, "empty distance matrix");
    GuideTree t;
    std::vector<int> act;
    std::vector<std::vector<double>> dist(n, std::vector<double>(n));
    for (size_t i = 0; i < n; ++i) {
        GuideTree::Node leaf;
        leaf.leaf = static_cast<int>(i);
        t.nodes.push_back(leaf);
        act.push_back(static_cast<int>(i));
        for (size_t j = 0; j < n; ++j)
            dist[i][j] = d.at(i, j);
    }
    if (n == 1) {
        t.root = 0;
        return t;
    }

    while (act.size() > 2) {
        size_t r = act.size();
        std::vector<double> total(r, 0.0);
        for (size_t i = 0; i < r; ++i) {
            for (size_t j = 0; j < r; ++j)
                total[i] += dist[i][j];
        }
        // Minimize the Q criterion.
        size_t bi = 0, bj = 1;
        double bq = 1e300;
        for (size_t i = 0; i < r; ++i) {
            for (size_t j = i + 1; j < r; ++j) {
                double q = double(r - 2) * dist[i][j] - total[i] -
                           total[j];
                if (q < bq) {
                    bq = q;
                    bi = i;
                    bj = j;
                }
            }
        }
        GuideTree::Node join;
        join.left = act[bi];
        join.right = act[bj];
        join.height = dist[bi][bj] / 2.0;
        int nn = static_cast<int>(t.nodes.size());
        t.nodes.push_back(join);

        std::vector<double> row(r);
        for (size_t k = 0; k < r; ++k) {
            row[k] = (dist[bi][k] + dist[bj][k] - dist[bi][bj]) / 2.0;
        }
        act[bi] = nn;
        for (size_t k = 0; k < r; ++k) {
            dist[bi][k] = row[k];
            dist[k][bi] = row[k];
        }
        dist[bi][bi] = 0.0;
        act.erase(act.begin() + static_cast<long>(bj));
        for (auto &rr : dist)
            rr.erase(rr.begin() + static_cast<long>(bj));
        dist.erase(dist.begin() + static_cast<long>(bj));
    }
    GuideTree::Node join;
    join.left = act[0];
    join.right = act[1];
    join.height = dist[0][1] / 2.0;
    t.nodes.push_back(join);
    t.root = static_cast<int>(t.nodes.size()) - 1;
    return t;
}

Profile::Profile(const Sequence &seq, size_t member_index)
{
    alphabet_ = seq.alphabet();
    rows_.push_back(seq.letters());
    members_.push_back(member_index);
}

double
Profile::columnScore(const Profile &a, size_t ca, const Profile &b,
                     size_t cb, const SubstitutionMatrix &m)
{
    double total = 0.0;
    size_t pairs = 0;
    for (const std::string &ra : a.rows_) {
        char x = ra[ca];
        if (x == '-')
            continue;
        int cx = encodeResidue(a.alphabet_, x);
        for (const std::string &rb : b.rows_) {
            char y = rb[cb];
            if (y == '-')
                continue;
            int cy = encodeResidue(b.alphabet_, y);
            total += m.score(static_cast<unsigned>(cx),
                             static_cast<unsigned>(cy));
            ++pairs;
        }
    }
    // Average over residue pairs keeps scores comparable to the
    // pairwise matrices regardless of profile depth.
    return pairs ? total / double(a.rows_.size() * b.rows_.size()) : 0.0;
}

namespace {

/** Per-column residue frequencies of a profile (gaps excluded). */
std::vector<std::array<double, 20>>
columnFrequencies(const std::vector<std::string> &rows, Alphabet alpha)
{
    size_t cols = rows.empty() ? 0 : rows[0].size();
    std::vector<std::array<double, 20>> f(cols);
    for (auto &col : f)
        col.fill(0.0);
    for (const std::string &r : rows) {
        for (size_t c = 0; c < cols; ++c) {
            if (r[c] == '-')
                continue;
            int code = encodeResidue(alpha, r[c]);
            if (code >= 0)
                f[c][static_cast<size_t>(code)] += 1.0;
        }
    }
    double inv = rows.empty() ? 0.0 : 1.0 / double(rows.size());
    for (auto &col : f) {
        for (double &v : col)
            v *= inv;
    }
    return f;
}

} // namespace

Profile
Profile::align(const Profile &a, const Profile &b,
               const SubstitutionMatrix &m, const GapPenalty &gap)
{
    size_t M = a.columns(), N = b.columns();
    double wg = gap.open, ws = gap.extend;
    size_t cols = N + 1;
    std::vector<double> V((M + 1) * cols), E((M + 1) * cols),
        F((M + 1) * cols);
    std::vector<uint8_t> back((M + 1) * cols, 0); // 0 diag, 1 E, 2 F

    // Clustalw-style prfscore tables: precompute, per column of b, the
    // expected score against each residue, so a DP cell costs O(K)
    // instead of O(K^2) or O(members^2).
    unsigned K = alphabetSize(a.alphabet_);
    auto fa = columnFrequencies(a.rows_, a.alphabet_);
    auto fb = columnFrequencies(b.rows_, b.alphabet_);
    std::vector<std::array<double, 20>> tb(N);
    for (size_t cb = 0; cb < N; ++cb) {
        for (unsigned x = 0; x < K; ++x) {
            double s = 0.0;
            for (unsigned y = 0; y < K; ++y)
                s += fb[cb][y] * m.score(x, y);
            tb[cb][x] = s;
        }
    }
    auto cellScore = [&](size_t ca, size_t cb) {
        double s = 0.0;
        for (unsigned x = 0; x < K; ++x)
            s += fa[ca][x] * tb[cb][x];
        return s;
    };

    auto at = [cols](std::vector<double> &v, size_t i,
                     size_t j) -> double & { return v[i * cols + j]; };

    const double NEG = -1e15;
    at(V, 0, 0) = 0;
    for (size_t j = 1; j <= N; ++j) {
        at(V, 0, j) = -wg - double(j) * ws;
        at(F, 0, j) = at(V, 0, j);
        at(E, 0, j) = NEG;
    }
    for (size_t i = 1; i <= M; ++i) {
        at(V, i, 0) = -wg - double(i) * ws;
        at(E, i, 0) = at(V, i, 0);
        at(F, i, 0) = NEG;
    }
    for (size_t i = 1; i <= M; ++i) {
        for (size_t j = 1; j <= N; ++j) {
            double e = std::max(at(E, i, j - 1),
                                at(V, i, j - 1) - wg) - ws;
            double f = std::max(at(F, i - 1, j),
                                at(V, i - 1, j) - wg) - ws;
            double g = at(V, i - 1, j - 1) + cellScore(i - 1, j - 1);
            at(E, i, j) = e;
            at(F, i, j) = f;
            double v = std::max(std::max(e, f), g);
            at(V, i, j) = v;
            back[i * cols + j] = v == g ? 0 : (v == e ? 1 : 2);
        }
    }

    // Traceback into a column script.
    std::vector<int> script; // 0 both, 1 gap in a, 2 gap in b
    size_t i = M, j = N;
    while (i > 0 || j > 0) {
        if (i == 0) {
            script.push_back(1);
            --j;
        } else if (j == 0) {
            script.push_back(2);
            --i;
        } else if (back[i * cols + j] == 0) {
            script.push_back(0);
            --i;
            --j;
        } else if (back[i * cols + j] == 1) {
            script.push_back(1);
            --j;
        } else {
            script.push_back(2);
            --i;
        }
    }
    std::reverse(script.begin(), script.end());

    Profile out;
    out.alphabet_ = a.alphabet_;
    out.rows_.resize(a.members() + b.members());
    out.members_ = a.members_;
    out.members_.insert(out.members_.end(), b.members_.begin(),
                        b.members_.end());
    size_t pa = 0, pb = 0;
    for (int op : script) {
        for (size_t r = 0; r < a.members(); ++r) {
            out.rows_[r] += (op == 1) ? '-' : a.rows_[r][pa];
        }
        for (size_t r = 0; r < b.members(); ++r) {
            out.rows_[a.members() + r] += (op == 2) ? '-'
                                                    : b.rows_[r][pb];
        }
        if (op != 1)
            ++pa;
        if (op != 2)
            ++pb;
    }
    return out;
}

int64_t
Msa::sumOfPairsScore(const SubstitutionMatrix &m,
                     const GapPenalty &gap) const
{
    if (rows.empty())
        return 0;
    int64_t total = 0;
    size_t len = rows[0].size();
    for (size_t i = 0; i < rows.size(); ++i) {
        for (size_t j = i + 1; j < rows.size(); ++j) {
            bool inGapA = false, inGapB = false;
            for (size_t c = 0; c < len; ++c) {
                char x = rows[i][c], y = rows[j][c];
                if (x == '-' && y == '-')
                    continue;
                if (x == '-') {
                    total -= inGapA ? gap.extend : gap.open + gap.extend;
                    inGapA = true;
                    inGapB = false;
                    continue;
                }
                if (y == '-') {
                    total -= inGapB ? gap.extend : gap.open + gap.extend;
                    inGapB = true;
                    inGapA = false;
                    continue;
                }
                inGapA = inGapB = false;
                int cx = encodeResidue(Alphabet::Protein, x);
                int cy = encodeResidue(Alphabet::Protein, y);
                if (cx >= 0 && cy >= 0) {
                    total += m.score(static_cast<unsigned>(cx),
                                     static_cast<unsigned>(cy));
                }
            }
        }
    }
    return total;
}

Msa
progressiveAlign(const std::vector<Sequence> &seqs,
                 const SubstitutionMatrix &m, const GapPenalty &gap,
                 TreeMethod method)
{
    BP5_ASSERT(!seqs.empty(), "no sequences to align");
    Msa out;
    out.distances = pairwiseDistances(seqs, m, gap);
    out.tree = method == TreeMethod::Upgma ? upgmaTree(out.distances)
                                           : njTree(out.distances);
    for (const Sequence &s : seqs)
        out.names.push_back(s.name());

    // Post-order profile construction.
    auto build = [&](auto &&self, int node) -> Profile {
        const GuideTree::Node &nd = out.tree.nodes[size_t(node)];
        if (nd.leaf >= 0)
            return Profile(seqs[size_t(nd.leaf)], size_t(nd.leaf));
        Profile l = self(self, nd.left);
        Profile r = self(self, nd.right);
        return Profile::align(l, r, m, gap);
    };
    Profile final_p = build(build, out.tree.root);

    out.rows.assign(seqs.size(), "");
    for (size_t r = 0; r < final_p.members(); ++r)
        out.rows[final_p.memberIndex()[r]] = final_p.rows()[r];
    return out;
}

} // namespace bp5::bio
