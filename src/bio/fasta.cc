#include "bio/fasta.h"

#include <fstream>
#include <sstream>

#include "support/logging.h"

namespace bp5::bio {

std::vector<Sequence>
parseFasta(const std::string &text, Alphabet alphabet)
{
    std::vector<Sequence> out;
    std::istringstream in(text);
    std::string line;
    std::string name;
    std::string residues;
    bool have = false;

    auto flush = [&]() {
        if (have)
            out.emplace_back(name, alphabet, residues);
        residues.clear();
    };

    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '>') {
            flush();
            have = true;
            // Name is the first token of the header.
            size_t sp = line.find_first_of(" \t", 1);
            name = line.substr(1, sp == std::string::npos
                                      ? std::string::npos
                                      : sp - 1);
            if (name.empty())
                name = "unnamed";
        } else {
            if (!have)
                fatal("FASTA: residue data before any '>' header");
            residues += line;
        }
    }
    flush();
    return out;
}

std::vector<Sequence>
readFastaFile(const std::string &path, Alphabet alphabet)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open FASTA file '%s'", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();
    return parseFasta(ss.str(), alphabet);
}

std::string
formatFasta(const std::vector<Sequence> &seqs, unsigned width)
{
    BP5_ASSERT(width > 0, "zero FASTA line width");
    std::string out;
    for (const Sequence &s : seqs) {
        out += ">" + s.name() + "\n";
        std::string letters = s.letters();
        for (size_t i = 0; i < letters.size(); i += width) {
            out += letters.substr(i, width);
            out += "\n";
        }
    }
    return out;
}

void
writeFastaFile(const std::string &path, const std::vector<Sequence> &seqs,
               unsigned width)
{
    std::ofstream f(path);
    if (!f)
        fatal("cannot write FASTA file '%s'", path.c_str());
    f << formatFasta(seqs, width);
}

} // namespace bp5::bio
