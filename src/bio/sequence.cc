#include "bio/sequence.h"

#include <cctype>

#include "support/logging.h"

namespace bp5::bio {

namespace {

constexpr const char *kDnaLetters = "ACGT";
// BLOSUM/PAM standard residue order.
constexpr const char *kProteinLetters = "ARNDCQEGHILKMFPSTWYV";

} // namespace

unsigned
alphabetSize(Alphabet a)
{
    return a == Alphabet::Dna ? 4 : 20;
}

const char *
alphabetLetters(Alphabet a)
{
    return a == Alphabet::Dna ? kDnaLetters : kProteinLetters;
}

int
encodeResidue(Alphabet a, char c)
{
    const char *letters = alphabetLetters(a);
    char u = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    for (unsigned i = 0; i < alphabetSize(a); ++i) {
        if (letters[i] == u)
            return static_cast<int>(i);
    }
    return -1;
}

char
decodeResidue(Alphabet a, unsigned code)
{
    if (code >= alphabetSize(a))
        return '?';
    return alphabetLetters(a)[code];
}

Sequence::Sequence(std::string name, Alphabet alphabet,
                   const std::string &letters)
    : name_(std::move(name)), alphabet_(alphabet)
{
    codes_.reserve(letters.size());
    for (char c : letters) {
        if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        int code = encodeResidue(alphabet, c);
        if (code < 0) {
            fatal("sequence '%s': invalid residue '%c'", name_.c_str(),
                  c);
        }
        codes_.push_back(static_cast<uint8_t>(code));
    }
}

Sequence::Sequence(std::string name, Alphabet alphabet,
                   std::vector<uint8_t> codes)
    : name_(std::move(name)), alphabet_(alphabet), codes_(std::move(codes))
{
    for (uint8_t c : codes_) {
        BP5_ASSERT(c < alphabetSize(alphabet_),
                   "residue code %u out of range", c);
    }
}

std::string
Sequence::letters() const
{
    std::string s;
    s.reserve(codes_.size());
    for (uint8_t c : codes_)
        s += decodeResidue(alphabet_, c);
    return s;
}

Sequence
Sequence::subseq(size_t pos, size_t len, const std::string &name) const
{
    BP5_ASSERT(pos <= codes_.size() && pos + len <= codes_.size(),
               "subseq out of range");
    std::vector<uint8_t> sub(codes_.begin() + static_cast<long>(pos),
                             codes_.begin() + static_cast<long>(pos + len));
    return Sequence(name.empty() ? name_ + "_sub" : name, alphabet_,
                    std::move(sub));
}

} // namespace bp5::bio
