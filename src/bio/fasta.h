/**
 * @file
 * FASTA parsing and formatting for Sequence collections.
 */

#ifndef BIOPERF5_BIO_FASTA_H
#define BIOPERF5_BIO_FASTA_H

#include <string>
#include <vector>

#include "bio/sequence.h"

namespace bp5::bio {

/**
 * Parse FASTA text into sequences.
 * @param text FASTA content ('>' headers, wrapped residue lines)
 * @param alphabet residue alphabet of the records
 * Malformed records (residues outside the alphabet) are fatal.
 */
std::vector<Sequence> parseFasta(const std::string &text,
                                 Alphabet alphabet);

/** Read and parse a FASTA file; missing files are fatal. */
std::vector<Sequence> readFastaFile(const std::string &path,
                                    Alphabet alphabet);

/** Format sequences as FASTA text with @p width residues per line. */
std::string formatFasta(const std::vector<Sequence> &seqs,
                        unsigned width = 60);

/** Write FASTA to a file; I/O errors are fatal. */
void writeFastaFile(const std::string &path,
                    const std::vector<Sequence> &seqs,
                    unsigned width = 60);

} // namespace bp5::bio

#endif // BIOPERF5_BIO_FASTA_H
