/**
 * @file
 * Pairwise sequence alignment with affine gaps (Gotoh's algorithm):
 * global (Needleman-Wunsch, the Clustalw forward_pass recurrence) and
 * local (Smith-Waterman, the Fasta ssearch/dropgsw recurrence).
 *
 * The recurrence follows the paper's Algorithm 1 exactly — matrices
 * V/E/F/G, gap initiation penalty Wg and extension penalty Ws:
 *
 *     G(i,j) = V(i-1,j-1) + W(a_i, b_j)
 *     E(i,j) = max(E(i,j-1), V(i,j-1) - Wg) - Ws
 *     F(i,j) = max(F(i-1,j), V(i-1,j) - Wg) - Ws
 *     V(i,j) = max(E(i,j), F(i,j), G(i,j) [, 0 for local])
 *
 * The score-only variants are the references that the simulated
 * MiniPOWER kernels must match bit-for-bit.
 */

#ifndef BIOPERF5_BIO_ALIGN_H
#define BIOPERF5_BIO_ALIGN_H

#include <cstdint>
#include <string>

#include "bio/scoring.h"
#include "bio/sequence.h"

namespace bp5::bio {

/** A pairwise alignment with gapped strings and bookkeeping. */
struct Alignment
{
    std::string alignedA; ///< residues and '-' gaps
    std::string alignedB;
    int64_t score = 0;
    size_t startA = 0; ///< first aligned residue of A (local)
    size_t startB = 0;
    size_t endA = 0;   ///< one past the last aligned residue
    size_t endB = 0;

    size_t length() const { return alignedA.size(); }

    /** Matching positions / alignment columns (gaps count as columns). */
    double identity() const;

    /** Number of exactly matching columns. */
    size_t matches() const;
};

/** Global (Needleman-Wunsch) alignment score, O(min) memory. */
int64_t nwScore(const Sequence &a, const Sequence &b,
                const SubstitutionMatrix &m, const GapPenalty &gap);

/** Global alignment with traceback (O(m*n) memory). */
Alignment nwAlign(const Sequence &a, const Sequence &b,
                  const SubstitutionMatrix &m, const GapPenalty &gap);

/** Local (Smith-Waterman) best score, O(n) memory. */
int64_t swScore(const Sequence &a, const Sequence &b,
                const SubstitutionMatrix &m, const GapPenalty &gap);

/** Local alignment with traceback (O(m*n) memory). */
Alignment swAlign(const Sequence &a, const Sequence &b,
                  const SubstitutionMatrix &m, const GapPenalty &gap);

/**
 * Global alignment with traceback in O(min(m,n)) memory via
 * Hirschberg/Myers-Miller divide and conquer (what real clustalw uses
 * in its pairalign stage for long sequences).  Produces an optimal
 * alignment with the same score as nwAlign; gap placement may differ
 * among co-optimal alignments.
 */
Alignment nwAlignLinear(const Sequence &a, const Sequence &b,
                        const SubstitutionMatrix &m,
                        const GapPenalty &gap);

/**
 * Banded global alignment score: only cells with |i - j - offset| <=
 * band are computed (the k-band optimization of ssearch and clustalw's
 * quick pairwise pass).  Exact when the optimal path stays inside the
 * band; a lower bound otherwise.
 * @param band half-width of the diagonal band (>= |m - n| is required
 *        for a path to exist; enforced internally)
 */
int64_t nwScoreBanded(const Sequence &a, const Sequence &b,
                      const SubstitutionMatrix &m, const GapPenalty &gap,
                      unsigned band);

} // namespace bp5::bio

#endif // BIOPERF5_BIO_ALIGN_H
