/**
 * @file
 * Biological sequences: alphabets (DNA / protein), residue encoding,
 * and the Sequence value type used throughout the bio library.
 * Residues are stored as small integer codes (indices into the
 * alphabet and into substitution matrices).
 */

#ifndef BIOPERF5_BIO_SEQUENCE_H
#define BIOPERF5_BIO_SEQUENCE_H

#include <cstdint>
#include <string>
#include <vector>

namespace bp5::bio {

/** Supported residue alphabets. */
enum class Alphabet : uint8_t
{
    Dna,     ///< ACGT
    Protein, ///< the 20 standard amino acids (BLOSUM matrix order)
};

/** Number of residue codes in @p a. */
unsigned alphabetSize(Alphabet a);

/** Residue letters of @p a in code order. */
const char *alphabetLetters(Alphabet a);

/**
 * Encode a residue letter (case-insensitive).
 * @return the residue code, or -1 for characters outside the alphabet.
 */
int encodeResidue(Alphabet a, char c);

/** Decode a residue code back to its letter ('?' if out of range). */
char decodeResidue(Alphabet a, unsigned code);

/** A named, encoded biological sequence. */
class Sequence
{
  public:
    Sequence() = default;

    /**
     * Encode @p letters.  Characters outside the alphabet are a fatal
     * error (user input problem).
     */
    Sequence(std::string name, Alphabet alphabet,
             const std::string &letters);

    /** Wrap already-encoded residues. */
    Sequence(std::string name, Alphabet alphabet,
             std::vector<uint8_t> codes);

    const std::string &name() const { return name_; }
    Alphabet alphabet() const { return alphabet_; }
    size_t size() const { return codes_.size(); }
    bool empty() const { return codes_.empty(); }

    uint8_t operator[](size_t i) const { return codes_[i]; }
    const std::vector<uint8_t> &codes() const { return codes_; }

    /** Decode back to a letter string. */
    std::string letters() const;

    /** Sub-sequence [pos, pos+len). */
    Sequence subseq(size_t pos, size_t len,
                    const std::string &name = "") const;

  private:
    std::string name_;
    Alphabet alphabet_ = Alphabet::Protein;
    std::vector<uint8_t> codes_;
};

} // namespace bp5::bio

#endif // BIOPERF5_BIO_SEQUENCE_H
