#include "bio/align.h"

#include <algorithm>
#include <vector>

#include "support/logging.h"

namespace bp5::bio {

namespace {

constexpr int64_t kNegInf = INT32_MIN / 4;

void
checkInputs(const Sequence &a, const Sequence &b,
            const SubstitutionMatrix &m)
{
    BP5_ASSERT(a.alphabet() == m.alphabet() &&
               b.alphabet() == m.alphabet(),
               "sequence/matrix alphabet mismatch");
}

/** Dense (m+1)x(n+1) DP matrices for traceback variants. */
struct DpMatrices
{
    size_t cols;
    std::vector<int32_t> v, e, f;

    DpMatrices(size_t m, size_t n) : cols(n + 1)
    {
        size_t total = (m + 1) * (n + 1);
        v.assign(total, 0);
        e.assign(total, static_cast<int32_t>(kNegInf));
        f.assign(total, static_cast<int32_t>(kNegInf));
    }

    int32_t &V(size_t i, size_t j) { return v[i * cols + j]; }
    int32_t &E(size_t i, size_t j) { return e[i * cols + j]; }
    int32_t &F(size_t i, size_t j) { return f[i * cols + j]; }
};

/** Shared fill for traceback variants. @p local clamps at zero. */
void
fill(DpMatrices &dp, const Sequence &a, const Sequence &b,
     const SubstitutionMatrix &m, const GapPenalty &gap, bool local)
{
    size_t M = a.size(), N = b.size();
    int wg = gap.open, ws = gap.extend;

    dp.V(0, 0) = 0;
    for (size_t j = 1; j <= N; ++j) {
        int32_t edge = static_cast<int32_t>(-wg - static_cast<int>(j) * ws);
        dp.F(0, j) = local ? static_cast<int32_t>(-wg) : edge;
        dp.V(0, j) = local ? 0 : edge;
    }
    for (size_t i = 1; i <= M; ++i) {
        int32_t edge = static_cast<int32_t>(-wg - static_cast<int>(i) * ws);
        dp.E(i, 0) = local ? static_cast<int32_t>(-wg) : edge;
        dp.V(i, 0) = local ? 0 : edge;
    }
    // Row 0 E / column 0 F stay at -inf: never selected.

    for (size_t i = 1; i <= M; ++i) {
        for (size_t j = 1; j <= N; ++j) {
            int32_t e = static_cast<int32_t>(
                std::max<int64_t>(dp.E(i, j - 1),
                                  dp.V(i, j - 1) - wg) - ws);
            int32_t f = static_cast<int32_t>(
                std::max<int64_t>(dp.F(i - 1, j),
                                  dp.V(i - 1, j) - wg) - ws);
            int32_t g = dp.V(i - 1, j - 1) +
                        m.score(a[i - 1], b[j - 1]);
            int32_t v = std::max(std::max(e, f), g);
            if (local)
                v = std::max(v, 0);
            dp.E(i, j) = e;
            dp.F(i, j) = f;
            dp.V(i, j) = v;
        }
    }
}

Alignment
traceback(DpMatrices &dp, const Sequence &a, const Sequence &b,
          const SubstitutionMatrix &m, const GapPenalty &gap, bool local,
          size_t ei, size_t ej)
{
    Alignment out;
    out.endA = ei;
    out.endB = ej;
    out.score = dp.V(ei, ej);

    std::string ra, rb;
    size_t i = ei, j = ej;
    int ws = gap.extend;
    enum class St { V, E, F } st = St::V;

    while (true) {
        if (st == St::V) {
            if (local && dp.V(i, j) == 0)
                break;
            if (!local && i == 0 && j == 0)
                break;
            if (!local && i == 0) {
                // Leading gap along b.
                ra += '-';
                rb += decodeResidue(b.alphabet(), b[j - 1]);
                --j;
                continue;
            }
            if (!local && j == 0) {
                ra += decodeResidue(a.alphabet(), a[i - 1]);
                rb += '-';
                --i;
                continue;
            }
            int32_t v = dp.V(i, j);
            if (v == dp.V(i - 1, j - 1) + m.score(a[i - 1], b[j - 1])) {
                ra += decodeResidue(a.alphabet(), a[i - 1]);
                rb += decodeResidue(b.alphabet(), b[j - 1]);
                --i;
                --j;
            } else if (v == dp.E(i, j)) {
                st = St::E;
            } else if (v == dp.F(i, j)) {
                st = St::F;
            } else {
                panic("traceback: inconsistent V cell at (%zu, %zu)", i,
                      j);
            }
        } else if (st == St::E) {
            // Gap in a, consume b[j-1].
            ra += '-';
            rb += decodeResidue(b.alphabet(), b[j - 1]);
            int32_t e = dp.E(i, j);
            --j;
            if (j > 0 && e == dp.E(i, j) - ws) {
                // stay in E
            } else {
                st = St::V;
            }
        } else { // St::F
            ra += decodeResidue(a.alphabet(), a[i - 1]);
            rb += '-';
            int32_t f = dp.F(i, j);
            --i;
            if (i > 0 && f == dp.F(i, j) - ws) {
                // stay in F
            } else {
                st = St::V;
            }
        }
    }

    out.startA = i;
    out.startB = j;
    std::reverse(ra.begin(), ra.end());
    std::reverse(rb.begin(), rb.end());
    out.alignedA = std::move(ra);
    out.alignedB = std::move(rb);
    return out;
}

} // namespace

double
Alignment::identity() const
{
    if (alignedA.empty())
        return 0.0;
    return static_cast<double>(matches()) /
           static_cast<double>(alignedA.size());
}

size_t
Alignment::matches() const
{
    size_t n = 0;
    for (size_t i = 0; i < alignedA.size(); ++i) {
        if (alignedA[i] == alignedB[i] && alignedA[i] != '-')
            ++n;
    }
    return n;
}

int64_t
nwScore(const Sequence &a, const Sequence &b, const SubstitutionMatrix &m,
        const GapPenalty &gap)
{
    checkInputs(a, b, m);
    size_t M = a.size(), N = b.size();
    int wg = gap.open, ws = gap.extend;

    std::vector<int64_t> V(N + 1), F(N + 1);
    V[0] = 0;
    for (size_t j = 1; j <= N; ++j) {
        V[j] = -wg - static_cast<int64_t>(j) * ws;
        F[j] = V[j];
    }
    for (size_t i = 1; i <= M; ++i) {
        int64_t vdiag = V[0];
        V[0] = -wg - static_cast<int64_t>(i) * ws;
        int64_t e = V[0];
        for (size_t j = 1; j <= N; ++j) {
            e = std::max(e, V[j - 1] - wg) - ws;
            F[j] = std::max(F[j], V[j] - wg) - ws;
            int64_t g = vdiag + m.score(a[i - 1], b[j - 1]);
            vdiag = V[j];
            V[j] = std::max(std::max(e, F[j]), g);
        }
    }
    return V[N];
}

int64_t
swScore(const Sequence &a, const Sequence &b, const SubstitutionMatrix &m,
        const GapPenalty &gap)
{
    checkInputs(a, b, m);
    size_t M = a.size(), N = b.size();
    int wg = gap.open, ws = gap.extend;

    std::vector<int64_t> V(N + 1, 0), F(N + 1, -wg);
    int64_t best = 0;
    for (size_t i = 1; i <= M; ++i) {
        int64_t vdiag = V[0];
        int64_t e = -wg;
        for (size_t j = 1; j <= N; ++j) {
            e = std::max(e, V[j - 1] - wg) - ws;
            F[j] = std::max(F[j], V[j] - wg) - ws;
            int64_t g = vdiag + m.score(a[i - 1], b[j - 1]);
            vdiag = V[j];
            int64_t v = std::max(std::max(std::max(e, F[j]), g),
                                 int64_t(0));
            V[j] = v;
            best = std::max(best, v);
        }
    }
    return best;
}

Alignment
nwAlign(const Sequence &a, const Sequence &b, const SubstitutionMatrix &m,
        const GapPenalty &gap)
{
    checkInputs(a, b, m);
    DpMatrices dp(a.size(), b.size());
    fill(dp, a, b, m, gap, false);
    return traceback(dp, a, b, m, gap, false, a.size(), b.size());
}

namespace {

/**
 * Myers-Miller machinery for the linear-space global alignment.
 * Scores are maximized; a vertical-gap run touching the subproblem's
 * top (bottom) boundary pays the adjusted open cost instead of the
 * standard one, which lets the recursion split runs without double
 * charging.
 */
struct MyersMiller
{
    const Sequence &a, &b;
    const SubstitutionMatrix &m;
    int64_t g, h; ///< open, extend
    // Edit script: 0 = diagonal, 1 = insert (gap in a), 2 = delete.
    std::vector<uint8_t> script;

    MyersMiller(const Sequence &a_, const Sequence &b_,
                const SubstitutionMatrix &m_, const GapPenalty &gap)
        : a(a_), b(b_), m(m_), g(gap.open), h(gap.extend)
    {
    }

    int64_t hgap(size_t k) const
    {
        return k ? -(g + h * int64_t(k)) : 0;
    }

    /**
     * Forward pass over a[ai, ai+M) x b[bi, bi+N): final-row best
     * scores CC and vertical-gap-state scores DD, with the top
     * boundary's vertical open set to @p topOpen.
     */
    void
    forward(size_t ai, size_t bi, size_t M, size_t N, int64_t topOpen,
            std::vector<int64_t> &CC, std::vector<int64_t> &DD,
            bool reverse) const
    {
        CC.assign(N + 1, 0);
        DD.assign(N + 1, kNegInf);
        for (size_t j = 1; j <= N; ++j)
            CC[j] = hgap(j);
        for (size_t i = 1; i <= M; ++i) {
            int64_t open0 = i == 1 ? topOpen : g;
            int64_t diag = CC[0];
            // Column 0: pure vertical run from the top boundary.
            DD[0] = std::max(DD[0], CC[0] - open0) - h;
            CC[0] = DD[0];
            int64_t e = kNegInf;
            for (size_t j = 1; j <= N; ++j) {
                e = std::max(e, CC[j - 1] - g) - h;
                DD[j] = std::max(DD[j], CC[j] - open0) - h;
                unsigned ra = reverse ? a[ai + M - i] : a[ai + i - 1];
                unsigned rb = reverse ? b[bi + N - j] : b[bi + j - 1];
                int64_t dd = diag + m.score(ra, rb);
                diag = CC[j];
                CC[j] = std::max(std::max(e, DD[j]), dd);
            }
        }
    }

    /** Recursive divide and conquer; returns the subproblem score. */
    int64_t
    solve(size_t ai, size_t bi, size_t M, size_t N, int64_t topOpen,
          int64_t bottomOpen)
    {
        if (M == 0) {
            for (size_t k = 0; k < N; ++k)
                script.push_back(1);
            return hgap(N);
        }
        if (N == 0) {
            for (size_t k = 0; k < M; ++k)
                script.push_back(2);
            return -(std::min(topOpen, bottomOpen) +
                     h * int64_t(M));
        }
        if (M == 1) {
            // Either delete the single residue, or match it at the
            // best column with horizontal gaps around it.
            int64_t delScore = -(std::min(topOpen, bottomOpen) + h) +
                               hgap(N);
            int64_t best = delScore;
            size_t bestJ = 0; // 0 = delete option
            for (size_t j = 1; j <= N; ++j) {
                int64_t sc = hgap(j - 1) +
                             m.score(a[ai], b[bi + j - 1]) +
                             hgap(N - j);
                if (sc > best) {
                    best = sc;
                    bestJ = j;
                }
            }
            if (bestJ == 0) {
                script.push_back(2);
                for (size_t k = 0; k < N; ++k)
                    script.push_back(1);
            } else {
                for (size_t k = 1; k < bestJ; ++k)
                    script.push_back(1);
                script.push_back(0);
                for (size_t k = bestJ; k < N; ++k)
                    script.push_back(1);
            }
            return best;
        }

        size_t mid = M / 2;
        std::vector<int64_t> CCf, DDf, CCr, DDr;
        forward(ai, bi, mid, N, topOpen, CCf, DDf, false);
        forward(ai + mid, bi, M - mid, N, bottomOpen, CCr, DDr, true);

        // Join: either the path crosses row `mid` cleanly at column
        // j, or a vertical-gap run spans the boundary (add the open
        // back, since both halves charged one).
        int64_t best = kNegInf;
        size_t bestJ = 0;
        bool gapJoin = false;
        for (size_t j = 0; j <= N; ++j) {
            int64_t clean = CCf[j] + CCr[N - j];
            int64_t gapped = DDf[j] + DDr[N - j] + g;
            if (clean > best) {
                best = clean;
                bestJ = j;
                gapJoin = false;
            }
            if (gapped > best) {
                best = gapped;
                bestJ = j;
                gapJoin = true;
            }
        }

        if (!gapJoin) {
            solve(ai, bi, mid, bestJ, topOpen, g);
            solve(ai + mid, bi + bestJ, M - mid, N - bestJ, g,
                  bottomOpen);
        } else {
            // The run covers rows mid-1 and mid (0-based): emit them
            // explicitly and forbid re-opening at the inner edges.
            solve(ai, bi, mid - 1, bestJ, topOpen, 0);
            script.push_back(2);
            script.push_back(2);
            solve(ai + mid + 1, bi + bestJ, M - mid - 1, N - bestJ, 0,
                  bottomOpen);
        }
        return best;
    }
};

} // namespace

Alignment
nwAlignLinear(const Sequence &a, const Sequence &b,
              const SubstitutionMatrix &m, const GapPenalty &gap)
{
    checkInputs(a, b, m);
    MyersMiller mm(a, b, m, gap);
    int64_t score = mm.solve(0, 0, a.size(), b.size(), gap.open,
                             gap.open);

    Alignment out;
    out.score = score;
    out.endA = a.size();
    out.endB = b.size();
    size_t i = 0, j = 0;
    for (uint8_t op : mm.script) {
        switch (op) {
          case 0:
            out.alignedA += decodeResidue(a.alphabet(), a[i++]);
            out.alignedB += decodeResidue(b.alphabet(), b[j++]);
            break;
          case 1:
            out.alignedA += '-';
            out.alignedB += decodeResidue(b.alphabet(), b[j++]);
            break;
          case 2:
            out.alignedA += decodeResidue(a.alphabet(), a[i++]);
            out.alignedB += '-';
            break;
        }
    }
    BP5_ASSERT(i == a.size() && j == b.size(),
               "linear-space traceback is not a full alignment");
    return out;
}

int64_t
nwScoreBanded(const Sequence &a, const Sequence &b,
              const SubstitutionMatrix &m, const GapPenalty &gap,
              unsigned band)
{
    checkInputs(a, b, m);
    int64_t M = int64_t(a.size()), N = int64_t(b.size());
    int64_t k = std::max<int64_t>(band, std::llabs(M - N));
    int64_t wg = gap.open, ws = gap.extend;

    std::vector<int64_t> V(size_t(N) + 1, kNegInf);
    std::vector<int64_t> F(size_t(N) + 1, kNegInf);
    V[0] = 0;
    for (int64_t j = 1; j <= std::min(N, k); ++j) {
        V[size_t(j)] = -wg - j * ws;
        F[size_t(j)] = V[size_t(j)];
    }
    for (int64_t i = 1; i <= M; ++i) {
        int64_t lo = std::max<int64_t>(1, i - k);
        int64_t hi = std::min(N, i + k);
        int64_t vdiag = V[size_t(lo - 1)];
        int64_t e = kNegInf;
        if (lo == 1) {
            vdiag = V[0];
            V[0] = i <= k ? -wg - i * ws : kNegInf;
            e = V[0] == kNegInf ? kNegInf : V[0];
        }
        if (lo - 1 >= 1)
            V[size_t(lo - 1)] = kNegInf; // left edge falls outside
        for (int64_t j = lo; j <= hi; ++j) {
            size_t ju = size_t(j);
            e = std::max(e - ws, V[ju - 1] - wg - ws);
            F[ju] = std::max(F[ju] - ws, V[ju] - wg - ws);
            int64_t g = vdiag + m.score(a[size_t(i - 1)],
                                        b[size_t(j - 1)]);
            vdiag = V[ju];
            V[ju] = std::max(std::max(e, F[ju]), g);
        }
        if (hi < N)
            V[size_t(hi + 1)] = kNegInf; // right edge stays closed
    }
    return V[size_t(N)];
}

Alignment
swAlign(const Sequence &a, const Sequence &b, const SubstitutionMatrix &m,
        const GapPenalty &gap)
{
    checkInputs(a, b, m);
    DpMatrices dp(a.size(), b.size());
    fill(dp, a, b, m, gap, true);
    size_t bi = 0, bj = 0;
    int32_t best = 0;
    for (size_t i = 0; i <= a.size(); ++i) {
        for (size_t j = 0; j <= b.size(); ++j) {
            if (dp.V(i, j) > best) {
                best = dp.V(i, j);
                bi = i;
                bj = j;
            }
        }
    }
    return traceback(dp, a, b, m, gap, true, bi, bj);
}

} // namespace bp5::bio
