#include "bio/parsimony.h"

#include <algorithm>

#include "support/logging.h"

namespace bp5::bio {

namespace {

constexpr int64_t kBig = 1LL << 40;

} // namespace

ParsimonyCost::ParsimonyCost(Alphabet alphabet, int64_t mismatch)
    : alphabet_(alphabet), k_(alphabetSize(alphabet)),
      table_(k_ * k_, mismatch)
{
    for (unsigned i = 0; i < k_; ++i)
        table_[i * k_ + i] = 0;
}

ParsimonyCost
ParsimonyCost::unit(Alphabet alphabet)
{
    return ParsimonyCost(alphabet, 1);
}

ParsimonyCost
ParsimonyCost::transitionTransversion(int64_t ts, int64_t tv)
{
    ParsimonyCost c(Alphabet::Dna, tv);
    // DNA codes: A=0 C=1 G=2 T=3; transitions are A<->G and C<->T.
    c.set(0, 2, ts);
    c.set(2, 0, ts);
    c.set(1, 3, ts);
    c.set(3, 1, ts);
    return c;
}

void
ParsimonyCost::set(unsigned a, unsigned b, int64_t v)
{
    BP5_ASSERT(a < k_ && b < k_, "state out of range");
    BP5_ASSERT(v >= 0, "parsimony costs must be non-negative");
    table_[a * k_ + b] = v;
}

int64_t
sankoffSite(const GuideTree &tree, const std::vector<uint8_t> &states,
            const ParsimonyCost &cost)
{
    BP5_ASSERT(tree.root >= 0, "empty tree");
    unsigned K = cost.size();
    std::vector<std::vector<int64_t>> dp(
        tree.nodes.size(), std::vector<int64_t>(K, kBig));

    // Nodes are created children-before-parents by the tree builders,
    // so a forward sweep is a valid post-order evaluation.
    for (size_t n = 0; n < tree.nodes.size(); ++n) {
        const GuideTree::Node &nd = tree.nodes[n];
        if (nd.leaf >= 0) {
            uint8_t s = states[static_cast<size_t>(nd.leaf)];
            BP5_ASSERT(s < K, "leaf state out of range");
            dp[n][s] = 0;
            continue;
        }
        BP5_ASSERT(static_cast<size_t>(nd.left) < n &&
                   static_cast<size_t>(nd.right) < n,
                   "tree is not in post-order");
        for (unsigned s = 0; s < K; ++s) {
            int64_t bl = kBig, br = kBig;
            for (unsigned t = 0; t < K; ++t) {
                bl = std::min(bl, dp[size_t(nd.left)][t] + cost.cost(s, t));
                br = std::min(br,
                              dp[size_t(nd.right)][t] + cost.cost(s, t));
            }
            dp[n][s] = bl + br;
        }
    }
    const auto &root = dp[static_cast<size_t>(tree.root)];
    return *std::min_element(root.begin(), root.end());
}

int64_t
sankoffScore(const GuideTree &tree, const std::vector<Sequence> &seqs,
             const ParsimonyCost &cost)
{
    BP5_ASSERT(!seqs.empty(), "no sequences");
    size_t len = seqs[0].size();
    for (const Sequence &s : seqs) {
        if (s.size() != len)
            fatal("sankoffScore requires equal-length sequences");
        BP5_ASSERT(s.alphabet() == cost.alphabet(),
                   "sequence/cost alphabet mismatch");
    }
    int64_t total = 0;
    std::vector<uint8_t> states(seqs.size());
    for (size_t col = 0; col < len; ++col) {
        for (size_t i = 0; i < seqs.size(); ++i)
            states[i] = seqs[i][col];
        total += sankoffSite(tree, states, cost);
    }
    return total;
}

} // namespace bp5::bio
