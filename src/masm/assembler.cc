#include "masm/assembler.h"

#include <cctype>
#include <cstring>
#include <optional>
#include <sstream>

#include "isa/encode.h"
#include "support/logging.h"

namespace bp5::masm {

using isa::Op;

uint64_t
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("undefined symbol '%s'", name.c_str());
    return it->second;
}

namespace {

/** One parsed statement before fixups. */
struct Stmt
{
    int line = 0;
    enum Kind { Instr, Data, Space } kind = Instr;
    isa::Inst inst;
    std::string target;      ///< branch label ("" if numeric/none)
    std::vector<uint8_t> data;
    size_t space = 0;
    uint64_t addr = 0;       ///< assigned in pass 1
};

[[noreturn]] void
err(int line, const std::string &msg)
{
    throw AsmError{line, msg};
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

std::string
lower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** Split operand list on commas (parens kept with their token). */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    cur = trim(cur);
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::optional<int64_t>
parseInt(const std::string &tok)
{
    if (tok.empty())
        return std::nullopt;
    size_t i = 0;
    bool neg = false;
    if (tok[0] == '-' || tok[0] == '+') {
        neg = tok[0] == '-';
        i = 1;
    }
    if (i >= tok.size())
        return std::nullopt;
    int base = 10;
    if (tok.size() > i + 1 && tok[i] == '0' &&
        (tok[i + 1] == 'x' || tok[i + 1] == 'X')) {
        base = 16;
        i += 2;
    }
    int64_t v = 0;
    for (; i < tok.size(); ++i) {
        char c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(tok[i])));
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return std::nullopt;
        v = v * base + digit;
    }
    return neg ? -v : v;
}

unsigned
parseReg(const std::string &tok, int line)
{
    if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R'))
        err(line, "expected register, got '" + tok + "'");
    auto v = parseInt(tok.substr(1));
    if (!v || *v < 0 || *v >= 32)
        err(line, "bad register '" + tok + "'");
    return static_cast<unsigned>(*v);
}

unsigned
parseCrField(const std::string &tok, int line)
{
    if (tok.size() < 3 || lower(tok.substr(0, 2)) != "cr")
        err(line, "expected CR field, got '" + tok + "'");
    auto v = parseInt(tok.substr(2));
    if (!v || *v < 0 || *v >= 8)
        err(line, "bad CR field '" + tok + "'");
    return static_cast<unsigned>(*v);
}

int64_t
parseImm(const std::string &tok, int line)
{
    auto v = parseInt(tok);
    if (!v)
        err(line, "expected immediate, got '" + tok + "'");
    return *v;
}

/** Parse "disp(rN)" into (disp, reg). */
std::pair<int64_t, unsigned>
parseMem(const std::string &tok, int line)
{
    size_t open = tok.find('(');
    size_t close = tok.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open)
        err(line, "expected disp(reg), got '" + tok + "'");
    std::string disp = trim(tok.substr(0, open));
    std::string reg = trim(tok.substr(open + 1, close - open - 1));
    int64_t d = disp.empty() ? 0 : parseImm(disp, line);
    return {d, parseReg(reg, line)};
}

struct CondAlias
{
    unsigned bo;
    isa::CrBit bit;
};

std::optional<CondAlias>
condAlias(const std::string &m)
{
    using isa::BO_COND_FALSE;
    using isa::BO_COND_TRUE;
    if (m == "beq") return CondAlias{BO_COND_TRUE, isa::CR_EQ};
    if (m == "bne") return CondAlias{BO_COND_FALSE, isa::CR_EQ};
    if (m == "blt") return CondAlias{BO_COND_TRUE, isa::CR_LT};
    if (m == "bge") return CondAlias{BO_COND_FALSE, isa::CR_LT};
    if (m == "bgt") return CondAlias{BO_COND_TRUE, isa::CR_GT};
    if (m == "ble") return CondAlias{BO_COND_FALSE, isa::CR_GT};
    return std::nullopt;
}

class Parser
{
  public:
    explicit Parser(uint64_t base) : base_(base) {}

    void parseLine(const std::string &raw, int line);
    Program finish();

  private:
    void addInst(const isa::Inst &inst, int line,
                 const std::string &target = "");
    void parseDirective(const std::string &m,
                        const std::vector<std::string> &ops, int line);
    void parseInstr(const std::string &m,
                    const std::vector<std::string> &ops, int line);

    uint64_t base_;
    uint64_t pc_ = 0; ///< offset from base
    std::vector<Stmt> stmts_;
    std::unordered_map<std::string, uint64_t> symbols_;
};

void
Parser::addInst(const isa::Inst &inst, int line, const std::string &target)
{
    Stmt s;
    s.line = line;
    s.kind = Stmt::Instr;
    s.inst = inst;
    s.target = target;
    s.addr = base_ + pc_;
    stmts_.push_back(std::move(s));
    pc_ += 4;
}

void
Parser::parseLine(const std::string &raw, int line)
{
    std::string text = raw;
    size_t hash = text.find_first_of("#;");
    if (hash != std::string::npos)
        text = text.substr(0, hash);
    text = trim(text);
    if (text.empty())
        return;

    // Leading labels (possibly several).
    for (;;) {
        size_t colon = text.find(':');
        if (colon == std::string::npos)
            break;
        std::string label = trim(text.substr(0, colon));
        // Only treat as a label if it looks like an identifier.
        bool ident = !label.empty() &&
                     (std::isalpha(static_cast<unsigned char>(label[0])) ||
                      label[0] == '_' || label[0] == '.');
        for (char c : label) {
            if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == '.'))
                ident = false;
        }
        if (!ident)
            break;
        if (symbols_.count(label))
            err(line, "duplicate label '" + label + "'");
        symbols_[label] = base_ + pc_;
        text = trim(text.substr(colon + 1));
        if (text.empty())
            return;
    }

    size_t sp = text.find_first_of(" \t");
    std::string m = lower(sp == std::string::npos ? text
                                                  : text.substr(0, sp));
    std::string rest = sp == std::string::npos ? "" : trim(text.substr(sp));
    auto ops = splitOperands(rest);

    if (m[0] == '.')
        parseDirective(m, ops, line);
    else
        parseInstr(m, ops, line);
}

void
Parser::parseDirective(const std::string &m,
                       const std::vector<std::string> &ops, int line)
{
    auto need = [&](size_t n) {
        if (ops.size() != n)
            err(line, "directive " + m + " expects " +
                          std::to_string(n) + " operand(s)");
    };
    Stmt s;
    s.line = line;
    s.addr = base_ + pc_;
    if (m == ".dword" || m == ".word" || m == ".half" || m == ".byte") {
        need(1);
        int64_t v = parseImm(ops[0], line);
        size_t bytes = m == ".dword" ? 8 : m == ".word" ? 4
                                       : m == ".half"  ? 2 : 1;
        s.kind = Stmt::Data;
        for (size_t i = 0; i < bytes; ++i)
            s.data.push_back(static_cast<uint8_t>(v >> (8 * i)));
        pc_ += bytes;
    } else if (m == ".space") {
        need(1);
        int64_t n = parseImm(ops[0], line);
        if (n < 0)
            err(line, ".space with negative size");
        s.kind = Stmt::Space;
        s.space = static_cast<size_t>(n);
        pc_ += s.space;
    } else if (m == ".align") {
        need(1);
        int64_t a = parseImm(ops[0], line);
        if (a <= 0 || (a & (a - 1)))
            err(line, ".align requires a power of two");
        uint64_t aligned = (pc_ + a - 1) & ~static_cast<uint64_t>(a - 1);
        s.kind = Stmt::Space;
        s.space = aligned - pc_;
        pc_ = aligned;
    } else {
        err(line, "unknown directive '" + m + "'");
    }
    stmts_.push_back(std::move(s));
}

void
Parser::parseInstr(const std::string &m, const std::vector<std::string> &ops,
                   int line)
{
    using namespace isa;
    auto need = [&](size_t n) {
        if (ops.size() != n)
            err(line, m + " expects " + std::to_string(n) + " operand(s)");
    };

    // --- aliases ---------------------------------------------------
    if (m == "nop") { need(0); addInst(mkNop(), line); return; }
    if (m == "li") {
        need(2);
        addInst(mkLi(parseReg(ops[0], line),
                     static_cast<int32_t>(parseImm(ops[1], line))), line);
        return;
    }
    if (m == "mr") {
        need(2);
        addInst(mkMr(parseReg(ops[0], line), parseReg(ops[1], line)), line);
        return;
    }
    if (m == "blr") { need(0); addInst(mkBclr(), line); return; }
    if (m == "bctr") { need(0); addInst(mkBcctr(), line); return; }
    if (m == "mtlr") {
        need(1);
        addInst(mkMtspr(SPR_LR, parseReg(ops[0], line)), line);
        return;
    }
    if (m == "mtctr") {
        need(1);
        addInst(mkMtspr(SPR_CTR, parseReg(ops[0], line)), line);
        return;
    }
    if (m == "mflr") {
        need(1);
        addInst(mkMfspr(parseReg(ops[0], line), SPR_LR), line);
        return;
    }
    if (m == "mfctr") {
        need(1);
        addInst(mkMfspr(parseReg(ops[0], line), SPR_CTR), line);
        return;
    }
    if (m == "mfcr") {
        need(1);
        addInst(mkMfcr(parseReg(ops[0], line)), line);
        return;
    }
    if (m == "subi") {
        need(3);
        addInst(mkD(Op::ADDI, parseReg(ops[0], line), parseReg(ops[1], line),
                    static_cast<int32_t>(-parseImm(ops[2], line))), line);
        return;
    }
    if (m == "cmpd" || m == "cmpw" || m == "cmpld" || m == "cmplw") {
        // cmpd [crN,] rA, rB
        bool logical = m[3] == 'l' || (m.size() > 4 && m[3] == 'l');
        bool l64 = m.back() == 'd';
        logical = m.find('l') == 3; // cmpld / cmplw
        unsigned bf = 0;
        size_t i = 0;
        if (ops.size() == 3)
            bf = parseCrField(ops[i++], line);
        else
            need(2);
        unsigned ra = parseReg(ops[i++], line);
        unsigned rb = parseReg(ops[i], line);
        addInst(mkCmp(logical ? Op::CMPL : Op::CMP, bf, ra, rb, l64), line);
        return;
    }
    if (m == "cmpdi" || m == "cmpwi" || m == "cmpldi" || m == "cmplwi") {
        bool logical = m.find('l') == 3;
        bool l64 = m[3] == 'd' || (logical && m[4] == 'd');
        unsigned bf = 0;
        size_t i = 0;
        if (ops.size() == 3)
            bf = parseCrField(ops[i++], line);
        else
            need(2);
        unsigned ra = parseReg(ops[i++], line);
        int32_t imm = static_cast<int32_t>(parseImm(ops[i], line));
        addInst(mkCmpi(logical ? Op::CMPLI : Op::CMPI, bf, ra, imm, l64),
                line);
        return;
    }
    if (auto ca = condAlias(m)) {
        // beq [crN,] target
        unsigned bf = 0;
        size_t i = 0;
        if (ops.size() == 2)
            bf = parseCrField(ops[i++], line);
        else
            need(1);
        Inst inst = mkBc(ca->bo, crBitIndex(bf, ca->bit), 0);
        addInst(inst, line, ops[i]);
        return;
    }
    if (m == "bdnz" || m == "bdz") {
        need(1);
        Inst inst = mkBc(m == "bdnz" ? BO_DNZ : BO_DZ, 0, 0);
        addInst(inst, line, ops[0]);
        return;
    }
    if (m == "b" || m == "bl") {
        need(1);
        Inst inst = mkB(0, m == "bl");
        addInst(inst, line, ops[0]);
        return;
    }
    if (m == "max" || m == "min") {
        // Friendly aliases for the paper's instructions.
        need(3);
        addInst(mkX(m == "max" ? Op::MAXD : Op::MIND, parseReg(ops[0], line),
                    parseReg(ops[1], line), parseReg(ops[2], line)), line);
        return;
    }

    // --- canonical mnemonics ----------------------------------------
    bool rc = false;
    std::string base_m = m;
    if (base_m.size() > 1 && base_m.back() == '.' && base_m != "andi.") {
        rc = true;
        base_m.pop_back();
    }
    Op op = opFromMnemonic(base_m);
    if (op == Op::INVALID)
        err(line, "unknown mnemonic '" + m + "'");
    const OpInfo &info = opInfo(op);

    switch (info.format) {
      case Format::DArith: {
        if (info.isLoad || info.isStore) {
            need(2);
            unsigned rt = parseReg(ops[0], line);
            auto [disp, ra] = parseMem(ops[1], line);
            addInst(mkD(op, rt, ra, static_cast<int32_t>(disp)), line);
        } else {
            need(3);
            addInst(mkD(op, parseReg(ops[0], line), parseReg(ops[1], line),
                        static_cast<int32_t>(parseImm(ops[2], line))),
                    line);
        }
        return;
      }
      case Format::DCmp: {
        // cmpi crN, L, rA, imm
        need(4);
        addInst(mkCmpi(op, parseCrField(ops[0], line),
                       parseReg(ops[2], line),
                       static_cast<int32_t>(parseImm(ops[3], line)),
                       parseImm(ops[1], line) != 0), line);
        return;
      }
      case Format::XCmp: {
        need(4);
        addInst(mkCmp(op, parseCrField(ops[0], line),
                      parseReg(ops[2], line), parseReg(ops[3], line),
                      parseImm(ops[1], line) != 0), line);
        return;
      }
      case Format::X:
      case Format::XO: {
        if (!info.readsRB) {
            need(2);
            Inst inst = mkUnary(op, parseReg(ops[0], line),
                                parseReg(ops[1], line), rc);
            addInst(inst, line);
        } else {
            need(3);
            addInst(mkX(op, parseReg(ops[0], line), parseReg(ops[1], line),
                        parseReg(ops[2], line), rc), line);
        }
        return;
      }
      case Format::XShImm: {
        need(3);
        addInst(mkShImm(op, parseReg(ops[0], line), parseReg(ops[1], line),
                        static_cast<unsigned>(parseImm(ops[2], line))),
                line);
        return;
      }
      case Format::AIsel: {
        need(4);
        addInst(mkIsel(parseReg(ops[0], line), parseReg(ops[1], line),
                       parseReg(ops[2], line),
                       static_cast<unsigned>(parseImm(ops[3], line))),
                line);
        return;
      }
      case Format::I: {
        need(1);
        addInst(mkB(0, false), line, ops[0]);
        return;
      }
      case Format::BForm: {
        need(3);
        Inst inst = mkBc(static_cast<unsigned>(parseImm(ops[0], line)),
                         static_cast<unsigned>(parseImm(ops[1], line)), 0);
        addInst(inst, line, ops[2]);
        return;
      }
      case Format::XLBranch: {
        need(2);
        Inst inst;
        inst.op = op;
        inst.bo = static_cast<uint8_t>(parseImm(ops[0], line));
        inst.bi = static_cast<uint8_t>(parseImm(ops[1], line));
        addInst(inst, line);
        return;
      }
      case Format::XLCr: {
        need(3);
        addInst(mkCrOp(op, static_cast<unsigned>(parseImm(ops[0], line)),
                       static_cast<unsigned>(parseImm(ops[1], line)),
                       static_cast<unsigned>(parseImm(ops[2], line))),
                line);
        return;
      }
      case Format::XFX: {
        need(2);
        if (op == Op::MTSPR) {
            addInst(mkMtspr(static_cast<unsigned>(parseImm(ops[0], line)),
                            parseReg(ops[1], line)), line);
        } else {
            addInst(mkMfspr(parseReg(ops[0], line),
                            static_cast<unsigned>(parseImm(ops[1], line))),
                    line);
        }
        return;
      }
      case Format::XMfcr: {
        need(1);
        addInst(mkMfcr(parseReg(ops[0], line)), line);
        return;
      }
      case Format::SCForm: {
        need(0);
        addInst(mkSc(), line);
        return;
      }
    }
    err(line, "unhandled mnemonic '" + m + "'");
}

Program
Parser::finish()
{
    Program prog;
    prog.base = base_;
    prog.symbols = symbols_;
    prog.image.resize(pc_, 0);

    for (auto &s : stmts_) {
        size_t off = s.addr - base_;
        switch (s.kind) {
          case Stmt::Space:
            break;
          case Stmt::Data:
            std::memcpy(prog.image.data() + off, s.data.data(),
                        s.data.size());
            break;
          case Stmt::Instr: {
            isa::Inst inst = s.inst;
            if (!s.target.empty()) {
                uint64_t target;
                auto it = symbols_.find(s.target);
                if (it != symbols_.end()) {
                    target = it->second;
                } else if (auto v = parseInt(s.target)) {
                    target = static_cast<uint64_t>(*v);
                } else {
                    err(s.line, "undefined label '" + s.target + "'");
                }
                inst.imm = static_cast<int32_t>(
                    static_cast<int64_t>(target) -
                    static_cast<int64_t>(s.addr));
            }
            uint32_t word = isa::encode(inst);
            std::memcpy(prog.image.data() + off, &word, 4);
            break;
          }
        }
    }
    return prog;
}

} // namespace

Program
assemble(const std::string &source, uint64_t base)
{
    Parser p(base);
    std::istringstream in(source);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        p.parseLine(line, lineno);
    }
    return p.finish();
}

Program
assemble(const std::vector<isa::Inst> &insts, uint64_t base)
{
    Program prog;
    prog.base = base;
    prog.image.resize(insts.size() * 4);
    for (size_t i = 0; i < insts.size(); ++i) {
        uint32_t word = isa::encode(insts[i]);
        std::memcpy(prog.image.data() + i * 4, &word, 4);
    }
    return prog;
}

} // namespace bp5::masm
