/**
 * @file
 * Two-pass assembler for MiniPOWER assembly text.
 *
 * Accepted syntax (one statement per line, '#' or ';' comments):
 *
 *     label:                      ; labels
 *     addi  r3, r1, 16            ; canonical forms
 *     lwz   r5, 8(r4)             ; loads/stores with displacement
 *     cmpdi cr1, r3, 0            ; compare aliases
 *     beq   cr1, done             ; conditional-branch aliases
 *     bdnz  loop
 *     li r4, 10 / mr r3, r4 / nop / blr / bctr
 *     mtctr r5 / mflr r0 ...
 *     .dword 0x1234  .word 7  .byte 1  .space 64  .align 8
 *
 * Branch targets may be labels or absolute integers.
 */

#ifndef BIOPERF5_MASM_ASSEMBLER_H
#define BIOPERF5_MASM_ASSEMBLER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/inst.h"

namespace bp5::masm {

/** Result of assembling a translation unit. */
struct Program
{
    uint64_t base = 0;            ///< load address of image[0]
    std::vector<uint8_t> image;   ///< raw bytes (code + data)
    std::unordered_map<std::string, uint64_t> symbols;

    /** Address of a defined label; fatal() if missing. */
    uint64_t symbol(const std::string &name) const;

    /** Number of bytes in the image. */
    size_t size() const { return image.size(); }
};

/** Error raised for malformed assembly input. */
struct AsmError
{
    int line;
    std::string message;
};

/**
 * Assemble @p source at load address @p base.
 * @throws AsmError on the first syntax or range error.
 */
Program assemble(const std::string &source, uint64_t base = 0x10000);

/**
 * Assemble a sequence of already-decoded instructions (as produced by
 * the compiler back end) into a Program image at @p base.
 */
Program assemble(const std::vector<isa::Inst> &insts, uint64_t base);

} // namespace bp5::masm

#endif // BIOPERF5_MASM_ASSEMBLER_H
