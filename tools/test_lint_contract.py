#!/usr/bin/env python3
"""Exit-code and JSON contract tests for bp5-lint.

Invoked by ctest as:

    test_lint_contract.py <path-to-bp5-lint> <examples-asm-dir>

Contract under test (see tools/bp5_lint.cc):

    0 = no errors (and, under --pedantic, no warnings)
    1 = lint errors, or warnings when --pedantic was given
    2 = usage or input errors (bad flags, unreadable/unassemblable file)

and every --json line must parse as standalone JSON with properly
escaped strings.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

LINT = None
EXAMPLES = None

CLEAN = """
start:
        li r14, 5
        mtctr r14
loop:
        addi r14, r14, -1
        bdnz loop
        li r0, 0
        li r3, 0
        sc
"""

# Warning-only under --pedantic: a dead definition (r15 never read).
WARN_ONLY = """
start:
        li r15, 7
        li r0, 0
        li r3, 0
        sc
"""

# A definite error: 4-byte load from the null page.
ERROR = """
start:
        li r5, 16
        lwz r4, 0(r5)
        li r0, 0
        li r3, 0
        sc
"""


def run_lint(*args):
    return subprocess.run([LINT, *args], capture_output=True, text=True)


def write_fixture(tmp, name, text):
    path = os.path.join(tmp, name)
    with open(path, "w") as f:
        f.write(text)
    return path


class LintContractTest(unittest.TestCase):
    def test_clean_file_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            p = write_fixture(tmp, "clean.masm", CLEAN)
            r = run_lint(p)
            self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
            self.assertIn("clean", r.stdout)

    def test_error_file_exits_one(self):
        with tempfile.TemporaryDirectory() as tmp:
            p = write_fixture(tmp, "bad.masm", ERROR)
            r = run_lint(p)
            self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
            self.assertIn("error", r.stdout)

    def test_warnings_fail_only_under_pedantic(self):
        with tempfile.TemporaryDirectory() as tmp:
            p = write_fixture(tmp, "warn.masm", WARN_ONLY)
            r = run_lint(p)
            self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
            r = run_lint("--pedantic", p)
            self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
            self.assertIn("warning", r.stdout)

    def test_usage_errors_exit_two(self):
        self.assertEqual(run_lint().returncode, 2)          # no input
        self.assertEqual(run_lint("--nonsense").returncode, 2)
        self.assertEqual(run_lint("--region=broken",
                                  "x.masm").returncode, 2)
        self.assertEqual(run_lint("/does/not/exist.masm").returncode, 2)

    def test_unassemblable_file_exits_two(self):
        with tempfile.TemporaryDirectory() as tmp:
            p = write_fixture(tmp, "junk.masm", "frobnicate r1, r2\n")
            r = run_lint(p)
            self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
            self.assertIn("junk.masm", r.stderr)

    def test_region_flag_silences_pedantic_warning(self):
        prog = """
start:
        li r5, 0x4100
        stw r6, 4(r5)
        li r0, 0
        li r3, 0
        sc
"""
        with tempfile.TemporaryDirectory() as tmp:
            p = write_fixture(tmp, "region.masm", prog)
            self.assertEqual(run_lint("--pedantic", p).returncode, 1)
            r = run_lint("--pedantic", "--region=0x4000:0x1000", p)
            self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_json_lines_are_valid_json(self):
        # Include a path with a quote and a backslash so the title
        # exercises string escaping end to end.
        with tempfile.TemporaryDirectory() as tmp:
            sub = os.path.join(tmp, 'odd" \\name')
            os.mkdir(sub)
            paths = [write_fixture(sub, "a.masm", ERROR),
                     write_fixture(sub, "b.masm", WARN_ONLY)]
            r = run_lint("--json", "--pedantic", *paths)
            self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
            lines = [l for l in r.stdout.splitlines() if l.strip()]
            self.assertEqual(len(lines), len(paths))
            for line in lines:
                doc = json.loads(line)  # must not raise
                self.assertIn("title", doc)
                self.assertIn("rows", doc)
            # The error row carries the structured fields the CI report
            # consumers rely on.
            err_doc = json.loads(lines[0])
            row = err_doc["rows"][0]
            for key in ("program", "severity", "code", "pc", "message"):
                self.assertIn(key, row)
            self.assertEqual(row["code"], "out-of-bounds-access")

    def test_shipped_examples_pedantic_clean(self):
        masms = sorted(
            os.path.join(EXAMPLES, f) for f in os.listdir(EXAMPLES)
            if f.endswith(".masm"))
        self.assertTrue(masms, f"no .masm fixtures in {EXAMPLES}")
        r = run_lint("--pedantic", "--json", *masms)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        for line in r.stdout.splitlines():
            if line.strip():
                json.loads(line)


if __name__ == "__main__":
    if len(sys.argv) < 3:
        sys.exit("usage: test_lint_contract.py <bp5-lint> <examples-dir>")
    EXAMPLES = sys.argv.pop()
    LINT = sys.argv.pop()
    unittest.main()
