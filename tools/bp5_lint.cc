/**
 * @file
 * bp5-lint: binary-level static analyzer for MiniPOWER programs.
 *
 * Usage:
 *   bp5-lint [options] file.masm ...     lint assembly source files
 *   bp5-lint [options] --kernels         lint every compiled BioPerf
 *                                        kernel in every code variant
 *
 * Options:
 *   --json       emit one JSON Lines record per program instead of text
 *   --pedantic   also warn about dead GPR definitions, unprovable
 *                memory accesses and statically-infinite loops; any
 *                warning then fails the run
 *   --cfg        dump the reconstructed CFG of each program
 *   --loops      dump the natural-loop analysis of each program
 *   --classify   print the static branch-class table of each program
 *   --base=N     load address for .masm files (default 0x10000)
 *   --region=B:S declare a valid data region (base:size, repeatable)
 *
 * Exit status: 0 when no program has lint errors (and, under
 * --pedantic, no warnings either), 1 otherwise, 2 on usage or input
 * errors.
 */

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/branch_class.h"
#include "analysis/lint.h"
#include "analysis/loops.h"
#include "kernels/kernels.h"
#include "support/logging.h"
#include "support/result.h"

using namespace bp5;

namespace {

struct Options
{
    bool json = false;
    bool pedantic = false;
    bool dumpCfg = false;
    bool dumpLoops = false;
    bool classify = false;
    bool kernels = false;
    uint64_t base = 0x10000;
    std::vector<analysis::MemRegion> regions;
    std::vector<std::string> files;
};

void
usage()
{
    std::fputs(
        "usage: bp5-lint [--json] [--pedantic] [--cfg] [--loops]\n"
        "                [--classify] [--base=ADDR] [--region=BASE:SIZE]\n"
        "                (file.masm ... | --kernels)\n",
        stderr);
}

/** Lint one named program; returns the report (caller aggregates). */
analysis::LintReport
lintOne(const std::string &name, const masm::Program &prog,
        const Options &opts)
{
    analysis::Cfg cfg =
        analysis::buildCfg(analysis::CodeImage::fromProgram(prog));
    analysis::LintOptions lo;
    lo.pedantic = opts.pedantic;
    lo.regions = opts.regions;
    analysis::LintReport report = analysis::lint(cfg, lo);

    if (opts.dumpCfg)
        std::fputs(cfg.dump().c_str(), stdout);
    if (opts.dumpLoops)
        std::fputs(analysis::findCfgLoops(cfg).dump(cfg).c_str(), stdout);

    if (opts.json) {
        std::fputs(
            support::emitJsonLine(report.toRows(name), "lint:" + name)
                .c_str(),
            stdout);
    } else if (!report.clean()) {
        std::fputs(report.toText(name).c_str(), stdout);
    } else {
        std::printf("%s: clean (%zu instructions, %zu blocks)\n",
                    name.c_str(), cfg.numInsts(), cfg.blocks.size());
    }

    if (opts.classify) {
        auto sites = analysis::classifyBranches(cfg);
        std::vector<support::ResultRow> rows;
        for (const auto &s : sites) {
            support::ResultRow row;
            row.set("pc", strprintf("0x%llx", (unsigned long long)s.pc));
            row.set("class", analysis::branchClassName(s.klass));
            row.set("disasm", s.disasm);
            if (!s.detail.empty())
                row.set("detail", s.detail);
            rows.push_back(std::move(row));
        }
        std::string title = "branches:" + name;
        std::fputs(opts.json ? support::emitJsonLine(rows, title).c_str()
                             : support::emitText(rows, title).c_str(),
                   stdout);
    }
    return report;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--pedantic") {
            opts.pedantic = true;
        } else if (arg == "--cfg") {
            opts.dumpCfg = true;
        } else if (arg == "--loops") {
            opts.dumpLoops = true;
        } else if (arg.rfind("--region=", 0) == 0) {
            std::string spec = arg.substr(9);
            size_t colon = spec.find(':');
            if (colon == std::string::npos) {
                usage();
                return 2;
            }
            analysis::MemRegion r;
            r.base = std::stoull(spec.substr(0, colon), nullptr, 0);
            r.size = std::stoull(spec.substr(colon + 1), nullptr, 0);
            r.name = spec;
            opts.regions.push_back(std::move(r));
        } else if (arg == "--classify") {
            opts.classify = true;
        } else if (arg == "--kernels") {
            opts.kernels = true;
        } else if (arg.rfind("--base=", 0) == 0) {
            opts.base = std::stoull(arg.substr(7), nullptr, 0);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            usage();
            return 2;
        } else {
            opts.files.push_back(arg);
        }
    }
    if (opts.files.empty() && !opts.kernels) {
        usage();
        return 2;
    }

    unsigned errors = 0;
    unsigned warnings = 0;

    for (const std::string &path : opts.files) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "bp5-lint: cannot open %s\n", path.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        try {
            masm::Program prog = masm::assemble(text.str(), opts.base);
            analysis::LintReport report = lintOne(path, prog, opts);
            errors += report.errors();
            warnings += report.warnings();
        } catch (const masm::AsmError &e) {
            std::fprintf(stderr, "bp5-lint: %s:%d: %s\n", path.c_str(),
                         e.line, e.message.c_str());
            return 2;
        }
    }

    if (opts.kernels) {
        for (unsigned k = 0;
             k < unsigned(kernels::KernelKind::NUM_KERNELS); ++k) {
            for (unsigned v = 0; v < unsigned(mpc::Variant::NUM_VARIANTS);
                 ++v) {
                auto kind = kernels::KernelKind(k);
                auto variant = mpc::Variant(v);
                mpc::Compiled compiled =
                    kernels::compileKernel(kind, variant);
                std::string name =
                    strprintf("%s/%s", kernels::kernelName(kind),
                              mpc::variantName(variant));
                analysis::LintReport report =
                    lintOne(name, compiled.program(kernels::kCodeBase),
                            opts);
                errors += report.errors();
                warnings += report.warnings();
            }
        }
    }

    // Contract: errors always fail; warnings fail only when the caller
    // opted into the pedantic checks.
    return errors || (opts.pedantic && warnings) ? 1 : 0;
}
