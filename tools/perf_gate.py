#!/usr/bin/env python3
"""Simulator-speed and serving-throughput regression gate.

Compares a fresh ``bench/sim_speed_bench --json`` record against the
checked-in perf-trajectory baseline (BENCH_simspeed.json) and fails if
any (workload, mode) point lost more than --max-drop of its simulated
MIPS.  Run from CI after the test step:

    ./build/bench/sim_speed_bench --json > new.json
    python3 tools/perf_gate.py --baseline BENCH_simspeed.json --new new.json

Only relative regressions are gated; faster-than-baseline points are
reported but never fail.  The baseline file also carries the pre-PR
interpreter reference (``reference_pre_predecode``); when present, the
gate additionally checks the compiled-engine speedup contract: each
workload's functional-mode MIPS must stay >= --min-speedup times the
reference timing-interpreter MIPS on at least --min-speedup-apps
workloads (host-relative, so this only trips when the engine itself
slows down, not when the CI host does).

The batch-serving trajectory is gated the same way from its own
baseline (BENCH_serve.json, written by ``bench/serve_load --bench
--json``).  The baseline's ``serve`` section carries absolute SLO
bounds chosen to hold on any plausible CI host:

    "serve": {"min_jobs_per_s": F, "max_p99_us": C}

and the gate checks a fresh serve_load record against them:
the open-loop row's throughput must stay >= F, the paced row's p99
latency must stay <= C, and no row may report failed, rejected, or
dropped jobs:

    ./build/bench/serve_load --jobs=... --bench --json > serve_new.json
    python3 tools/perf_gate.py --serve-baseline BENCH_serve.json \\
        --serve-new serve_new.json

Either pair (or both) may be given.  Exit status: 0 = all points
within bounds, 1 = regression, 2 = usage or schema error.
"""

import argparse
import json
import sys


REQUIRED_KEYS = ("workload", "mode", "sim_mips")


def load_rows(path):
    """Return {(workload, mode): row} from a sim-speed JSON document.

    Tolerant by design: rows may carry any number of unknown keys
    (newer benches append columns — e.g. the cpi_* cycle-accounting
    cells — and the gate must keep reading older and newer reports
    alike), and unknown top-level sections are ignored.  Only the
    REQUIRED_KEYS themselves are validated.
    """
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        raise ValueError(f"{path}: no 'rows' array")
    out = {}
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            raise ValueError(f"{path}: row {i} is not an object")
        missing = [k for k in REQUIRED_KEYS if k not in row]
        if missing:
            raise ValueError(
                f"{path}: row {i} is missing key(s) {', '.join(missing)}")
        key = (row["workload"], row["mode"])
        if key in out:
            raise ValueError(f"{path}: duplicate row {key}")
        out[key] = row
    return out


def require_row(rows, workload, mode, path):
    """Row for (workload, mode), or a readable error instead of KeyError."""
    key = (workload, mode)
    if key not in rows:
        raise ValueError(
            f"missing row (workload={workload}, mode={mode}) in {path}")
    return rows[key]


SERVE_ROW_KEYS = ("mode", "jobs", "completed", "failed", "rejected",
                  "jobs_per_s", "p99_us")


def load_serve(path):
    """Return (doc, {mode: row}) from a serve_load --json document.

    Same tolerance policy as load_rows: rows may carry extra columns,
    only SERVE_ROW_KEYS are validated.  Rows are keyed by mode alone
    ("open"/"paced") because the serve bench runs one mixed workload.
    """
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        raise ValueError(f"{path}: no 'rows' array")
    out = {}
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            raise ValueError(f"{path}: row {i} is not an object")
        missing = [k for k in SERVE_ROW_KEYS if k not in row]
        if missing:
            raise ValueError(
                f"{path}: row {i} is missing key(s) {', '.join(missing)}")
        if row["mode"] in out:
            raise ValueError(f"{path}: duplicate mode '{row['mode']}'")
        out[row["mode"]] = row
    return doc, out


def check_serve(baseline_path, new_path):
    """Gate a fresh serve_load record against the baseline's SLO bounds.

    Returns a list of failure strings (empty = pass).  Raises
    ValueError on schema problems (missing serve section or rows),
    which main() maps to exit 2.
    """
    base_doc, base_rows = load_serve(baseline_path)
    _, new_rows = load_serve(new_path)

    slo = base_doc.get("serve")
    if not isinstance(slo, dict):
        raise ValueError(f"{baseline_path}: no 'serve' SLO section")
    try:
        floor = float(slo["min_jobs_per_s"])
        ceiling = float(slo["max_p99_us"])
    except (KeyError, TypeError, ValueError):
        raise ValueError(
            f"{baseline_path}: 'serve' section needs numeric "
            f"min_jobs_per_s and max_p99_us")

    failures = []
    print(f"{'mode':<7} {'jobs_per_s':>11} {'p99_us':>9}   bound")
    for mode in ("open", "paced"):
        if mode not in new_rows:
            raise ValueError(
                f"{new_path}: missing serve row mode='{mode}' "
                f"(run serve_load with --bench)")
    for mode, row in sorted(new_rows.items()):
        base = base_rows.get(mode)
        ref = (f" (baseline {float(base['jobs_per_s']):.1f}/"
               f"{float(base['p99_us']):.0f})" if base else "")
        print(f"{mode:<7} {float(row['jobs_per_s']):>11.1f} "
              f"{float(row['p99_us']):>9.0f}{ref}")
        # Integrity applies to every row regardless of mode: a phase
        # that failed, rejected, or silently dropped jobs is a broken
        # server, not a slow one.
        failed = int(row["failed"])
        rejected = int(row["rejected"])
        dropped = (int(row["jobs"]) - int(row["completed"]) - failed -
                   rejected)
        if failed or rejected or dropped:
            failures.append(
                f"serve/{mode}: {failed} failed, {rejected} rejected, "
                f"{dropped} dropped (all must be 0)")
    got = float(new_rows["open"]["jobs_per_s"])
    if got < floor:
        failures.append(
            f"serve/open: {got:.1f} jobs/s below SLO floor "
            f"{floor:.1f}")
    p99 = float(new_rows["paced"]["p99_us"])
    if p99 > ceiling:
        failures.append(
            f"serve/paced: p99 {p99:.0f} us above SLO ceiling "
            f"{ceiling:.0f} us")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline",
                    help="checked-in BENCH_simspeed.json")
    ap.add_argument("--new", dest="new_path",
                    help="fresh sim_speed_bench --json output")
    ap.add_argument("--serve-baseline",
                    help="checked-in BENCH_serve.json (carries the "
                         "'serve' SLO section)")
    ap.add_argument("--serve-new",
                    help="fresh serve_load --bench --json output")
    ap.add_argument("--max-drop", type=float, default=0.20,
                    help="maximum tolerated fractional sim_mips drop "
                         "per (workload, mode) point (default 0.20)")
    ap.add_argument("--min-speedup", type=float, default=10.0,
                    help="required functional-vs-reference-timing "
                         "speedup (default 10)")
    ap.add_argument("--min-speedup-apps", type=int, default=3,
                    help="workloads that must meet --min-speedup "
                         "(default 3)")
    args = ap.parse_args()

    if bool(args.baseline) != bool(args.new_path):
        print("perf_gate: --baseline and --new must be given together",
              file=sys.stderr)
        return 2
    if bool(args.serve_baseline) != bool(args.serve_new):
        print("perf_gate: --serve-baseline and --serve-new must be "
              "given together", file=sys.stderr)
        return 2
    if not args.baseline and not args.serve_baseline:
        print("perf_gate: nothing to gate (give --baseline/--new "
              "and/or --serve-baseline/--serve-new)", file=sys.stderr)
        return 2

    failures = []

    if args.serve_baseline:
        try:
            failures += check_serve(args.serve_baseline, args.serve_new)
        except (OSError, ValueError, KeyError) as e:
            print(f"perf_gate: {e}", file=sys.stderr)
            return 2

    if not args.baseline:
        if failures:
            print("\nperf_gate FAILED:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("\nperf_gate OK")
        return 0

    try:
        base = load_rows(args.baseline)
        new = load_rows(args.new_path)
    except (OSError, ValueError, KeyError) as e:
        print(f"perf_gate: {e}", file=sys.stderr)
        return 2

    print(f"{'workload':<10} {'mode':<11} {'base':>8} {'new':>8} "
          f"{'ratio':>6}")
    for key, brow in sorted(base.items()):
        nrow = new.get(key)
        if nrow is None:
            failures.append(f"missing point {key} in {args.new_path}")
            continue
        b, n = float(brow["sim_mips"]), float(nrow["sim_mips"])
        if b <= 0:
            failures.append(f"{key}: non-positive baseline MIPS {b}")
            continue
        ratio = n / b
        flag = ""
        if ratio < 1.0 - args.max_drop:
            flag = "  << REGRESSION"
            failures.append(
                f"{key[0]}/{key[1]}: {n:.2f} MIPS vs baseline "
                f"{b:.2f} ({100 * (1 - ratio):.1f}% drop > "
                f"{100 * args.max_drop:.0f}% allowed)")
        print(f"{key[0]:<10} {key[1]:<11} {b:>8.2f} {n:>8.2f} "
              f"{ratio:>6.2f}{flag}")

    # Compiled-engine speedup contract vs the pre-predecode reference,
    # measured within the new record's own host via the baseline's
    # functional/timing structure: compare new functional MIPS against
    # the stored interpreter reference scaled by the host-speed ratio
    # of the timing rows (timing-mode cost changed little with the
    # engine, so it doubles as the host-speed proxy).
    with open(args.baseline) as f:
        ref = json.load(f).get("reference_pre_predecode")
    if ref:
        try:
            ref_rows = {}
            for i, r in enumerate(ref.get("rows", [])):
                if "workload" not in r or "mode" not in r:
                    raise ValueError(
                        f"reference_pre_predecode row {i} in "
                        f"{args.baseline} is missing workload/mode")
                ref_rows[(r["workload"], r["mode"])] = r
            ok_apps = 0
            apps = sorted({w for (w, _) in ref_rows})
            # One geometric-mean host-speed factor across all
            # workloads: per-app timing ratios would double-count
            # run-to-run noise.
            ratios = []
            for w in apps:
                if (w, "timing") not in new:
                    continue
                brow = require_row(base, w, "timing", args.baseline)
                if float(brow["sim_mips"]) > 0:
                    ratios.append(float(new[(w, "timing")]["sim_mips"]) /
                                  float(brow["sim_mips"]))
            host_scale = 1.0
            if ratios:
                prod = 1.0
                for r in ratios:
                    prod *= r
                host_scale = prod ** (1.0 / len(ratios))
            for w in apps:
                ref_timing = float(
                    require_row(ref_rows, w, "timing",
                                f"{args.baseline} (reference_pre_predecode)"
                                )["sim_mips"])
                n = new.get((w, "functional"))
                if n is None or ref_timing <= 0:
                    continue
                need = args.min_speedup * ref_timing * host_scale
                got = float(n["sim_mips"])
                if got >= need:
                    ok_apps += 1
                print(f"speedup {w}: functional {got:.1f} vs scaled "
                      f"interpreter floor {need:.1f} "
                      f"({'ok' if got >= need else 'below'})")
            if ok_apps < args.min_speedup_apps:
                failures.append(
                    f"compiled-engine speedup contract: only {ok_apps} "
                    f"workload(s) reach {args.min_speedup:.0f}x over the "
                    f"pre-predecode interpreter "
                    f"(need {args.min_speedup_apps})")
        except ValueError as e:
            print(f"perf_gate: {e}", file=sys.stderr)
            return 2

    if failures:
        print("\nperf_gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf_gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
