#!/usr/bin/env python3
"""Simulator-speed regression gate.

Compares a fresh ``bench/sim_speed_bench --json`` record against the
checked-in perf-trajectory baseline (BENCH_simspeed.json) and fails if
any (workload, mode) point lost more than --max-drop of its simulated
MIPS.  Run from CI after the test step:

    ./build/bench/sim_speed_bench --json > new.json
    python3 tools/perf_gate.py --baseline BENCH_simspeed.json --new new.json

Only relative regressions are gated; faster-than-baseline points are
reported but never fail.  The baseline file also carries the pre-PR
interpreter reference (``reference_pre_predecode``); when present, the
gate additionally checks the compiled-engine speedup contract: each
workload's functional-mode MIPS must stay >= --min-speedup times the
reference timing-interpreter MIPS on at least --min-speedup-apps
workloads (host-relative, so this only trips when the engine itself
slows down, not when the CI host does).

Exit status: 0 = all points within bounds, 1 = regression, 2 = usage
or schema error.
"""

import argparse
import json
import sys


REQUIRED_KEYS = ("workload", "mode", "sim_mips")


def load_rows(path):
    """Return {(workload, mode): row} from a sim-speed JSON document.

    Tolerant by design: rows may carry any number of unknown keys
    (newer benches append columns — e.g. the cpi_* cycle-accounting
    cells — and the gate must keep reading older and newer reports
    alike), and unknown top-level sections are ignored.  Only the
    REQUIRED_KEYS themselves are validated.
    """
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        raise ValueError(f"{path}: no 'rows' array")
    out = {}
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            raise ValueError(f"{path}: row {i} is not an object")
        missing = [k for k in REQUIRED_KEYS if k not in row]
        if missing:
            raise ValueError(
                f"{path}: row {i} is missing key(s) {', '.join(missing)}")
        key = (row["workload"], row["mode"])
        if key in out:
            raise ValueError(f"{path}: duplicate row {key}")
        out[key] = row
    return out


def require_row(rows, workload, mode, path):
    """Row for (workload, mode), or a readable error instead of KeyError."""
    key = (workload, mode)
    if key not in rows:
        raise ValueError(
            f"missing row (workload={workload}, mode={mode}) in {path}")
    return rows[key]


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="checked-in BENCH_simspeed.json")
    ap.add_argument("--new", required=True, dest="new_path",
                    help="fresh sim_speed_bench --json output")
    ap.add_argument("--max-drop", type=float, default=0.20,
                    help="maximum tolerated fractional sim_mips drop "
                         "per (workload, mode) point (default 0.20)")
    ap.add_argument("--min-speedup", type=float, default=10.0,
                    help="required functional-vs-reference-timing "
                         "speedup (default 10)")
    ap.add_argument("--min-speedup-apps", type=int, default=3,
                    help="workloads that must meet --min-speedup "
                         "(default 3)")
    args = ap.parse_args()

    try:
        base = load_rows(args.baseline)
        new = load_rows(args.new_path)
    except (OSError, ValueError, KeyError) as e:
        print(f"perf_gate: {e}", file=sys.stderr)
        return 2

    failures = []
    print(f"{'workload':<10} {'mode':<11} {'base':>8} {'new':>8} "
          f"{'ratio':>6}")
    for key, brow in sorted(base.items()):
        nrow = new.get(key)
        if nrow is None:
            failures.append(f"missing point {key} in {args.new_path}")
            continue
        b, n = float(brow["sim_mips"]), float(nrow["sim_mips"])
        if b <= 0:
            failures.append(f"{key}: non-positive baseline MIPS {b}")
            continue
        ratio = n / b
        flag = ""
        if ratio < 1.0 - args.max_drop:
            flag = "  << REGRESSION"
            failures.append(
                f"{key[0]}/{key[1]}: {n:.2f} MIPS vs baseline "
                f"{b:.2f} ({100 * (1 - ratio):.1f}% drop > "
                f"{100 * args.max_drop:.0f}% allowed)")
        print(f"{key[0]:<10} {key[1]:<11} {b:>8.2f} {n:>8.2f} "
              f"{ratio:>6.2f}{flag}")

    # Compiled-engine speedup contract vs the pre-predecode reference,
    # measured within the new record's own host via the baseline's
    # functional/timing structure: compare new functional MIPS against
    # the stored interpreter reference scaled by the host-speed ratio
    # of the timing rows (timing-mode cost changed little with the
    # engine, so it doubles as the host-speed proxy).
    with open(args.baseline) as f:
        ref = json.load(f).get("reference_pre_predecode")
    if ref:
        try:
            ref_rows = {}
            for i, r in enumerate(ref.get("rows", [])):
                if "workload" not in r or "mode" not in r:
                    raise ValueError(
                        f"reference_pre_predecode row {i} in "
                        f"{args.baseline} is missing workload/mode")
                ref_rows[(r["workload"], r["mode"])] = r
            ok_apps = 0
            apps = sorted({w for (w, _) in ref_rows})
            # One geometric-mean host-speed factor across all
            # workloads: per-app timing ratios would double-count
            # run-to-run noise.
            ratios = []
            for w in apps:
                if (w, "timing") not in new:
                    continue
                brow = require_row(base, w, "timing", args.baseline)
                if float(brow["sim_mips"]) > 0:
                    ratios.append(float(new[(w, "timing")]["sim_mips"]) /
                                  float(brow["sim_mips"]))
            host_scale = 1.0
            if ratios:
                prod = 1.0
                for r in ratios:
                    prod *= r
                host_scale = prod ** (1.0 / len(ratios))
            for w in apps:
                ref_timing = float(
                    require_row(ref_rows, w, "timing",
                                f"{args.baseline} (reference_pre_predecode)"
                                )["sim_mips"])
                n = new.get((w, "functional"))
                if n is None or ref_timing <= 0:
                    continue
                need = args.min_speedup * ref_timing * host_scale
                got = float(n["sim_mips"])
                if got >= need:
                    ok_apps += 1
                print(f"speedup {w}: functional {got:.1f} vs scaled "
                      f"interpreter floor {need:.1f} "
                      f"({'ok' if got >= need else 'below'})")
            if ok_apps < args.min_speedup_apps:
                failures.append(
                    f"compiled-engine speedup contract: only {ok_apps} "
                    f"workload(s) reach {args.min_speedup:.0f}x over the "
                    f"pre-predecode interpreter "
                    f"(need {args.min_speedup_apps})")
        except ValueError as e:
            print(f"perf_gate: {e}", file=sys.stderr)
            return 2

    if failures:
        print("\nperf_gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf_gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
