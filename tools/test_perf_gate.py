#!/usr/bin/env python3
"""Unit/smoke tests for tools/perf_gate.py.

Runs the gate as a subprocess against synthetic baseline/new JSON
documents and checks the exit-status contract:

    0 = within bounds, 1 = regression / missing point, 2 = schema error

Schema errors must produce a readable one-line message, never a
KeyError traceback.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

GATE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "perf_gate.py")


def rows_doc(points, reference=None):
    doc = {"rows": [{"workload": w, "mode": m, "sim_mips": v}
                    for (w, m, v) in points]}
    if reference is not None:
        doc["reference_pre_predecode"] = {
            "rows": [{"workload": w, "mode": m, "sim_mips": v}
                     for (w, m, v) in reference]}
    return doc


def run_gate(baseline_doc, new_doc, *extra):
    with tempfile.TemporaryDirectory() as tmp:
        bpath = os.path.join(tmp, "baseline.json")
        npath = os.path.join(tmp, "new.json")
        with open(bpath, "w") as f:
            json.dump(baseline_doc, f)
        with open(npath, "w") as f:
            json.dump(new_doc, f)
        return subprocess.run(
            [sys.executable, GATE, "--baseline", bpath, "--new", npath,
             *extra],
            capture_output=True, text=True)


def serve_row(mode, jobs_per_s, p99_us, jobs=1000, completed=None,
              failed=0, rejected=0):
    if completed is None:
        completed = jobs - failed - rejected
    return {"workload": "serve_mixed", "mode": mode, "jobs": jobs,
            "completed": completed, "failed": failed,
            "rejected": rejected, "jobs_per_s": jobs_per_s,
            "p99_us": p99_us}


def serve_doc(rows, slo=(100.0, 50000.0)):
    doc = {"title": "serve-load", "rows": rows}
    if slo is not None:
        doc["serve"] = {"min_jobs_per_s": slo[0], "max_p99_us": slo[1]}
    return doc


SERVE_BASE = [serve_row("open", 900.0, 2000000.0),
              serve_row("paced", 450.0, 8000.0)]


def run_serve_gate(baseline_doc, new_doc, *extra):
    with tempfile.TemporaryDirectory() as tmp:
        bpath = os.path.join(tmp, "serve_baseline.json")
        npath = os.path.join(tmp, "serve_new.json")
        with open(bpath, "w") as f:
            json.dump(baseline_doc, f)
        with open(npath, "w") as f:
            json.dump(new_doc, f)
        return subprocess.run(
            [sys.executable, GATE, "--serve-baseline", bpath,
             "--serve-new", npath, *extra],
            capture_output=True, text=True)


BASE_POINTS = [("clustalw", "functional", 100.0),
               ("clustalw", "timing", 10.0),
               ("hmmer", "functional", 120.0),
               ("hmmer", "timing", 12.0)]


class PerfGateTest(unittest.TestCase):
    def test_identical_runs_pass(self):
        r = run_gate(rows_doc(BASE_POINTS), rows_doc(BASE_POINTS))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("perf_gate OK", r.stdout)

    def test_small_drop_within_tolerance_passes(self):
        new = [(w, m, v * 0.9) for (w, m, v) in BASE_POINTS]
        r = run_gate(rows_doc(BASE_POINTS), rows_doc(new))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_regression_fails(self):
        new = [(w, m, v * 0.5) for (w, m, v) in BASE_POINTS]
        r = run_gate(rows_doc(BASE_POINTS), rows_doc(new))
        self.assertEqual(r.returncode, 1)
        self.assertIn("REGRESSION", r.stdout)

    def test_missing_point_fails(self):
        new = BASE_POINTS[:-1]
        r = run_gate(rows_doc(BASE_POINTS), rows_doc(new))
        self.assertEqual(r.returncode, 1)
        self.assertIn("missing point", r.stderr)

    def test_unknown_keys_and_sections_are_tolerated(self):
        # Newer benches append columns (e.g. cpi_* cycle-accounting
        # cells) and extra top-level sections; the gate must ignore
        # what it does not know about in either document.
        base = rows_doc(BASE_POINTS)
        base["cpi_report"] = {"anything": [1, 2, 3]}
        new = rows_doc(BASE_POINTS)
        for row in new["rows"]:
            row["cpi_completing"] = 1234
            row["cpi_branch_flush"] = 99
            row["future_column"] = "text"
        r = run_gate(base, new)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("perf_gate OK", r.stdout)

    def test_non_object_row_is_readable_schema_error(self):
        doc = rows_doc(BASE_POINTS)
        doc["rows"].append(42)
        r = run_gate(doc, rows_doc(BASE_POINTS))
        self.assertEqual(r.returncode, 2)
        self.assertIn("is not an object", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_row_without_sim_mips_is_schema_error(self):
        doc = rows_doc(BASE_POINTS)
        del doc["rows"][0]["sim_mips"]
        r = run_gate(doc, rows_doc(BASE_POINTS))
        self.assertEqual(r.returncode, 2)
        self.assertIn("missing key(s) sim_mips", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_speedup_contract_passes_when_fast_enough(self):
        base = rows_doc(BASE_POINTS,
                        reference=[("clustalw", "timing", 5.0),
                                   ("hmmer", "timing", 6.0)])
        r = run_gate(base, rows_doc(BASE_POINTS), "--min-speedup-apps", "2")
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("speedup clustalw", r.stdout)

    def test_speedup_contract_fails_when_slow(self):
        base = rows_doc(BASE_POINTS,
                        reference=[("clustalw", "timing", 50.0),
                                   ("hmmer", "timing", 60.0)])
        r = run_gate(base, rows_doc(BASE_POINTS), "--min-speedup-apps", "2")
        self.assertEqual(r.returncode, 1)
        self.assertIn("speedup contract", r.stderr)

    def test_serve_within_slo_passes(self):
        r = run_serve_gate(serve_doc(SERVE_BASE), serve_doc(SERVE_BASE))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("perf_gate OK", r.stdout)

    def test_serve_throughput_below_floor_fails(self):
        new = [serve_row("open", 50.0, 2000000.0),
               serve_row("paced", 25.0, 8000.0)]
        r = run_serve_gate(serve_doc(SERVE_BASE), serve_doc(new))
        self.assertEqual(r.returncode, 1)
        self.assertIn("below SLO floor", r.stderr)

    def test_serve_p99_above_ceiling_fails(self):
        new = [serve_row("open", 900.0, 2000000.0),
               serve_row("paced", 450.0, 90000.0)]
        r = run_serve_gate(serve_doc(SERVE_BASE), serve_doc(new))
        self.assertEqual(r.returncode, 1)
        self.assertIn("above SLO ceiling", r.stderr)

    def test_serve_dropped_or_failed_jobs_fail(self):
        new = [serve_row("open", 900.0, 2000000.0, jobs=1000,
                         completed=990, failed=7),
               serve_row("paced", 450.0, 8000.0)]
        r = run_serve_gate(serve_doc(SERVE_BASE), serve_doc(new))
        self.assertEqual(r.returncode, 1)
        self.assertIn("7 failed", r.stderr)
        self.assertIn("3 dropped", r.stderr)

    def test_serve_baseline_without_slo_section_is_schema_error(self):
        r = run_serve_gate(serve_doc(SERVE_BASE, slo=None),
                           serve_doc(SERVE_BASE))
        self.assertEqual(r.returncode, 2)
        self.assertIn("no 'serve' SLO section", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_serve_new_missing_paced_row_is_schema_error(self):
        r = run_serve_gate(serve_doc(SERVE_BASE),
                           serve_doc([serve_row("open", 900.0,
                                                2000000.0)]))
        self.assertEqual(r.returncode, 2)
        self.assertIn("mode='paced'", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_serve_rows_tolerate_extra_columns(self):
        rows = [dict(r, p50_us=100, mean_us=1.5, future="x")
                for r in SERVE_BASE]
        r = run_serve_gate(serve_doc(SERVE_BASE), serve_doc(rows))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_both_pairs_gate_together(self):
        # A serve regression must fail the run even when the sim-speed
        # pair passes.
        with tempfile.TemporaryDirectory() as tmp:
            paths = {}
            docs = {"b": rows_doc(BASE_POINTS),
                    "n": rows_doc(BASE_POINTS),
                    "sb": serve_doc(SERVE_BASE),
                    "sn": serve_doc([serve_row("open", 50.0, 2000000.0),
                                     serve_row("paced", 25.0, 8000.0)])}
            for k, doc in docs.items():
                paths[k] = os.path.join(tmp, k + ".json")
                with open(paths[k], "w") as f:
                    json.dump(doc, f)
            r = subprocess.run(
                [sys.executable, GATE, "--baseline", paths["b"],
                 "--new", paths["n"], "--serve-baseline", paths["sb"],
                 "--serve-new", paths["sn"]],
                capture_output=True, text=True)
        self.assertEqual(r.returncode, 1)
        self.assertIn("below SLO floor", r.stderr)
        self.assertIn("perf_gate FAILED", r.stderr)

    def test_unpaired_serve_flag_is_usage_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "sb.json")
            with open(path, "w") as f:
                json.dump(serve_doc(SERVE_BASE), f)
            r = subprocess.run(
                [sys.executable, GATE, "--serve-baseline", path],
                capture_output=True, text=True)
        self.assertEqual(r.returncode, 2)
        self.assertIn("must be given together", r.stderr)

    def test_reference_missing_timing_row_is_readable_error(self):
        # The new record has a timing row for a workload the baseline
        # 'rows' lack: must be a message, not a KeyError.
        base = rows_doc(BASE_POINTS,
                        reference=[("blast", "timing", 5.0)])
        new = rows_doc(BASE_POINTS + [("blast", "timing", 7.0)])
        r = run_gate(base, new)
        self.assertEqual(r.returncode, 2)
        self.assertIn("missing row (workload=blast, mode=timing)",
                      r.stderr)
        self.assertNotIn("Traceback", r.stderr)


if __name__ == "__main__":
    unittest.main()
