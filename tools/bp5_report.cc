/**
 * @file
 * bp5-report: render and diff POWER5-style CPI stacks from run
 * manifests (the JSON Lines files bp5-trace and the bench drivers
 * append).  Every manifest row carrying the exact per-component
 * `cpi_*` cycle cells becomes one stack.
 *
 *   bp5-report MANIFEST                render stacks as text bars
 *   bp5-report --json MANIFEST         one JSON Lines record per stack
 *   bp5-report --diff BASE NEW         component-by-component deltas
 *   bp5-report --diff A B --fail-on-diff   exit 1 on any nonzero delta
 *   bp5-report --latency MANIFEST      latency percentiles (p50/95/99)
 *
 * --latency aggregates every row carrying a `lat_us` cell (the
 * per-job records bp5-serve appends) into a log2 histogram and
 * reports count, mean and tail percentiles.
 *
 * Diffed runs are matched by identity (tool, workload, variant,
 * input, label) in file order; repeated identities pair up by
 * occurrence.  Exit status: 0 ok, 1 diff found under --fail-on-diff
 * or I/O failure, 2 usage or parse errors.
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/cpi_stack.h"
#include "obs/json.h"
#include "sim/counters.h"
#include "support/histogram.h"
#include "support/logging.h"
#include "support/result.h"

using namespace bp5;

namespace {

struct Options
{
    std::string manifest;
    std::string diffBase;
    std::string diffNew;
    bool diff = false;
    bool json = false;
    bool failOnDiff = false;
    bool latency = false;
    unsigned barWidth = 40;
};

void
usage()
{
    std::fputs("usage: bp5-report [--json] [--bar-width=N] MANIFEST\n"
               "       bp5-report --diff BASE NEW [--json] "
               "[--fail-on-diff]\n"
               "       bp5-report --latency [--json] MANIFEST\n",
               stderr);
}

/** One manifest row that carried a CPI stack. */
struct StackRecord
{
    std::string identity; ///< tool|workload|variant|input|label
    std::string display;  ///< human form of the identity
    obs::CpiStack stack;
    double ipc = 0.0;
};

std::string
stringField(const obs::JsonValue &row, const char *key)
{
    const obs::JsonValue *v = row.find(key);
    return v != nullptr && v->isString() ? v->str : std::string("-");
}

uint64_t
numberField(const obs::JsonValue &row, const char *key)
{
    const obs::JsonValue *v = row.find(key);
    return v != nullptr && v->isNumber() ? uint64_t(v->number) : 0;
}

/**
 * Collect the CPI-carrying rows of one manifest (JSON Lines).
 * @return false on I/O or parse errors (reported to stderr).
 */
bool
loadStacks(const std::string &path, std::vector<StackRecord> &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bp5-report: cannot open %s\n", path.c_str());
        return false;
    }
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        obs::JsonValue doc;
        std::string err;
        if (!obs::parseJson(line, doc, err)) {
            std::fprintf(stderr, "bp5-report: %s:%zu: %s\n", path.c_str(),
                         lineno, err.c_str());
            return false;
        }
        const obs::JsonValue *rows = doc.find("rows");
        if (rows == nullptr || !rows->isArray())
            continue;
        for (const obs::JsonValue &row : rows->items) {
            if (!row.isObject() ||
                row.find("cpi_completing") == nullptr)
                continue;
            StackRecord rec;
            std::string tool = stringField(row, "tool");
            std::string workload = stringField(row, "workload");
            std::string variant = stringField(row, "variant");
            std::string input = stringField(row, "input");
            std::string label = stringField(row, "label");
            rec.identity = tool + "|" + workload + "|" + variant + "|" +
                           input + "|" + label;
            rec.display = workload + " / " + variant + " (" + input + ")";
            if (label != "-")
                rec.display += " [" + label + "]";
            for (size_t i = 0; i < sim::kNumCpiComponents; ++i) {
                std::string key =
                    std::string("cpi_") +
                    sim::cpiComponentKey(sim::CpiComponent(i));
                rec.stack.cycles[i] = numberField(row, key.c_str());
            }
            rec.stack.totalCycles = numberField(row, "cycles");
            rec.stack.instructions = numberField(row, "instructions");
            const obs::JsonValue *ipc = row.find("ipc");
            rec.ipc = ipc != nullptr && ipc->isNumber() ? ipc->number : 0.0;
            out.push_back(std::move(rec));
        }
    }
    return true;
}

int
render(const Options &opts)
{
    std::vector<StackRecord> recs;
    if (!loadStacks(opts.manifest, recs))
        return 2;
    if (recs.empty()) {
        std::fprintf(stderr, "bp5-report: no CPI rows in %s\n",
                     opts.manifest.c_str());
        return 1;
    }
    if (opts.json) {
        std::vector<support::ResultRow> rows;
        for (const StackRecord &r : recs) {
            support::ResultRow row;
            row.set("run", r.display)
                .set("cycles", r.stack.totalCycles)
                .set("instructions", r.stack.instructions)
                .set("ipc", r.ipc)
                .set("consistent", r.stack.consistent() ? "yes" : "no");
            for (size_t i = 0; i < sim::kNumCpiComponents; ++i) {
                auto comp = sim::CpiComponent(i);
                row.set(std::string("cpi_") + sim::cpiComponentKey(comp),
                        r.stack.cycles[i]);
                row.setPct(std::string("share_") +
                               sim::cpiComponentKey(comp),
                           r.stack.share(comp));
            }
            rows.push_back(std::move(row));
        }
        std::fputs(support::emitJsonLine(rows, "cpi-report").c_str(),
                   stdout);
        return 0;
    }
    for (const StackRecord &r : recs) {
        std::printf("%s\n", r.display.c_str());
        std::fputs(obs::renderCpiStack(r.stack, opts.barWidth).c_str(),
                   stdout);
        std::printf("\n");
    }
    return 0;
}

/**
 * Aggregate every manifest row carrying a `lat_us` cell into one log2
 * histogram and report the tail (serving-SLO view of a manifest).
 */
int
latencyReport(const Options &opts)
{
    std::ifstream in(opts.manifest);
    if (!in) {
        std::fprintf(stderr, "bp5-report: cannot open %s\n",
                     opts.manifest.c_str());
        return 2;
    }
    support::Log2Histogram h;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        obs::JsonValue doc;
        std::string err;
        if (!obs::parseJson(line, doc, err)) {
            std::fprintf(stderr, "bp5-report: %s:%zu: %s\n",
                         opts.manifest.c_str(), lineno, err.c_str());
            return 2;
        }
        const obs::JsonValue *rows = doc.find("rows");
        if (rows == nullptr || !rows->isArray())
            continue;
        for (const obs::JsonValue &row : rows->items) {
            if (!row.isObject())
                continue;
            const obs::JsonValue *lat = row.find("lat_us");
            if (lat != nullptr && lat->isNumber() && lat->number >= 0)
                h.add(uint64_t(lat->number));
        }
    }
    if (h.total() == 0) {
        std::fprintf(stderr, "bp5-report: no lat_us rows in %s\n",
                     opts.manifest.c_str());
        return 1;
    }
    if (opts.json) {
        support::ResultRow row;
        row.set("jobs", h.total())
            .set("mean_us", h.mean(), 1)
            .set("min_us", h.min())
            .set("max_us", h.max())
            .set("p50_us", h.percentile(50))
            .set("p95_us", h.percentile(95))
            .set("p99_us", h.percentile(99));
        std::fputs(
            support::emitJsonLine({row}, "latency-report").c_str(),
            stdout);
        return 0;
    }
    std::printf("latency over %" PRIu64 " job(s): mean %.1f us, "
                "p50 %" PRIu64 ", p95 %" PRIu64 ", p99 %" PRIu64 " us\n",
                h.total(), h.mean(), h.percentile(50), h.percentile(95),
                h.percentile(99));
    std::fputs(h.toText(opts.barWidth).c_str(), stdout);
    return 0;
}

int
diff(const Options &opts)
{
    std::vector<StackRecord> base, fresh;
    if (!loadStacks(opts.diffBase, base) ||
        !loadStacks(opts.diffNew, fresh))
        return 2;

    // Pair records by identity in occurrence order.
    std::map<std::string, std::vector<size_t>> baseByKey;
    for (size_t i = 0; i < base.size(); ++i)
        baseByKey[base[i].identity].push_back(i);
    std::map<std::string, size_t> used;

    bool anyDelta = false;
    uint64_t unmatched = 0;
    std::vector<support::ResultRow> rows;
    for (const StackRecord &n : fresh) {
        auto it = baseByKey.find(n.identity);
        size_t &cursor = used[n.identity];
        if (it == baseByKey.end() || cursor >= it->second.size()) {
            ++unmatched;
            std::fprintf(stderr,
                         "bp5-report: no baseline match for %s\n",
                         n.display.c_str());
            continue;
        }
        const StackRecord &b = base[it->second[cursor++]];

        support::ResultRow row;
        int64_t dCycles = int64_t(n.stack.totalCycles) -
                          int64_t(b.stack.totalCycles);
        row.set("run", n.display)
            .set("base_cycles", b.stack.totalCycles)
            .set("new_cycles", n.stack.totalCycles)
            .set("delta_cycles", dCycles)
            .set("delta_ipc", n.ipc - b.ipc, 4);
        bool rowDelta = dCycles != 0;
        for (size_t i = 0; i < sim::kNumCpiComponents; ++i) {
            auto comp = sim::CpiComponent(i);
            int64_t d = int64_t(n.stack.cycles[i]) -
                        int64_t(b.stack.cycles[i]);
            row.set(std::string("d_cpi_") + sim::cpiComponentKey(comp), d);
            rowDelta = rowDelta || d != 0;
        }
        anyDelta = anyDelta || rowDelta;
        rows.push_back(std::move(row));

        if (!opts.json) {
            std::printf("%s\n", n.display.c_str());
            std::printf("  %-14s %12s %12s %12s %9s\n", "component",
                        "base", "new", "delta", "d-share");
            for (size_t i = 0; i < sim::kNumCpiComponents; ++i) {
                auto comp = sim::CpiComponent(i);
                int64_t d = int64_t(n.stack.cycles[i]) -
                            int64_t(b.stack.cycles[i]);
                if (d == 0 && n.stack.cycles[i] == 0)
                    continue;
                std::printf("  %-14s %12" PRIu64 " %12" PRIu64
                            " %+12" PRId64 " %+8.2fpp\n",
                            sim::cpiComponentLabel(comp),
                            b.stack.cycles[i], n.stack.cycles[i], d,
                            100.0 * (n.stack.share(comp) -
                                     b.stack.share(comp)));
            }
            std::printf("  %-14s %12" PRIu64 " %12" PRIu64 " %+12" PRId64
                        "  (ipc %+.4f)\n\n",
                        "total", b.stack.totalCycles, n.stack.totalCycles,
                        dCycles, n.ipc - b.ipc);
        }
    }
    if (opts.json)
        std::fputs(support::emitJsonLine(rows, "cpi-diff").c_str(),
                   stdout);
    if (rows.empty()) {
        std::fprintf(stderr, "bp5-report: nothing to diff\n");
        return 1;
    }
    if (unmatched != 0 && !opts.json)
        std::printf("%" PRIu64 " run(s) without a baseline match\n",
                    unmatched);
    if (opts.failOnDiff && (anyDelta || unmatched != 0)) {
        std::fprintf(stderr, "bp5-report: CPI stacks differ\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
        };
        if (a == "--diff") {
            opts.diff = true;
        } else if (a == "--latency") {
            opts.latency = true;
        } else if (a == "--json") {
            opts.json = true;
        } else if (a == "--fail-on-diff") {
            opts.failOnDiff = true;
        } else if (const char *v = val("--bar-width=")) {
            opts.barWidth = unsigned(std::strtoul(v, nullptr, 10));
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            usage();
            return 2;
        } else {
            positional.push_back(a);
        }
    }
    if (opts.diff) {
        if (positional.size() != 2) {
            usage();
            return 2;
        }
        opts.diffBase = positional[0];
        opts.diffNew = positional[1];
        return diff(opts);
    }
    if (positional.size() != 1) {
        usage();
        return 2;
    }
    opts.manifest = positional[0];
    return opts.latency ? latencyReport(opts) : render(opts);
}
