/**
 * @file
 * bp5-serve: sharded batch-serving daemon for alignment/simulation
 * jobs.  Accepts line-delimited JSON job requests — over a Unix-domain
 * stream socket or from a file — and schedules them across a pool of
 * reusable simulated machines (see src/serve/).
 *
 *   bp5-serve --socket=/tmp/bp5.sock [--shards=N] [--queue-depth=N]
 *             [--batch=N] [--manifest=PATH]
 *   bp5-serve --jobs=FILE [--results=PATH] [--json] ...
 *
 * Socket protocol: each request line yields exactly one response line
 * on the same connection (see src/serve/job.h for the grammar).  Two
 * control commands ride the same channel:
 *
 *   {"cmd": "stats"}     -> one stats snapshot line
 *   {"cmd": "shutdown"}  -> ack line; the daemon stops accepting,
 *                           drains queued and in-flight jobs, and
 *                           exits 0 (graceful drain; SIGINT/SIGTERM
 *                           do the same)
 *
 * Admission control is reject-with-error: when the bounded queue is
 * full, the job is answered immediately with
 * {"ok": false, "error": "queue full ..."} instead of queuing.  The
 * offline --jobs mode uses blocking admission (backpressure) instead,
 * so a file of N jobs always yields N results.
 */

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <sys/socket.h>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/server.h"
#include "serve/socket.h"
#include "support/logging.h"

using namespace bp5;

namespace {

struct Options
{
    std::string socketPath;
    std::string jobsFile;
    std::string resultsPath;
    std::string manifestPath;
    unsigned shards = 0;
    size_t queueDepth = 1024;
    unsigned batchMax = 32;
    bool json = false;
};

void
usage()
{
    std::fputs(
        "usage: bp5-serve --socket=PATH [--shards=N] [--queue-depth=N]\n"
        "                 [--batch=N] [--manifest=PATH]\n"
        "       bp5-serve --jobs=FILE [--results=PATH] [--json]\n"
        "                 [--shards=N] [--queue-depth=N] [--batch=N]\n"
        "                 [--manifest=PATH]\n",
        stderr);
}

bool
parseArg(const char *arg, const char *name, std::string &out)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    out = arg + n + 1;
    return true;
}

bool
parseArg(const char *arg, const char *name, uint64_t &out)
{
    std::string s;
    if (!parseArg(arg, name, s))
        return false;
    out = std::strtoull(s.c_str(), nullptr, 0);
    return true;
}

/** The listening socket, reachable from the signal handler. */
std::atomic<int> gListenFd{-1};

void
onSignal(int)
{
    int fd = gListenFd.load(std::memory_order_relaxed);
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR); // async-signal-safe; unblocks accept
}

/** Stats snapshot as one response line. */
std::string
statsLine(const serve::Server &server)
{
    serve::ServerStats s = server.stats();
    return strprintf("{\"ok\": true, \"accepted\": %llu, "
                     "\"rejected\": %llu, \"completed\": %llu, "
                     "\"failed\": %llu, \"batches\": %llu, "
                     "\"config_switches\": %llu, \"queued\": %llu}\n",
                     (unsigned long long)s.accepted,
                     (unsigned long long)s.rejected,
                     (unsigned long long)s.completed,
                     (unsigned long long)s.failed,
                     (unsigned long long)s.batches,
                     (unsigned long long)s.configSwitches,
                     (unsigned long long)(s.accepted - s.completed -
                                          s.failed));
}

/**
 * One client connection.  Kept alive (fd open) until every job this
 * connection admitted has been answered, so shard-thread callbacks
 * never write to a recycled descriptor.
 */
struct Conn
{
    explicit Conn(int fd) : fd(fd) {}

    void
    send(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(writeMu);
        serve::writeAll(fd, line); // peer may be gone; best effort
    }

    void
    jobDone()
    {
        std::lock_guard<std::mutex> lock(writeMu);
        if (--pending == 0)
            idle.notify_all();
    }

    void
    waitIdle()
    {
        std::unique_lock<std::mutex> lock(writeMu);
        idle.wait(lock, [this] { return pending == 0; });
    }

    int fd;
    std::mutex writeMu;
    std::condition_variable idle;
    uint64_t pending = 0; ///< admitted jobs not yet answered
};

/** True when @p line is a control command ("cmd" present). */
bool
controlCommand(const std::string &line, std::string &cmd)
{
    obs::JsonValue doc;
    std::string err;
    if (!obs::parseJson(line, doc, err) || !doc.isObject())
        return false;
    const obs::JsonValue *v = doc.find("cmd");
    if (v == nullptr || !v->isString())
        return false;
    cmd = v->str;
    return true;
}

/** Serve one connection; returns when the client disconnects. */
void
serveConnection(std::shared_ptr<Conn> conn, serve::Server &server,
                std::atomic<bool> &shutdownRequested)
{
    serve::LineReader reader(conn->fd);
    std::string line;
    while (reader.readLine(line)) {
        if (line.empty())
            continue;

        std::string cmd;
        if (controlCommand(line, cmd)) {
            if (cmd == "stats") {
                conn->send(statsLine(server));
            } else if (cmd == "shutdown") {
                conn->send("{\"ok\": true, \"draining\": true}\n");
                shutdownRequested.store(true);
                onSignal(0); // unblock the accept loop
            } else {
                conn->send(serve::resultLine(serve::errorResult(
                    0, "unknown command '" + cmd + "'")));
            }
            continue;
        }

        serve::JobSpec spec;
        std::string err;
        if (!serve::parseJobLine(line, spec, err)) {
            conn->send(serve::resultLine(serve::errorResult(0, err)));
            continue;
        }

        {
            std::lock_guard<std::mutex> lock(conn->writeMu);
            ++conn->pending;
        }
        bool admitted = server.submit(
            spec,
            [conn](const serve::JobResult &r) {
                conn->send(serve::resultLine(r));
                conn->jobDone();
            },
            /*block=*/false);
        if (!admitted) {
            conn->send(serve::resultLine(serve::errorResult(
                spec.id,
                strprintf("queue full (depth %zu), job rejected",
                          server.config().queueDepth))));
            conn->jobDone();
        }
    }
    // EOF from the client: answer everything already admitted before
    // letting the descriptor go.
    conn->waitIdle();
    serve::closeFd(conn->fd);
}

int
runSocket(const Options &opts)
{
    serve::ServerConfig cfg;
    cfg.shards = opts.shards;
    cfg.queueDepth = opts.queueDepth;
    cfg.batchMax = opts.batchMax;
    cfg.manifestPath = opts.manifestPath;
    serve::Server server(cfg);

    serve::UnixListener listener;
    std::string err;
    if (!listener.listen(opts.socketPath, err))
        fatal("%s", err.c_str());
    gListenFd.store(listener.fd());
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    inform("bp5-serve: listening on %s (%u shards, queue depth %zu, "
           "batch %u)",
           opts.socketPath.c_str(), server.shards(), cfg.queueDepth,
           cfg.batchMax);

    std::atomic<bool> shutdownRequested{false};
    std::vector<std::thread> connThreads;
    std::vector<std::weak_ptr<Conn>> conns;
    std::mutex connsMu;

    for (;;) {
        int fd = listener.accept();
        if (fd < 0)
            break; // shut down (signal or shutdown command)
        auto conn = std::make_shared<Conn>(fd);
        {
            std::lock_guard<std::mutex> lock(connsMu);
            conns.push_back(conn);
        }
        connThreads.emplace_back([conn, &server, &shutdownRequested] {
            serveConnection(conn, server, shutdownRequested);
        });
    }

    gListenFd.store(-1);
    listener.close();

    // Stop admitting and let queued + in-flight jobs complete; their
    // responses still flow to the (still-open) connections.
    server.drain();

    // Unblock connection readers whose clients are idle but attached.
    {
        std::lock_guard<std::mutex> lock(connsMu);
        for (auto &weak : conns) {
            if (auto conn = weak.lock())
                ::shutdown(conn->fd, SHUT_RD);
        }
    }
    for (std::thread &t : connThreads)
        t.join();

    serve::ServerStats s = server.stats();
    inform("bp5-serve: drained: %llu completed, %llu rejected, "
           "%llu failed",
           (unsigned long long)s.completed,
           (unsigned long long)s.rejected, (unsigned long long)s.failed);
    if (opts.json) {
        std::string out =
            support::emitJsonLine({server.summaryRow()}, "serve-summary");
        std::fputs(out.c_str(), stdout);
    }
    return s.failed == 0 ? 0 : 1;
}

int
runOffline(const Options &opts)
{
    std::ifstream in(opts.jobsFile);
    if (!in)
        fatal("cannot open jobs file %s", opts.jobsFile.c_str());

    FILE *out = stdout;
    if (!opts.resultsPath.empty() && opts.resultsPath != "-") {
        out = std::fopen(opts.resultsPath.c_str(), "w");
        if (out == nullptr)
            fatal("cannot open results file %s",
                  opts.resultsPath.c_str());
    }

    serve::ServerConfig cfg;
    cfg.shards = opts.shards;
    cfg.queueDepth = opts.queueDepth;
    cfg.batchMax = opts.batchMax;
    cfg.manifestPath = opts.manifestPath;
    serve::Server server(cfg);

    std::mutex outMu;
    auto emit = [&](const serve::JobResult &r) {
        std::string line = serve::resultLine(r);
        std::lock_guard<std::mutex> lock(outMu);
        std::fwrite(line.data(), 1, line.size(), out);
    };

    std::string line;
    uint64_t malformed = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        serve::JobSpec spec;
        std::string err;
        if (!serve::parseJobLine(line, spec, err)) {
            ++malformed;
            emit(serve::errorResult(0, err));
            continue;
        }
        // Blocking admission: a job file is a closed workload, so
        // backpressure (not rejection) is the right admission policy.
        server.submit(spec, emit, /*block=*/true);
    }
    server.drain();

    if (out != stdout)
        std::fclose(out);

    serve::ServerStats s = server.stats();
    inform("bp5-serve: %llu completed, %llu failed, %llu malformed",
           (unsigned long long)s.completed, (unsigned long long)s.failed,
           (unsigned long long)malformed);
    if (opts.json) {
        std::string doc =
            support::emitJsonLine({server.summaryRow()}, "serve-summary");
        std::fputs(doc.c_str(), stdout);
    }
    return s.failed == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        uint64_t n = 0;
        if (parseArg(arg, "--socket", opts.socketPath) ||
            parseArg(arg, "--jobs", opts.jobsFile) ||
            parseArg(arg, "--results", opts.resultsPath) ||
            parseArg(arg, "--manifest", opts.manifestPath)) {
            continue;
        } else if (parseArg(arg, "--shards", n)) {
            opts.shards = unsigned(n);
        } else if (parseArg(arg, "--queue-depth", n)) {
            if (n == 0)
                fatal("--queue-depth must be positive");
            opts.queueDepth = size_t(n);
        } else if (parseArg(arg, "--batch", n)) {
            if (n == 0)
                fatal("--batch must be positive");
            opts.batchMax = unsigned(n);
        } else if (std::strcmp(arg, "--json") == 0) {
            opts.json = true;
        } else {
            usage();
            fatal("unknown argument '%s'", arg);
        }
    }
    if (opts.socketPath.empty() == opts.jobsFile.empty()) {
        usage();
        fatal("exactly one of --socket and --jobs is required");
    }
    return opts.socketPath.empty() ? runOffline(opts) : runSocket(opts);
}
