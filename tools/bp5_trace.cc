/**
 * @file
 * bp5-trace: observability front-end for the simulated POWER5.  Runs
 * one kernel (canned deterministic inputs) or one full workload, with
 * any combination of trace sinks attached:
 *
 *   --perfetto=PATH  Chrome trace-event JSON (open in ui.perfetto.dev)
 *   --konata=PATH    Konata pipeline log (github.com/shioyadan/Konata)
 *   --pmu-csv=PATH   per-interval PMU counter series (CSV)
 *
 * Selection:
 *   --kernel=NAME    forward_pass | dropgsw | P7Viterbi |
 *                    SEMI_G_ALIGN | sankoff
 *   --app=NAME       Blast | Clustalw | Fasta | Hmmer (workload mode)
 *   --variant=NAME   Original | hand isel | hand max | comp. isel |
 *                    comp. max | Combination (punctuation optional)
 *   --machine=NAME   baseline | btac | fxu3 | fxu4 | enhanced
 *   --memsys=NAME    classic | lsq | lsq+nextline | lsq+stride
 *                    (memory-system model; lsq adds finite queues,
 *                    store forwarding and speculative disambiguation,
 *                    the +kind forms attach an L1D prefetcher)
 *   --klass=A|B|C    input class (app mode)
 *
 * Sampling and output:
 *   --interval=N     PMU sampling interval in cycles (default 10000)
 *   --sites          per-branch-site series, joined with the static
 *                    branch classes of the binary (table output)
 *   --stalls         CPI stack, per-PC stall attribution joined with
 *                    the static loop analysis, latency histograms
 *   --budget=N       instruction budget (default 2000000)
 *   --seed=N         input-generation seed (default 42)
 *   --max-events=N   event cap for the perfetto/konata writers
 *   --json           machine-readable output (JSON Lines) on stdout
 *   --manifest=PATH  append the run manifest ("-" = stdout)
 *
 * Exit status: 0 on success, 2 on usage errors.
 */

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/branch_class.h"
#include "analysis/loops.h"
#include "bio/generator.h"
#include "bio/parsimony.h"
#include "kernels/kernels.h"
#include "obs/cpi_stack.h"
#include "obs/konata_sink.h"
#include "obs/manifest.h"
#include "obs/perfetto_sink.h"
#include "obs/pmu_sampler.h"
#include "obs/trace_mux.h"
#include "support/logging.h"
#include "workloads/workload.h"

using namespace bp5;

namespace {

struct Options
{
    std::string kernel;
    std::string app;
    std::string variant = "Original";
    std::string machine = "baseline";
    std::string memsys = "classic";
    std::string klass = "B";
    uint64_t budget = 2'000'000;
    uint64_t seed = 42;
    uint64_t interval = 10'000;
    uint64_t maxEvents = 2'000'000;
    std::string perfetto;
    std::string konata;
    std::string pmuCsv;
    std::string manifest;
    bool sites = false;
    bool stalls = false;
    bool json = false;
};

void
usage()
{
    std::fputs(
        "usage: bp5-trace (--kernel=NAME | --app=NAME) [--variant=NAME]\n"
        "                 [--machine=baseline|btac|fxu3|fxu4|enhanced]\n"
        "                 [--memsys=classic|lsq|lsq+nextline|lsq+stride]\n"
        "                 [--klass=A|B|C] [--budget=N] [--seed=N]\n"
        "                 [--interval=N] [--sites] [--stalls]\n"
        "                 [--max-events=N]\n"
        "                 [--perfetto=PATH] [--konata=PATH]\n"
        "                 [--pmu-csv=PATH] [--manifest=PATH] [--json]\n",
        stderr);
}

/** Case/punctuation-insensitive name form ("comp. isel" -> "compisel"). */
std::string
normalized(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += char(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

mpc::Variant
variantFromString(const std::string &s)
{
    std::string want = normalized(s);
    if (want == "baseline")
        return mpc::Variant::Baseline;
    for (int v = 0; v < int(mpc::Variant::NUM_VARIANTS); ++v) {
        if (normalized(mpc::variantName(mpc::Variant(v))) == want)
            return mpc::Variant(v);
    }
    fatal("unknown variant '%s'", s.c_str());
}

kernels::KernelKind
kernelFromString(const std::string &s)
{
    std::string want = normalized(s);
    for (int k = 0; k < int(kernels::KernelKind::NUM_KERNELS); ++k) {
        if (normalized(kernels::kernelName(kernels::KernelKind(k))) == want)
            return kernels::KernelKind(k);
    }
    fatal("unknown kernel '%s'", s.c_str());
}

sim::MachineConfig
machineFromString(const std::string &s)
{
    std::string want = normalized(s);
    if (want == "baseline")
        return sim::MachineConfig::power5Baseline();
    if (want == "btac")
        return sim::MachineConfig::power5WithBtac();
    if (want == "fxu3")
        return sim::MachineConfig::power5WithFxu(3);
    if (want == "fxu4")
        return sim::MachineConfig::power5WithFxu(4);
    if (want == "enhanced")
        return sim::MachineConfig::power5Enhanced();
    fatal("unknown machine '%s'", s.c_str());
}

/** Parse --memsys and overlay it on the selected machine config. */
void
applyMemsys(sim::MachineConfig &mc, const std::string &s)
{
    std::string want = normalized(s);
    if (want == "classic") {
        mc.memsys = sim::MemSysParams();
        return;
    }
    mc.memsys.mode = sim::MemSysParams::Mode::Lsq;
    if (want == "lsq")
        return;
    if (want == "lsqnextline") {
        mc.memsys.l1dPrefetch.kind = sim::PrefetchParams::Kind::NextLine;
        return;
    }
    if (want == "lsqstride") {
        mc.memsys.l1dPrefetch.kind = sim::PrefetchParams::Kind::Stride;
        return;
    }
    fatal("unknown memsys '%s'", s.c_str());
}

/** Canned deterministic inputs for one kernel; keeps invoking until
 *  the instruction budget is consumed.  @return invocation count. */
uint64_t
runKernel(kernels::KernelMachine &km, const Options &opts)
{
    uint64_t invocations = 0;
    auto exhausted = [&]() {
        return km.totals().instructions >= opts.budget;
    };

    switch (km.kind()) {
    case kernels::KernelKind::ForwardPass:
    case kernels::KernelKind::Dropgsw: {
        bio::SequenceGenerator g(opts.seed);
        bio::Sequence a = g.random(120, "a");
        bio::Sequence b =
            g.mutate(a, bio::MutationModel{0.3, 0.05, 0.05}, "b");
        kernels::AlignProblem p{&a, &b,
                                &bio::SubstitutionMatrix::blosum62(),
                                bio::GapPenalty{10, 1}};
        do {
            km.run(p);
            ++invocations;
        } while (!exhausted());
        break;
    }
    case kernels::KernelKind::P7Viterbi: {
        bio::SequenceGenerator g(opts.seed);
        auto fam = g.family(5, 40, bio::MutationModel{0.15, 0.02, 0.02});
        bio::Plan7Model model = bio::Plan7Model::fromFamily(fam);
        do {
            for (size_t i = 0; i < fam.size() && !exhausted(); ++i) {
                kernels::ViterbiProblem p{&model, &fam[i]};
                km.run(p);
                ++invocations;
            }
        } while (!exhausted());
        break;
    }
    case kernels::KernelKind::SemiGAlign: {
        bio::SequenceGenerator g(opts.seed);
        bio::Sequence a = g.random(150, "query");
        bio::Sequence b =
            g.mutate(a, bio::MutationModel{0.25, 0.04, 0.04}, "subject");
        kernels::ExtendProblem p{&a, 0, &b, 0,
                                 &bio::SubstitutionMatrix::blosum62(),
                                 bio::GapPenalty{10, 1}, 30};
        do {
            km.run(p);
            ++invocations;
        } while (!exhausted());
        break;
    }
    case kernels::KernelKind::Sankoff: {
        size_t leaves = 8, sites = 64;
        bio::SequenceGenerator gen(opts.seed, bio::Alphabet::Dna);
        auto fam = gen.family(leaves, sites,
                              bio::MutationModel{0.2, 0.0, 0.0});
        auto dist = bio::pairwiseDistances(
            fam, bio::SubstitutionMatrix::dna(), bio::GapPenalty{10, 1});
        bio::GuideTree tree = bio::upgmaTree(dist);
        bio::ParsimonyCost cost =
            bio::ParsimonyCost::transitionTransversion();
        std::vector<uint8_t> states(leaves);
        do {
            for (size_t col = 0; col < sites && !exhausted(); ++col) {
                for (size_t i = 0; i < leaves; ++i)
                    states[i] = fam[i][col];
                kernels::SankoffProblem p{&tree, &states, &cost};
                km.run(p);
                ++invocations;
            }
        } while (!exhausted());
        break;
    }
    default:
        panic("bad kernel kind");
    }
    return invocations;
}

/**
 * Name the innermost static loop containing @p pc ("loop@0xADDR",
 * with the recovered trip count when the loop is counted), or "-".
 */
std::string
loopLabelAt(const analysis::Cfg &cfg, const analysis::BinLoopForest &loops,
            uint64_t pc)
{
    const analysis::BasicBlock *bb = cfg.blockAt(pc);
    if (bb == nullptr)
        return "-";
    const analysis::BinLoop *best = nullptr;
    for (const analysis::BinLoop &l : loops.loops) {
        if (l.contains(bb->id) &&
            (best == nullptr || l.blocks.size() < best->blocks.size()))
            best = &l;
    }
    if (best == nullptr)
        return "-";
    std::string out = strprintf(
        "loop@0x%llx",
        (unsigned long long)cfg.blocks[size_t(best->header)].start);
    if (best->counted && best->tripCount >= 0)
        out += strprintf(" x%lld", (long long)best->tripCount);
    return out;
}

/**
 * Flat stall profile joined with the static loop analysis: the @p top
 * hottest pcs by attributed stall cycles, one row each.
 */
std::vector<support::ResultRow>
stallProfileRows(const sim::StallProfile &profile,
                 const analysis::Cfg &cfg,
                 const analysis::BinLoopForest &loops, size_t top)
{
    uint64_t allStalls = 0;
    for (const auto &[pc, site] : profile)
        allStalls += site.total();

    std::vector<std::pair<uint64_t, const sim::StallSiteStats *>> order;
    for (const auto &[pc, site] : profile)
        order.emplace_back(pc, &site);
    std::sort(order.begin(), order.end(),
              [](const auto &a, const auto &b) {
                  if (a.second->total() != b.second->total())
                      return a.second->total() > b.second->total();
                  return a.first < b.first;
              });
    if (order.size() > top)
        order.resize(top);

    std::vector<support::ResultRow> rows;
    for (const auto &[pc, site] : order) {
        size_t topComp = 0;
        for (size_t i = 1; i < site->cycles.size(); ++i)
            if (site->cycles[i] > site->cycles[topComp])
                topComp = i;
        std::string disasm = "?";
        if (const analysis::BasicBlock *bb = cfg.blockAt(pc)) {
            for (const analysis::CfgInst &ci : bb->insts)
                if (ci.pc == pc)
                    disasm = isa::disassemble(ci.inst, ci.pc);
        }
        support::ResultRow row;
        row.set("pc", strprintf("0x%llx", (unsigned long long)pc))
            .set("inst", disasm)
            .set("loop", loopLabelAt(cfg, loops, pc))
            .set("stall_cycles", site->total())
            .setPct("of_all_stalls", allStalls ? double(site->total()) /
                                                     double(allStalls)
                                               : 0.0)
            .set("top_component",
                 sim::cpiComponentKey(sim::CpiComponent(topComp)))
            .set("flush",
                 site->cycles[size_t(sim::CpiComponent::BranchFlush)] +
                     site->cycles[size_t(
                         sim::CpiComponent::DisambigFlush)])
            .set("data",
                 site->cycles[size_t(sim::CpiComponent::LsuFwd)] +
                     site->cycles[size_t(sim::CpiComponent::LsuL1)] +
                     site->cycles[size_t(sim::CpiComponent::LsuL2)] +
                     site->cycles[size_t(sim::CpiComponent::LsuMem)])
            .set("fxu", site->cycles[size_t(sim::CpiComponent::Fxu)]);
        rows.push_back(std::move(row));
    }
    return rows;
}

/** Aggregate the sampler's per-window site series into one profile. */
sim::BranchProfile
aggregateSites(const obs::PmuSampler &sampler)
{
    sim::BranchProfile profile;
    for (const obs::PmuInterval &w : sampler.intervals(true)) {
        for (const auto &[pc, stats] : w.sites)
            profile[pc].add(stats);
    }
    return profile;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
        };
        if (const char *v = val("--kernel=")) {
            opts.kernel = v;
        } else if (const char *v = val("--app=")) {
            opts.app = v;
        } else if (const char *v = val("--variant=")) {
            opts.variant = v;
        } else if (const char *v = val("--machine=")) {
            opts.machine = v;
        } else if (const char *v = val("--memsys=")) {
            opts.memsys = v;
        } else if (const char *v = val("--klass=")) {
            opts.klass = v;
        } else if (const char *v = val("--budget=")) {
            opts.budget = std::strtoull(v, nullptr, 10);
        } else if (const char *v = val("--seed=")) {
            opts.seed = std::strtoull(v, nullptr, 10);
        } else if (const char *v = val("--interval=")) {
            opts.interval = std::strtoull(v, nullptr, 10);
        } else if (const char *v = val("--max-events=")) {
            opts.maxEvents = std::strtoull(v, nullptr, 10);
        } else if (const char *v = val("--perfetto=")) {
            opts.perfetto = v;
        } else if (const char *v = val("--konata=")) {
            opts.konata = v;
        } else if (const char *v = val("--pmu-csv=")) {
            opts.pmuCsv = v;
        } else if (const char *v = val("--manifest=")) {
            opts.manifest = v;
        } else if (a == "--sites") {
            opts.sites = true;
        } else if (a == "--stalls") {
            opts.stalls = true;
        } else if (a == "--json") {
            opts.json = true;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            usage();
            return 2;
        }
    }
    if (opts.kernel.empty() == opts.app.empty()) {
        std::fputs("bp5-trace: exactly one of --kernel/--app required\n",
                   stderr);
        usage();
        return 2;
    }
    if (opts.interval == 0) {
        std::fputs("bp5-trace: --interval must be nonzero\n", stderr);
        return 2;
    }

    mpc::Variant variant = variantFromString(opts.variant);
    sim::MachineConfig mc = machineFromString(opts.machine);
    applyMemsys(mc, opts.memsys);
    kernels::KernelKind kind = kernels::KernelKind::ForwardPass;
    std::string workloadName, inputName;
    if (!opts.kernel.empty()) {
        kind = kernelFromString(opts.kernel);
        workloadName = kernels::kernelName(kind);
        inputName = strprintf("canned seed=%llu",
                              (unsigned long long)opts.seed);
    }

    kernels::KernelMachine *kmp = nullptr;
    std::unique_ptr<kernels::KernelMachine> km;
    std::unique_ptr<workloads::Workload> workload;
    if (!opts.app.empty()) {
        workloads::WorkloadConfig wc;
        bool found = false;
        for (int x = 0; x < int(workloads::App::NUM_APPS); ++x) {
            if (normalized(workloads::appName(workloads::App(x))) ==
                normalized(opts.app)) {
                wc.app = workloads::App(x);
                found = true;
            }
        }
        if (!found)
            fatal("unknown app '%s'", opts.app.c_str());
        wc.klass = workloads::inputClassFromString(opts.klass);
        wc.seed = opts.seed;
        wc.simInstructionBudget = opts.budget;
        workload = std::make_unique<workloads::Workload>(wc);
        kind = workloads::appKernel(wc.app);
        workloadName = workloads::appName(wc.app);
        inputName = "class " + opts.klass;
    }

    km = std::make_unique<kernels::KernelMachine>(kind, variant, mc);
    kmp = km.get();
    kmp->setSampleInterval(opts.interval, opts.sites);
    if (opts.stalls)
        kmp->setStallProfiling(true);

    obs::PerfettoSink perfetto(8, opts.maxEvents);
    obs::KonataSink konata(opts.maxEvents);
    obs::CpiStackSink cpiSink;
    obs::TraceMux mux;
    if (!opts.perfetto.empty())
        mux.add(&perfetto);
    if (!opts.konata.empty())
        mux.add(&konata);
    if (opts.stalls)
        mux.add(&cpiSink);
    if (!mux.empty())
        kmp->setTraceSink(&mux);

    auto t0 = std::chrono::steady_clock::now();
    uint64_t invocations;
    if (workload) {
        workloads::SimResult r = workload->simulate(*kmp);
        invocations = r.invocations;
    } else {
        invocations = runKernel(*kmp, opts);
    }
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    if (!opts.perfetto.empty() && !perfetto.writeTo(opts.perfetto))
        return 1;
    if (!opts.konata.empty() && !konata.writeTo(opts.konata))
        return 1;
    if (!opts.pmuCsv.empty()) {
        FILE *f = std::fopen(opts.pmuCsv.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "bp5-trace: cannot open %s\n",
                         opts.pmuCsv.c_str());
            return 1;
        }
        std::fputs(kmp->sampler()->toCsv().c_str(), f);
        std::fclose(f);
    }

    // Manifest row: identity + machine + counters + speed.
    obs::RunInfo info;
    info.tool = "bp5-trace";
    info.workload = workloadName;
    info.variant = mpc::variantName(variant);
    info.input = inputName;
    info.invocations = invocations;
    info.wallSeconds = wall;
    info.machine = mc;
    info.counters = kmp->totals();
    std::vector<support::ResultRow> rows{obs::manifestRow(info)};
    obs::appendManifest(opts.manifest, rows, "run-manifest");

    if (opts.json) {
        std::fputs(support::emitJsonLine(rows, "run-manifest").c_str(),
                   stdout);
    } else {
        std::fputs(support::emitText(rows, "run: " + workloadName).c_str(),
                   stdout);
        const sim::Counters &c = kmp->totals();
        std::printf("\n%llu instructions, %llu cycles, IPC %.3f; "
                    "%llu invocations; %zu PMU windows\n",
                    (unsigned long long)c.instructions,
                    (unsigned long long)c.cycles, c.ipc(),
                    (unsigned long long)invocations,
                    kmp->sampler()->intervals(true).size());
        if (!opts.perfetto.empty())
            std::printf("perfetto: %s (%llu events, %llu dropped)\n",
                        opts.perfetto.c_str(),
                        (unsigned long long)perfetto.eventCount(),
                        (unsigned long long)perfetto.droppedEvents());
        if (!opts.konata.empty())
            std::printf("konata: %s (%llu instructions, %llu dropped)\n",
                        opts.konata.c_str(),
                        (unsigned long long)konata.instCount(),
                        (unsigned long long)konata.droppedInsts());
    }

    if (opts.sites) {
        // Join the sampler's aggregated site series with the static
        // branch classes of the traced binary (paper IV-A taxonomy).
        sim::BranchProfile profile = aggregateSites(*kmp->sampler());
        analysis::Cfg cfg = analysis::buildCfg(
            analysis::CodeImage::fromProgram(
                kmp->compiled().program(kernels::kCodeBase)));
        auto sites = analysis::classifyBranches(cfg);
        auto classes = analysis::joinProfile(sites, profile);
        std::string t1 = "branch classes: " + workloadName;
        std::string t2 = "hot mispredictors: " + workloadName;
        auto classRows = analysis::classProfileRows(classes);
        auto siteRows = analysis::siteProfileRows(sites, profile);
        if (opts.json) {
            std::fputs(support::emitJsonLine(classRows, t1).c_str(),
                       stdout);
            std::fputs(support::emitJsonLine(siteRows, t2).c_str(),
                       stdout);
        } else {
            std::fputs(support::emitText(classRows, t1).c_str(), stdout);
            std::fputs(support::emitText(siteRows, t2).c_str(), stdout);
        }
    }

    if (opts.stalls) {
        // CPI stack plus the flat per-PC attribution, joined with the
        // static loop analysis so the hot loop gets named.
        analysis::Cfg cfg = analysis::buildCfg(
            analysis::CodeImage::fromProgram(
                kmp->compiled().program(kernels::kCodeBase)));
        analysis::BinLoopForest loops = analysis::findCfgLoops(cfg);
        std::vector<support::ResultRow> stallRows =
            stallProfileRows(kmp->stallProfile(), cfg, loops, 20);
        std::string title = "stall profile: " + workloadName;
        if (opts.json) {
            std::fputs(support::emitJsonLine(stallRows, title).c_str(),
                       stdout);
        } else {
            obs::CpiStack stack =
                obs::CpiStack::fromCounters(kmp->totals());
            std::printf("\nCPI stack: %s\n", workloadName.c_str());
            std::fputs(obs::renderCpiStack(stack).c_str(), stdout);
            std::fputs(support::emitText(stallRows, title).c_str(),
                       stdout);
            const support::Log2Histogram &lat = cpiSink.latency();
            std::printf("\nfetch->commit latency (cycles): "
                        "mean %.1f, p50 <=%llu, p95 <=%llu, "
                        "p99 <=%llu\n",
                        lat.mean(),
                        (unsigned long long)lat.percentile(50),
                        (unsigned long long)lat.percentile(95),
                        (unsigned long long)lat.percentile(99));
            std::fputs(lat.toText().c_str(), stdout);
        }
    }
    return 0;
}
