/**
 * @file
 * Reproduces paper Table I: hardware-counter data for Blast, Clustalw,
 * Fasta and Hmmer on the baseline POWER5 configuration — IPC, L1D miss
 * rate, the share of branch mispredictions caused by wrong direction,
 * and completion stalls attributed to FXU instructions.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    std::printf("=== Table I: hardware counter data, baseline POWER5 "
                "(class %c inputs) ===\n\n",
                "ABC"[int(opts.klass)]);

    TextTable t;
    t.header({"Application", "IPC", "(paper)", "L1D miss", "(paper)",
              "dir. mispred", "(paper)", "FXU stalls", "(paper)"});

    std::vector<sim::Counters> counters;
    for (int a = 0; a < 4; ++a) {
        Workload w(opts.workload(kApps[a]));
        SimResult r = w.simulate(mpc::Variant::Baseline,
                                 sim::MachineConfig());
        const sim::Counters &c = r.counters;
        counters.push_back(c);
        const PaperTable1Row &p = kPaperTable1[a];
        t.row({appName(kApps[a]),
               num(c.ipc()),
               num(p.ipc, 1),
               pct(c.l1dMissRate()),
               num(p.l1dMissPct, 1) + "%",
               pct(c.mispredictDirectionShare(), 2),
               num(p.dirSharePct, 2) + "%",
               pct(c.stallShare(sim::StallReason::FXU)),
               num(p.fxuStallPct, 1) + "%"});
    }
    t.print();

    if (opts.cpi) {
        // The full POWER5-style cycle-accounting view of the same
        // runs: every cycle in exactly one component (DESIGN 4.10).
        std::vector<driver::ResultRow> rows;
        for (int a = 0; a < 4; ++a) {
            driver::ResultRow row;
            row.set("Application", appName(kApps[a]));
            addCpiColumns(row, counters[size_t(a)]);
            rows.push_back(row);
        }
        opts.note("\n");
        opts.emit(rows, "CPI stack (share of cycles):");
    }

    std::printf("\nShape checks (paper section III):\n"
                "  - IPC well below the 5-wide completion limit\n"
                "  - L1D miss rates are tiny: caches are not the "
                "bottleneck\n"
                "  - nearly all mispredictions are direction-caused\n");
    return 0;
}
