/**
 * @file
 * Reproduces paper Fig 5: the effect of additional fixed-point units —
 * 2 vs 3 vs 4 FXUs on the original POWER5 and on the "Combination"
 * predicated build (whose max/isel instructions add FXU pressure).
 * The (build x app x FXU-count) sweep runs on the parallel
 * ExperimentDriver.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    opts.note("=== Fig 5: effect of additional fixed-point units "
                "(class %c) ===\n\n",
                "ABC"[int(opts.klass)]);

    const mpc::Variant variants[2] = {mpc::Variant::Baseline,
                                      mpc::Variant::Combination};
    std::vector<driver::GridPoint> grid;
    for (mpc::Variant var : variants) {
        for (int a = 0; a < 4; ++a) {
            for (unsigned n = 2; n <= 4; ++n) {
                grid.push_back(opts.point(
                    kApps[a], var, sim::MachineConfig::power5WithFxu(n)));
            }
        }
    }
    std::vector<driver::PointResult> res = opts.driver().run(grid);

    size_t idx = 0;
    for (const char *which : {"Original", "Combination"}) {
        std::vector<driver::ResultRow> rows;
        for (int a = 0; a < 4; ++a) {
            double ipc[3];
            double fxuShare[3];
            for (int k = 0; k < 3; ++k) {
                const sim::Counters &c = res[idx++].sim.counters;
                ipc[k] = c.ipc();
                fxuShare[k] = c.cpiShare(sim::CpiComponent::Fxu);
            }
            driver::ResultRow row;
            row.set("Application", appName(kApps[a]))
                .set("2 FXU", ipc[0])
                .set("3 FXU", ipc[1])
                .set("4 FXU", ipc[2])
                .setGainPct("gain 2->3", ipc[1] / ipc[0] - 1.0)
                .setGainPct("gain 3->4", ipc[2] / ipc[1] - 1.0);
            if (opts.cpi) {
                row.setPct("fxu/cyc @2", fxuShare[0])
                    .setPct("fxu/cyc @3", fxuShare[1])
                    .setPct("fxu/cyc @4", fxuShare[2]);
            }
            rows.push_back(row);
        }
        opts.emit(rows, std::string(which) + " code:");
        opts.note("\n");
    }

    opts.note(
        "Shape checks (paper section VI-C):\n"
        "  - Hmmer benefits most from extra FXUs; Fasta the least\n"
        "  - moving from three to four units adds little\n"
        "  - predicated code (max/isel run in the FXUs) benefits\n"
        "    more than the original\n");
    if (opts.cpi)
        opts.note(
            "\nCPI columns (--cpi): the fxu/cyc saturation share\n"
            "  shrinks as units are added — the cycle-accounting view\n"
            "  of the same diminishing returns\n");
    return 0;
}
