/**
 * @file
 * Reproduces paper Fig 5: the effect of additional fixed-point units —
 * 2 vs 3 vs 4 FXUs on the original POWER5 and on the "Combination"
 * predicated build (whose max/isel instructions add FXU pressure).
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    std::printf("=== Fig 5: effect of additional fixed-point units "
                "(class %c) ===\n\n",
                "ABC"[int(opts.klass)]);

    for (const char *which : {"Original", "Combination"}) {
        mpc::Variant var = std::string(which) == "Original"
                               ? mpc::Variant::Baseline
                               : mpc::Variant::Combination;
        TextTable t(std::string(which) + " code:");
        t.header({"Application", "2 FXU", "3 FXU", "4 FXU",
                  "gain 2->3", "gain 3->4"});
        for (int a = 0; a < 4; ++a) {
            Workload w(opts.workload(kApps[a]));
            double ipc[3];
            for (unsigned n = 2; n <= 4; ++n) {
                SimResult r = w.simulate(
                    var, sim::MachineConfig::power5WithFxu(n));
                ipc[n - 2] = r.counters.ipc();
            }
            double g23 = ipc[1] / ipc[0] - 1.0;
            double g34 = ipc[2] / ipc[1] - 1.0;
            t.row({appName(kApps[a]), num(ipc[0]), num(ipc[1]),
                   num(ipc[2]),
                   (g23 >= 0 ? "+" : "") + num(g23 * 100.0, 1) + "%",
                   (g34 >= 0 ? "+" : "") + num(g34 * 100.0, 1) + "%"});
        }
        t.print();
        std::printf("\n");
    }

    std::printf(
        "Shape checks (paper section VI-C):\n"
        "  - Hmmer benefits most from extra FXUs; Fasta the least\n"
        "  - moving from three to four units adds little\n"
        "  - predicated code (max/isel run in the FXUs) benefits\n"
        "    more than the original\n");
    return 0;
}
