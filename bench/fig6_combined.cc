/**
 * @file
 * Reproduces paper Fig 6: the cumulative effect of all three
 * enhancements — predication, the BTAC, and four FXUs — including the
 * "residual" category showing that the combination gains more than
 * the sum of the individual deltas.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    std::printf("=== Fig 6: combining predication, BTAC and four FXUs "
                "(class %c) ===\n\n",
                "ABC"[int(opts.klass)]);

    TextTable t;
    t.header({"Application", "base", "+pred", "+BTAC", "+FXUs",
              "residual", "all", "total gain", "(paper)"});

    std::vector<double> gains;
    for (int a = 0; a < 4; ++a) {
        Workload w(opts.workload(kApps[a]));
        sim::MachineConfig base;

        double ipcBase =
            w.simulate(mpc::Variant::Baseline, base).counters.ipc();
        // Individual deltas, each applied alone to the baseline.
        double dPred =
            w.simulate(mpc::Variant::Combination, base).counters.ipc() -
            ipcBase;
        double dBtac = w.simulate(mpc::Variant::Baseline,
                                  sim::MachineConfig::power5WithBtac())
                           .counters.ipc() -
                       ipcBase;
        double dFxu = w.simulate(mpc::Variant::Baseline,
                                 sim::MachineConfig::power5WithFxu(4))
                          .counters.ipc() -
                      ipcBase;
        // Everything at once.
        double ipcAll = w.simulate(mpc::Variant::Combination,
                                   sim::MachineConfig::power5Enhanced())
                            .counters.ipc();
        double residual = ipcAll - (ipcBase + dPred + dBtac + dFxu);
        double gain = ipcAll / ipcBase - 1.0;
        gains.push_back(gain);

        const PaperFig6Row &p = kPaperFig6[a];
        t.row({appName(kApps[a]), num(ipcBase),
               (dPred >= 0 ? "+" : "") + num(dPred),
               (dBtac >= 0 ? "+" : "") + num(dBtac),
               (dFxu >= 0 ? "+" : "") + num(dFxu),
               (residual >= 0 ? "+" : "") + num(residual),
               num(ipcAll),
               (gain >= 0 ? "+" : "") + num(gain * 100.0, 1) + "%",
               "+" + num(p.finalGainPct, 0) + "%"});
    }
    t.print();

    double avg = 0.0;
    for (double g : gains)
        avg += g;
    avg /= double(gains.size());
    std::printf("\naverage improvement: %+.1f%% (paper: +64%% across "
                "the four applications)\n",
                avg * 100.0);
    std::printf("Shape checks (paper section VI-D): predication is the\n"
                "largest single contributor; the residual is positive\n"
                "for most applications (the techniques reinforce each\n"
                "other).\n");
    return 0;
}
