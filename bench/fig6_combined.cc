/**
 * @file
 * Reproduces paper Fig 6: the cumulative effect of all three
 * enhancements — predication, the BTAC, and four FXUs — including the
 * "residual" category showing that the combination gains more than
 * the sum of the individual deltas.  The five configurations per app
 * run as one grid on the parallel ExperimentDriver; aggregation is in
 * grid order, so output is identical for any --threads value.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    opts.note("=== Fig 6: combining predication, BTAC and four FXUs "
                "(class %c) ===\n\n",
                "ABC"[int(opts.klass)]);

    // Per app: {base, +pred, +BTAC, +FXUs, all}.
    sim::MachineConfig base;
    std::vector<driver::GridPoint> grid;
    for (int a = 0; a < 4; ++a) {
        grid.push_back(opts.point(kApps[a], mpc::Variant::Baseline,
                                  base));
        grid.push_back(opts.point(kApps[a], mpc::Variant::Combination,
                                  base));
        grid.push_back(opts.point(kApps[a], mpc::Variant::Baseline,
                                  sim::MachineConfig::power5WithBtac()));
        grid.push_back(opts.point(kApps[a], mpc::Variant::Baseline,
                                  sim::MachineConfig::power5WithFxu(4)));
        grid.push_back(opts.point(kApps[a], mpc::Variant::Combination,
                                  sim::MachineConfig::power5Enhanced()));
    }
    std::vector<driver::PointResult> res = opts.driver().run(grid);

    std::vector<driver::ResultRow> rows;
    std::vector<double> gains;
    for (int a = 0; a < 4; ++a) {
        const size_t b = size_t(a) * 5;
        double ipcBase = res[b + 0].sim.counters.ipc();
        double dPred = res[b + 1].sim.counters.ipc() - ipcBase;
        double dBtac = res[b + 2].sim.counters.ipc() - ipcBase;
        double dFxu = res[b + 3].sim.counters.ipc() - ipcBase;
        double ipcAll = res[b + 4].sim.counters.ipc();
        double residual = ipcAll - (ipcBase + dPred + dBtac + dFxu);
        double gain = ipcAll / ipcBase - 1.0;
        gains.push_back(gain);

        const PaperFig6Row &p = kPaperFig6[a];
        driver::ResultRow row;
        row.set("Application", appName(kApps[a]))
            .set("base", ipcBase)
            .set("+pred", (dPred >= 0 ? "+" : "") + num(dPred))
            .set("+BTAC", (dBtac >= 0 ? "+" : "") + num(dBtac))
            .set("+FXUs", (dFxu >= 0 ? "+" : "") + num(dFxu))
            .set("residual",
                 (residual >= 0 ? "+" : "") + num(residual))
            .set("all", ipcAll)
            .setGainPct("total gain", gain)
            .set("(paper)", "+" + num(p.finalGainPct, 0) + "%");
        if (opts.cpi) {
            // Cycle accounting of base vs all-enhancements: the flush
            // share collapsing is where the combined gain comes from.
            const sim::Counters &cb = res[b + 0].sim.counters;
            const sim::Counters &ca = res[b + 4].sim.counters;
            row.setPct("flush/cyc base",
                       cb.cpiShare(sim::CpiComponent::BranchFlush))
                .setPct("flush/cyc all",
                        ca.cpiShare(sim::CpiComponent::BranchFlush))
                .setPct("done/cyc all",
                        ca.cpiShare(sim::CpiComponent::Completing));
        }
        rows.push_back(row);
    }
    opts.emit(rows);

    double avg = 0.0;
    for (double g : gains)
        avg += g;
    avg /= double(gains.size());
    opts.note("\naverage improvement: %+.1f%% (paper: +64%% across "
                "the four applications)\n",
                avg * 100.0);
    opts.note("Shape checks (paper section VI-D): predication is the\n"
                "largest single contributor; the residual is positive\n"
                "for most applications (the techniques reinforce each\n"
                "other).\n");
    return 0;
}
