/**
 * @file
 * BTAC design-space ablation.  The paper fixes an eight-entry BTAC and
 * notes that "variations in the performance of this structure due to
 * differing design decisions are beyond the scope of this paper" —
 * this bench explores them: entry count, prediction threshold, and the
 * confidence policy, measured as IPC gain over the no-BTAC baseline
 * and the BTAC's own misprediction rate.  The whole design space runs
 * as one grid on the parallel ExperimentDriver.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    opts.note("=== Ablation: BTAC design space (class %c, Original "
                "code) ===\n\n",
                "ABC"[int(opts.klass)]);

    const unsigned entryCounts[] = {2, 4, 8, 16, 32};

    // Per app: {no BTAC, 5 entry counts, loose policy, sticky policy}.
    std::vector<driver::GridPoint> grid;
    for (int a = 0; a < 4; ++a) {
        grid.push_back(opts.point(kApps[a], mpc::Variant::Baseline,
                                  sim::MachineConfig()));
        for (unsigned entries : entryCounts) {
            sim::MachineConfig mc;
            mc.btacEnabled = true;
            mc.btac.entries = entries;
            grid.push_back(
                opts.point(kApps[a], mpc::Variant::Baseline, mc));
        }
        for (int sticky = 0; sticky < 2; ++sticky) {
            sim::MachineConfig mc;
            mc.btacEnabled = true;
            if (!sticky) {
                mc.btac.scoreBits = 2;
                mc.btac.predictThreshold = 2;
                mc.btac.resetOnMispredict = false;
            }
            grid.push_back(
                opts.point(kApps[a], mpc::Variant::Baseline, mc));
        }
    }
    std::vector<driver::PointResult> res = opts.driver().run(grid);
    constexpr size_t kPerApp = 8; // 1 + 5 + 2

    auto mispred = [](const sim::Counters &c) {
        return c.btacPredictions
                   ? double(c.btacMispredicts) / double(c.btacPredictions)
                   : 0.0;
    };

    // Entry-count sweep at the default (sticky) confidence policy.
    opts.note("-- entry count (threshold 7/8, sticky) --\n");
    std::vector<driver::ResultRow> rows;
    for (int a = 0; a < 4; ++a) {
        const size_t b = size_t(a) * kPerApp;
        double base = res[b].sim.counters.ipc();
        driver::ResultRow row;
        row.set("Application", appName(kApps[a])).set("no BTAC", base);
        double mispredAt8 = 0.0;
        for (size_t e = 0; e < 5; ++e) {
            const sim::Counters &c = res[b + 1 + e].sim.counters;
            row.setGainPct(std::to_string(entryCounts[e]),
                           c.ipc() / base - 1.0);
            if (entryCounts[e] == 8)
                mispredAt8 = mispred(c);
        }
        row.setPct("mispred@8", mispredAt8);
        rows.push_back(row);
    }
    opts.emit(rows);

    // Confidence-policy sweep at eight entries.
    opts.note("\n-- confidence policy (8 entries) --\n");
    std::vector<driver::ResultRow> rows2;
    for (int a = 0; a < 4; ++a) {
        const size_t b = size_t(a) * kPerApp;
        double base = res[b].sim.counters.ipc();
        const sim::Counters &loose = res[b + 6].sim.counters;
        const sim::Counters &sticky = res[b + 7].sim.counters;
        driver::ResultRow row;
        row.set("Application", appName(kApps[a]))
            .setGainPct("loose (2b, thr 2)", loose.ipc() / base - 1.0)
            .setPct("mispred", mispred(loose))
            .setGainPct("sticky (3b, thr 7)", sticky.ipc() / base - 1.0)
            .setPct("mispred (sticky)", mispred(sticky));
        rows2.push_back(row);
    }
    opts.emit(rows2);

    opts.note("\nFindings: the paper's choice is justified - eight\n"
                "entries capture the gain (the hot kernels have few\n"
                "distinct taken branches), and a sticky confidence\n"
                "policy keeps the BTAC out of the hard-to-predict\n"
                "hammock branches it would otherwise mispredict.\n");
    return 0;
}
