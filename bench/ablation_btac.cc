/**
 * @file
 * BTAC design-space ablation.  The paper fixes an eight-entry BTAC and
 * notes that "variations in the performance of this structure due to
 * differing design decisions are beyond the scope of this paper" —
 * this bench explores them: entry count, prediction threshold, and the
 * confidence policy, measured as IPC gain over the no-BTAC baseline
 * and the BTAC's own misprediction rate.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    std::printf("=== Ablation: BTAC design space (class %c, Original "
                "code) ===\n\n",
                "ABC"[int(opts.klass)]);

    // Entry-count sweep at the default (sticky) confidence policy.
    std::printf("-- entry count (threshold 7/8, sticky) --\n");
    TextTable t;
    t.header({"Application", "no BTAC", "2", "4", "8", "16", "32",
              "mispred@8"});
    for (int a = 0; a < 4; ++a) {
        Workload w(opts.workload(kApps[a]));
        double base = w.simulate(mpc::Variant::Baseline,
                                 sim::MachineConfig())
                          .counters.ipc();
        std::vector<std::string> row = {appName(kApps[a]), num(base)};
        double mispredAt8 = 0.0;
        for (unsigned entries : {2u, 4u, 8u, 16u, 32u}) {
            sim::MachineConfig mc;
            mc.btacEnabled = true;
            mc.btac.entries = entries;
            SimResult r = w.simulate(mpc::Variant::Baseline, mc);
            double gain = r.counters.ipc() / base - 1.0;
            row.push_back((gain >= 0 ? "+" : "") +
                          num(gain * 100.0, 1) + "%");
            if (entries == 8 && r.counters.btacPredictions) {
                mispredAt8 = double(r.counters.btacMispredicts) /
                             double(r.counters.btacPredictions);
            }
        }
        row.push_back(pct(mispredAt8));
        t.row(row);
    }
    t.print();

    // Confidence-policy sweep at eight entries.
    std::printf("\n-- confidence policy (8 entries) --\n");
    TextTable t2;
    t2.header({"Application", "loose (2b, thr 2)", "mispred",
               "sticky (3b, thr 7)", "mispred"});
    for (int a = 0; a < 4; ++a) {
        Workload w(opts.workload(kApps[a]));
        double base = w.simulate(mpc::Variant::Baseline,
                                 sim::MachineConfig())
                          .counters.ipc();
        std::vector<std::string> row = {appName(kApps[a])};
        for (int sticky = 0; sticky < 2; ++sticky) {
            sim::MachineConfig mc;
            mc.btacEnabled = true;
            if (!sticky) {
                mc.btac.scoreBits = 2;
                mc.btac.predictThreshold = 2;
                mc.btac.resetOnMispredict = false;
            }
            SimResult r = w.simulate(mpc::Variant::Baseline, mc);
            double gain = r.counters.ipc() / base - 1.0;
            double mis =
                r.counters.btacPredictions
                    ? double(r.counters.btacMispredicts) /
                          double(r.counters.btacPredictions)
                    : 0.0;
            row.push_back((gain >= 0 ? "+" : "") +
                          num(gain * 100.0, 1) + "%");
            row.push_back(pct(mis));
        }
        t2.row(row);
    }
    t2.print();

    std::printf("\nFindings: the paper's choice is justified - eight\n"
                "entries capture the gain (the hot kernels have few\n"
                "distinct taken branches), and a sticky confidence\n"
                "policy keeps the BTAC out of the hard-to-predict\n"
                "hammock branches it would otherwise mispredict.\n");
    return 0;
}
