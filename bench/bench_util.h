/**
 * @file
 * Shared helpers for the experiment-reproduction binaries: CLI
 * parsing (--klass=A|B|C --budget=N --seed=N), the paper's published
 * numbers, and common run helpers.
 *
 * Every binary regenerates one table or figure of the paper and
 * prints the measured values next to the published ones.  Absolute
 * numbers are not expected to match (the substrate is a from-scratch
 * simulator, not the authors' OpenPower 720 + SystemSim); the shapes
 * are what must hold.  See EXPERIMENTS.md.
 */

#ifndef BIOPERF5_BENCH_BENCH_UTIL_H
#define BIOPERF5_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "driver/driver.h"
#include "driver/result.h"
#include "support/table.h"
#include "workloads/workload.h"

namespace bp5::bench {

/** Common CLI options for the reproduction binaries. */
struct BenchOptions
{
    workloads::InputClass klass = workloads::InputClass::B;
    uint64_t budget = 3'000'000;
    uint64_t seed = 42;
    unsigned threads = 0; ///< sweep worker count; 0 = hardware
    bool json = false;    ///< emit result tables as JSON
    bool analyze = false; ///< join static branch classes with the PMU
    bool cpi = false;     ///< append CPI-stack share columns
    std::string manifest; ///< run-manifest path ("-" = stdout, "" = off)
    std::string pmuCsv;   ///< write the PMU interval series here

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions o;
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            auto val = [&](const char *prefix) -> const char * {
                size_t n = std::strlen(prefix);
                return a.compare(0, n, prefix) == 0 ? a.c_str() + n
                                                    : nullptr;
            };
            if (const char *v = val("--klass=")) {
                o.klass = workloads::inputClassFromString(v);
            } else if (const char *v = val("--budget=")) {
                o.budget = std::strtoull(v, nullptr, 10);
            } else if (const char *v = val("--seed=")) {
                o.seed = std::strtoull(v, nullptr, 10);
            } else if (const char *v = val("--threads=")) {
                o.threads =
                    static_cast<unsigned>(std::strtoul(v, nullptr, 10));
            } else if (a == "--json") {
                o.json = true;
            } else if (a == "--analyze") {
                o.analyze = true;
            } else if (a == "--cpi") {
                o.cpi = true;
            } else if (const char *v = val("--manifest=")) {
                o.manifest = v;
            } else if (const char *v = val("--pmu-csv=")) {
                o.pmuCsv = v;
            } else if (a == "--help" || a == "-h") {
                std::printf("usage: %s [--klass=A|B|C] [--budget=N] "
                            "[--seed=N] [--threads=N] [--json] "
                            "[--analyze] [--cpi] [--manifest=PATH] "
                            "[--pmu-csv=PATH]\n",
                            argv[0]);
                std::exit(0);
            } else {
                std::fprintf(stderr, "unknown option '%s'\n",
                             a.c_str());
                std::exit(1);
            }
        }
        return o;
    }

    /** The sweep driver configured from --threads / --manifest. */
    driver::ExperimentDriver
    driver() const
    {
        driver::ExperimentDriver d(threads);
        if (!manifest.empty())
            d.setManifestPath(manifest);
        return d;
    }

    /**
     * Print one result-row table honouring --json: an aligned-text
     * table normally, one JSON Lines record (`{"title":..,"rows":..}`)
     * per table under --json so stdout stays machine-parseable.
     */
    void
    emit(const std::vector<driver::ResultRow> &rows,
         const std::string &title = "") const
    {
        std::string out = json ? driver::emitJsonLine(rows, title)
                               : driver::emitText(rows, title);
        std::fputs(out.c_str(), stdout);
    }

    /**
     * printf for the human-facing prose around the tables (headers,
     * derived findings).  Suppressed under --json, where stdout
     * carries only JSON Lines records.
     */
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    void
    note(const char *fmt, ...) const
    {
        if (json)
            return;
        va_list ap;
        va_start(ap, fmt);
        std::vprintf(fmt, ap);
        va_end(ap);
    }

    workloads::WorkloadConfig
    workload(workloads::App app) const
    {
        workloads::WorkloadConfig wc;
        wc.app = app;
        wc.klass = klass;
        wc.seed = seed;
        wc.simInstructionBudget = budget;
        return wc;
    }

    /** Build one sweep point for app/variant/machine. */
    driver::GridPoint
    point(workloads::App app, mpc::Variant var,
          const sim::MachineConfig &mc, std::string label = "") const
    {
        driver::GridPoint p;
        p.label = std::move(label);
        p.workload = workload(app);
        p.variant = var;
        p.machine = mc;
        return p;
    }
};

/** The four applications in the paper's table order. */
constexpr workloads::App kApps[4] = {
    workloads::App::Blast,
    workloads::App::Clustalw,
    workloads::App::Fasta,
    workloads::App::Hmmer,
};

/** Paper Table I (baseline POWER5 hardware counters). */
struct PaperTable1Row
{
    const char *app;
    double ipc;
    double l1dMissPct;
    double dirSharePct;
    double fxuStallPct;
};

constexpr PaperTable1Row kPaperTable1[4] = {
    {"Blast", 0.9, 3.9, 99.98, 14.9},
    {"Clustalw", 1.1, 0.1, 99.8, 25.3},
    {"Fasta", 0.8, 1.3, 99.8, 14.3},
    {"Hmmer", 1.0, 1.5, 96.8, 5.7},
};

/** Paper section VI-A hand-inserted IPC improvements (percent). */
struct PaperFig3Row
{
    const char *app;
    double handIselPct; ///< -1 when the paper gives no number
    double handMaxPct;
};

constexpr PaperFig3Row kPaperFig3[4] = {
    {"Blast", -1.0, -1.0}, // "a smaller improvement"
    {"Clustalw", 50.7, 58.0},
    {"Fasta", 23.1, 34.2},
    {"Hmmer", 32.0, 32.0},
};

/** Paper Table II rows (variant order as printed by variantName). */
struct PaperTable2Row
{
    const char *app;
    // Indexed by mpc::Variant (Baseline..CompMax); Combination absent.
    double branchesPct[5];
    double mispredictPct[5];
    double takenPct[5];
};

// Variant index mapping: 0 Original, 1 hand isel, 2 hand max,
// 3 comp isel, 4 comp max.
constexpr PaperTable2Row kPaperTable2[4] = {
    {"Blast",
     {20.7, 15.3, 16.2, 12.9, 14.4},
     {6.1, 5.7, 5.9, 4.2, 5.6},
     {67.4, 65.7, 65.1, 52.3, 66.0}},
    {"Clustalw",
     {14.6, 7.4, 8.1, 7.2, 8.9},
     {5.7, 2.6, 2.7, 8.0, 7.0},
     {69.6, 85.5, 84.5, 85.2, 82.6}},
    {"Fasta",
     {25.9, 23.2, 22.3, 19.2, 18.0},
     {7.9, 7.8, 7.5, 7.9, 7.4},
     {69.0, 75.6, 73.6, 74.2, 76.2}},
    {"Hmmer",
     {13.8, 7.9, 8.3, 12.0, 11.7},
     {5.7, 4.4, 4.7, 6.2, 6.1},
     {71.7, 62.6, 63.2, 71.3, 65.2}},
};

/** Paper Fig 6: baseline and fully-enhanced IPC. */
struct PaperFig6Row
{
    const char *app;
    double baseIpc;
    double finalGainPct;
};

constexpr PaperFig6Row kPaperFig6[4] = {
    {"Blast", 0.9, 53.0},
    {"Clustalw", 1.02, 89.0}, // 1.02 -> 1.93
    {"Fasta", 0.8, 69.0},
    {"Hmmer", 1.0, 51.0},
};

/**
 * Render @p vals as a coarse ASCII sparkline over [@p lo, @p hi].  A
 * degenerate range (hi <= lo: flat series, or caller passed the
 * min/max of one) renders every point as the lowest glyph instead of
 * dividing by zero.
 */
inline std::string
sparkline(const std::vector<double> &vals, double lo, double hi)
{
    static const char *glyphs = " .:-=+*#%@";
    std::string out;
    for (double v : vals) {
        double f = hi > lo ? (v - lo) / (hi - lo) : 0.0;
        f = std::max(0.0, std::min(1.0, f));
        out += glyphs[static_cast<size_t>(f * 9.0)];
    }
    return out;
}

inline std::string
pct(double fraction, int precision = 1)
{
    return bp5::TextTable::pct(fraction, precision);
}

/**
 * Append the CPI-stack share columns the fig benches grow under
 * --cpi: completing plus the paper's stall narrative (branch flush,
 * data-side, FXU, frontend).  Shares of total cycles, so rows of
 * different lengths stay comparable; the exact per-component cycle
 * counts go to the manifest (see obs::addCpiCells).
 */
inline void
addCpiColumns(driver::ResultRow &row, const sim::Counters &c)
{
    row.setPct("done/cyc", c.cpiShare(sim::CpiComponent::Completing))
        .setPct("flush/cyc", c.cpiFlushShare())
        .setPct("data/cyc", c.cpiDataShare())
        .setPct("fxu/cyc", c.cpiShare(sim::CpiComponent::Fxu))
        .setPct("front/cyc", c.cpiShare(sim::CpiComponent::Frontend));
}

inline std::string
num(double v, int precision = 2)
{
    return bp5::TextTable::num(v, precision);
}

} // namespace bp5::bench

#endif // BIOPERF5_BENCH_BENCH_UTIL_H
