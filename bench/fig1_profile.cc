/**
 * @file
 * Reproduces paper Fig 1: the function-wise execution-time breakout of
 * the four applications (the gprof analysis of section III), using the
 * native C++ pipelines under the scoped profiler.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    std::printf("=== Fig 1: function-wise breakout (class %c inputs) "
                "===\n\n",
                "ABC"[int(opts.klass)]);

    for (int a = 0; a < 4; ++a) {
        Workload w(opts.workload(kApps[a]));
        auto prof = w.profileNative();

        TextTable t(std::string(appName(kApps[a])) + ":");
        t.header({"Function", "Share", "Seconds"});
        for (const auto &f : prof)
            t.row({f.name, pct(f.share), num(f.seconds, 4)});
        t.print();
        std::printf("\n");
    }

    std::printf("Shape checks (paper Fig 1): Clustalw/Fasta/Hmmer "
                "spend more than half their time in forward_pass / "
                "dropgsw / P7Viterbi; Blast's largest consumer is "
                "SEMI_G_ALIGN.\n");
    return 0;
}
