/**
 * @file
 * Memory-system ablation: load/store queue depth and L1D prefetcher
 * sweep against the classic (infinite-queue, no-prefetch) model.  The
 * (app x memsys) sweep runs on the parallel ExperimentDriver; the
 * acceptance check at the bottom asserts that speculative
 * disambiguation plus prefetching buys a measurable IPC gain on at
 * least one of the dynamic-programming kernels, and exits nonzero
 * otherwise so CI catches a regression in the MemorySystem path.
 */

#include <cmath>

#include "bench/bench_util.h"
#include "kernels/kernels.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

namespace {

struct MemSysPoint {
    std::string name;
    sim::MachineConfig mc;
    bool prefetching; // participates in the acceptance check
};

std::vector<MemSysPoint>
memsysSweep()
{
    using Kind = sim::PrefetchParams::Kind;
    std::vector<MemSysPoint> pts;
    pts.push_back({"classic", sim::MachineConfig(), false});
    const unsigned depths[] = {8, 16, 32};
    const struct { Kind kind; const char *label; bool pf; } kinds[] = {
        {Kind::None, "none", false},
        {Kind::NextLine, "next_line", true},
        {Kind::Stride, "stride", true},
    };
    for (unsigned d : depths)
        for (const auto &k : kinds)
            pts.push_back({"lsq " + std::to_string(d) + "/" +
                               std::to_string(d) + " " + k.label,
                           sim::MachineConfig::power5WithLsq(d, d, k.kind),
                           k.pf});
    return pts;
}

double
per1k(uint64_t events, uint64_t insts)
{
    return insts ? 1000.0 * double(events) / double(insts) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    opts.note("=== Ablation: LSQ depth x L1D prefetcher "
                "(class %c, Original code) ===\n\n",
                "ABC"[int(opts.klass)]);

    const std::vector<MemSysPoint> memsys = memsysSweep();
    const size_t kNumCfgs = memsys.size();

    std::vector<driver::GridPoint> grid;
    for (int a = 0; a < 4; ++a)
        for (const MemSysPoint &m : memsys)
            grid.push_back(opts.point(kApps[a], mpc::Variant::Baseline,
                                      m.mc));
    std::vector<driver::PointResult> res = opts.driver().run(grid);

    // Acceptance: disambiguation + prefetching must beat classic by a
    // measurable margin on at least one DP kernel (Fasta, Clustalw and
    // Hmmer are the dynamic-programming apps; Blast is seed-extension).
    constexpr double kMinGain = 1.01;
    bool dpGain = false;

    for (int a = 0; a < 4; ++a) {
        const size_t b = size_t(a) * kNumCfgs;
        const sim::Counters &classic = res[b].sim.counters;
        const bool isDp = kApps[a] != App::Blast;
        std::vector<driver::ResultRow> rows;
        for (size_t k = 0; k < kNumCfgs; ++k) {
            const sim::Counters &c = res[b + k].sim.counters;
            double gain = c.ipc() / classic.ipc();
            if (isDp && memsys[k].prefetching && gain > kMinGain)
                dpGain = true;
            driver::ResultRow row;
            row.set("memsys", memsys[k].name)
                .set("IPC", c.ipc())
                .setPct("vs classic", gain - 1.0)
                .set("fwd/1k", per1k(c.storeForwards, c.instructions))
                .set("squash/1k",
                     per1k(c.disambigFlushes, c.instructions))
                .set("lsq-full/1k",
                     per1k(c.lsqFullLoads + c.lsqFullStores,
                           c.instructions))
                .set("pf issued/1k",
                     per1k(c.prefetchIssued, c.instructions))
                .set("pf hit/1k", per1k(c.prefetchHits, c.instructions));
            rows.push_back(row);
        }
        opts.emit(rows, std::string(appName(kApps[a])) + ":");
        opts.note("\n");
    }

    if (!dpGain) {
        std::fprintf(stderr,
                     "FAIL: no LSQ+prefetch configuration beats the "
                     "classic memory system by >%.0f%% IPC on any "
                     "DP kernel\n",
                     (kMinGain - 1.0) * 100.0);
        return 1;
    }
    opts.note("Finding: speculative disambiguation with an L1D\n"
                "prefetcher recovers the queue-occupancy stalls and\n"
                "beats the classic fixed-latency model on the DP\n"
                "kernels; deeper queues shift cycles from lsq-full\n"
                "back-pressure into useful overlap.\n");
    return 0;
}
