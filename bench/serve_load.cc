/**
 * @file
 * serve_load: load generator and tail-latency bench for bp5-serve.
 *
 * Pumps a deterministic stream of synthetic jobs — a mix of the four
 * paper kernels across seeds and two code variants, so shards see
 * real batching pressure — through either an in-process serve::Server
 * (the BENCH_serve.json perf-trajectory mode) or a running daemon's
 * Unix socket (the CI smoke mode), and reports throughput plus
 * p50/p95/p99 latency from support::Log2Histogram.
 *
 *   serve_load --jobs=100000 --bench --json  > BENCH_serve_new.json
 *   serve_load --socket=/tmp/bp5.sock --jobs=10000 [--shutdown]
 *
 * Arrival control: --rate=R paces admissions at R jobs/s (0 = open
 * loop); --window=W caps in-flight jobs in socket mode (closed-loop
 * load, keeps a well-sized daemon queue from rejecting).  --bench
 * runs two phases and emits both as rows of one document: an
 * open-loop phase (mode "open", the throughput number) and a phase
 * paced at half the measured capacity (mode "paced") — open-loop p99
 * is all queue wait and says nothing about the server, while p99 at a
 * fixed utilization is a meaningful tail-latency SLO on any host.
 * Exit status is nonzero when any job fails or any result is dropped.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/server.h"
#include "serve/socket.h"
#include "support/histogram.h"
#include "support/logging.h"
#include "support/result.h"

using namespace bp5;

namespace {

struct Options
{
    uint64_t jobs = 100000;
    double rate = 0.0;      ///< arrival rate, jobs/s (0 = open loop)
    std::string socketPath; ///< empty = in-process server
    unsigned shards = 0;
    size_t queueDepth = 4096;
    unsigned batchMax = 32;
    unsigned n = 16;     ///< problem scale
    unsigned seeds = 8;  ///< distinct input seeds in the mix
    uint64_t window = 1024; ///< max in-flight (socket mode)
    std::string manifestPath;
    bool shutdownDaemon = false;
    bool bench = false;
    bool json = false;
};

void
usage()
{
    std::fputs(
        "usage: serve_load [--jobs=N] [--rate=R] [--n=N] [--seeds=K]\n"
        "                  [--json]\n"
        "  in-process: [--shards=N] [--queue-depth=N] [--batch=N]\n"
        "              [--manifest=PATH] [--bench]\n"
        "  socket:     --socket=PATH [--window=W] [--shutdown]\n",
        stderr);
}

/** The deterministic job mix: kernels x variants x seeds. */
serve::JobSpec
jobAt(uint64_t i, const Options &opts)
{
    static const kernels::KernelKind kKinds[] = {
        kernels::KernelKind::ForwardPass,
        kernels::KernelKind::Dropgsw,
        kernels::KernelKind::P7Viterbi,
        kernels::KernelKind::SemiGAlign,
    };
    serve::JobSpec spec;
    spec.id = i;
    spec.kind = kKinds[i % 4];
    spec.variant = (i / 4) % 2 == 0 ? mpc::Variant::Baseline
                                    : mpc::Variant::CompMax;
    spec.machine = sim::MachineConfig::power5Baseline();
    spec.seed = 1 + (i % opts.seeds);
    spec.n = opts.n;
    return spec;
}

/** The request line for @p spec (inverse of serve::parseJobLine). */
std::string
jobLine(const serve::JobSpec &spec, const Options &opts)
{
    return strprintf("{\"id\": %llu, \"kernel\": \"%s\", "
                     "\"variant\": \"%s\", \"seed\": %llu, "
                     "\"n\": %u}\n",
                     (unsigned long long)spec.id,
                     kernels::kernelName(spec.kind),
                     mpc::variantName(spec.variant),
                     (unsigned long long)spec.seed, opts.n);
}

/** Sleep until job @p i's scheduled arrival under --rate pacing. */
void
paceArrival(uint64_t i, double rate,
            std::chrono::steady_clock::time_point t0)
{
    if (rate <= 0.0)
        return;
    auto due = t0 + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(double(i) / rate));
    std::this_thread::sleep_until(due);
}

/** Measured outcome of one load run. */
struct LoadReport
{
    uint64_t jobs = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t rejected = 0;
    double wallSeconds = 0.0;
    support::Log2Histogram latencyUs;
};

support::ResultRow
reportRow(const LoadReport &r, const std::string &mode,
          const Options &opts, double rate)
{
    support::ResultRow row;
    row.set("workload", "serve_mixed")
        .set("mode", mode)
        .set("jobs", r.jobs)
        .set("completed", r.completed)
        .set("failed", r.failed)
        .set("rejected", r.rejected)
        .set("n", opts.n)
        .set("seeds", opts.seeds)
        .set("rate", rate, 1)
        .set("wall_s", r.wallSeconds, 3)
        .set("jobs_per_s",
             r.wallSeconds > 0.0 ? double(r.completed) / r.wallSeconds
                                 : 0.0,
             1)
        .set("p50_us", r.latencyUs.percentile(50))
        .set("p95_us", r.latencyUs.percentile(95))
        .set("p99_us", r.latencyUs.percentile(99))
        .set("mean_us", r.latencyUs.mean(), 1);
    return row;
}

void
printRows(const std::vector<support::ResultRow> &rows,
          const support::Log2Histogram &latencyUs, const Options &opts)
{
    if (opts.json) {
        std::fputs(support::emitJsonLine(rows, "serve-load").c_str(),
                   stdout);
    } else {
        std::fputs(support::emitText(rows, "serve_load").c_str(),
                   stdout);
        std::fputs("\nlatency histogram (us):\n", stdout);
        std::fputs(latencyUs.toText().c_str(), stdout);
    }
}

/** Nonzero exit when jobs were dropped or failed. */
int
verdict(const LoadReport &r)
{
    uint64_t dropped = r.jobs - r.completed - r.failed - r.rejected;
    if (dropped != 0 || r.failed != 0) {
        std::fprintf(stderr,
                     "serve_load: FAILED: %llu dropped, %llu failed\n",
                     (unsigned long long)dropped,
                     (unsigned long long)r.failed);
        return 1;
    }
    return 0;
}

/** Drive an in-process Server once at @p rate (0 = open loop). */
LoadReport
runInprocOnce(const Options &opts, double rate)
{
    serve::ServerConfig cfg;
    cfg.shards = opts.shards;
    cfg.queueDepth = opts.queueDepth;
    cfg.batchMax = opts.batchMax;
    cfg.manifestPath = opts.manifestPath;
    serve::Server server(cfg);

    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> failed{0};

    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < opts.jobs; ++i) {
        paceArrival(i, rate, t0);
        // Blocking admission: the bench measures service capacity, so
        // backpressure (not rejection) on a saturated queue.
        server.submit(
            jobAt(i, opts),
            [&](const serve::JobResult &r) {
                if (r.ok)
                    completed.fetch_add(1, std::memory_order_relaxed);
                else
                    failed.fetch_add(1, std::memory_order_relaxed);
            },
            /*block=*/true);
    }
    server.drain();
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    LoadReport rep;
    rep.jobs = opts.jobs;
    rep.completed = completed.load();
    rep.failed = failed.load();
    rep.rejected = server.stats().rejected;
    rep.wallSeconds = wall;
    rep.latencyUs = server.latencyHistogram();
    return rep;
}

/** Single in-process run at --rate. */
int
runInproc(const Options &opts)
{
    LoadReport rep = runInprocOnce(opts, opts.rate);
    printRows({reportRow(rep, opts.rate > 0.0 ? "paced" : "open", opts,
                         opts.rate)},
              rep.latencyUs, opts);
    return verdict(rep);
}

/**
 * The BENCH_serve.json trajectory: an open-loop phase for throughput,
 * then a phase paced at half the measured capacity whose p99 is a
 * host-portable tail-latency SLO.
 */
int
runBench(const Options &opts)
{
    LoadReport open = runInprocOnce(opts, 0.0);
    double capacity = open.wallSeconds > 0.0
                          ? double(open.completed) / open.wallSeconds
                          : 0.0;
    double pacedRate = capacity / 2.0;
    if (pacedRate <= 0.0)
        fatal("open-loop phase completed no jobs");
    LoadReport paced = runInprocOnce(opts, pacedRate);

    printRows({reportRow(open, "open", opts, 0.0),
               reportRow(paced, "paced", opts, pacedRate)},
              paced.latencyUs, opts);
    int rc = verdict(open);
    return rc != 0 ? rc : verdict(paced);
}

/** Drive a running daemon over its Unix socket (the CI smoke mode). */
int
runSocket(const Options &opts)
{
    std::string err;
    int fd = serve::unixConnect(opts.socketPath, err);
    if (fd < 0)
        fatal("%s", err.c_str());

    std::mutex mu;
    std::condition_variable windowCv;
    bool daemonGone = false;
    uint64_t inflight = 0;
    uint64_t received = 0, completed = 0, failed = 0, rejected = 0;
    support::Log2Histogram latencyUs;
    std::vector<std::chrono::steady_clock::time_point> sent(opts.jobs);

    auto t0 = std::chrono::steady_clock::now();

    // Reader: one response line per job, matched to its send time by
    // id.  Runs concurrently with the writer to keep the window full.
    std::thread reader([&] {
        serve::LineReader lines(fd);
        std::string line;
        while (received < opts.jobs && lines.readLine(line)) {
            if (line.empty())
                continue;
            obs::JsonValue doc;
            std::string perr;
            if (!obs::parseJson(line, doc, perr) || !doc.isObject()) {
                warn("bad response line: %s", perr.c_str());
                continue;
            }
            const obs::JsonValue *ok = doc.find("ok");
            const obs::JsonValue *id = doc.find("id");
            auto now = std::chrono::steady_clock::now();
            std::lock_guard<std::mutex> lock(mu);
            ++received;
            if (ok != nullptr && ok->isBool() && ok->boolean) {
                ++completed;
                if (id != nullptr && id->isNumber() &&
                    uint64_t(id->number) < opts.jobs) {
                    latencyUs.add(uint64_t(
                        std::chrono::duration<double, std::micro>(
                            now - sent[size_t(id->number)])
                            .count()));
                }
            } else {
                const obs::JsonValue *e =
                    doc.isObject() ? doc.find("error") : nullptr;
                bool queueFull = e != nullptr && e->isString() &&
                                 e->str.find("queue full") !=
                                     std::string::npos;
                if (queueFull)
                    ++rejected;
                else
                    ++failed;
            }
            --inflight;
            windowCv.notify_one();
        }
        std::lock_guard<std::mutex> lock(mu);
        if (received < opts.jobs)
            daemonGone = true; // EOF before all responses arrived
        windowCv.notify_all();
    });

    for (uint64_t i = 0; i < opts.jobs; ++i) {
        paceArrival(i, opts.rate, t0);
        {
            // Closed-loop window: never more than --window jobs
            // outstanding, so a sanely provisioned daemon queue does
            // not reject (rejections are still counted if they come).
            std::unique_lock<std::mutex> lock(mu);
            windowCv.wait(lock, [&] {
                return daemonGone || inflight < opts.window;
            });
            if (daemonGone) {
                lock.unlock();
                reader.join();
                fatal("daemon closed the connection after %llu of "
                      "%llu responses",
                      (unsigned long long)received,
                      (unsigned long long)opts.jobs);
            }
            ++inflight;
            sent[i] = std::chrono::steady_clock::now();
        }
        if (!serve::writeAll(fd, jobLine(jobAt(i, opts), opts)))
            fatal("short write to %s (daemon gone?)",
                  opts.socketPath.c_str());
    }

    reader.join();
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    if (opts.shutdownDaemon) {
        serve::writeAll(fd, "{\"cmd\": \"shutdown\"}\n");
        serve::LineReader lines(fd);
        std::string ack;
        lines.readLine(ack); // daemon acks before draining
    }
    serve::closeFd(fd);

    LoadReport rep;
    rep.jobs = opts.jobs;
    rep.completed = completed;
    rep.failed = failed;
    rep.rejected = rejected;
    rep.wallSeconds = wall;
    rep.latencyUs = latencyUs;
    printRows({reportRow(rep, "socket", opts, opts.rate)},
              rep.latencyUs, opts);
    return verdict(rep);
}

bool
parseArg(const char *arg, const char *name, std::string &out)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    out = arg + n + 1;
    return true;
}

bool
parseArg(const char *arg, const char *name, uint64_t &out)
{
    std::string s;
    if (!parseArg(arg, name, s))
        return false;
    out = std::strtoull(s.c_str(), nullptr, 0);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        uint64_t n = 0;
        std::string s;
        if (parseArg(arg, "--socket", opts.socketPath) ||
            parseArg(arg, "--manifest", opts.manifestPath)) {
            continue;
        } else if (parseArg(arg, "--jobs", opts.jobs)) {
            continue;
        } else if (parseArg(arg, "--rate", s)) {
            opts.rate = std::strtod(s.c_str(), nullptr);
        } else if (parseArg(arg, "--shards", n)) {
            opts.shards = unsigned(n);
        } else if (parseArg(arg, "--queue-depth", n)) {
            if (n == 0)
                fatal("--queue-depth must be positive");
            opts.queueDepth = size_t(n);
        } else if (parseArg(arg, "--batch", n)) {
            if (n == 0)
                fatal("--batch must be positive");
            opts.batchMax = unsigned(n);
        } else if (parseArg(arg, "--n", n)) {
            opts.n = unsigned(n);
        } else if (parseArg(arg, "--seeds", n)) {
            if (n == 0)
                fatal("--seeds must be positive");
            opts.seeds = unsigned(n);
        } else if (parseArg(arg, "--window", opts.window)) {
            if (opts.window == 0)
                fatal("--window must be positive");
        } else if (std::strcmp(arg, "--shutdown") == 0) {
            opts.shutdownDaemon = true;
        } else if (std::strcmp(arg, "--bench") == 0) {
            opts.bench = true;
        } else if (std::strcmp(arg, "--json") == 0) {
            opts.json = true;
        } else {
            usage();
            fatal("unknown argument '%s'", arg);
        }
    }
    std::signal(SIGPIPE, SIG_IGN);
    if (!opts.socketPath.empty()) {
        if (opts.bench)
            fatal("--bench is an in-process mode (drop --socket)");
        return runSocket(opts);
    }
    return opts.bench ? runBench(opts) : runInproc(opts);
}
