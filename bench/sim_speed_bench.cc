/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: functional
 * and timing simulation throughput (simulated instructions per second)
 * on the Smith-Waterman kernel, plus compile time of the mpc pipeline.
 *
 * With --json the binary skips google-benchmark and instead emits one
 * JSON Lines record per (workload, mode) measuring simulated MIPS and
 * host wall time across all four applications: the machine-readable
 * perf trajectory.  CI compares it against the checked-in baseline
 * BENCH_simspeed.json with tools/perf_gate.py and fails the build on
 * a >20% sim_mips regression at any (workload, mode) point.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "bio/generator.h"
#include "kernels/kernels.h"
#include "support/result.h"
#include "workloads/workload.h"

using namespace bp5;
using namespace bp5::kernels;

namespace {

struct Fixture
{
    bio::Sequence a, b;
    const bio::SubstitutionMatrix &m = bio::SubstitutionMatrix::blosum62();
    bio::GapPenalty gap{10, 1};

    Fixture()
        : a("a", bio::Alphabet::Protein, ""),
          b("b", bio::Alphabet::Protein, "")
    {
        bio::SequenceGenerator g(99);
        a = g.random(100, "a");
        b = g.mutate(a, bio::MutationModel{0.3, 0.05, 0.05}, "b");
    }
};

const Fixture &
fx()
{
    static Fixture f;
    return f;
}

void
BM_FunctionalSimulation(benchmark::State &state)
{
    KernelMachine km(KernelKind::Dropgsw, mpc::Variant::Baseline,
                     sim::MachineConfig());
    km.setFunctionalOnly(true);
    AlignProblem p{&fx().a, &fx().b, &fx().m, fx().gap};
    uint64_t before = 0;
    for (auto _ : state) {
        km.run(p);
        benchmark::DoNotOptimize(km.totals().instructions);
    }
    state.SetItemsProcessed(
        int64_t(km.totals().instructions - before));
    state.counters["MIPS"] = benchmark::Counter(
        double(km.totals().instructions),
        benchmark::Counter::kIsRate,
        benchmark::Counter::kIs1000);
}
BENCHMARK(BM_FunctionalSimulation)->Unit(benchmark::kMillisecond);

void
BM_TimingSimulation(benchmark::State &state)
{
    KernelMachine km(KernelKind::Dropgsw, mpc::Variant::Baseline,
                     sim::MachineConfig());
    AlignProblem p{&fx().a, &fx().b, &fx().m, fx().gap};
    for (auto _ : state) {
        km.run(p);
        benchmark::DoNotOptimize(km.totals().cycles);
    }
    state.counters["MIPS"] = benchmark::Counter(
        double(km.totals().instructions),
        benchmark::Counter::kIsRate,
        benchmark::Counter::kIs1000);
}
BENCHMARK(BM_TimingSimulation)->Unit(benchmark::kMillisecond);

void
BM_TimingSimulationWithBtac(benchmark::State &state)
{
    KernelMachine km(KernelKind::Dropgsw, mpc::Variant::Baseline,
                     sim::MachineConfig::power5WithBtac());
    AlignProblem p{&fx().a, &fx().b, &fx().m, fx().gap};
    for (auto _ : state) {
        km.run(p);
        benchmark::DoNotOptimize(km.totals().cycles);
    }
}
BENCHMARK(BM_TimingSimulationWithBtac)->Unit(benchmark::kMillisecond);

void
BM_KernelCompile(benchmark::State &state)
{
    for (auto _ : state) {
        mpc::Compiled c = compileKernel(
            static_cast<KernelKind>(state.range(0)),
            mpc::Variant::CompIsel);
        benchmark::DoNotOptimize(c.insts.size());
    }
}
BENCHMARK(BM_KernelCompile)->DenseRange(0, 3);

void
BM_AssembleRoundTrip(benchmark::State &state)
{
    mpc::Compiled c =
        compileKernel(KernelKind::Dropgsw, mpc::Variant::Baseline);
    for (auto _ : state) {
        masm::Program p = c.program(0x10000);
        benchmark::DoNotOptimize(p.image.size());
    }
}
BENCHMARK(BM_AssembleRoundTrip);

/** Execution modes measured by the --json perf trajectory. */
enum class Mode
{
    Timing,     ///< full-detail OoO model
    Functional, ///< compiled engine, no cycle accounting
    Sampled,    ///< SMARTS windows + warmed fast-forward
};

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Timing: return "timing";
      case Mode::Functional: return "functional";
      default: return "sampled";
    }
}

/// Sampled-mode configuration: 5% detail (2k-instruction windows every
/// 40k instructions), the setting validated by bench/ablation_sampling.
constexpr uint64_t kSampledDetail = 2'000;
constexpr uint64_t kSampledSkip = 38'000;

/// Repeat each measurement until this much wall time accumulates so a
/// single fast run can't produce a near-zero denominator (the old
/// single-shot measurement emitted garbage MIPS for short kernels).
constexpr double kMinWallSeconds = 0.05;
constexpr unsigned kMaxReps = 50;

/**
 * One --json measurement: simulate @p app repeatedly and report the
 * aggregate speed.  The clock is steady_clock and covers the whole
 * simulate() call — kernel-invocation marshalling and native-reference
 * validation included — identically across modes and PR generations,
 * so trajectory ratios compare like with like.
 */
support::ResultRow
measureApp(workloads::App app, Mode mode, uint64_t budget)
{
    workloads::WorkloadConfig wc;
    wc.app = app;
    wc.simInstructionBudget = budget;
    workloads::Workload w(wc);
    KernelMachine km(workloads::appKernel(app), mpc::Variant::Baseline,
                     sim::MachineConfig());

    uint64_t instructions = 0;
    uint64_t cycles = 0;
    double ipc = 0.0;
    uint64_t invocations = 0;
    unsigned reps = 0;
    double wall = 0.0;
    while (wall < kMinWallSeconds && reps < kMaxReps) {
        km.reset(); // also clears mode flags; re-apply per rep
        if (mode == Mode::Functional)
            km.setFunctionalOnly(true);
        else if (mode == Mode::Sampled)
            km.setSampling({kSampledDetail, kSampledSkip, true});

        auto t0 = std::chrono::steady_clock::now();
        workloads::SimResult r = w.simulate(km);
        wall += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
        ++reps;
        instructions += r.counters.instructions;
        cycles = r.counters.cycles;
        ipc = r.counters.ipc();
        invocations = r.invocations;
    }

    support::ResultRow row;
    row.set("workload", workloads::appName(app))
        .set("mode", modeName(mode))
        .set("instructions", instructions)
        .set("cycles", cycles)
        .set("ipc", ipc)
        .set("invocations", invocations)
        .set("reps", uint64_t(reps))
        .set("wall_s", wall, 4)
        .set("sim_mips",
             wall > 1e-9 ? double(instructions) / wall / 1e6 : 0.0,
             2);
    return row;
}

/**
 * Emit the perf-trajectory record: one row per (workload, mode).
 * Schema (parsed by tools/perf_gate.py; keep stable):
 *   {"title": "sim-speed",
 *    "rows": [{"workload": ..., "mode": ..., "instructions": ...,
 *              "cycles": ..., "ipc": ..., "invocations": ...,
 *              "reps": ..., "wall_s": ..., "sim_mips": ...}, ...]}
 */
int
jsonMain(uint64_t budget)
{
    std::vector<support::ResultRow> rows;
    for (workloads::App app :
         {workloads::App::Blast, workloads::App::Clustalw,
          workloads::App::Fasta, workloads::App::Hmmer}) {
        for (Mode mode :
             {Mode::Timing, Mode::Functional, Mode::Sampled})
            rows.push_back(measureApp(app, mode, budget));
    }
    std::fputs(support::emitJsonLine(rows, "sim-speed").c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    uint64_t budget = 2'000'000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else if (std::strncmp(argv[i], "--budget=", 9) == 0)
            budget = std::strtoull(argv[i] + 9, nullptr, 10);
    }
    if (json)
        return jsonMain(budget);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
