/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: functional
 * and timing simulation throughput (simulated instructions per second)
 * on the Smith-Waterman kernel, plus compile time of the mpc pipeline.
 *
 * With --json the binary skips google-benchmark and instead emits one
 * JSON Lines record per (workload, mode) measuring simulated MIPS and
 * host wall time across all four applications — the machine-readable
 * perf trajectory CI archives as BENCH_sim_speed.json.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "bio/generator.h"
#include "kernels/kernels.h"
#include "support/result.h"
#include "workloads/workload.h"

using namespace bp5;
using namespace bp5::kernels;

namespace {

struct Fixture
{
    bio::Sequence a, b;
    const bio::SubstitutionMatrix &m = bio::SubstitutionMatrix::blosum62();
    bio::GapPenalty gap{10, 1};

    Fixture()
        : a("a", bio::Alphabet::Protein, ""),
          b("b", bio::Alphabet::Protein, "")
    {
        bio::SequenceGenerator g(99);
        a = g.random(100, "a");
        b = g.mutate(a, bio::MutationModel{0.3, 0.05, 0.05}, "b");
    }
};

const Fixture &
fx()
{
    static Fixture f;
    return f;
}

void
BM_FunctionalSimulation(benchmark::State &state)
{
    KernelMachine km(KernelKind::Dropgsw, mpc::Variant::Baseline,
                     sim::MachineConfig());
    km.setFunctionalOnly(true);
    AlignProblem p{&fx().a, &fx().b, &fx().m, fx().gap};
    uint64_t before = 0;
    for (auto _ : state) {
        km.run(p);
        benchmark::DoNotOptimize(km.totals().instructions);
    }
    state.SetItemsProcessed(
        int64_t(km.totals().instructions - before));
    state.counters["MIPS"] = benchmark::Counter(
        double(km.totals().instructions),
        benchmark::Counter::kIsRate,
        benchmark::Counter::kIs1000);
}
BENCHMARK(BM_FunctionalSimulation)->Unit(benchmark::kMillisecond);

void
BM_TimingSimulation(benchmark::State &state)
{
    KernelMachine km(KernelKind::Dropgsw, mpc::Variant::Baseline,
                     sim::MachineConfig());
    AlignProblem p{&fx().a, &fx().b, &fx().m, fx().gap};
    for (auto _ : state) {
        km.run(p);
        benchmark::DoNotOptimize(km.totals().cycles);
    }
    state.counters["MIPS"] = benchmark::Counter(
        double(km.totals().instructions),
        benchmark::Counter::kIsRate,
        benchmark::Counter::kIs1000);
}
BENCHMARK(BM_TimingSimulation)->Unit(benchmark::kMillisecond);

void
BM_TimingSimulationWithBtac(benchmark::State &state)
{
    KernelMachine km(KernelKind::Dropgsw, mpc::Variant::Baseline,
                     sim::MachineConfig::power5WithBtac());
    AlignProblem p{&fx().a, &fx().b, &fx().m, fx().gap};
    for (auto _ : state) {
        km.run(p);
        benchmark::DoNotOptimize(km.totals().cycles);
    }
}
BENCHMARK(BM_TimingSimulationWithBtac)->Unit(benchmark::kMillisecond);

void
BM_KernelCompile(benchmark::State &state)
{
    for (auto _ : state) {
        mpc::Compiled c = compileKernel(
            static_cast<KernelKind>(state.range(0)),
            mpc::Variant::CompIsel);
        benchmark::DoNotOptimize(c.insts.size());
    }
}
BENCHMARK(BM_KernelCompile)->DenseRange(0, 3);

void
BM_AssembleRoundTrip(benchmark::State &state)
{
    mpc::Compiled c =
        compileKernel(KernelKind::Dropgsw, mpc::Variant::Baseline);
    for (auto _ : state) {
        masm::Program p = c.program(0x10000);
        benchmark::DoNotOptimize(p.image.size());
    }
}
BENCHMARK(BM_AssembleRoundTrip);

/** One --json measurement: simulate @p app and report the speed. */
support::ResultRow
measureApp(workloads::App app, bool functional, uint64_t budget)
{
    workloads::WorkloadConfig wc;
    wc.app = app;
    wc.simInstructionBudget = budget;
    workloads::Workload w(wc);
    KernelMachine km(workloads::appKernel(app), mpc::Variant::Baseline,
                     sim::MachineConfig());
    km.setFunctionalOnly(functional);

    auto t0 = std::chrono::steady_clock::now();
    workloads::SimResult r = w.simulate(km);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    support::ResultRow row;
    row.set("workload", workloads::appName(app))
        .set("mode", functional ? "functional" : "timing")
        .set("instructions", r.counters.instructions)
        .set("cycles", r.counters.cycles)
        .set("ipc", r.counters.ipc())
        .set("invocations", uint64_t(r.invocations))
        .set("wall_s", wall, 4)
        .set("sim_mips",
             wall > 0.0 ? double(r.counters.instructions) / wall / 1e6
                        : 0.0,
             2);
    return row;
}

int
jsonMain(uint64_t budget)
{
    std::vector<support::ResultRow> rows;
    for (workloads::App app :
         {workloads::App::Blast, workloads::App::Clustalw,
          workloads::App::Fasta, workloads::App::Hmmer}) {
        rows.push_back(measureApp(app, false, budget));
        rows.push_back(measureApp(app, true, budget));
    }
    std::fputs(support::emitJsonLine(rows, "sim-speed").c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    uint64_t budget = 2'000'000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else if (std::strncmp(argv[i], "--budget=", 9) == 0)
            budget = std::strtoull(argv[i] + 9, nullptr, 10);
    }
    if (json)
        return jsonMain(budget);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
