/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: functional
 * and timing simulation throughput (simulated instructions per second)
 * on the Smith-Waterman kernel, plus compile time of the mpc pipeline.
 */

#include <benchmark/benchmark.h>

#include "bio/generator.h"
#include "kernels/kernels.h"

using namespace bp5;
using namespace bp5::kernels;

namespace {

struct Fixture
{
    bio::Sequence a, b;
    const bio::SubstitutionMatrix &m = bio::SubstitutionMatrix::blosum62();
    bio::GapPenalty gap{10, 1};

    Fixture()
        : a("a", bio::Alphabet::Protein, ""),
          b("b", bio::Alphabet::Protein, "")
    {
        bio::SequenceGenerator g(99);
        a = g.random(100, "a");
        b = g.mutate(a, bio::MutationModel{0.3, 0.05, 0.05}, "b");
    }
};

const Fixture &
fx()
{
    static Fixture f;
    return f;
}

void
BM_FunctionalSimulation(benchmark::State &state)
{
    KernelMachine km(KernelKind::Dropgsw, mpc::Variant::Baseline,
                     sim::MachineConfig());
    km.setFunctionalOnly(true);
    AlignProblem p{&fx().a, &fx().b, &fx().m, fx().gap};
    uint64_t before = 0;
    for (auto _ : state) {
        km.run(p);
        benchmark::DoNotOptimize(km.totals().instructions);
    }
    state.SetItemsProcessed(
        int64_t(km.totals().instructions - before));
    state.counters["MIPS"] = benchmark::Counter(
        double(km.totals().instructions),
        benchmark::Counter::kIsRate,
        benchmark::Counter::kIs1000);
}
BENCHMARK(BM_FunctionalSimulation)->Unit(benchmark::kMillisecond);

void
BM_TimingSimulation(benchmark::State &state)
{
    KernelMachine km(KernelKind::Dropgsw, mpc::Variant::Baseline,
                     sim::MachineConfig());
    AlignProblem p{&fx().a, &fx().b, &fx().m, fx().gap};
    for (auto _ : state) {
        km.run(p);
        benchmark::DoNotOptimize(km.totals().cycles);
    }
    state.counters["MIPS"] = benchmark::Counter(
        double(km.totals().instructions),
        benchmark::Counter::kIsRate,
        benchmark::Counter::kIs1000);
}
BENCHMARK(BM_TimingSimulation)->Unit(benchmark::kMillisecond);

void
BM_TimingSimulationWithBtac(benchmark::State &state)
{
    KernelMachine km(KernelKind::Dropgsw, mpc::Variant::Baseline,
                     sim::MachineConfig::power5WithBtac());
    AlignProblem p{&fx().a, &fx().b, &fx().m, fx().gap};
    for (auto _ : state) {
        km.run(p);
        benchmark::DoNotOptimize(km.totals().cycles);
    }
}
BENCHMARK(BM_TimingSimulationWithBtac)->Unit(benchmark::kMillisecond);

void
BM_KernelCompile(benchmark::State &state)
{
    for (auto _ : state) {
        mpc::Compiled c = compileKernel(
            static_cast<KernelKind>(state.range(0)),
            mpc::Variant::CompIsel);
        benchmark::DoNotOptimize(c.insts.size());
    }
}
BENCHMARK(BM_KernelCompile)->DenseRange(0, 3);

void
BM_AssembleRoundTrip(benchmark::State &state)
{
    mpc::Compiled c =
        compileKernel(KernelKind::Dropgsw, mpc::Variant::Baseline);
    for (auto _ : state) {
        masm::Program p = c.program(0x10000);
        benchmark::DoNotOptimize(p.image.size());
    }
}
BENCHMARK(BM_AssembleRoundTrip);

} // namespace

BENCHMARK_MAIN();
