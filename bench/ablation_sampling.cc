/**
 * @file
 * Methodology ablation: sensitivity of the reported counters to the
 * kernel-sampling instruction budget (the analogue of the paper's
 * SMARTS-style uniform sampling).  The headline metrics must be
 * stable once the budget covers a few kernel invocations — otherwise
 * every other bench in this suite would be sampling noise.  The
 * (app x budget) sweep runs on the parallel ExperimentDriver.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    opts.note("=== Ablation: sampling-budget sensitivity "
                "(class %c, Original code) ===\n\n",
                "ABC"[int(opts.klass)]);

    const uint64_t budgets[] = {250'000, 1'000'000, 4'000'000,
                                16'000'000};
    constexpr size_t kNumBudgets = std::size(budgets);

    std::vector<driver::GridPoint> grid;
    for (int a = 0; a < 4; ++a) {
        for (uint64_t budget : budgets) {
            driver::GridPoint p = opts.point(
                kApps[a], mpc::Variant::Baseline, sim::MachineConfig());
            p.workload.simInstructionBudget = budget;
            grid.push_back(p);
        }
    }
    std::vector<driver::PointResult> res = opts.driver().run(grid);

    for (int a = 0; a < 4; ++a) {
        const size_t b = size_t(a) * kNumBudgets;
        std::vector<driver::ResultRow> rows;
        for (size_t k = 0; k < kNumBudgets; ++k) {
            const workloads::SimResult &r = res[b + k].sim;
            driver::ResultRow row;
            row.set("budget", std::to_string(budgets[k] / 1000) + "k")
                .set("invocations", uint64_t(r.invocations))
                .set("IPC", r.counters.ipc())
                .setPct("branch share", r.counters.branchFraction())
                .setPct("mispredict",
                        r.counters.branchMispredictRate());
            rows.push_back(row);
        }
        opts.emit(rows, std::string(appName(kApps[a])) + ":");
        double drift = res[b].sim.counters.ipc() /
                           res[b + kNumBudgets - 1].sim.counters.ipc() -
                       1.0;
        opts.note("  IPC drift smallest vs largest budget: %+.1f%%\n\n",
                    drift * 100.0);
    }

    opts.note("Finding: the per-instruction metrics converge within\n"
                "a few percent once a handful of invocations are\n"
                "sampled, validating the sampling methodology used\n"
                "throughout the suite.\n");
    return 0;
}
