/**
 * @file
 * Methodology ablation: sensitivity of the reported counters to the
 * kernel-sampling instruction budget (the analogue of the paper's
 * SMARTS-style uniform sampling).  The headline metrics must be
 * stable once the budget covers a few kernel invocations — otherwise
 * every other bench in this suite would be sampling noise.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    std::printf("=== Ablation: sampling-budget sensitivity "
                "(class %c, Original code) ===\n\n",
                "ABC"[int(opts.klass)]);

    const uint64_t budgets[] = {250'000, 1'000'000, 4'000'000,
                                16'000'000};

    for (int a = 0; a < 4; ++a) {
        TextTable t(std::string(appName(kApps[a])) + ":");
        t.header({"budget", "invocations", "IPC", "branch share",
                  "mispredict"});
        double ipcLargest = 0.0;
        double ipcSmallest = 0.0;
        for (uint64_t budget : budgets) {
            WorkloadConfig wc = opts.workload(kApps[a]);
            wc.simInstructionBudget = budget;
            Workload w(wc);
            SimResult r = w.simulate(mpc::Variant::Baseline,
                                     sim::MachineConfig());
            if (budget == budgets[0])
                ipcSmallest = r.counters.ipc();
            ipcLargest = r.counters.ipc();
            t.row({std::to_string(budget / 1000) + "k",
                   std::to_string(r.invocations),
                   num(r.counters.ipc()),
                   pct(r.counters.branchFraction()),
                   pct(r.counters.branchMispredictRate())});
        }
        t.print();
        double drift = ipcSmallest / ipcLargest - 1.0;
        std::printf("  IPC drift smallest vs largest budget: %+.1f%%\n\n",
                    drift * 100.0);
    }

    std::printf("Finding: the per-instruction metrics converge within\n"
                "a few percent once a handful of invocations are\n"
                "sampled, validating the sampling methodology used\n"
                "throughout the suite.\n");
    return 0;
}
