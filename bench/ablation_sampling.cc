/**
 * @file
 * Methodology ablation: sensitivity of the reported counters to the
 * kernel-sampling instruction budget (the analogue of the paper's
 * SMARTS-style uniform sampling).  The headline metrics must be
 * stable once the budget covers a few kernel invocations — otherwise
 * every other bench in this suite would be sampling noise.  The
 * (app x budget) sweep runs on the parallel ExperimentDriver.
 */

#include <cmath>

#include "bench/bench_util.h"
#include "kernels/kernels.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    opts.note("=== Ablation: sampling-budget sensitivity "
                "(class %c, Original code) ===\n\n",
                "ABC"[int(opts.klass)]);

    const uint64_t budgets[] = {250'000, 1'000'000, 4'000'000,
                                16'000'000};
    constexpr size_t kNumBudgets = std::size(budgets);

    std::vector<driver::GridPoint> grid;
    for (int a = 0; a < 4; ++a) {
        for (uint64_t budget : budgets) {
            driver::GridPoint p = opts.point(
                kApps[a], mpc::Variant::Baseline, sim::MachineConfig());
            p.workload.simInstructionBudget = budget;
            grid.push_back(p);
        }
    }
    std::vector<driver::PointResult> res = opts.driver().run(grid);

    for (int a = 0; a < 4; ++a) {
        const size_t b = size_t(a) * kNumBudgets;
        std::vector<driver::ResultRow> rows;
        for (size_t k = 0; k < kNumBudgets; ++k) {
            const workloads::SimResult &r = res[b + k].sim;
            driver::ResultRow row;
            row.set("budget", std::to_string(budgets[k] / 1000) + "k")
                .set("invocations", uint64_t(r.invocations))
                .set("IPC", r.counters.ipc())
                .setPct("branch share", r.counters.branchFraction())
                .setPct("mispredict",
                        r.counters.branchMispredictRate());
            rows.push_back(row);
        }
        opts.emit(rows, std::string(appName(kApps[a])) + ":");
        double drift = res[b].sim.counters.ipc() /
                           res[b + kNumBudgets - 1].sim.counters.ipc() -
                       1.0;
        opts.note("  IPC drift smallest vs largest budget: %+.1f%%\n\n",
                    drift * 100.0);
    }

    opts.note("Finding: the per-instruction metrics converge within\n"
                "a few percent once a handful of invocations are\n"
                "sampled, validating the sampling methodology used\n"
                "throughout the suite.\n");

    // --- SMARTS sampled timing: extrapolation error bounds ----------
    //
    // The simulator's own sampled-timing mode (sim::SamplingParams:
    // detailed measurement windows + warmed functional fast-forward)
    // must reproduce the full-detail IPC and mispredict rate within
    // tight bounds, or the speedup it buys is not usable for the
    // paper's metrics.  Violations make the binary exit nonzero so CI
    // catches a regression in the window extrapolation.
    opts.note("\n=== SMARTS sampled timing: extrapolation error ===\n\n");

    constexpr double kIpcTolPct = 10.0;  // |IPC error|, percent
    constexpr double kMispredTol = 1.0;  // mispredicts per 100 insts
    // LSQ/prefetch event-rate tolerance: extrapolated forwards,
    // squashes and prefetch hits per 100 instructions may deviate from
    // full detail by this much.  lsqFull* are deliberately excluded:
    // they are occupancy-style counters that cluster in kernel
    // prologues, exactly where the per-invocation detail window sits,
    // so uniform extrapolation over-weights them by design.
    constexpr double kLsqRateTol = 0.75;
    const struct { uint64_t detail, skip; } settings[] = {
        {1'000, 19'000}, // 5% detail, short windows
        {2'000, 38'000}, // 5% detail, the sim_speed_bench setting
    };
    const struct { const char *name; sim::MachineConfig mc; } machines[] = {
        {"classic", sim::MachineConfig()},
        {"lsq+stride",
         sim::MachineConfig::power5WithLsq(
             16, 16, sim::PrefetchParams::Kind::Stride)},
    };
    // Events per 100 instructions, for rate-error comparison.
    auto per100 = [](uint64_t events, uint64_t insts) {
        return insts ? 100.0 * double(events) / double(insts) : 0.0;
    };
    auto lsqRateErr = [&](const sim::Counters &s, const sim::Counters &f) {
        double err = 0.0;
        const uint64_t se[] = {s.storeForwards, s.disambigFlushes,
                               s.prefetchHits};
        const uint64_t fe[] = {f.storeForwards, f.disambigFlushes,
                               f.prefetchHits};
        for (size_t i = 0; i < std::size(se); ++i)
            err = std::max(err,
                           std::fabs(per100(se[i], s.instructions) -
                                     per100(fe[i], f.instructions)));
        return err;
    };
    int violations = 0;
    std::vector<driver::ResultRow> vrows;
    for (int a = 0; a < 4; ++a) {
        workloads::WorkloadConfig wc = opts.workload(kApps[a]);
        wc.simInstructionBudget =
            std::min<uint64_t>(opts.budget, 1'000'000);
        workloads::Workload w(wc);

        for (const auto &machine : machines) {
            kernels::KernelMachine full(appKernel(kApps[a]),
                                        mpc::Variant::Baseline,
                                        machine.mc);
            w.simulate(full);
            double fullIpc = full.totals().ipc();
            double fullMr =
                100.0 * double(full.totals().mispredDirection) /
                double(full.totals().instructions);

            for (auto s : settings) {
                kernels::KernelMachine km(appKernel(kApps[a]),
                                          mpc::Variant::Baseline,
                                          machine.mc);
                km.setSampling({s.detail, s.skip, true});
                w.simulate(km);
                double ipc = km.totals().ipc();
                double mr =
                    100.0 * double(km.totals().mispredDirection) /
                    double(km.totals().instructions);
                double ipcErrPct =
                    100.0 * std::fabs(ipc - fullIpc) / fullIpc;
                double mrErr = std::fabs(mr - fullMr);
                double lsqErr = lsqRateErr(km.totals(), full.totals());
                bool archExact =
                    km.totals().instructions ==
                        full.totals().instructions &&
                    km.totals().branches == full.totals().branches &&
                    km.totals().loads == full.totals().loads &&
                    km.totals().stores == full.totals().stores;
                bool ok = archExact && ipcErrPct < kIpcTolPct &&
                          mrErr < kMispredTol && lsqErr < kLsqRateTol;
                if (!ok)
                    ++violations;

                driver::ResultRow row;
                row.set("app", appName(kApps[a]))
                    .set("memsys", machine.name)
                    .set("window",
                         std::to_string(s.detail / 1000) + "k/" +
                             std::to_string(s.skip / 1000) + "k")
                    .set("full IPC", fullIpc)
                    .set("sampled IPC", ipc)
                    .setPct("IPC err", ipcErrPct / 100.0)
                    .set("mispred err/100", mrErr)
                    .set("lsq err/100", lsqErr)
                    .set("arch exact", archExact ? "yes" : "NO")
                    .set("ok", ok ? "yes" : "NO");
                vrows.push_back(row);
            }
        }
    }
    opts.emit(vrows, "sampled-timing error:");
    if (violations > 0) {
        std::fprintf(stderr,
                     "FAIL: %d sampled-timing point(s) exceed the "
                     "error bounds (IPC < %.0f%%, mispredicts < %.1f "
                     "per 100 instructions, lsq/prefetch events < %.1f "
                     "per 100 instructions, arch counters exact)\n",
                     violations, kIpcTolPct, kMispredTol, kLsqRateTol);
        return 1;
    }
    opts.note("\nFinding: sampled timing stays within %.0f%% IPC error,\n"
                "%.1f mispredicts and %.1f LSQ/prefetch events per 100\n"
                "instructions of full detail, on the classic and the\n"
                "LSQ memory system, with architectural counters exact.\n",
                kIpcTolPct, kMispredTol, kLsqRateTol);
    return 0;
}
