/**
 * @file
 * Reproduces paper Fig 2: Clustalw's IPC and branch misprediction rate
 * over time on the baseline POWER5.  Prints an interval series (an
 * ASCII sparkline plus CSV-like rows) showing that IPC tracks the
 * branch prediction rate.
 *
 * The series comes from the obs::PmuSampler attached to the kernel
 * machine (the generalized instrument behind --pmu-csv and bp5-trace);
 * the pre-obs bespoke sampling path is gone.
 */

#include <cmath>

#include "bench/bench_util.h"
#include "obs/pmu_sampler.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    std::printf("=== Fig 2: Clustalw IPC and branch misprediction rate "
                "over time (class %c) ===\n\n",
                "ABC"[int(opts.klass)]);

    Workload w(opts.workload(App::Clustalw));
    kernels::KernelMachine km(appKernel(App::Clustalw),
                              mpc::Variant::Baseline,
                              sim::MachineConfig());
    km.setSampleInterval(20'000);
    SimResult r = w.simulate(km);

    if (!opts.pmuCsv.empty()) {
        FILE *f = std::fopen(opts.pmuCsv.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", opts.pmuCsv.c_str());
            return 1;
        }
        std::fputs(km.sampler()->toCsv().c_str(), f);
        std::fclose(f);
    }

    std::vector<double> ipc, mis;
    for (const auto &s : r.timeline) {
        ipc.push_back(s.ipc);
        mis.push_back(s.branchMispredictRate);
    }
    if (ipc.empty()) {
        std::printf("no samples collected (budget too small)\n");
        return 1;
    }

    std::printf("samples: %zu (one per 20k cycles)\n\n", ipc.size());
    std::printf("IPC        [0..2]: %s\n",
                sparkline(ipc, 0.0, 2.0).c_str());
    std::printf("mispredict [0..%%25]: %s\n\n",
                sparkline(mis, 0.0, 0.25).c_str());

    TextTable t;
    t.header({"cycle", "IPC", "branch mispredict"});
    size_t step = std::max<size_t>(1, ipc.size() / 24);
    for (size_t i = 0; i < r.timeline.size(); i += step) {
        const auto &s = r.timeline[i];
        t.row({std::to_string(s.cycle), num(s.ipc),
               pct(s.branchMispredictRate)});
    }
    t.print();

    // The paper's observation: IPC tracks the prediction rate, i.e.
    // the two series are anticorrelated.  Report the correlation.
    double mi = 0, mm = 0;
    for (size_t i = 0; i < ipc.size(); ++i) {
        mi += ipc[i];
        mm += mis[i];
    }
    mi /= double(ipc.size());
    mm /= double(mis.size());
    double num_ = 0, di = 0, dm = 0;
    for (size_t i = 0; i < ipc.size(); ++i) {
        num_ += (ipc[i] - mi) * (mis[i] - mm);
        di += (ipc[i] - mi) * (ipc[i] - mi);
        dm += (mis[i] - mm) * (mis[i] - mm);
    }
    double corr = (di > 0 && dm > 0) ? num_ / std::sqrt(di * dm) : 0.0;
    std::printf("\ncorrelation(IPC, mispredict rate) = %.2f "
                "(paper: strongly negative - IPC tracks prediction)\n",
                corr);
    return 0;
}
