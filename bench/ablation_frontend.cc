/**
 * @file
 * Front-end ablation: the two knobs behind the paper's branch-cost
 * analysis — the taken-branch bubble (2 cycles; 3 with SMT, per
 * section III) and the misprediction redirect penalty — swept on the
 * Original and hand-max builds.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    std::printf("=== Ablation: taken-branch bubble and mispredict "
                "penalty (class %c) ===\n\n",
                "ABC"[int(opts.klass)]);

    std::printf("-- taken-branch bubble (Original code) --\n");
    TextTable t;
    t.header({"Application", "0 cycles", "2 (POWER5)", "3 (SMT)",
              "bubble cost"});
    for (int a = 0; a < 4; ++a) {
        Workload w(opts.workload(kApps[a]));
        double ipc[3];
        unsigned pens[3] = {0, 2, 3};
        for (int k = 0; k < 3; ++k) {
            sim::MachineConfig mc;
            mc.takenBranchPenalty = pens[k];
            ipc[k] = w.simulate(mpc::Variant::Baseline, mc)
                         .counters.ipc();
        }
        double cost = ipc[0] / ipc[1] - 1.0;
        t.row({appName(kApps[a]), num(ipc[0]), num(ipc[1]),
               num(ipc[2]),
               "+" + num(cost * 100.0, 1) + "% if removed"});
    }
    t.print();

    std::printf("\n-- mispredict redirect penalty --\n");
    TextTable t2;
    t2.header({"Application", "code", "8 cycles", "16 (default)",
               "24", "32"});
    for (int a = 0; a < 4; ++a) {
        for (mpc::Variant v :
             {mpc::Variant::Baseline, mpc::Variant::HandMax}) {
            Workload w(opts.workload(kApps[a]));
            std::vector<std::string> row = {appName(kApps[a]),
                                            mpc::variantName(v)};
            for (unsigned pen : {8u, 16u, 24u, 32u}) {
                sim::MachineConfig mc;
                mc.mispredictPenalty = pen;
                row.push_back(
                    num(w.simulate(v, mc).counters.ipc()));
            }
            t2.row(row);
        }
    }
    t2.print();

    std::printf(
        "\nFindings: the branchy Original build degrades steadily as\n"
        "the redirect penalty grows, while the predicated build is\n"
        "almost flat - it barely mispredicts.  The 2-cycle bubble\n"
        "costs a few percent of baseline IPC (what the BTAC of Fig 4\n"
        "recovers), and the SMT-mode 3-cycle bubble costs more.\n");
    return 0;
}
