/**
 * @file
 * Front-end ablation: the two knobs behind the paper's branch-cost
 * analysis — the taken-branch bubble (2 cycles; 3 with SMT, per
 * section III) and the misprediction redirect penalty — swept on the
 * Original and hand-max builds via the parallel ExperimentDriver.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    opts.note("=== Ablation: taken-branch bubble and mispredict "
                "penalty (class %c) ===\n\n",
                "ABC"[int(opts.klass)]);

    const unsigned bubbles[3] = {0, 2, 3};
    const unsigned redirects[4] = {8, 16, 24, 32};
    const mpc::Variant builds[2] = {mpc::Variant::Baseline,
                                    mpc::Variant::HandMax};

    // One grid: 4 apps x 3 bubbles, then 4 apps x 2 builds x 4
    // redirect penalties.
    std::vector<driver::GridPoint> grid;
    for (int a = 0; a < 4; ++a) {
        for (unsigned pen : bubbles) {
            sim::MachineConfig mc;
            mc.takenBranchPenalty = pen;
            grid.push_back(
                opts.point(kApps[a], mpc::Variant::Baseline, mc));
        }
    }
    const size_t redirectBase = grid.size();
    for (int a = 0; a < 4; ++a) {
        for (mpc::Variant v : builds) {
            for (unsigned pen : redirects) {
                sim::MachineConfig mc;
                mc.mispredictPenalty = pen;
                grid.push_back(opts.point(kApps[a], v, mc));
            }
        }
    }
    std::vector<driver::PointResult> res = opts.driver().run(grid);

    opts.note("-- taken-branch bubble (Original code) --\n");
    std::vector<driver::ResultRow> rows;
    for (int a = 0; a < 4; ++a) {
        double ipc[3];
        for (int k = 0; k < 3; ++k)
            ipc[k] = res[size_t(a) * 3 + k].sim.counters.ipc();
        driver::ResultRow row;
        row.set("Application", appName(kApps[a]))
            .set("0 cycles", ipc[0])
            .set("2 (POWER5)", ipc[1])
            .set("3 (SMT)", ipc[2])
            .set("bubble cost",
                 "+" + num((ipc[0] / ipc[1] - 1.0) * 100.0, 1) +
                     "% if removed");
        rows.push_back(row);
    }
    opts.emit(rows);

    opts.note("\n-- mispredict redirect penalty --\n");
    std::vector<driver::ResultRow> rows2;
    size_t idx = redirectBase;
    for (int a = 0; a < 4; ++a) {
        for (mpc::Variant v : builds) {
            driver::ResultRow row;
            row.set("Application", appName(kApps[a]))
                .set("code", mpc::variantName(v));
            for (unsigned pen : redirects) {
                row.set(std::to_string(pen) +
                            (pen == 16 ? " (default)" : " cycles"),
                        res[idx++].sim.counters.ipc());
            }
            rows2.push_back(row);
        }
    }
    opts.emit(rows2);

    opts.note(
        "\nFindings: the branchy Original build degrades steadily as\n"
        "the redirect penalty grows, while the predicated build is\n"
        "almost flat - it barely mispredicts.  The 2-cycle bubble\n"
        "costs a few percent of baseline IPC (what the BTAC of Fig 4\n"
        "recovers), and the SMT-mode 3-cycle bubble costs more.\n");
    return 0;
}
