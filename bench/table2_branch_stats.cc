/**
 * @file
 * Reproduces paper Table II: branch statistics of the four
 * applications for each predication variant — percentage of
 * instructions that are branches, the branch misprediction rate, and
 * the fraction of branches taken.
 *
 * With --analyze, each application's baseline kernel additionally gets
 * the static/dynamic branch breakdown: the bp5_analysis classifier
 * labels every branch site in the binary (loop-back / data-dep /
 * guard), the run collects per-site PMU counters, and the join shows
 * which static class the mispredictions concentrate in.  The paper's
 * claim (section IV-A) is that the data-dependent max() hammocks
 * dominate — this table is that claim made measurable.
 */

#include "analysis/branch_class.h"
#include "bench/bench_util.h"
#include "kernels/kernels.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    std::printf("=== Table II: branch behaviour with predicated "
                "instructions (class %c) ===\n\n",
                "ABC"[int(opts.klass)]);

    for (int a = 0; a < 4; ++a) {
        Workload w(opts.workload(kApps[a]));
        const PaperTable2Row &p = kPaperTable2[a];
        TextTable t(std::string(appName(kApps[a])) + ":");
        t.header({"Variant", "branches/inst", "(paper)",
                  "mispredict", "(paper)", "taken", "(paper)"});
        SimResult baseline;
        for (int v = 0; v < 5; ++v) { // Table II has no Combination
            mpc::Variant var = static_cast<mpc::Variant>(v);
            bool profile = opts.analyze && v == 0;
            SimResult r = w.simulate(var, sim::MachineConfig(), 0,
                                     profile);
            const sim::Counters &c = r.counters;
            t.row({mpc::variantName(var),
                   pct(c.branchFraction()),
                   num(p.branchesPct[v], 1) + "%",
                   pct(c.branchMispredictRate()),
                   num(p.mispredictPct[v], 1) + "%",
                   pct(c.takenBranchFraction()),
                   num(p.takenPct[v], 1) + "%"});
            if (profile)
                baseline = std::move(r);
        }
        t.print();
        std::printf("\n");

        if (opts.analyze) {
            // Static classification of the baseline binary, joined
            // with the per-site PMU counters of the run above.
            analysis::Cfg cfg = analysis::buildCfg(
                analysis::CodeImage::fromProgram(
                    baseline.compiled.program(kernels::kCodeBase)));
            auto sites = analysis::classifyBranches(cfg);
            auto classes =
                analysis::joinProfile(sites, baseline.branchProfile);
            std::string app = appName(kApps[a]);
            opts.emit(analysis::classProfileRows(classes),
                      app + ": static class vs PMU (Original)");
            std::printf("\n");
            opts.emit(analysis::siteProfileRows(sites,
                                                baseline.branchProfile, 8),
                      app + ": hottest mispredicting sites");
            std::printf("\n");
        }
    }

    std::printf("Shape checks (paper section VI-A): predication "
                "reduces the branch share of every application\n"
                "(Clustalw's roughly halves), while the remaining "
                "branches stay hard or get easier to predict.\n");
    return 0;
}
