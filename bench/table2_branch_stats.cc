/**
 * @file
 * Reproduces paper Table II: branch statistics of the four
 * applications for each predication variant — percentage of
 * instructions that are branches, the branch misprediction rate, and
 * the fraction of branches taken.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    std::printf("=== Table II: branch behaviour with predicated "
                "instructions (class %c) ===\n\n",
                "ABC"[int(opts.klass)]);

    for (int a = 0; a < 4; ++a) {
        Workload w(opts.workload(kApps[a]));
        const PaperTable2Row &p = kPaperTable2[a];
        TextTable t(std::string(appName(kApps[a])) + ":");
        t.header({"Variant", "branches/inst", "(paper)",
                  "mispredict", "(paper)", "taken", "(paper)"});
        for (int v = 0; v < 5; ++v) { // Table II has no Combination
            mpc::Variant var = static_cast<mpc::Variant>(v);
            SimResult r = w.simulate(var, sim::MachineConfig());
            const sim::Counters &c = r.counters;
            t.row({mpc::variantName(var),
                   pct(c.branchFraction()),
                   num(p.branchesPct[v], 1) + "%",
                   pct(c.branchMispredictRate()),
                   num(p.mispredictPct[v], 1) + "%",
                   pct(c.takenBranchFraction()),
                   num(p.takenPct[v], 1) + "%"});
        }
        t.print();
        std::printf("\n");
    }

    std::printf("Shape checks (paper section VI-A): predication "
                "reduces the branch share of every application\n"
                "(Clustalw's roughly halves), while the remaining "
                "branches stay hard or get easier to predict.\n");
    return 0;
}
