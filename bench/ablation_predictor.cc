/**
 * @file
 * Direction-predictor ablation.  The paper argues that "improving the
 * accuracy of the branch predictor would be difficult" for these
 * value-dependent branches and turns to predication instead; this
 * bench quantifies that claim: baseline IPC and misprediction rate
 * under always-taken, bimodal, gshare and tournament predictors, and
 * under a 16x larger tournament.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    std::printf("=== Ablation: direction predictors (class %c, "
                "Original code) ===\n\n",
                "ABC"[int(opts.klass)]);

    struct Config
    {
        const char *name;
        sim::PredictorKind kind;
        unsigned entries;
    };
    const Config configs[] = {
        {"always-taken", sim::PredictorKind::AlwaysTaken, 16384},
        {"bimodal 16K", sim::PredictorKind::Bimodal, 16384},
        {"gshare 16K", sim::PredictorKind::Gshare, 16384},
        {"tournament 16K", sim::PredictorKind::Tournament, 16384},
        {"tournament 256K", sim::PredictorKind::Tournament, 262144},
    };

    for (int a = 0; a < 4; ++a) {
        Workload w(opts.workload(kApps[a]));
        TextTable t(std::string(appName(kApps[a])) + ":");
        t.header({"Predictor", "IPC", "mispredict rate"});
        for (const Config &c : configs) {
            sim::MachineConfig mc;
            mc.predictor = c.kind;
            mc.predictorEntries = c.entries;
            SimResult r = w.simulate(mpc::Variant::Baseline, mc);
            t.row({c.name, num(r.counters.ipc()),
                   pct(r.counters.branchMispredictRate())});
        }
        // For contrast: what predication achieves instead.
        SimResult hm = w.simulate(mpc::Variant::HandMax,
                                  sim::MachineConfig());
        t.row({"(hand max, tournament 16K)", num(hm.counters.ipc()),
               pct(hm.counters.branchMispredictRate())});
        t.print();
        std::printf("\n");
    }

    std::printf("Findings: growing or upgrading the predictor moves\n"
                "IPC by a few percent at best - the DP max() branches\n"
                "are value-dependent and carry little exploitable\n"
                "history - while predication removes them outright\n"
                "(the paper's argument in section III).\n");
    return 0;
}
