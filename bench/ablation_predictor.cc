/**
 * @file
 * Direction-predictor ablation.  The paper argues that "improving the
 * accuracy of the branch predictor would be difficult" for these
 * value-dependent branches and turns to predication instead; this
 * bench quantifies that claim: baseline IPC and misprediction rate
 * under always-taken, bimodal, gshare and tournament predictors, and
 * under a 16x larger tournament.  The sweep runs on the parallel
 * ExperimentDriver.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    opts.note("=== Ablation: direction predictors (class %c, "
                "Original code) ===\n\n",
                "ABC"[int(opts.klass)]);

    struct Config
    {
        const char *name;
        sim::PredictorKind kind;
        unsigned entries;
    };
    const Config configs[] = {
        {"always-taken", sim::PredictorKind::AlwaysTaken, 16384},
        {"bimodal 16K", sim::PredictorKind::Bimodal, 16384},
        {"gshare 16K", sim::PredictorKind::Gshare, 16384},
        {"tournament 16K", sim::PredictorKind::Tournament, 16384},
        {"tournament 256K", sim::PredictorKind::Tournament, 262144},
    };
    constexpr size_t kNumConfigs = std::size(configs);

    // Per app: the predictor sweep plus the hand-max contrast point.
    std::vector<driver::GridPoint> grid;
    for (int a = 0; a < 4; ++a) {
        for (const Config &c : configs) {
            sim::MachineConfig mc;
            mc.predictor = c.kind;
            mc.predictorEntries = c.entries;
            grid.push_back(
                opts.point(kApps[a], mpc::Variant::Baseline, mc));
        }
        grid.push_back(opts.point(kApps[a], mpc::Variant::HandMax,
                                  sim::MachineConfig()));
    }
    std::vector<driver::PointResult> res = opts.driver().run(grid);

    for (int a = 0; a < 4; ++a) {
        const size_t b = size_t(a) * (kNumConfigs + 1);
        std::vector<driver::ResultRow> rows;
        for (size_t k = 0; k < kNumConfigs; ++k) {
            const sim::Counters &c = res[b + k].sim.counters;
            driver::ResultRow row;
            row.set("Predictor", configs[k].name)
                .set("IPC", c.ipc())
                .setPct("mispredict rate", c.branchMispredictRate());
            rows.push_back(row);
        }
        const sim::Counters &hm = res[b + kNumConfigs].sim.counters;
        driver::ResultRow row;
        row.set("Predictor", "(hand max, tournament 16K)")
            .set("IPC", hm.ipc())
            .setPct("mispredict rate", hm.branchMispredictRate());
        rows.push_back(row);
        opts.emit(rows, std::string(appName(kApps[a])) + ":");
        opts.note("\n");
    }

    opts.note("Findings: growing or upgrading the predictor moves\n"
                "IPC by a few percent at best - the DP max() branches\n"
                "are value-dependent and carry little exploitable\n"
                "history - while predication removes them outright\n"
                "(the paper's argument in section III).\n");
    return 0;
}
