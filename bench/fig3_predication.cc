/**
 * @file
 * Reproduces paper Fig 3: IPC of the four applications when the max
 * and isel predicated instructions are inserted by hand and by the
 * compiler's if-conversion pass, plus the "Combination" build
 * (hand max + compiler isel).  The (app x variant) sweep runs on the
 * parallel ExperimentDriver; results are aggregated in grid order.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    opts.note("=== Fig 3: IPC with max and isel instructions "
                "(class %c inputs) ===\n\n",
                "ABC"[int(opts.klass)]);

    constexpr int kNumVariants = int(mpc::Variant::NUM_VARIANTS);
    std::vector<driver::GridPoint> grid;
    for (int a = 0; a < 4; ++a) {
        for (int v = 0; v < kNumVariants; ++v) {
            grid.push_back(opts.point(kApps[a],
                                      static_cast<mpc::Variant>(v),
                                      sim::MachineConfig()));
        }
    }
    std::vector<driver::PointResult> res = opts.driver().run(grid);

    for (int a = 0; a < 4; ++a) {
        const PaperFig3Row &p = kPaperFig3[a];
        double baseIpc =
            res[size_t(a) * kNumVariants].sim.counters.ipc();
        std::vector<driver::ResultRow> rows;
        for (int v = 0; v < kNumVariants; ++v) {
            mpc::Variant var = static_cast<mpc::Variant>(v);
            const sim::Counters &c =
                res[size_t(a) * kNumVariants + v].sim.counters;
            std::string paper = "-";
            if (var == mpc::Variant::HandIsel && p.handIselPct >= 0)
                paper = "+" + num(p.handIselPct, 1) + "%";
            if (var == mpc::Variant::HandMax && p.handMaxPct >= 0)
                paper = "+" + num(p.handMaxPct, 1) + "%";
            driver::ResultRow row;
            row.set("Application", appName(kApps[a]))
                .set("Variant", mpc::variantName(var))
                .set("IPC", c.ipc())
                .setGainPct("vs Original", c.ipc() / baseIpc - 1.0)
                .set("(paper)", paper)
                .setPct("isel+max/inst", c.predicatedFraction())
                .setPct("cmp/inst", c.compareFraction())
                .setPct("mispred/br", c.branchMispredictRate());
            if (opts.cpi)
                addCpiColumns(row, c);
            rows.push_back(row);
        }
        opts.emit(rows, std::string(appName(kApps[a])) + ":");
        opts.note("\n");
    }

    opts.note(
        "Shape checks (paper section VI-A):\n"
        "  - max outperforms isel for hand insertion (isel needs the\n"
        "    extra cmp: watch the cmp/inst column rise)\n"
        "  - Clustalw/Hmmer: hand beats the compiler (array-reference\n"
        "    hammocks block gcc's if-conversion)\n"
        "  - Blast/Fasta: the compiler beats hand insertion (it finds\n"
        "    the less obvious hammocks)\n"
        "  - comp. spec: the analysis-backed if-converter proves the\n"
        "    loads/stores gcc must reject safe, converting more\n"
        "    hammocks than comp. isel and narrowing the hand-vs-\n"
        "    compiler gap in the mispred/br column\n"
        "  - paper averages: isel +29.8%%, max +34.8%%\n");
    if (opts.cpi)
        opts.note(
            "\nCPI columns (--cpi, paper section IV cycle accounting):\n"
            "  - branch-flush cycles dominate the DP kernels' stalls in\n"
            "    the Original build (flush/cyc is the largest stall\n"
            "    share) and shrink under predication as the\n"
            "    hard-to-predict hammock branches disappear\n");
    return 0;
}
