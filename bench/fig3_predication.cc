/**
 * @file
 * Reproduces paper Fig 3: IPC of the four applications when the max
 * and isel predicated instructions are inserted by hand and by the
 * compiler's if-conversion pass, plus the "Combination" build
 * (hand max + compiler isel).
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    std::printf("=== Fig 3: IPC with max and isel instructions "
                "(class %c inputs) ===\n\n",
                "ABC"[int(opts.klass)]);

    for (int a = 0; a < 4; ++a) {
        Workload w(opts.workload(kApps[a]));
        TextTable t(std::string(appName(kApps[a])) + ":");
        t.header({"Variant", "IPC", "vs Original", "(paper)",
                  "isel+max/inst", "cmp/inst"});
        double baseIpc = 0.0;
        const PaperFig3Row &p = kPaperFig3[a];
        for (int v = 0; v < int(mpc::Variant::NUM_VARIANTS); ++v) {
            mpc::Variant var = static_cast<mpc::Variant>(v);
            SimResult r = w.simulate(var, sim::MachineConfig());
            const sim::Counters &c = r.counters;
            if (var == mpc::Variant::Baseline)
                baseIpc = c.ipc();
            double gain = c.ipc() / baseIpc - 1.0;
            std::string paper = "-";
            if (var == mpc::Variant::HandIsel && p.handIselPct >= 0)
                paper = "+" + num(p.handIselPct, 1) + "%";
            if (var == mpc::Variant::HandMax && p.handMaxPct >= 0)
                paper = "+" + num(p.handMaxPct, 1) + "%";
            t.row({mpc::variantName(var), num(c.ipc()),
                   (gain >= 0 ? "+" : "") + num(gain * 100.0, 1) + "%",
                   paper, pct(c.predicatedFraction()),
                   pct(c.compareFraction())});
        }
        t.print();
        std::printf("\n");
    }

    std::printf(
        "Shape checks (paper section VI-A):\n"
        "  - max outperforms isel for hand insertion (isel needs the\n"
        "    extra cmp: watch the cmp/inst column rise)\n"
        "  - Clustalw/Hmmer: hand beats the compiler (array-reference\n"
        "    hammocks block gcc's if-conversion)\n"
        "  - Blast/Fasta: the compiler beats hand insertion (it finds\n"
        "    the less obvious hammocks)\n"
        "  - paper averages: isel +29.8%%, max +34.8%%\n");
    return 0;
}
