/**
 * @file
 * Reproduces paper Fig 4: the effect of adding the eight-entry Branch
 * Target Address Cache — on the original POWER5 and on the
 * predication-enhanced ("Combination") build — plus the BTAC's own
 * misprediction rate table.  The (app x build x machine) sweep runs on
 * the parallel ExperimentDriver.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    opts.note("=== Fig 4: effect of an eight-entry BTAC "
                "(class %c) ===\n\n",
                "ABC"[int(opts.klass)]);

    sim::MachineConfig plain;
    sim::MachineConfig btac = sim::MachineConfig::power5WithBtac();

    // Per app: {base, base+BTAC, comb, comb+BTAC}.
    std::vector<driver::GridPoint> grid;
    for (int a = 0; a < 4; ++a) {
        grid.push_back(opts.point(kApps[a], mpc::Variant::Baseline,
                                  plain));
        grid.push_back(opts.point(kApps[a], mpc::Variant::Baseline,
                                  btac));
        grid.push_back(opts.point(kApps[a], mpc::Variant::Combination,
                                  plain));
        grid.push_back(opts.point(kApps[a], mpc::Variant::Combination,
                                  btac));
    }
    std::vector<driver::PointResult> res = opts.driver().run(grid);

    std::vector<driver::ResultRow> rows;
    for (int a = 0; a < 4; ++a) {
        const sim::Counters &b0 = res[size_t(a) * 4 + 0].sim.counters;
        const sim::Counters &b1 = res[size_t(a) * 4 + 1].sim.counters;
        const sim::Counters &c0 = res[size_t(a) * 4 + 2].sim.counters;
        const sim::Counters &c1 = res[size_t(a) * 4 + 3].sim.counters;
        double mrate = b1.btacPredictions
                           ? double(b1.btacMispredicts) /
                                 double(b1.btacPredictions)
                           : 0.0;
        driver::ResultRow row;
        row.set("Application", appName(kApps[a]))
            .set("base IPC", b0.ipc())
            .set("base+BTAC", b1.ipc())
            .setGainPct("gain", b1.ipc() / b0.ipc() - 1.0)
            .set("comb IPC", c0.ipc())
            .set("comb+BTAC", c1.ipc())
            .setGainPct("comb gain", c1.ipc() / c0.ipc() - 1.0)
            .setPct("BTAC mispred", mrate);
        rows.push_back(row);
    }
    opts.emit(rows);

    opts.note(
        "\nShape checks (paper section VI-B):\n"
        "  - paper gains on the original design: +1.8%% to +7.9%%,\n"
        "    largest for Fasta\n"
        "  - the BTAC's own misprediction rate is low (paper: 1.4%%\n"
        "    to 2.5%%), so eight entries suffice\n"
        "  - gains shrink on predicated code (fewer taken-branch\n"
        "    bubbles remain to remove)\n");
    return 0;
}
