/**
 * @file
 * Reproduces paper Fig 4: the effect of adding the eight-entry Branch
 * Target Address Cache — on the original POWER5 and on the
 * predication-enhanced ("Combination") build — plus the BTAC's own
 * misprediction rate table.
 */

#include "bench/bench_util.h"

using namespace bp5;
using namespace bp5::bench;
using namespace bp5::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    std::printf("=== Fig 4: effect of an eight-entry BTAC "
                "(class %c) ===\n\n",
                "ABC"[int(opts.klass)]);

    TextTable t;
    t.header({"Application", "base IPC", "base+BTAC", "gain",
              "comb IPC", "comb+BTAC", "gain", "BTAC mispred"});

    for (int a = 0; a < 4; ++a) {
        Workload w(opts.workload(kApps[a]));
        sim::MachineConfig plain;
        sim::MachineConfig btac = sim::MachineConfig::power5WithBtac();

        SimResult b0 = w.simulate(mpc::Variant::Baseline, plain);
        SimResult b1 = w.simulate(mpc::Variant::Baseline, btac);
        SimResult c0 = w.simulate(mpc::Variant::Combination, plain);
        SimResult c1 = w.simulate(mpc::Variant::Combination, btac);

        double g0 = b1.counters.ipc() / b0.counters.ipc() - 1.0;
        double g1 = c1.counters.ipc() / c0.counters.ipc() - 1.0;
        double mrate =
            b1.counters.btacPredictions
                ? double(b1.counters.btacMispredicts) /
                      double(b1.counters.btacPredictions)
                : 0.0;
        t.row({appName(kApps[a]), num(b0.counters.ipc()),
               num(b1.counters.ipc()),
               (g0 >= 0 ? "+" : "") + num(g0 * 100.0, 1) + "%",
               num(c0.counters.ipc()), num(c1.counters.ipc()),
               (g1 >= 0 ? "+" : "") + num(g1 * 100.0, 1) + "%",
               pct(mrate)});
    }
    t.print();

    std::printf(
        "\nShape checks (paper section VI-B):\n"
        "  - paper gains on the original design: +1.8%% to +7.9%%,\n"
        "    largest for Fasta\n"
        "  - the BTAC's own misprediction rate is low (paper: 1.4%%\n"
        "    to 2.5%%), so eight entries suffice\n"
        "  - gains shrink on predicated code (fewer taken-branch\n"
        "    bubbles remain to remove)\n");
    return 0;
}
