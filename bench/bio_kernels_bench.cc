/**
 * @file
 * google-benchmark microbenchmarks of the native bioinformatics
 * kernels (the oracles behind the simulated experiments): pairwise
 * alignment, Plan7 Viterbi, and the BLAST pipeline stages.
 */

#include <benchmark/benchmark.h>

#include "bio/align.h"
#include "bio/blast.h"
#include "bio/clustal.h"
#include "bio/generator.h"
#include "bio/hmm.h"

using namespace bp5::bio;

namespace {

const SubstitutionMatrix &kM = SubstitutionMatrix::blosum62();
const GapPenalty kGap{10, 1};

Sequence
makeSeq(size_t len, uint64_t seed)
{
    SequenceGenerator g(seed);
    return g.random(len, "s");
}

void
BM_SmithWatermanScore(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    Sequence a = makeSeq(n, 1), b = makeSeq(n, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(swScore(a, b, kM, kGap));
    state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n) *
                            int64_t(n));
}
BENCHMARK(BM_SmithWatermanScore)->Arg(100)->Arg(300)->Arg(600);

void
BM_NeedlemanWunschScore(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    Sequence a = makeSeq(n, 3), b = makeSeq(n, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(nwScore(a, b, kM, kGap));
    state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n) *
                            int64_t(n));
}
BENCHMARK(BM_NeedlemanWunschScore)->Arg(100)->Arg(300)->Arg(600);

void
BM_SmithWatermanTraceback(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    SequenceGenerator g(5);
    Sequence a = g.random(n, "a");
    Sequence b = g.mutate(a, MutationModel{0.2, 0.03, 0.03}, "b");
    for (auto _ : state)
        benchmark::DoNotOptimize(swAlign(a, b, kM, kGap).score);
}
BENCHMARK(BM_SmithWatermanTraceback)->Arg(100)->Arg(300);

void
BM_Plan7Viterbi(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    SequenceGenerator g(7);
    auto fam = g.family(6, n, MutationModel{0.15, 0.02, 0.02});
    Plan7Model model = Plan7Model::fromFamily(fam);
    Sequence q = fam[0];
    for (auto _ : state)
        benchmark::DoNotOptimize(model.viterbi(q));
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(model.length()) * int64_t(q.size()));
}
BENCHMARK(BM_Plan7Viterbi)->Arg(80)->Arg(160);

void
BM_Plan7Forward(benchmark::State &state)
{
    SequenceGenerator g(9);
    auto fam = g.family(6, 80, MutationModel{0.15, 0.02, 0.02});
    Plan7Model model = Plan7Model::fromFamily(fam);
    Sequence q = fam[0];
    for (auto _ : state)
        benchmark::DoNotOptimize(model.forward(q));
}
BENCHMARK(BM_Plan7Forward);

void
BM_BlastWordIndexBuild(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    Sequence q = makeSeq(n, 11);
    BlastParams p;
    for (auto _ : state) {
        WordIndex idx(q, kM, p);
        benchmark::DoNotOptimize(idx.totalEntries());
    }
}
BENCHMARK(BM_BlastWordIndexBuild)->Arg(100)->Arg(300);

void
BM_BlastSearchDatabase(benchmark::State &state)
{
    SequenceGenerator g(13);
    Sequence q = g.random(200, "q");
    auto db = g.database(q, 20, 100, 300, 5,
                         MutationModel{0.15, 0.02, 0.02});
    BlastSearch search(q, kM);
    for (auto _ : state)
        benchmark::DoNotOptimize(search.search(db).size());
}
BENCHMARK(BM_BlastSearchDatabase);

void
BM_ClustalProgressiveAlign(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    SequenceGenerator g(15);
    auto fam = g.family(n, 100, MutationModel{0.2, 0.03, 0.03});
    for (auto _ : state) {
        Msa msa = progressiveAlign(fam, kM, kGap);
        benchmark::DoNotOptimize(msa.rows.size());
    }
}
BENCHMARK(BM_ClustalProgressiveAlign)->Arg(4)->Arg(8);

} // namespace

BENCHMARK_MAIN();
