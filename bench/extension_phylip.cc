/**
 * @file
 * Extension experiment (paper section VIII): "These results can be
 * extended to ... the phylogeny reconstruction application Phylip."
 * This bench makes that claim concrete: the Sankoff small-parsimony
 * kernel — the DP at the heart of Phylip-class packages — is run
 * through the same variant sweep as Fig 3.  Its inner loop is a nest
 * of min() statements, so predication removes its value-dependent
 * branches exactly as it does for the alignment kernels.
 */

#include "bench/bench_util.h"

#include "bio/generator.h"
#include "bio/parsimony.h"

using namespace bp5;
using namespace bp5::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    std::printf("=== Extension: Phylip-class parsimony kernel "
                "(Sankoff) ===\n\n");

    // A DNA family and its guide tree; the kernel scores one site per
    // invocation (Phylip's inner loop over alignment columns).
    size_t leaves = opts.klass == workloads::InputClass::A ? 8
                    : opts.klass == workloads::InputClass::B ? 16
                                                             : 24;
    size_t sites = 200;
    bio::SequenceGenerator gen(opts.seed, bio::Alphabet::Dna);
    auto fam = gen.family(leaves, sites,
                          bio::MutationModel{0.2, 0.0, 0.0});
    auto dist = bio::pairwiseDistances(fam, bio::SubstitutionMatrix::dna(),
                                       bio::GapPenalty{10, 1});
    bio::GuideTree tree = bio::upgmaTree(dist);
    bio::ParsimonyCost cost =
        bio::ParsimonyCost::transitionTransversion();

    std::printf("tree: %zu leaves; %zu sites; transition/transversion "
                "costs 1/2\n\n",
                leaves, sites);

    TextTable t;
    t.header({"Variant", "IPC", "vs Original", "branches/inst",
              "mispredict", "min-ops/inst"});
    double baseIpc = 0.0;
    for (int v = 0; v < int(mpc::Variant::NUM_VARIANTS); ++v) {
        mpc::Variant var = static_cast<mpc::Variant>(v);
        kernels::KernelMachine km(kernels::KernelKind::Sankoff, var,
                                  sim::MachineConfig());
        std::vector<uint8_t> states(leaves);
        for (size_t col = 0;
             col < sites && km.totals().instructions < opts.budget;
             ++col) {
            for (size_t i = 0; i < leaves; ++i)
                states[i] = fam[i][col];
            kernels::SankoffProblem p{&tree, &states, &cost};
            km.run(p);
        }
        const sim::Counters &c = km.totals();
        if (var == mpc::Variant::Baseline)
            baseIpc = c.ipc();
        double gain = c.ipc() / baseIpc - 1.0;
        t.row({mpc::variantName(var), num(c.ipc()),
               (gain >= 0 ? "+" : "") + num(gain * 100.0, 1) + "%",
               pct(c.branchFraction()),
               pct(c.branchMispredictRate()),
               pct(c.predicatedFraction())});
    }
    t.print();

    std::printf("\nFinding: the Sankoff recurrence behaves like the\n"
                "four alignment kernels - its min() hammocks are\n"
                "value-dependent, the baseline mispredicts heavily,\n"
                "and the paper's predicated instructions recover the\n"
                "loss, supporting the extension claim of section\n"
                "VIII.\n");
    return 0;
}
