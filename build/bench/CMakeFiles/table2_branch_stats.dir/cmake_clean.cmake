file(REMOVE_RECURSE
  "CMakeFiles/table2_branch_stats.dir/table2_branch_stats.cc.o"
  "CMakeFiles/table2_branch_stats.dir/table2_branch_stats.cc.o.d"
  "table2_branch_stats"
  "table2_branch_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_branch_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
