file(REMOVE_RECURSE
  "CMakeFiles/sim_speed_bench.dir/sim_speed_bench.cc.o"
  "CMakeFiles/sim_speed_bench.dir/sim_speed_bench.cc.o.d"
  "sim_speed_bench"
  "sim_speed_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_speed_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
