file(REMOVE_RECURSE
  "CMakeFiles/ablation_btac.dir/ablation_btac.cc.o"
  "CMakeFiles/ablation_btac.dir/ablation_btac.cc.o.d"
  "ablation_btac"
  "ablation_btac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_btac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
