# Empty dependencies file for ablation_btac.
# This may be replaced when dependencies are built.
