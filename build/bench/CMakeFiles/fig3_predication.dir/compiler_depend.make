# Empty compiler generated dependencies file for fig3_predication.
# This may be replaced when dependencies are built.
