file(REMOVE_RECURSE
  "CMakeFiles/fig3_predication.dir/fig3_predication.cc.o"
  "CMakeFiles/fig3_predication.dir/fig3_predication.cc.o.d"
  "fig3_predication"
  "fig3_predication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_predication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
