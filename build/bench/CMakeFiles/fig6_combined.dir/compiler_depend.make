# Empty compiler generated dependencies file for fig6_combined.
# This may be replaced when dependencies are built.
