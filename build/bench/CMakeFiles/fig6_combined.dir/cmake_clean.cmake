file(REMOVE_RECURSE
  "CMakeFiles/fig6_combined.dir/fig6_combined.cc.o"
  "CMakeFiles/fig6_combined.dir/fig6_combined.cc.o.d"
  "fig6_combined"
  "fig6_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
