file(REMOVE_RECURSE
  "CMakeFiles/fig1_profile.dir/fig1_profile.cc.o"
  "CMakeFiles/fig1_profile.dir/fig1_profile.cc.o.d"
  "fig1_profile"
  "fig1_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
