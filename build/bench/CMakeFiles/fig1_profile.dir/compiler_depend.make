# Empty compiler generated dependencies file for fig1_profile.
# This may be replaced when dependencies are built.
