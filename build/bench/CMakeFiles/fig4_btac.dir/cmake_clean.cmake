file(REMOVE_RECURSE
  "CMakeFiles/fig4_btac.dir/fig4_btac.cc.o"
  "CMakeFiles/fig4_btac.dir/fig4_btac.cc.o.d"
  "fig4_btac"
  "fig4_btac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_btac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
