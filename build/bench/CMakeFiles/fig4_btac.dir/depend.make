# Empty dependencies file for fig4_btac.
# This may be replaced when dependencies are built.
