# Empty dependencies file for extension_phylip.
# This may be replaced when dependencies are built.
