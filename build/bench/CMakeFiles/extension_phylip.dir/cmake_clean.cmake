file(REMOVE_RECURSE
  "CMakeFiles/extension_phylip.dir/extension_phylip.cc.o"
  "CMakeFiles/extension_phylip.dir/extension_phylip.cc.o.d"
  "extension_phylip"
  "extension_phylip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_phylip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
