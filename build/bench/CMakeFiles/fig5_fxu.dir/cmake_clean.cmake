file(REMOVE_RECURSE
  "CMakeFiles/fig5_fxu.dir/fig5_fxu.cc.o"
  "CMakeFiles/fig5_fxu.dir/fig5_fxu.cc.o.d"
  "fig5_fxu"
  "fig5_fxu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fxu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
