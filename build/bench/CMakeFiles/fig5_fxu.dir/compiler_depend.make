# Empty compiler generated dependencies file for fig5_fxu.
# This may be replaced when dependencies are built.
