file(REMOVE_RECURSE
  "CMakeFiles/bio_kernels_bench.dir/bio_kernels_bench.cc.o"
  "CMakeFiles/bio_kernels_bench.dir/bio_kernels_bench.cc.o.d"
  "bio_kernels_bench"
  "bio_kernels_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_kernels_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
