# Empty compiler generated dependencies file for bio_kernels_bench.
# This may be replaced when dependencies are built.
