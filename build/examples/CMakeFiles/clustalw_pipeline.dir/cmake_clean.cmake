file(REMOVE_RECURSE
  "CMakeFiles/clustalw_pipeline.dir/clustalw_pipeline.cpp.o"
  "CMakeFiles/clustalw_pipeline.dir/clustalw_pipeline.cpp.o.d"
  "clustalw_pipeline"
  "clustalw_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustalw_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
