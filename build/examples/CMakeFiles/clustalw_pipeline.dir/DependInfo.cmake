
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/clustalw_pipeline.cpp" "examples/CMakeFiles/clustalw_pipeline.dir/clustalw_pipeline.cpp.o" "gcc" "examples/CMakeFiles/clustalw_pipeline.dir/clustalw_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/bp5_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bp5_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/bp5_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/bp5_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bp5_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/masm/CMakeFiles/bp5_masm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/bp5_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bp5_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
