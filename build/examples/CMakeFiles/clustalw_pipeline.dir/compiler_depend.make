# Empty compiler generated dependencies file for clustalw_pipeline.
# This may be replaced when dependencies are built.
