# Empty dependencies file for hmmer_search.
# This may be replaced when dependencies are built.
