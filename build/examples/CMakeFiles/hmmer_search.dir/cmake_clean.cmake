file(REMOVE_RECURSE
  "CMakeFiles/hmmer_search.dir/hmmer_search.cpp.o"
  "CMakeFiles/hmmer_search.dir/hmmer_search.cpp.o.d"
  "hmmer_search"
  "hmmer_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmer_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
