file(REMOVE_RECURSE
  "CMakeFiles/bp5_masm.dir/assembler.cc.o"
  "CMakeFiles/bp5_masm.dir/assembler.cc.o.d"
  "libbp5_masm.a"
  "libbp5_masm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp5_masm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
