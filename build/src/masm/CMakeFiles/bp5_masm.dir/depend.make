# Empty dependencies file for bp5_masm.
# This may be replaced when dependencies are built.
