file(REMOVE_RECURSE
  "libbp5_masm.a"
)
