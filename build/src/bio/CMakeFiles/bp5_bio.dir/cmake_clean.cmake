file(REMOVE_RECURSE
  "CMakeFiles/bp5_bio.dir/align.cc.o"
  "CMakeFiles/bp5_bio.dir/align.cc.o.d"
  "CMakeFiles/bp5_bio.dir/blast.cc.o"
  "CMakeFiles/bp5_bio.dir/blast.cc.o.d"
  "CMakeFiles/bp5_bio.dir/clustal.cc.o"
  "CMakeFiles/bp5_bio.dir/clustal.cc.o.d"
  "CMakeFiles/bp5_bio.dir/fasta.cc.o"
  "CMakeFiles/bp5_bio.dir/fasta.cc.o.d"
  "CMakeFiles/bp5_bio.dir/generator.cc.o"
  "CMakeFiles/bp5_bio.dir/generator.cc.o.d"
  "CMakeFiles/bp5_bio.dir/hmm.cc.o"
  "CMakeFiles/bp5_bio.dir/hmm.cc.o.d"
  "CMakeFiles/bp5_bio.dir/parsimony.cc.o"
  "CMakeFiles/bp5_bio.dir/parsimony.cc.o.d"
  "CMakeFiles/bp5_bio.dir/scoring.cc.o"
  "CMakeFiles/bp5_bio.dir/scoring.cc.o.d"
  "CMakeFiles/bp5_bio.dir/sequence.cc.o"
  "CMakeFiles/bp5_bio.dir/sequence.cc.o.d"
  "libbp5_bio.a"
  "libbp5_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp5_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
