file(REMOVE_RECURSE
  "libbp5_bio.a"
)
