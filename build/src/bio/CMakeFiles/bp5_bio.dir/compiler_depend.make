# Empty compiler generated dependencies file for bp5_bio.
# This may be replaced when dependencies are built.
