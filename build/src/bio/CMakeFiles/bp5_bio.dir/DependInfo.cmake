
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bio/align.cc" "src/bio/CMakeFiles/bp5_bio.dir/align.cc.o" "gcc" "src/bio/CMakeFiles/bp5_bio.dir/align.cc.o.d"
  "/root/repo/src/bio/blast.cc" "src/bio/CMakeFiles/bp5_bio.dir/blast.cc.o" "gcc" "src/bio/CMakeFiles/bp5_bio.dir/blast.cc.o.d"
  "/root/repo/src/bio/clustal.cc" "src/bio/CMakeFiles/bp5_bio.dir/clustal.cc.o" "gcc" "src/bio/CMakeFiles/bp5_bio.dir/clustal.cc.o.d"
  "/root/repo/src/bio/fasta.cc" "src/bio/CMakeFiles/bp5_bio.dir/fasta.cc.o" "gcc" "src/bio/CMakeFiles/bp5_bio.dir/fasta.cc.o.d"
  "/root/repo/src/bio/generator.cc" "src/bio/CMakeFiles/bp5_bio.dir/generator.cc.o" "gcc" "src/bio/CMakeFiles/bp5_bio.dir/generator.cc.o.d"
  "/root/repo/src/bio/hmm.cc" "src/bio/CMakeFiles/bp5_bio.dir/hmm.cc.o" "gcc" "src/bio/CMakeFiles/bp5_bio.dir/hmm.cc.o.d"
  "/root/repo/src/bio/parsimony.cc" "src/bio/CMakeFiles/bp5_bio.dir/parsimony.cc.o" "gcc" "src/bio/CMakeFiles/bp5_bio.dir/parsimony.cc.o.d"
  "/root/repo/src/bio/scoring.cc" "src/bio/CMakeFiles/bp5_bio.dir/scoring.cc.o" "gcc" "src/bio/CMakeFiles/bp5_bio.dir/scoring.cc.o.d"
  "/root/repo/src/bio/sequence.cc" "src/bio/CMakeFiles/bp5_bio.dir/sequence.cc.o" "gcc" "src/bio/CMakeFiles/bp5_bio.dir/sequence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/bp5_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
