# Empty dependencies file for bp5_support.
# This may be replaced when dependencies are built.
