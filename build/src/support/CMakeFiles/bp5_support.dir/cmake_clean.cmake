file(REMOVE_RECURSE
  "CMakeFiles/bp5_support.dir/logging.cc.o"
  "CMakeFiles/bp5_support.dir/logging.cc.o.d"
  "CMakeFiles/bp5_support.dir/random.cc.o"
  "CMakeFiles/bp5_support.dir/random.cc.o.d"
  "CMakeFiles/bp5_support.dir/stats.cc.o"
  "CMakeFiles/bp5_support.dir/stats.cc.o.d"
  "CMakeFiles/bp5_support.dir/table.cc.o"
  "CMakeFiles/bp5_support.dir/table.cc.o.d"
  "libbp5_support.a"
  "libbp5_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp5_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
