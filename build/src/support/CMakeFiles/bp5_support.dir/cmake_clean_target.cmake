file(REMOVE_RECURSE
  "libbp5_support.a"
)
