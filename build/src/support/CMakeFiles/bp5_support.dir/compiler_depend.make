# Empty compiler generated dependencies file for bp5_support.
# This may be replaced when dependencies are built.
