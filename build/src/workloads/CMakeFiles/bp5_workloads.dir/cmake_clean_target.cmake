file(REMOVE_RECURSE
  "libbp5_workloads.a"
)
