file(REMOVE_RECURSE
  "CMakeFiles/bp5_workloads.dir/profile.cc.o"
  "CMakeFiles/bp5_workloads.dir/profile.cc.o.d"
  "CMakeFiles/bp5_workloads.dir/workload.cc.o"
  "CMakeFiles/bp5_workloads.dir/workload.cc.o.d"
  "libbp5_workloads.a"
  "libbp5_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp5_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
