# Empty dependencies file for bp5_workloads.
# This may be replaced when dependencies are built.
