# Empty compiler generated dependencies file for bp5_isa.
# This may be replaced when dependencies are built.
