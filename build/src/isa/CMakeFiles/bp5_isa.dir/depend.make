# Empty dependencies file for bp5_isa.
# This may be replaced when dependencies are built.
