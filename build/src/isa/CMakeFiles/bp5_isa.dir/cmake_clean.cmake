file(REMOVE_RECURSE
  "CMakeFiles/bp5_isa.dir/disasm.cc.o"
  "CMakeFiles/bp5_isa.dir/disasm.cc.o.d"
  "CMakeFiles/bp5_isa.dir/encode.cc.o"
  "CMakeFiles/bp5_isa.dir/encode.cc.o.d"
  "CMakeFiles/bp5_isa.dir/inst.cc.o"
  "CMakeFiles/bp5_isa.dir/inst.cc.o.d"
  "CMakeFiles/bp5_isa.dir/opcodes.cc.o"
  "CMakeFiles/bp5_isa.dir/opcodes.cc.o.d"
  "libbp5_isa.a"
  "libbp5_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp5_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
