file(REMOVE_RECURSE
  "libbp5_isa.a"
)
