file(REMOVE_RECURSE
  "libbp5_mpc.a"
)
