# Empty compiler generated dependencies file for bp5_mpc.
# This may be replaced when dependencies are built.
