# Empty dependencies file for bp5_mpc.
# This may be replaced when dependencies are built.
