file(REMOVE_RECURSE
  "CMakeFiles/bp5_mpc.dir/codegen.cc.o"
  "CMakeFiles/bp5_mpc.dir/codegen.cc.o.d"
  "CMakeFiles/bp5_mpc.dir/compiler.cc.o"
  "CMakeFiles/bp5_mpc.dir/compiler.cc.o.d"
  "CMakeFiles/bp5_mpc.dir/interp.cc.o"
  "CMakeFiles/bp5_mpc.dir/interp.cc.o.d"
  "CMakeFiles/bp5_mpc.dir/ir.cc.o"
  "CMakeFiles/bp5_mpc.dir/ir.cc.o.d"
  "CMakeFiles/bp5_mpc.dir/passes.cc.o"
  "CMakeFiles/bp5_mpc.dir/passes.cc.o.d"
  "libbp5_mpc.a"
  "libbp5_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp5_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
