file(REMOVE_RECURSE
  "libbp5_sim.a"
)
