# Empty compiler generated dependencies file for bp5_sim.
# This may be replaced when dependencies are built.
