file(REMOVE_RECURSE
  "CMakeFiles/bp5_sim.dir/btac.cc.o"
  "CMakeFiles/bp5_sim.dir/btac.cc.o.d"
  "CMakeFiles/bp5_sim.dir/cache.cc.o"
  "CMakeFiles/bp5_sim.dir/cache.cc.o.d"
  "CMakeFiles/bp5_sim.dir/exec.cc.o"
  "CMakeFiles/bp5_sim.dir/exec.cc.o.d"
  "CMakeFiles/bp5_sim.dir/machine.cc.o"
  "CMakeFiles/bp5_sim.dir/machine.cc.o.d"
  "CMakeFiles/bp5_sim.dir/memory.cc.o"
  "CMakeFiles/bp5_sim.dir/memory.cc.o.d"
  "CMakeFiles/bp5_sim.dir/predictor.cc.o"
  "CMakeFiles/bp5_sim.dir/predictor.cc.o.d"
  "libbp5_sim.a"
  "libbp5_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp5_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
