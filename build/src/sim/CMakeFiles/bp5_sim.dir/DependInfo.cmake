
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/btac.cc" "src/sim/CMakeFiles/bp5_sim.dir/btac.cc.o" "gcc" "src/sim/CMakeFiles/bp5_sim.dir/btac.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/bp5_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/bp5_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/exec.cc" "src/sim/CMakeFiles/bp5_sim.dir/exec.cc.o" "gcc" "src/sim/CMakeFiles/bp5_sim.dir/exec.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/bp5_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/bp5_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/bp5_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/bp5_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/predictor.cc" "src/sim/CMakeFiles/bp5_sim.dir/predictor.cc.o" "gcc" "src/sim/CMakeFiles/bp5_sim.dir/predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/bp5_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/masm/CMakeFiles/bp5_masm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bp5_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
