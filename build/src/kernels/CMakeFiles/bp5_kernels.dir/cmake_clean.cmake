file(REMOVE_RECURSE
  "CMakeFiles/bp5_kernels.dir/ir_builders.cc.o"
  "CMakeFiles/bp5_kernels.dir/ir_builders.cc.o.d"
  "CMakeFiles/bp5_kernels.dir/reference.cc.o"
  "CMakeFiles/bp5_kernels.dir/reference.cc.o.d"
  "CMakeFiles/bp5_kernels.dir/runtime.cc.o"
  "CMakeFiles/bp5_kernels.dir/runtime.cc.o.d"
  "libbp5_kernels.a"
  "libbp5_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp5_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
