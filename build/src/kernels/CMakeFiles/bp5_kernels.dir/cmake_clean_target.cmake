file(REMOVE_RECURSE
  "libbp5_kernels.a"
)
