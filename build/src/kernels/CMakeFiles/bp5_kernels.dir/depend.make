# Empty dependencies file for bp5_kernels.
# This may be replaced when dependencies are built.
