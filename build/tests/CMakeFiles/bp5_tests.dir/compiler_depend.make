# Empty compiler generated dependencies file for bp5_tests.
# This may be replaced when dependencies are built.
