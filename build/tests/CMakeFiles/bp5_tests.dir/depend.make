# Empty dependencies file for bp5_tests.
# This may be replaced when dependencies are built.
