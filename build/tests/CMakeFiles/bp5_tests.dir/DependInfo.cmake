
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bio_align.cc" "tests/CMakeFiles/bp5_tests.dir/test_bio_align.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_bio_align.cc.o.d"
  "/root/repo/tests/test_bio_blast.cc" "tests/CMakeFiles/bp5_tests.dir/test_bio_blast.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_bio_blast.cc.o.d"
  "/root/repo/tests/test_bio_clustal.cc" "tests/CMakeFiles/bp5_tests.dir/test_bio_clustal.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_bio_clustal.cc.o.d"
  "/root/repo/tests/test_bio_core.cc" "tests/CMakeFiles/bp5_tests.dir/test_bio_core.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_bio_core.cc.o.d"
  "/root/repo/tests/test_bio_hmm.cc" "tests/CMakeFiles/bp5_tests.dir/test_bio_hmm.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_bio_hmm.cc.o.d"
  "/root/repo/tests/test_bio_parsimony.cc" "tests/CMakeFiles/bp5_tests.dir/test_bio_parsimony.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_bio_parsimony.cc.o.d"
  "/root/repo/tests/test_exec.cc" "tests/CMakeFiles/bp5_tests.dir/test_exec.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_exec.cc.o.d"
  "/root/repo/tests/test_exec_fuzz.cc" "tests/CMakeFiles/bp5_tests.dir/test_exec_fuzz.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_exec_fuzz.cc.o.d"
  "/root/repo/tests/test_failures.cc" "tests/CMakeFiles/bp5_tests.dir/test_failures.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_failures.cc.o.d"
  "/root/repo/tests/test_interp.cc" "tests/CMakeFiles/bp5_tests.dir/test_interp.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_interp.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/bp5_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_kernels.cc" "tests/CMakeFiles/bp5_tests.dir/test_kernels.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_kernels.cc.o.d"
  "/root/repo/tests/test_masm.cc" "tests/CMakeFiles/bp5_tests.dir/test_masm.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_masm.cc.o.d"
  "/root/repo/tests/test_mpc.cc" "tests/CMakeFiles/bp5_tests.dir/test_mpc.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_mpc.cc.o.d"
  "/root/repo/tests/test_mpc_fuzz.cc" "tests/CMakeFiles/bp5_tests.dir/test_mpc_fuzz.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_mpc_fuzz.cc.o.d"
  "/root/repo/tests/test_paper_shapes.cc" "tests/CMakeFiles/bp5_tests.dir/test_paper_shapes.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_paper_shapes.cc.o.d"
  "/root/repo/tests/test_pipeline.cc" "tests/CMakeFiles/bp5_tests.dir/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_pipeline.cc.o.d"
  "/root/repo/tests/test_sim_components.cc" "tests/CMakeFiles/bp5_tests.dir/test_sim_components.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_sim_components.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/bp5_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_support.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/bp5_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/bp5_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/bp5_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bp5_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/bp5_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/bp5_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bp5_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/masm/CMakeFiles/bp5_masm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/bp5_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bp5_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
